//! Property-based tests for tokenizer, bags and similarities.

use crowd_text::similarity::{cosine, jaccard};
use crowd_text::{tokenize, BagOfWords, TermId, Vocabulary};
use proptest::prelude::*;

fn arb_bag() -> impl Strategy<Value = BagOfWords> {
    prop::collection::vec((0u32..64, 1u32..5), 0..24).prop_map(|pairs| {
        BagOfWords::from_counts(pairs.into_iter().map(|(t, c)| (TermId(t), c)).collect())
    })
}

proptest! {
    #[test]
    fn tokenize_output_is_lowercase(text in ".{0,80}") {
        // "Lowercase" in the Unicode sense: a second to_lowercase is a no-op.
        for tok in tokenize(&text) {
            prop_assert_eq!(tok.to_lowercase(), tok.clone(), "token {}", tok);
        }
    }

    #[test]
    fn tokenize_stable_under_rejoin(words in prop::collection::vec("[a-z0-9]{1,8}", 0..12)) {
        let text = words.join(" ");
        let toks = tokenize(&text);
        prop_assert_eq!(toks, words);
    }

    #[test]
    fn bag_total_tokens_matches_input(words in prop::collection::vec("[a-z]{1,4}", 0..30)) {
        let mut v = Vocabulary::new();
        let b = BagOfWords::from_tokens(&words, &mut v);
        prop_assert_eq!(b.total_tokens(), words.len() as u64);
    }

    #[test]
    fn cosine_symmetric_and_bounded(a in arb_bag(), b in arb_bag()) {
        let ab = cosine(&a, &b);
        let ba = cosine(&b, &a);
        prop_assert!((ab - ba).abs() < 1e-12);
        prop_assert!((-1e-12..=1.0 + 1e-12).contains(&ab));
    }

    #[test]
    fn cosine_self_is_one(a in arb_bag()) {
        prop_assume!(!a.is_empty());
        prop_assert!((cosine(&a, &a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn jaccard_symmetric_bounded_self_one(a in arb_bag(), b in arb_bag()) {
        let ab = jaccard(&a, &b);
        prop_assert!((ab - jaccard(&b, &a)).abs() < 1e-12);
        prop_assert!((0.0..=1.0).contains(&ab));
        prop_assert!((jaccard(&a, &a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn stemming_never_lengthens_or_empties(word in "[a-z]{1,15}") {
        let stemmed = crowd_text::stem(&word);
        prop_assert!(!stemmed.is_empty());
        prop_assert!(stemmed.len() <= word.len() + 1, "{word} → {stemmed}");
        prop_assert!(stemmed.bytes().all(|b| b.is_ascii_lowercase()));
    }

    #[test]
    fn stemming_is_deterministic(word in "[a-z]{1,15}") {
        prop_assert_eq!(crowd_text::stem(&word), crowd_text::stem(&word));
    }

    #[test]
    fn merge_is_commutative(a in arb_bag(), b in arb_bag()) {
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn merge_total_is_sum(a in arb_bag(), b in arb_bag()) {
        let mut m = a.clone();
        m.merge(&b);
        prop_assert_eq!(m.total_tokens(), a.total_tokens() + b.total_tokens());
    }
}
