//! Similarity measures over bags of words.

use crate::BagOfWords;

/// Cosine similarity between two count vectors.
///
/// This is the VSM baseline's ranking score (paper Section 7.2.1):
/// `s = (tᵀ t_w) / (‖t‖ ‖t_w‖)`. Returns 0.0 when either bag is empty.
pub fn cosine(a: &BagOfWords, b: &BagOfWords) -> f64 {
    let na = a.norm();
    let nb = b.norm();
    if na == 0.0 || nb == 0.0 {
        return 0.0;
    }
    let mut dot = 0.0;
    let mut ia = a.iter().peekable();
    let mut ib = b.iter().peekable();
    while let (Some(&(ta, ca)), Some(&(tb, cb))) = (ia.peek(), ib.peek()) {
        match ta.cmp(&tb) {
            std::cmp::Ordering::Less => {
                ia.next();
            }
            std::cmp::Ordering::Greater => {
                ib.next();
            }
            std::cmp::Ordering::Equal => {
                dot += (ca as f64) * (cb as f64);
                ia.next();
                ib.next();
            }
        }
    }
    dot / (na * nb)
}

/// Jaccard similarity of the *term sets* (counts ignored).
///
/// `|A ∩ B| / |A ∪ B|`; 1.0 when both bags are empty (identical sets).
pub fn jaccard(a: &BagOfWords, b: &BagOfWords) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let mut intersection = 0usize;
    let mut union = 0usize;
    let mut ia = a.iter().peekable();
    let mut ib = b.iter().peekable();
    loop {
        match (ia.peek(), ib.peek()) {
            (Some(&(ta, _)), Some(&(tb, _))) => match ta.cmp(&tb) {
                std::cmp::Ordering::Less => {
                    union += 1;
                    ia.next();
                }
                std::cmp::Ordering::Greater => {
                    union += 1;
                    ib.next();
                }
                std::cmp::Ordering::Equal => {
                    intersection += 1;
                    union += 1;
                    ia.next();
                    ib.next();
                }
            },
            (Some(_), None) => {
                union += 1;
                ia.next();
            }
            (None, Some(_)) => {
                union += 1;
                ib.next();
            }
            (None, None) => break,
        }
    }
    intersection as f64 / union as f64
}

/// Jaccard *distance*: `1 − jaccard(a, b)`.
///
/// The paper's Yahoo! Answers feedback rule scores a non-best answer by its
/// Jaccard distance to the best answer (Section 4.1.5); we expose the
/// similarity form (`1 − distance`) through [`jaccard`] and this helper for
/// the distance itself.
pub fn jaccard_distance(a: &BagOfWords, b: &BagOfWords) -> f64 {
    1.0 - jaccard(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{tokenize, Vocabulary};

    fn bags(x: &str, y: &str) -> (BagOfWords, BagOfWords) {
        let mut v = Vocabulary::new();
        let a = BagOfWords::from_tokens(&tokenize(x), &mut v);
        let b = BagOfWords::from_tokens(&tokenize(y), &mut v);
        (a, b)
    }

    #[test]
    fn cosine_identical_is_one() {
        let (a, b) = bags("b tree index", "b tree index");
        assert!((cosine(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cosine_disjoint_is_zero() {
        let (a, b) = bags("apples oranges", "trains planes");
        assert_eq!(cosine(&a, &b), 0.0);
    }

    #[test]
    fn cosine_empty_is_zero() {
        let (a, _) = bags("x", "");
        assert_eq!(cosine(&a, &BagOfWords::new()), 0.0);
        assert_eq!(cosine(&BagOfWords::new(), &BagOfWords::new()), 0.0);
    }

    #[test]
    fn cosine_known_value() {
        // a = {x:1, y:1}, b = {x:1}: cos = 1/√2
        let (a, b) = bags("x y", "x");
        assert!((cosine(&a, &b) - 1.0 / 2.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn cosine_is_symmetric() {
        let (a, b) = bags("b tree over b tree", "tree balance rotation");
        assert!((cosine(&a, &b) - cosine(&b, &a)).abs() < 1e-15);
    }

    #[test]
    fn jaccard_known_values() {
        let (a, b) = bags("x y z", "y z w");
        // intersection {y,z}=2, union {x,y,z,w}=4
        assert!((jaccard(&a, &b) - 0.5).abs() < 1e-12);
        assert!((jaccard_distance(&a, &b) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn jaccard_ignores_counts() {
        let (a, b) = bags("x x x y", "x y y y");
        assert!((jaccard(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn jaccard_empty_conventions() {
        let empty = BagOfWords::new();
        assert_eq!(jaccard(&empty, &empty), 1.0);
        let (a, _) = bags("x", "");
        assert_eq!(jaccard(&a, &empty), 0.0);
    }

    #[test]
    fn similarity_bounds() {
        let (a, b) = bags("a b c d e", "c d e f g h");
        let c = cosine(&a, &b);
        let j = jaccard(&a, &b);
        assert!((0.0..=1.0).contains(&c));
        assert!((0.0..=1.0).contains(&j));
    }
}
