//! Corpus-level document-frequency statistics and TF-IDF weighting.

use crate::{BagOfWords, TermId};
use serde::{Deserialize, Serialize};

/// Document-frequency statistics over a corpus of bags.
///
/// Supports the weighted variant of the VSM baseline: raw count cosine is
/// what the paper describes, but TF-IDF weighting is the standard
/// strengthening and is exposed for the ablation benches.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TfIdf {
    /// `df[t]` = number of documents containing term `t`.
    doc_freq: Vec<u32>,
    /// Total number of documents observed.
    num_docs: u64,
}

impl TfIdf {
    /// Creates empty statistics.
    pub fn new() -> Self {
        TfIdf::default()
    }

    /// Builds statistics from a corpus in one pass.
    pub fn from_corpus<'a>(docs: impl IntoIterator<Item = &'a BagOfWords>) -> Self {
        let mut t = TfIdf::new();
        for d in docs {
            t.observe(d);
        }
        t
    }

    /// Folds one document into the statistics.
    pub fn observe(&mut self, doc: &BagOfWords) {
        self.num_docs += 1;
        for (term, _) in doc.iter() {
            let idx = term.index();
            if idx >= self.doc_freq.len() {
                self.doc_freq.resize(idx + 1, 0);
            }
            self.doc_freq[idx] += 1;
        }
    }

    /// Number of observed documents.
    pub fn num_docs(&self) -> u64 {
        self.num_docs
    }

    /// Document frequency of `term` (0 when unseen).
    pub fn doc_freq(&self, term: TermId) -> u32 {
        self.doc_freq.get(term.index()).copied().unwrap_or(0)
    }

    /// Smoothed inverse document frequency: `ln((1 + N) / (1 + df)) + 1`.
    ///
    /// The `+1` smoothing keeps idf strictly positive so unseen query terms
    /// do not zero out a document's score entirely.
    pub fn idf(&self, term: TermId) -> f64 {
        let n = self.num_docs as f64;
        let df = self.doc_freq(term) as f64;
        ((1.0 + n) / (1.0 + df)).ln() + 1.0
    }

    /// TF-IDF weighted cosine similarity between two bags.
    pub fn weighted_cosine(&self, a: &BagOfWords, b: &BagOfWords) -> f64 {
        let wa = self.weighted_norm(a);
        let wb = self.weighted_norm(b);
        if wa == 0.0 || wb == 0.0 {
            return 0.0;
        }
        let mut dot = 0.0;
        let mut ia = a.iter().peekable();
        let mut ib = b.iter().peekable();
        while let (Some(&(ta, ca)), Some(&(tb, cb))) = (ia.peek(), ib.peek()) {
            match ta.cmp(&tb) {
                std::cmp::Ordering::Less => {
                    ia.next();
                }
                std::cmp::Ordering::Greater => {
                    ib.next();
                }
                std::cmp::Ordering::Equal => {
                    let idf = self.idf(ta);
                    dot += (ca as f64 * idf) * (cb as f64 * idf);
                    ia.next();
                    ib.next();
                }
            }
        }
        dot / (wa * wb)
    }

    fn weighted_norm(&self, bag: &BagOfWords) -> f64 {
        bag.iter()
            .map(|(t, c)| {
                let w = c as f64 * self.idf(t);
                w * w
            })
            .sum::<f64>()
            .sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{tokenize, Vocabulary};

    fn corpus(texts: &[&str]) -> (Vec<BagOfWords>, Vocabulary) {
        let mut v = Vocabulary::new();
        let bags = texts
            .iter()
            .map(|t| BagOfWords::from_tokens(&tokenize(t), &mut v))
            .collect();
        (bags, v)
    }

    #[test]
    fn doc_freq_counts_documents_not_tokens() {
        let (bags, v) = corpus(&["tree tree tree", "tree index", "btree"]);
        let t = TfIdf::from_corpus(&bags);
        assert_eq!(t.num_docs(), 3);
        assert_eq!(t.doc_freq(v.get("tree").unwrap()), 2);
        assert_eq!(t.doc_freq(v.get("btree").unwrap()), 1);
    }

    #[test]
    fn idf_rewards_rarity() {
        let (bags, v) = corpus(&["common rare1", "common rare2", "common rare3"]);
        let t = TfIdf::from_corpus(&bags);
        let common = t.idf(v.get("common").unwrap());
        let rare = t.idf(v.get("rare1").unwrap());
        assert!(rare > common);
        assert!(common > 0.0);
    }

    #[test]
    fn idf_of_unseen_term_is_maximal() {
        let (bags, _) = corpus(&["a b", "a c"]);
        let t = TfIdf::from_corpus(&bags);
        let unseen = t.idf(TermId(999));
        assert!(unseen >= t.idf(TermId(0)));
    }

    #[test]
    fn weighted_cosine_downweights_common_terms() {
        // Query shares the *common* term with d1 and the *rare* term with d2.
        let (bags, v) = corpus(&[
            "common rare", // query
            "common xxx",  // d1 shares only the common term
            "rare yyy",    // d2 shares only the rare term
            "common zzz1",
            "common zzz2",
            "common zzz3", // make "common" common
        ]);
        let t = TfIdf::from_corpus(&bags);
        let s1 = t.weighted_cosine(&bags[0], &bags[1]);
        let s2 = t.weighted_cosine(&bags[0], &bags[2]);
        assert!(
            s2 > s1,
            "rare overlap ({s2}) should beat common overlap ({s1})"
        );
        let _ = v;
    }

    #[test]
    fn weighted_cosine_bounds_and_self() {
        let (bags, _) = corpus(&["a b c", "a b c", "x y"]);
        let t = TfIdf::from_corpus(&bags);
        let self_sim = t.weighted_cosine(&bags[0], &bags[1]);
        assert!((self_sim - 1.0).abs() < 1e-12);
        assert_eq!(t.weighted_cosine(&bags[0], &BagOfWords::new()), 0.0);
    }
}
