//! Sparse bag-of-words counts over interned terms.

use crate::{TermId, Vocabulary};
use serde::{Deserialize, Serialize};

/// A sparse term-count vector, sorted by [`TermId`].
///
/// This is the paper's task representation `t_j = {(v_p, #v_p)}`
/// (Section 4.1.1). Entries are kept sorted so that merge-style operations
/// (cosine, Jaccard, union) run in linear time.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BagOfWords {
    entries: Vec<(TermId, u32)>,
}

impl BagOfWords {
    /// An empty bag.
    pub fn new() -> Self {
        BagOfWords::default()
    }

    /// Builds a bag from raw tokens, interning each through `vocab`.
    ///
    /// Tokens the vocabulary rejects (frozen + unseen) are silently skipped —
    /// exactly the behaviour the incremental projection path needs.
    pub fn from_tokens<S: AsRef<str>>(tokens: &[S], vocab: &mut Vocabulary) -> Self {
        let mut ids: Vec<TermId> = tokens
            .iter()
            .filter_map(|t| vocab.intern(t.as_ref()))
            .collect();
        ids.sort_unstable();
        let mut entries: Vec<(TermId, u32)> = Vec::new();
        for id in ids {
            match entries.last_mut() {
                Some((last, count)) if *last == id => *count += 1,
                _ => entries.push((id, 1)),
            }
        }
        BagOfWords { entries }
    }

    /// Builds a bag from raw tokens against a *read-only* vocabulary:
    /// unknown tokens are skipped, nothing is interned.
    ///
    /// This is the query path — ranking a prospective task must not mutate
    /// the database's vocabulary.
    pub fn from_known_tokens<S: AsRef<str>>(tokens: &[S], vocab: &Vocabulary) -> Self {
        BagOfWords::from_counts(
            tokens
                .iter()
                .filter_map(|t| vocab.get(t.as_ref()))
                .map(|id| (id, 1))
                .collect(),
        )
    }

    /// Builds a bag from `(TermId, count)` pairs (need not be sorted; counts
    /// for duplicate ids are summed, zero counts dropped).
    pub fn from_counts(mut pairs: Vec<(TermId, u32)>) -> Self {
        pairs.sort_unstable_by_key(|&(id, _)| id);
        let mut entries: Vec<(TermId, u32)> = Vec::new();
        for (id, c) in pairs {
            if c == 0 {
                continue;
            }
            match entries.last_mut() {
                Some((last, count)) if *last == id => *count += c,
                _ => entries.push((id, c)),
            }
        }
        BagOfWords { entries }
    }

    /// Number of distinct terms.
    pub fn distinct_terms(&self) -> usize {
        self.entries.len()
    }

    /// Total token count `L = Σ #v_p`.
    pub fn total_tokens(&self) -> u64 {
        self.entries.iter().map(|&(_, c)| c as u64).sum()
    }

    /// `true` when the bag holds no terms.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Count for a specific term (0 when absent).
    pub fn count(&self, id: TermId) -> u32 {
        match self.entries.binary_search_by_key(&id, |&(t, _)| t) {
            Ok(i) => self.entries[i].1,
            Err(_) => 0,
        }
    }

    /// Iterates `(TermId, count)` in id order.
    pub fn iter(&self) -> impl Iterator<Item = (TermId, u32)> + '_ {
        self.entries.iter().copied()
    }

    /// Merges another bag into this one (counts add).
    pub fn merge(&mut self, other: &BagOfWords) {
        if other.is_empty() {
            return;
        }
        let mut merged = Vec::with_capacity(self.entries.len() + other.entries.len());
        let (mut i, mut j) = (0, 0);
        while i < self.entries.len() && j < other.entries.len() {
            let (a, ca) = self.entries[i];
            let (b, cb) = other.entries[j];
            match a.cmp(&b) {
                std::cmp::Ordering::Less => {
                    merged.push((a, ca));
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    merged.push((b, cb));
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    merged.push((a, ca + cb));
                    i += 1;
                    j += 1;
                }
            }
        }
        merged.extend_from_slice(&self.entries[i..]);
        merged.extend_from_slice(&other.entries[j..]);
        self.entries = merged;
    }

    /// L2 norm of the count vector.
    pub fn norm(&self) -> f64 {
        self.entries
            .iter()
            .map(|&(_, c)| (c as f64) * (c as f64))
            .sum::<f64>()
            .sqrt()
    }
}

impl FromIterator<(TermId, u32)> for BagOfWords {
    fn from_iter<I: IntoIterator<Item = (TermId, u32)>>(iter: I) -> Self {
        BagOfWords::from_counts(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenize;

    fn bag(text: &str) -> (BagOfWords, Vocabulary) {
        let mut v = Vocabulary::new();
        let toks = tokenize(text);
        let b = BagOfWords::from_tokens(&toks, &mut v);
        (b, v)
    }

    #[test]
    fn paper_example_counts() {
        // "advantage, B, B+, over, tree×2, what" per the paper's Section 4.1.1.
        let (b, v) = bag("What advantage B+ tree over B tree");
        assert_eq!(b.total_tokens(), 7);
        assert_eq!(b.distinct_terms(), 6);
        let tree = v.get("tree").unwrap();
        assert_eq!(b.count(tree), 2);
        let bplus = v.get("b+").unwrap();
        assert_eq!(b.count(bplus), 1);
    }

    #[test]
    fn entries_sorted_by_id() {
        let (b, _) = bag("z a m a z z");
        let ids: Vec<u32> = b.iter().map(|(t, _)| t.0).collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        assert_eq!(ids, sorted);
    }

    #[test]
    fn from_counts_dedupes_and_drops_zeros() {
        let b = BagOfWords::from_counts(vec![
            (TermId(2), 1),
            (TermId(0), 3),
            (TermId(2), 2),
            (TermId(5), 0),
        ]);
        assert_eq!(b.distinct_terms(), 2);
        assert_eq!(b.count(TermId(2)), 3);
        assert_eq!(b.count(TermId(0)), 3);
        assert_eq!(b.count(TermId(5)), 0);
    }

    #[test]
    fn merge_adds_counts() {
        let a = BagOfWords::from_counts(vec![(TermId(0), 1), (TermId(2), 2)]);
        let b = BagOfWords::from_counts(vec![(TermId(1), 5), (TermId(2), 1)]);
        let mut m = a.clone();
        m.merge(&b);
        assert_eq!(m.count(TermId(0)), 1);
        assert_eq!(m.count(TermId(1)), 5);
        assert_eq!(m.count(TermId(2)), 3);
        assert_eq!(m.total_tokens(), a.total_tokens() + b.total_tokens());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let a = BagOfWords::from_counts(vec![(TermId(3), 2)]);
        let mut m = a.clone();
        m.merge(&BagOfWords::new());
        assert_eq!(m, a);
        let mut e = BagOfWords::new();
        e.merge(&a);
        assert_eq!(e, a);
    }

    #[test]
    fn from_known_tokens_never_interns() {
        let mut v = Vocabulary::new();
        v.intern("tree");
        let before = v.len();
        let b = BagOfWords::from_known_tokens(&["tree", "tree", "unknown"], &v);
        assert_eq!(v.len(), before, "vocabulary untouched");
        assert_eq!(b.total_tokens(), 2);
        assert_eq!(b.distinct_terms(), 1);
    }

    #[test]
    fn frozen_vocab_skips_unknown_tokens() {
        let mut v = Vocabulary::new();
        v.intern("tree");
        v.freeze();
        let b = BagOfWords::from_tokens(&["tree", "quantum", "tree"], &mut v);
        assert_eq!(b.total_tokens(), 2);
        assert_eq!(b.distinct_terms(), 1);
    }

    #[test]
    fn norm_known_value() {
        let b = BagOfWords::from_counts(vec![(TermId(0), 3), (TermId(1), 4)]);
        assert!((b.norm() - 5.0).abs() < 1e-12);
    }
}
