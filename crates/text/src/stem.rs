//! The Porter stemming algorithm (Porter, 1980).
//!
//! Conflates inflected forms ("split", "splits", "splitting") so that
//! vocabulary-overlap signals (VSM, Jaccard feedback, the inverted index)
//! see through morphology. Implemented from the original paper's five-step
//! rule set; only lowercase ASCII alphabetic input is stemmed — anything
//! else (numbers, `c++`, `b+`) is returned unchanged, which is exactly what
//! Q&A text needs.

/// Stems one lowercase token.
///
/// Non-alphabetic tokens and tokens shorter than 3 characters are returned
/// unchanged.
pub fn stem(word: &str) -> String {
    if word.len() < 3 || !word.bytes().all(|b| b.is_ascii_lowercase()) {
        return word.to_owned();
    }
    let mut w: Vec<u8> = word.as_bytes().to_vec();
    step_1a(&mut w);
    step_1b(&mut w);
    step_1c(&mut w);
    step_2(&mut w);
    step_3(&mut w);
    step_4(&mut w);
    step_5a(&mut w);
    step_5b(&mut w);
    // Input is all-ASCII (checked above) and the steps only truncate or
    // substitute ASCII suffixes, so the bytes are always valid UTF-8;
    // `from_utf8_lossy` keeps the function total without an unwrap.
    String::from_utf8_lossy(&w).into_owned()
}

/// Convenience: [`crate::tokenize_filtered`] followed by stemming.
pub fn tokenize_stemmed(text: &str) -> Vec<String> {
    crate::tokenize_filtered(text)
        .into_iter()
        .map(|t| stem(&t))
        .collect()
}

/// Is `w[i]` a consonant (Porter's definition: `y` is a consonant after a
/// vowel position rule)?
fn is_consonant(w: &[u8], i: usize) -> bool {
    match w[i] {
        b'a' | b'e' | b'i' | b'o' | b'u' => false,
        b'y' => {
            if i == 0 {
                true
            } else {
                !is_consonant(w, i - 1)
            }
        }
        _ => true,
    }
}

/// Porter's measure `m`: the number of VC sequences in `w[..len]`.
fn measure(w: &[u8], len: usize) -> usize {
    let mut m = 0;
    let mut i = 0;
    // Skip initial consonants.
    while i < len && is_consonant(w, i) {
        i += 1;
    }
    loop {
        // Vowel run.
        while i < len && !is_consonant(w, i) {
            i += 1;
        }
        if i >= len {
            return m;
        }
        // Consonant run → one VC.
        while i < len && is_consonant(w, i) {
            i += 1;
        }
        m += 1;
        if i >= len {
            return m;
        }
    }
}

/// `*v*`: the stem `w[..len]` contains a vowel.
fn has_vowel(w: &[u8], len: usize) -> bool {
    (0..len).any(|i| !is_consonant(w, i))
}

/// `*d`: stem ends in a double consonant.
fn ends_double_consonant(w: &[u8], len: usize) -> bool {
    len >= 2 && w[len - 1] == w[len - 2] && is_consonant(w, len - 1)
}

/// `*o`: stem ends consonant-vowel-consonant, where the final consonant is
/// not `w`, `x` or `y`.
fn ends_cvc(w: &[u8], len: usize) -> bool {
    len >= 3
        && is_consonant(w, len - 3)
        && !is_consonant(w, len - 2)
        && is_consonant(w, len - 1)
        && !matches!(w[len - 1], b'w' | b'x' | b'y')
}

fn ends_with(w: &[u8], suffix: &str) -> bool {
    w.len() >= suffix.len() && &w[w.len() - suffix.len()..] == suffix.as_bytes()
}

/// If the word ends with `suffix` and the remaining stem has measure > `min_m`,
/// replace the suffix with `replacement` and return true.
fn replace_if_m(w: &mut Vec<u8>, suffix: &str, replacement: &str, min_m: usize) -> bool {
    if !ends_with(w, suffix) {
        return false;
    }
    let stem_len = w.len() - suffix.len();
    if measure(w, stem_len) > min_m {
        w.truncate(stem_len);
        w.extend_from_slice(replacement.as_bytes());
        true
    } else {
        false
    }
}

fn step_1a(w: &mut Vec<u8>) {
    if ends_with(w, "sses") {
        w.truncate(w.len() - 2); // sses → ss
    } else if ends_with(w, "ies") {
        w.truncate(w.len() - 2); // ies → i
    } else if ends_with(w, "ss") {
        // unchanged
    } else if ends_with(w, "s") {
        w.truncate(w.len() - 1);
    }
}

fn step_1b(w: &mut Vec<u8>) {
    let mut cleanup = false;
    if ends_with(w, "eed") {
        let stem_len = w.len() - 3;
        if measure(w, stem_len) > 0 {
            w.truncate(w.len() - 1); // eed → ee
        }
    } else if ends_with(w, "ed") {
        let stem_len = w.len() - 2;
        if has_vowel(w, stem_len) {
            w.truncate(stem_len);
            cleanup = true;
        }
    } else if ends_with(w, "ing") {
        let stem_len = w.len() - 3;
        if has_vowel(w, stem_len) {
            w.truncate(stem_len);
            cleanup = true;
        }
    }
    if cleanup {
        if ends_with(w, "at") || ends_with(w, "bl") || ends_with(w, "iz") {
            w.push(b'e'); // conflat(ed) → conflate
        } else if ends_double_consonant(w, w.len()) && !matches!(w[w.len() - 1], b'l' | b's' | b'z')
        {
            w.truncate(w.len() - 1); // hopp(ing) → hop
        } else if measure(w, w.len()) == 1 && ends_cvc(w, w.len()) {
            w.push(b'e'); // fil(ing) → file
        }
    }
}

fn step_1c(w: &mut [u8]) {
    let len = w.len();
    if len >= 2 && w[len - 1] == b'y' && has_vowel(w, len - 1) {
        w[len - 1] = b'i'; // happy → happi
    }
}

fn step_2(w: &mut Vec<u8>) {
    const RULES: &[(&str, &str)] = &[
        ("ational", "ate"),
        ("tional", "tion"),
        ("enci", "ence"),
        ("anci", "ance"),
        ("izer", "ize"),
        ("abli", "able"),
        ("alli", "al"),
        ("entli", "ent"),
        ("eli", "e"),
        ("ousli", "ous"),
        ("ization", "ize"),
        ("ation", "ate"),
        ("ator", "ate"),
        ("alism", "al"),
        ("iveness", "ive"),
        ("fulness", "ful"),
        ("ousness", "ous"),
        ("aliti", "al"),
        ("iviti", "ive"),
        ("biliti", "ble"),
    ];
    for &(suffix, replacement) in RULES {
        if ends_with(w, suffix) {
            replace_if_m(w, suffix, replacement, 0);
            return;
        }
    }
}

fn step_3(w: &mut Vec<u8>) {
    const RULES: &[(&str, &str)] = &[
        ("icate", "ic"),
        ("ative", ""),
        ("alize", "al"),
        ("iciti", "ic"),
        ("ical", "ic"),
        ("ful", ""),
        ("ness", ""),
    ];
    for &(suffix, replacement) in RULES {
        if ends_with(w, suffix) {
            replace_if_m(w, suffix, replacement, 0);
            return;
        }
    }
}

fn step_4(w: &mut Vec<u8>) {
    const SUFFIXES: &[&str] = &[
        "al", "ance", "ence", "er", "ic", "able", "ible", "ant", "ement", "ment", "ent", "ou",
        "ism", "ate", "iti", "ous", "ive", "ize",
    ];
    // "ion" is special: preceding char must be s or t.
    if ends_with(w, "ion") {
        let stem_len = w.len() - 3;
        if stem_len >= 1 && matches!(w[stem_len - 1], b's' | b't') && measure(w, stem_len) > 1 {
            w.truncate(stem_len);
        }
        return;
    }
    for &suffix in SUFFIXES {
        if ends_with(w, suffix) {
            let stem_len = w.len() - suffix.len();
            if measure(w, stem_len) > 1 {
                w.truncate(stem_len);
            }
            return;
        }
    }
}

fn step_5a(w: &mut Vec<u8>) {
    if ends_with(w, "e") {
        let stem_len = w.len() - 1;
        let m = measure(w, stem_len);
        if m > 1 || (m == 1 && !ends_cvc(w, stem_len)) {
            w.truncate(stem_len);
        }
    }
}

fn step_5b(w: &mut Vec<u8>) {
    let len = w.len();
    if len >= 2 && w[len - 1] == b'l' && w[len - 2] == b'l' && measure(w, len) > 1 {
        w.truncate(len - 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference pairs from Porter's published examples.
    #[test]
    fn porter_reference_pairs() {
        let pairs = [
            ("caresses", "caress"),
            ("ponies", "poni"),
            ("ties", "ti"),
            ("caress", "caress"),
            ("cats", "cat"),
            ("feed", "feed"),
            ("agreed", "agre"),
            ("plastered", "plaster"),
            ("bled", "bled"),
            ("motoring", "motor"),
            ("sing", "sing"),
            ("conflated", "conflat"),
            ("troubled", "troubl"),
            ("sized", "size"),
            ("hopping", "hop"),
            ("tanned", "tan"),
            ("falling", "fall"),
            ("hissing", "hiss"),
            ("fizzed", "fizz"),
            ("failing", "fail"),
            ("filing", "file"),
            ("happy", "happi"),
            ("sky", "sky"),
            ("relational", "relat"),
            ("conditional", "condit"),
            ("rational", "ration"),
            ("valenci", "valenc"),
            ("digitizer", "digit"),
            ("conformabli", "conform"),
            ("radicalli", "radic"),
            ("differentli", "differ"),
            ("vileli", "vile"),
            ("analogousli", "analog"),
            ("vietnamization", "vietnam"),
            ("predication", "predic"),
            ("operator", "oper"),
            ("feudalism", "feudal"),
            ("decisiveness", "decis"),
            ("hopefulness", "hope"),
            ("callousness", "callous"),
            ("formaliti", "formal"),
            ("sensitiviti", "sensit"),
            ("sensibiliti", "sensibl"),
            ("triplicate", "triplic"),
            ("formative", "form"),
            ("formalize", "formal"),
            ("electriciti", "electr"),
            ("electrical", "electr"),
            ("hopeful", "hope"),
            ("goodness", "good"),
            ("revival", "reviv"),
            ("allowance", "allow"),
            ("inference", "infer"),
            ("airliner", "airlin"),
            ("gyroscopic", "gyroscop"),
            ("adjustable", "adjust"),
            ("defensible", "defens"),
            ("irritant", "irrit"),
            ("replacement", "replac"),
            ("adjustment", "adjust"),
            ("dependent", "depend"),
            ("adoption", "adopt"),
            ("communism", "commun"),
            ("activate", "activ"),
            ("angulariti", "angular"),
            ("homologous", "homolog"),
            ("effective", "effect"),
            ("bowdlerize", "bowdler"),
            ("probate", "probat"),
            ("rate", "rate"),
            ("cease", "ceas"),
            ("controll", "control"),
            ("roll", "roll"),
        ];
        for (input, expected) in pairs {
            assert_eq!(stem(input), expected, "stem({input:?})");
        }
    }

    #[test]
    fn qa_inflections_conflate() {
        assert_eq!(stem("splitting"), stem("splits"));
        assert_eq!(stem("indexes"), stem("index"));
        assert_eq!(stem("queried"), stem("queries"));
        assert_eq!(stem("optimization"), stem("optimize"));
    }

    #[test]
    fn non_alpha_tokens_untouched() {
        for t in ["c++", "b+", "404", "b2b", "c#", "ab"] {
            assert_eq!(stem(t), t);
        }
    }

    #[test]
    fn tokenize_stemmed_pipeline() {
        let toks = tokenize_stemmed("why does the btree keep splitting its pages");
        assert!(toks.contains(&"split".to_string()), "{toks:?}");
        assert!(toks.contains(&"page".to_string()), "{toks:?}");
        assert!(!toks.contains(&"the".to_string()), "stopwords removed");
    }

    #[test]
    fn stemming_is_idempotent_on_common_words() {
        for w in ["split", "page", "index", "relat", "oper", "hope"] {
            assert_eq!(stem(&stem(w)), stem(w), "{w}");
        }
    }
}
