//! Deterministic tokenizer for question text.

use crate::stopwords::is_stopword;

/// Splits `text` into lowercase tokens.
///
/// Rules, chosen so the paper's running example — *"What are the advantages
/// of B+ Tree over B Tree?"* — tokenizes into `what are the advantages of
/// b+ tree over b tree`:
///
/// - Unicode alphanumeric runs form tokens.
/// - Trailing `+` / `#` runs attach to the preceding alphanumeric token
///   (`b+`, `c++`, `c#`, `f#`), since these are meaningful in programming
///   Q&A; a `+`/`#` with no preceding token is dropped.
/// - Everything else is a separator.
pub fn tokenize(text: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut current = String::new();
    for ch in text.chars() {
        if ch.is_alphanumeric() {
            current.extend(ch.to_lowercase());
        } else if (ch == '+' || ch == '#') && !current.is_empty() {
            current.push(ch);
        } else {
            if !current.is_empty() {
                tokens.push(std::mem::take(&mut current));
            }
        }
    }
    if !current.is_empty() {
        tokens.push(current);
    }
    tokens
}

/// Like [`tokenize`], additionally dropping English stopwords and bare
/// single-character alphabetic tokens other than programming-language names.
///
/// Single letters are kept when followed by `+`/`#` (handled in [`tokenize`])
/// or when they are common language names (`c`, `r`, `b`); the paper's B-tree
/// example depends on `b` surviving.
pub fn tokenize_filtered(text: &str) -> Vec<String> {
    tokenize(text)
        .into_iter()
        .filter(|t| !is_stopword(t))
        .filter(|t| {
            t.chars().count() > 1
                || matches!(t.as_str(), "c" | "r" | "b")
                || t.chars().all(|c| c.is_numeric())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_running_example() {
        let toks = tokenize("What are the advantages of B+ Tree over B Tree?");
        assert_eq!(
            toks,
            vec![
                "what",
                "are",
                "the",
                "advantages",
                "of",
                "b+",
                "tree",
                "over",
                "b",
                "tree"
            ]
        );
    }

    #[test]
    fn programming_terms_survive() {
        assert_eq!(
            tokenize("C++ vs C# vs F#"),
            vec!["c++", "vs", "c#", "vs", "f#"]
        );
    }

    #[test]
    fn punctuation_is_separator() {
        assert_eq!(
            tokenize("foo,bar;baz.qux"),
            vec!["foo", "bar", "baz", "qux"]
        );
    }

    #[test]
    fn leading_plus_dropped() {
        assert_eq!(tokenize("+ +x y+"), vec!["x", "y+"]);
    }

    #[test]
    fn empty_and_whitespace() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("  \t \n ").is_empty());
    }

    #[test]
    fn numbers_kept() {
        assert_eq!(tokenize("b2b 404 errors"), vec!["b2b", "404", "errors"]);
    }

    #[test]
    fn unicode_lowercasing() {
        assert_eq!(tokenize("Größe MATTERS"), vec!["größe", "matters"]);
    }

    #[test]
    fn filtered_drops_stopwords() {
        let toks = tokenize_filtered("What are the advantages of B+ Tree over B Tree?");
        assert_eq!(toks, vec!["advantages", "b+", "tree", "b", "tree"]);
    }

    #[test]
    fn filtered_keeps_language_names() {
        assert_eq!(tokenize_filtered("r vs c, x"), vec!["r", "vs", "c"]);
    }

    #[test]
    fn tokenize_is_idempotent_on_its_output() {
        let toks = tokenize("Hello, World! c++ b+ 42");
        let rejoined = toks.join(" ");
        assert_eq!(tokenize(&rejoined), toks);
    }
}
