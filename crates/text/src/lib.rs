#![warn(missing_docs)]

//! Text utilities for crowdsourced tasks.
//!
//! The paper represents a crowdsourced task as a *bag of vocabularies*
//! (Section 4.1.1): `t_j = {(v_1, #v_1), …, (v_L, #v_L)}`. This crate
//! provides the plumbing to get there from raw question text:
//!
//! - [`tokenize`]: a deterministic tokenizer tuned for Q&A text (it keeps
//!   `b+`, `c++`, `c#` and similar programming terms intact),
//! - [`Vocabulary`]: a string interner mapping terms to dense [`TermId`]s,
//! - [`BagOfWords`]: the sparse count vector used throughout inference,
//! - [`similarity`]: cosine and Jaccard measures (the VSM baseline and the
//!   Yahoo!-Answers feedback-score rule both need them),
//! - [`TfIdf`]: corpus statistics for the weighted VSM variant.

pub mod bow;
pub mod similarity;
pub mod stem;
pub mod stopwords;
pub mod tfidf;
pub mod tokenizer;
pub mod vocab;

pub use bow::BagOfWords;
pub use stem::{stem, tokenize_stemmed};
pub use tfidf::TfIdf;
pub use tokenizer::{tokenize, tokenize_filtered};
pub use vocab::{TermId, Vocabulary};
