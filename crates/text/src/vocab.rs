//! String interning: terms ↔ dense integer ids.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Dense identifier of an interned term.
///
/// `u32` keeps bag-of-words entries at 8 bytes; real Q&A vocabularies are a
/// few hundred thousand terms, far below the 4 B limit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TermId(pub u32);

impl TermId {
    /// The id as a usable index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A bidirectional term interner.
///
/// `Vocabulary` can be *frozen* once model training starts: a frozen
/// vocabulary maps unseen terms to `None` instead of growing, which is what
/// the incremental crowd-selection path needs (a new task must be projected
/// onto the **existing** latent space; paper Section 6).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Vocabulary {
    terms: Vec<String>,
    #[serde(skip)]
    index: HashMap<String, TermId>,
    frozen: bool,
}

/// The one audited usize → u32 narrowing for term ids.
fn term_id(n: usize) -> TermId {
    debug_assert!(
        u32::try_from(n).is_ok(),
        "vocabulary outgrew the u32 id space"
    );
    // crowd-lint: allow(no-silent-truncation) -- single audited choke point; real vocabularies are ~1e5 terms, far below 2^32
    TermId(n as u32)
}

impl Vocabulary {
    /// Creates an empty, growable vocabulary.
    pub fn new() -> Self {
        Vocabulary::default()
    }

    /// Number of distinct interned terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// `true` when no terms have been interned.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Interns `term`, returning its id.
    ///
    /// On a frozen vocabulary, unknown terms return `None`.
    pub fn intern(&mut self, term: &str) -> Option<TermId> {
        if let Some(&id) = self.index.get(term) {
            return Some(id);
        }
        if self.frozen {
            return None;
        }
        let id = term_id(self.terms.len());
        self.terms.push(term.to_owned());
        self.index.insert(term.to_owned(), id);
        Some(id)
    }

    /// Looks up an already interned term without mutating.
    pub fn get(&self, term: &str) -> Option<TermId> {
        self.index.get(term).copied()
    }

    /// The term text for an id, if the id is in range.
    pub fn term(&self, id: TermId) -> Option<&str> {
        self.terms.get(id.index()).map(String::as_str)
    }

    /// Freezes the vocabulary; subsequent unknown terms intern to `None`.
    pub fn freeze(&mut self) {
        self.frozen = true;
    }

    /// `true` if [`freeze`](Self::freeze) has been called.
    pub fn is_frozen(&self) -> bool {
        self.frozen
    }

    /// Iterates `(TermId, &str)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (TermId, &str)> {
        self.terms
            .iter()
            .enumerate()
            .map(|(i, t)| (term_id(i), t.as_str()))
    }

    /// Rebuilds the term → id index (needed after deserialization, since the
    /// index is skipped by serde).
    pub fn rebuild_index(&mut self) {
        self.index = self
            .terms
            .iter()
            .enumerate()
            .map(|(i, t)| (t.clone(), term_id(i)))
            .collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut v = Vocabulary::new();
        let a = v.intern("tree").unwrap();
        let b = v.intern("tree").unwrap();
        assert_eq!(a, b);
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn ids_are_dense_and_ordered() {
        let mut v = Vocabulary::new();
        let a = v.intern("a").unwrap();
        let b = v.intern("b").unwrap();
        let c = v.intern("c").unwrap();
        assert_eq!((a.0, b.0, c.0), (0, 1, 2));
    }

    #[test]
    fn frozen_vocab_rejects_new_terms() {
        let mut v = Vocabulary::new();
        v.intern("known");
        v.freeze();
        assert!(v.is_frozen());
        assert_eq!(v.intern("known").map(|t| t.0), Some(0));
        assert_eq!(v.intern("unknown"), None);
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn term_lookup_roundtrip() {
        let mut v = Vocabulary::new();
        let id = v.intern("b+").unwrap();
        assert_eq!(v.term(id), Some("b+"));
        assert_eq!(v.get("b+"), Some(id));
        assert_eq!(v.get("missing"), None);
        assert_eq!(v.term(TermId(99)), None);
    }

    #[test]
    fn serde_roundtrip_with_index_rebuild() {
        let mut v = Vocabulary::new();
        v.intern("x");
        v.intern("y");
        let json = serde_json::to_string(&v).unwrap();
        let mut back: Vocabulary = serde_json::from_str(&json).unwrap();
        assert_eq!(back.get("x"), None, "index is skipped by serde");
        back.rebuild_index();
        assert_eq!(back.get("x"), Some(TermId(0)));
        assert_eq!(back.get("y"), Some(TermId(1)));
    }

    #[test]
    fn iter_visits_in_id_order() {
        let mut v = Vocabulary::new();
        v.intern("p");
        v.intern("q");
        let collected: Vec<_> = v.iter().map(|(id, t)| (id.0, t.to_owned())).collect();
        assert_eq!(collected, vec![(0, "p".to_owned()), (1, "q".to_owned())]);
    }
}
