//! A compact English stopword list for question text.

/// Common English stopwords, sorted, lowercase.
///
/// The list is intentionally small: question words ("what", "how") carry no
/// topical signal, but domain terms must never be dropped, so we stay far
/// away from aggressive IR stoplists.
static STOPWORDS: &[&str] = &[
    "a", "about", "after", "all", "also", "am", "an", "and", "any", "are", "as", "at", "be",
    "because", "been", "before", "being", "between", "both", "but", "by", "can", "could", "did",
    "do", "does", "doing", "down", "during", "each", "few", "for", "from", "further", "had", "has",
    "have", "having", "he", "her", "here", "hers", "him", "his", "how", "i", "if", "in", "into",
    "is", "it", "its", "just", "me", "more", "most", "my", "no", "nor", "not", "now", "of", "off",
    "on", "once", "only", "or", "other", "our", "ours", "out", "over", "own", "same", "she",
    "should", "so", "some", "such", "than", "that", "the", "their", "theirs", "them", "then",
    "there", "these", "they", "this", "those", "through", "to", "too", "under", "until", "up",
    "very", "was", "we", "were", "what", "when", "where", "which", "while", "who", "whom", "why",
    "will", "with", "would", "you", "your", "yours",
];

/// Returns `true` if `term` (already lowercased) is a stopword.
pub fn is_stopword(term: &str) -> bool {
    STOPWORDS.binary_search(&term).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn list_is_sorted_for_binary_search() {
        let mut sorted = STOPWORDS.to_vec();
        sorted.sort_unstable();
        assert_eq!(sorted, STOPWORDS, "STOPWORDS must stay sorted");
    }

    #[test]
    fn common_words_match() {
        for w in ["the", "what", "is", "of", "a"] {
            assert!(is_stopword(w), "{w} should be a stopword");
        }
    }

    #[test]
    fn content_words_do_not_match() {
        for w in ["tree", "database", "b+", "advantages", "rust"] {
            assert!(!is_stopword(w), "{w} should not be a stopword");
        }
    }
}
