//! Golden-report snapshot over the seeded fixture tree, plus the
//! lexical-vs-call-graph separation proof: the indirect fixture
//! violations must be invisible to the lexical pack and caught — with
//! witness chains — by the `det` and `wait` packs.

use std::path::Path;

fn fixture_root() -> &'static Path {
    Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/fixtures"))
}

fn fixture_report() -> crowd_lint::report::Report {
    crowd_lint::lint_root(fixture_root()).expect("fixture tree must scan")
}

#[test]
fn fixture_report_matches_golden_snapshot() {
    let expected = include_str!("../fixtures/expected_report.json");
    let actual = fixture_report().to_json();
    assert_eq!(
        actual, expected,
        "fixture report drifted from the golden snapshot; if the change is \
         intentional, regenerate with `cargo run -p crowd-lint -- --root \
         crates/lint/fixtures --quiet --json crates/lint/fixtures/expected_report.json`"
    );
}

#[test]
fn every_rule_fires_at_least_once_on_the_fixture() {
    let report = fixture_report();
    for st in &report.stats {
        assert!(
            st.unsuppressed > 0,
            "rule `{}` has no unsuppressed fixture hit — the must-fail gate \
             would not notice if it silently stopped firing",
            st.name
        );
    }
}

#[test]
fn indirect_violations_are_invisible_to_the_lexical_baseline() {
    let lexical = fixture_report().filter_pack("lexical");
    let in_indirect: Vec<_> = lexical
        .diagnostics
        .iter()
        .filter(|d| d.path.ends_with("indirect.rs"))
        .collect();
    assert!(
        in_indirect.is_empty(),
        "the lexical rules must NOT see the indirect fixture (that is the \
         point of the call-graph packs), but found: {in_indirect:?}"
    );
}

#[test]
fn indirect_det_violation_is_caught_two_hops_deep_with_witness() {
    let det = fixture_report().filter_pack("det");
    let hit = det
        .diagnostics
        .iter()
        .find(|d| d.path.ends_with("indirect.rs") && d.rule == "det-no-unordered-float-sum")
        .expect("the hidden hash-ordered sum must be det-reachable");
    assert_eq!(
        hit.witness,
        vec!["indirect_det_entry", "det_middle_hop", "hidden_tally"],
        "witness chain must walk root → helper → offender"
    );
}

#[test]
fn indirect_wait_violation_is_caught_through_helper_with_witness() {
    let wait = fixture_report().filter_pack("wait");
    let hit = wait
        .diagnostics
        .iter()
        .find(|d| d.path.ends_with("indirect.rs") && d.rule == "wait-bounded-block-reachable")
        .expect("the hidden .recv() must be wait-reachable");
    assert_eq!(hit.witness, vec!["indirect_wait_entry", "blocking_helper"]);
}

#[test]
fn stale_pragma_in_fixture_is_flagged() {
    let report = fixture_report();
    assert!(
        report.diagnostics.iter().any(|d| {
            d.rule == "invalid-pragma" && !d.suppressed && d.message.contains("stale")
        }),
        "the seeded stale suppression must surface as invalid-pragma"
    );
}

#[test]
fn every_pack_fails_the_fixture_gate() {
    for pack in ["lexical", "det", "wait", "meta"] {
        let filtered = fixture_report().filter_pack(pack);
        assert!(
            filtered.total_unsuppressed() > 0,
            "pack `{pack}` has no unsuppressed fixture finding — its CI \
             must-fail check would pass vacuously"
        );
    }
}
