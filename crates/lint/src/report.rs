//! Machine-readable lint report (`results/LINT_5.json`).

use crate::rules::Diagnostic;

/// Per-rule hit counts.
#[derive(Debug, Clone)]
pub struct RuleStat {
    /// Rule name.
    pub name: &'static str,
    /// Findings not covered by a pragma — the CI gate requires 0.
    pub unsuppressed: usize,
    /// Findings covered by a reasoned pragma.
    pub suppressed: usize,
}

/// The full result of a lint run.
#[derive(Debug)]
pub struct Report {
    /// Files scanned.
    pub files_scanned: usize,
    /// Per-rule stats, in catalog order (invalid-pragma last).
    pub stats: Vec<RuleStat>,
    /// Every finding, suppressed ones included.
    pub diagnostics: Vec<Diagnostic>,
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if u32::from(c) < 0x20 => out.push_str(&format!("\\u{:04x}", u32::from(c))),
            c => out.push(c),
        }
    }
    out
}

impl Report {
    /// Total findings the gate counts against the build.
    pub fn total_unsuppressed(&self) -> usize {
        self.stats.iter().map(|s| s.unsuppressed).sum()
    }

    /// Renders the JSON artifact (stable key order, rule order = catalog
    /// order, diagnostics in file/line order — byte-deterministic).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str("  \"tool\": \"crowd-lint\",\n");
        s.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        s.push_str(&format!(
            "  \"total_unsuppressed\": {},\n",
            self.total_unsuppressed()
        ));
        s.push_str("  \"rules\": [\n");
        for (i, st) in self.stats.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"rule\": \"{}\", \"unsuppressed\": {}, \"suppressed\": {}}}{}\n",
                st.name,
                st.unsuppressed,
                st.suppressed,
                if i + 1 < self.stats.len() { "," } else { "" }
            ));
        }
        s.push_str("  ],\n");
        s.push_str("  \"diagnostics\": [\n");
        for (i, d) in self.diagnostics.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \
                 \"suppressed\": {}, \"message\": \"{}\"{}}}{}\n",
                d.rule,
                json_escape(&d.path),
                d.line,
                d.suppressed,
                json_escape(&d.message),
                match &d.reason {
                    Some(r) => format!(", \"reason\": \"{}\"", json_escape(r)),
                    None => String::new(),
                },
                if i + 1 < self.diagnostics.len() {
                    ","
                } else {
                    ""
                }
            ));
        }
        s.push_str("  ]\n");
        s.push_str("}\n");
        s
    }

    /// Renders the human summary printed after the per-site diagnostics.
    pub fn render_summary(&self) -> String {
        let mut s = String::new();
        for st in &self.stats {
            s.push_str(&format!(
                "  {:<28} {:>4} unsuppressed  {:>4} suppressed\n",
                st.name, st.unsuppressed, st.suppressed
            ));
        }
        s.push_str(&format!(
            "crowd-lint: {} file(s), {} unsuppressed finding(s)\n",
            self.files_scanned,
            self.total_unsuppressed()
        ));
        s
    }
}
