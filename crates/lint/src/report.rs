//! Machine-readable lint report (`results/LINT_10.json`).
//!
//! Schema v2 (PR 10): a top-level `schema_version`, a `pack` per rule
//! (`lexical`, `det`, `wait`, `meta`), and a `witness` call chain on
//! call-graph diagnostics. Paths are workspace-relative and
//! `/`-separated; key order, rule order, and diagnostic order are all
//! deterministic so the artifact is byte-stable across runs.

use crate::rules::{rule_catalog, Diagnostic};

/// The JSON schema version this build of the tool emits.
pub const SCHEMA_VERSION: u32 = 2;

/// Per-rule hit counts.
#[derive(Debug, Clone)]
pub struct RuleStat {
    /// Rule name.
    pub name: &'static str,
    /// Rule pack (`lexical`, `det`, `wait`, `meta`).
    pub pack: &'static str,
    /// Findings not covered by a pragma — the CI gate requires 0.
    pub unsuppressed: usize,
    /// Findings covered by a reasoned pragma.
    pub suppressed: usize,
}

/// The full result of a lint run.
#[derive(Debug)]
pub struct Report {
    /// Files scanned.
    pub files_scanned: usize,
    /// Per-rule stats, in catalog order (invalid-pragma last).
    pub stats: Vec<RuleStat>,
    /// Every finding, suppressed ones included.
    pub diagnostics: Vec<Diagnostic>,
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if u32::from(c) < 0x20 => out.push_str(&format!("\\u{:04x}", u32::from(c))),
            c => out.push(c),
        }
    }
    out
}

impl Report {
    /// Builds the report from sorted diagnostics, counting per-rule stats
    /// in catalog order.
    pub fn build(files_scanned: usize, diagnostics: Vec<Diagnostic>) -> Report {
        let mut stats: Vec<RuleStat> = rule_catalog()
            .iter()
            .map(|r| RuleStat {
                name: r.name,
                pack: r.pack,
                unsuppressed: 0,
                suppressed: 0,
            })
            .collect();
        for d in &diagnostics {
            if let Some(st) = stats.iter_mut().find(|s| s.name == d.rule) {
                if d.suppressed {
                    st.suppressed += 1;
                } else {
                    st.unsuppressed += 1;
                }
            }
        }
        Report {
            files_scanned,
            stats,
            diagnostics,
        }
    }

    /// Restricts the report to one rule pack (for the per-pack fixture
    /// must-fail gates). Unknown pack names yield an empty report.
    pub fn filter_pack(self, pack: &str) -> Report {
        let keep: Vec<&'static str> = self
            .stats
            .iter()
            .filter(|s| s.pack == pack)
            .map(|s| s.name)
            .collect();
        Report {
            files_scanned: self.files_scanned,
            stats: self.stats.into_iter().filter(|s| s.pack == pack).collect(),
            diagnostics: self
                .diagnostics
                .into_iter()
                .filter(|d| keep.contains(&d.rule))
                .collect(),
        }
    }

    /// Total findings the gate counts against the build.
    pub fn total_unsuppressed(&self) -> usize {
        self.stats.iter().map(|s| s.unsuppressed).sum()
    }

    /// Renders the JSON artifact (stable key order, rule order = catalog
    /// order, diagnostics in file/line order — byte-deterministic).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str("  \"tool\": \"crowd-lint\",\n");
        s.push_str(&format!("  \"schema_version\": {SCHEMA_VERSION},\n"));
        s.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        s.push_str(&format!(
            "  \"total_unsuppressed\": {},\n",
            self.total_unsuppressed()
        ));
        s.push_str("  \"rules\": [\n");
        for (i, st) in self.stats.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"rule\": \"{}\", \"pack\": \"{}\", \"unsuppressed\": {}, \
                 \"suppressed\": {}}}{}\n",
                st.name,
                st.pack,
                st.unsuppressed,
                st.suppressed,
                if i + 1 < self.stats.len() { "," } else { "" }
            ));
        }
        s.push_str("  ],\n");
        s.push_str("  \"diagnostics\": [\n");
        for (i, d) in self.diagnostics.iter().enumerate() {
            let witness = if d.witness.is_empty() {
                String::new()
            } else {
                format!(
                    ", \"witness\": [{}]",
                    d.witness
                        .iter()
                        .map(|w| format!("\"{}\"", json_escape(w)))
                        .collect::<Vec<_>>()
                        .join(", ")
                )
            };
            s.push_str(&format!(
                "    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \
                 \"suppressed\": {}, \"message\": \"{}\"{}{}}}{}\n",
                d.rule,
                json_escape(&d.path),
                d.line,
                d.suppressed,
                json_escape(&d.message),
                match &d.reason {
                    Some(r) => format!(", \"reason\": \"{}\"", json_escape(r)),
                    None => String::new(),
                },
                witness,
                if i + 1 < self.diagnostics.len() {
                    ","
                } else {
                    ""
                }
            ));
        }
        s.push_str("  ]\n");
        s.push_str("}\n");
        s
    }

    /// Renders the human summary printed after the per-site diagnostics.
    pub fn render_summary(&self) -> String {
        let mut s = String::new();
        for st in &self.stats {
            s.push_str(&format!(
                "  {:<28} [{:<7}] {:>4} unsuppressed  {:>4} suppressed\n",
                st.name, st.pack, st.unsuppressed, st.suppressed
            ));
        }
        s.push_str(&format!(
            "crowd-lint: {} file(s), {} unsuppressed finding(s)\n",
            self.files_scanned,
            self.total_unsuppressed()
        ));
        s
    }
}
