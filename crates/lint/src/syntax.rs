//! Token-tree syntax layer: the bridge from [`crate::strip`]'s per-line
//! code channel to a structural model of a Rust file.
//!
//! The lexical rules of PR 5–9 see lines; the call-graph rule packs need
//! *items*: which `fn`s a file defines, which impl/trait block each lives
//! in, where its body starts and ends, what it calls, and which local
//! names are bound to hash collections. This module answers those
//! questions with a small token stream over the stripped code channel —
//! no new dependencies, no proc macros, and (by construction) no string or
//! comment content, because the stripper already removed both.
//!
//! Precision contract: the parser is *best effort* on exotic syntax
//! (higher-ranked bounds, macro-generated items) but exact on the
//! workspace's idioms. Where type information is genuinely absent the
//! model records "unknown" and the resolver in [`crate::graph`] falls back
//! to name-based matching — a deliberate over-approximation, because a
//! reachability analysis used as a CI gate must not silently *miss* edges.

use crate::strip::Line;
use std::collections::BTreeMap;
use std::ops::Range;

/// One token of the code channel.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// Identifier text, or the punctuation lexeme (`::` is one token).
    pub text: String,
    /// `true` for identifiers/keywords, `false` for punctuation.
    pub ident: bool,
    /// 0-based source line.
    pub line: usize,
}

/// Tokenizes the stripped code channels. Number literals and lifetimes are
/// dropped: no rule needs them, and skipping them keeps `'a` from ever
/// looking like an identifier.
pub fn tokenize(lines: &[Line]) -> Vec<Token> {
    let mut out = Vec::new();
    for (ln, line) in lines.iter().enumerate() {
        let chars: Vec<char> = line.code.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            let c = chars[i];
            if c.is_whitespace() {
                i += 1;
            } else if c.is_alphabetic() || c == '_' {
                let start = i;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                out.push(Token {
                    text: chars[start..i].iter().collect(),
                    ident: true,
                    line: ln,
                });
            } else if c.is_ascii_digit() {
                while i < chars.len()
                    && (chars[i].is_alphanumeric() || chars[i] == '.' || chars[i] == '_')
                {
                    i += 1;
                }
            } else if c == '\'' {
                // Lifetime or (blanked) char literal: skip the quote and any
                // identifier tail.
                i += 1;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                if i < chars.len() && chars[i] == '\'' {
                    i += 1;
                }
            } else if c == ':' && chars.get(i + 1) == Some(&':') {
                out.push(Token {
                    text: "::".to_string(),
                    ident: false,
                    line: ln,
                });
                i += 2;
            } else if c == '-' && chars.get(i + 1) == Some(&'>') {
                out.push(Token {
                    text: "->".to_string(),
                    ident: false,
                    line: ln,
                });
                i += 2;
            } else if c == '=' && chars.get(i + 1) == Some(&'>') {
                out.push(Token {
                    text: "=>".to_string(),
                    ident: false,
                    line: ln,
                });
                i += 2;
            } else {
                out.push(Token {
                    text: c.to_string(),
                    ident: false,
                    line: ln,
                });
                i += 1;
            }
        }
    }
    out
}

/// How a call site names its callee.
#[derive(Debug, Clone, PartialEq)]
pub enum CallKind {
    /// `foo(...)` — a free (or `use`-imported) function.
    Free,
    /// `recv.foo(...)`; the receiver's core type when lexically resolvable.
    Method {
        /// Core type of the receiver (`None` when unknown).
        recv_type: Option<String>,
    },
    /// `Qual::foo(...)`; the path segment directly before the callee.
    Path {
        /// The qualifying segment (a type, module, or `crate`/`self`).
        qualifier: String,
    },
}

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Callee name as written.
    pub name: String,
    /// Resolution hint.
    pub kind: CallKind,
    /// 0-based line of the callee token.
    pub line: usize,
}

/// A hash-collection iteration site (the determinism hazard).
#[derive(Debug, Clone)]
pub struct HashIterSite {
    /// 0-based line.
    pub line: usize,
    /// Rendered receiver for the message (`per_shard.values()`).
    pub what: String,
    /// `true` when the same line feeds the iteration into a float reduce
    /// (`.sum(` / `.fold(` / `.product(`).
    pub feeds_reduce: bool,
}

/// A bare `loop { … }` block (the bounded-wait hazard surface).
#[derive(Debug, Clone)]
pub struct LoopSpan {
    /// 0-based first line (the `loop` keyword).
    pub start: usize,
    /// 0-based line of the matching close brace.
    pub end: usize,
}

/// A function definition with everything the graph layer needs.
#[derive(Debug, Clone)]
pub struct FnDef {
    /// Name as written.
    pub name: String,
    /// Enclosing `impl`/`trait` type name, when inside one.
    pub qual: Option<String>,
    /// Trait name for `impl Trait for Type` blocks (`qual` holds `Type`).
    pub trait_name: Option<String>,
    /// 0-based line of the `fn` keyword.
    pub decl_line: usize,
    /// 0-based *exclusive* line range `decl..close+1` covering the body
    /// (just the decl line for body-less trait signatures).
    pub body: Range<usize>,
    /// `true` when the declaration sits in test code.
    pub is_test: bool,
    /// Calls made from the body (nested items included — attributing a
    /// nested helper's calls to the outer fn keeps reachability sound).
    pub calls: Vec<CallSite>,
    /// Hash-collection iterations in the body.
    pub hash_iters: Vec<HashIterSite>,
    /// `.mul_add(` call lines in the body.
    pub mul_add_lines: Vec<usize>,
    /// Unbounded blocking calls in the body: `(line, method name)`.
    pub unbounded_block_lines: Vec<(usize, String)>,
    /// Bare `loop { … }` spans in the body.
    pub loops: Vec<LoopSpan>,
}

/// The parsed structural model of one file.
#[derive(Debug, Default)]
pub struct FileSyntax {
    /// Every `fn` definition, nested ones included, in source order.
    pub fns: Vec<FnDef>,
    /// `struct Name { field: Type }` field types: `(struct, field) → type`.
    pub fields: BTreeMap<(String, String), String>,
}

/// Rust keywords that must never be mistaken for callees or receivers.
fn is_keyword(s: &str) -> bool {
    matches!(
        s,
        "as" | "break"
            | "const"
            | "continue"
            | "crate"
            | "dyn"
            | "else"
            | "enum"
            | "extern"
            | "false"
            | "fn"
            | "for"
            | "if"
            | "impl"
            | "in"
            | "let"
            | "loop"
            | "match"
            | "mod"
            | "move"
            | "mut"
            | "pub"
            | "ref"
            | "return"
            | "self"
            | "Self"
            | "static"
            | "struct"
            | "super"
            | "trait"
            | "true"
            | "type"
            | "unsafe"
            | "use"
            | "where"
            | "while"
            | "async"
            | "await"
            | "box"
    )
}

/// Smart-pointer / container wrappers peeled away when extracting the core
/// type of an annotation like `Option<Arc<AdmissionController>>`.
const TYPE_WRAPPERS: &[&str] = &[
    "Option",
    "Arc",
    "Rc",
    "Box",
    "Result",
    "Mutex",
    "RwLock",
    "RefCell",
    "Cell",
    "Cow",
    "MutexGuard",
    "RwLockReadGuard",
    "RwLockWriteGuard",
    "Weak",
    "Pin",
    "ManuallyDrop",
];

/// First non-wrapper capitalized ident of a type annotation: the "core"
/// type used for method resolution. `Vec`/`VecDeque` and friends stay
/// terminal (their methods are std's, not the workspace's), so a known
/// `Vec<T>` receiver resolves to nothing rather than to `T`'s methods.
pub fn core_type(type_text: &str) -> Option<String> {
    for word in type_text
        .split(|c: char| !(c.is_alphanumeric() || c == '_'))
        .filter(|w| !w.is_empty())
    {
        if TYPE_WRAPPERS.contains(&word) || is_keyword(word) {
            continue;
        }
        if word.chars().next().is_some_and(char::is_uppercase) {
            return Some(word.to_string());
        }
    }
    None
}

/// `true` when a type annotation names a hash collection anywhere.
pub fn is_hash_type(type_text: &str) -> bool {
    type_text.contains("HashMap") || type_text.contains("HashSet")
}

/// Iterator-producing methods whose order is the hash table's.
const HASH_ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "into_keys",
    "values",
    "values_mut",
    "into_values",
    "drain",
];

/// Blocking primitives that park without a bound. `wait_timeout` /
/// `recv_timeout` / `try_recv` are distinct idents, so they never match.
const UNBOUNDED_BLOCK_METHODS: &[&str] = &["wait", "recv"];

/// Skips a balanced `<...>` run starting at `j` (which must point at `<`).
fn skip_angles(toks: &[Token], mut j: usize) -> usize {
    let mut a = 0i64;
    while j < toks.len() {
        match toks[j].text.as_str() {
            "<" => a += 1,
            ">" => {
                a -= 1;
                if a == 0 {
                    return j + 1;
                }
            }
            // `{`/`;` inside what we took for generics means we misread —
            // bail where we are rather than swallow an item.
            ";" | "{" => return j,
            _ => {}
        }
        j += 1;
    }
    j
}

/// `(fn index, first param-list token, closing paren token)`.
type ParamSpan = (usize, usize, usize);

/// Parses one file. `lines` must be the stripped lines of the same source
/// (used for per-line test flags and reduce detection).
pub fn parse_file(lines: &[Line]) -> FileSyntax {
    let toks = tokenize(lines);
    let mut out = FileSyntax::default();
    let mut param_spans: Vec<ParamSpan> = Vec::new();

    // ---- pass 1: scopes, struct fields, fn extents ----------------------
    #[derive(Debug, Clone)]
    struct Scope {
        depth_at_open: i64,
        qual: Option<String>,
        trait_name: Option<String>,
    }
    let mut depth: i64 = 0;
    let mut scopes: Vec<Scope> = Vec::new();
    // `(fn index, depth to close at)` for extent tracking.
    let mut open_fns: Vec<(usize, i64)> = Vec::new();
    let mut i = 0usize;

    while i < toks.len() {
        let t = &toks[i];
        if !t.ident {
            match t.text.as_str() {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    while scopes.last().is_some_and(|s| s.depth_at_open >= depth) {
                        scopes.pop();
                    }
                    while let Some(&(fi, d)) = open_fns.last() {
                        if d == depth {
                            out.fns[fi].body = out.fns[fi].body.start..t.line + 1;
                            open_fns.pop();
                        } else {
                            break;
                        }
                    }
                }
                _ => {}
            }
            i += 1;
            continue;
        }
        match t.text.as_str() {
            "impl" | "trait" => {
                let is_trait = t.text == "trait";
                let mut j = i + 1;
                if toks.get(j).is_some_and(|x| x.text == "<") {
                    j = skip_angles(&toks, j);
                }
                let mut before_for: Vec<String> = Vec::new();
                let mut after_for: Vec<String> = Vec::new();
                let mut seen_for = false;
                while j < toks.len() {
                    let x = &toks[j];
                    match x.text.as_str() {
                        "{" | "where" | ";" => break,
                        "for" => {
                            seen_for = true;
                            j += 1;
                        }
                        "<" => j = skip_angles(&toks, j),
                        _ => {
                            if x.ident && !is_keyword(&x.text) {
                                if seen_for {
                                    after_for.push(x.text.clone());
                                } else {
                                    before_for.push(x.text.clone());
                                }
                            }
                            j += 1;
                        }
                    }
                }
                let (qual, trait_name) = if is_trait {
                    (before_for.first().cloned(), None)
                } else if seen_for {
                    (after_for.last().cloned(), before_for.last().cloned())
                } else {
                    (before_for.last().cloned(), None)
                };
                while j < toks.len() && toks[j].text != "{" && toks[j].text != ";" {
                    j += 1;
                }
                if toks.get(j).is_some_and(|x| x.text == "{") {
                    scopes.push(Scope {
                        depth_at_open: depth,
                        qual,
                        trait_name,
                    });
                    depth += 1;
                    j += 1;
                }
                i = j.max(i + 1);
            }
            "struct" => {
                if let Some(x) = toks.get(i + 1) {
                    if x.ident && !is_keyword(&x.text) {
                        let name = x.text.clone();
                        let mut j = i + 2;
                        if toks.get(j).is_some_and(|y| y.text == "<") {
                            j = skip_angles(&toks, j);
                        }
                        while j < toks.len()
                            && toks[j].text != "{"
                            && toks[j].text != ";"
                            && toks[j].text != "("
                        {
                            j += 1;
                        }
                        if toks.get(j).is_some_and(|y| y.text == "{") {
                            collect_fields(&toks, j + 1, &name, &mut out.fields);
                        }
                    }
                }
                i += 1;
            }
            "fn" => {
                let Some(name_tok) = toks.get(i + 1) else {
                    i += 1;
                    continue;
                };
                if !name_tok.ident || is_keyword(&name_tok.text) {
                    i += 1;
                    continue;
                }
                let scope = scopes.last();
                let decl_line = t.line;
                let mut j = i + 2;
                if toks.get(j).is_some_and(|x| x.text == "<") {
                    j = skip_angles(&toks, j);
                }
                // Parameter list extent.
                let params_start = j;
                let mut pdepth = 0i64;
                let mut params_end = j;
                while j < toks.len() {
                    match toks[j].text.as_str() {
                        "(" => pdepth += 1,
                        ")" => {
                            pdepth -= 1;
                            if pdepth == 0 {
                                params_end = j;
                                j += 1;
                                break;
                            }
                        }
                        "{" | ";" => break,
                        _ => {}
                    }
                    j += 1;
                }
                // Body `{` or trailing `;` (skipping return type / where).
                let mut a = 0i64;
                let mut body_open: Option<usize> = None;
                while j < toks.len() {
                    match toks[j].text.as_str() {
                        "<" => a += 1,
                        ">" => a -= 1,
                        "{" if a <= 0 => {
                            body_open = Some(j);
                            break;
                        }
                        ";" if a <= 0 => break,
                        _ => {}
                    }
                    j += 1;
                }
                let fi = out.fns.len();
                out.fns.push(FnDef {
                    name: name_tok.text.clone(),
                    qual: scope.and_then(|s| s.qual.clone()),
                    trait_name: scope.and_then(|s| s.trait_name.clone()),
                    decl_line,
                    body: decl_line..decl_line + 1,
                    is_test: lines.get(decl_line).is_some_and(|l| l.in_test),
                    calls: Vec::new(),
                    hash_iters: Vec::new(),
                    mul_add_lines: Vec::new(),
                    unbounded_block_lines: Vec::new(),
                    loops: Vec::new(),
                });
                param_spans.push((fi, params_start, params_end));
                if let Some(open) = body_open {
                    open_fns.push((fi, depth));
                    depth += 1;
                    i = open + 1;
                } else {
                    i = j + 1;
                }
            }
            _ => i += 1,
        }
    }
    // Close any fn left open at EOF.
    let last_line = lines.len().saturating_sub(1);
    while let Some((fi, _)) = open_fns.pop() {
        out.fns[fi].body = out.fns[fi].body.start..last_line + 1;
    }

    analyze_bodies(&toks, lines, &mut out, &param_spans);
    out
}

/// Collects `field: Type` pairs of a named-field struct body starting just
/// inside its `{`.
fn collect_fields(
    toks: &[Token],
    start: usize,
    struct_name: &str,
    fields: &mut BTreeMap<(String, String), String>,
) {
    let mut k = start;
    let mut fdepth = 1i64;
    let mut adepth = 0i64;
    while k < toks.len() && fdepth > 0 {
        match toks[k].text.as_str() {
            "{" | "(" => fdepth += 1,
            "}" | ")" => fdepth -= 1,
            "<" => adepth += 1,
            ">" => adepth -= 1,
            ":" if fdepth == 1 && adepth == 0 => {
                if let Some(prev) = k.checked_sub(1).and_then(|p| toks.get(p)) {
                    if prev.ident && !is_keyword(&prev.text) {
                        let mut ty = String::new();
                        let mut m = k + 1;
                        let mut a = 0i64;
                        let mut d = 0i64;
                        while m < toks.len() {
                            match toks[m].text.as_str() {
                                "<" => a += 1,
                                ">" => a -= 1,
                                "(" | "{" => d += 1,
                                ")" | "}" if d > 0 => d -= 1,
                                "," if a <= 0 && d == 0 => break,
                                "}" if a <= 0 && d == 0 => break,
                                _ => {}
                            }
                            if !ty.is_empty() {
                                ty.push(' ');
                            }
                            ty.push_str(&toks[m].text);
                            m += 1;
                        }
                        fields.insert((struct_name.to_string(), prev.text.clone()), ty);
                    }
                }
            }
            _ => {}
        }
        k += 1;
    }
}

/// Pass 2: walk every fn's token slice, binding local/param types and
/// extracting call sites and hazard sites.
fn analyze_bodies(toks: &[Token], lines: &[Line], out: &mut FileSyntax, spans: &[ParamSpan]) {
    // Token index ranges per fn: from decl to end of body (by line).
    for &(fi, pstart, pend) in spans {
        let (body_lines, qual) = {
            let f = &out.fns[fi];
            (f.body.clone(), f.qual.clone())
        };
        // Local name → type text. Params first.
        let mut locals: BTreeMap<String, String> = BTreeMap::new();
        let mut k = pstart;
        // Split the param list on top-level commas; record `name : Type`.
        let mut a = 0i64;
        let mut d = 0i64;
        let mut cur_name: Option<String> = None;
        let mut cur_ty: Option<String> = None;
        while k <= pend && k < toks.len() {
            let x = &toks[k];
            match x.text.as_str() {
                "<" => a += 1,
                ">" => a -= 1,
                "(" | "[" | "{" => d += 1,
                ")" | "]" | "}" => d -= 1,
                "," if a == 0 && d == 1 => {
                    if let (Some(n), Some(ty)) = (cur_name.take(), cur_ty.take()) {
                        locals.insert(n, ty);
                    }
                    cur_name = None;
                    cur_ty = None;
                }
                ":" if a == 0 && d == 1 && cur_ty.is_none() => {
                    cur_name = k
                        .checked_sub(1)
                        .and_then(|p| toks.get(p))
                        .filter(|p| p.ident && !is_keyword(&p.text))
                        .map(|p| p.text.clone());
                    cur_ty = Some(String::new());
                }
                _ => {
                    if let Some(ty) = cur_ty.as_mut() {
                        if !ty.is_empty() {
                            ty.push(' ');
                        }
                        ty.push_str(&x.text);
                    }
                }
            }
            k += 1;
        }
        if let (Some(n), Some(ty)) = (cur_name.take(), cur_ty.take()) {
            locals.insert(n, ty);
        }

        // Token slice of the body (by line range).
        let body_tok: Vec<usize> = (0..toks.len())
            .filter(|&ti| toks[ti].line >= body_lines.start && toks[ti].line < body_lines.end)
            .collect();

        // First sweep: `let` bindings (type annotations and `Type::ctor()`).
        let mut bi = 0usize;
        while bi < body_tok.len() {
            let ti = body_tok[bi];
            if toks[ti].text == "let" {
                let mut m = bi + 1;
                while m < body_tok.len() && toks[body_tok[m]].text == "mut" {
                    m += 1;
                }
                if let Some(&nti) = body_tok.get(m) {
                    let name_tok = &toks[nti];
                    if name_tok.ident && !is_keyword(&name_tok.text) {
                        let name = name_tok.text.clone();
                        match body_tok.get(m + 1).map(|&x| toks[x].text.as_str()) {
                            Some(":") => {
                                let mut ty = String::new();
                                let mut n = m + 2;
                                let mut aa = 0i64;
                                while n < body_tok.len() {
                                    let tt = &toks[body_tok[n]];
                                    match tt.text.as_str() {
                                        "<" => aa += 1,
                                        ">" => aa -= 1,
                                        "=" | ";" if aa <= 0 => break,
                                        _ => {}
                                    }
                                    if !ty.is_empty() {
                                        ty.push(' ');
                                    }
                                    ty.push_str(&tt.text);
                                    n += 1;
                                }
                                locals.insert(name, ty);
                            }
                            Some("=") => {
                                // `let x = Type::ctor(...)` — constructor
                                // heuristic: an uppercase path segment.
                                if let (Some(&t1), Some(&t2), Some(&t3)) = (
                                    body_tok.get(m + 2),
                                    body_tok.get(m + 3),
                                    body_tok.get(m + 4),
                                ) {
                                    if toks[t1].ident
                                        && toks[t1]
                                            .text
                                            .chars()
                                            .next()
                                            .is_some_and(char::is_uppercase)
                                        && toks[t2].text == "::"
                                        && toks[t3].ident
                                    {
                                        locals.insert(name, toks[t1].text.clone());
                                    }
                                }
                            }
                            _ => {}
                        }
                    }
                }
            }
            bi += 1;
        }

        // Resolve a receiver token run ending at `end_bi` (the token just
        // before the `.`), returning a core type when known.
        let recv_type = |end_bi: usize, body_tok: &[usize]| -> (Option<String>, String) {
            let ti = body_tok[end_bi];
            let t = &toks[ti];
            if t.text == ")" {
                // Chained call: find the matching `(`, then the callee.
                let mut d2 = 0i64;
                let mut m = end_bi;
                loop {
                    let x = &toks[body_tok[m]];
                    if x.text == ")" {
                        d2 += 1;
                    } else if x.text == "(" {
                        d2 -= 1;
                        if d2 == 0 {
                            break;
                        }
                    }
                    if m == 0 {
                        return (None, String::new());
                    }
                    m -= 1;
                }
                // Callee ident before `(`; qualifier before `::`.
                if m >= 1 {
                    let callee = &toks[body_tok[m - 1]];
                    if callee.ident && m >= 3 && toks[body_tok[m - 2]].text == "::" {
                        let q = &toks[body_tok[m - 3]];
                        if q.ident && q.text.chars().next().is_some_and(char::is_uppercase) {
                            // `Type::ctor(..)` chains: assume the ctor
                            // returns (a handle to) `Type`.
                            return (
                                Some(q.text.clone()),
                                format!("{}::{}()", q.text, callee.text),
                            );
                        }
                    }
                }
                (None, String::new())
            } else if t.ident {
                if t.text == "self" {
                    return (qual.clone(), "self".to_string());
                }
                // `self.field` receiver?
                if end_bi >= 2
                    && toks[body_tok[end_bi - 1]].text == "."
                    && toks[body_tok[end_bi - 2]].text == "self"
                {
                    if let Some(q) = &qual {
                        if let Some(ty) = out.fields.get(&(q.clone(), t.text.clone())) {
                            return (core_type(ty), format!("self.{}", t.text));
                        }
                    }
                    return (None, format!("self.{}", t.text));
                }
                if let Some(ty) = locals.get(&t.text) {
                    return (core_type(ty), t.text.clone());
                }
                (None, t.text.clone())
            } else {
                (None, String::new())
            }
        };

        // Hash-typedness of a receiver run ending at `end_bi`.
        let recv_is_hash = |end_bi: usize, body_tok: &[usize]| -> bool {
            let t = &toks[body_tok[end_bi]];
            if !t.ident {
                return false;
            }
            if end_bi >= 2
                && toks[body_tok[end_bi - 1]].text == "."
                && toks[body_tok[end_bi - 2]].text == "self"
            {
                if let Some(q) = &qual {
                    if let Some(ty) = out.fields.get(&(q.clone(), t.text.clone())) {
                        return is_hash_type(ty);
                    }
                }
                return false;
            }
            locals.get(&t.text).is_some_and(|ty| is_hash_type(ty))
        };

        let mut calls = Vec::new();
        let mut hash_iters = Vec::new();
        let mut mul_add_lines = Vec::new();
        let mut unbounded = Vec::new();
        let mut loops = Vec::new();

        let mut bi = 0usize;
        while bi < body_tok.len() {
            let ti = body_tok[bi];
            let t = &toks[ti];
            if lines[t.line].in_test {
                bi += 1;
                continue;
            }
            // Bare `loop {` spans.
            if t.ident && t.text == "loop" {
                if let Some(&nti) = body_tok.get(bi + 1) {
                    if toks[nti].text == "{" {
                        let mut d2 = 0i64;
                        let mut m = bi + 1;
                        let mut end_line = t.line;
                        while m < body_tok.len() {
                            match toks[body_tok[m]].text.as_str() {
                                "{" => d2 += 1,
                                "}" => {
                                    d2 -= 1;
                                    if d2 == 0 {
                                        end_line = toks[body_tok[m]].line;
                                        break;
                                    }
                                }
                                _ => {}
                            }
                            m += 1;
                        }
                        loops.push(LoopSpan {
                            start: t.line,
                            end: end_line,
                        });
                    }
                }
            }
            // `for pat in [&][mut] ident {` over a hash-typed ident.
            if t.ident && t.text == "for" {
                let mut m = bi + 1;
                while m < body_tok.len()
                    && toks[body_tok[m]].text != "in"
                    && toks[body_tok[m]].text != "{"
                {
                    m += 1;
                }
                if m < body_tok.len() && toks[body_tok[m]].text == "in" {
                    let mut n = m + 1;
                    while n < body_tok.len()
                        && matches!(toks[body_tok[n]].text.as_str(), "&" | "mut")
                    {
                        n += 1;
                    }
                    if let Some(&iti) = body_tok.get(n) {
                        let it = &toks[iti];
                        let follows = body_tok.get(n + 1).map(|&x| toks[x].text.as_str());
                        if it.ident
                            && !is_keyword(&it.text)
                            && matches!(follows, Some("{"))
                            && locals.get(&it.text).is_some_and(|ty| is_hash_type(ty))
                        {
                            hash_iters.push(HashIterSite {
                                line: it.line,
                                what: format!("for … in {}", it.text),
                                feeds_reduce: false,
                            });
                        }
                    }
                }
            }
            // Call sites: Ident followed by `(`.
            if t.ident
                && !is_keyword(&t.text)
                && body_tok.get(bi + 1).is_some_and(|&x| toks[x].text == "(")
            {
                let prev = bi.checked_sub(1).map(|p| toks[body_tok[p]].text.clone());
                let prev2 = bi.checked_sub(2).map(|p| toks[body_tok[p]].text.clone());
                let is_macro = false; // `name!(` tokenizes as Ident,`!`,`(` — prev of `(` is `!`
                let followed_by_bang = false;
                let _ = (is_macro, followed_by_bang);
                match prev.as_deref() {
                    Some("fn") => {}
                    Some(".") => {
                        let name = t.text.clone();
                        let (rt, rendered) = if bi >= 2 {
                            recv_type(bi - 2, &body_tok)
                        } else {
                            (None, String::new())
                        };
                        // Hazards on method calls.
                        if HASH_ITER_METHODS.contains(&name.as_str())
                            && bi >= 2
                            && recv_is_hash(bi - 2, &body_tok)
                        {
                            let code = &lines[t.line].code;
                            let feeds = code.contains(".sum(")
                                || code.contains(".fold(")
                                || code.contains(".product(");
                            hash_iters.push(HashIterSite {
                                line: t.line,
                                what: format!("{rendered}.{name}()"),
                                feeds_reduce: feeds,
                            });
                        }
                        if name == "mul_add" {
                            mul_add_lines.push(t.line);
                        }
                        if UNBOUNDED_BLOCK_METHODS.contains(&name.as_str()) {
                            unbounded.push((t.line, name.clone()));
                        }
                        calls.push(CallSite {
                            name,
                            kind: CallKind::Method { recv_type: rt },
                            line: t.line,
                        });
                    }
                    Some("::") => {
                        let qualifier = prev2.unwrap_or_default();
                        calls.push(CallSite {
                            name: t.text.clone(),
                            kind: CallKind::Path { qualifier },
                            line: t.line,
                        });
                    }
                    _ => {
                        calls.push(CallSite {
                            name: t.text.clone(),
                            kind: CallKind::Free,
                            line: t.line,
                        });
                    }
                }
            }
            // Macro invocations `name!(` are *not* calls: the `!` sits
            // between ident and paren, so the pattern above skips them.
            bi += 1;
        }

        let f = &mut out.fns[fi];
        f.calls = calls;
        f.hash_iters = hash_iters;
        f.mul_add_lines = mul_add_lines;
        f.unbounded_block_lines = unbounded;
        f.loops = loops;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strip::{mark_test_regions, strip};

    fn parse(src: &str) -> FileSyntax {
        let mut lines = strip(src);
        mark_test_regions(&mut lines);
        parse_file(&lines)
    }

    #[test]
    fn fns_and_extents_are_found() {
        let src = "\
pub fn top(x: u32) -> u32 {
    helper(x)
}
fn helper(x: u32) -> u32 {
    x + 1
}
";
        let s = parse(src);
        assert_eq!(s.fns.len(), 2);
        assert_eq!(s.fns[0].name, "top");
        assert_eq!(s.fns[0].body, 0..3);
        assert_eq!(s.fns[1].name, "helper");
        assert_eq!(s.fns[1].body, 3..6);
        assert_eq!(s.fns[0].calls.len(), 1);
        assert_eq!(s.fns[0].calls[0].name, "helper");
        assert_eq!(s.fns[0].calls[0].kind, CallKind::Free);
    }

    #[test]
    fn impl_methods_get_their_type() {
        let src = "\
struct Pool { q: Vec<u32> }
impl Pool {
    pub fn run(&self) { self.step(); }
    fn step(&self) {}
}
impl Drop for Pool {
    fn drop(&mut self) {}
}
";
        let s = parse(src);
        let run = s.fns.iter().find(|f| f.name == "run").unwrap();
        assert_eq!(run.qual.as_deref(), Some("Pool"));
        let drop = s.fns.iter().find(|f| f.name == "drop").unwrap();
        assert_eq!(drop.qual.as_deref(), Some("Pool"));
        assert_eq!(drop.trait_name.as_deref(), Some("Drop"));
        // `self.step()` resolves the receiver to the impl type.
        let call = &run.calls[0];
        assert_eq!(call.name, "step");
        assert_eq!(
            call.kind,
            CallKind::Method {
                recv_type: Some("Pool".to_string())
            }
        );
    }

    #[test]
    fn ctor_chain_receiver_is_typed() {
        let src = "fn f() { ScoringPool::global().run(jobs); }\n";
        let s = parse(src);
        let calls = &s.fns[0].calls;
        let run = calls.iter().find(|c| c.name == "run").unwrap();
        assert_eq!(
            run.kind,
            CallKind::Method {
                recv_type: Some("ScoringPool".to_string())
            }
        );
        let global = calls.iter().find(|c| c.name == "global").unwrap();
        assert_eq!(
            global.kind,
            CallKind::Path {
                qualifier: "ScoringPool".to_string()
            }
        );
    }

    #[test]
    fn local_and_param_hash_types_are_tracked() {
        let src = "\
fn tally(per_shard: &HashMap<u64, f64>) -> f64 {
    per_shard.values().sum()
}
fn collect(xs: &[u64]) {
    let mut seen: HashSet<u64> = HashSet::new();
    for s in seen {
        let _ = s;
    }
}
";
        let s = parse(src);
        let tally = &s.fns[0];
        assert_eq!(tally.hash_iters.len(), 1);
        assert!(tally.hash_iters[0].feeds_reduce);
        assert!(tally.hash_iters[0].what.contains("values"));
        let collect = &s.fns[1];
        assert_eq!(collect.hash_iters.len(), 1, "{:?}", collect.hash_iters);
        assert!(!collect.hash_iters[0].feeds_reduce);
    }

    #[test]
    fn field_hash_iteration_is_detected_via_struct_fields() {
        let src = "\
struct Reg { by_name: HashMap<String, u32>, tag: String }
impl Reg {
    fn dump(&self) -> Vec<u32> {
        self.by_name.values().copied().collect()
    }
    fn lookup(&self, k: &str) -> Option<&u32> {
        self.by_name.get(k)
    }
}
";
        let s = parse(src);
        let dump = s.fns.iter().find(|f| f.name == "dump").unwrap();
        assert_eq!(dump.hash_iters.len(), 1);
        let lookup = s.fns.iter().find(|f| f.name == "lookup").unwrap();
        assert!(
            lookup.hash_iters.is_empty(),
            "lookups are not iteration: {:?}",
            lookup.hash_iters
        );
    }

    #[test]
    fn non_hash_values_method_is_not_flagged() {
        // `Matrix::values()` exists in crowd-math; a known non-hash type
        // must not trip the hash-iteration detector.
        let src = "\
fn check(phi: &Matrix) -> f64 {
    phi.values().iter().sum()
}
";
        let s = parse(src);
        assert!(s.fns[0].hash_iters.is_empty());
    }

    #[test]
    fn loops_waits_and_mul_add_are_recorded() {
        let src = "\
fn spin(cv: &Condvar, g: G) {
    loop {
        let _ = cv.wait(g);
    }
    let x = a.mul_add(b, c);
    let _ = rx.recv();
    let _ = rx.recv_timeout(d);
    let _ = cv.wait_timeout(g, d);
}
";
        let s = parse(src);
        let f = &s.fns[0];
        assert_eq!(f.loops.len(), 1);
        assert_eq!(f.loops[0].start, 1);
        assert_eq!(f.loops[0].end, 3);
        assert_eq!(f.mul_add_lines, vec![4]);
        let names: Vec<&str> = f
            .unbounded_block_lines
            .iter()
            .map(|(_, n)| n.as_str())
            .collect();
        assert_eq!(names, vec!["wait", "recv"], "timeout variants excluded");
    }

    #[test]
    fn test_fns_are_marked_and_macros_are_not_calls() {
        let src = "\
#[cfg(test)]
mod tests {
    fn t() { helper(); }
}
fn live() { println!(\"x\"); assert_eq!(1, 1); real(); }
";
        let s = parse(src);
        let t = s.fns.iter().find(|f| f.name == "t").unwrap();
        assert!(t.is_test);
        let live = s.fns.iter().find(|f| f.name == "live").unwrap();
        assert!(!live.is_test);
        let names: Vec<&str> = live.calls.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, vec!["real"], "macros must not register as calls");
    }

    #[test]
    fn core_type_peels_wrappers() {
        assert_eq!(
            core_type("Option < Arc < AdmissionController > >").as_deref(),
            Some("AdmissionController")
        );
        assert_eq!(
            core_type("& mut Vec < FirstMoments >").as_deref(),
            Some("Vec")
        );
        assert_eq!(core_type("usize"), None);
        assert_eq!(core_type("& dyn WorkGuard").as_deref(), Some("WorkGuard"));
    }

    #[test]
    fn trait_sigs_without_bodies_are_recorded() {
        let src = "\
trait Backend {
    fn select(&self, k: usize) -> Vec<u32>;
    fn name(&self) -> &str { \"x\" }
}
";
        let s = parse(src);
        assert_eq!(s.fns.len(), 2);
        assert_eq!(s.fns[0].name, "select");
        assert_eq!(s.fns[0].qual.as_deref(), Some("Backend"));
        assert_eq!(s.fns[0].body, 1..2, "sig-only fn spans its decl line");
        assert_eq!(s.fns[1].body, 2..3);
    }
}
