//! The lint rule registry.
//!
//! Every rule is lexical: it sees a [`SourceFile`] whose lines have already
//! been split into code/comment channels (strings blanked, comments
//! separated) and test regions marked. Rules emit raw [`Diagnostic`]s; the
//! engine applies suppression pragmas afterwards, so a rule never needs to
//! know about pragmas.

use crate::source::SourceFile;

/// One finding, anchored to a file and 1-based line.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Rule that fired.
    pub rule: &'static str,
    /// Path relative to the lint root, `/`-separated.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Human-readable explanation with the expected fix.
    pub message: String,
    /// Set by the engine when a pragma covers this site.
    pub suppressed: bool,
    /// The pragma's written reason, when suppressed.
    pub reason: Option<String>,
    /// Call chain `root → … → offender` for call-graph rules (empty for
    /// lexical findings).
    pub witness: Vec<String>,
}

/// One row of the full rule catalog (lexical rules, call-graph packs, and
/// the meta rule), carrying the pack each rule gates under.
#[derive(Debug, Clone, Copy)]
pub struct RuleInfo {
    /// Stable kebab-case rule name.
    pub name: &'static str,
    /// `lexical`, `det`, `wait`, or `meta`.
    pub pack: &'static str,
    /// One-line description.
    pub describe: &'static str,
}

/// The complete catalog in report order: lexical rules first, then the
/// call-graph packs, then `invalid-pragma`.
pub fn rule_catalog() -> Vec<RuleInfo> {
    let mut out: Vec<RuleInfo> = default_rules()
        .iter()
        .map(|r| RuleInfo {
            name: r.name(),
            pack: "lexical",
            describe: r.describe(),
        })
        .collect();
    out.extend(
        crate::graph::GRAPH_RULES
            .iter()
            .map(|&(name, pack, describe)| RuleInfo {
                name,
                pack,
                describe,
            }),
    );
    out.push(RuleInfo {
        name: "invalid-pragma",
        pack: "meta",
        describe: "suppression/root pragmas must be well-formed, reasoned, and non-stale",
    });
    out
}

/// A lint rule.
pub trait Rule {
    /// Stable kebab-case rule name (what pragmas reference).
    fn name(&self) -> &'static str;
    /// One-line description for `--help` and the rule catalog.
    fn describe(&self) -> &'static str;
    /// Emits diagnostics for `file` into `out`.
    fn check(&self, file: &SourceFile, out: &mut Vec<Diagnostic>);
}

/// The default registry, in catalog order.
pub fn default_rules() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(NoUnwrapOnServePath),
        Box::new(BoundedWaitOnServePath),
        Box::new(NoPerCallThreadSpawn),
        Box::new(NoPartialCmpUnwrap),
        Box::new(DeterministicSnapshotMaps),
        Box::new(OrderedShardMerge),
        Box::new(NoSilentTruncation),
        Box::new(PubFnPanicsDocumented),
    ]
}

fn diag(rule: &'static str, file: &SourceFile, line_idx: usize, message: String) -> Diagnostic {
    Diagnostic {
        rule,
        path: file.path.clone(),
        line: line_idx + 1,
        message,
        suppressed: false,
        reason: None,
        witness: Vec::new(),
    }
}

/// Crates whose non-test code is a serving path: a panic here takes down a
/// query, a dispatcher thread, or the store.
const SERVE_PATH_PREFIXES: &[&str] = &[
    "crates/core/src/",
    "crates/select/src/",
    "crates/query/src/",
    "crates/platform/src/",
    "crates/store/src/",
];

/// `no-unwrap-on-serve-path`: forbid `.unwrap()` / `.expect(` in non-test
/// code of the serving crates — route failures into `CoreError` /
/// `ManagerError` / `StoreError` / `QueryError` instead.
#[derive(Debug)]
pub struct NoUnwrapOnServePath;

impl Rule for NoUnwrapOnServePath {
    fn name(&self) -> &'static str {
        "no-unwrap-on-serve-path"
    }
    fn describe(&self) -> &'static str {
        "forbid .unwrap()/.expect( in non-test code of crates/{core,select,query,platform,store}"
    }
    fn check(&self, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        if !SERVE_PATH_PREFIXES.iter().any(|p| file.path.starts_with(p)) {
            return;
        }
        for (i, line) in file.lines.iter().enumerate() {
            if line.in_test {
                continue;
            }
            for pat in [".unwrap()", ".expect("] {
                let mut n = 0usize;
                let mut rest = line.code.as_str();
                while let Some(k) = rest.find(pat) {
                    n += 1;
                    rest = &rest[k + pat.len()..];
                }
                if n > 0 {
                    out.push(diag(
                        self.name(),
                        file,
                        i,
                        format!(
                            "`{pat}` on a serving path ({n} site{}): return the crate error \
                             type instead of panicking",
                            if n == 1 { "" } else { "s" }
                        ),
                    ));
                }
            }
        }
    }
}

/// `bounded-wait-on-serve-path`: forbid unbounded `Condvar::wait` in
/// non-test code of the serving crates — a queued query must always hold a
/// deadline, so blocking waits go through `wait_timeout` (as the admission
/// controller's queue does). The pattern is the exact substring `.wait(`,
/// which deliberately does *not* match `.wait_timeout(`.
#[derive(Debug)]
pub struct BoundedWaitOnServePath;

impl Rule for BoundedWaitOnServePath {
    fn name(&self) -> &'static str {
        "bounded-wait-on-serve-path"
    }
    fn describe(&self) -> &'static str {
        "forbid unbounded .wait( in non-test serving code; block via .wait_timeout( instead"
    }
    fn check(&self, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        if !SERVE_PATH_PREFIXES.iter().any(|p| file.path.starts_with(p)) {
            return;
        }
        for (i, line) in file.lines.iter().enumerate() {
            if line.in_test {
                continue;
            }
            if line.code.contains(".wait(") {
                out.push(diag(
                    self.name(),
                    file,
                    i,
                    "unbounded `.wait(` on a serving path: use `.wait_timeout(` with the \
                     queue's give-up deadline so a stuck slot cannot block a query forever"
                        .to_string(),
                ));
            }
        }
    }
}

/// `no-per-call-thread-spawn`: serving code must not create OS threads per
/// call — no `thread::spawn(` and no scoped spawns (`thread::scope(`,
/// `crossbeam::thread::scope(`) in non-test serving code. Chunked scoring
/// work goes through the persistent pool (`crowd_math::ScoringPool`)
/// instead; a thread that genuinely lives for a whole run (a simulation
/// worker, a dispatcher) carries a pragma saying so.
#[derive(Debug)]
pub struct NoPerCallThreadSpawn;

/// `thread::scope(` also matches the `crossbeam::thread::scope(` spelling,
/// so each spawn site is counted once.
const SPAWN_PATTERNS: &[&str] = &["thread::spawn(", "thread::scope("];

impl Rule for NoPerCallThreadSpawn {
    fn name(&self) -> &'static str {
        "no-per-call-thread-spawn"
    }
    fn describe(&self) -> &'static str {
        "forbid per-call thread::spawn/scope in serving code; use the persistent scoring pool"
    }
    fn check(&self, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        if !SERVE_PATH_PREFIXES.iter().any(|p| file.path.starts_with(p)) {
            return;
        }
        for (i, line) in file.lines.iter().enumerate() {
            if line.in_test {
                continue;
            }
            if SPAWN_PATTERNS.iter().any(|pat| line.code.contains(pat)) {
                out.push(diag(
                    self.name(),
                    file,
                    i,
                    "per-call thread spawn on a serving path: route chunked work \
                     through `crowd_math::ScoringPool` (persistent, reused across \
                     queries); a genuinely run-scoped thread needs a pragma"
                        .to_string(),
                ));
            }
        }
    }
}

/// `no-partial-cmp-unwrap`: float comparisons must go through the total
/// order (`f64::total_cmp` / the `crowd_select::ranking` helpers), never
/// `partial_cmp` — a stray NaN silently reorders rankings or panics.
#[derive(Debug)]
pub struct NoPartialCmpUnwrap;

impl Rule for NoPartialCmpUnwrap {
    fn name(&self) -> &'static str {
        "no-partial-cmp-unwrap"
    }
    fn describe(&self) -> &'static str {
        "forbid .partial_cmp( on floats; use total_cmp / crowd_select::ranking's total order"
    }
    fn check(&self, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        for (i, line) in file.lines.iter().enumerate() {
            if line.in_test {
                continue;
            }
            // Defining `fn partial_cmp` (a PartialOrd impl) is fine — the
            // rule targets call sites ordering floats.
            if line.code.contains(".partial_cmp(") && !line.code.contains("fn partial_cmp") {
                out.push(diag(
                    self.name(),
                    file,
                    i,
                    "`.partial_cmp(` call: use `f64::total_cmp` (see \
                     crowd_select::ranking) so NaN cannot reorder or panic"
                        .to_string(),
                ));
            }
        }
    }
}

/// `deterministic-snapshot-maps`: serialized snapshots must not be fed from
/// `HashMap` iteration order. Flags `HashMap` inside `#[derive(Serialize)]`
/// items and inside `fn snapshot` / `fn to_json` bodies; use `BTreeMap` or
/// sort before emitting.
#[derive(Debug)]
pub struct DeterministicSnapshotMaps;

impl Rule for DeterministicSnapshotMaps {
    fn name(&self) -> &'static str {
        "deterministic-snapshot-maps"
    }
    fn describe(&self) -> &'static str {
        "forbid HashMap feeding serialized snapshots; require BTreeMap or sort-before-emit"
    }
    fn check(&self, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        let regions = file
            .item_blocks_after(|code| code.contains("#[derive(") && code.contains("Serialize"))
            .into_iter()
            .map(|r| (r, "a `#[derive(Serialize)]` item"))
            .chain(
                file.item_blocks_after(|code| {
                    code.contains("fn snapshot") || code.contains("fn to_json")
                })
                .into_iter()
                .map(|r| (r, "a snapshot/serialization function")),
            );
        let mut flagged: Vec<usize> = Vec::new();
        for ((start, end), what) in regions {
            for i in start..=end.min(file.lines.len().saturating_sub(1)) {
                let line = &file.lines[i];
                if line.in_test || flagged.contains(&i) {
                    continue;
                }
                // A `#[serde(skip)]`-ed field never reaches the serializer,
                // so its iteration order cannot leak into a snapshot.
                let serde_skipped = line.code.contains("#[serde(skip")
                    || (i > 0 && file.lines[i - 1].code.contains("#[serde(skip"));
                if serde_skipped {
                    continue;
                }
                if line.code.contains("HashMap") {
                    flagged.push(i);
                    out.push(diag(
                        self.name(),
                        file,
                        i,
                        format!(
                            "`HashMap` inside {what}: its iteration order is random per \
                             process — use `BTreeMap` or sort before emitting"
                        ),
                    ));
                }
            }
        }
    }
}

/// `ordered-shard-merge`: shard merge paths must reduce per-shard state in
/// fixed shard-index order. The fit's bit-identity argument (DESIGN §11)
/// rests on every cross-shard sum being a left-to-right fold over
/// shard-indexed `Vec`s; a `HashMap`/`HashSet` inside a merge/reduce/fold
/// function that touches shards re-orders the reduction at random per
/// process and silently breaks `fit(N shards) == fit(serial)`.
#[derive(Debug)]
pub struct OrderedShardMerge;

/// Declaration substrings that put a function on the merge path.
const MERGE_FN_PATTERNS: &[&str] = &["fn merge", "fn reduce", "fn fold", "fn resolved"];

impl Rule for OrderedShardMerge {
    fn name(&self) -> &'static str {
        "ordered-shard-merge"
    }
    fn describe(&self) -> &'static str {
        "shard merge/reduce paths must fold Vec-indexed partials in shard order, not hash order"
    }
    fn check(&self, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        let regions =
            file.item_blocks_after(|code| MERGE_FN_PATTERNS.iter().any(|pat| code.contains(pat)));
        for (start, end) in regions {
            let end = end.min(file.lines.len().saturating_sub(1));
            // Only merge paths that actually touch shards are in scope —
            // `BagOfWords::merge` and friends order nothing across shards.
            let touches_shards = (start..=end).any(|i| {
                file.lines[i].code.contains("shard") || file.lines[i].code.contains("Shard")
            });
            if !touches_shards {
                continue;
            }
            for i in start..=end {
                let line = &file.lines[i];
                if line.in_test {
                    continue;
                }
                if line.code.contains("HashMap") || line.code.contains("HashSet") {
                    out.push(diag(
                        self.name(),
                        file,
                        i,
                        "hash collection on a shard merge path: per-shard partials must \
                         live in `Vec`s indexed by shard and fold in shard-index order, \
                         or the fitted model stops being bit-identical across shard counts"
                            .to_string(),
                    ));
                }
            }
        }
    }
}

/// `no-silent-truncation`: narrowing `as` casts on id/count types silently
/// wrap. Require `try_from` (or a pragma explaining why the value fits).
#[derive(Debug)]
pub struct NoSilentTruncation;

const NARROWING_TARGETS: &[&str] = &[
    " as u8", " as u16", " as u32", " as i8", " as i16", " as i32",
];

impl Rule for NoSilentTruncation {
    fn name(&self) -> &'static str {
        "no-silent-truncation"
    }
    fn describe(&self) -> &'static str {
        "narrowing integer `as` casts must use try_from or carry a pragma"
    }
    fn check(&self, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        for (i, line) in file.lines.iter().enumerate() {
            if line.in_test {
                continue;
            }
            for pat in NARROWING_TARGETS {
                for (k, _) in line.code.match_indices(pat) {
                    // Require a non-identifier boundary after the type name
                    // so ` as u32` does not also match ` as u32x4`-style
                    // names, and skip `as usize`-prefix confusion by
                    // construction (patterns are full type names).
                    let after = line.code[k + pat.len()..].chars().next();
                    if after.is_none_or(|c| !(c.is_alphanumeric() || c == '_')) {
                        out.push(diag(
                            self.name(),
                            file,
                            i,
                            format!(
                                "narrowing cast `{}`: wraps silently on overflow — use \
                                 `try_from` or justify with a pragma",
                                pat.trim_start()
                            ),
                        ));
                    }
                }
            }
        }
    }
}

/// `pub-fn-panics-documented`: a `pub fn` whose body can panic (`panic!`,
/// `unwrap`, `expect`, `assert!`, …) must carry a `# Panics` doc section.
#[derive(Debug)]
pub struct PubFnPanicsDocumented;

const PANIC_PATTERNS: &[&str] = &[
    "panic!(",
    "unreachable!(",
    "todo!(",
    "unimplemented!(",
    ".unwrap()",
    ".expect(",
    "assert!(",
    "assert_eq!(",
    "assert_ne!(",
];

impl Rule for PubFnPanicsDocumented {
    fn name(&self) -> &'static str {
        "pub-fn-panics-documented"
    }
    fn describe(&self) -> &'static str {
        "pub fns that can panic must document it under a `# Panics` doc section"
    }
    fn check(&self, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        for f in file.pub_fns() {
            if file.lines[f.decl_line].in_test {
                continue;
            }
            let mut hits: Vec<&str> = Vec::new();
            for i in f.body.clone() {
                let code = &file.lines[i].code;
                for &pat in PANIC_PATTERNS {
                    // `debug_assert!` must not match `assert!(`.
                    let matched = code
                        .match_indices(pat)
                        .any(|(k, _)| !code[..k].ends_with("debug_"));
                    if matched && !hits.contains(&pat) {
                        hits.push(pat);
                    }
                }
            }
            if hits.is_empty() {
                continue;
            }
            let documented = f
                .doc_lines
                .iter()
                .any(|&i| file.lines[i].comment.contains("# Panics"));
            if !documented {
                out.push(diag(
                    self.name(),
                    file,
                    f.decl_line,
                    format!(
                        "pub fn can panic ({}) but has no `# Panics` doc section",
                        hits.join(", ")
                    ),
                ));
            }
        }
    }
}
