//! Lexical stripping: split Rust source into per-line *code* and *comment*
//! channels, with string/char-literal contents blanked out.
//!
//! The lint rules are purely lexical; their precision rests entirely on this
//! pass. A `.unwrap()` inside a string literal or a doc comment must never
//! reach a rule, and a suppression pragma lives in the comment channel, so
//! the stripper keeps both channels per line:
//!
//! - `code`: the source text with comments removed and the *contents* of
//!   string/char literals dropped (the delimiters stay, so `.expect("msg")`
//!   still reads `.expect("")` and matches call-shaped patterns).
//! - `comment`: every comment on the line, `//`/`/* */` markers included
//!   (doc comments land here too — that is what keeps doctest code out of
//!   the rules and what lets `pub-fn-panics-documented` find `# Panics`).
//!
//! Handled syntax: line comments, nested block comments, cooked strings with
//! escapes, raw (and byte/raw-byte) strings with any `#` count, char
//! literals vs. lifetimes, multi-line strings.

/// One source line after stripping.
#[derive(Debug, Clone, Default)]
pub struct Line {
    /// Code channel (strings blanked, comments removed).
    pub code: String,
    /// Comment channel (comment markers preserved).
    pub comment: String,
    /// `true` when the line sits inside `#[cfg(test)]`/`#[test]` code or a
    /// test-only file (`tests/`, `benches/`).
    pub in_test: bool,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum State {
    Normal,
    LineComment,
    /// Nested depth.
    BlockComment(u32),
    /// Cooked string, `\`-escapes active.
    Str,
    /// Raw string closed by `"` + this many `#`.
    RawStr(usize),
    CharLit,
}

fn is_ident(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// The current (last) line; `lines` is constructed non-empty and only grows.
fn cur(lines: &mut Vec<Line>) -> &mut Line {
    if lines.is_empty() {
        lines.push(Line::default());
    }
    let n = lines.len() - 1;
    &mut lines[n]
}

/// Splits `src` into stripped lines. Never fails: unterminated constructs
/// simply run to end-of-file in their current state.
pub fn strip(src: &str) -> Vec<Line> {
    let chars: Vec<char> = src.chars().collect();
    let mut lines: Vec<Line> = vec![Line::default()];
    let mut state = State::Normal;
    // Last character appended to the code channel (identifier detection for
    // raw-string prefixes like `r#"` vs. the `r` in `for`).
    let mut prev_code: char = '\n';
    let mut i = 0usize;

    macro_rules! cur {
        () => {
            cur(&mut lines)
        };
    }

    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            if state == State::LineComment {
                state = State::Normal;
            }
            lines.push(Line::default());
            i += 1;
            continue;
        }
        match state {
            State::Normal => {
                if c == '/' && chars.get(i + 1) == Some(&'/') {
                    state = State::LineComment;
                    cur!().comment.push_str("//");
                    i += 2;
                    continue;
                }
                if c == '/' && chars.get(i + 1) == Some(&'*') {
                    state = State::BlockComment(1);
                    cur!().comment.push_str("/*");
                    i += 2;
                    continue;
                }
                if c == '"' {
                    // Raw-string detection: look back over `#`s to `r`/`br`,
                    // preceded by a non-identifier character.
                    let code = &cur!().code;
                    let mut hashes = 0usize;
                    let tail: Vec<char> = code.chars().rev().collect();
                    while hashes < tail.len() && tail[hashes] == '#' {
                        hashes += 1;
                    }
                    let mut j = hashes;
                    let mut is_raw = false;
                    if tail.get(j) == Some(&'r') {
                        if tail.get(j + 1) == Some(&'b') {
                            j += 1;
                        }
                        is_raw = !tail.get(j + 1).copied().is_some_and(is_ident);
                    }
                    state = if is_raw {
                        State::RawStr(hashes)
                    } else {
                        State::Str
                    };
                    cur!().code.push('"');
                    prev_code = '"';
                    i += 1;
                    continue;
                }
                if c == '\'' && !is_ident(prev_code) && prev_code != '\'' {
                    // Char literal or lifetime?
                    let next = chars.get(i + 1).copied();
                    let after = chars.get(i + 2).copied();
                    let is_char = match next {
                        Some('\\') => true,
                        Some(n) => after == Some('\'') && n != '\'',
                        None => false,
                    };
                    if is_char {
                        state = State::CharLit;
                    }
                    cur!().code.push('\'');
                    prev_code = '\'';
                    i += 1;
                    continue;
                }
                cur!().code.push(c);
                prev_code = c;
                i += 1;
            }
            State::LineComment => {
                cur!().comment.push(c);
                i += 1;
            }
            State::BlockComment(depth) => {
                if c == '*' && chars.get(i + 1) == Some(&'/') {
                    cur!().comment.push_str("*/");
                    state = if depth == 1 {
                        State::Normal
                    } else {
                        State::BlockComment(depth - 1)
                    };
                    i += 2;
                } else if c == '/' && chars.get(i + 1) == Some(&'*') {
                    cur!().comment.push_str("/*");
                    state = State::BlockComment(depth + 1);
                    i += 2;
                } else {
                    cur!().comment.push(c);
                    i += 1;
                }
            }
            State::Str => {
                if c == '\\' {
                    i += 2; // skip the escaped character (contents dropped)
                } else if c == '"' {
                    cur!().code.push('"');
                    prev_code = '"';
                    state = State::Normal;
                    i += 1;
                } else {
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                if c == '"' {
                    let n = hashes;
                    let closed = (0..n).all(|k| chars.get(i + 1 + k) == Some(&'#'));
                    if closed {
                        cur!().code.push('"');
                        for _ in 0..n {
                            cur!().code.push('#');
                        }
                        prev_code = '#';
                        state = State::Normal;
                        i += 1 + n;
                        continue;
                    }
                }
                i += 1;
            }
            State::CharLit => {
                if c == '\\' {
                    i += 2;
                } else if c == '\'' {
                    cur!().code.push('\'');
                    prev_code = '\'';
                    state = State::Normal;
                    i += 1;
                } else {
                    i += 1;
                }
            }
        }
    }
    lines
}

/// Marks the lines belonging to `#[cfg(test)]`- or `#[test]`-attributed
/// items by walking brace depth through the code channel.
///
/// An attribute arms a pending flag; the next `{` at or below the attribute
/// depth opens the test region, the matching `}` closes it. A `;` before any
/// `{` (e.g. `#[cfg(test)] use …;`) disarms the flag.
pub fn mark_test_regions(lines: &mut [Line]) {
    let mut depth: i64 = 0;
    let mut pending = false;
    let mut region_depth: Option<i64> = None;

    for line in lines.iter_mut() {
        let code = line.code.clone();
        let trimmed = code.trim();
        if region_depth.is_none()
            && (trimmed.contains("#[test]")
                || (trimmed.contains("#[cfg(")
                    && trimmed.contains("test")
                    && !trimmed.contains("not(test)")))
        {
            pending = true;
            line.in_test = true;
        }
        let mut line_touches_region = region_depth.is_some();
        for c in code.chars() {
            match c {
                '{' => {
                    if pending && region_depth.is_none() {
                        region_depth = Some(depth);
                        pending = false;
                        line_touches_region = true;
                    }
                    depth += 1;
                }
                '}' => {
                    depth -= 1;
                    if region_depth == Some(depth) {
                        region_depth = None;
                        line_touches_region = true;
                    }
                }
                ';' if pending && region_depth.is_none() => pending = false,
                _ => {}
            }
        }
        if line_touches_region || region_depth.is_some() {
            line.in_test = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn code_of(src: &str) -> Vec<String> {
        strip(src).into_iter().map(|l| l.code).collect()
    }

    #[test]
    fn line_comments_go_to_comment_channel() {
        let lines = strip("let x = 1; // .unwrap() here\n");
        assert_eq!(lines[0].code.trim(), "let x = 1;");
        assert!(lines[0].comment.contains(".unwrap()"));
    }

    #[test]
    fn string_contents_are_blanked_but_delimiters_stay() {
        let c = code_of(r#"let s = "call .unwrap() now"; s.len();"#);
        assert!(!c[0].contains(".unwrap()"));
        assert!(c[0].contains(r#"let s = "";"#));
    }

    #[test]
    fn escaped_quotes_do_not_end_strings() {
        let c = code_of(r#"let s = "a \" .unwrap() \" b"; x();"#);
        assert!(!c[0].contains("unwrap"));
        assert!(c[0].contains("x();"));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let c = code_of("let s = r#\"contains .unwrap() and \"quotes\"\"#; y();");
        assert!(!c[0].contains("unwrap"));
        assert!(c[0].contains("y();"));
    }

    #[test]
    fn nested_block_comments() {
        let c = code_of("a(); /* outer /* inner .unwrap() */ still comment */ b();");
        assert!(!c[0].contains("unwrap"));
        assert!(c[0].contains("a();"));
        assert!(c[0].contains("b();"));
    }

    #[test]
    fn multiline_strings_blank_following_lines() {
        let c = code_of("let s = \"line one\n.unwrap()\nlast\"; z();");
        assert!(!c[1].contains("unwrap"));
        assert!(c[2].contains("z();"));
    }

    #[test]
    fn char_literals_and_lifetimes() {
        let c = code_of("let q = '\"'; fn f<'a>(x: &'a str) {} let n = '\\n';");
        // The quote char literal must not open a string.
        assert!(c[0].contains("fn f<'a>"));
    }

    #[test]
    fn doc_comments_are_comments() {
        let lines = strip("/// docs with .unwrap()\npub fn f() {}\n");
        assert!(!lines[0].code.contains("unwrap"));
        assert!(lines[0].comment.contains("unwrap"));
        assert!(lines[1].code.contains("pub fn f"));
    }

    #[test]
    fn cfg_test_mod_region_is_marked() {
        let src = "fn live() { a.unwrap(); }\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                   fn t() { b.unwrap(); }\n\
                   }\n\
                   fn live2() {}\n";
        let mut lines = strip(src);
        mark_test_regions(&mut lines);
        assert!(!lines[0].in_test);
        assert!(lines[2].in_test);
        assert!(lines[3].in_test);
        assert!(lines[4].in_test);
        assert!(!lines[5].in_test);
    }

    #[test]
    fn cfg_test_on_use_item_does_not_latch() {
        let src = "#[cfg(test)]\nuse foo::bar;\nfn live() { x.unwrap(); }\n";
        let mut lines = strip(src);
        mark_test_regions(&mut lines);
        assert!(!lines[2].in_test);
    }

    #[test]
    fn not_test_cfg_is_ignored() {
        let src = "#[cfg(not(test))]\nfn live() { x.unwrap(); }\n";
        let mut lines = strip(src);
        mark_test_regions(&mut lines);
        assert!(!lines[1].in_test);
    }
}
