//! Intra-workspace call graph and the cross-function rule packs.
//!
//! The lexical rules catch hazards where they sit; this layer catches them
//! where they *matter*: a `HashMap` iteration is harmless in a debug dump
//! and fatal three calls below `fit_sharded`. The workspace model collects
//! every [`FnDef`] from every scanned file, resolves call sites to
//! definitions (typed receivers first, name matching as a deliberate
//! over-approximation), and runs a BFS per rule pack from its root set.
//! Every diagnostic carries the witness chain (`root → … → offender`) so
//! a finding three hops deep is as actionable as a lexical one.
//!
//! # Packs and roots
//!
//! * **det** — determinism: functions reachable from parallel-reduce roots
//!   must not iterate hash collections, feed hash order into float
//!   reduces, or mix `mul_add` into shared kernels. Built-in seeds:
//!   `fit_sharded`, `resolved_tasks`.
//! * **wait** — bounded wait: functions reachable from serve roots must
//!   not block without a timeout, and their bare `loop`s must hit a
//!   checkpoint (`WorkGuard` poll or timeout-bounded wait) every
//!   iteration. Built-in seeds: `execute_ctx`, `select_*` in
//!   `crates/query`.
//!
//! Additional roots are declared in source with
//! `// crowd-lint: root(<pack>)` trailing on — or directly above — a `fn`
//! declaration.

use crate::rules::Diagnostic;
use crate::source::SourceFile;
use crate::syntax::{parse_file, CallKind, CallSite, FnDef};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// The rule-pack names `root(<pack>)` annotations may reference.
pub const PACKS: &[&str] = &["det", "wait"];

/// Markers that make one `loop` iteration a checkpoint: a `WorkGuard`
/// poll, a timeout-bounded block, or explicit deadline arithmetic.
const CHECKPOINT_MARKERS: &[&str] = &[
    ".check(",
    ".consume(",
    ".wait_timeout(",
    ".recv_timeout(",
    "timeout",
    "deadline",
    "give_up",
];

/// Graph-pack rule names and one-line descriptions, in catalog order.
pub const GRAPH_RULES: &[(&str, &str, &str)] = &[
    (
        "det-no-hash-iter",
        "det",
        "no HashMap/HashSet iteration in functions reachable from determinism roots",
    ),
    (
        "det-no-unordered-float-sum",
        "det",
        "no hash-ordered iteration feeding float sum/fold/product on determinism paths",
    ),
    (
        "det-no-mul-add",
        "det",
        "no mul_add in det-reachable kernels unless both fit paths fuse identically",
    ),
    (
        "wait-bounded-block-reachable",
        "wait",
        "no unbounded .wait()/.recv() in functions reachable from serve roots",
    ),
    (
        "wait-guard-checkpoint-loop",
        "wait",
        "bare loops reachable from serve roots must checkpoint (guard poll or bounded wait)",
    ),
];

/// One function in the workspace model.
#[derive(Debug)]
struct WsFn {
    /// Index into the scanned file list.
    file: usize,
    /// Crate the file belongs to (`crates/<name>/…`, else the root crate).
    crate_name: String,
    def: FnDef,
}

/// Crate name of a workspace-relative path.
fn crate_of(path: &str) -> String {
    let mut parts = path.split('/');
    if parts.next() == Some("crates") {
        if let Some(name) = parts.next() {
            return name.to_string();
        }
    }
    "crowdselect".to_string()
}

/// A parsed `root(<pack>)` annotation.
#[derive(Debug)]
struct RootAnn {
    file: usize,
    /// 0-based line of the annotation comment.
    line: usize,
    pack: String,
}

/// The workspace call-graph model.
#[derive(Debug)]
pub struct Workspace {
    fns: Vec<WsFn>,
    /// Callee name → indices of non-test defs with that name.
    by_name: BTreeMap<String, Vec<usize>>,
    /// Type names that own at least one method (`impl T` / `trait T`).
    known_types: BTreeSet<String>,
    det_roots: Vec<usize>,
    wait_roots: Vec<usize>,
    /// Findings produced while building (bad root annotations).
    build_diags: Vec<Diagnostic>,
}

impl Workspace {
    /// Builds the model from every scanned file.
    pub fn build(files: &[SourceFile]) -> Self {
        let mut fns: Vec<WsFn> = Vec::new();
        let mut anns: Vec<RootAnn> = Vec::new();
        let mut build_diags = Vec::new();

        for (fi, file) in files.iter().enumerate() {
            let syn = parse_file(&file.lines);
            let crate_name = crate_of(&file.path);
            for def in syn.fns {
                fns.push(WsFn {
                    file: fi,
                    crate_name: crate_name.clone(),
                    def,
                });
            }
            for (li, line) in file.lines.iter().enumerate() {
                if let Some(body) = crate::pragma_body(&line.comment) {
                    if let Some(rest) = body.trim_start().strip_prefix("root(") {
                        if let Some(close) = rest.find(')') {
                            anns.push(RootAnn {
                                file: fi,
                                line: li,
                                pack: rest[..close].trim().to_string(),
                            });
                        } else {
                            build_diags.push(root_diag(
                                &files[fi].path,
                                li,
                                "malformed root annotation (expected \
                                 `crowd-lint: root(<pack>)`)"
                                    .to_string(),
                            ));
                        }
                    }
                }
            }
        }

        let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        let mut known_types = BTreeSet::new();
        for (i, f) in fns.iter().enumerate() {
            if f.def.is_test {
                continue;
            }
            by_name.entry(f.def.name.clone()).or_default().push(i);
            if let Some(q) = &f.def.qual {
                known_types.insert(q.clone());
            }
            if let Some(t) = &f.def.trait_name {
                known_types.insert(t.clone());
            }
        }

        let mut det_roots: Vec<usize> = Vec::new();
        let mut wait_roots: Vec<usize> = Vec::new();

        // Built-in seeds: the invariants hold even if someone deletes the
        // annotations.
        for (i, f) in fns.iter().enumerate() {
            if f.def.is_test {
                continue;
            }
            match f.def.name.as_str() {
                "fit_sharded" | "resolved_tasks" => det_roots.push(i),
                "execute_ctx" => wait_roots.push(i),
                n if n.starts_with("select_") && f.crate_name == "query" => wait_roots.push(i),
                _ => {}
            }
        }

        // Annotation-declared roots: trailing on the `fn` line or on a
        // comment line directly above it (attributes may intervene).
        for ann in &anns {
            if !PACKS.contains(&ann.pack.as_str()) {
                build_diags.push(root_diag(
                    &files[ann.file].path,
                    ann.line,
                    format!(
                        "root annotation names unknown pack `{}` (known: det, wait)",
                        ann.pack
                    ),
                ));
                continue;
            }
            let target = fns
                .iter()
                .enumerate()
                .filter(|(_, f)| f.file == ann.file && !f.def.is_test)
                .filter(|(_, f)| {
                    f.def.decl_line == ann.line
                        || (f.def.decl_line > ann.line && f.def.decl_line <= ann.line + 4)
                })
                .min_by_key(|(_, f)| f.def.decl_line)
                .map(|(i, _)| i);
            match target {
                Some(i) => match ann.pack.as_str() {
                    "det" => det_roots.push(i),
                    _ => wait_roots.push(i),
                },
                None => build_diags.push(root_diag(
                    &files[ann.file].path,
                    ann.line,
                    format!(
                        "root({}) annotation is not attached to a fn declaration \
                         (place it on or directly above one)",
                        ann.pack
                    ),
                )),
            }
        }
        det_roots.sort_unstable();
        det_roots.dedup();
        wait_roots.sort_unstable();
        wait_roots.dedup();

        Workspace {
            fns,
            by_name,
            known_types,
            det_roots,
            wait_roots,
            build_diags,
        }
    }

    /// Resolves one call site made from `caller` to candidate definitions.
    ///
    /// Precedence: typed receivers bind to that type's methods only (a
    /// known type with no workspace method is a std call — no edge);
    /// known-type path qualifiers likewise; everything else falls back to
    /// name matching, same-crate first, then workspace-wide for free
    /// calls (`use`-imported cross-crate helpers). Unknown-receiver
    /// method calls stay same-crate — the one place the over-approximation
    /// is trimmed, because `.run(`/`.merge(` name-matching across crates
    /// would make everything reachable from everything.
    fn resolve(&self, caller: usize, call: &CallSite) -> Vec<usize> {
        let candidates: &[usize] = match self.by_name.get(&call.name) {
            Some(v) => v,
            None => return Vec::new(),
        };
        let caller_crate = &self.fns[caller].crate_name;
        let methods_of = |t: &str| -> Vec<usize> {
            candidates
                .iter()
                .copied()
                .filter(|&i| {
                    let f = &self.fns[i];
                    f.def.qual.as_deref() == Some(t) || f.def.trait_name.as_deref() == Some(t)
                })
                .collect()
        };
        match &call.kind {
            CallKind::Method { recv_type: Some(t) } => {
                // Single-letter "types" are generic parameters: unknown.
                if t.len() > 1 && self.known_types.contains(t) {
                    return methods_of(t);
                }
                if t.len() > 1 {
                    // A concrete foreign type (std, etc.): no edge.
                    return Vec::new();
                }
                self.same_crate_methods(candidates, caller_crate)
            }
            CallKind::Method { recv_type: None } => {
                self.same_crate_methods(candidates, caller_crate)
            }
            CallKind::Path { qualifier } => {
                if self.known_types.contains(qualifier) {
                    return methods_of(qualifier);
                }
                // Module-qualified free call.
                let same: Vec<usize> = candidates
                    .iter()
                    .copied()
                    .filter(|&i| {
                        self.fns[i].def.qual.is_none() && self.fns[i].crate_name == *caller_crate
                    })
                    .collect();
                if !same.is_empty() {
                    return same;
                }
                candidates
                    .iter()
                    .copied()
                    .filter(|&i| self.fns[i].def.qual.is_none())
                    .collect()
            }
            CallKind::Free => {
                let same: Vec<usize> = candidates
                    .iter()
                    .copied()
                    .filter(|&i| {
                        self.fns[i].def.qual.is_none() && self.fns[i].crate_name == *caller_crate
                    })
                    .collect();
                if !same.is_empty() {
                    return same;
                }
                candidates
                    .iter()
                    .copied()
                    .filter(|&i| self.fns[i].def.qual.is_none())
                    .collect()
            }
        }
    }

    fn same_crate_methods(&self, candidates: &[usize], caller_crate: &str) -> Vec<usize> {
        candidates
            .iter()
            .copied()
            .filter(|&i| self.fns[i].def.qual.is_some() && self.fns[i].crate_name == caller_crate)
            .collect()
    }

    /// BFS from `roots`; returns `fn index → parent fn index` for every
    /// reachable function (roots map to themselves).
    fn reach(&self, roots: &[usize]) -> BTreeMap<usize, usize> {
        let mut parent: BTreeMap<usize, usize> = BTreeMap::new();
        let mut queue: VecDeque<usize> = VecDeque::new();
        for &r in roots {
            if parent.insert(r, r).is_none() {
                queue.push_back(r);
            }
        }
        while let Some(i) = queue.pop_front() {
            // Collect + sort for a deterministic visit order (stable
            // witness chains across runs).
            let mut nexts: Vec<usize> = Vec::new();
            for call in &self.fns[i].def.calls {
                nexts.extend(self.resolve(i, call));
            }
            nexts.sort_unstable();
            nexts.dedup();
            for n in nexts {
                if self.fns[n].def.is_test {
                    continue;
                }
                if let std::collections::btree_map::Entry::Vacant(e) = parent.entry(n) {
                    e.insert(i);
                    queue.push_back(n);
                }
            }
        }
        parent
    }

    /// The witness chain `root → … → target` as display names.
    fn witness(&self, parent: &BTreeMap<usize, usize>, target: usize) -> Vec<String> {
        let mut chain = vec![self.display(target)];
        let mut cur = target;
        while let Some(&p) = parent.get(&cur) {
            if p == cur {
                break;
            }
            chain.push(self.display(p));
            cur = p;
        }
        chain.reverse();
        chain
    }

    fn display(&self, i: usize) -> String {
        let f = &self.fns[i];
        match &f.def.qual {
            Some(q) => format!("{}::{}", q, f.def.name),
            None => f.def.name.clone(),
        }
    }
}

fn root_diag(path: &str, line_idx: usize, message: String) -> Diagnostic {
    Diagnostic {
        rule: "invalid-pragma",
        path: path.to_string(),
        line: line_idx + 1,
        message,
        suppressed: false,
        reason: None,
        witness: Vec::new(),
    }
}

fn graph_diag(
    rule: &'static str,
    ws: &Workspace,
    files: &[SourceFile],
    fn_idx: usize,
    line_idx: usize,
    witness: Vec<String>,
    message: String,
) -> Diagnostic {
    Diagnostic {
        rule,
        path: files[ws.fns[fn_idx].file].path.clone(),
        line: line_idx + 1,
        message,
        suppressed: false,
        reason: None,
        witness,
    }
}

fn chain_suffix(witness: &[String]) -> String {
    if witness.len() <= 1 {
        " (a determinism/serve root itself)".to_string()
    } else {
        format!(" (via {})", witness.join(" → "))
    }
}

/// Runs both rule packs over the scanned files and appends raw
/// diagnostics (pragma application happens in the engine afterwards).
pub fn check(files: &[SourceFile], out: &mut Vec<Diagnostic>) {
    let ws = Workspace::build(files);
    out.extend(ws.build_diags.iter().cloned());

    // ---- det pack -------------------------------------------------------
    let det = ws.reach(&ws.det_roots);
    for &i in det.keys() {
        let f = &ws.fns[i];
        if f.def.is_test {
            continue;
        }
        let witness = ws.witness(&det, i);
        let suffix = chain_suffix(&witness);
        for site in &f.def.hash_iters {
            let (rule, hazard) = if site.feeds_reduce {
                (
                    "det-no-unordered-float-sum",
                    "feeds hash iteration order into a float reduce",
                )
            } else {
                ("det-no-hash-iter", "iterates a hash collection")
            };
            out.push(graph_diag(
                rule,
                &ws,
                files,
                i,
                site.line,
                witness.clone(),
                format!(
                    "`{}` {hazard} in `{}`, reachable from a determinism root{suffix}: \
                     hash order is random per process, so the reduction stops being \
                     bit-identical — use a Vec or BTreeMap, or sort before folding",
                    site.what,
                    ws.display(i),
                ),
            ));
        }
        for &line in &f.def.mul_add_lines {
            out.push(graph_diag(
                "det-no-mul-add",
                &ws,
                files,
                i,
                line,
                witness.clone(),
                format!(
                    "`mul_add` in det-reachable `{}`{suffix}: fused rounding diverges \
                     from the unfused oracle unless *every* fit path runs this exact \
                     kernel — prove it and suppress, or split the operation",
                    ws.display(i),
                ),
            ));
        }
    }

    // ---- wait pack ------------------------------------------------------
    let wait = ws.reach(&ws.wait_roots);
    for &i in wait.keys() {
        let f = &ws.fns[i];
        if f.def.is_test {
            continue;
        }
        let witness = ws.witness(&wait, i);
        let suffix = chain_suffix(&witness);
        for (line, method) in &f.def.unbounded_block_lines {
            out.push(graph_diag(
                "wait-bounded-block-reachable",
                &ws,
                files,
                i,
                *line,
                witness.clone(),
                format!(
                    "unbounded `.{method}(` in `{}`, reachable from a serve root{suffix}: \
                     a stuck peer blocks the query forever — use the `_timeout` variant \
                     bounded by the query deadline",
                    ws.display(i),
                ),
            ));
        }
        let file = &files[f.file];
        for lp in &f.def.loops {
            let has_checkpoint = (lp.start..=lp.end.min(file.lines.len() - 1)).any(|li| {
                let code = &file.lines[li].code;
                CHECKPOINT_MARKERS.iter().any(|m| code.contains(m))
            });
            if !has_checkpoint {
                out.push(graph_diag(
                    "wait-guard-checkpoint-loop",
                    &ws,
                    files,
                    i,
                    lp.start,
                    witness.clone(),
                    format!(
                        "bare `loop` in `{}`, reachable from a serve root{suffix}, never \
                         checkpoints: poll the `WorkGuard` (`check`/`consume`) or use a \
                         timeout-bounded wait each iteration so deadlines and \
                         cancellation can fire",
                        ws.display(i),
                    ),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sf(path: &str, src: &str) -> SourceFile {
        SourceFile::parse(path, src, false)
    }

    fn run(files: &[SourceFile]) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        check(files, &mut out);
        out
    }

    #[test]
    fn builtin_det_root_reaches_two_hops() {
        let files = [sf(
            "crates/core/src/trainer.rs",
            "\
pub fn fit_sharded(n: usize) -> f64 {
    mid(n)
}
fn mid(n: usize) -> f64 {
    let m: HashMap<u64, f64> = HashMap::new();
    tally(&m)
}
fn tally(m: &HashMap<u64, f64>) -> f64 {
    m.values().sum()
}
",
        )];
        let diags = run(&files);
        let hit = diags
            .iter()
            .find(|d| d.rule == "det-no-unordered-float-sum")
            .expect("two-hop hash sum must be reachable");
        assert_eq!(hit.line, 9);
        assert_eq!(hit.witness, vec!["fit_sharded", "mid", "tally"]);
    }

    #[test]
    fn unreachable_hash_iter_is_clean() {
        let files = [sf(
            "crates/core/src/trainer.rs",
            "\
pub fn fit_sharded(n: usize) -> f64 {
    n as f64
}
fn debug_dump(m: &HashMap<u64, f64>) -> f64 {
    m.values().sum()
}
",
        )];
        let diags = run(&files);
        assert!(
            diags.iter().all(|d| !d.rule.starts_with("det-")),
            "{diags:?}"
        );
    }

    #[test]
    fn root_annotation_declares_roots_and_bad_ones_are_findings() {
        let files = [sf(
            "crates/math/src/pool.rs",
            "\
// crowd-lint: root(det)
pub fn run_jobs(m: &HashMap<u64, f64>) {
    for v in m.values() {
        let _ = v;
    }
}
// crowd-lint: root(nosuchpack)
pub fn other() {}
// crowd-lint: root(wait)
static X: u32 = 0;
",
        )];
        let diags = run(&files);
        assert!(diags.iter().any(|d| d.rule == "det-no-hash-iter"));
        assert!(diags
            .iter()
            .any(|d| d.rule == "invalid-pragma" && d.message.contains("unknown pack")));
        assert!(diags
            .iter()
            .any(|d| d.rule == "invalid-pragma" && d.message.contains("not attached")));
    }

    #[test]
    fn typed_receiver_does_not_leak_to_name_collision() {
        // `validate::run` (free, same crate) vs `ScoringPool::run` (method,
        // other crate): a typed `ScoringPool::global().run(...)` call must
        // edge to the method, and a free `run(...)` call in crates/core
        // must edge to the free fn only.
        let files = [
            sf(
                "crates/core/src/trainer.rs",
                "\
pub fn fit_sharded() {
    ScoringPool::global().run(1);
    run(2);
}
pub fn run(x: u32) -> u32 { x }
",
            ),
            sf(
                "crates/math/src/pool.rs",
                "\
pub struct ScoringPool { jobs: HashMap<u64, u64> }
impl ScoringPool {
    pub fn global() -> ScoringPool { ScoringPool { jobs: HashMap::new() } }
    pub fn run(&self, n: u64) {
        for j in self.jobs.values() {
            let _ = j;
        }
    }
}
",
            ),
        ];
        let diags = run(&files);
        let hit = diags
            .iter()
            .find(|d| d.rule == "det-no-hash-iter")
            .expect("pool method must be det-reachable via typed receiver");
        assert_eq!(hit.witness, vec!["fit_sharded", "ScoringPool::run"]);
    }

    #[test]
    fn wait_pack_flags_blocking_and_bare_loops_with_witness() {
        let files = [sf(
            "crates/query/src/exec/mod.rs",
            "\
pub fn execute_ctx() {
    helper();
}
fn helper() {
    let _ = rx.recv();
    loop {
        spin();
    }
}
fn bounded() {
    loop {
        if ctx.check(now).is_err() {
            break;
        }
    }
}
",
        )];
        let diags = run(&files);
        let block = diags
            .iter()
            .find(|d| d.rule == "wait-bounded-block-reachable")
            .expect("recv must be flagged through one hop");
        assert_eq!(block.witness, vec!["execute_ctx", "helper"]);
        assert!(diags.iter().any(|d| d.rule == "wait-guard-checkpoint-loop"));
        // `bounded` is not reachable (nobody calls it) — and its loop has a
        // checkpoint anyway.
        assert_eq!(
            diags
                .iter()
                .filter(|d| d.rule == "wait-guard-checkpoint-loop")
                .count(),
            1
        );
    }

    #[test]
    fn select_prefix_is_a_wait_root_only_in_query() {
        let q = sf(
            "crates/query/src/engine.rs",
            "pub fn select_workers_batch() { let _ = rx.recv(); }\n",
        );
        let other = sf(
            "crates/sim/src/gen.rs",
            "pub fn select_sample() { let _ = rx.recv(); }\n",
        );
        let diags = run(&[q, other]);
        let hits: Vec<_> = diags
            .iter()
            .filter(|d| d.rule == "wait-bounded-block-reachable")
            .collect();
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert!(hits[0].path.contains("query"));
    }

    #[test]
    fn test_fns_are_not_roots_or_targets() {
        let files = [sf(
            "crates/core/src/trainer.rs",
            "\
#[cfg(test)]
mod tests {
    fn fit_sharded() {
        let m: HashMap<u64, f64> = HashMap::new();
        let _: f64 = m.values().sum();
    }
}
",
        )];
        let diags = run(&files);
        assert!(diags.is_empty(), "{diags:?}");
    }
}
