//! CLI driver: `cargo run -p crowd-lint [-- --root DIR --json PATH]`.
//!
//! Exit status is the CI contract: `0` when every finding is covered by a
//! reasoned pragma, `1` when any unsuppressed finding (or malformed
//! pragma) remains, `2` on usage/IO errors.

use std::path::PathBuf;
use std::process::ExitCode;

fn print_help() {
    println!(
        "crowd-lint — workspace static-analysis pass for the crowdselect workspace

USAGE:
    cargo run -p crowd-lint [-- OPTIONS]

OPTIONS:
    --root <DIR>     lint the tree rooted at DIR (default: .)
    --json <PATH>    also write the machine-readable report to PATH
    --pack <PACK>    gate only one rule pack: lexical | det | wait | meta
    --quiet          print only the summary, not per-site diagnostics
    --help           this text

RULES:"
    );
    for rule in crowd_lint::rules::rule_catalog() {
        println!("    {:<28} [{:<7}] {}", rule.name, rule.pack, rule.describe);
    }
    println!(
        "
PRAGMAS:
    // crowd-lint: allow(<rule>) -- <reason>
placed on the offending line or the line(s) directly above it. The reason
is mandatory, and a pragma that suppresses nothing is stale; both are
`invalid-pragma` findings.
    // crowd-lint: root(<pack>)
on (or directly above) a fn declaration marks it as a reachability root
for the `det` or `wait` call-graph pack."
    );
}

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut json: Option<PathBuf> = None;
    let mut pack: Option<String> = None;
    let mut quiet = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--help" | "-h" => {
                print_help();
                return ExitCode::SUCCESS;
            }
            "--root" => match args.next() {
                Some(v) => root = PathBuf::from(v),
                None => {
                    eprintln!("crowd-lint: --root needs a value");
                    return ExitCode::from(2);
                }
            },
            "--json" => match args.next() {
                Some(v) => json = Some(PathBuf::from(v)),
                None => {
                    eprintln!("crowd-lint: --json needs a value");
                    return ExitCode::from(2);
                }
            },
            "--pack" => match args.next() {
                Some(v) if ["lexical", "det", "wait", "meta"].contains(&v.as_str()) => {
                    pack = Some(v);
                }
                Some(v) => {
                    eprintln!("crowd-lint: unknown pack `{v}` (lexical | det | wait | meta)");
                    return ExitCode::from(2);
                }
                None => {
                    eprintln!("crowd-lint: --pack needs a value");
                    return ExitCode::from(2);
                }
            },
            "--quiet" => quiet = true,
            other => {
                eprintln!("crowd-lint: unknown argument `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }

    let mut report = match crowd_lint::lint_root(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("crowd-lint: failed to scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    if let Some(p) = &pack {
        report = report.filter_pack(p);
    }

    if !quiet {
        for d in &report.diagnostics {
            if !d.suppressed {
                println!("{}:{}: [{}] {}", d.path, d.line, d.rule, d.message);
            }
        }
    }
    print!("{}", report.render_summary());

    if let Some(path) = json {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                if let Err(e) = std::fs::create_dir_all(parent) {
                    eprintln!("crowd-lint: cannot create {}: {e}", parent.display());
                    return ExitCode::from(2);
                }
            }
        }
        if let Err(e) = std::fs::write(&path, report.to_json()) {
            eprintln!("crowd-lint: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!("crowd-lint: report written to {}", path.display());
    }

    if report.total_unsuppressed() > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
