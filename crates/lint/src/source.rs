//! The per-file source model rules operate on: stripped lines plus the
//! small structural queries (item blocks, `pub fn` bodies) that the
//! brace-depth walk can answer lexically.

use crate::strip::{mark_test_regions, strip, Line};
use std::ops::Range;

/// A parsed (stripped) source file.
#[derive(Debug)]
pub struct SourceFile {
    /// Path relative to the lint root, `/`-separated.
    pub path: String,
    /// Stripped lines, 0-indexed (diagnostics add 1).
    pub lines: Vec<Line>,
}

/// A `pub fn` with its doc block and body extent.
#[derive(Debug, Clone)]
pub struct PubFn {
    /// Line of the `pub fn` keyword (0-based).
    pub decl_line: usize,
    /// Lines of the `///` doc run directly above the declaration.
    pub doc_lines: Vec<usize>,
    /// Line range `[decl..=close]` covering the body (empty for trait
    /// declarations that end in `;`).
    pub body: Range<usize>,
}

impl SourceFile {
    /// Parses `src`; `test_file` force-marks every line as test code
    /// (integration tests, benches).
    pub fn parse(path: impl Into<String>, src: &str, test_file: bool) -> Self {
        let mut lines = strip(src);
        mark_test_regions(&mut lines);
        if test_file {
            for l in &mut lines {
                l.in_test = true;
            }
        }
        SourceFile {
            path: path.into(),
            lines,
        }
    }

    /// Finds the line ranges of the item blocks introduced right after a
    /// line matching `pred` (attribute or `fn` signature): from the matched
    /// line to the close of the first `{…}` opened at or after it, or to
    /// the first top-level `;` for block-less items.
    pub fn item_blocks_after(&self, pred: impl Fn(&str) -> bool) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for start in 0..self.lines.len() {
            if !pred(&self.lines[start].code) {
                continue;
            }
            if let Some(end) = self.block_end(start) {
                out.push((start, end));
            }
        }
        out
    }

    /// Every non-test `pub fn` (not `pub(crate)`) with docs and body extent.
    pub fn pub_fns(&self) -> Vec<PubFn> {
        let mut out = Vec::new();
        for i in 0..self.lines.len() {
            let code = &self.lines[i].code;
            let Some(k) = code.find("pub fn ") else {
                continue;
            };
            // `pub fn` must start a token run: preceded by start/whitespace
            // (excludes `pub(crate) fn`, which never reaches here anyway,
            // and re-exports in comments are already stripped).
            if k > 0 && !code[..k].ends_with(char::is_whitespace) {
                continue;
            }
            let mut doc_lines = Vec::new();
            let mut j = i;
            while j > 0 {
                j -= 1;
                let l = &self.lines[j];
                let code_t = l.code.trim();
                let comment_t = l.comment.trim_start();
                if code_t.is_empty() && comment_t.starts_with("///") {
                    doc_lines.push(j);
                } else if code_t.starts_with("#[") || (code_t.is_empty() && !l.comment.is_empty()) {
                    // attributes and ordinary comments between docs and fn
                    continue;
                } else {
                    break;
                }
            }
            let body = match self.block_end(i) {
                Some(end) => i..end + 1,
                None => i..i,
            };
            out.push(PubFn {
                decl_line: i,
                doc_lines,
                body,
            });
        }
        out
    }

    /// The closing line of the first brace block opened at or after
    /// `start`, or the line of a top-level `;` for items without a block
    /// (returns `None` for a trailing signature with neither).
    fn block_end(&self, start: usize) -> Option<usize> {
        let mut depth: i64 = 0;
        let mut opened = false;
        for (i, line) in self.lines.iter().enumerate().skip(start) {
            for c in line.code.chars() {
                match c {
                    '{' => {
                        depth += 1;
                        opened = true;
                    }
                    '}' => {
                        depth -= 1;
                        if opened && depth == 0 {
                            return Some(i);
                        }
                    }
                    ';' if !opened && depth == 0 && i > start => return Some(i),
                    ';' if !opened && depth == 0 && i == start => {
                        // Same-line `…;` after the match: item ends here.
                        return Some(i);
                    }
                    _ => {}
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pub_fn_bodies_and_docs_are_found() {
        let src = "\
/// Does things.
///
/// # Panics
/// When x is odd.
pub fn documented(x: u32) {
    assert!(x % 2 == 0);
}

pub fn short() -> u32 { 1 }
";
        let f = SourceFile::parse("x.rs", src, false);
        let fns = f.pub_fns();
        assert_eq!(fns.len(), 2);
        assert_eq!(fns[0].decl_line, 4);
        assert_eq!(fns[0].body, 4..7);
        assert!(fns[0]
            .doc_lines
            .iter()
            .any(|&i| f.lines[i].comment.contains("# Panics")));
        assert_eq!(fns[1].body, 8..9);
    }

    #[test]
    fn item_block_after_derive_spans_struct() {
        let src = "\
#[derive(Debug, Serialize)]
pub struct Snap {
    map: HashMap<u32, u32>,
}
struct Unrelated {
    map: HashMap<u32, u32>,
}
";
        let f = SourceFile::parse("x.rs", src, false);
        let blocks = f.item_blocks_after(|c| c.contains("#[derive(") && c.contains("Serialize"));
        assert_eq!(blocks, vec![(0, 3)]);
    }

    #[test]
    fn blockless_items_end_at_semicolon() {
        let src = "#[derive(Serialize)]\nstruct Wrap(HashMap<u32, u32>);\nfn next() {}\n";
        let f = SourceFile::parse("x.rs", src, false);
        let blocks = f.item_blocks_after(|c| c.contains("Serialize"));
        assert_eq!(blocks, vec![(0, 1)]);
    }
}
