#![warn(missing_docs)]

//! `crowd-lint` — the workspace's static-analysis pass.
//!
//! TDPM's correctness rests on invariants the compiler cannot see: no
//! panics on serving paths, total-order float comparisons, deterministic
//! snapshot serialization, no silent integer truncation, documented panic
//! contracts — and, since the sharded fit, *cross-function* properties:
//! nothing reachable from a parallel-reduce root may iterate a hash
//! collection, and nothing reachable from a serve root may block without
//! a bound. This crate walks every workspace `*.rs` file (string/comment
//! aware — see [`strip`]), runs the lexical rule registry
//! ([`rules::default_rules`]) over the code channel, builds an
//! intra-workspace call graph ([`graph`]) over the token-tree model
//! ([`syntax`]) for the reachability rule packs, honours per-site
//! suppression pragmas, and renders `file:line` diagnostics plus a
//! machine-readable JSON report (see [`report::Report`]).
//!
//! # Pragma syntax
//!
//! ```text
//! // crowd-lint: allow(<rule-name>) -- <reason>
//! // crowd-lint: root(<pack>)
//! ```
//!
//! `allow` is placed either trailing on the offending line or on its own
//! line(s) directly above it. The reason is mandatory, and a reasoned
//! pragma that suppresses nothing is *stale* — both are `invalid-pragma`
//! findings, so every suppression in the tree is justified and live.
//! `root` marks the `fn` it annotates (trailing or directly above) as a
//! reachability root for a rule pack (`det` or `wait`); built-in seeds
//! cover the fit/serve entry points even without annotations.
//!
//! No dependencies, no proc macros: the tool stays trivially buildable in
//! the offline CI image and runs in milliseconds.

pub mod graph;
pub mod report;
pub mod rules;
pub mod source;
pub mod strip;
pub mod syntax;

use report::Report;
use rules::{default_rules, rule_catalog, Diagnostic};
use source::SourceFile;
use std::path::{Path, PathBuf};

/// Directory names never descended into (build output, VCS, vendored
/// stubs, lint fixtures — fixtures contain *deliberate* violations).
const SKIP_DIRS: &[&str] = &[
    "target",
    ".git",
    ".devstubs",
    "fixtures",
    "related",
    "results",
];

/// A parsed suppression pragma.
#[derive(Debug, Clone)]
struct Pragma {
    rule: String,
    /// `None` when the mandatory `-- reason` part is missing or empty.
    reason: Option<String>,
}

/// Returns the pragma body (everything after `crowd-lint:`) when the
/// comment *is* a pragma: the marker must open the comment (`// crowd-lint:`
/// or `/* crowd-lint:`). Mentions buried in prose or doc examples
/// (`//! // crowd-lint: ...`) are documentation, not pragmas.
fn pragma_body(comment: &str) -> Option<&str> {
    let t = comment.trim();
    let rest = t.strip_prefix("//").or_else(|| t.strip_prefix("/*"))?;
    rest.trim_start().strip_prefix("crowd-lint:")
}

/// Extracts the pragma from a comment channel, if any.
fn parse_pragma(comment: &str) -> Option<Pragma> {
    let rest = pragma_body(comment)?.trim_start();
    let rest = rest.strip_prefix("allow(")?;
    let close = rest.find(')')?;
    let rule = rest[..close].trim().to_string();
    let tail = rest[close + 1..].trim_start();
    let reason = tail
        .strip_prefix("--")
        .map(str::trim)
        .filter(|r| !r.is_empty())
        .map(str::to_string);
    Some(Pragma { rule, reason })
}

/// `true` when the comment is a `root(<pack>)` annotation — those belong
/// to the call-graph layer ([`graph`]), which validates them itself.
fn is_root_pragma(comment: &str) -> bool {
    pragma_body(comment).is_some_and(|b| b.trim_start().starts_with("root("))
}

fn invalid_pragma(file: &SourceFile, line_idx: usize, message: String) -> Diagnostic {
    Diagnostic {
        rule: "invalid-pragma",
        path: file.path.clone(),
        line: line_idx + 1,
        message,
        suppressed: false,
        reason: None,
        witness: Vec::new(),
    }
}

/// Applies suppression pragmas to raw diagnostics and appends
/// `invalid-pragma` findings for malformed, unreasoned, unknown-rule, or
/// stale pragmas. Must run after *all* rules (lexical and call-graph)
/// have emitted for this file, or live pragmas would be reported stale.
fn apply_pragmas(file: &SourceFile, diags: &mut Vec<Diagnostic>) {
    // Pragmas visible from line `l`: on `l` itself, or on the contiguous
    // run of pragma-only lines directly above it. Each comes with the
    // line it lives on so usage can be tracked for stale detection.
    let pragmas_for = |l: usize| -> Vec<(usize, Pragma)> {
        let mut out = Vec::new();
        if let Some(p) = parse_pragma(&file.lines[l].comment) {
            out.push((l, p));
        }
        let mut j = l;
        while j > 0 {
            j -= 1;
            let line = &file.lines[j];
            if line.code.trim().is_empty() && pragma_body(&line.comment).is_some() {
                if let Some(p) = parse_pragma(&line.comment) {
                    out.push((j, p));
                }
            } else {
                break;
            }
        }
        out
    };

    let mut used: Vec<usize> = Vec::new();
    for d in diags.iter_mut() {
        let l = d.line - 1;
        for (pl, p) in pragmas_for(l) {
            if p.rule == d.rule {
                if let Some(reason) = p.reason {
                    d.suppressed = true;
                    d.reason = Some(reason);
                    used.push(pl);
                }
                break;
            }
        }
    }

    // Every pragma in the file must be well-formed, reasoned, name a known
    // rule, and actually suppress something.
    let known: Vec<&'static str> = rule_catalog()
        .iter()
        .map(|r| r.name)
        .filter(|&n| n != "invalid-pragma")
        .collect();
    for (i, line) in file.lines.iter().enumerate() {
        if pragma_body(&line.comment).is_none() || is_root_pragma(&line.comment) {
            continue;
        }
        match parse_pragma(&line.comment) {
            Some(p) if p.reason.is_none() => diags.push(invalid_pragma(
                file,
                i,
                format!(
                    "pragma for `{}` has no written reason (`-- <why>` is mandatory)",
                    p.rule
                ),
            )),
            Some(p) if !known.contains(&p.rule.as_str()) => diags.push(invalid_pragma(
                file,
                i,
                format!("pragma names unknown rule `{}`", p.rule),
            )),
            Some(p) => {
                if !used.contains(&i) {
                    diags.push(invalid_pragma(
                        file,
                        i,
                        format!(
                            "stale pragma: `{}` no longer fires on the line this \
                             suppression covers — remove it",
                            p.rule
                        ),
                    ));
                }
            }
            None => diags.push(invalid_pragma(
                file,
                i,
                "malformed crowd-lint pragma (expected \
                 `crowd-lint: allow(<rule>) -- <reason>` or `crowd-lint: root(<pack>)`)"
                    .to_string(),
            )),
        }
    }
}

/// Lints a set of in-memory sources as one workspace: per-file lexical
/// rules, the cross-file call-graph packs, then pragma application and
/// stale detection per file. This is the seam both the unit tests and
/// [`lint_root`] drive.
pub fn lint_sources(inputs: &[(String, String)]) -> Vec<Diagnostic> {
    let files: Vec<SourceFile> = inputs
        .iter()
        .map(|(rel, src)| SourceFile::parse(rel.clone(), src, is_test_path(rel)))
        .collect();

    let mut diags: Vec<Diagnostic> = Vec::new();
    for file in &files {
        for rule in default_rules() {
            rule.check(file, &mut diags);
        }
    }
    graph::check(&files, &mut diags);

    // Pragmas are per-file, but they can only be applied once every rule
    // (including the workspace-wide ones) has finished emitting.
    let mut out: Vec<Diagnostic> = Vec::new();
    for file in &files {
        let mut file_diags: Vec<Diagnostic> = Vec::new();
        let mut rest = Vec::new();
        for d in diags {
            if d.path == file.path {
                file_diags.push(d);
            } else {
                rest.push(d);
            }
        }
        diags = rest;
        apply_pragmas(file, &mut file_diags);
        out.extend(file_diags);
    }
    out.extend(diags);
    out.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    out
}

/// Lints a single source text as if it lived at `rel_path` under the root
/// (a one-file workspace: call-graph packs still run, scoped to the file).
pub fn lint_source(rel_path: &str, src: &str) -> Vec<Diagnostic> {
    lint_sources(&[(rel_path.to_string(), src.to_string())])
}

/// `true` for paths whose whole file is test/bench code.
fn is_test_path(rel: &str) -> bool {
    rel.split('/').any(|c| c == "tests" || c == "benches")
}

/// Recursively collects the `*.rs` files under `root` (sorted, skipping
/// [`SKIP_DIRS`]), as `/`-separated paths relative to `root`.
pub fn collect_files(root: &Path) -> std::io::Result<Vec<String>> {
    let mut out = Vec::new();
    let mut stack: Vec<PathBuf> = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let mut entries: Vec<PathBuf> = std::fs::read_dir(&dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .collect();
        entries.sort();
        for path in entries {
            let name = path
                .file_name()
                .and_then(|n| n.to_str())
                .unwrap_or_default()
                .to_string();
            if path.is_dir() {
                if !SKIP_DIRS.contains(&name.as_str()) {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                if let Ok(rel) = path.strip_prefix(root) {
                    let rel: Vec<String> = rel
                        .components()
                        .map(|c| c.as_os_str().to_string_lossy().into_owned())
                        .collect();
                    out.push(rel.join("/"));
                }
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Lints every workspace source file under `root` — one call-graph over
/// the whole tree — and builds the report.
pub fn lint_root(root: &Path) -> std::io::Result<Report> {
    let files = collect_files(root)?;
    let mut inputs: Vec<(String, String)> = Vec::with_capacity(files.len());
    for rel in &files {
        inputs.push((rel.clone(), std::fs::read_to_string(root.join(rel))?));
    }
    let diagnostics = lint_sources(&inputs);
    Ok(Report::build(files.len(), diagnostics))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unsuppressed<'d>(diags: &'d [Diagnostic], rule: &str) -> Vec<&'d Diagnostic> {
        diags
            .iter()
            .filter(|d| d.rule == rule && !d.suppressed)
            .collect()
    }

    // ---- no-unwrap-on-serve-path ---------------------------------------

    #[test]
    fn unwrap_on_serve_path_is_flagged() {
        let diags = lint_source(
            "crates/core/src/model.rs",
            "fn f() { x.lock().unwrap(); y.expect(\"msg\"); }\n",
        );
        let hits = unsuppressed(&diags, "no-unwrap-on-serve-path");
        assert_eq!(hits.len(), 2, "{diags:?}");
        assert_eq!(hits[0].line, 1);
    }

    #[test]
    fn unwrap_outside_serve_crates_is_not_flagged() {
        let diags = lint_source("crates/eval/src/metrics.rs", "fn f() { x.unwrap(); }\n");
        assert!(unsuppressed(&diags, "no-unwrap-on-serve-path").is_empty());
    }

    #[test]
    fn unwrap_in_cfg_test_mod_is_ignored() {
        let src = "#[cfg(test)]\nmod tests {\n fn t() { x.unwrap(); }\n}\n";
        let diags = lint_source("crates/store/src/db.rs", src);
        assert!(unsuppressed(&diags, "no-unwrap-on-serve-path").is_empty());
    }

    #[test]
    fn unwrap_in_string_or_comment_is_ignored() {
        let src = "fn f() {\n  let s = \".unwrap()\"; // .unwrap() in comment\n}\n\
                   /// doctest: x.unwrap()\nfn g() {}\n";
        let diags = lint_source("crates/query/src/engine.rs", src);
        assert!(unsuppressed(&diags, "no-unwrap-on-serve-path").is_empty());
    }

    #[test]
    fn unwrap_or_variants_are_not_flagged() {
        let src = "fn f() { x.unwrap_or(0); y.unwrap_or_else(|| 1); z.unwrap_or_default(); \
                   e.expect_err(\"no\"); }\n";
        let diags = lint_source("crates/select/src/ranking.rs", src);
        assert!(unsuppressed(&diags, "no-unwrap-on-serve-path").is_empty());
    }

    #[test]
    fn pragma_with_reason_suppresses() {
        let src = "fn f() {\n  // crowd-lint: allow(no-unwrap-on-serve-path) -- vec built \
                   non-empty two lines up\n  x.unwrap();\n}\n";
        let diags = lint_source("crates/core/src/trainer.rs", src);
        assert!(unsuppressed(&diags, "no-unwrap-on-serve-path").is_empty());
        assert!(diags
            .iter()
            .any(|d| d.suppressed && d.reason.as_deref().is_some_and(|r| r.contains("vec"))));
    }

    #[test]
    fn trailing_pragma_suppresses() {
        let src = "fn f() { x.unwrap(); } // crowd-lint: allow(no-unwrap-on-serve-path) -- demo\n";
        let diags = lint_source("crates/core/src/trainer.rs", src);
        assert!(unsuppressed(&diags, "no-unwrap-on-serve-path").is_empty());
    }

    #[test]
    fn pragma_without_reason_is_invalid_and_does_not_suppress() {
        let src = "fn f() {\n  // crowd-lint: allow(no-unwrap-on-serve-path)\n  x.unwrap();\n}\n";
        let diags = lint_source("crates/core/src/trainer.rs", src);
        assert_eq!(unsuppressed(&diags, "no-unwrap-on-serve-path").len(), 1);
        assert_eq!(unsuppressed(&diags, "invalid-pragma").len(), 1);
    }

    #[test]
    fn pragma_for_unknown_rule_is_invalid() {
        let src = "// crowd-lint: allow(no-such-rule) -- why\nfn f() {}\n";
        let diags = lint_source("crates/core/src/trainer.rs", src);
        assert_eq!(unsuppressed(&diags, "invalid-pragma").len(), 1);
    }

    // ---- bounded-wait-on-serve-path ------------------------------------

    #[test]
    fn unbounded_wait_on_serve_path_is_flagged() {
        let src = "fn f(cv: &Condvar, g: MutexGuard<bool>) { let _g = cv.wait(g); }\n";
        let diags = lint_source("crates/query/src/admission.rs", src);
        assert_eq!(unsuppressed(&diags, "bounded-wait-on-serve-path").len(), 1);
    }

    #[test]
    fn wait_timeout_is_not_flagged() {
        let src = "fn f(cv: &Condvar, g: MutexGuard<bool>) {\n  \
                   let _r = cv.wait_timeout(g, remaining);\n}\n";
        let diags = lint_source("crates/query/src/admission.rs", src);
        assert!(unsuppressed(&diags, "bounded-wait-on-serve-path").is_empty());
    }

    #[test]
    fn unbounded_wait_outside_serve_crates_is_not_flagged() {
        let diags = lint_source("crates/eval/src/metrics.rs", "fn f() { cv.wait(g); }\n");
        assert!(unsuppressed(&diags, "bounded-wait-on-serve-path").is_empty());
    }

    #[test]
    fn unbounded_wait_in_test_code_is_ignored() {
        let src = "#[cfg(test)]\nmod tests {\n fn t() { cv.wait(g); }\n}\n";
        let diags = lint_source("crates/query/src/admission.rs", src);
        assert!(unsuppressed(&diags, "bounded-wait-on-serve-path").is_empty());
    }

    // ---- no-partial-cmp-unwrap -----------------------------------------

    #[test]
    fn partial_cmp_call_is_flagged_but_impl_is_not() {
        let src = "fn f(xs: &mut [f64]) { xs.sort_by(|a, b| a.partial_cmp(b).unwrap()); }\n\
                   fn partial_cmp(a: &X, b: &X) -> Option<Ordering> { None }\n";
        let diags = lint_source("crates/eval/src/metrics.rs", src);
        assert_eq!(unsuppressed(&diags, "no-partial-cmp-unwrap").len(), 1);
    }

    #[test]
    fn partial_cmp_in_comment_is_ignored() {
        let src = "// prefer total_cmp over .partial_cmp( here\nfn f() {}\n";
        let diags = lint_source("crates/eval/src/metrics.rs", src);
        assert!(unsuppressed(&diags, "no-partial-cmp-unwrap").is_empty());
    }

    // ---- deterministic-snapshot-maps -----------------------------------

    #[test]
    fn hashmap_in_serialize_derive_is_flagged() {
        let src = "#[derive(Debug, Serialize)]\npub struct Snap {\n    \
                   map: HashMap<u32, u32>,\n}\n";
        let diags = lint_source("crates/obs/src/metrics.rs", src);
        assert_eq!(unsuppressed(&diags, "deterministic-snapshot-maps").len(), 1);
    }

    #[test]
    fn hashmap_in_snapshot_fn_is_flagged() {
        let src = "pub fn snapshot(&self) -> Snap {\n    let m: HashMap<u32, u32> = \
                   HashMap::new();\n    Snap {}\n}\n";
        let diags = lint_source("crates/obs/src/metrics.rs", src);
        assert_eq!(unsuppressed(&diags, "deterministic-snapshot-maps").len(), 1);
    }

    #[test]
    fn serde_skipped_hashmap_is_not_flagged() {
        let src = "#[derive(Debug, Serialize)]\npub struct Snap {\n    terms: Vec<String>,\n    \
                   #[serde(skip)]\n    index: HashMap<String, u32>,\n}\n";
        let diags = lint_source("crates/obs/src/metrics.rs", src);
        assert!(
            unsuppressed(&diags, "deterministic-snapshot-maps").is_empty(),
            "a #[serde(skip)] field never reaches the serializer"
        );
    }

    #[test]
    fn hashmap_in_plain_struct_is_not_flagged() {
        let src = "pub struct Index {\n    map: HashMap<u32, u32>,\n}\n";
        let diags = lint_source("crates/store/src/db.rs", src);
        assert!(unsuppressed(&diags, "deterministic-snapshot-maps").is_empty());
    }

    // ---- no-silent-truncation ------------------------------------------

    #[test]
    fn narrowing_cast_is_flagged_and_widening_is_not() {
        let src = "fn f(n: u64) { let a = n as u32; let b = n as f64; let c = 3u8 as usize; }\n";
        let diags = lint_source("crates/store/src/ids.rs", src);
        let hits = unsuppressed(&diags, "no-silent-truncation");
        assert_eq!(hits.len(), 1, "{diags:?}");
    }

    #[test]
    fn cast_in_string_is_ignored() {
        let src = "fn f() { let s = \"x as u32\"; }\n";
        let diags = lint_source("crates/store/src/ids.rs", src);
        assert!(unsuppressed(&diags, "no-silent-truncation").is_empty());
    }

    // ---- pub-fn-panics-documented --------------------------------------

    #[test]
    fn undocumented_panicking_pub_fn_is_flagged() {
        let src = "/// Frobs.\npub fn frob(x: u32) {\n    assert!(x > 0);\n}\n";
        let diags = lint_source("crates/math/src/matrix.rs", src);
        assert_eq!(unsuppressed(&diags, "pub-fn-panics-documented").len(), 1);
    }

    #[test]
    fn documented_panicking_pub_fn_is_clean() {
        let src = "/// Frobs.\n///\n/// # Panics\n/// If x is 0.\npub fn frob(x: u32) {\n    \
                   assert!(x > 0);\n}\n";
        let diags = lint_source("crates/math/src/matrix.rs", src);
        assert!(unsuppressed(&diags, "pub-fn-panics-documented").is_empty());
    }

    #[test]
    fn debug_assert_does_not_count_as_panic() {
        let src = "pub fn frob(x: u32) {\n    debug_assert!(x > 0);\n    \
                   debug_assert_eq!(x, x);\n}\n";
        let diags = lint_source("crates/math/src/matrix.rs", src);
        assert!(unsuppressed(&diags, "pub-fn-panics-documented").is_empty());
    }

    #[test]
    fn non_pub_fn_is_not_checked() {
        let src = "fn private(x: u32) { assert!(x > 0); }\n\
                   pub(crate) fn crate_only(x: u32) { assert!(x > 0); }\n";
        let diags = lint_source("crates/math/src/matrix.rs", src);
        assert!(unsuppressed(&diags, "pub-fn-panics-documented").is_empty());
    }

    // ---- file walking ---------------------------------------------------

    #[test]
    fn integration_test_files_are_exempt() {
        let diags = lint_source(
            "crates/core/tests/end_to_end.rs",
            "fn f() { x.unwrap(); }\n",
        );
        assert!(diags
            .iter()
            .all(|d| d.suppressed || d.rule == "invalid-pragma"));
        assert!(unsuppressed(&diags, "no-unwrap-on-serve-path").is_empty());
    }
}
