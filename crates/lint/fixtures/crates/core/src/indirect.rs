//! Indirect (multi-hop) violations only the call-graph packs can see.
//!
//! The lexical baseline provably misses everything here: the hash-ordered
//! float sum sits in `hidden_tally`, whose name matches none of
//! `ordered-shard-merge`'s `fn merge/reduce/fold/resolved` patterns, and
//! the unbounded block is a `.recv()`, which `bounded-wait-on-serve-path`
//! (pattern `.wait(`) never matches. The golden-report test asserts that
//! `--pack lexical` reports nothing in this file while the `det` and
//! `wait` packs each produce a witness chain through the helpers below.

use std::collections::HashMap;

// Two hops: root → det_middle_hop → hidden_tally.
// crowd-lint: root(det)
pub fn indirect_det_entry(m: &HashMap<u64, f64>) -> f64 {
    det_middle_hop(m)
}

fn det_middle_hop(m: &HashMap<u64, f64>) -> f64 {
    hidden_tally(m)
}

fn hidden_tally(m: &HashMap<u64, f64>) -> f64 {
    m.values().sum()
}

// One hop through helper indirection: root → blocking_helper.
// crowd-lint: root(wait)
pub fn indirect_wait_entry(rx: &std::sync::mpsc::Receiver<u64>) -> u64 {
    blocking_helper(rx)
}

fn blocking_helper(rx: &std::sync::mpsc::Receiver<u64>) -> u64 {
    rx.recv().unwrap_or(0)
}
