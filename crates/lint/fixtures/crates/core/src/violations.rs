//! Seeded violation fixture for the CI gate: `cargo run -p crowd-lint --
//! --root crates/lint/fixtures` must exit non-zero. This file is never
//! compiled (it is not part of any module tree) and the `fixtures`
//! directory is excluded from workspace-wide scans.

use std::collections::HashMap;

/// One hit per rule, plus pragma demonstrations.
pub fn seeded_unwrap(map: &HashMap<u32, u32>) -> u32 {
    // rule: no-unwrap-on-serve-path (two sites on one line counted once each)
    let a = map.get(&1).unwrap();
    let b = map.get(&2).expect("seeded expect");
    a + b
}

fn seeded_unbounded_wait(pair: &(std::sync::Mutex<bool>, std::sync::Condvar)) {
    // rule: bounded-wait-on-serve-path
    let guard = pair.0.lock().unwrap();
    let _unused = pair.1.wait(guard);
}

fn seeded_per_call_spawn(xs: Vec<f64>) -> f64 {
    // rule: no-per-call-thread-spawn (per-query spawn instead of the pool)
    let handle = std::thread::spawn(move || xs.iter().sum());
    handle.join().unwrap()
}

fn seeded_partial_cmp(xs: &mut [f64]) {
    // rule: no-partial-cmp-unwrap
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
}

#[derive(Serialize)]
pub struct SeededSnapshot {
    // rule: deterministic-snapshot-maps
    counters: HashMap<String, u64>,
}

fn merge_seeded_shards(per_shard: HashMap<usize, f64>) -> f64 {
    // rule: ordered-shard-merge (hash order feeding a cross-shard sum)
    per_shard.values().sum()
}

fn seeded_truncation(n: u64) -> u32 {
    // rule: no-silent-truncation
    n as u32
}

/// Panics without documenting it.
pub fn seeded_undocumented_panic(x: u32) {
    // rule: pub-fn-panics-documented (assert! in an undocumented pub fn)
    assert!(x > 0);
}

// rule: invalid-pragma (no reason given)
// crowd-lint: allow(no-silent-truncation)
fn seeded_invalid_pragma(n: u64) -> u16 {
    n as u16
}

// A *valid* suppression: this one must NOT count against the gate.
fn legitimately_suppressed(n: u64) -> u8 {
    // crowd-lint: allow(no-silent-truncation) -- fixture: n is a dice roll in 1..=6
    n as u8
}
