//! Seeded violation fixture for the CI gate: `cargo run -p crowd-lint --
//! --root crates/lint/fixtures` must exit non-zero. This file is never
//! compiled (it is not part of any module tree) and the `fixtures`
//! directory is excluded from workspace-wide scans.

use std::collections::HashMap;

/// One hit per rule, plus pragma demonstrations.
pub fn seeded_unwrap(map: &HashMap<u32, u32>) -> u32 {
    // rule: no-unwrap-on-serve-path (two sites on one line counted once each)
    let a = map.get(&1).unwrap();
    let b = map.get(&2).expect("seeded expect");
    a + b
}

fn seeded_unbounded_wait(pair: &(std::sync::Mutex<bool>, std::sync::Condvar)) {
    // rule: bounded-wait-on-serve-path
    let guard = pair.0.lock().unwrap();
    let _unused = pair.1.wait(guard);
}

fn seeded_per_call_spawn(xs: Vec<f64>) -> f64 {
    // rule: no-per-call-thread-spawn (per-query spawn instead of the pool)
    let handle = std::thread::spawn(move || xs.iter().sum());
    handle.join().unwrap()
}

fn seeded_partial_cmp(xs: &mut [f64]) {
    // rule: no-partial-cmp-unwrap
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
}

#[derive(Serialize)]
pub struct SeededSnapshot {
    // rule: deterministic-snapshot-maps
    counters: HashMap<String, u64>,
}

fn merge_seeded_shards(per_shard: HashMap<usize, f64>) -> f64 {
    // rule: ordered-shard-merge (hash order feeding a cross-shard sum)
    per_shard.values().sum()
}

fn seeded_truncation(n: u64) -> u32 {
    // rule: no-silent-truncation
    n as u32
}

/// Panics without documenting it.
pub fn seeded_undocumented_panic(x: u32) {
    // rule: pub-fn-panics-documented (assert! in an undocumented pub fn)
    assert!(x > 0);
}

// rule: invalid-pragma (no reason given)
// crowd-lint: allow(no-silent-truncation)
fn seeded_invalid_pragma(n: u64) -> u16 {
    n as u16
}

// A *valid* suppression: this one must NOT count against the gate.
fn legitimately_suppressed(n: u64) -> u8 {
    // crowd-lint: allow(no-silent-truncation) -- fixture: n is a dice roll in 1..=6
    n as u8
}

// rule: invalid-pragma (stale: the cast below widens, so the suppressed
// rule never fires and the pragma is dead weight)
fn seeded_stale_pragma(n: u32) -> u64 {
    // crowd-lint: allow(no-silent-truncation) -- fixture: stale on purpose, the cast widens
    u64::from(n)
}

// ---- call-graph pack seeds: one direct hit per rule ----------------------

// rule: det-no-hash-iter (hash iteration directly inside a det root)
// crowd-lint: root(det)
fn seeded_det_hash_iter(m: &HashMap<u32, u32>) -> u32 {
    let mut total = 0;
    for v in m.values() {
        total += v;
    }
    total
}

// rule: det-no-unordered-float-sum (hash order feeding a float reduce)
// crowd-lint: root(det)
fn seeded_det_unordered_sum(m: &HashMap<u32, f64>) -> f64 {
    m.values().sum()
}

// rule: det-no-mul-add (fused rounding on a determinism path)
// crowd-lint: root(det)
fn seeded_det_mul_add(a: f64, b: f64, c: f64) -> f64 {
    a.mul_add(b, c)
}

// rule: wait-bounded-block-reachable (unbounded recv at a serve root)
// crowd-lint: root(wait)
fn seeded_wait_unbounded_recv(rx: &std::sync::mpsc::Receiver<u32>) -> u32 {
    rx.recv().unwrap_or(0)
}

// rule: wait-guard-checkpoint-loop (spin loop that never checkpoints)
// crowd-lint: root(wait)
fn seeded_wait_uncheckpointed_loop() {
    loop {
        std::hint::spin_loop();
    }
}
