//! [`SelectorBackend`] factories for the baseline algorithms, and the
//! standard registry wiring all four `USING <backend>` names.
//!
//! All three baselines are *lazily fittable*: they are cheap enough for the
//! query engine to fit on demand the first time a `SELECT … USING vsm`
//! arrives. The probabilistic baselines (DRM, TSPM) refuse to fit on a
//! database without resolved tasks — there is nothing to estimate topics
//! from — with an error naming the missing ingredient.

use crate::drm::DrmSelector;
use crate::tspm::TspmSelector;
use crate::vsm::VsmSelector;
use crowd_core::backend::TdpmBackend;
use crowd_select::{
    DbMutation, FitDiagnostics, FitOptions, FitOutcome, SelectError, SelectorBackend,
    SelectorRegistry,
};
use crowd_store::CrowdDb;

/// Default latent-category count for the topic baselines when
/// [`FitOptions::categories`] is unset (matches the query engine's
/// `TRAIN MODEL` default).
pub const DEFAULT_CATEGORIES: usize = 10;

/// Default seed when [`FitOptions::seed`] is unset.
pub const DEFAULT_SEED: u64 = 42;

fn require_resolved(db: &CrowdDb, backend: &'static str) -> Result<(), SelectError> {
    if db.resolved_tasks().is_empty() {
        return Err(SelectError::NeedsData {
            backend: backend.into(),
            reason: "needs resolved tasks with feedback scores".into(),
        });
    }
    Ok(())
}

/// The `"vsm"` backend: cosine similarity against historical vocabulary.
#[derive(Debug, Clone, Copy, Default)]
pub struct VsmBackend;

impl SelectorBackend for VsmBackend {
    fn name(&self) -> &'static str {
        "vsm"
    }

    /// VSM profiles are unions of *assigned task content* — feedback scores
    /// and answers never enter the fit, so those writes keep the snapshot.
    fn invalidated_by(&self, mutation: DbMutation) -> bool {
        !matches!(mutation, DbMutation::Feedback | DbMutation::Answer)
    }

    fn fit(&self, db: &CrowdDb, _opts: &FitOptions) -> Result<FitOutcome, SelectError> {
        Ok(FitOutcome::new(
            Box::new(VsmSelector::fit(db)),
            FitDiagnostics::closed_form(),
        ))
    }
}

/// The `"drm"` backend: multinomial skills from PLSA topic mixtures.
#[derive(Debug, Clone, Copy, Default)]
pub struct DrmBackend;

impl SelectorBackend for DrmBackend {
    fn name(&self) -> &'static str {
        "drm"
    }

    /// DRM fits on *resolved* tasks, so feedback (which resolves tasks)
    /// invalidates the snapshot; recorded answer text is never read.
    fn invalidated_by(&self, mutation: DbMutation) -> bool {
        !matches!(mutation, DbMutation::Answer)
    }

    fn fit(&self, db: &CrowdDb, opts: &FitOptions) -> Result<FitOutcome, SelectError> {
        require_resolved(db, "drm")?;
        let k = opts.categories.unwrap_or(DEFAULT_CATEGORIES);
        let seed = opts.seed.unwrap_or(DEFAULT_SEED);
        Ok(FitOutcome::new(
            Box::new(DrmSelector::fit(db, k, seed)),
            FitDiagnostics::closed_form(),
        ))
    }
}

/// The `"tspm"` backend: multinomial skills from LDA posterior means.
#[derive(Debug, Clone, Copy, Default)]
pub struct TspmBackend;

impl SelectorBackend for TspmBackend {
    fn name(&self) -> &'static str {
        "tspm"
    }

    /// Same dependence as DRM: resolved tasks (feedback matters), answer
    /// text does not.
    fn invalidated_by(&self, mutation: DbMutation) -> bool {
        !matches!(mutation, DbMutation::Answer)
    }

    fn fit(&self, db: &CrowdDb, opts: &FitOptions) -> Result<FitOutcome, SelectError> {
        require_resolved(db, "tspm")?;
        let k = opts.categories.unwrap_or(DEFAULT_CATEGORIES);
        let seed = opts.seed.unwrap_or(DEFAULT_SEED);
        Ok(FitOutcome::new(
            Box::new(TspmSelector::fit(db, k, seed)),
            FitDiagnostics::closed_form(),
        ))
    }
}

/// The registry every dispatch layer starts from: `tdpm` (explicit-fit),
/// `vsm`, `drm` and `tspm` (lazily fittable).
pub fn standard_registry() -> SelectorRegistry {
    let mut registry = SelectorRegistry::new();
    registry.register(Box::new(TdpmBackend::new()));
    registry.register(Box::new(VsmBackend));
    registry.register(Box::new(DrmBackend));
    registry.register(Box::new(TspmBackend));
    registry
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowd_store::WorkerId;
    use crowd_text::{tokenize_filtered, BagOfWords};

    fn specialist_db() -> (CrowdDb, Vec<WorkerId>) {
        let mut db = CrowdDb::new();
        let dba = db.add_worker("dba");
        let stat = db.add_worker("stat");
        for i in 0..10 {
            let (text, who) = if i % 2 == 0 {
                ("btree page split index buffer disk", dba)
            } else {
                ("gaussian prior posterior likelihood variance", stat)
            };
            let t = db.add_task(text);
            db.assign(who, t).unwrap();
            db.record_feedback(who, t, 3.0).unwrap();
        }
        (db, vec![dba, stat])
    }

    #[test]
    fn standard_registry_knows_all_four_names() {
        let r = standard_registry();
        assert_eq!(r.names(), vec!["tdpm", "vsm", "drm", "tspm"]);
        assert!(!r.get("tdpm").unwrap().lazy_fit());
        for lazy in ["vsm", "drm", "tspm"] {
            assert!(r.get(lazy).unwrap().lazy_fit(), "{lazy} should be lazy");
        }
    }

    #[test]
    fn every_lazy_backend_fits_and_routes() {
        let (mut db, workers) = specialist_db();
        let r = standard_registry();
        let task = BagOfWords::from_tokens(&tokenize_filtered("btree index page"), db.vocab_mut());
        for name in ["vsm", "drm", "tspm"] {
            let fitted = r.fit(name, &db, &FitOptions::with(2, 1)).unwrap();
            assert_eq!(fitted.backend(), name);
            assert!(fitted.diagnostics().converged);
            let ranked = fitted.selector().rank(&task, &workers);
            assert_eq!(ranked[0].worker, workers[0], "{name} routes btree → dba");
        }
    }

    #[test]
    fn topic_backends_require_resolved_tasks() {
        let mut db = CrowdDb::new();
        db.add_worker("lonely");
        db.add_task("a task nobody answered");
        for name in ["drm", "tspm"] {
            let err = match standard_registry().fit(name, &db, &FitOptions::default()) {
                Ok(_) => panic!("{name} should refuse an unresolved db"),
                Err(e) => e,
            };
            let msg = err.to_string();
            assert!(
                msg.contains("needs resolved tasks with feedback scores"),
                "{msg}"
            );
            assert!(msg.contains(name), "{msg}");
        }
    }

    #[test]
    fn backend_invalidation_matches_fit_dependencies() {
        use DbMutation::*;
        let all = [WorkerAdded, TaskAdded, Assigned, Feedback, Answer];
        for m in all {
            assert_eq!(
                VsmBackend.invalidated_by(m),
                !matches!(m, Feedback | Answer),
                "vsm on {m:?}"
            );
            assert_eq!(
                DrmBackend.invalidated_by(m),
                !matches!(m, Answer),
                "drm on {m:?}"
            );
            assert_eq!(
                TspmBackend.invalidated_by(m),
                !matches!(m, Answer),
                "tspm on {m:?}"
            );
            assert!(TdpmBackend::new().invalidated_by(m), "tdpm on {m:?}");
        }
    }

    #[test]
    fn batched_selection_matches_serial_for_every_backend() {
        use crowd_select::BatchQuery;
        let (mut db, workers) = specialist_db();
        let r = standard_registry();
        let bows = [
            BagOfWords::from_tokens(&tokenize_filtered("btree index page"), db.vocab_mut()),
            BagOfWords::from_tokens(&tokenize_filtered("posterior gaussian"), db.vocab_mut()),
        ];
        let queries: Vec<BatchQuery<'_>> = bows
            .iter()
            .enumerate()
            .map(|(i, bow)| BatchQuery {
                bow,
                candidates: &workers,
                task: if i == 0 {
                    Some(crowd_store::TaskId(0))
                } else {
                    None
                },
            })
            .collect();
        for name in ["vsm", "drm", "tspm"] {
            let fitted = r.fit(name, &db, &FitOptions::with(2, 1)).unwrap();
            let batch = fitted.select_batch(&queries, 2);
            assert_eq!(batch.len(), 2, "{name}");
            for (q, got) in queries.iter().zip(&batch) {
                let mut want = match q.task {
                    Some(t) => fitted.selector().rank_trained(t, q.bow, q.candidates),
                    None => fitted.selector().rank(q.bow, q.candidates),
                };
                want.truncate(2);
                assert_eq!(got.len(), want.len(), "{name}");
                for (a, b) in got.iter().zip(&want) {
                    assert_eq!(a.worker, b.worker, "{name}");
                    assert_eq!(a.score.to_bits(), b.score.to_bits(), "{name}");
                }
            }
        }
    }

    #[test]
    fn vsm_fits_even_on_an_empty_db() {
        let db = CrowdDb::new();
        let fitted = standard_registry()
            .fit("vsm", &db, &FitOptions::default())
            .unwrap();
        assert!(fitted
            .selector()
            .rank(&BagOfWords::new(), &[WorkerId(0)])
            .iter()
            .all(|r| r.score == 0.0));
    }
}
