//! Adapter exposing the trained TDPM model through [`CrowdSelector`].
//!
//! The adapter moved into `crowd-core` (`crowd_core::backend`) when the
//! selection abstraction was extracted into `crowd-select`; this module
//! re-exports it under its historical path.
//!
//! [`CrowdSelector`]: crowd_select::CrowdSelector

pub use crowd_core::backend::TdpmSelector;
