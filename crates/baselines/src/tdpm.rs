//! Adapter exposing the trained TDPM model through [`CrowdSelector`].

use crate::selector::CrowdSelector;
use crowd_core::selection::RankedWorker;
use crowd_core::{TdpmConfig, TdpmModel, TdpmTrainer};
use crowd_store::{CrowdDb, WorkerId};
use crowd_text::BagOfWords;

/// TDPM behind the uniform selector interface.
///
/// Selection uses the deterministic posterior-mean category (the paper's
/// Algorithm 3 samples it; the mean is the expectation of that procedure and
/// keeps the evaluation reproducible).
#[derive(Debug, Clone)]
pub struct TdpmSelector {
    model: TdpmModel,
}

impl TdpmSelector {
    /// Wraps an already trained model.
    pub fn new(model: TdpmModel) -> Self {
        TdpmSelector { model }
    }

    /// Trains a model on `db` with `num_topics` latent categories.
    pub fn fit(db: &CrowdDb, num_topics: usize, seed: u64) -> crowd_core::Result<Self> {
        let cfg = TdpmConfig {
            num_categories: num_topics,
            seed,
            ..TdpmConfig::default()
        };
        let model = TdpmTrainer::new(cfg).fit(db)?;
        Ok(TdpmSelector { model })
    }

    /// The underlying model.
    pub fn model(&self) -> &TdpmModel {
        &self.model
    }

    /// Mutable access (for incremental updates in the platform pipeline).
    pub fn model_mut(&mut self) -> &mut TdpmModel {
        &mut self.model
    }
}

impl CrowdSelector for TdpmSelector {
    fn name(&self) -> &'static str {
        "TDPM"
    }

    fn rank(&self, task: &BagOfWords, candidates: &[WorkerId]) -> Vec<RankedWorker> {
        let projection = self.model.project_bow(task);
        self.model
            .rank_all(&projection, candidates.iter().copied())
    }

    fn rank_trained(
        &self,
        task: crowd_store::TaskId,
        bow: &BagOfWords,
        candidates: &[WorkerId],
    ) -> Vec<RankedWorker> {
        match self.model.trained_projection(task) {
            Some(projection) => self.model.rank_all(projection, candidates.iter().copied()),
            None => self.rank(bow, candidates),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowd_text::tokenize_filtered;

    #[test]
    fn end_to_end_selector_routes_correctly() {
        let mut db = CrowdDb::new();
        let dba = db.add_worker("dba");
        let stat = db.add_worker("stat");
        for i in 0..10 {
            let (text, good, bad) = if i % 2 == 0 {
                ("btree page split index buffer disk", dba, stat)
            } else {
                ("gaussian prior posterior likelihood variance", stat, dba)
            };
            let t = db.add_task(text);
            db.assign(good, t).unwrap();
            db.assign(bad, t).unwrap();
            db.record_feedback(good, t, 4.0).unwrap();
            db.record_feedback(bad, t, 0.5).unwrap();
        }
        let tdpm = TdpmSelector::fit(&db, 2, 7).unwrap();
        assert_eq!(tdpm.name(), "TDPM");

        let task = BagOfWords::from_tokens(
            &tokenize_filtered("btree page buffer"),
            db.vocab_mut(),
        );
        let ranked = tdpm.rank(&task, &[dba, stat]);
        assert_eq!(ranked[0].worker, dba);

        let task = BagOfWords::from_tokens(
            &tokenize_filtered("posterior variance prior"),
            db.vocab_mut(),
        );
        let top = tdpm.select(&task, &[dba, stat], 1);
        assert_eq!(top[0].worker, stat);
    }

    #[test]
    fn unknown_candidates_dropped() {
        let mut db = CrowdDb::new();
        let w = db.add_worker("only");
        let t = db.add_task("single task words here");
        db.assign(w, t).unwrap();
        db.record_feedback(w, t, 1.0).unwrap();
        let tdpm = TdpmSelector::fit(&db, 2, 1).unwrap();
        let task = db.task(t).unwrap().bow.clone();
        let ranked = tdpm.rank(&task, &[w, WorkerId(99)]);
        assert_eq!(ranked.len(), 1);
        assert_eq!(ranked[0].worker, w);
    }
}
