#![warn(missing_docs)]

//! Baseline crowd-selection algorithms (paper Section 7.2.1).
//!
//! The paper compares TDPM against three baselines, all implemented here
//! from scratch:
//!
//! - [`VsmSelector`] — Vector Space Model: cosine similarity between the task
//!   and the union bag-of-words of each worker's answering history.
//! - [`DrmSelector`] — Dual Role Model (Xu et al., SIGIR'12): multinomial
//!   worker skills estimated with **PLSA** ([`plsa::Plsa`]).
//! - [`TspmSelector`] — Topic-Sensitive Probabilistic Model (Guo et al.,
//!   CIKM'08 / Zhou et al., CIKM'12): multinomial skills estimated with
//!   **LDA** ([`lda::Lda`]).
//!
//! Both probabilistic baselines score a worker by `w^i (c^j)ᵀ` where the
//! skill vector is constrained to the simplex — exactly the normalization
//! the paper argues makes skills incomparable across workers (Section 1).
//! [`TdpmSelector`] adapts the trained TDPM model to the same interface so
//! the evaluation harness can treat all four uniformly.

pub mod backends;
pub mod drm;
pub mod lda;
pub mod plsa;
pub mod selector;
pub mod tdpm;
pub mod tspm;
pub mod vsm;

pub use backends::{standard_registry, DrmBackend, TspmBackend, VsmBackend};
pub use drm::DrmSelector;
pub use lda::Lda;
pub use plsa::Plsa;
pub use selector::{BatchQuery, CrowdSelector};
pub use tdpm::TdpmSelector;
pub use tspm::TspmSelector;
pub use vsm::VsmSelector;
