//! The uniform crowd-selection interface used by the evaluation harness.
//!
//! The trait itself now lives in the backend-agnostic `crowd-select` crate;
//! this module re-exports it under its historical path so downstream code
//! (and the paper-shaped evaluation harness) keeps compiling unchanged.

pub use crowd_select::{BatchQuery, CrowdSelector};
