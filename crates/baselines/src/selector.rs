//! The uniform crowd-selection interface used by the evaluation harness.

use crowd_core::selection::RankedWorker;
use crowd_store::{TaskId, WorkerId};
use crowd_text::BagOfWords;

/// A fitted crowd-selection algorithm, queryable per task.
///
/// A selector is *fitted once* on the historical `(T, A, S)` data and then
/// queried per incoming task — mirroring the paper's architecture where the
/// crowd manager answers selection queries online (Section 2). The task is
/// presented as a bag of words over the same vocabulary the selector was
/// fitted on.
pub trait CrowdSelector: Send + Sync {
    /// Short display name ("VSM", "TSPM", "DRM", "TDPM").
    fn name(&self) -> &'static str;

    /// Ranks all `candidates` for `task`, best first.
    ///
    /// Candidates unknown to the selector score as 0 / worst.
    fn rank(&self, task: &BagOfWords, candidates: &[WorkerId]) -> Vec<RankedWorker>;

    /// Returns the top-`k` workers (default: truncate [`rank`](Self::rank)).
    fn select(&self, task: &BagOfWords, candidates: &[WorkerId], k: usize) -> Vec<RankedWorker> {
        let mut ranked = self.rank(task, candidates);
        ranked.truncate(k);
        ranked
    }

    /// Ranks candidates for a *resolved training task*, identified by its
    /// store id, using the latent representation learned during fitting.
    ///
    /// The paper evaluates on historical questions; for those, a model's
    /// fitted per-task posterior is available and — crucially for TDPM —
    /// feedback-informed. The default falls back to content-only
    /// [`rank`](Self::rank), which is also the behaviour for tasks the
    /// selector never trained on.
    fn rank_trained(
        &self,
        task: TaskId,
        bow: &BagOfWords,
        candidates: &[WorkerId],
    ) -> Vec<RankedWorker> {
        let _ = task;
        self.rank(bow, candidates)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A trivial selector for exercising the default `select`.
    struct ById;
    impl CrowdSelector for ById {
        fn name(&self) -> &'static str {
            "BYID"
        }
        fn rank(&self, _task: &BagOfWords, candidates: &[WorkerId]) -> Vec<RankedWorker> {
            let scored = candidates.iter().map(|&w| (w, f64::from(w.0)));
            crowd_core::selection::top_k(scored, candidates.len())
        }
    }

    #[test]
    fn default_select_truncates_rank() {
        let s = ById;
        let candidates = vec![WorkerId(1), WorkerId(5), WorkerId(3)];
        let top2 = s.select(&BagOfWords::new(), &candidates, 2);
        assert_eq!(top2.len(), 2);
        assert_eq!(top2[0].worker, WorkerId(5));
        assert_eq!(top2[1].worker, WorkerId(3));
    }

    #[test]
    fn trait_objects_work() {
        let s: Box<dyn CrowdSelector> = Box::new(ById);
        assert_eq!(s.name(), "BYID");
    }
}
