//! Probabilistic Latent Semantic Analysis (Hofmann, SIGIR'99).
//!
//! Substrate for the DRM baseline: documents (tasks) get multinomial topic
//! mixtures `p(z|d)` and topics get word distributions `p(v|z)`, fitted by
//! EM on the term-count matrix.

use crowd_math::special::normalize_in_place;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A document as `(term index, count)` pairs.
pub type Doc = Vec<(usize, u32)>;

/// Fitted PLSA model.
#[derive(Debug, Clone)]
pub struct Plsa {
    /// `p(z|d)`: per training document, a distribution over `K` topics.
    doc_topics: Vec<Vec<f64>>,
    /// `p(v|z)`: `K` rows of vocabulary distributions.
    topic_words: Vec<Vec<f64>>,
    vocab_size: usize,
}

/// Training options for [`Plsa::fit`].
#[derive(Debug, Clone)]
pub struct PlsaConfig {
    /// Number of topics `K`.
    pub num_topics: usize,
    /// EM iterations.
    pub iterations: usize,
    /// Additive smoothing applied to `p(v|z)` at each M-step.
    pub smoothing: f64,
    /// RNG seed for initialization.
    pub seed: u64,
}

impl Default for PlsaConfig {
    fn default() -> Self {
        PlsaConfig {
            num_topics: 10,
            iterations: 50,
            smoothing: 1e-3,
            seed: 17,
        }
    }
}

impl Plsa {
    /// Fits PLSA on `docs` over a vocabulary of `vocab_size` terms.
    pub fn fit(docs: &[Doc], vocab_size: usize, cfg: &PlsaConfig) -> Self {
        let k = cfg.num_topics.max(1);
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut doc_topics: Vec<Vec<f64>> = (0..docs.len())
            .map(|_| random_simplex(k, &mut rng))
            .collect();
        let mut topic_words: Vec<Vec<f64>> = (0..k)
            .map(|_| random_simplex(vocab_size.max(1), &mut rng))
            .collect();

        let mut resp = vec![0.0; k];
        for _ in 0..cfg.iterations {
            // Accumulators for the M-step.
            let mut new_doc_topics = vec![vec![0.0; k]; docs.len()];
            let mut new_topic_words = vec![vec![cfg.smoothing; vocab_size]; k];
            for (d, doc) in docs.iter().enumerate() {
                for &(v, cnt) in doc {
                    if v >= vocab_size {
                        continue;
                    }
                    // E-step: r(z|d,v) ∝ p(z|d) p(v|z).
                    let mut sum = 0.0;
                    for z in 0..k {
                        resp[z] = doc_topics[d][z] * topic_words[z][v];
                        sum += resp[z];
                    }
                    if sum <= 0.0 {
                        continue;
                    }
                    let w = cnt as f64 / sum;
                    for z in 0..k {
                        let r = resp[z] * w;
                        new_doc_topics[d][z] += r;
                        new_topic_words[z][v] += r;
                    }
                }
            }
            for row in &mut new_doc_topics {
                normalize_in_place(row);
            }
            for row in &mut new_topic_words {
                normalize_in_place(row);
            }
            doc_topics = new_doc_topics;
            topic_words = new_topic_words;
        }

        Plsa {
            doc_topics,
            topic_words,
            vocab_size,
        }
    }

    /// Number of topics `K`.
    pub fn num_topics(&self) -> usize {
        self.topic_words.len()
    }

    /// `p(z|d)` for training document `d`.
    pub fn doc_topics(&self, d: usize) -> &[f64] {
        &self.doc_topics[d]
    }

    /// `p(v|z)` for topic `z`.
    pub fn topic_words(&self, z: usize) -> &[f64] {
        &self.topic_words[z]
    }

    /// Folds a new document into the topic space: EM iterations updating only
    /// its `p(z|d)` with `p(v|z)` frozen (the standard PLSA fold-in).
    pub fn fold_in(&self, doc: &[(usize, u32)], iterations: usize) -> Vec<f64> {
        let k = self.num_topics();
        let mut theta = vec![1.0 / k as f64; k];
        let mut resp = vec![0.0; k];
        for _ in 0..iterations.max(1) {
            let mut acc = vec![0.0; k];
            for &(v, cnt) in doc {
                if v >= self.vocab_size {
                    continue;
                }
                let mut sum = 0.0;
                for z in 0..k {
                    resp[z] = theta[z] * self.topic_words[z][v];
                    sum += resp[z];
                }
                if sum <= 0.0 {
                    continue;
                }
                for z in 0..k {
                    acc[z] += cnt as f64 * resp[z] / sum;
                }
            }
            normalize_in_place(&mut acc);
            theta = acc;
        }
        theta
    }

    /// Training-corpus log likelihood `Σ_{d,v} n(d,v) log Σ_z p(z|d) p(v|z)`.
    pub fn log_likelihood(&self, docs: &[Doc]) -> f64 {
        let k = self.num_topics();
        let mut ll = 0.0;
        for (d, doc) in docs.iter().enumerate() {
            for &(v, cnt) in doc {
                if v >= self.vocab_size {
                    continue;
                }
                let p: f64 = (0..k)
                    .map(|z| self.doc_topics[d][z] * self.topic_words[z][v])
                    .sum();
                ll += cnt as f64 * p.max(1e-300).ln();
            }
        }
        ll
    }
}

fn random_simplex(n: usize, rng: &mut StdRng) -> Vec<f64> {
    let mut v: Vec<f64> = (0..n).map(|_| rng.random_range(0.5..1.5)).collect();
    normalize_in_place(&mut v);
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two planted topics: terms 0–2 vs terms 3–5.
    fn planted_docs() -> Vec<Doc> {
        let mut docs = Vec::new();
        for i in 0..20 {
            if i % 2 == 0 {
                docs.push(vec![(0, 3), (1, 2), (2, 3)]);
            } else {
                docs.push(vec![(3, 3), (4, 2), (5, 3)]);
            }
        }
        docs
    }

    fn cfg(k: usize) -> PlsaConfig {
        PlsaConfig {
            num_topics: k,
            iterations: 60,
            ..PlsaConfig::default()
        }
    }

    #[test]
    fn rows_are_distributions() {
        let docs = planted_docs();
        let plsa = Plsa::fit(&docs, 6, &cfg(2));
        for d in 0..docs.len() {
            let s: f64 = plsa.doc_topics(d).iter().sum();
            assert!((s - 1.0).abs() < 1e-9);
        }
        for z in 0..2 {
            let s: f64 = plsa.topic_words(z).iter().sum();
            assert!((s - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn recovers_planted_topics() {
        let docs = planted_docs();
        let plsa = Plsa::fit(&docs, 6, &cfg(2));
        // Doc 0 and doc 1 are from different topics → their dominant topics
        // must differ, and be near one-hot.
        let t0 = plsa.doc_topics(0);
        let t1 = plsa.doc_topics(1);
        let argmax = |xs: &[f64]| {
            xs.iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .unwrap()
                .0
        };
        assert_ne!(argmax(t0), argmax(t1));
        assert!(t0[argmax(t0)] > 0.9, "dominant mass: {t0:?}");
    }

    #[test]
    fn log_likelihood_improves_with_iterations() {
        let docs = planted_docs();
        let short = Plsa::fit(
            &docs,
            6,
            &PlsaConfig {
                iterations: 1,
                ..cfg(2)
            },
        );
        let long = Plsa::fit(
            &docs,
            6,
            &PlsaConfig {
                iterations: 60,
                ..cfg(2)
            },
        );
        assert!(long.log_likelihood(&docs) > short.log_likelihood(&docs));
    }

    #[test]
    fn fold_in_matches_training_topics() {
        let docs = planted_docs();
        let plsa = Plsa::fit(&docs, 6, &cfg(2));
        let folded = plsa.fold_in(&[(0, 2), (1, 2)], 20);
        let trained = plsa.doc_topics(0);
        let argmax = |xs: &[f64]| {
            xs.iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .unwrap()
                .0
        };
        assert_eq!(argmax(&folded), argmax(trained));
        let s: f64 = folded.iter().sum();
        assert!((s - 1.0).abs() < 1e-9);
    }

    #[test]
    fn fold_in_ignores_out_of_vocab() {
        let docs = planted_docs();
        let plsa = Plsa::fit(&docs, 6, &cfg(2));
        let folded = plsa.fold_in(&[(100, 5)], 10);
        // No usable evidence → uniform (normalize_in_place of zeros).
        for x in &folded {
            assert!((x - 0.5).abs() < 1e-9);
        }
    }

    #[test]
    fn single_topic_degenerates_gracefully() {
        let docs = planted_docs();
        let plsa = Plsa::fit(&docs, 6, &cfg(1));
        assert_eq!(plsa.num_topics(), 1);
        assert!((plsa.doc_topics(0)[0] - 1.0).abs() < 1e-9);
    }
}
