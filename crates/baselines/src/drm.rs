//! DRM — Dual Role Model baseline (Xu, Ji & Wang, SIGIR'12).
//!
//! Models worker skills as a **multinomial** over latent categories,
//! estimated with PLSA (paper Section 7.2.1): a worker's skill vector is the
//! average of the topic mixtures of the tasks they answered, so
//! `Σ_k w_k^i = 1` for everyone — the normalization the paper criticizes.

use crate::plsa::{Doc, Plsa, PlsaConfig};
use crate::selector::CrowdSelector;
use crowd_select::{shared_candidate_runs, top_k, BatchQuery, RankedWorker};
use crowd_store::{CrowdDb, TaskId, WorkerId};
use crowd_text::BagOfWords;
use std::collections::HashMap;

/// Fold-in iterations used when projecting a query task.
const FOLD_IN_ITERS: usize = 15;

/// The fitted DRM selector.
#[derive(Debug, Clone)]
pub struct DrmSelector {
    plsa: Plsa,
    profiles: HashMap<WorkerId, Vec<f64>>,
    /// Fitted topic mixtures of the training tasks (for
    /// [`CrowdSelector::rank_trained`]).
    trained_tasks: HashMap<TaskId, Vec<f64>>,
}

impl DrmSelector {
    /// Fits PLSA on the resolved tasks of `db` and derives multinomial
    /// worker profiles.
    pub fn fit(db: &CrowdDb, num_topics: usize, seed: u64) -> Self {
        let resolved = db.resolved_tasks();
        let docs: Vec<Doc> = resolved
            .iter()
            .map(|rt| rt.bow.iter().map(|(t, c)| (t.index(), c)).collect())
            .collect();
        let cfg = PlsaConfig {
            num_topics,
            seed,
            ..PlsaConfig::default()
        };
        let plsa = Plsa::fit(&docs, db.vocab().len(), &cfg);

        let profiles = worker_profiles(
            num_topics,
            resolved
                .iter()
                .enumerate()
                .flat_map(|(d, rt)| rt.scores.iter().map(move |&(w, _)| (w, d))),
            |d| plsa.doc_topics(d).to_vec(),
        );
        let trained_tasks = resolved
            .iter()
            .enumerate()
            .map(|(d, rt)| (rt.task, plsa.doc_topics(d).to_vec()))
            .collect();
        DrmSelector {
            plsa,
            profiles,
            trained_tasks,
        }
    }

    /// The multinomial skill profile of a worker, if known.
    pub fn profile(&self, worker: WorkerId) -> Option<&[f64]> {
        self.profiles.get(&worker).map(Vec::as_slice)
    }

    /// The underlying PLSA model.
    pub fn plsa(&self) -> &Plsa {
        &self.plsa
    }
}

impl CrowdSelector for DrmSelector {
    fn name(&self) -> &'static str {
        "DRM"
    }

    fn rank(&self, task: &BagOfWords, candidates: &[WorkerId]) -> Vec<RankedWorker> {
        let doc: Doc = task.iter().map(|(t, c)| (t.index(), c)).collect();
        let c = self.plsa.fold_in(&doc, FOLD_IN_ITERS);
        self.rank_against(&c, candidates)
    }

    fn rank_trained(
        &self,
        task: TaskId,
        bow: &BagOfWords,
        candidates: &[WorkerId],
    ) -> Vec<RankedWorker> {
        match self.trained_tasks.get(&task) {
            Some(c) => self.rank_against(c, candidates),
            None => self.rank(bow, candidates),
        }
    }

    /// Batched selection over the dense profile table: the candidate →
    /// profile resolution is paid once per run of queries sharing a pool;
    /// only the per-query PLSA fold-in (skipped entirely for trained tasks)
    /// remains per query.
    fn select_batch(&self, queries: &[BatchQuery<'_>], k: usize) -> Vec<Vec<RankedWorker>> {
        let mut out = Vec::with_capacity(queries.len());
        for run in shared_candidate_runs(queries) {
            let resolved: Vec<(WorkerId, Option<&[f64]>)> = run[0]
                .candidates
                .iter()
                .map(|&w| (w, self.profiles.get(&w).map(Vec::as_slice)))
                .collect();
            for q in run {
                let folded;
                let c: &[f64] = match q.task.and_then(|t| self.trained_tasks.get(&t)) {
                    Some(c) => c,
                    None => {
                        let doc: Doc = q.bow.iter().map(|(t, c)| (t.index(), c)).collect();
                        folded = self.plsa.fold_in(&doc, FOLD_IN_ITERS);
                        &folded
                    }
                };
                let scored = resolved.iter().map(|&(w, p)| {
                    let score = p
                        .map(|p| p.iter().zip(c).map(|(a, b)| a * b).sum())
                        .unwrap_or(0.0);
                    (w, score)
                });
                out.push(top_k(scored, k));
            }
        }
        out
    }
}

impl DrmSelector {
    fn rank_against(&self, c: &[f64], candidates: &[WorkerId]) -> Vec<RankedWorker> {
        let scored = candidates.iter().map(|&w| {
            let score = self
                .profiles
                .get(&w)
                .map(|p| p.iter().zip(c).map(|(a, b)| a * b).sum())
                .unwrap_or(0.0);
            (w, score)
        });
        top_k(scored, candidates.len())
    }
}

/// Averages per-document topic vectors into per-worker multinomial profiles.
///
/// Shared by DRM (PLSA mixtures) and TSPM (LDA posterior means).
pub(crate) fn worker_profiles(
    k: usize,
    assignments: impl Iterator<Item = (WorkerId, usize)>,
    doc_topics: impl Fn(usize) -> Vec<f64>,
) -> HashMap<WorkerId, Vec<f64>> {
    let mut acc: HashMap<WorkerId, (Vec<f64>, usize)> = HashMap::new();
    for (w, d) in assignments {
        let topics = doc_topics(d);
        let entry = acc.entry(w).or_insert_with(|| (vec![0.0; k], 0));
        for (slot, t) in entry.0.iter_mut().zip(&topics) {
            *slot += t;
        }
        entry.1 += 1;
    }
    acc.into_iter()
        .map(|(w, (mut sum, n))| {
            for x in &mut sum {
                *x /= n as f64;
            }
            (w, sum)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowd_text::tokenize_filtered;

    /// Two specialists on disjoint vocabularies.
    pub(crate) fn specialist_db() -> (CrowdDb, Vec<WorkerId>) {
        let mut db = CrowdDb::new();
        let dba = db.add_worker("dba");
        let stat = db.add_worker("stat");
        for i in 0..10 {
            let (text, who) = if i % 2 == 0 {
                ("btree page split index buffer disk", dba)
            } else {
                ("gaussian prior posterior likelihood variance", stat)
            };
            let t = db.add_task(text);
            db.assign(who, t).unwrap();
            db.record_feedback(who, t, 3.0).unwrap();
        }
        (db, vec![dba, stat])
    }

    fn bag(db: &mut CrowdDb, text: &str) -> BagOfWords {
        BagOfWords::from_tokens(&tokenize_filtered(text), db.vocab_mut())
    }

    #[test]
    fn profiles_are_multinomial() {
        let (db, workers) = specialist_db();
        let drm = DrmSelector::fit(&db, 2, 1);
        for w in workers {
            let p = drm.profile(w).unwrap();
            let s: f64 = p.iter().sum();
            assert!((s - 1.0).abs() < 1e-9, "profile sums to 1: {p:?}");
        }
    }

    #[test]
    fn routes_tasks_to_specialists() {
        let (mut db, workers) = specialist_db();
        let drm = DrmSelector::fit(&db, 2, 1);
        let dbtask = bag(&mut db, "btree index page");
        let ranked = drm.rank(&dbtask, &workers);
        assert_eq!(ranked[0].worker, workers[0]);
        let stattask = bag(&mut db, "posterior gaussian variance");
        let ranked = drm.rank(&stattask, &workers);
        assert_eq!(ranked[0].worker, workers[1]);
    }

    #[test]
    fn unknown_candidates_score_zero() {
        let (mut db, _) = specialist_db();
        let drm = DrmSelector::fit(&db, 2, 1);
        let task = bag(&mut db, "btree");
        let ranked = drm.rank(&task, &[WorkerId(42)]);
        assert_eq!(ranked[0].score, 0.0);
    }

    #[test]
    fn profile_average_is_correct() {
        // Worker answers docs 0 and 1 with topic vectors (1,0) and (0,1).
        let docs: Vec<Vec<f64>> = vec![vec![1.0, 0.0], vec![0.0, 1.0]];
        let profiles = worker_profiles(
            2,
            vec![(WorkerId(0), 0), (WorkerId(0), 1)].into_iter(),
            |d| docs[d].clone(),
        );
        let p = &profiles[&WorkerId(0)];
        assert!((p[0] - 0.5).abs() < 1e-12);
        assert!((p[1] - 0.5).abs() < 1e-12);
    }
}
