//! The Vector Space Model baseline (paper Section 7.2.1).

use crate::selector::CrowdSelector;
use crowd_select::{shared_candidate_runs, top_k, BatchQuery, RankedWorker};
use crowd_store::{CrowdDb, WorkerId};
use crowd_text::similarity::cosine;
use crowd_text::BagOfWords;
use std::collections::HashMap;

/// VSM selects workers by the cosine similarity between the task and the
/// worker's historical vocabulary union:
///
/// ```text
/// s_ij = (t_j)ᵀ t_w^i / (‖t_j‖ ‖t_w^i‖),   t_w^i = ∪_{j : a_ij = 1} t_j
/// ```
#[derive(Debug, Clone)]
pub struct VsmSelector {
    profiles: HashMap<WorkerId, BagOfWords>,
}

impl VsmSelector {
    /// Builds worker profiles from every assignment in `db`.
    pub fn fit(db: &CrowdDb) -> Self {
        let profiles = db
            .worker_ids()
            .map(|w| (w, db.worker_history_bow(w)))
            .collect();
        VsmSelector { profiles }
    }

    /// Number of workers with a (possibly empty) profile.
    pub fn num_workers(&self) -> usize {
        self.profiles.len()
    }

    /// The profile bag for a worker, if known.
    pub fn profile(&self, worker: WorkerId) -> Option<&BagOfWords> {
        self.profiles.get(&worker)
    }
}

impl CrowdSelector for VsmSelector {
    fn name(&self) -> &'static str {
        "VSM"
    }

    fn rank(&self, task: &BagOfWords, candidates: &[WorkerId]) -> Vec<RankedWorker> {
        let scored = candidates.iter().map(|&w| {
            let score = self
                .profiles
                .get(&w)
                .map(|p| cosine(task, p))
                .unwrap_or(0.0);
            (w, score)
        });
        top_k(scored, candidates.len())
    }

    /// Batched selection over the dense score table: candidate profiles are
    /// resolved once per run of queries sharing a pool, so each query is a
    /// straight walk over `(worker, profile)` pairs instead of a hash walk.
    fn select_batch(&self, queries: &[BatchQuery<'_>], k: usize) -> Vec<Vec<RankedWorker>> {
        let mut out = Vec::with_capacity(queries.len());
        for run in shared_candidate_runs(queries) {
            let resolved: Vec<(WorkerId, Option<&BagOfWords>)> = run[0]
                .candidates
                .iter()
                .map(|&w| (w, self.profiles.get(&w)))
                .collect();
            for q in run {
                let scored = resolved
                    .iter()
                    .map(|&(w, p)| (w, p.map(|p| cosine(q.bow, p)).unwrap_or(0.0)));
                out.push(top_k(scored, k));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowd_text::tokenize_filtered;

    fn db() -> (CrowdDb, Vec<WorkerId>) {
        let mut db = CrowdDb::new();
        let dba = db.add_worker("dba");
        let stat = db.add_worker("stat");
        let texts_dba = [
            "btree page split write amplification",
            "btree index range scan buffer",
        ];
        let texts_stat = [
            "gaussian prior posterior inference",
            "variational bayes gaussian approximation",
        ];
        for t in texts_dba {
            let id = db.add_task(t);
            db.assign(dba, id).unwrap();
            db.record_feedback(dba, id, 1.0).unwrap();
        }
        for t in texts_stat {
            let id = db.add_task(t);
            db.assign(stat, id).unwrap();
            db.record_feedback(stat, id, 1.0).unwrap();
        }
        (db, vec![dba, stat])
    }

    fn bag(db: &mut CrowdDb, text: &str) -> BagOfWords {
        BagOfWords::from_tokens(&tokenize_filtered(text), db.vocab_mut())
    }

    #[test]
    fn routes_by_vocabulary_overlap() {
        let (mut db, workers) = db();
        let vsm = VsmSelector::fit(&db);
        let dbtask = bag(&mut db, "why does a btree split a page");
        let ranked = vsm.rank(&dbtask, &workers);
        assert_eq!(ranked[0].worker, workers[0], "btree task → DBA");
        assert!(ranked[0].score > ranked[1].score);

        let stattask = bag(&mut db, "posterior under a gaussian prior");
        let ranked = vsm.rank(&stattask, &workers);
        assert_eq!(ranked[0].worker, workers[1]);
    }

    #[test]
    fn unknown_worker_scores_zero() {
        let (mut db, mut workers) = db();
        let vsm = VsmSelector::fit(&db);
        workers.push(WorkerId(99));
        let task = bag(&mut db, "btree page");
        let ranked = vsm.rank(&task, &workers);
        let unknown = ranked.iter().find(|r| r.worker == WorkerId(99)).unwrap();
        assert_eq!(unknown.score, 0.0);
    }

    #[test]
    fn empty_task_ranks_all_zero() {
        let (db, workers) = db();
        let vsm = VsmSelector::fit(&db);
        let ranked = vsm.rank(&BagOfWords::new(), &workers);
        assert!(ranked.iter().all(|r| r.score == 0.0));
        assert_eq!(ranked.len(), 2);
    }

    #[test]
    fn profiles_cover_all_workers() {
        let (db, workers) = db();
        let vsm = VsmSelector::fit(&db);
        assert_eq!(vsm.num_workers(), 2);
        for w in workers {
            assert!(vsm.profile(w).is_some());
        }
    }
}
