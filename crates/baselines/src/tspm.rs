//! TSPM — Topic-Sensitive Probabilistic Model baseline
//! (Guo et al., CIKM'08; Zhou et al., CIKM'12).
//!
//! Like DRM, skills are **multinomial**, but topic estimation uses LDA
//! instead of PLSA (paper Section 7.2.1).

use crate::drm::worker_profiles;
use crate::lda::{Doc, Lda, LdaConfig};
use crate::selector::CrowdSelector;
use crowd_select::{shared_candidate_runs, top_k, BatchQuery, RankedWorker};
use crowd_store::{CrowdDb, TaskId, WorkerId};
use crowd_text::BagOfWords;
use std::collections::HashMap;

/// Variational iterations when projecting a query task.
const INFER_ITERS: usize = 15;

/// The fitted TSPM selector.
#[derive(Debug, Clone)]
pub struct TspmSelector {
    lda: Lda,
    profiles: HashMap<WorkerId, Vec<f64>>,
    /// Fitted topic proportions of the training tasks (for
    /// [`CrowdSelector::rank_trained`]).
    trained_tasks: HashMap<TaskId, Vec<f64>>,
}

impl TspmSelector {
    /// Fits LDA on the resolved tasks of `db` and derives multinomial worker
    /// profiles from the per-document posterior means.
    pub fn fit(db: &CrowdDb, num_topics: usize, seed: u64) -> Self {
        let resolved = db.resolved_tasks();
        let docs: Vec<Doc> = resolved
            .iter()
            .map(|rt| rt.bow.iter().map(|(t, c)| (t.index(), c)).collect())
            .collect();
        let cfg = LdaConfig {
            num_topics,
            seed,
            ..LdaConfig::default()
        };
        let lda = Lda::fit(&docs, db.vocab().len(), &cfg);

        let profiles = worker_profiles(
            num_topics,
            resolved
                .iter()
                .enumerate()
                .flat_map(|(d, rt)| rt.scores.iter().map(move |&(w, _)| (w, d))),
            |d| lda.doc_topics(d),
        );
        let trained_tasks = resolved
            .iter()
            .enumerate()
            .map(|(d, rt)| (rt.task, lda.doc_topics(d)))
            .collect();
        TspmSelector {
            lda,
            profiles,
            trained_tasks,
        }
    }

    /// The multinomial skill profile of a worker, if known.
    pub fn profile(&self, worker: WorkerId) -> Option<&[f64]> {
        self.profiles.get(&worker).map(Vec::as_slice)
    }

    /// The underlying LDA model.
    pub fn lda(&self) -> &Lda {
        &self.lda
    }
}

impl CrowdSelector for TspmSelector {
    fn name(&self) -> &'static str {
        "TSPM"
    }

    fn rank(&self, task: &BagOfWords, candidates: &[WorkerId]) -> Vec<RankedWorker> {
        let doc: Doc = task.iter().map(|(t, c)| (t.index(), c)).collect();
        let c = self.lda.infer(&doc, INFER_ITERS);
        self.rank_against(&c, candidates)
    }

    fn rank_trained(
        &self,
        task: TaskId,
        bow: &BagOfWords,
        candidates: &[WorkerId],
    ) -> Vec<RankedWorker> {
        match self.trained_tasks.get(&task) {
            Some(c) => self.rank_against(c, candidates),
            None => self.rank(bow, candidates),
        }
    }

    /// Batched selection over the dense profile table — same amortization as
    /// DRM's, with LDA inference (skipped for trained tasks) per query.
    fn select_batch(&self, queries: &[BatchQuery<'_>], k: usize) -> Vec<Vec<RankedWorker>> {
        let mut out = Vec::with_capacity(queries.len());
        for run in shared_candidate_runs(queries) {
            let resolved: Vec<(WorkerId, Option<&[f64]>)> = run[0]
                .candidates
                .iter()
                .map(|&w| (w, self.profiles.get(&w).map(Vec::as_slice)))
                .collect();
            for q in run {
                let inferred;
                let c: &[f64] = match q.task.and_then(|t| self.trained_tasks.get(&t)) {
                    Some(c) => c,
                    None => {
                        let doc: Doc = q.bow.iter().map(|(t, c)| (t.index(), c)).collect();
                        inferred = self.lda.infer(&doc, INFER_ITERS);
                        &inferred
                    }
                };
                let scored = resolved.iter().map(|&(w, p)| {
                    let score = p
                        .map(|p| p.iter().zip(c).map(|(a, b)| a * b).sum())
                        .unwrap_or(0.0);
                    (w, score)
                });
                out.push(top_k(scored, k));
            }
        }
        out
    }
}

impl TspmSelector {
    fn rank_against(&self, c: &[f64], candidates: &[WorkerId]) -> Vec<RankedWorker> {
        let scored = candidates.iter().map(|&w| {
            let score = self
                .profiles
                .get(&w)
                .map(|p| p.iter().zip(c).map(|(a, b)| a * b).sum())
                .unwrap_or(0.0);
            (w, score)
        });
        top_k(scored, candidates.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowd_text::tokenize_filtered;

    fn specialist_db() -> (CrowdDb, Vec<WorkerId>) {
        let mut db = CrowdDb::new();
        let dba = db.add_worker("dba");
        let stat = db.add_worker("stat");
        for i in 0..10 {
            let (text, who) = if i % 2 == 0 {
                ("btree page split index buffer disk", dba)
            } else {
                ("gaussian prior posterior likelihood variance", stat)
            };
            let t = db.add_task(text);
            db.assign(who, t).unwrap();
            db.record_feedback(who, t, 3.0).unwrap();
        }
        (db, vec![dba, stat])
    }

    fn bag(db: &mut CrowdDb, text: &str) -> BagOfWords {
        BagOfWords::from_tokens(&tokenize_filtered(text), db.vocab_mut())
    }

    #[test]
    fn profiles_are_multinomial() {
        let (db, workers) = specialist_db();
        let tspm = TspmSelector::fit(&db, 2, 1);
        for w in workers {
            let p = tspm.profile(w).unwrap();
            let s: f64 = p.iter().sum();
            assert!((s - 1.0).abs() < 1e-6, "profile sums to 1: {p:?}");
        }
    }

    #[test]
    fn routes_tasks_to_specialists() {
        let (mut db, workers) = specialist_db();
        let tspm = TspmSelector::fit(&db, 2, 1);
        let dbtask = bag(&mut db, "btree index page");
        let ranked = tspm.rank(&dbtask, &workers);
        assert_eq!(ranked[0].worker, workers[0]);
        let stattask = bag(&mut db, "posterior gaussian variance");
        let ranked = tspm.rank(&stattask, &workers);
        assert_eq!(ranked[0].worker, workers[1]);
    }

    #[test]
    fn scores_are_bounded_by_simplex_geometry() {
        // With both profile and category on the simplex, scores are in [0,1].
        let (mut db, workers) = specialist_db();
        let tspm = TspmSelector::fit(&db, 2, 1);
        let task = bag(&mut db, "btree gaussian");
        for r in tspm.rank(&task, &workers) {
            assert!((0.0..=1.0).contains(&r.score), "score {}", r.score);
        }
    }
}
