//! Latent Dirichlet Allocation with mean-field variational inference
//! (Blei, Ng & Jordan, JMLR'03).
//!
//! Substrate for the TSPM baseline. Per-document variational Dirichlet
//! parameters `γ` and word responsibilities `φ` are optimized against topic
//! distributions `β`; `β` is re-estimated each EM iteration.

use crowd_math::special::{digamma, normalize_in_place};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A document as `(term index, count)` pairs.
pub type Doc = Vec<(usize, u32)>;

/// Fitted LDA model.
#[derive(Debug, Clone)]
pub struct Lda {
    /// Per training document Dirichlet parameters `γ_d` (length `K`).
    gammas: Vec<Vec<f64>>,
    /// `p(v|z)`: `K` rows of vocabulary distributions.
    topic_words: Vec<Vec<f64>>,
    /// Symmetric Dirichlet prior `α`.
    alpha: f64,
    vocab_size: usize,
}

/// Training options for [`Lda::fit`].
#[derive(Debug, Clone)]
pub struct LdaConfig {
    /// Number of topics `K`.
    pub num_topics: usize,
    /// Outer EM iterations.
    pub iterations: usize,
    /// Inner variational iterations per document.
    pub doc_iterations: usize,
    /// Symmetric Dirichlet prior on topic mixtures.
    pub alpha: f64,
    /// Additive smoothing on `β` (acts as the `η` prior).
    pub eta: f64,
    /// RNG seed for initialization.
    pub seed: u64,
}

impl Default for LdaConfig {
    fn default() -> Self {
        LdaConfig {
            num_topics: 10,
            iterations: 30,
            doc_iterations: 10,
            alpha: 0.1,
            eta: 1e-2,
            seed: 23,
        }
    }
}

impl Lda {
    /// Fits LDA on `docs` over a vocabulary of `vocab_size` terms.
    pub fn fit(docs: &[Doc], vocab_size: usize, cfg: &LdaConfig) -> Self {
        let k = cfg.num_topics.max(1);
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut topic_words: Vec<Vec<f64>> = (0..k)
            .map(|_| {
                let mut row: Vec<f64> = (0..vocab_size.max(1))
                    .map(|_| rng.random_range(0.5..1.5))
                    .collect();
                normalize_in_place(&mut row);
                row
            })
            .collect();

        let mut gammas = vec![vec![cfg.alpha + 1.0; k]; docs.len()];
        for _ in 0..cfg.iterations {
            let mut beta_acc = vec![vec![cfg.eta; vocab_size]; k];
            for (d, doc) in docs.iter().enumerate() {
                let gamma = infer_document(doc, &topic_words, cfg, Some(&mut beta_acc));
                gammas[d] = gamma;
            }
            for row in &mut beta_acc {
                normalize_in_place(row);
            }
            topic_words = beta_acc;
        }

        Lda {
            gammas,
            topic_words,
            alpha: cfg.alpha,
            vocab_size,
        }
    }

    /// Number of topics `K`.
    pub fn num_topics(&self) -> usize {
        self.topic_words.len()
    }

    /// Vocabulary size the model was fitted on.
    pub fn vocab_size(&self) -> usize {
        self.vocab_size
    }

    /// Variational Dirichlet parameters of training document `d`.
    pub fn gamma(&self, d: usize) -> &[f64] {
        &self.gammas[d]
    }

    /// Posterior-mean topic proportions of training document `d`
    /// (`(γ_k) / Σ γ`, the standard point estimate).
    pub fn doc_topics(&self, d: usize) -> Vec<f64> {
        let mut theta = self.gammas[d].clone();
        normalize_in_place(&mut theta);
        theta
    }

    /// `p(v|z)` for topic `z`.
    pub fn topic_words(&self, z: usize) -> &[f64] {
        &self.topic_words[z]
    }

    /// Infers topic proportions for an unseen document with `β` frozen.
    pub fn infer(&self, doc: &[(usize, u32)], doc_iterations: usize) -> Vec<f64> {
        let cfg = LdaConfig {
            num_topics: self.num_topics(),
            doc_iterations,
            alpha: self.alpha,
            ..LdaConfig::default()
        };
        let mut gamma = infer_document(doc, &self.topic_words, &cfg, None);
        normalize_in_place(&mut gamma);
        gamma
    }
}

/// Runs the per-document variational loop; returns `γ` and optionally
/// accumulates `Σ n φ` into `beta_acc` (the M-step statistics).
fn infer_document(
    doc: &[(usize, u32)],
    topic_words: &[Vec<f64>],
    cfg: &LdaConfig,
    beta_acc: Option<&mut Vec<Vec<f64>>>,
) -> Vec<f64> {
    let k = topic_words.len();
    let vocab_size = topic_words.first().map_or(0, Vec::len);
    let total: f64 = doc
        .iter()
        .filter(|&&(v, _)| v < vocab_size)
        .map(|&(_, c)| c as f64)
        .sum();
    let mut gamma = vec![cfg.alpha + total / k as f64; k];
    let mut phi_row = vec![0.0; k];
    let mut phis: Vec<Vec<f64>> = Vec::new();
    for _ in 0..cfg.doc_iterations.max(1) {
        let exp_elog: Vec<f64> = gamma.iter().map(|&g| digamma(g).exp()).collect();
        let mut new_gamma = vec![cfg.alpha; k];
        phis.clear();
        for &(v, cnt) in doc {
            if v >= vocab_size {
                continue;
            }
            let mut sum = 0.0;
            for z in 0..k {
                phi_row[z] = exp_elog[z] * topic_words[z][v].max(1e-300);
                sum += phi_row[z];
            }
            if sum <= 0.0 {
                continue;
            }
            for z in 0..k {
                phi_row[z] /= sum;
                new_gamma[z] += cnt as f64 * phi_row[z];
            }
            phis.push(phi_row.clone());
        }
        gamma = new_gamma;
    }
    if let Some(acc) = beta_acc {
        let mut slot = 0;
        for &(v, cnt) in doc {
            if v >= vocab_size {
                continue;
            }
            let phi = &phis[slot];
            slot += 1;
            for z in 0..k {
                acc[z][v] += cnt as f64 * phi[z];
            }
        }
    }
    gamma
}

#[cfg(test)]
mod tests {
    use super::*;

    fn planted_docs() -> Vec<Doc> {
        let mut docs = Vec::new();
        for i in 0..24 {
            if i % 2 == 0 {
                docs.push(vec![(0, 4), (1, 3), (2, 3)]);
            } else {
                docs.push(vec![(3, 4), (4, 3), (5, 3)]);
            }
        }
        docs
    }

    fn cfg(k: usize) -> LdaConfig {
        LdaConfig {
            num_topics: k,
            iterations: 40,
            ..LdaConfig::default()
        }
    }

    #[test]
    fn topic_rows_are_distributions() {
        let docs = planted_docs();
        let lda = Lda::fit(&docs, 6, &cfg(2));
        for z in 0..2 {
            let s: f64 = lda.topic_words(z).iter().sum();
            assert!((s - 1.0).abs() < 1e-9);
        }
        for d in 0..docs.len() {
            let theta = lda.doc_topics(d);
            let s: f64 = theta.iter().sum();
            assert!((s - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn recovers_planted_structure() {
        let docs = planted_docs();
        let lda = Lda::fit(&docs, 6, &cfg(2));
        let argmax = |xs: &[f64]| {
            xs.iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .unwrap()
                .0
        };
        let t0 = lda.doc_topics(0);
        let t1 = lda.doc_topics(1);
        assert_ne!(argmax(&t0), argmax(&t1));
        assert!(t0[argmax(&t0)] > 0.8, "dominant mass: {t0:?}");
        // Topic aligned with doc 0 puts most mass on terms 0–2.
        let z0 = argmax(&t0);
        let mass_low: f64 = lda.topic_words(z0)[0..3].iter().sum();
        assert!(mass_low > 0.8, "low-term mass: {mass_low}");
    }

    #[test]
    fn infer_agrees_with_training_docs() {
        let docs = planted_docs();
        let lda = Lda::fit(&docs, 6, &cfg(2));
        let argmax = |xs: &[f64]| {
            xs.iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .unwrap()
                .0
        };
        let inferred = lda.infer(&[(0, 3), (2, 3)], 20);
        assert_eq!(argmax(&inferred), argmax(&lda.doc_topics(0)));
    }

    #[test]
    fn infer_empty_doc_is_uniformish() {
        let docs = planted_docs();
        let lda = Lda::fit(&docs, 6, &cfg(2));
        let inferred = lda.infer(&[], 5);
        // γ = α for each topic → normalized uniform.
        for x in &inferred {
            assert!((x - 0.5).abs() < 1e-9);
        }
    }

    #[test]
    fn out_of_vocab_terms_ignored() {
        let docs = planted_docs();
        let lda = Lda::fit(&docs, 6, &cfg(2));
        let a = lda.infer(&[(0, 2), (99, 7)], 10);
        let b = lda.infer(&[(0, 2)], 10);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-9);
        }
    }
}
