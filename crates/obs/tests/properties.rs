//! Property-based tests: a [`MetricsSnapshot`] must survive a JSON
//! round-trip exactly, whatever mix of metrics produced it.

use crowd_obs::{MetricsSnapshot, Registry};
use proptest::prelude::*;

/// One randomly generated recording against a registry.
#[derive(Debug, Clone)]
enum Record {
    Count(String, String, u64),
    Set(String, String, f64),
    Observe(String, String, f64),
}

fn arb_name() -> impl Strategy<Value = String> {
    "[a-z]{1,8}"
}

fn arb_records() -> impl Strategy<Value = Vec<Record>> {
    prop::collection::vec(
        prop_oneof![
            (arb_name(), arb_name(), 0u64..1_000_000).prop_map(|(c, n, v)| Record::Count(c, n, v)),
            (arb_name(), arb_name(), -1e9f64..1e9).prop_map(|(c, n, v)| Record::Set(c, n, v)),
            (arb_name(), arb_name(), 0.0f64..1e4).prop_map(|(c, n, v)| Record::Observe(c, n, v)),
        ],
        0..80,
    )
}

fn snapshot_of(records: &[Record]) -> MetricsSnapshot {
    let registry = Registry::new();
    for r in records {
        match r {
            Record::Count(c, n, v) => registry.counter(c, n).add(*v),
            Record::Set(c, n, v) => registry.gauge(c, n).set(*v),
            Record::Observe(c, n, v) => registry.histogram(c, n).observe(*v),
        }
    }
    registry.snapshot()
}

proptest! {
    /// serialize → deserialize is the identity on snapshots (bit-exact
    /// floats included — percentile edges land on irrational-looking
    /// bucket bounds).
    #[test]
    fn snapshot_json_roundtrip(records in arb_records()) {
        let snapshot = snapshot_of(&records);
        let json = snapshot.to_json();
        let back: MetricsSnapshot =
            serde_json::from_str(&json).expect("snapshot JSON parses");
        prop_assert_eq!(&back, &snapshot);
        // And a second serialization is byte-identical (determinism).
        prop_assert_eq!(back.to_json(), json);
    }

    /// The same recordings always produce the same snapshot, regardless of
    /// registration order having interleaved kinds.
    #[test]
    fn snapshot_is_deterministic(records in arb_records()) {
        let a = snapshot_of(&records);
        let b = snapshot_of(&records);
        prop_assert_eq!(a, b);
    }
}
