//! Seeded concurrency stress for the metrics registry.
//!
//! The registry promises lock-light recording: handles are `Arc`-shared
//! atomics, and the registry lock is only taken to create or snapshot.
//! These tests hammer one registry from many threads with a deterministic
//! workload and assert the totals are *exact* — atomics may interleave, but
//! no increment may be lost — and that snapshots taken mid-stampede are
//! internally consistent.

use crowd_obs::Registry;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

const THREADS: usize = 8;
const OPS_PER_THREAD: u64 = 20_000;

#[test]
fn concurrent_counters_lose_nothing() {
    let registry = Arc::new(Registry::new());
    // Half the threads share one hot counter; the rest get their own — both
    // the contended and uncontended paths must be exact.
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let registry = Arc::clone(&registry);
            std::thread::spawn(move || {
                let shared = registry.counter("stress", "shared");
                let own = registry.counter("stress", &format!("own_{t}"));
                for i in 0..OPS_PER_THREAD {
                    shared.inc();
                    own.add(i % 3);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("stress thread panicked");
    }

    let snap = registry.snapshot();
    let get = |name: &str| {
        snap.counter("stress", name)
            .unwrap_or_else(|| panic!("counter {name} missing"))
    };
    assert_eq!(get("shared"), THREADS as u64 * OPS_PER_THREAD);
    // Σ_{i<N} (i % 3) for N = 20_000: 6_666 full cycles of (0+1+2) + 0 + 1.
    let own_expected: u64 = (0..OPS_PER_THREAD).map(|i| i % 3).sum();
    for t in 0..THREADS {
        assert_eq!(get(&format!("own_{t}")), own_expected, "thread {t}");
    }
}

#[test]
fn concurrent_histograms_account_for_every_observation() {
    let registry = Arc::new(Registry::new());
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let registry = Arc::clone(&registry);
            std::thread::spawn(move || {
                let h = registry.histogram("stress", "latency");
                // Deterministic per-thread sequence spanning several buckets.
                for i in 0..OPS_PER_THREAD {
                    let v = ((t as u64 * OPS_PER_THREAD + i) % 997) as f64 * 1e-5;
                    h.observe(v);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("stress thread panicked");
    }

    let snap = registry.snapshot();
    let hist = snap
        .histogram("stress", "latency")
        .expect("histogram missing");
    let total = THREADS as u64 * OPS_PER_THREAD;
    assert_eq!(hist.count, total);
    // Per-bucket tallies plus the overflow bin must account for every
    // observation (each one lands somewhere exactly once).
    let bucketed: u64 = hist.buckets.iter().map(|b| b.count).sum();
    assert_eq!(bucketed + hist.overflow, total);
    // The workload is deterministic, so the sum is too (f64 addition of
    // identical multisets under atomic CAS accumulates the same total
    // regardless of interleaving only approximately — check tolerance).
    let expected: f64 = (0..THREADS as u64 * OPS_PER_THREAD)
        .map(|x| (x % 997) as f64 * 1e-5)
        .sum();
    assert!(
        (hist.sum - expected).abs() < 1e-6 * expected.max(1.0),
        "sum {} vs expected {expected}",
        hist.sum
    );
}

#[test]
fn snapshots_during_stampede_are_consistent() {
    let registry = Arc::new(Registry::new());
    let stop = Arc::new(AtomicBool::new(false));

    let writers: Vec<_> = (0..THREADS)
        .map(|t| {
            let registry = Arc::clone(&registry);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let c = registry.counter("stampede", "events");
                let g = registry.gauge("stampede", &format!("level_{t}"));
                let mut n = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    c.inc();
                    g.set(n as f64);
                    n += 1;
                }
                n
            })
        })
        .collect();

    // Reader thread: counters must be monotone across snapshots taken while
    // writers are running, and every snapshot must serialize cleanly.
    let mut last = 0u64;
    for _ in 0..50 {
        let snap = registry.snapshot();
        if let Some(c) = snap.counter("stampede", "events") {
            assert!(c >= last, "counter went backwards: {c} < {last}");
            last = c;
        }
        let json = snap.to_json();
        assert!(json.contains("stampede"));
    }
    stop.store(true, Ordering::Relaxed);

    let written: u64 = writers
        .into_iter()
        .map(|h| h.join().expect("writer panicked"))
        .sum();
    let final_snap = registry.snapshot();
    assert_eq!(
        final_snap.counter("stampede", "events").unwrap(),
        written,
        "final count must equal the number of increments performed"
    );
}
