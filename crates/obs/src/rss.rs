//! Process peak-RSS probe.
//!
//! Reads `VmHWM` (the high-water mark of the resident set) from
//! `/proc/self/status` — the same procfs surface the pool lifecycle stress
//! tests use for their `Threads:` probe. The trainer stamps this into a
//! `trainer/peak_rss_bytes` gauge once per fit epoch, and the `fit_smoke`
//! bench gates the million-worker tier on it (DESIGN §11).

/// Peak resident set size of the current process in bytes, or `None` where
/// `/proc/self/status` is unavailable (non-Linux hosts) or unparseable.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            // Format: "VmHWM:    123456 kB".
            let kib: u64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
            return Some(kib * 1024);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_reports_a_sane_peak_on_linux() {
        // A running test process has touched at least a few hundred KiB and
        // far less than a few TiB; anything outside that means we parsed the
        // wrong field.
        let Some(bytes) = peak_rss_bytes() else {
            return; // non-Linux host: probe is allowed to be absent
        };
        assert!(bytes > 100 * 1024, "peak RSS {bytes} implausibly small");
        assert!(
            bytes < 4 * 1024 * 1024 * 1024 * 1024u64,
            "peak RSS {bytes} implausibly large"
        );
    }

    #[test]
    fn peak_is_monotone_across_an_allocation() {
        let Some(before) = peak_rss_bytes() else {
            return;
        };
        // Touch 8 MiB so the high-water mark cannot be below it afterwards.
        let block = vec![1u8; 8 * 1024 * 1024];
        std::hint::black_box(&block);
        let after = peak_rss_bytes().unwrap();
        assert!(after >= before, "VmHWM went backwards: {before} → {after}");
    }
}
