#![warn(missing_docs)]

//! Observability for the crowd-selection system: a lock-light metrics
//! registry ([`Registry`]) and a structured tracing facade ([`Tracer`])
//! behind one cheap-to-clone handle ([`Obs`]).
//!
//! Design rules (see DESIGN.md §6c):
//!
//! - **Hot paths never block.** Counters, gauges and histogram updates are
//!   atomic operations on pre-resolved handles; the registry lock is taken
//!   only at registration and snapshot time.
//! - **Metrics are labeled by component** — `trainer`, `model`, `platform`,
//!   `wal`, `query` — with snake_case metric names; timings are histograms
//!   in seconds named `*_seconds`.
//! - **[`MetricsSnapshot`] serializes deterministically**: entries sorted
//!   by `(component, name)`, bit-exact float round-trips.
//! - **Tracing sinks are pluggable**: [`NoopSink`] by default,
//!   [`MemorySink`] in tests, [`JsonlSink`] for `results/` files.
//! - Instrumented crates accept an [`Obs`] but default to [`Obs::noop`],
//!   so observability is strictly opt-in and costs nothing when off.

pub mod metrics;
pub mod rss;
pub mod trace;

pub use metrics::{
    default_latency_buckets, Bucket, Counter, CounterSnapshot, Gauge, GaugeSnapshot, Histogram,
    HistogramSnapshot, MetricsSnapshot, Registry,
};
pub use rss::peak_rss_bytes;
pub use trace::{FieldValue, JsonlSink, MemorySink, NoopSink, Span, TraceEvent, TraceSink, Tracer};

use std::sync::Arc;

/// The handle instrumented components carry: a shared metrics registry plus
/// a tracer. Cloning is two `Arc` bumps.
#[derive(Debug, Clone, Default)]
pub struct Obs {
    /// Shared metrics registry.
    pub metrics: Arc<Registry>,
    /// Trace emitter.
    pub tracer: Tracer,
}

impl Obs {
    /// A fresh registry with a no-op tracer — the default for components
    /// that were not handed shared observability. Metrics recorded here are
    /// reachable through the owning component only.
    pub fn noop() -> Self {
        Obs::default()
    }

    /// Bundles an existing registry and tracer.
    pub fn new(metrics: Arc<Registry>, tracer: Tracer) -> Self {
        Obs { metrics, tracer }
    }

    /// Snapshot of the attached registry.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn obs_clones_share_the_registry() {
        let obs = Obs::noop();
        let clone = obs.clone();
        clone.metrics.counter("a", "b").add(3);
        assert_eq!(obs.snapshot().counter("a", "b"), Some(3));
    }
}
