//! Lock-light metrics: counters, gauges and fixed-bucket histograms,
//! registered per component and exportable as a deterministic
//! [`MetricsSnapshot`].
//!
//! The hot path is wait-free: every update is a handful of atomic
//! operations on a pre-registered metric handle. Locks are touched only at
//! registration time (get-or-create in the registry) and when taking a
//! snapshot.

use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A monotonic event counter.
///
/// Additions saturate at `u64::MAX` instead of wrapping, so a counter can
/// never appear to go backwards — the property every rate computation
/// downstream relies on.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`, saturating at `u64::MAX`.
    pub fn add(&self, n: u64) {
        let mut cur = self.value.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_add(n);
            match self
                .value
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A last-value-wins gauge holding an `f64`.
#[derive(Debug, Default)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    /// Creates a gauge at `0.0`.
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Sets the value. Non-finite values are recorded as-is but will not
    /// survive a JSON round-trip of the snapshot; instrumented code sticks
    /// to finite values.
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// A fixed-bucket histogram with cumulative-style percentile estimates.
///
/// Bucket bounds are upper edges in ascending order; one implicit overflow
/// bucket catches everything above the last bound. Observations update a
/// per-bucket atomic counter plus an atomic running sum, so concurrent
/// `observe` calls never block each other.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<f64>,
    counts: Vec<AtomicU64>,
    sum_bits: AtomicU64,
    total: AtomicU64,
}

/// Default latency buckets in seconds: log-spaced from 1 µs to 10 s.
pub fn default_latency_buckets() -> Vec<f64> {
    let mut bounds = Vec::new();
    let mut b = 1e-6;
    while b < 10.0 + 1e-9 {
        bounds.push(b);
        bounds.push(b * 2.5);
        bounds.push(b * 5.0);
        b *= 10.0;
    }
    bounds.truncate(bounds.len() - 2); // stop at exactly 10 s
    bounds
}

impl Histogram {
    /// Creates a histogram over ascending upper bucket bounds.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty or not strictly ascending — bucket
    /// layouts are compile-time decisions, not runtime data.
    pub fn new(bounds: &[f64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bucket");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending"
        );
        let counts = (0..bounds.len() + 1).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            bounds: bounds.to_vec(),
            counts,
            sum_bits: AtomicU64::new(0.0f64.to_bits()),
            total: AtomicU64::new(0),
        }
    }

    /// Records one observation.
    pub fn observe(&self, v: f64) {
        if v.is_nan() {
            return;
        }
        let idx = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.total.fetch_add(1, Ordering::Relaxed);
        // CAS loop folding the value into the f64 running sum.
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Records a duration in seconds.
    pub fn observe_duration(&self, d: Duration) {
        self.observe(d.as_secs_f64());
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// Sum of observed values.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    /// Upper-bound estimate of the `q`-quantile (`0 < q ≤ 1`): the upper
    /// edge of the first bucket whose cumulative count reaches `q·total`.
    /// Observations in the overflow bucket report the last finite bound.
    /// Returns `0.0` when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        let total = self.count();
        if total == 0 {
            return 0.0;
        }
        let target = (q.clamp(0.0, 1.0) * total as f64).ceil().max(1.0) as u64;
        let mut cum = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            cum += c.load(Ordering::Relaxed);
            if cum >= target {
                return self.bounds[i.min(self.bounds.len() - 1)];
            }
        }
        self.bounds[self.bounds.len() - 1]
    }

    /// Snapshot of this histogram's state.
    fn snap(&self, component: &str, name: &str) -> HistogramSnapshot {
        let buckets = self
            .bounds
            .iter()
            .enumerate()
            .map(|(i, &le)| Bucket {
                le,
                count: self.counts[i].load(Ordering::Relaxed),
            })
            .collect();
        HistogramSnapshot {
            component: component.to_owned(),
            name: name.to_owned(),
            count: self.count(),
            sum: self.sum(),
            overflow: self.counts[self.bounds.len()].load(Ordering::Relaxed),
            p50: self.quantile(0.50),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
            buckets,
        }
    }
}

/// Registry key: metrics are labeled by the component that owns them.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct Key {
    component: String,
    name: String,
}

impl Key {
    fn new(component: &str, name: &str) -> Self {
        Key {
            component: component.to_owned(),
            name: name.to_owned(),
        }
    }
}

/// Get-or-create registry of named metrics.
///
/// Handles are `Arc`s: a component resolves its metrics once (taking the
/// registry lock) and then updates them lock-free. `BTreeMap` keys make
/// [`Registry::snapshot`] deterministic without a sort step.
#[derive(Debug, Default)]
pub struct Registry {
    counters: RwLock<BTreeMap<Key, Arc<Counter>>>,
    gauges: RwLock<BTreeMap<Key, Arc<Gauge>>>,
    histograms: RwLock<BTreeMap<Key, Arc<Histogram>>>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// The counter `component/name`, created at zero if absent.
    pub fn counter(&self, component: &str, name: &str) -> Arc<Counter> {
        let key = Key::new(component, name);
        if let Some(c) = self.counters.read().get(&key) {
            return Arc::clone(c);
        }
        let mut map = self.counters.write();
        Arc::clone(map.entry(key).or_default())
    }

    /// The gauge `component/name`, created at `0.0` if absent.
    pub fn gauge(&self, component: &str, name: &str) -> Arc<Gauge> {
        let key = Key::new(component, name);
        if let Some(g) = self.gauges.read().get(&key) {
            return Arc::clone(g);
        }
        let mut map = self.gauges.write();
        Arc::clone(map.entry(key).or_default())
    }

    /// The histogram `component/name` with [`default_latency_buckets`].
    pub fn histogram(&self, component: &str, name: &str) -> Arc<Histogram> {
        self.histogram_with(component, name, &default_latency_buckets())
    }

    /// The histogram `component/name`, created over `bounds` if absent. An
    /// existing histogram keeps its original bounds.
    pub fn histogram_with(&self, component: &str, name: &str, bounds: &[f64]) -> Arc<Histogram> {
        let key = Key::new(component, name);
        if let Some(h) = self.histograms.read().get(&key) {
            return Arc::clone(h);
        }
        let mut map = self.histograms.write();
        Arc::clone(
            map.entry(key)
                .or_insert_with(|| Arc::new(Histogram::new(bounds))),
        )
    }

    /// A deterministic snapshot of every registered metric, sorted by
    /// `(component, name)`.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = self
            .counters
            .read()
            .iter()
            .map(|(k, c)| CounterSnapshot {
                component: k.component.clone(),
                name: k.name.clone(),
                value: c.get(),
            })
            .collect();
        let gauges = self
            .gauges
            .read()
            .iter()
            .map(|(k, g)| GaugeSnapshot {
                component: k.component.clone(),
                name: k.name.clone(),
                value: g.get(),
            })
            .collect();
        let histograms = self
            .histograms
            .read()
            .iter()
            .map(|(k, h)| h.snap(&k.component, &k.name))
            .collect();
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

/// One counter's state in a snapshot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CounterSnapshot {
    /// Owning component label.
    pub component: String,
    /// Metric name.
    pub name: String,
    /// Counter value.
    pub value: u64,
}

/// One gauge's state in a snapshot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaugeSnapshot {
    /// Owning component label.
    pub component: String,
    /// Metric name.
    pub name: String,
    /// Gauge value.
    pub value: f64,
}

/// One histogram bucket: observations `≤ le` (non-cumulative counts).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Bucket {
    /// Upper bucket edge.
    pub le: f64,
    /// Observations in this bucket.
    pub count: u64,
}

/// One histogram's state in a snapshot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Owning component label.
    pub component: String,
    /// Metric name.
    pub name: String,
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: f64,
    /// Observations above the last bucket edge.
    pub overflow: u64,
    /// Median estimate (upper bucket edge).
    pub p50: f64,
    /// 95th-percentile estimate.
    pub p95: f64,
    /// 99th-percentile estimate.
    pub p99: f64,
    /// Per-bucket counts.
    pub buckets: Vec<Bucket>,
}

/// The full state of a [`Registry`] at one instant.
///
/// Serialization is deterministic: entries are sorted by
/// `(component, name)` and all numeric fields round-trip bit-exactly
/// through `serde_json` (finite values only).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// All counters.
    pub counters: Vec<CounterSnapshot>,
    /// All gauges.
    pub gauges: Vec<GaugeSnapshot>,
    /// All histograms.
    pub histograms: Vec<HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// The value of counter `component/name`, if present.
    pub fn counter(&self, component: &str, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.component == component && c.name == name)
            .map(|c| c.value)
    }

    /// The value of gauge `component/name`, if present.
    pub fn gauge(&self, component: &str, name: &str) -> Option<f64> {
        self.gauges
            .iter()
            .find(|g| g.component == component && g.name == name)
            .map(|g| g.value)
    }

    /// The histogram `component/name`, if present.
    pub fn histogram(&self, component: &str, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|h| h.component == component && h.name == name)
    }

    /// Pretty-printed JSON (the form examples print and `results/` files
    /// store).
    ///
    /// # Panics
    ///
    /// Panics if the snapshot fails to serialize, which would mean a bug in
    /// the derived `Serialize` impls — snapshots contain only plain numbers
    /// and strings.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("snapshot serializes")
    }

    /// A compact human-readable rendering: one line per metric, histograms
    /// as `count/sum/p50/p95/p99` with buckets elided. What examples print;
    /// the full bucket detail stays in [`MetricsSnapshot::to_json`].
    pub fn summary(&self) -> String {
        let mut out = String::new();
        for c in &self.counters {
            out.push_str(&format!("{}/{} = {}\n", c.component, c.name, c.value));
        }
        for g in &self.gauges {
            out.push_str(&format!("{}/{} = {:.6}\n", g.component, g.name, g.value));
        }
        for h in &self.histograms {
            out.push_str(&format!(
                "{}/{}: count={} sum={:.6} p50={:.6} p95={:.6} p99={:.6}\n",
                h.component, h.name, h.count, h.sum, h.p50, h.p95, h.p99
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts_and_saturates() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        c.add(u64::MAX);
        assert_eq!(c.get(), u64::MAX, "saturates instead of wrapping");
        c.inc();
        assert_eq!(c.get(), u64::MAX, "stays saturated");
    }

    #[test]
    fn gauge_last_value_wins() {
        let g = Gauge::new();
        g.set(2.5);
        g.set(-1.25);
        assert_eq!(g.get(), -1.25);
    }

    #[test]
    fn histogram_buckets_and_percentiles() {
        let h = Histogram::new(&[1.0, 2.0, 4.0]);
        for v in [0.5, 0.7, 1.5, 1.6, 3.0, 100.0] {
            h.observe(v);
        }
        assert_eq!(h.count(), 6);
        assert!((h.sum() - 107.3).abs() < 1e-12);
        // Cumulative: ≤1 → 2, ≤2 → 4, ≤4 → 5, overflow → 6.
        assert_eq!(h.quantile(0.5), 2.0, "3rd of 6 lands in the ≤2 bucket");
        assert_eq!(h.quantile(0.75), 4.0);
        assert_eq!(h.quantile(1.0), 4.0, "overflow reports last finite edge");
    }

    #[test]
    fn histogram_boundary_values_are_inclusive() {
        let h = Histogram::new(&[1.0, 2.0]);
        h.observe(1.0);
        h.observe(2.0);
        let snap = h.snap("t", "t");
        assert_eq!(snap.buckets[0].count, 1);
        assert_eq!(snap.buckets[1].count, 1);
        assert_eq!(snap.overflow, 0);
    }

    #[test]
    fn empty_histogram_quantile_is_zero() {
        let h = Histogram::new(&[1.0]);
        assert_eq!(h.quantile(0.99), 0.0);
    }

    #[test]
    fn nan_observations_are_dropped() {
        let h = Histogram::new(&[1.0]);
        h.observe(f64::NAN);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn registry_returns_same_handle() {
        let r = Registry::new();
        let a = r.counter("core", "epochs");
        let b = r.counter("core", "epochs");
        a.inc();
        assert_eq!(b.get(), 1, "same underlying counter");
        assert_eq!(r.counter("core", "other").get(), 0, "distinct name");
    }

    #[test]
    fn snapshot_is_sorted_and_deterministic() {
        let r = Registry::new();
        r.counter("z", "late").inc();
        r.counter("a", "early").add(2);
        r.gauge("m", "g").set(1.5);
        let s1 = r.snapshot();
        let s2 = r.snapshot();
        assert_eq!(s1, s2);
        assert_eq!(s1.counters[0].component, "a");
        assert_eq!(s1.counters[1].component, "z");
        assert_eq!(s1.counter("a", "early"), Some(2));
        assert_eq!(s1.gauge("m", "g"), Some(1.5));
        assert_eq!(s1.to_json(), s2.to_json());
    }

    #[test]
    fn default_latency_buckets_are_ascending() {
        let b = default_latency_buckets();
        assert!(b.windows(2).all(|w| w[0] < w[1]));
        assert!(b[0] <= 1e-6 && *b.last().unwrap() >= 9.9);
    }
}
