//! Structured span/event tracing with pluggable sinks.
//!
//! Instrumented code talks to a [`Tracer`]; where the records go is the
//! sink's business: [`NoopSink`] (production default — near-zero cost),
//! [`MemorySink`] (tests inspect what was emitted), or [`JsonlSink`]
//! (append-only JSON lines for `results/` post-processing).

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::io::Write;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A typed field value attached to an event or span.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FieldValue {
    /// Signed integer.
    I64(i64),
    /// Unsigned integer.
    U64(u64),
    /// Float.
    F64(f64),
    /// Text.
    Str(String),
}

impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::I64(v)
    }
}
impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}
impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}
impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}
impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_owned())
    }
}
impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

/// One trace record: an instantaneous event, or a completed span with its
/// measured duration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Monotone per-tracer sequence number (total order of emission).
    pub seq: u64,
    /// Component that emitted the record.
    pub component: String,
    /// Event / span name.
    pub name: String,
    /// Span duration in microseconds; `None` for instantaneous events.
    pub duration_us: Option<u64>,
    /// Attached fields, in attachment order.
    pub fields: Vec<(String, FieldValue)>,
}

/// Where trace records go. Implementations must tolerate concurrent calls.
pub trait TraceSink: Send + Sync {
    /// Consumes one record.
    fn record(&self, event: TraceEvent);
    /// Flushes buffered records (no-op by default).
    fn flush(&self) {}
}

/// Discards everything.
#[derive(Debug, Default)]
pub struct NoopSink;

impl TraceSink for NoopSink {
    fn record(&self, _event: TraceEvent) {}
}

/// Buffers records in memory; the test-suite sink.
#[derive(Debug, Default)]
pub struct MemorySink {
    events: Mutex<Vec<TraceEvent>>,
}

impl MemorySink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        MemorySink::default()
    }

    /// Copies out everything recorded so far.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.events.lock().clone()
    }

    /// Drains and returns everything recorded so far.
    pub fn take(&self) -> Vec<TraceEvent> {
        std::mem::take(&mut *self.events.lock())
    }
}

impl TraceSink for MemorySink {
    fn record(&self, event: TraceEvent) {
        self.events.lock().push(event);
    }
}

/// Appends one JSON object per record to a file (e.g. under `results/`).
#[derive(Debug)]
pub struct JsonlSink {
    out: Mutex<std::io::BufWriter<std::fs::File>>,
}

impl JsonlSink {
    /// Opens (creates or truncates) `path` for writing, creating parent
    /// directories (e.g. `results/`) as needed.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let file = std::fs::File::create(path)?;
        Ok(JsonlSink {
            out: Mutex::new(std::io::BufWriter::new(file)),
        })
    }
}

impl TraceSink for JsonlSink {
    fn record(&self, event: TraceEvent) {
        let line = serde_json::to_string(&event).expect("trace event serializes");
        let mut out = self.out.lock();
        // A full disk mid-trace must not take the instrumented system down.
        let _ = writeln!(out, "{line}");
    }

    fn flush(&self) {
        let _ = self.out.lock().flush();
    }
}

/// Cheap-to-clone handle instrumented code emits through.
#[derive(Clone)]
pub struct Tracer {
    sink: Arc<dyn TraceSink>,
    seq: Arc<AtomicU64>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("seq", &self.seq.load(Ordering::Relaxed))
            .finish()
    }
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::noop()
    }
}

impl Tracer {
    /// A tracer that discards everything.
    pub fn noop() -> Self {
        Tracer::new(Arc::new(NoopSink))
    }

    /// A tracer writing into `sink`.
    pub fn new(sink: Arc<dyn TraceSink>) -> Self {
        Tracer {
            sink,
            seq: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Emits an instantaneous event.
    pub fn event(&self, component: &str, name: &str, fields: Vec<(String, FieldValue)>) {
        self.sink.record(TraceEvent {
            seq: self.seq.fetch_add(1, Ordering::Relaxed),
            component: component.to_owned(),
            name: name.to_owned(),
            duration_us: None,
            fields,
        });
    }

    /// Opens a span; the record (with measured duration) is emitted when
    /// the returned guard drops.
    pub fn span(&self, component: &str, name: &str) -> Span {
        Span {
            tracer: self.clone(),
            component: component.to_owned(),
            name: name.to_owned(),
            fields: Vec::new(),
            start: Instant::now(),
        }
    }

    /// Flushes the underlying sink.
    pub fn flush(&self) {
        self.sink.flush();
    }
}

/// An open span; emits one [`TraceEvent`] with its duration on drop.
#[derive(Debug)]
pub struct Span {
    tracer: Tracer,
    component: String,
    name: String,
    fields: Vec<(String, FieldValue)>,
    start: Instant,
}

impl Span {
    /// Attaches a field to the span's eventual record.
    pub fn field(&mut self, key: &str, value: impl Into<FieldValue>) {
        self.fields.push((key.to_owned(), value.into()));
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.tracer.sink.record(TraceEvent {
            seq: self.tracer.seq.fetch_add(1, Ordering::Relaxed),
            component: std::mem::take(&mut self.component),
            name: std::mem::take(&mut self.name),
            duration_us: Some(self.start.elapsed().as_micros().min(u64::MAX as u128) as u64),
            fields: std::mem::take(&mut self.fields),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_sink_captures_events_in_order() {
        let sink = Arc::new(MemorySink::new());
        let tracer = Tracer::new(Arc::clone(&sink) as Arc<dyn TraceSink>);
        tracer.event("core", "first", vec![("k".into(), 7u64.into())]);
        {
            let mut span = tracer.span("core", "work");
            span.field("items", 3usize);
        }
        let events = sink.take();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].name, "first");
        assert_eq!(events[0].duration_us, None);
        assert_eq!(events[0].fields[0].1, FieldValue::U64(7));
        assert_eq!(events[1].name, "work");
        assert!(events[1].duration_us.is_some());
        assert!(events[0].seq < events[1].seq);
        assert!(sink.events().is_empty(), "take drained the buffer");
    }

    #[test]
    fn jsonl_sink_writes_one_object_per_line() {
        let dir = std::env::temp_dir().join("crowd_obs_jsonl_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.jsonl");
        let sink = Arc::new(JsonlSink::create(&path).unwrap());
        let tracer = Tracer::new(Arc::clone(&sink) as Arc<dyn TraceSink>);
        tracer.event("wal", "append", vec![("bytes".into(), 128u64.into())]);
        tracer.event("wal", "fsync", vec![]);
        tracer.flush();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            let ev: TraceEvent = serde_json::from_str(line).unwrap();
            assert_eq!(ev.component, "wal");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn noop_tracer_is_silent_and_cheap() {
        let tracer = Tracer::noop();
        tracer.event("x", "y", vec![]);
        let _span = tracer.span("x", "z");
    }
}
