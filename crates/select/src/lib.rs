#![warn(missing_docs)]

//! The backend-agnostic crowd-selection layer.
//!
//! Every selection algorithm in the workspace — the paper's TDPM as well as
//! the VSM / DRM / TSPM baselines — answers the same question: *given a task
//! and a candidate pool, who should work on it?* This crate owns that
//! abstraction so the layers above (query language, platform, evaluation
//! harness) never have to know which concrete algorithm is serving:
//!
//! - [`RankedWorker`], [`top_k`] and [`rank_of`] — the Eq. 1 selection
//!   primitives shared by every backend.
//! - [`CrowdSelector`] — the uniform "fitted algorithm" interface: rank,
//!   select, and (optionally) absorb online feedback.
//! - [`SelectorBackend`] / [`SelectorRegistry`] — named factories so callers
//!   can resolve `USING <backend>` strings to fitted selectors.
//! - [`FittedSelector`] — the fit → snapshot → serve lifecycle wrapper that
//!   the crowd platform and the query engine cache.
//!
//! Dependency-wise this crate sits directly above the storage layer
//! (`crowd-store`, `crowd-text`); `crowd-core` and `crowd-baselines` plug
//! their algorithms in from above.

pub mod ranking;
pub mod registry;
pub mod selector;

pub use ranking::{rank_of, top_k, RankedWorker, TopK};
pub use registry::{
    DbMutation, FitDiagnostics, FitOptions, FitOutcome, FittedSelector, SelectError,
    SelectorBackend, SelectorRegistry,
};
pub use selector::{shared_candidate_runs, BatchQuery, CrowdSelector};
