//! Top-k worker selection (paper Eq. 1).

use crowd_store::WorkerId;

/// A worker together with its predicted performance on a task.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RankedWorker {
    /// The worker.
    pub worker: WorkerId,
    /// Predicted performance `w^i (c^j)ᵀ`.
    pub score: f64,
}

/// Selects the `k` highest-scoring workers, descending by score.
///
/// Eq. 1 asks for `argmax_{|R|=k} Σ_{i∈R} w^i (c^j)ᵀ`; because the objective
/// is a sum of independent per-worker terms, the optimal subset is exactly
/// the `k` largest scores. A bounded min-heap keeps this `O(n log k)`.
///
/// Ties break toward the smaller [`WorkerId`] for determinism; NaN scores
/// are skipped.
pub fn top_k(scored: impl IntoIterator<Item = (WorkerId, f64)>, k: usize) -> Vec<RankedWorker> {
    use std::cmp::Ordering;
    use std::collections::BinaryHeap;

    if k == 0 {
        return Vec::new();
    }

    // Min-heap via reversed ordering; entry = (score, worker).
    #[derive(PartialEq)]
    struct Entry(f64, WorkerId);
    impl Eq for Entry {}
    impl PartialOrd for Entry {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for Entry {
        fn cmp(&self, other: &Self) -> Ordering {
            // The heap pops its greatest element, so "greater" must mean
            // "worse": lower score, then (on ties) larger worker id.
            other
                .0
                .total_cmp(&self.0)
                .then_with(|| self.1.cmp(&other.1))
        }
    }

    let mut heap: BinaryHeap<Entry> = BinaryHeap::with_capacity(k + 1);
    for (worker, score) in scored {
        if score.is_nan() {
            continue;
        }
        heap.push(Entry(score, worker));
        if heap.len() > k {
            heap.pop(); // evicts the current worst
        }
    }
    let mut out: Vec<RankedWorker> = heap
        .into_iter()
        .map(|Entry(score, worker)| RankedWorker { worker, score })
        .collect();
    out.sort_by(|a, b| {
        b.score
            .total_cmp(&a.score)
            .then_with(|| a.worker.cmp(&b.worker))
    });
    out
}

/// Rank position (1-based) of `target` in a full descending ranking of
/// `scored`. Returns `None` if the target is absent.
///
/// Used by the evaluation metrics (ACCU needs "the rank of the right
/// worker", Section 7.2.2).
pub fn rank_of(
    scored: impl IntoIterator<Item = (WorkerId, f64)>,
    target: WorkerId,
) -> Option<usize> {
    let mut target_score: Option<f64> = None;
    let mut all: Vec<(WorkerId, f64)> = Vec::new();
    for (w, s) in scored {
        if w == target {
            target_score = Some(s);
        }
        all.push((w, s));
    }
    let ts = target_score?;
    // Rank = 1 + number of strictly better workers (+ tie-break by id).
    let better = all
        .iter()
        .filter(|&&(w, s)| {
            s.total_cmp(&ts) == std::cmp::Ordering::Greater
                || (s.total_cmp(&ts) == std::cmp::Ordering::Equal && w < target)
        })
        .count();
    Some(better + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scored(xs: &[(u32, f64)]) -> Vec<(WorkerId, f64)> {
        xs.iter().map(|&(w, s)| (WorkerId(w), s)).collect()
    }

    #[test]
    fn picks_k_largest_descending() {
        let out = top_k(scored(&[(0, 1.0), (1, 5.0), (2, 3.0), (3, 4.0)]), 2);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].worker, WorkerId(1));
        assert_eq!(out[1].worker, WorkerId(3));
    }

    #[test]
    fn k_larger_than_candidates_returns_all() {
        let out = top_k(scored(&[(0, 1.0), (1, 2.0)]), 10);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].worker, WorkerId(1));
    }

    #[test]
    fn k_zero_returns_empty() {
        assert!(top_k(scored(&[(0, 1.0)]), 0).is_empty());
    }

    #[test]
    fn ties_break_by_smaller_id() {
        let out = top_k(scored(&[(5, 1.0), (2, 1.0), (9, 1.0)]), 2);
        assert_eq!(out[0].worker, WorkerId(2));
        assert_eq!(out[1].worker, WorkerId(5));
    }

    #[test]
    fn nan_scores_are_skipped() {
        let out = top_k(scored(&[(0, f64::NAN), (1, 1.0)]), 2);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].worker, WorkerId(1));
    }

    #[test]
    fn matches_naive_sort_on_larger_input() {
        let xs: Vec<(WorkerId, f64)> = (0..100)
            .map(|i| (WorkerId(i), ((i * 37) % 41) as f64))
            .collect();
        let fast = top_k(xs.clone(), 7);
        let mut naive = xs;
        naive.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        for (f, n) in fast.iter().zip(naive.iter().take(7)) {
            assert_eq!(f.worker, n.0);
        }
    }

    #[test]
    fn rank_of_positions() {
        let xs = scored(&[(0, 3.0), (1, 5.0), (2, 1.0)]);
        assert_eq!(rank_of(xs.clone(), WorkerId(1)), Some(1));
        assert_eq!(rank_of(xs.clone(), WorkerId(0)), Some(2));
        assert_eq!(rank_of(xs.clone(), WorkerId(2)), Some(3));
        assert_eq!(rank_of(xs, WorkerId(9)), None);
    }

    #[test]
    fn rank_of_with_ties_is_consistent_with_top_k() {
        let xs = scored(&[(3, 2.0), (1, 2.0), (2, 2.0)]);
        // Order by id on ties: 1, 2, 3.
        assert_eq!(rank_of(xs.clone(), WorkerId(1)), Some(1));
        assert_eq!(rank_of(xs.clone(), WorkerId(2)), Some(2));
        assert_eq!(rank_of(xs.clone(), WorkerId(3)), Some(3));
        let top = top_k(xs, 3);
        assert_eq!(top[0].worker, WorkerId(1));
        assert_eq!(top[2].worker, WorkerId(3));
    }
}
