//! Top-k worker selection (paper Eq. 1).

use crowd_store::WorkerId;

/// A worker together with its predicted performance on a task.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RankedWorker {
    /// The worker.
    pub worker: WorkerId,
    /// Predicted performance `w^i (c^j)ᵀ`.
    pub score: f64,
}

// Min-heap via reversed ordering; entry = (score, worker).
#[derive(Debug, PartialEq)]
struct Entry(f64, WorkerId);
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // The heap pops its greatest element, so "greater" must mean
        // "worse": lower score, then (on ties) larger worker id.
        other
            .0
            .total_cmp(&self.0)
            .then_with(|| self.1.cmp(&other.1))
    }
}

/// Streaming accumulator behind [`top_k`]: [`push`](TopK::push) scored
/// workers in any order, then [`finish`](TopK::finish) for the ranked
/// result.
///
/// The selection ranks under a *total* order (score via `total_cmp`, ties
/// toward the smaller [`WorkerId`]), so the finished ranking is a pure
/// function of the pushed multiset — feed order never changes it. That is
/// what lets the cache-blocked batch driver feed each query's scores block
/// by block instead of materializing every score first.
#[derive(Debug)]
pub struct TopK {
    k: usize,
    heap: std::collections::BinaryHeap<Entry>,
}

impl TopK {
    /// Accumulator for the `k` highest-scoring workers.
    pub fn new(k: usize) -> Self {
        TopK {
            k,
            heap: std::collections::BinaryHeap::with_capacity(k + 1),
        }
    }

    /// Offer one scored worker. NaN scores are skipped.
    #[inline]
    pub fn push(&mut self, worker: WorkerId, score: f64) {
        if self.k == 0 || score.is_nan() {
            return;
        }
        let entry = Entry(score, worker);
        if self.heap.len() == self.k {
            // Full heap: on large pools almost every candidate ranks no
            // better than the current worst — reject it with one O(1) peek
            // instead of a push + pop (two heap sifts). An entry equal to
            // the worst leaves the same multiset either way, so the output
            // is unchanged.
            if self.heap.peek().is_some_and(|worst| entry >= *worst) {
                return;
            }
            self.heap.push(entry);
            self.heap.pop(); // evicts the current worst
        } else {
            self.heap.push(entry);
        }
    }

    /// The accumulated top-k, descending by score (ties toward the smaller
    /// [`WorkerId`]).
    pub fn finish(self) -> Vec<RankedWorker> {
        let mut out: Vec<RankedWorker> = self
            .heap
            .into_iter()
            .map(|Entry(score, worker)| RankedWorker { worker, score })
            .collect();
        out.sort_by(|a, b| {
            b.score
                .total_cmp(&a.score)
                .then_with(|| a.worker.cmp(&b.worker))
        });
        out
    }
}

/// Selects the `k` highest-scoring workers, descending by score.
///
/// Eq. 1 asks for `argmax_{|R|=k} Σ_{i∈R} w^i (c^j)ᵀ`; because the objective
/// is a sum of independent per-worker terms, the optimal subset is exactly
/// the `k` largest scores. A bounded min-heap ([`TopK`]) keeps this
/// `O(n log k)`.
///
/// Ties break toward the smaller [`WorkerId`] for determinism; NaN scores
/// are skipped.
pub fn top_k(scored: impl IntoIterator<Item = (WorkerId, f64)>, k: usize) -> Vec<RankedWorker> {
    let mut acc = TopK::new(k);
    for (worker, score) in scored {
        acc.push(worker, score);
    }
    acc.finish()
}

/// Rank position (1-based) of `target` in a full descending ranking of
/// `scored`. Returns `None` if the target is absent.
///
/// Rank = 1 + the number of strictly better workers, where "better" means a
/// greater score under `total_cmp`, or an equal score with a smaller
/// [`WorkerId`] (the same tie-break [`top_k`] uses).
///
/// Runs in a single pass over `scored`: the target id is known up front, so
/// every element seen *after* the target's score is classified immediately,
/// and elements seen *before* it only need their scores buffered — split by
/// the `w < target` tie-break bit — never the full `(WorkerId, f64)` pairs.
/// If the target is early in the stream (the common case for evaluation
/// candidate lists) almost nothing is buffered. Duplicate entries for the
/// target itself are ignored after the first.
///
/// Used by the evaluation metrics (ACCU needs "the rank of the right
/// worker", Section 7.2.2) once per eval question.
pub fn rank_of(
    scored: impl IntoIterator<Item = (WorkerId, f64)>,
    target: WorkerId,
) -> Option<usize> {
    use std::cmp::Ordering;

    let mut iter = scored.into_iter();
    // Scores seen before the target's own: ties count as better only for
    // smaller ids, so the two groups drain with different predicates.
    let mut pending_smaller_id: Vec<f64> = Vec::new();
    let mut pending_larger_id: Vec<f64> = Vec::new();
    let mut target_score: Option<f64> = None;
    for (w, s) in iter.by_ref() {
        if w == target {
            target_score = Some(s);
            break;
        }
        if w < target {
            pending_smaller_id.push(s);
        } else {
            pending_larger_id.push(s);
        }
    }
    let ts = target_score?;
    let mut better = pending_smaller_id
        .iter()
        .filter(|s| matches!(s.total_cmp(&ts), Ordering::Greater | Ordering::Equal))
        .count();
    better += pending_larger_id
        .iter()
        .filter(|s| s.total_cmp(&ts) == Ordering::Greater)
        .count();
    drop((pending_smaller_id, pending_larger_id));
    for (w, s) in iter {
        if w == target {
            continue;
        }
        match s.total_cmp(&ts) {
            Ordering::Greater => better += 1,
            Ordering::Equal if w < target => better += 1,
            _ => {}
        }
    }
    Some(better + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scored(xs: &[(u32, f64)]) -> Vec<(WorkerId, f64)> {
        xs.iter().map(|&(w, s)| (WorkerId(w), s)).collect()
    }

    #[test]
    fn picks_k_largest_descending() {
        let out = top_k(scored(&[(0, 1.0), (1, 5.0), (2, 3.0), (3, 4.0)]), 2);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].worker, WorkerId(1));
        assert_eq!(out[1].worker, WorkerId(3));
    }

    #[test]
    fn k_larger_than_candidates_returns_all() {
        let out = top_k(scored(&[(0, 1.0), (1, 2.0)]), 10);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].worker, WorkerId(1));
    }

    #[test]
    fn k_zero_returns_empty() {
        assert!(top_k(scored(&[(0, 1.0)]), 0).is_empty());
    }

    #[test]
    fn ties_break_by_smaller_id() {
        let out = top_k(scored(&[(5, 1.0), (2, 1.0), (9, 1.0)]), 2);
        assert_eq!(out[0].worker, WorkerId(2));
        assert_eq!(out[1].worker, WorkerId(5));
    }

    #[test]
    fn nan_scores_are_skipped() {
        let out = top_k(scored(&[(0, f64::NAN), (1, 1.0)]), 2);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].worker, WorkerId(1));
    }

    #[test]
    fn matches_naive_sort_on_larger_input() {
        let xs: Vec<(WorkerId, f64)> = (0..100)
            .map(|i| (WorkerId(i), ((i * 37) % 41) as f64))
            .collect();
        let fast = top_k(xs.clone(), 7);
        let mut naive = xs;
        naive.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        for (f, n) in fast.iter().zip(naive.iter().take(7)) {
            assert_eq!(f.worker, n.0);
        }
    }

    #[test]
    fn rank_of_positions() {
        let xs = scored(&[(0, 3.0), (1, 5.0), (2, 1.0)]);
        assert_eq!(rank_of(xs.clone(), WorkerId(1)), Some(1));
        assert_eq!(rank_of(xs.clone(), WorkerId(0)), Some(2));
        assert_eq!(rank_of(xs.clone(), WorkerId(2)), Some(3));
        assert_eq!(rank_of(xs, WorkerId(9)), None);
    }

    #[test]
    fn rank_of_is_order_independent() {
        // Same multiset, target early vs. late in the stream.
        let early = scored(&[(1, 5.0), (0, 3.0), (2, 1.0), (3, 5.0)]);
        let late = scored(&[(3, 5.0), (2, 1.0), (0, 3.0), (1, 5.0)]);
        assert_eq!(rank_of(early, WorkerId(1)), Some(1));
        assert_eq!(rank_of(late, WorkerId(1)), Some(1));
    }

    #[test]
    fn rank_of_nan_scores_rank_above_finite() {
        // total_cmp places NaN above every finite score, matching the old
        // collect-then-count implementation.
        let xs = scored(&[(0, f64::NAN), (1, 7.0), (2, 3.0)]);
        assert_eq!(rank_of(xs, WorkerId(1)), Some(2));
    }

    #[test]
    fn rank_of_with_ties_is_consistent_with_top_k() {
        let xs = scored(&[(3, 2.0), (1, 2.0), (2, 2.0)]);
        // Order by id on ties: 1, 2, 3.
        assert_eq!(rank_of(xs.clone(), WorkerId(1)), Some(1));
        assert_eq!(rank_of(xs.clone(), WorkerId(2)), Some(2));
        assert_eq!(rank_of(xs.clone(), WorkerId(3)), Some(3));
        let top = top_k(xs, 3);
        assert_eq!(top[0].worker, WorkerId(1));
        assert_eq!(top[2].worker, WorkerId(3));
    }
}
