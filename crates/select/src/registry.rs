//! Named selection backends and the fit → snapshot → serve lifecycle.
//!
//! A [`SelectorBackend`] is a *factory*: it knows how to fit its algorithm on
//! a [`CrowdDb`] and hand back a boxed [`CrowdSelector`]. The
//! [`SelectorRegistry`] maps backend names (the `USING <backend>` strings of
//! the query language) to factories, so the layers above dispatch by name
//! instead of matching on concrete types. A successful fit is wrapped in a
//! [`FittedSelector`] snapshot that records which backend produced it, an
//! epoch counter for cache invalidation, and the fit diagnostics.

use crate::ranking::RankedWorker;
use crate::selector::{BatchQuery, CrowdSelector};
use crowd_store::{CrowdDb, ShardedDb};
use std::fmt;

/// The kind of database mutation a fitted snapshot may be invalidated by.
///
/// The query engine (and any other cache of [`FittedSelector`]s) passes the
/// kind of write it just applied to [`SelectorBackend::invalidated_by`] so
/// backends whose fit does not depend on that class of data can keep serving
/// their snapshot. VSM profiles, for instance, are unions of assigned task
/// content — feedback and answers never change them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DbMutation {
    /// A worker was inserted.
    WorkerAdded,
    /// A task was inserted.
    TaskAdded,
    /// A worker was assigned to a task.
    Assigned,
    /// A feedback score was recorded.
    Feedback,
    /// An answer was recorded.
    Answer,
}

/// Knobs a caller may pass to [`SelectorBackend::fit`].
///
/// Every field is optional; a backend falls back to its own defaults for
/// anything left unset, so the same options value can be handed to backends
/// with very different needs (VSM ignores both fields).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FitOptions {
    /// Number of latent categories / topics, for backends that have them.
    pub categories: Option<usize>,
    /// Seed for any randomized initialization.
    pub seed: Option<u64>,
}

impl FitOptions {
    /// Options with both knobs set — the common query-engine case.
    pub fn with(categories: usize, seed: u64) -> Self {
        FitOptions {
            categories: Some(categories),
            seed: Some(seed),
        }
    }
}

/// What a fit run reports about itself.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FitDiagnostics {
    /// Optimization iterations performed (0 for closed-form fits).
    pub iterations: usize,
    /// Objective value per iteration (ELBO for TDPM, log-likelihood for the
    /// topic baselines, empty for closed-form fits).
    pub objective_trace: Vec<f64>,
    /// Whether the optimizer reported convergence (closed-form fits are
    /// trivially converged).
    pub converged: bool,
}

impl FitDiagnostics {
    /// Diagnostics for a closed-form, single-pass fit.
    pub fn closed_form() -> Self {
        FitDiagnostics {
            iterations: 0,
            objective_trace: Vec::new(),
            converged: true,
        }
    }

    /// The final objective value, if a trace was recorded.
    pub fn objective(&self) -> Option<f64> {
        self.objective_trace.last().copied()
    }
}

/// A fitted selector together with its diagnostics.
pub struct FitOutcome {
    /// The fitted, queryable selector.
    pub selector: Box<dyn CrowdSelector>,
    /// How the fit went.
    pub diagnostics: FitDiagnostics,
}

impl FitOutcome {
    /// Wraps a selector with the given diagnostics.
    pub fn new(selector: Box<dyn CrowdSelector>, diagnostics: FitDiagnostics) -> Self {
        FitOutcome {
            selector,
            diagnostics,
        }
    }
}

impl fmt::Debug for FitOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FitOutcome")
            .field("selector", &self.selector.name())
            .field("diagnostics", &self.diagnostics)
            .finish()
    }
}

/// Errors from backend resolution and fitting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SelectError {
    /// The requested backend name is not registered.
    UnknownBackend {
        /// The name the caller asked for.
        requested: String,
        /// The names the registry does know, in registration order.
        known: Vec<String>,
    },
    /// The backend cannot fit on the given database.
    NeedsData {
        /// Canonical backend name.
        backend: String,
        /// Human-readable requirement, e.g. "needs resolved tasks with
        /// feedback scores".
        reason: String,
    },
    /// A backend that must be fitted explicitly has not been yet.
    NotFitted {
        /// Canonical backend name.
        backend: String,
    },
    /// The fit itself failed.
    Fit {
        /// Canonical backend name.
        backend: String,
        /// The underlying error, stringified.
        message: String,
    },
    /// An incremental update on a fitted selector failed.
    Update {
        /// Canonical backend name.
        backend: String,
        /// The underlying error, stringified.
        message: String,
    },
}

impl fmt::Display for SelectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SelectError::UnknownBackend { requested, known } => write!(
                f,
                "unknown selection backend '{requested}' (expected one of {})",
                known.join(", ")
            ),
            SelectError::NeedsData { backend, reason } => write!(f, "{backend} {reason}"),
            SelectError::NotFitted { backend } => {
                write!(f, "{backend} selector not fitted yet")
            }
            SelectError::Fit { backend, message } => {
                write!(f, "{backend} fit failed: {message}")
            }
            SelectError::Update { backend, message } => {
                write!(f, "{backend} update failed: {message}")
            }
        }
    }
}

impl std::error::Error for SelectError {}

/// A named factory producing fitted [`CrowdSelector`]s.
pub trait SelectorBackend: Send + Sync {
    /// Canonical (lowercase) backend name used for registry lookup and the
    /// query language's `USING` clause.
    fn name(&self) -> &'static str;

    /// Whether the engine may fit this backend on demand at query time.
    ///
    /// Cheap baselines default to `true`; expensive models (TDPM's
    /// variational EM) return `false` so callers must fit explicitly
    /// (`TRAIN MODEL`) before selecting.
    fn lazy_fit(&self) -> bool {
        true
    }

    /// Whether a fitted snapshot of this backend goes stale under the given
    /// mutation.
    ///
    /// The conservative default is `true` for everything. Backends override
    /// it to declare independence from mutation classes their fit never
    /// reads (e.g. VSM's content-only profiles ignore feedback scores), so
    /// snapshot caches can skip needless refits.
    fn invalidated_by(&self, mutation: DbMutation) -> bool {
        let _ = mutation;
        true
    }

    /// Fits the algorithm on `db`.
    fn fit(&self, db: &CrowdDb, opts: &FitOptions) -> Result<FitOutcome, SelectError>;

    /// Fits the algorithm on a hash-partitioned store.
    ///
    /// Backends whose training pipeline understands sharding (TDPM's
    /// shard-parallel fit) override this; the default declines, so callers
    /// get an explicit error instead of a silently unsharded fit against a
    /// store they partitioned on purpose.
    fn fit_sharded(&self, db: &ShardedDb, opts: &FitOptions) -> Result<FitOutcome, SelectError> {
        let _ = (db, opts);
        Err(SelectError::Fit {
            backend: self.name().to_string(),
            message: "backend does not support sharded stores".to_string(),
        })
    }
}

/// A registry of [`SelectorBackend`]s, addressable by case-insensitive name.
#[derive(Default)]
pub struct SelectorRegistry {
    backends: Vec<Box<dyn SelectorBackend>>,
}

impl SelectorRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        SelectorRegistry::default()
    }

    /// Registers a backend, replacing any existing backend of the same name.
    pub fn register(&mut self, backend: Box<dyn SelectorBackend>) {
        let name = backend.name();
        if let Some(slot) = self
            .backends
            .iter_mut()
            .find(|b| b.name().eq_ignore_ascii_case(name))
        {
            *slot = backend;
        } else {
            self.backends.push(backend);
        }
    }

    /// Looks a backend up by name (case-insensitive).
    pub fn get(&self, name: &str) -> Result<&dyn SelectorBackend, SelectError> {
        self.backends
            .iter()
            .map(Box::as_ref)
            .find(|b| b.name().eq_ignore_ascii_case(name))
            .ok_or_else(|| SelectError::UnknownBackend {
                requested: name.to_string(),
                known: self.names().iter().map(|s| s.to_string()).collect(),
            })
    }

    /// Whether a backend of this name is registered.
    pub fn contains(&self, name: &str) -> bool {
        self.get(name).is_ok()
    }

    /// Registered backend names, in registration order.
    pub fn names(&self) -> Vec<&'static str> {
        self.backends.iter().map(|b| b.name()).collect()
    }

    /// Resolves `name` and fits it on `db`, wrapping the outcome in a
    /// [`FittedSelector`] snapshot (epoch 0 — see
    /// [`FittedSelector::with_epoch`]).
    pub fn fit(
        &self,
        name: &str,
        db: &CrowdDb,
        opts: &FitOptions,
    ) -> Result<FittedSelector, SelectError> {
        let backend = self.get(name)?;
        let outcome = backend.fit(db, opts)?;
        Ok(FittedSelector::new(backend.name(), outcome))
    }

    /// Resolves `name` and fits it on a sharded store. Errors if the
    /// backend does not override [`SelectorBackend::fit_sharded`].
    pub fn fit_sharded(
        &self,
        name: &str,
        db: &ShardedDb,
        opts: &FitOptions,
    ) -> Result<FittedSelector, SelectError> {
        let backend = self.get(name)?;
        let outcome = backend.fit_sharded(db, opts)?;
        Ok(FittedSelector::new(backend.name(), outcome))
    }
}

impl fmt::Debug for SelectorRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SelectorRegistry")
            .field("backends", &self.names())
            .finish()
    }
}

/// A serving snapshot: one fitted selector, stamped with the backend that
/// produced it and an epoch for cache bookkeeping.
pub struct FittedSelector {
    backend: &'static str,
    epoch: u64,
    diagnostics: FitDiagnostics,
    selector: Box<dyn CrowdSelector>,
}

impl FittedSelector {
    /// Wraps a fit outcome produced by `backend` (epoch 0).
    pub fn new(backend: &'static str, outcome: FitOutcome) -> Self {
        FittedSelector {
            backend,
            epoch: 0,
            diagnostics: outcome.diagnostics,
            selector: outcome.selector,
        }
    }

    /// Stamps the snapshot with a caller-managed epoch (e.g. "number of
    /// trainings so far") and returns it.
    pub fn with_epoch(mut self, epoch: u64) -> Self {
        self.epoch = epoch;
        self
    }

    /// The canonical name of the backend that produced this snapshot.
    pub fn backend(&self) -> &'static str {
        self.backend
    }

    /// The snapshot epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// How the fit went.
    pub fn diagnostics(&self) -> &FitDiagnostics {
        &self.diagnostics
    }

    /// The fitted selector.
    pub fn selector(&self) -> &dyn CrowdSelector {
        self.selector.as_ref()
    }

    /// Mutable access, for the incremental-update methods.
    pub fn selector_mut(&mut self) -> &mut dyn CrowdSelector {
        self.selector.as_mut()
    }

    /// Batched selection through the snapshot — one top-`k` list per query,
    /// in input order (see [`CrowdSelector::select_batch`]).
    pub fn select_batch(&self, queries: &[BatchQuery<'_>], k: usize) -> Vec<Vec<RankedWorker>> {
        self.selector.select_batch(queries, k)
    }

    /// Downcasts the boxed selector to a concrete type, if the backend
    /// opted into [`CrowdSelector::as_any`].
    pub fn downcast_ref<T: 'static>(&self) -> Option<&T> {
        self.selector.as_any()?.downcast_ref::<T>()
    }
}

impl fmt::Debug for FittedSelector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FittedSelector")
            .field("backend", &self.backend)
            .field("epoch", &self.epoch)
            .field("diagnostics", &self.diagnostics)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ranking::{top_k, RankedWorker};
    use crowd_store::WorkerId;
    use crowd_text::BagOfWords;

    /// Ranks by worker id — enough to see which backend served a query.
    struct ById(&'static str);
    impl CrowdSelector for ById {
        fn name(&self) -> &'static str {
            self.0
        }
        fn rank(&self, _task: &BagOfWords, candidates: &[WorkerId]) -> Vec<RankedWorker> {
            let scored = candidates.iter().map(|&w| (w, f64::from(w.0)));
            top_k(scored, candidates.len())
        }
    }

    struct ByIdBackend(&'static str);
    impl SelectorBackend for ByIdBackend {
        fn name(&self) -> &'static str {
            self.0
        }
        fn fit(&self, _db: &CrowdDb, _opts: &FitOptions) -> Result<FitOutcome, SelectError> {
            Ok(FitOutcome::new(
                Box::new(ById(self.0)),
                FitDiagnostics::closed_form(),
            ))
        }
    }

    fn registry() -> SelectorRegistry {
        let mut r = SelectorRegistry::new();
        r.register(Box::new(ByIdBackend("alpha")));
        r.register(Box::new(ByIdBackend("beta")));
        r
    }

    #[test]
    fn lookup_is_case_insensitive() {
        let r = registry();
        assert_eq!(r.get("ALPHA").unwrap().name(), "alpha");
        assert_eq!(r.get("Beta").unwrap().name(), "beta");
        assert!(r.contains("aLpHa"));
    }

    #[test]
    fn unknown_backend_lists_known_names() {
        let r = registry();
        let err = match r.get("gamma") {
            Ok(_) => panic!("gamma should be unknown"),
            Err(e) => e,
        };
        match &err {
            SelectError::UnknownBackend { requested, known } => {
                assert_eq!(requested, "gamma");
                assert_eq!(known, &["alpha".to_string(), "beta".to_string()]);
            }
            other => panic!("unexpected error: {other:?}"),
        }
        let msg = err.to_string();
        assert!(msg.contains("gamma"), "{msg}");
        assert!(msg.contains("alpha"), "{msg}");
        assert!(msg.contains("beta"), "{msg}");
    }

    #[test]
    fn register_replaces_same_name() {
        let mut r = registry();
        r.register(Box::new(ByIdBackend("alpha")));
        assert_eq!(r.names(), vec!["alpha", "beta"]);
    }

    #[test]
    fn fit_produces_a_serving_snapshot() {
        let r = registry();
        let db = CrowdDb::new();
        let fitted = r
            .fit("ALPHA", &db, &FitOptions::default())
            .unwrap()
            .with_epoch(3);
        assert_eq!(fitted.backend(), "alpha");
        assert_eq!(fitted.epoch(), 3);
        assert!(fitted.diagnostics().converged);
        let ranked = fitted
            .selector()
            .rank(&BagOfWords::new(), &[WorkerId(1), WorkerId(4)]);
        assert_eq!(ranked[0].worker, WorkerId(4));
    }

    #[test]
    fn fit_on_unknown_backend_errors() {
        let r = registry();
        let db = CrowdDb::new();
        assert!(matches!(
            r.fit("nope", &db, &FitOptions::default()),
            Err(SelectError::UnknownBackend { .. })
        ));
    }

    #[test]
    fn invalidated_by_defaults_to_true_for_every_mutation() {
        let backend = ByIdBackend("alpha");
        for m in [
            DbMutation::WorkerAdded,
            DbMutation::TaskAdded,
            DbMutation::Assigned,
            DbMutation::Feedback,
            DbMutation::Answer,
        ] {
            assert!(backend.invalidated_by(m));
        }
    }

    #[test]
    fn snapshot_select_batch_delegates() {
        let r = registry();
        let db = CrowdDb::new();
        let fitted = r.fit("alpha", &db, &FitOptions::default()).unwrap();
        let bow = BagOfWords::new();
        let pool = vec![WorkerId(2), WorkerId(8), WorkerId(5)];
        let queries = vec![BatchQuery {
            bow: &bow,
            candidates: &pool,
            task: None,
        }];
        let batch = fitted.select_batch(&queries, 2);
        assert_eq!(batch.len(), 1);
        assert_eq!(batch[0][0].worker, WorkerId(8));
        assert_eq!(batch[0][1].worker, WorkerId(5));
    }

    #[test]
    fn downcast_defaults_to_none() {
        let r = registry();
        let db = CrowdDb::new();
        let fitted = r.fit("alpha", &db, &FitOptions::default()).unwrap();
        assert!(fitted.downcast_ref::<ById>().is_none());
    }
}
