//! The uniform crowd-selection interface every backend implements.

use crate::ranking::RankedWorker;
use crowd_store::{TaskId, WorkerId};
use crowd_text::BagOfWords;

/// A fitted crowd-selection algorithm, queryable per task.
///
/// A selector is *fitted once* on the historical `(T, A, S)` data and then
/// queried per incoming task — mirroring the paper's architecture where the
/// crowd manager answers selection queries online (Section 2). The task is
/// presented as a bag of words over the same vocabulary the selector was
/// fitted on.
///
/// The online methods ([`add_worker`](Self::add_worker),
/// [`observe_feedback`](Self::observe_feedback)) default to no-ops: batch
/// baselines such as VSM simply serve a frozen snapshot, while incremental
/// models (the paper's Algorithm 3 for TDPM) override them to fold new
/// evidence in without refitting.
pub trait CrowdSelector: Send + Sync {
    /// Short display name ("VSM", "TSPM", "DRM", "TDPM").
    fn name(&self) -> &'static str;

    /// Ranks all `candidates` for `task`, best first.
    ///
    /// Candidates unknown to the selector score as 0 / worst.
    fn rank(&self, task: &BagOfWords, candidates: &[WorkerId]) -> Vec<RankedWorker>;

    /// Returns the top-`k` workers (default: truncate [`rank`](Self::rank)).
    fn select(&self, task: &BagOfWords, candidates: &[WorkerId], k: usize) -> Vec<RankedWorker> {
        let mut ranked = self.rank(task, candidates);
        ranked.truncate(k);
        ranked
    }

    /// Ranks candidates for a *resolved training task*, identified by its
    /// store id, using the latent representation learned during fitting.
    ///
    /// The paper evaluates on historical questions; for those, a model's
    /// fitted per-task posterior is available and — crucially for TDPM —
    /// feedback-informed. The default falls back to content-only
    /// [`rank`](Self::rank), which is also the behaviour for tasks the
    /// selector never trained on.
    fn rank_trained(
        &self,
        task: TaskId,
        bow: &BagOfWords,
        candidates: &[WorkerId],
    ) -> Vec<RankedWorker> {
        let _ = task;
        self.rank(bow, candidates)
    }

    /// Registers a worker that joined after fitting, so it can be ranked
    /// (at its prior) instead of being dropped. Default: no-op.
    fn add_worker(&mut self, worker: WorkerId) {
        let _ = worker;
    }

    /// Folds one observed feedback score into the fitted state
    /// (the paper's incremental maintenance, Algorithm 3). Default: no-op —
    /// batch baselines stay frozen until the next refit.
    fn observe_feedback(
        &mut self,
        worker: WorkerId,
        task: TaskId,
        bow: &BagOfWords,
        score: f64,
    ) -> Result<(), crate::registry::SelectError> {
        let _ = (worker, task, bow, score);
        Ok(())
    }

    /// The latent skill profile of a worker, if the backend exposes one
    /// (used by `SHOW WORKER`). Default: `None`.
    fn worker_profile(&self, worker: WorkerId) -> Option<Vec<f64>> {
        let _ = worker;
        None
    }

    /// Escape hatch for callers that need the concrete model behind the
    /// trait object (e.g. platform diagnostics). Backends that want to be
    /// downcastable return `Some(self)`; the default hides the type.
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ranking::top_k;

    /// A trivial selector for exercising the defaults.
    struct ById;
    impl CrowdSelector for ById {
        fn name(&self) -> &'static str {
            "BYID"
        }
        fn rank(&self, _task: &BagOfWords, candidates: &[WorkerId]) -> Vec<RankedWorker> {
            let scored = candidates.iter().map(|&w| (w, f64::from(w.0)));
            top_k(scored, candidates.len())
        }
    }

    #[test]
    fn default_select_truncates_rank() {
        let s = ById;
        let candidates = vec![WorkerId(1), WorkerId(5), WorkerId(3)];
        let top2 = s.select(&BagOfWords::new(), &candidates, 2);
        assert_eq!(top2.len(), 2);
        assert_eq!(top2[0].worker, WorkerId(5));
        assert_eq!(top2[1].worker, WorkerId(3));
    }

    #[test]
    fn trait_objects_work() {
        let s: Box<dyn CrowdSelector> = Box::new(ById);
        assert_eq!(s.name(), "BYID");
    }

    #[test]
    fn default_rank_trained_falls_back_to_rank() {
        let s = ById;
        let candidates = vec![WorkerId(2), WorkerId(7), WorkerId(4)];
        let bow = BagOfWords::new();
        let via_trained = s.rank_trained(TaskId(99), &bow, &candidates);
        let via_rank = s.rank(&bow, &candidates);
        assert_eq!(via_trained, via_rank);
        assert_eq!(via_trained[0].worker, WorkerId(7));
    }

    #[test]
    fn default_online_methods_are_noops() {
        let mut s = ById;
        let bow = BagOfWords::new();
        s.add_worker(WorkerId(1));
        s.observe_feedback(WorkerId(1), TaskId(0), &bow, 3.0)
            .unwrap();
        assert!(s.worker_profile(WorkerId(1)).is_none());
        assert!(s.as_any().is_none());
    }
}
