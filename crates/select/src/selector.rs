//! The uniform crowd-selection interface every backend implements.

use crate::ranking::RankedWorker;
use crowd_store::{TaskId, WorkerId};
use crowd_text::BagOfWords;

/// One query in a batched selection request ([`CrowdSelector::select_batch`]).
///
/// Borrows its content and candidate pool so a batch over a shared candidate
/// slice (the pipeline's online pool, a query-engine sweep) costs nothing to
/// assemble. Queries for resolved training tasks carry the store id so
/// backends can route through their fitted per-task posterior
/// ([`CrowdSelector::rank_trained`]).
#[derive(Debug, Clone, Copy)]
pub struct BatchQuery<'a> {
    /// Task content as a bag of words over the fitted vocabulary.
    pub bow: &'a BagOfWords,
    /// Candidate pool for this query (may be shared across the batch).
    pub candidates: &'a [WorkerId],
    /// Store id of a resolved training task, when known.
    pub task: Option<TaskId>,
}

/// Splits a batch into maximal runs of consecutive queries that share the
/// *exact same* candidate slice (pointer identity, not content equality).
///
/// Batched callers — the platform pipeline, the query engine, the eval
/// harness — naturally issue many queries against one borrowed pool;
/// backends use these runs to resolve candidates against their score tables
/// once per run instead of once per query. A batch of per-query pools
/// degrades gracefully to runs of length 1.
pub fn shared_candidate_runs<'q, 'a>(
    queries: &'q [BatchQuery<'a>],
) -> impl Iterator<Item = &'q [BatchQuery<'a>]> {
    struct Runs<'q, 'a>(&'q [BatchQuery<'a>]);
    impl<'q, 'a> Iterator for Runs<'q, 'a> {
        type Item = &'q [BatchQuery<'a>];
        fn next(&mut self) -> Option<Self::Item> {
            if self.0.is_empty() {
                return None;
            }
            let first = self.0[0].candidates;
            let mut len = 1;
            while len < self.0.len()
                && std::ptr::eq(
                    self.0[len].candidates as *const [WorkerId],
                    first as *const [WorkerId],
                )
            {
                len += 1;
            }
            let (run, rest) = self.0.split_at(len);
            self.0 = rest;
            Some(run)
        }
    }
    Runs(queries)
}

/// A fitted crowd-selection algorithm, queryable per task.
///
/// A selector is *fitted once* on the historical `(T, A, S)` data and then
/// queried per incoming task — mirroring the paper's architecture where the
/// crowd manager answers selection queries online (Section 2). The task is
/// presented as a bag of words over the same vocabulary the selector was
/// fitted on.
///
/// The online methods ([`add_worker`](Self::add_worker),
/// [`observe_feedback`](Self::observe_feedback)) default to no-ops: batch
/// baselines such as VSM simply serve a frozen snapshot, while incremental
/// models (the paper's Algorithm 3 for TDPM) override them to fold new
/// evidence in without refitting.
pub trait CrowdSelector: Send + Sync {
    /// Short display name ("VSM", "TSPM", "DRM", "TDPM").
    fn name(&self) -> &'static str;

    /// Ranks all `candidates` for `task`, best first.
    ///
    /// Candidates unknown to the selector score as 0 / worst.
    fn rank(&self, task: &BagOfWords, candidates: &[WorkerId]) -> Vec<RankedWorker>;

    /// Returns the top-`k` workers (default: truncate [`rank`](Self::rank)).
    fn select(&self, task: &BagOfWords, candidates: &[WorkerId], k: usize) -> Vec<RankedWorker> {
        let mut ranked = self.rank(task, candidates);
        ranked.truncate(k);
        ranked
    }

    /// Ranks candidates for a *resolved training task*, identified by its
    /// store id, using the latent representation learned during fitting.
    ///
    /// The paper evaluates on historical questions; for those, a model's
    /// fitted per-task posterior is available and — crucially for TDPM —
    /// feedback-informed. The default falls back to content-only
    /// [`rank`](Self::rank), which is also the behaviour for tasks the
    /// selector never trained on.
    fn rank_trained(
        &self,
        task: TaskId,
        bow: &BagOfWords,
        candidates: &[WorkerId],
    ) -> Vec<RankedWorker> {
        let _ = task;
        self.rank(bow, candidates)
    }

    /// Answers a batch of selection queries, one top-`k` list per query, in
    /// input order.
    ///
    /// The default loops [`rank_trained`](Self::rank_trained) /
    /// [`rank`](Self::rank) per query and truncates — exactly what a caller
    /// issuing the queries one at a time would get. Backends with a dense
    /// score table (TDPM's skill matrix, the VSM/DRM/TSPM profile tables)
    /// override this to amortize candidate resolution and the matrix walk
    /// across the whole batch; overrides must stay bit-identical to the
    /// serial loop.
    fn select_batch(&self, queries: &[BatchQuery<'_>], k: usize) -> Vec<Vec<RankedWorker>> {
        queries
            .iter()
            .map(|q| {
                let mut ranked = match q.task {
                    Some(task) => self.rank_trained(task, q.bow, q.candidates),
                    None => self.rank(q.bow, q.candidates),
                };
                ranked.truncate(k);
                ranked
            })
            .collect()
    }

    /// Registers a worker that joined after fitting, so it can be ranked
    /// (at its prior) instead of being dropped. Default: no-op.
    fn add_worker(&mut self, worker: WorkerId) {
        let _ = worker;
    }

    /// Folds one observed feedback score into the fitted state
    /// (the paper's incremental maintenance, Algorithm 3). Default: no-op —
    /// batch baselines stay frozen until the next refit.
    fn observe_feedback(
        &mut self,
        worker: WorkerId,
        task: TaskId,
        bow: &BagOfWords,
        score: f64,
    ) -> Result<(), crate::registry::SelectError> {
        let _ = (worker, task, bow, score);
        Ok(())
    }

    /// The latent skill profile of a worker, if the backend exposes one
    /// (used by `SHOW WORKER`). Default: `None`.
    fn worker_profile(&self, worker: WorkerId) -> Option<Vec<f64>> {
        let _ = worker;
        None
    }

    /// Escape hatch for callers that need the concrete model behind the
    /// trait object (e.g. platform diagnostics). Backends that want to be
    /// downcastable return `Some(self)`; the default hides the type.
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ranking::top_k;

    /// A trivial selector for exercising the defaults.
    struct ById;
    impl CrowdSelector for ById {
        fn name(&self) -> &'static str {
            "BYID"
        }
        fn rank(&self, _task: &BagOfWords, candidates: &[WorkerId]) -> Vec<RankedWorker> {
            let scored = candidates.iter().map(|&w| (w, f64::from(w.0)));
            top_k(scored, candidates.len())
        }
    }

    #[test]
    fn default_select_truncates_rank() {
        let s = ById;
        let candidates = vec![WorkerId(1), WorkerId(5), WorkerId(3)];
        let top2 = s.select(&BagOfWords::new(), &candidates, 2);
        assert_eq!(top2.len(), 2);
        assert_eq!(top2[0].worker, WorkerId(5));
        assert_eq!(top2[1].worker, WorkerId(3));
    }

    #[test]
    fn trait_objects_work() {
        let s: Box<dyn CrowdSelector> = Box::new(ById);
        assert_eq!(s.name(), "BYID");
    }

    #[test]
    fn default_rank_trained_falls_back_to_rank() {
        let s = ById;
        let candidates = vec![WorkerId(2), WorkerId(7), WorkerId(4)];
        let bow = BagOfWords::new();
        let via_trained = s.rank_trained(TaskId(99), &bow, &candidates);
        let via_rank = s.rank(&bow, &candidates);
        assert_eq!(via_trained, via_rank);
        assert_eq!(via_trained[0].worker, WorkerId(7));
    }

    #[test]
    fn default_select_batch_matches_serial_selects() {
        let s = ById;
        let bow = BagOfWords::new();
        let pool_a = vec![WorkerId(1), WorkerId(5), WorkerId(3)];
        let pool_b = vec![WorkerId(9), WorkerId(2)];
        let queries = vec![
            BatchQuery {
                bow: &bow,
                candidates: &pool_a,
                task: None,
            },
            BatchQuery {
                bow: &bow,
                candidates: &pool_b,
                task: Some(TaskId(7)),
            },
        ];
        let batch = s.select_batch(&queries, 2);
        assert_eq!(batch.len(), 2);
        assert_eq!(batch[0], s.select(&bow, &pool_a, 2));
        assert_eq!(batch[1], s.select(&bow, &pool_b, 2));
    }

    #[test]
    fn shared_candidate_runs_group_by_slice_identity() {
        let bow = BagOfWords::new();
        let pool_a = vec![WorkerId(1)];
        let pool_b = vec![WorkerId(1)]; // equal content, different allocation
        let queries = vec![
            BatchQuery {
                bow: &bow,
                candidates: &pool_a,
                task: None,
            },
            BatchQuery {
                bow: &bow,
                candidates: &pool_a,
                task: Some(TaskId(1)),
            },
            BatchQuery {
                bow: &bow,
                candidates: &pool_b,
                task: None,
            },
        ];
        let runs: Vec<usize> = shared_candidate_runs(&queries).map(|r| r.len()).collect();
        assert_eq!(runs, vec![2, 1], "identity groups, content does not");
        assert!(shared_candidate_runs(&[]).next().is_none());
    }

    #[test]
    fn default_online_methods_are_noops() {
        let mut s = ById;
        let bow = BagOfWords::new();
        s.add_worker(WorkerId(1));
        s.observe_feedback(WorkerId(1), TaskId(0), &bow, 3.0)
            .unwrap();
        assert!(s.worker_profile(WorkerId(1)).is_none());
        assert!(s.as_any().is_none());
    }
}
