//! Regenerates every table and figure of the paper's evaluation (Section 7).
//!
//! ```text
//! repro --exp all                  # everything (slow)
//! repro --exp table3               # one experiment
//! repro --exp table3 --scale 0.1   # smaller synthetic platform
//! repro --exp fig4 --json out.json # machine-readable output too
//! ```
//!
//! Experiment ids: table2, fig3, table3, table4, fig4 (Quora);
//! fig5, table5, table6, fig6 (Yahoo); fig7, table7, table8, fig8 (Stack
//! Overflow); all.

use crowd_eval::experiments::{ExperimentSettings, PlatformExperiments};
use crowd_eval::protocol::EvalMode;
use crowd_eval::tables;
use crowd_sim::PlatformKind;
use std::collections::BTreeMap;
use std::process::ExitCode;

#[derive(Debug, Clone)]
struct Args {
    exp: String,
    scale: f64,
    seed: u64,
    questions: usize,
    em_iters: usize,
    sweep: Vec<usize>,
    json: Option<String>,
    mode: EvalMode,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        exp: "all".into(),
        scale: 0.2,
        seed: 2015,
        questions: 300,
        em_iters: 12,
        sweep: vec![10, 20, 30, 40, 50],
        json: None,
        mode: EvalMode::Reconstruct,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("missing value for {name}"));
        match flag.as_str() {
            "--exp" => args.exp = value("--exp")?,
            "--scale" => {
                args.scale = value("--scale")?
                    .parse()
                    .map_err(|e| format!("--scale: {e}"))?
            }
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--questions" => {
                args.questions = value("--questions")?
                    .parse()
                    .map_err(|e| format!("--questions: {e}"))?
            }
            "--em-iters" => {
                args.em_iters = value("--em-iters")?
                    .parse()
                    .map_err(|e| format!("--em-iters: {e}"))?
            }
            "--sweep" => {
                args.sweep = value("--sweep")?
                    .split(',')
                    .map(|s| s.trim().parse().map_err(|e| format!("--sweep: {e}")))
                    .collect::<Result<_, _>>()?
            }
            "--json" => args.json = Some(value("--json")?),
            "--mode" => {
                args.mode = match value("--mode")?.as_str() {
                    "reconstruct" => EvalMode::Reconstruct,
                    "project" => EvalMode::Project,
                    other => {
                        return Err(format!("--mode: expected reconstruct|project, got {other}"))
                    }
                }
            }
            "--help" | "-h" => {
                println!(
                    "usage: repro [--exp ID] [--scale F] [--seed N] [--questions N] \
                     [--em-iters N] [--sweep 10,20,...] [--mode reconstruct|project] [--json FILE]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

fn settings(args: &Args) -> ExperimentSettings {
    ExperimentSettings {
        scale: args.scale,
        seed: args.seed,
        max_questions: args.questions,
        category_sweep: args.sweep.clone(),
        recall_categories: *args.sweep.first().unwrap_or(&10),
        em_iters: args.em_iters,
        mode: args.mode,
    }
}

fn platform_for(exp: &str) -> Option<PlatformKind> {
    match exp {
        "fig3" | "table3" | "table4" | "fig4" => Some(PlatformKind::Quora),
        "fig5" | "table5" | "table6" | "fig6" => Some(PlatformKind::Yahoo),
        "fig7" | "table7" | "table8" | "fig8" => Some(PlatformKind::StackOverflow),
        _ => None,
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    let all_exps = [
        "table2", "fig3", "table3", "table4", "fig4", "fig5", "table5", "table6", "fig6", "fig7",
        "table7", "table8", "fig8",
    ];
    let selected: Vec<&str> = if args.exp == "all" {
        all_exps.to_vec()
    } else if all_exps.contains(&args.exp.as_str()) {
        vec![args.exp.as_str()]
    } else {
        eprintln!("error: unknown experiment {:?}", args.exp);
        return ExitCode::FAILURE;
    };

    let cfg = settings(&args);
    let mut cache: BTreeMap<&'static str, PlatformExperiments> = BTreeMap::new();
    let mut json_out: BTreeMap<String, serde_json::Value> = BTreeMap::new();

    for exp in selected {
        println!("==> {exp}");
        if exp == "table2" {
            let mut rows = Vec::new();
            for kind in [
                PlatformKind::Quora,
                PlatformKind::Yahoo,
                PlatformKind::StackOverflow,
            ] {
                let e = cache
                    .entry(kind.name())
                    .or_insert_with(|| PlatformExperiments::new(kind, cfg.clone()));
                rows.push(e.dataset_stats());
            }
            print!("{}", tables::render_dataset_stats(&rows));
            json_out.insert("table2".into(), serde_json::to_value(&rows).unwrap());
            println!();
            continue;
        }

        let kind = platform_for(exp).expect("validated above");
        let e = cache
            .entry(kind.name())
            .or_insert_with(|| PlatformExperiments::new(kind, cfg.clone()));
        let name = kind.name();
        match exp {
            "fig3" | "fig5" | "fig7" => {
                let rows = e.group_stats();
                print!("{}", tables::render_group_stats(name, &rows));
                json_out.insert(exp.into(), serde_json::to_value(&rows).unwrap());
            }
            "table3" | "table5" | "table7" => {
                let cells = e.precision_table();
                print!("{}", tables::render_precision(name, &cells));
                json_out.insert(exp.into(), serde_json::to_value(&cells).unwrap());
            }
            "table4" | "table6" | "table8" => {
                let cells = e.recall_table();
                print!("{}", tables::render_recall(name, &cells));
                json_out.insert(exp.into(), serde_json::to_value(&cells).unwrap());
            }
            "fig4" | "fig6" | "fig8" => {
                let cells = e.runtime_figure();
                print!("{}", tables::render_runtime(name, &cells));
                json_out.insert(exp.into(), serde_json::to_value(&cells).unwrap());
            }
            _ => unreachable!(),
        }
        println!();
    }

    if let Some(path) = &args.json {
        match serde_json::to_string_pretty(&json_out)
            .map_err(|e| e.to_string())
            .and_then(|s| std::fs::write(path, s).map_err(|e| e.to_string()))
        {
            Ok(()) => println!("wrote {path}"),
            Err(e) => {
                eprintln!("error writing {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
