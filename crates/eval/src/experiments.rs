//! Experiment drivers: one per table / figure of the paper's Section 7.

use crate::protocol::{EvalMode, EvalProtocol};
use crowd_baselines::{CrowdSelector, DrmSelector, TdpmSelector, TspmSelector, VsmSelector};
use crowd_core::{TdpmConfig, TdpmTrainer};
use crowd_sim::{GeneratedPlatform, PlatformGenerator, PlatformKind, SimConfig};
use crowd_store::groups::group_stats_sweep;
use crowd_store::{GroupStats, WorkerGroup};
use serde::Serialize;

/// Algorithm order used in every table (matches the paper's rows).
pub const ALGORITHMS: [&str; 4] = ["VSM", "TSPM", "DRM", "TDPM"];

/// Knobs shared by all experiments.
#[derive(Debug, Clone)]
pub struct ExperimentSettings {
    /// Platform scale factor (1.0 ≈ 1/250 of the paper's crawls).
    pub scale: f64,
    /// Base RNG seed.
    pub seed: u64,
    /// Test questions per group (the paper samples 10k / 1k).
    pub max_questions: usize,
    /// Latent-category sweep for the precision tables (paper: 10–50).
    pub category_sweep: Vec<usize>,
    /// Latent categories for recall / runtime experiments.
    pub recall_categories: usize,
    /// EM iterations for the probabilistic models.
    pub em_iters: usize,
    /// Task representation for the precision / recall tables.
    ///
    /// [`EvalMode::Reconstruct`] matches the paper (test questions are
    /// resolved historical tasks, fitted posteriors allowed);
    /// [`EvalMode::Project`] is the stricter new-task condition. The
    /// running-time figures always use `Project` — they measure the online
    /// selection path.
    pub mode: EvalMode,
}

impl Default for ExperimentSettings {
    fn default() -> Self {
        ExperimentSettings {
            scale: 0.2,
            seed: 2015,
            max_questions: 300,
            category_sweep: vec![10, 20, 30, 40, 50],
            recall_categories: 10,
            em_iters: 12,
            mode: EvalMode::Reconstruct,
        }
    }
}

/// One precision cell: algorithm × group × category count.
#[derive(Debug, Clone, Serialize)]
pub struct PrecisionCell {
    /// Algorithm name.
    pub algo: String,
    /// Group participation threshold.
    pub group: usize,
    /// Latent category count `K`.
    pub k: usize,
    /// Mean ACCU.
    pub precision: f64,
    /// Questions evaluated.
    pub questions: usize,
}

/// One recall row: algorithm × group.
#[derive(Debug, Clone, Serialize)]
pub struct RecallCell {
    /// Algorithm name.
    pub algo: String,
    /// Group participation threshold.
    pub group: usize,
    /// Top-1 recall.
    pub top1: f64,
    /// Top-2 recall.
    pub top2: f64,
    /// Questions evaluated.
    pub questions: usize,
}

/// One running-time cell: algorithm × group (Figures 4 / 6 / 8).
#[derive(Debug, Clone, Serialize)]
pub struct RuntimeCell {
    /// Algorithm name.
    pub algo: String,
    /// Group participation threshold.
    pub group: usize,
    /// Mean Top-1 selection latency (ms).
    pub top1_ms: f64,
    /// Mean Top-2 selection latency (ms).
    pub top2_ms: f64,
}

/// Table-2-style dataset statistics.
#[derive(Debug, Clone, Serialize)]
pub struct DatasetStats {
    /// Platform name.
    pub platform: String,
    /// Total questions.
    pub questions: usize,
    /// Total users.
    pub users: usize,
    /// Total answers.
    pub answers: usize,
}

/// All experiments for one platform, sharing a generated database and
/// lazily fitted selectors.
#[derive(Debug)]
pub struct PlatformExperiments {
    platform: GeneratedPlatform,
    settings: ExperimentSettings,
}

impl PlatformExperiments {
    /// Generates the synthetic platform for `kind`.
    pub fn new(kind: PlatformKind, settings: ExperimentSettings) -> Self {
        let sim = match kind {
            PlatformKind::Quora => SimConfig::quora(settings.scale, settings.seed),
            PlatformKind::Yahoo => SimConfig::yahoo(settings.scale, settings.seed),
            PlatformKind::StackOverflow => SimConfig::stack_overflow(settings.scale, settings.seed),
        };
        let platform = PlatformGenerator::new(sim).generate();
        PlatformExperiments { platform, settings }
    }

    /// Wraps an already generated platform (tests, custom workloads).
    pub fn from_platform(platform: GeneratedPlatform, settings: ExperimentSettings) -> Self {
        PlatformExperiments { platform, settings }
    }

    /// The underlying platform.
    pub fn platform(&self) -> &GeneratedPlatform {
        &self.platform
    }

    /// Paper-faithful group thresholds for this platform: the precision
    /// tables use 3 groups, the recall tables and runtime figures 5, the
    /// coverage figures up to 6.
    pub fn group_thresholds(&self) -> (Vec<usize>, Vec<usize>, Vec<usize>) {
        match self.platform.config.kind {
            PlatformKind::Quora => (vec![1, 5, 9], vec![1, 2, 3, 4, 5], vec![1, 2, 3, 4, 5, 9]),
            PlatformKind::Yahoo => (
                vec![10, 15, 20],
                vec![10, 15, 20, 25, 30],
                vec![1, 10, 20, 30],
            ),
            PlatformKind::StackOverflow => (
                vec![1, 6, 12],
                vec![1, 3, 6, 9, 12],
                vec![1, 3, 6, 9, 12, 15],
            ),
        }
    }

    /// Table 2 row.
    pub fn dataset_stats(&self) -> DatasetStats {
        let (q, u, a) = self.platform.stats();
        DatasetStats {
            platform: self.platform.config.kind.name().to_owned(),
            questions: q,
            users: u,
            answers: a,
        }
    }

    /// Figures 3 / 5 / 7: task coverage and group size per threshold.
    pub fn group_stats(&self) -> Vec<GroupStats> {
        let (_, _, stats_groups) = self.group_thresholds();
        group_stats_sweep(&self.platform.db, &stats_groups)
    }

    /// Tables 3 / 5 / 7: precision per algorithm × group × K.
    pub fn precision_table(&self) -> Vec<PrecisionCell> {
        let (groups, _, _) = self.group_thresholds();
        let protocol = self.protocol();
        let db = &self.platform.db;
        let mut cells = Vec::new();

        // VSM is K-independent; evaluate once per group and replicate.
        let vsm = VsmSelector::fit(db);
        for &g in &groups {
            let group = WorkerGroup::extract(db, g);
            let questions = protocol.test_questions(db, &group);
            let acc = protocol.evaluate(&vsm, &questions);
            cells.push(PrecisionCell {
                algo: "VSM".into(),
                group: g,
                k: 0,
                precision: acc.precision(),
                questions: acc.num_questions(),
            });
        }

        for &k in &self.settings.category_sweep {
            let selectors = self.fit_probabilistic(k);
            for &g in &groups {
                let group = WorkerGroup::extract(db, g);
                let questions = protocol.test_questions(db, &group);
                for selector in &selectors {
                    let acc = protocol.evaluate(selector.as_ref(), &questions);
                    cells.push(PrecisionCell {
                        algo: selector.name().into(),
                        group: g,
                        k,
                        precision: acc.precision(),
                        questions: acc.num_questions(),
                    });
                }
            }
        }
        cells
    }

    /// Tables 4 / 6 / 8: Top-1 / Top-2 recall per algorithm × group.
    pub fn recall_table(&self) -> Vec<RecallCell> {
        let (_, groups, _) = self.group_thresholds();
        let protocol = self.protocol();
        let db = &self.platform.db;
        let mut selectors: Vec<Box<dyn CrowdSelector>> = vec![Box::new(VsmSelector::fit(db))];
        selectors.extend(self.fit_probabilistic(self.settings.recall_categories));

        let mut cells = Vec::new();
        for &g in &groups {
            let group = WorkerGroup::extract(db, g);
            let questions = protocol.test_questions(db, &group);
            for selector in &selectors {
                let acc = protocol.evaluate(selector.as_ref(), &questions);
                cells.push(RecallCell {
                    algo: selector.name().into(),
                    group: g,
                    top1: acc.top_k(1),
                    top2: acc.top_k(2),
                    questions: acc.num_questions(),
                });
            }
        }
        cells
    }

    /// Figures 4 / 6 / 8: mean selection latency per algorithm × group.
    ///
    /// Always measured on the online path (fresh projection), since that is
    /// what the paper's running-time figures time.
    pub fn runtime_figure(&self) -> Vec<RuntimeCell> {
        let (_, groups, _) = self.group_thresholds();
        let protocol =
            EvalProtocol::projecting(self.settings.max_questions, self.settings.seed ^ 0xEA11);
        let db = &self.platform.db;
        let mut selectors: Vec<Box<dyn CrowdSelector>> = vec![Box::new(VsmSelector::fit(db))];
        selectors.extend(self.fit_probabilistic(self.settings.recall_categories));

        let mut cells = Vec::new();
        for &g in &groups {
            let group = WorkerGroup::extract(db, g);
            let questions = protocol.test_questions(db, &group);
            for selector in &selectors {
                // Top-1 and Top-2 share the ranking cost; time them
                // separately anyway so the figure is an honest measurement.
                let acc1 = protocol.evaluate(selector.as_ref(), &questions);
                let acc2 = protocol.evaluate(selector.as_ref(), &questions);
                cells.push(RuntimeCell {
                    algo: selector.name().into(),
                    group: g,
                    top1_ms: acc1.mean_latency_ms(),
                    top2_ms: acc2.mean_latency_ms(),
                });
            }
        }
        cells
    }

    /// Fits TSPM, DRM and TDPM with `k` latent categories (paper row order).
    ///
    /// # Panics
    ///
    /// Panics if the generated platform has no resolved tasks; experiment
    /// generators always resolve training tasks, so this indicates a broken
    /// experiment config.
    pub fn fit_probabilistic(&self, k: usize) -> Vec<Box<dyn CrowdSelector>> {
        let db = &self.platform.db;
        let seed = self.settings.seed;
        let tspm = TspmSelector::fit(db, k, seed);
        let drm = DrmSelector::fit(db, k, seed);
        let cfg = TdpmConfig {
            num_categories: k,
            max_em_iters: self.settings.em_iters,
            seed,
            ..TdpmConfig::default()
        };
        let model = TdpmTrainer::new(cfg)
            .fit(db)
            .expect("generated platforms always have resolved tasks");
        vec![
            Box::new(tspm),
            Box::new(drm),
            Box::new(TdpmSelector::new(model)),
        ]
    }

    fn protocol(&self) -> EvalProtocol {
        let mut p = EvalProtocol::new(self.settings.max_questions, self.settings.seed ^ 0xEA11);
        p.mode = self.settings.mode;
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_settings() -> ExperimentSettings {
        ExperimentSettings {
            scale: 0.04,
            max_questions: 40,
            category_sweep: vec![4],
            recall_categories: 4,
            em_iters: 6,
            seed: 3,
            mode: EvalMode::Reconstruct,
        }
    }

    #[test]
    fn dataset_stats_match_platform() {
        let exp = PlatformExperiments::new(PlatformKind::Quora, tiny_settings());
        let stats = exp.dataset_stats();
        assert_eq!(stats.platform, "Quora");
        assert_eq!(stats.questions, exp.platform().config.num_tasks);
        assert!(stats.answers >= stats.questions);
    }

    #[test]
    fn group_stats_are_monotone() {
        let exp = PlatformExperiments::new(PlatformKind::Quora, tiny_settings());
        let stats = exp.group_stats();
        for w in stats.windows(2) {
            assert!(w[0].size >= w[1].size, "sizes shrink with threshold");
            assert!(
                w[0].coverage >= w[1].coverage - 1e-12,
                "coverage shrinks with threshold"
            );
        }
    }

    #[test]
    fn recall_table_has_all_cells_and_sane_values() {
        let exp = PlatformExperiments::new(PlatformKind::StackOverflow, tiny_settings());
        let cells = exp.recall_table();
        let (_, groups, _) = exp.group_thresholds();
        assert_eq!(cells.len(), groups.len() * 4);
        for c in &cells {
            assert!((0.0..=1.0).contains(&c.top1), "{c:?}");
            assert!(c.top2 >= c.top1 - 1e-12, "top2 ≥ top1: {c:?}");
        }
    }

    #[test]
    fn precision_table_covers_sweep() {
        let exp = PlatformExperiments::new(PlatformKind::Quora, tiny_settings());
        let cells = exp.precision_table();
        // 3 groups × (1 VSM + 3 algos × 1 K).
        assert_eq!(cells.len(), 3 + 3 * 3);
        for c in &cells {
            assert!((0.0..=1.0).contains(&c.precision), "{c:?}");
        }
        assert!(cells.iter().any(|c| c.algo == "TDPM"));
    }

    #[test]
    fn runtime_cells_are_positive() {
        let exp = PlatformExperiments::new(PlatformKind::Yahoo, tiny_settings());
        let cells = exp.runtime_figure();
        assert!(!cells.is_empty());
        for c in &cells {
            assert!(c.top1_ms >= 0.0 && c.top2_ms >= 0.0);
        }
    }
}
