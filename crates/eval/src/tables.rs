//! Paper-style text rendering of experiment results.

use crate::experiments::{DatasetStats, PrecisionCell, RecallCell, RuntimeCell, ALGORITHMS};
use crowd_store::GroupStats;
use std::fmt::Write as _;

/// Renders a Table-2-style dataset statistics block.
pub fn render_dataset_stats(rows: &[DatasetStats]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<10} {:>12} {:>12} {:>12}",
        "Dataset", "Questions", "Users", "Answers"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:<10} {:>12} {:>12} {:>12}",
            r.platform, r.questions, r.users, r.answers
        );
    }
    out
}

/// Renders a Figures-3/5/7-style group statistics block.
pub fn render_group_stats(platform: &str, rows: &[GroupStats]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{:<12} {:>10} {:>10}", "Group", "Size", "Coverage");
    for r in rows {
        let _ = writeln!(
            out,
            "{:<12} {:>10} {:>10.3}",
            format!("{platform}{}", r.threshold),
            r.size,
            r.coverage
        );
    }
    out
}

/// Renders a Tables-3/5/7-style precision table: algorithms × (group, K).
pub fn render_precision(platform: &str, cells: &[PrecisionCell]) -> String {
    let mut groups: Vec<usize> = cells.iter().map(|c| c.group).collect();
    groups.sort_unstable();
    groups.dedup();
    let mut ks: Vec<usize> = cells.iter().filter(|c| c.k > 0).map(|c| c.k).collect();
    ks.sort_unstable();
    ks.dedup();

    let mut out = String::new();
    let _ = write!(out, "{:<10}", "Algorithm");
    for &g in &groups {
        for &k in &ks {
            let _ = write!(out, " {:>10}", format!("{platform}{g}/K{k}"));
        }
    }
    let _ = writeln!(out);
    for algo in ALGORITHMS {
        let _ = write!(out, "{algo:<10}");
        for &g in &groups {
            for &k in &ks {
                let cell = cells.iter().find(|c| {
                    c.algo == algo && c.group == g && (c.k == k || (algo == "VSM" && c.k == 0))
                });
                match cell {
                    Some(c) => {
                        let _ = write!(out, " {:>10.3}", c.precision);
                    }
                    None => {
                        let _ = write!(out, " {:>10}", "-");
                    }
                }
            }
        }
        let _ = writeln!(out);
    }
    out
}

/// Renders a Tables-4/6/8-style recall table: algorithms × group × Top1/Top2.
pub fn render_recall(platform: &str, cells: &[RecallCell]) -> String {
    let mut groups: Vec<usize> = cells.iter().map(|c| c.group).collect();
    groups.sort_unstable();
    groups.dedup();

    let mut out = String::new();
    let _ = write!(out, "{:<10}", "Algorithm");
    for &g in &groups {
        let _ = write!(
            out,
            " {:>12} {:>12}",
            format!("{platform}{g}/Top1"),
            format!("{platform}{g}/Top2")
        );
    }
    let _ = writeln!(out);
    for algo in ALGORITHMS {
        let _ = write!(out, "{algo:<10}");
        for &g in &groups {
            match cells.iter().find(|c| c.algo == algo && c.group == g) {
                Some(c) => {
                    let _ = write!(out, " {:>12.3} {:>12.3}", c.top1, c.top2);
                }
                None => {
                    let _ = write!(out, " {:>12} {:>12}", "-", "-");
                }
            }
        }
        let _ = writeln!(out);
    }
    out
}

/// Renders a Figures-4/6/8-style running-time block (ms per selection).
pub fn render_runtime(platform: &str, cells: &[RuntimeCell]) -> String {
    let mut groups: Vec<usize> = cells.iter().map(|c| c.group).collect();
    groups.sort_unstable();
    groups.dedup();

    let mut out = String::new();
    let _ = write!(out, "{:<10}", "Algorithm");
    for &g in &groups {
        let _ = write!(
            out,
            " {:>14} {:>14}",
            format!("{platform}{g}/Top1ms"),
            format!("{platform}{g}/Top2ms")
        );
    }
    let _ = writeln!(out);
    for algo in ALGORITHMS {
        let _ = write!(out, "{algo:<10}");
        for &g in &groups {
            match cells.iter().find(|c| c.algo == algo && c.group == g) {
                Some(c) => {
                    let _ = write!(out, " {:>14.4} {:>14.4}", c.top1_ms, c.top2_ms);
                }
                None => {
                    let _ = write!(out, " {:>14} {:>14}", "-", "-");
                }
            }
        }
        let _ = writeln!(out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_stats_renders_all_rows() {
        let rows = vec![DatasetStats {
            platform: "Quora".into(),
            questions: 10,
            users: 5,
            answers: 20,
        }];
        let s = render_dataset_stats(&rows);
        assert!(s.contains("Quora"));
        assert!(s.contains("20"));
    }

    #[test]
    fn precision_table_places_vsm_and_tdpm() {
        let cells = vec![
            PrecisionCell {
                algo: "VSM".into(),
                group: 1,
                k: 0,
                precision: 0.5,
                questions: 10,
            },
            PrecisionCell {
                algo: "TDPM".into(),
                group: 1,
                k: 10,
                precision: 0.9,
                questions: 10,
            },
        ];
        let s = render_precision("Quora", &cells);
        assert!(s.contains("VSM"));
        assert!(s.contains("0.900"));
        assert!(s.contains("0.500"), "VSM value replicated across K: {s}");
    }

    #[test]
    fn recall_table_renders_groups() {
        let cells = vec![RecallCell {
            algo: "DRM".into(),
            group: 3,
            top1: 0.4,
            top2: 0.6,
            questions: 9,
        }];
        let s = render_recall("Stack", &cells);
        assert!(s.contains("Stack3/Top1"));
        assert!(s.contains("0.400"));
        assert!(s.contains("0.600"));
    }

    #[test]
    fn runtime_renders_milliseconds() {
        let cells = vec![RuntimeCell {
            algo: "TSPM".into(),
            group: 1,
            top1_ms: 1.25,
            top2_ms: 1.5,
        }];
        let s = render_runtime("Yahoo", &cells);
        assert!(s.contains("1.2500"));
    }

    #[test]
    fn group_stats_renders() {
        let rows = vec![GroupStats {
            threshold: 5,
            size: 100,
            coverage: 0.92,
        }];
        let s = render_group_stats("Quora", &rows);
        assert!(s.contains("Quora5"));
        assert!(s.contains("0.920"));
    }
}
