//! ACCU and TopK metrics (paper Section 7.2.2).

/// ACCU: the precision of a single ranking.
///
/// The paper defines `ACCU = (|R| − R_best − 1)/(|R| − 1)`; as printed this
/// gives `(|R|−2)/(|R|−1) < 1` for a *perfect* ranking (`R_best = 1`), so we
/// take it as the obvious typo for
///
/// ```text
/// ACCU = (|R| − R_best) / (|R| − 1)
/// ```
///
/// which is 1.0 when the right worker ranks first and 0.0 when they rank
/// last. For a single-candidate ranking (`|R| = 1`) the right worker is
/// trivially first: ACCU = 1.0.
pub fn accu(rank_of_right: usize, num_candidates: usize) -> f64 {
    debug_assert!(rank_of_right >= 1 && rank_of_right <= num_candidates);
    if num_candidates <= 1 {
        return 1.0;
    }
    (num_candidates - rank_of_right) as f64 / (num_candidates - 1) as f64
}

/// Mean reciprocal rank contribution of one ranking: `1 / R_best`.
///
/// A standard IR complement to the paper's ACCU/TopK — it rewards putting
/// the right worker *first* more sharply than ACCU does.
pub fn reciprocal_rank(rank_of_right: usize) -> f64 {
    debug_assert!(rank_of_right >= 1);
    1.0 / rank_of_right as f64
}

/// NDCG@k for a single-relevant-item ranking: `1 / log₂(1 + R_best)` when
/// `R_best ≤ k`, else 0 (the ideal DCG of one relevant item is 1).
pub fn ndcg_at_k(rank_of_right: usize, k: usize) -> f64 {
    debug_assert!(rank_of_right >= 1);
    if rank_of_right > k {
        return 0.0;
    }
    1.0 / ((1.0 + rank_of_right as f64).log2())
}

/// Accumulates per-question outcomes into precision / recall aggregates.
#[derive(Debug, Clone, Default)]
pub struct EvalAccumulator {
    accu_sum: f64,
    mrr_sum: f64,
    ndcg5_sum: f64,
    top1_hits: usize,
    top2_hits: usize,
    questions: usize,
    latency_nanos: u128,
}

impl EvalAccumulator {
    /// Fresh accumulator.
    pub fn new() -> Self {
        EvalAccumulator::default()
    }

    /// Records one evaluated question.
    pub fn record(&mut self, rank_of_right: usize, num_candidates: usize, latency_nanos: u128) {
        self.accu_sum += accu(rank_of_right, num_candidates);
        self.mrr_sum += reciprocal_rank(rank_of_right);
        self.ndcg5_sum += ndcg_at_k(rank_of_right, 5);
        if rank_of_right <= 1 {
            self.top1_hits += 1;
        }
        if rank_of_right <= 2 {
            self.top2_hits += 1;
        }
        self.questions += 1;
        self.latency_nanos += latency_nanos;
    }

    /// Number of evaluated questions.
    pub fn num_questions(&self) -> usize {
        self.questions
    }

    /// Mean ACCU (the paper's precision columns).
    pub fn precision(&self) -> f64 {
        if self.questions == 0 {
            return 0.0;
        }
        self.accu_sum / self.questions as f64
    }

    /// TopK recall: fraction of questions whose right worker ranked ≤ k.
    pub fn top_k(&self, k: usize) -> f64 {
        if self.questions == 0 {
            return 0.0;
        }
        let hits = match k {
            0 => 0,
            1 => self.top1_hits,
            _ => self.top2_hits,
        };
        hits as f64 / self.questions as f64
    }

    /// Mean reciprocal rank.
    pub fn mrr(&self) -> f64 {
        if self.questions == 0 {
            return 0.0;
        }
        self.mrr_sum / self.questions as f64
    }

    /// Mean NDCG@5.
    pub fn ndcg5(&self) -> f64 {
        if self.questions == 0 {
            return 0.0;
        }
        self.ndcg5_sum / self.questions as f64
    }

    /// Mean per-question selection latency in milliseconds.
    pub fn mean_latency_ms(&self) -> f64 {
        if self.questions == 0 {
            return 0.0;
        }
        self.latency_nanos as f64 / self.questions as f64 / 1e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accu_boundary_values() {
        assert_eq!(accu(1, 10), 1.0);
        assert_eq!(accu(10, 10), 0.0);
        assert_eq!(accu(1, 1), 1.0);
        assert!((accu(2, 3) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn accu_monotone_in_rank() {
        for r in 1..10 {
            assert!(accu(r, 10) > accu(r + 1, 10));
        }
    }

    #[test]
    fn accumulator_aggregates() {
        let mut acc = EvalAccumulator::new();
        acc.record(1, 5, 1_000_000); // accu 1.0, top1+top2
        acc.record(2, 5, 3_000_000); // accu 0.75, top2
        acc.record(5, 5, 2_000_000); // accu 0.0
        assert_eq!(acc.num_questions(), 3);
        assert!((acc.precision() - (1.0 + 0.75) / 3.0).abs() < 1e-12);
        assert!((acc.top_k(1) - 1.0 / 3.0).abs() < 1e-12);
        assert!((acc.top_k(2) - 2.0 / 3.0).abs() < 1e-12);
        assert!((acc.mean_latency_ms() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn empty_accumulator_is_zero() {
        let acc = EvalAccumulator::new();
        assert_eq!(acc.precision(), 0.0);
        assert_eq!(acc.top_k(1), 0.0);
        assert_eq!(acc.mean_latency_ms(), 0.0);
    }

    #[test]
    fn reciprocal_rank_values() {
        assert_eq!(reciprocal_rank(1), 1.0);
        assert_eq!(reciprocal_rank(4), 0.25);
    }

    #[test]
    fn ndcg_values() {
        assert_eq!(ndcg_at_k(1, 5), 1.0);
        assert!((ndcg_at_k(2, 5) - 1.0 / 3f64.log2()).abs() < 1e-12);
        assert_eq!(ndcg_at_k(6, 5), 0.0, "beyond the cutoff scores zero");
        // Monotone decreasing within the cutoff.
        for r in 1..5 {
            assert!(ndcg_at_k(r, 5) > ndcg_at_k(r + 1, 5));
        }
    }

    #[test]
    fn accumulator_tracks_mrr_and_ndcg() {
        let mut acc = EvalAccumulator::new();
        acc.record(1, 4, 0);
        acc.record(2, 4, 0);
        assert!((acc.mrr() - 0.75).abs() < 1e-12);
        let expected = (1.0 + 1.0 / 3f64.log2()) / 2.0;
        assert!((acc.ndcg5() - expected).abs() < 1e-12);
        assert_eq!(EvalAccumulator::new().mrr(), 0.0);
        assert_eq!(EvalAccumulator::new().ndcg5(), 0.0);
    }

    #[test]
    fn top_zero_is_zero() {
        let mut acc = EvalAccumulator::new();
        acc.record(1, 2, 0);
        assert_eq!(acc.top_k(0), 0.0);
    }
}
