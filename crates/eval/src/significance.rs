//! Paired bootstrap significance testing for selector comparisons.
//!
//! The paper reports point estimates; a credible comparison of two
//! selectors on the same test questions should also say whether the gap
//! survives resampling. [`paired_bootstrap`] resamples questions with
//! replacement and reports how often algorithm A beats algorithm B.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Result of a paired bootstrap comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct BootstrapResult {
    /// Mean of A's per-question scores.
    pub mean_a: f64,
    /// Mean of B's per-question scores.
    pub mean_b: f64,
    /// Fraction of bootstrap resamples where A's mean strictly exceeded
    /// B's. Values near 1.0 (or 0.0) indicate a stable direction; ~0.5
    /// means the gap is noise.
    pub prob_a_beats_b: f64,
    /// 95% bootstrap interval for the mean difference `A − B`.
    pub diff_ci: (f64, f64),
}

/// Runs a paired bootstrap over per-question scores of two algorithms.
///
/// `scores_a[i]` and `scores_b[i]` must refer to the *same* question `i`
/// (e.g. per-question ACCU values from
/// [`crate::protocol::EvalProtocol::evaluate`]-style runs). Resampling is
/// paired: each bootstrap replicate draws question indexes and evaluates
/// both algorithms on the identical sample.
///
/// # Panics
///
/// Panics if the slices differ in length or are empty, or `resamples == 0` —
/// all programmer errors.
pub fn paired_bootstrap(
    scores_a: &[f64],
    scores_b: &[f64],
    resamples: usize,
    seed: u64,
) -> BootstrapResult {
    assert_eq!(scores_a.len(), scores_b.len(), "paired scores required");
    assert!(!scores_a.is_empty(), "need at least one question");
    assert!(resamples > 0, "need at least one resample");
    let n = scores_a.len();
    let mut rng = StdRng::seed_from_u64(seed);

    let mut diffs = Vec::with_capacity(resamples);
    let mut wins = 0usize;
    for _ in 0..resamples {
        let mut sum_a = 0.0;
        let mut sum_b = 0.0;
        for _ in 0..n {
            let i = rng.random_range(0..n);
            sum_a += scores_a[i];
            sum_b += scores_b[i];
        }
        if sum_a > sum_b {
            wins += 1;
        }
        diffs.push((sum_a - sum_b) / n as f64);
    }
    diffs.sort_by(f64::total_cmp);
    let lo = diffs[(resamples as f64 * 0.025) as usize];
    let hi = diffs[((resamples as f64 * 0.975) as usize).min(resamples - 1)];

    BootstrapResult {
        mean_a: scores_a.iter().sum::<f64>() / n as f64,
        mean_b: scores_b.iter().sum::<f64>() / n as f64,
        prob_a_beats_b: wins as f64 / resamples as f64,
        diff_ci: (lo, hi),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clear_winner_is_detected() {
        let a: Vec<f64> = (0..200).map(|i| 0.8 + 0.001 * (i % 5) as f64).collect();
        let b: Vec<f64> = (0..200).map(|i| 0.5 + 0.001 * (i % 7) as f64).collect();
        let r = paired_bootstrap(&a, &b, 500, 1);
        assert!(r.prob_a_beats_b > 0.99, "{r:?}");
        assert!(r.diff_ci.0 > 0.0, "CI excludes zero: {r:?}");
        assert!((r.mean_a - 0.802).abs() < 0.01);
    }

    #[test]
    fn identical_scores_are_a_tossup() {
        let a: Vec<f64> = (0..100).map(|i| (i % 10) as f64 / 10.0).collect();
        let r = paired_bootstrap(&a, &a, 400, 2);
        assert_eq!(r.prob_a_beats_b, 0.0, "no strict wins on identical data");
        assert!(r.diff_ci.0 <= 0.0 && r.diff_ci.1 >= 0.0);
    }

    #[test]
    fn noisy_tiny_gap_is_uncertain() {
        // Same distribution with a tiny offset far below its spread.
        let a: Vec<f64> = (0..50)
            .map(|i| ((i * 37) % 50) as f64 / 50.0 + 0.001)
            .collect();
        let b: Vec<f64> = (0..50).map(|i| ((i * 17 + 3) % 50) as f64 / 50.0).collect();
        let r = paired_bootstrap(&a, &b, 500, 3);
        assert!(
            r.prob_a_beats_b > 0.05 && r.prob_a_beats_b < 0.95,
            "uncertain outcome expected: {r:?}"
        );
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = vec![0.9, 0.7, 0.8];
        let b = vec![0.4, 0.6, 0.5];
        let x = paired_bootstrap(&a, &b, 100, 9);
        let y = paired_bootstrap(&a, &b, 100, 9);
        assert_eq!(x, y);
    }

    #[test]
    #[should_panic(expected = "paired scores required")]
    fn mismatched_lengths_panic() {
        paired_bootstrap(&[1.0], &[1.0, 2.0], 10, 0);
    }
}
