//! The evaluation protocol shared by every experiment (paper Section 7.3).
//!
//! For each group `Platform_n`:
//!
//! 1. pick test questions whose *right worker* (best answerer / highest
//!    feedback) belongs to the group,
//! 2. for each question, the candidate set is its answerers restricted to
//!    the group (the respondents a selector must rank),
//! 3. rank with the algorithm under test and record the right worker's rank.

use crate::metrics::EvalAccumulator;
use crowd_baselines::{BatchQuery, CrowdSelector};
use crowd_store::{CrowdDb, TaskId, WorkerGroup, WorkerId};
use crowd_text::BagOfWords;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::time::Instant;

/// A test question: the task, its in-group candidates and the right worker.
#[derive(Debug, Clone)]
pub struct TestQuestion {
    /// The task id.
    pub task: TaskId,
    /// Bag of words of the task.
    pub bow: BagOfWords,
    /// In-group answerers (always contains `right`, length ≥ 2).
    pub candidates: Vec<WorkerId>,
    /// The right worker (highest recorded feedback among candidates).
    pub right: WorkerId,
}

/// How the selector sees a test question.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EvalMode {
    /// Rank via the selector's *fitted* per-task representation
    /// ([`CrowdSelector::rank_trained`]). This matches the paper's setup:
    /// the test questions are resolved historical tasks, and for TDPM the
    /// fitted category posterior is feedback-informed.
    #[default]
    Reconstruct,
    /// Rank via a fresh word-only projection ([`CrowdSelector::rank`]) —
    /// the stricter "brand-new task" condition of Algorithm 3.
    Project,
}

/// Builds test sets and runs selectors against them.
#[derive(Debug, Clone)]
pub struct EvalProtocol {
    /// Maximum test questions per group.
    pub max_questions: usize,
    /// Sampling seed.
    pub seed: u64,
    /// Which task representation selectors may use.
    pub mode: EvalMode,
}

impl EvalProtocol {
    /// Standard (paper-faithful, [`EvalMode::Reconstruct`]) protocol with
    /// `max_questions` per group.
    pub fn new(max_questions: usize, seed: u64) -> Self {
        EvalProtocol {
            max_questions,
            seed,
            mode: EvalMode::Reconstruct,
        }
    }

    /// Same protocol in the stricter word-only projection mode.
    pub fn projecting(max_questions: usize, seed: u64) -> Self {
        EvalProtocol {
            max_questions,
            seed,
            mode: EvalMode::Project,
        }
    }

    /// Builds the test set for `group` from the resolved tasks of `db`.
    ///
    /// A task qualifies when at least two of its scored answerers are in the
    /// group and its overall best answerer is one of them (the paper's
    /// "right worker must be in the group" rule).
    pub fn test_questions(&self, db: &CrowdDb, group: &WorkerGroup) -> Vec<TestQuestion> {
        let mut questions: Vec<TestQuestion> = Vec::new();
        for rt in db.resolved_tasks() {
            // Right worker over *all* answerers (ties → smaller id).
            let Some(&(right, _)) = rt
                .scores
                .iter()
                .max_by(|a, b| a.1.total_cmp(&b.1).then_with(|| b.0.cmp(&a.0)))
            else {
                continue;
            };
            if !group.contains(right) {
                continue;
            }
            let candidates: Vec<WorkerId> = rt
                .scores
                .iter()
                .map(|&(w, _)| w)
                .filter(|&w| group.contains(w))
                .collect();
            if candidates.len() < 2 {
                continue;
            }
            questions.push(TestQuestion {
                task: rt.task,
                bow: rt.bow.clone(),
                candidates,
                right,
            });
        }
        // Deterministic subsample.
        let mut rng = StdRng::seed_from_u64(self.seed);
        if questions.len() > self.max_questions {
            // Partial Fisher–Yates: keep the first `max_questions` slots.
            for i in 0..self.max_questions {
                let j = rng.random_range(i..questions.len());
                questions.swap(i, j);
            }
            questions.truncate(self.max_questions);
        }
        questions
    }

    /// Runs `selector` over `questions`, returning the per-question ACCU
    /// values (aligned with `questions`) — the paired samples that
    /// [`crate::significance::paired_bootstrap`] consumes.
    pub fn evaluate_scores(
        &self,
        selector: &dyn CrowdSelector,
        questions: &[TestQuestion],
    ) -> Vec<f64> {
        // One batched pass through the selector: each question carries its
        // own candidate pool, and the `task` field reproduces the mode
        // dispatch (`Some` → rank_trained, `None` → rank) bit-identically.
        let queries: Vec<BatchQuery<'_>> = questions
            .iter()
            .map(|q| BatchQuery {
                bow: &q.bow,
                candidates: &q.candidates,
                task: match self.mode {
                    EvalMode::Reconstruct => Some(q.task),
                    EvalMode::Project => None,
                },
            })
            .collect();
        // Full rankings: k must cover the largest candidate pool.
        let k = questions
            .iter()
            .map(|q| q.candidates.len())
            .max()
            .unwrap_or(0);
        let rankings = selector.select_batch(&queries, k);
        questions
            .iter()
            .zip(rankings)
            .map(|(q, ranked)| {
                let rank = ranked
                    .iter()
                    .position(|r| r.worker == q.right)
                    .map(|p| p + 1)
                    .unwrap_or(q.candidates.len());
                crate::metrics::accu(rank, q.candidates.len())
            })
            .collect()
    }

    /// Runs `selector` over `questions`, timing each ranking query.
    pub fn evaluate(
        &self,
        selector: &dyn CrowdSelector,
        questions: &[TestQuestion],
    ) -> EvalAccumulator {
        let mut acc = EvalAccumulator::new();
        for q in questions {
            let start = Instant::now();
            let ranked = match self.mode {
                EvalMode::Reconstruct => selector.rank_trained(q.task, &q.bow, &q.candidates),
                EvalMode::Project => selector.rank(&q.bow, &q.candidates),
            };
            let elapsed = start.elapsed().as_nanos();
            let rank = ranked
                .iter()
                .position(|r| r.worker == q.right)
                .map(|p| p + 1)
                // A selector that dropped the right worker ranks them last.
                .unwrap_or(q.candidates.len());
            acc.record(rank, q.candidates.len(), elapsed);
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowd_core::selection::{top_k, RankedWorker};

    /// Deterministic db: 3 workers; w0 best on t0/t1, w1 best on t2.
    fn db() -> CrowdDb {
        let mut db = CrowdDb::new();
        let w: Vec<WorkerId> = (0..3).map(|i| db.add_worker(format!("w{i}"))).collect();
        let specs: &[(&str, &[(usize, f64)])] = &[
            ("alpha beta gamma", &[(0, 5.0), (1, 2.0)]),
            ("alpha alpha beta", &[(0, 4.0), (1, 1.0), (2, 0.5)]),
            ("delta epsilon zeta", &[(1, 6.0), (2, 3.0)]),
            ("solo question here", &[(2, 1.0)]),
        ];
        for (text, scores) in specs {
            let t = db.add_task(*text);
            for &(wi, s) in scores.iter() {
                db.assign(w[wi], t).unwrap();
                db.record_feedback(w[wi], t, s).unwrap();
            }
        }
        db
    }

    struct OracleSelector {
        db_scores: Vec<(TaskId, Vec<(WorkerId, f64)>)>,
    }

    impl OracleSelector {
        fn fit(db: &CrowdDb) -> Self {
            OracleSelector {
                db_scores: db
                    .resolved_tasks()
                    .into_iter()
                    .map(|rt| (rt.task, rt.scores))
                    .collect(),
            }
        }
    }

    impl CrowdSelector for OracleSelector {
        fn name(&self) -> &'static str {
            "ORACLE"
        }
        fn rank(&self, task: &BagOfWords, candidates: &[WorkerId]) -> Vec<RankedWorker> {
            // Cheats: looks up recorded feedback by matching the task bow.
            for (_, scores) in &self.db_scores {
                let _ = task;
                let mut found: Vec<(WorkerId, f64)> = candidates
                    .iter()
                    .filter_map(|&w| {
                        scores
                            .iter()
                            .find(|&&(sw, _)| sw == w)
                            .map(|&(_, s)| (w, s))
                    })
                    .collect();
                if found.len() == candidates.len() {
                    return top_k(std::mem::take(&mut found), candidates.len());
                }
            }
            top_k(candidates.iter().map(|&w| (w, 0.0)), candidates.len())
        }
    }

    #[test]
    fn test_questions_require_group_membership_and_two_candidates() {
        let db = db();
        let all = WorkerGroup::extract(&db, 0);
        let protocol = EvalProtocol::new(100, 1);
        let qs = protocol.test_questions(&db, &all);
        // Task 3 has a single answerer → excluded; the rest qualify.
        assert_eq!(qs.len(), 3);
        for q in &qs {
            assert!(q.candidates.len() >= 2);
            assert!(q.candidates.contains(&q.right));
        }
    }

    #[test]
    fn restrictive_group_filters_questions() {
        let db = db();
        // Threshold 2: w0 (2 tasks), w1 (3 tasks), w2 (3 tasks: t1,t2,t3)…
        // compute via the group itself.
        let g = WorkerGroup::extract(&db, 3);
        let protocol = EvalProtocol::new(100, 1);
        let qs = protocol.test_questions(&db, &g);
        for q in &qs {
            assert!(g.contains(q.right));
            for &c in &q.candidates {
                assert!(g.contains(c));
            }
        }
    }

    #[test]
    fn subsampling_caps_and_is_deterministic() {
        let db = db();
        let all = WorkerGroup::extract(&db, 0);
        let protocol = EvalProtocol::new(2, 7);
        let a = protocol.test_questions(&db, &all);
        let b = protocol.test_questions(&db, &all);
        assert_eq!(a.len(), 2);
        assert_eq!(
            a.iter().map(|q| q.task).collect::<Vec<_>>(),
            b.iter().map(|q| q.task).collect::<Vec<_>>()
        );
    }

    #[test]
    fn oracle_selector_gets_perfect_scores() {
        let db = db();
        let all = WorkerGroup::extract(&db, 0);
        let protocol = EvalProtocol::new(100, 1);
        let qs = protocol.test_questions(&db, &all);
        let oracle = OracleSelector::fit(&db);
        let acc = protocol.evaluate(&oracle, &qs);
        assert_eq!(acc.num_questions(), qs.len());
        assert!((acc.precision() - 1.0).abs() < 1e-12);
        assert!((acc.top_k(1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn batched_scores_match_the_sequential_protocol() {
        let db = db();
        let all = WorkerGroup::extract(&db, 0);
        let oracle = OracleSelector::fit(&db);
        for protocol in [EvalProtocol::new(100, 1), EvalProtocol::projecting(100, 1)] {
            let qs = protocol.test_questions(&db, &all);
            let batched = protocol.evaluate_scores(&oracle, &qs);
            let sequential: Vec<f64> = qs
                .iter()
                .map(|q| {
                    let ranked = match protocol.mode {
                        EvalMode::Reconstruct => oracle.rank_trained(q.task, &q.bow, &q.candidates),
                        EvalMode::Project => oracle.rank(&q.bow, &q.candidates),
                    };
                    let rank = ranked
                        .iter()
                        .position(|r| r.worker == q.right)
                        .map(|p| p + 1)
                        .unwrap_or(q.candidates.len());
                    crate::metrics::accu(rank, q.candidates.len())
                })
                .collect();
            assert_eq!(batched.len(), sequential.len());
            for (a, b) in batched.iter().zip(&sequential) {
                assert_eq!(a.to_bits(), b.to_bits(), "{:?}", protocol.mode);
            }
        }
    }

    #[test]
    fn missing_right_worker_ranks_last() {
        struct DropFirst;
        impl CrowdSelector for DropFirst {
            fn name(&self) -> &'static str {
                "DROP"
            }
            fn rank(&self, _t: &BagOfWords, c: &[WorkerId]) -> Vec<RankedWorker> {
                // Drops the lexicographically smallest candidate entirely.
                let min = c.iter().min().copied();
                top_k(
                    c.iter().filter(|&&w| Some(w) != min).map(|&w| (w, 1.0)),
                    c.len(),
                )
            }
        }
        let db = db();
        let all = WorkerGroup::extract(&db, 0);
        let protocol = EvalProtocol::new(100, 1);
        let qs: Vec<TestQuestion> = protocol
            .test_questions(&db, &all)
            .into_iter()
            .filter(|q| q.right == WorkerId(0))
            .collect();
        assert!(!qs.is_empty());
        let acc = protocol.evaluate(&DropFirst, &qs);
        // Right worker w0 was dropped → always ranked last → precision 0.
        assert_eq!(acc.precision(), 0.0);
    }
}
