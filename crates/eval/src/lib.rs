#![warn(missing_docs)]

//! Evaluation harness: the paper's metrics, experiment protocol, and the
//! reproduction of every table and figure in Section 7.
//!
//! - [`metrics`]: **ACCU** (precision) and **TopK** (recall) exactly as
//!   defined in Section 7.2.2, plus aggregation helpers.
//! - [`protocol`]: test-question selection ("the right worker for each
//!   testing question must be in the group"), candidate construction, and
//!   the query loop shared by all experiments.
//! - [`experiments`]: one driver per table/figure (Tables 3–8, Figures 3–8)
//!   producing printable, serializable results.
//! - [`tables`]: paper-style text rendering.
//!
//! The `repro` binary ties it together:
//!
//! ```text
//! cargo run --release -p crowd-eval --bin repro -- --exp table3
//! cargo run --release -p crowd-eval --bin repro -- --exp all --scale 0.2
//! ```

pub mod experiments;
pub mod metrics;
pub mod protocol;
pub mod significance;
pub mod tables;

pub use experiments::{ExperimentSettings, PlatformExperiments};
pub use metrics::{accu, EvalAccumulator};
pub use protocol::{EvalMode, EvalProtocol, TestQuestion};
pub use significance::{paired_bootstrap, BootstrapResult};
