//! Property-based tests for the crowd database.

use crowd_store::wal::{apply, decode_record};
use crowd_store::{recover, CrowdDb, LoggedDb, StoreError, TaskId, WorkerId};
use proptest::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};

/// A random sequence of valid operations on a small db.
#[derive(Debug, Clone)]
enum Op {
    AddWorker,
    AddTask,
    Assign(u32, u32),
    Feedback(u32, u32, f64),
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            Just(Op::AddWorker),
            Just(Op::AddTask),
            (0u32..8, 0u32..8).prop_map(|(w, t)| Op::Assign(w, t)),
            (0u32..8, 0u32..8, 0.0f64..10.0).prop_map(|(w, t, s)| Op::Feedback(w, t, s)),
        ],
        0..60,
    )
}

/// Writes a valid WAL for the op sequence at a fresh temp path.
fn build_wal(ops: &[Op]) -> std::path::PathBuf {
    static CASE: AtomicUsize = AtomicUsize::new(0);
    let case = CASE.fetch_add(1, Ordering::Relaxed);
    let path =
        std::env::temp_dir().join(format!("crowd-wal-prop-{}-{case}.wal", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let mut logged = LoggedDb::open(&path).unwrap();
    for op in ops {
        match *op {
            Op::AddWorker => {
                logged.add_worker("w").unwrap();
            }
            Op::AddTask => {
                logged.add_task("alpha beta gamma delta").unwrap();
            }
            Op::Assign(w, t) => {
                let _ = logged.assign(WorkerId(w), TaskId(t));
            }
            Op::Feedback(w, t, s) => {
                let _ = logged.record_feedback(WorkerId(w), TaskId(t), s);
            }
        }
    }
    path
}

/// Splits bytes into non-empty lines exactly the way `recover` does.
fn nonempty_lines(bytes: &[u8]) -> Vec<Vec<u8>> {
    bytes
        .split(|&b| b == b'\n')
        .map(|raw| raw.strip_suffix(b"\r").unwrap_or(raw).to_vec())
        .filter(|l| !l.iter().all(|b| b.is_ascii_whitespace()))
        .collect()
}

proptest! {
    /// Whatever sequence of operations runs, the secondary indexes stay
    /// consistent with the primary data.
    #[test]
    fn indexes_always_consistent(ops in arb_ops()) {
        let mut db = CrowdDb::new();
        let mut expected_pairs: Vec<(WorkerId, TaskId)> = Vec::new();

        for op in ops {
            match op {
                Op::AddWorker => {
                    db.add_worker("w");
                }
                Op::AddTask => {
                    db.add_task("some question text here");
                }
                Op::Assign(w, t) => {
                    let (w, t) = (WorkerId(w), TaskId(t));
                    let fresh = w.index() < db.num_workers()
                        && t.index() < db.num_tasks()
                        && !db.is_assigned(w, t);
                    match db.assign(w, t) {
                        Ok(()) => {
                            prop_assert!(fresh);
                            expected_pairs.push((w, t));
                        }
                        Err(_) => prop_assert!(!fresh),
                    }
                }
                Op::Feedback(w, t, s) => {
                    let (w, t) = (WorkerId(w), TaskId(t));
                    let assigned = db.is_assigned(w, t);
                    match db.record_feedback(w, t, s) {
                        Ok(()) => {
                            prop_assert!(assigned);
                            prop_assert_eq!(db.feedback(w, t), Some(s));
                        }
                        Err(e) => {
                            prop_assert!(!assigned, "unexpected error {e}");
                        }
                    }
                }
            }
        }

        // Assignment count matches what succeeded.
        prop_assert_eq!(db.num_assignments(), expected_pairs.len());
        // Both directions of the index agree with the pair list.
        for &(w, t) in &expected_pairs {
            prop_assert!(db.tasks_of(w).any(|(tt, _)| tt == t));
            prop_assert!(db.workers_of(t).any(|(ww, _)| ww == w));
        }
        // resolved_tasks is exactly the set of scored pairs grouped by task.
        let resolved_pairs: usize = db.resolved_tasks().iter().map(|rt| rt.scores.len()).sum();
        prop_assert_eq!(resolved_pairs, db.num_resolved());
    }

    /// Snapshot round-trips preserve observable state for arbitrary dbs.
    #[test]
    fn snapshot_roundtrip(ops in arb_ops()) {
        let mut db = CrowdDb::new();
        for op in ops {
            match op {
                Op::AddWorker => { db.add_worker("w"); }
                Op::AddTask => { db.add_task("alpha beta gamma delta"); }
                Op::Assign(w, t) => { let _ = db.assign(WorkerId(w), TaskId(t)); }
                Op::Feedback(w, t, s) => {
                    let _ = db.record_feedback(WorkerId(w), TaskId(t), s);
                }
            }
        }
        let snap = crowd_store::snapshot::Snapshot::capture(&db);
        let restored = crowd_store::snapshot::Snapshot::from_json(&snap.to_json().unwrap())
            .unwrap()
            .restore();
        prop_assert_eq!(restored.num_workers(), db.num_workers());
        prop_assert_eq!(restored.num_tasks(), db.num_tasks());
        prop_assert_eq!(restored.num_assignments(), db.num_assignments());
        prop_assert_eq!(restored.num_resolved(), db.num_resolved());
        for w in db.worker_ids() {
            for (t, s) in db.tasks_of(w) {
                prop_assert_eq!(restored.feedback(w, t), s);
            }
        }
    }

    /// Feedback scores must be finite; NaN/inf are always rejected and leave
    /// no trace.
    #[test]
    fn invalid_scores_never_stored(bad in prop_oneof![
        Just(f64::NAN), Just(f64::INFINITY), Just(f64::NEG_INFINITY)
    ]) {
        let mut db = CrowdDb::new();
        let w = db.add_worker("w");
        let t = db.add_task("q");
        db.assign(w, t).unwrap();
        let r = db.record_feedback(w, t, bad);
        prop_assert!(matches!(r, Err(StoreError::InvalidScore(_))));
        prop_assert_eq!(db.feedback(w, t), None);
        prop_assert_eq!(db.num_resolved(), 0);
    }

    /// WAL recovery under random corruption: flip a bit or truncate the
    /// file anywhere, and `recover` must still (a) never error or panic,
    /// (b) apply every record that precedes the first damaged line, and
    /// (c) account for every line as applied, skipped, or a torn tail —
    /// deterministically.
    #[test]
    fn corrupted_wal_recovers_prefix_and_reports(
        ops in arb_ops(),
        mode in 0u8..2,
        pos in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let path = build_wal(&ops);
        let pristine = std::fs::read(&path).unwrap();
        prop_assume!(!pristine.is_empty());

        // Corrupt: mode 0 flips one bit, mode 1 truncates at a byte offset.
        let off = ((pos * pristine.len() as f64) as usize).min(pristine.len() - 1);
        let corrupted = if mode == 0 {
            let mut bytes = pristine.clone();
            bytes[off] ^= 1 << bit;
            bytes
        } else {
            pristine[..off].to_vec()
        };
        std::fs::write(&path, &corrupted).unwrap();

        // (a) Salvage-mode recovery never fails outright.
        let (db, report) = recover(&path).unwrap();

        // (b) Everything before the first damaged line is applied. The
        // damage point is the first line of the corrupted file that no
        // longer matches the pristine log (bit flips can also split or
        // merge lines by touching a newline byte; truncation shortens the
        // tail — the common-prefix comparison covers all of these).
        let pristine_lines = nonempty_lines(&pristine);
        let corrupted_lines = nonempty_lines(&corrupted);
        let intact = pristine_lines
            .iter()
            .zip(corrupted_lines.iter())
            .take_while(|(a, b)| a == b)
            .count();
        let mut expected = CrowdDb::new();
        for raw in &pristine_lines[..intact] {
            let line = std::str::from_utf8(raw).expect("pristine log is UTF-8");
            let op = decode_record(line).expect("pristine record must decode");
            apply(&mut expected, &op).expect("pristine prefix must replay");
        }
        prop_assert!(report.applied >= intact);
        prop_assert!(db.num_workers() >= expected.num_workers());
        prop_assert!(db.num_tasks() >= expected.num_tasks());
        prop_assert!(db.num_assignments() >= expected.num_assignments());
        for w in expected.worker_ids() {
            for (t, _) in expected.tasks_of(w) {
                prop_assert!(db.is_assigned(w, t));
            }
        }

        // (c) Every surviving line is accounted for exactly once.
        let torn = usize::from(report.torn_tail);
        prop_assert_eq!(
            report.applied + report.skipped.len() + torn,
            corrupted_lines.len()
        );
        // Damage anywhere but the tail must be *reported*, not silent —
        // unless the flip left a semantically identical record (e.g. it
        // only changed the case of a checksum hex digit).
        if intact + 1 < corrupted_lines.len() {
            let damaged_still_decodes = std::str::from_utf8(&corrupted_lines[intact])
                .ok()
                .and_then(|l| decode_record(l).ok())
                .is_some();
            if !damaged_still_decodes {
                prop_assert!(!report.is_clean());
            }
        }

        // Recovery is deterministic: same file, same report, same state.
        let (db2, report2) = recover(&path).unwrap();
        prop_assert_eq!(report2, report);
        prop_assert_eq!(db2.num_workers(), db.num_workers());
        prop_assert_eq!(db2.num_tasks(), db.num_tasks());
        prop_assert_eq!(db2.num_assignments(), db.num_assignments());

        let _ = std::fs::remove_file(&path);
    }

    /// Worker groups are nested: group(n+1) ⊆ group(n), and coverage is
    /// monotone non-increasing.
    #[test]
    fn groups_are_nested(ops in arb_ops()) {
        let mut db = CrowdDb::new();
        for op in ops {
            match op {
                Op::AddWorker => { db.add_worker("w"); }
                Op::AddTask => { db.add_task("q r s"); }
                Op::Assign(w, t) => { let _ = db.assign(WorkerId(w), TaskId(t)); }
                Op::Feedback(w, t, s) => {
                    let _ = db.record_feedback(WorkerId(w), TaskId(t), s);
                }
            }
        }
        use crowd_store::WorkerGroup;
        let mut prev: Option<WorkerGroup> = None;
        for n in 0..5 {
            let g = WorkerGroup::extract(&db, n);
            if let Some(p) = &prev {
                for &m in &g.members {
                    prop_assert!(p.contains(m), "group({n}) ⊆ group({})", n - 1);
                }
                prop_assert!(g.coverage(&db) <= p.coverage(&db) + 1e-12);
            }
            prev = Some(g);
        }
    }
}
