//! Property-based tests for the crowd database.

use crowd_store::{CrowdDb, StoreError, TaskId, WorkerId};
use proptest::prelude::*;

/// A random sequence of valid operations on a small db.
#[derive(Debug, Clone)]
enum Op {
    AddWorker,
    AddTask,
    Assign(u32, u32),
    Feedback(u32, u32, f64),
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            Just(Op::AddWorker),
            Just(Op::AddTask),
            (0u32..8, 0u32..8).prop_map(|(w, t)| Op::Assign(w, t)),
            (0u32..8, 0u32..8, 0.0f64..10.0).prop_map(|(w, t, s)| Op::Feedback(w, t, s)),
        ],
        0..60,
    )
}

proptest! {
    /// Whatever sequence of operations runs, the secondary indexes stay
    /// consistent with the primary data.
    #[test]
    fn indexes_always_consistent(ops in arb_ops()) {
        let mut db = CrowdDb::new();
        let mut expected_pairs: Vec<(WorkerId, TaskId)> = Vec::new();

        for op in ops {
            match op {
                Op::AddWorker => {
                    db.add_worker("w");
                }
                Op::AddTask => {
                    db.add_task("some question text here");
                }
                Op::Assign(w, t) => {
                    let (w, t) = (WorkerId(w), TaskId(t));
                    let fresh = w.index() < db.num_workers()
                        && t.index() < db.num_tasks()
                        && !db.is_assigned(w, t);
                    match db.assign(w, t) {
                        Ok(()) => {
                            prop_assert!(fresh);
                            expected_pairs.push((w, t));
                        }
                        Err(_) => prop_assert!(!fresh),
                    }
                }
                Op::Feedback(w, t, s) => {
                    let (w, t) = (WorkerId(w), TaskId(t));
                    let assigned = db.is_assigned(w, t);
                    match db.record_feedback(w, t, s) {
                        Ok(()) => {
                            prop_assert!(assigned);
                            prop_assert_eq!(db.feedback(w, t), Some(s));
                        }
                        Err(e) => {
                            prop_assert!(!assigned, "unexpected error {e}");
                        }
                    }
                }
            }
        }

        // Assignment count matches what succeeded.
        prop_assert_eq!(db.num_assignments(), expected_pairs.len());
        // Both directions of the index agree with the pair list.
        for &(w, t) in &expected_pairs {
            prop_assert!(db.tasks_of(w).any(|(tt, _)| tt == t));
            prop_assert!(db.workers_of(t).any(|(ww, _)| ww == w));
        }
        // resolved_tasks is exactly the set of scored pairs grouped by task.
        let resolved_pairs: usize = db.resolved_tasks().iter().map(|rt| rt.scores.len()).sum();
        prop_assert_eq!(resolved_pairs, db.num_resolved());
    }

    /// Snapshot round-trips preserve observable state for arbitrary dbs.
    #[test]
    fn snapshot_roundtrip(ops in arb_ops()) {
        let mut db = CrowdDb::new();
        for op in ops {
            match op {
                Op::AddWorker => { db.add_worker("w"); }
                Op::AddTask => { db.add_task("alpha beta gamma delta"); }
                Op::Assign(w, t) => { let _ = db.assign(WorkerId(w), TaskId(t)); }
                Op::Feedback(w, t, s) => {
                    let _ = db.record_feedback(WorkerId(w), TaskId(t), s);
                }
            }
        }
        let snap = crowd_store::snapshot::Snapshot::capture(&db);
        let restored = crowd_store::snapshot::Snapshot::from_json(&snap.to_json().unwrap())
            .unwrap()
            .restore();
        prop_assert_eq!(restored.num_workers(), db.num_workers());
        prop_assert_eq!(restored.num_tasks(), db.num_tasks());
        prop_assert_eq!(restored.num_assignments(), db.num_assignments());
        prop_assert_eq!(restored.num_resolved(), db.num_resolved());
        for w in db.worker_ids() {
            for (t, s) in db.tasks_of(w) {
                prop_assert_eq!(restored.feedback(w, t), s);
            }
        }
    }

    /// Feedback scores must be finite; NaN/inf are always rejected and leave
    /// no trace.
    #[test]
    fn invalid_scores_never_stored(bad in prop_oneof![
        Just(f64::NAN), Just(f64::INFINITY), Just(f64::NEG_INFINITY)
    ]) {
        let mut db = CrowdDb::new();
        let w = db.add_worker("w");
        let t = db.add_task("q");
        db.assign(w, t).unwrap();
        let r = db.record_feedback(w, t, bad);
        prop_assert!(matches!(r, Err(StoreError::InvalidScore(_))));
        prop_assert_eq!(db.feedback(w, t), None);
        prop_assert_eq!(db.num_resolved(), 0);
    }

    /// Worker groups are nested: group(n+1) ⊆ group(n), and coverage is
    /// monotone non-increasing.
    #[test]
    fn groups_are_nested(ops in arb_ops()) {
        let mut db = CrowdDb::new();
        for op in ops {
            match op {
                Op::AddWorker => { db.add_worker("w"); }
                Op::AddTask => { db.add_task("q r s"); }
                Op::Assign(w, t) => { let _ = db.assign(WorkerId(w), TaskId(t)); }
                Op::Feedback(w, t, s) => {
                    let _ = db.record_feedback(WorkerId(w), TaskId(t), s);
                }
            }
        }
        use crowd_store::WorkerGroup;
        let mut prev: Option<WorkerGroup> = None;
        for n in 0..5 {
            let g = WorkerGroup::extract(&db, n);
            if let Some(p) = &prev {
                for &m in &g.members {
                    prop_assert!(p.contains(m), "group({n}) ⊆ group({})", n - 1);
                }
                prop_assert!(g.coverage(&db) <= p.coverage(&db) + 1e-12);
            }
            prev = Some(g);
        }
    }
}
