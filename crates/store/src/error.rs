//! Errors for the crowdsourcing database.

use crate::{TaskId, WorkerId};
use std::fmt;

/// Errors raised by [`crate::CrowdDb`] operations.
#[derive(Debug, Clone, PartialEq)]
pub enum StoreError {
    /// Referenced a worker id that was never inserted.
    UnknownWorker(WorkerId),
    /// Referenced a task id that was never inserted.
    UnknownTask(TaskId),
    /// Attempted to record feedback for a pair with no assignment.
    NotAssigned(WorkerId, TaskId),
    /// Attempted to assign the same worker to the same task twice.
    AlreadyAssigned(WorkerId, TaskId),
    /// Feedback score was NaN or infinite.
    InvalidScore(f64),
    /// Snapshot (de)serialization failed.
    Snapshot(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::UnknownWorker(w) => write!(f, "unknown worker {w}"),
            StoreError::UnknownTask(t) => write!(f, "unknown task {t}"),
            StoreError::NotAssigned(w, t) => write!(f, "{w} is not assigned to {t}"),
            StoreError::AlreadyAssigned(w, t) => write!(f, "{w} already assigned to {t}"),
            StoreError::InvalidScore(s) => write!(f, "invalid feedback score {s}"),
            StoreError::Snapshot(msg) => write!(f, "snapshot error: {msg}"),
        }
    }
}

impl StoreError {
    /// Whether a retry could plausibly succeed without the caller changing
    /// anything — the classification the query layer's bounded-backoff
    /// retry policy consults at the storage boundary.
    ///
    /// Every current variant is *permanent* (bad ids, double assignment,
    /// malformed input, corrupt snapshot): retrying reproduces the same
    /// failure, so the policy must surface it immediately. The method
    /// exists so a future I/O-backed store (or an injected fault wrapper)
    /// has one audited place to declare a variant retryable.
    pub fn is_transient(&self) -> bool {
        match self {
            StoreError::UnknownWorker(_)
            | StoreError::UnknownTask(_)
            | StoreError::NotAssigned(_, _)
            | StoreError::AlreadyAssigned(_, _)
            | StoreError::InvalidScore(_)
            | StoreError::Snapshot(_) => false,
        }
    }
}

impl std::error::Error for StoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert_eq!(
            StoreError::UnknownWorker(WorkerId(1)).to_string(),
            "unknown worker w1"
        );
        assert_eq!(
            StoreError::NotAssigned(WorkerId(2), TaskId(3)).to_string(),
            "w2 is not assigned to t3"
        );
        assert!(StoreError::InvalidScore(f64::NAN)
            .to_string()
            .contains("NaN"));
    }

    #[test]
    fn every_store_error_is_permanent() {
        for e in [
            StoreError::UnknownWorker(WorkerId(1)),
            StoreError::UnknownTask(TaskId(2)),
            StoreError::NotAssigned(WorkerId(1), TaskId(2)),
            StoreError::AlreadyAssigned(WorkerId(1), TaskId(2)),
            StoreError::InvalidScore(f64::INFINITY),
            StoreError::Snapshot("bad".into()),
        ] {
            assert!(!e.is_transient(), "{e}: retrying cannot help");
        }
    }
}
