//! Errors for the crowdsourcing database.

use crate::{TaskId, WorkerId};
use std::fmt;

/// Errors raised by [`crate::CrowdDb`] operations.
#[derive(Debug, Clone, PartialEq)]
pub enum StoreError {
    /// Referenced a worker id that was never inserted.
    UnknownWorker(WorkerId),
    /// Referenced a task id that was never inserted.
    UnknownTask(TaskId),
    /// Attempted to record feedback for a pair with no assignment.
    NotAssigned(WorkerId, TaskId),
    /// Attempted to assign the same worker to the same task twice.
    AlreadyAssigned(WorkerId, TaskId),
    /// Feedback score was NaN or infinite.
    InvalidScore(f64),
    /// Snapshot (de)serialization failed.
    Snapshot(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::UnknownWorker(w) => write!(f, "unknown worker {w}"),
            StoreError::UnknownTask(t) => write!(f, "unknown task {t}"),
            StoreError::NotAssigned(w, t) => write!(f, "{w} is not assigned to {t}"),
            StoreError::AlreadyAssigned(w, t) => write!(f, "{w} already assigned to {t}"),
            StoreError::InvalidScore(s) => write!(f, "invalid feedback score {s}"),
            StoreError::Snapshot(msg) => write!(f, "snapshot error: {msg}"),
        }
    }
}

impl std::error::Error for StoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert_eq!(
            StoreError::UnknownWorker(WorkerId(1)).to_string(),
            "unknown worker w1"
        );
        assert_eq!(
            StoreError::NotAssigned(WorkerId(2), TaskId(3)).to_string(),
            "w2 is not assigned to t3"
        );
        assert!(StoreError::InvalidScore(f64::NAN)
            .to_string()
            .contains("NaN"));
    }
}
