#![warn(missing_docs)]

//! The crowdsourcing database.
//!
//! The paper (Figure 1) centres on a *crowd database* that "supports crowd
//! insertion, crowd update and crowd retrieval" and stores the four tables of
//! Figure 2:
//!
//! | Paper table | Here |
//! |---|---|
//! | `T` — tasks as bags of vocabularies | [`TaskRecord`] in [`CrowdDb::tasks`] |
//! | `W` — worker latent skills | owned by the model crates; the store keeps the worker roster ([`WorkerRecord`]) |
//! | `A` — binary task assignment | adjacency lists inside [`CrowdDb`] |
//! | `S` — feedback scores | [`Feedback`] entries inside [`CrowdDb`] |
//!
//! The store also tracks answers (needed to derive Yahoo!-style feedback from
//! best answers), an online-worker registry for the selection path, and
//! participation groups / task coverage (Figures 3, 5, 7).
//!
//! [`CrowdDb`] is a single-writer structure; [`SharedCrowdDb`] wraps it in a
//! `parking_lot::RwLock` for the concurrent platform pipeline.

pub mod db;
pub mod error;
pub mod feedback;
pub mod groups;
pub mod ids;
pub mod online;
pub mod sharded;
pub mod shared;
pub mod snapshot;
pub mod task;
pub mod wal;
pub mod worker;

pub use db::{CrowdDb, ResolvedTask};
pub use error::StoreError;
pub use feedback::Feedback;
pub use groups::{GroupStats, WorkerGroup};
pub use ids::{TaskId, WorkerId};
pub use online::OnlineRegistry;
pub use sharded::{ShardMap, ShardedDb};
pub use shared::SharedCrowdDb;
pub use task::TaskRecord;
pub use wal::{
    recover, replay, CompactionStats, LoggedDb, RecoveryReport, SkippedRecord, WalOptions,
};
pub use worker::WorkerRecord;

/// Convenience result alias for store operations.
pub type Result<T> = std::result::Result<T, StoreError>;
