//! Worker participation groups and task coverage (paper Figs. 3, 5, 7).

use crate::{CrowdDb, TaskId, WorkerId};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// A group of workers selected by participation threshold.
///
/// The paper denotes "the group of workers who solve ≥ n tasks in Quora" as
/// `Quora_n` (Section 7.3.1; `Quora_1` contains *all* workers, so the
/// threshold is inclusive).
#[derive(Debug, Clone)]
pub struct WorkerGroup {
    /// Minimum number of resolved tasks required for membership.
    pub threshold: usize,
    /// Member ids in ascending order.
    pub members: Vec<WorkerId>,
}

/// Summary statistics of a [`WorkerGroup`] against a database.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroupStats {
    /// The participation threshold `n`.
    pub threshold: usize,
    /// Number of member workers (Figures 3(b), 5(b), 7(b)).
    pub size: usize,
    /// Fraction of distinct tasks solvable by the group
    /// (Figures 3(a), 5(a), 7(a)).
    pub coverage: f64,
}

impl WorkerGroup {
    /// Extracts the group of workers with ≥ `threshold` resolved tasks.
    pub fn extract(db: &CrowdDb, threshold: usize) -> Self {
        let members = db
            .worker_ids()
            .filter(|&w| db.worker_task_count(w) >= threshold)
            .collect();
        WorkerGroup { threshold, members }
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// `true` if the group has no members.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// `true` if `worker` belongs to the group.
    pub fn contains(&self, worker: WorkerId) -> bool {
        self.members.binary_search(&worker).is_ok()
    }

    /// Task coverage: |distinct resolved tasks touched by members| / |tasks|.
    pub fn coverage(&self, db: &CrowdDb) -> f64 {
        if db.num_tasks() == 0 {
            return 0.0;
        }
        let mut covered: HashSet<TaskId> = HashSet::new();
        for &w in &self.members {
            for (t, score) in db.tasks_of(w) {
                if score.is_some() {
                    covered.insert(t);
                }
            }
        }
        covered.len() as f64 / db.num_tasks() as f64
    }

    /// Convenience: group stats for Figures 3 / 5 / 7.
    pub fn stats(&self, db: &CrowdDb) -> GroupStats {
        GroupStats {
            threshold: self.threshold,
            size: self.len(),
            coverage: self.coverage(db),
        }
    }
}

/// Extracts stats for each threshold in `thresholds` in one sweep.
pub fn group_stats_sweep(db: &CrowdDb, thresholds: &[usize]) -> Vec<GroupStats> {
    thresholds
        .iter()
        .map(|&n| WorkerGroup::extract(db, n).stats(db))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 3 workers: w0 resolves 3 tasks, w1 resolves 2, w2 resolves 0.
    fn db() -> CrowdDb {
        let mut db = CrowdDb::new();
        let w: Vec<_> = (0..3).map(|i| db.add_worker(format!("u{i}"))).collect();
        let t: Vec<_> = (0..4)
            .map(|i| db.add_task(format!("task number {i}")))
            .collect();
        for &ti in &t[0..3] {
            db.assign(w[0], ti).unwrap();
            db.record_feedback(w[0], ti, 1.0).unwrap();
        }
        for &ti in &t[0..2] {
            db.assign(w[1], ti).unwrap();
            db.record_feedback(w[1], ti, 1.0).unwrap();
        }
        db.assign(w[2], t[3]).unwrap(); // unresolved
        db
    }

    #[test]
    fn threshold_one_includes_active_workers_only() {
        let db = db();
        let g = WorkerGroup::extract(&db, 1);
        assert_eq!(g.members, vec![WorkerId(0), WorkerId(1)]);
        assert!(g.contains(WorkerId(0)));
        assert!(!g.contains(WorkerId(2)));
    }

    #[test]
    fn threshold_zero_includes_everyone() {
        let db = db();
        let g = WorkerGroup::extract(&db, 0);
        assert_eq!(g.len(), 3);
    }

    #[test]
    fn higher_thresholds_shrink_monotonically() {
        let db = db();
        let sizes: Vec<usize> = (0..=4)
            .map(|n| WorkerGroup::extract(&db, n).len())
            .collect();
        for w in sizes.windows(2) {
            assert!(w[0] >= w[1], "sizes must be non-increasing: {sizes:?}");
        }
        assert_eq!(sizes, vec![3, 2, 2, 1, 0]);
    }

    #[test]
    fn coverage_counts_distinct_resolved_tasks() {
        let db = db();
        // Group {w0, w1} resolved tasks {0,1,2} of 4 → 0.75.
        let g = WorkerGroup::extract(&db, 1);
        assert!((g.coverage(&db) - 0.75).abs() < 1e-12);
        // Group {w0} also covers {0,1,2} → same coverage with fewer workers.
        let g3 = WorkerGroup::extract(&db, 3);
        assert!((g3.coverage(&db) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn coverage_of_empty_db_is_zero() {
        let db = CrowdDb::new();
        let g = WorkerGroup::extract(&db, 0);
        assert_eq!(g.coverage(&db), 0.0);
    }

    #[test]
    fn sweep_matches_individual_extraction() {
        let db = db();
        let sweep = group_stats_sweep(&db, &[1, 2, 3]);
        assert_eq!(sweep.len(), 3);
        assert_eq!(sweep[0], WorkerGroup::extract(&db, 1).stats(&db));
        assert_eq!(sweep[2].size, 1);
    }
}
