//! Thread-safe wrapper around [`CrowdDb`].

use crate::CrowdDb;
use parking_lot::{RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::sync::Arc;

/// A cloneable, thread-safe handle to a [`CrowdDb`].
///
/// Reads (selection-path lookups) take a shared lock; writes (new tasks,
/// assignments, feedback) take an exclusive lock. The platform pipeline
/// holds one of these per component.
#[derive(Clone, Default)]
pub struct SharedCrowdDb {
    inner: Arc<RwLock<CrowdDb>>,
}

impl SharedCrowdDb {
    /// Wraps a database.
    pub fn new(db: CrowdDb) -> Self {
        SharedCrowdDb {
            inner: Arc::new(RwLock::new(db)),
        }
    }

    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, CrowdDb> {
        self.inner.read()
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, CrowdDb> {
        self.inner.write()
    }

    /// Runs a closure under the read lock.
    pub fn with_read<T>(&self, f: impl FnOnce(&CrowdDb) -> T) -> T {
        f(&self.read())
    }

    /// Runs a closure under the write lock.
    pub fn with_write<T>(&self, f: impl FnOnce(&mut CrowdDb) -> T) -> T {
        f(&mut self.write())
    }
}

impl std::fmt::Debug for SharedCrowdDb {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let db = self.read();
        f.debug_struct("SharedCrowdDb")
            .field("workers", &db.num_workers())
            .field("tasks", &db.num_tasks())
            .field("assignments", &db.num_assignments())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn concurrent_reads_and_writes() {
        let shared = SharedCrowdDb::new(CrowdDb::new());
        let w = shared.with_write(|db| db.add_worker("a"));
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let s = shared.clone();
                thread::spawn(move || {
                    let t = s.with_write(|db| db.add_task(format!("task {i}")));
                    s.with_write(|db| db.assign(w, t)).unwrap();
                    s.with_read(|db| db.num_tasks())
                })
            })
            .collect();
        for h in handles {
            assert!(h.join().unwrap() >= 1);
        }
        assert_eq!(shared.read().num_tasks(), 4);
        assert_eq!(shared.read().num_assignments(), 4);
    }

    #[test]
    fn clones_share_state() {
        let a = SharedCrowdDb::new(CrowdDb::new());
        let b = a.clone();
        a.with_write(|db| db.add_worker("x"));
        assert_eq!(b.read().num_workers(), 1);
    }
}
