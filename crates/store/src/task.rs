//! Task records: text plus its bag-of-vocabularies representation.

use crowd_text::BagOfWords;
use serde::{Deserialize, Serialize};

/// A stored crowdsourced task.
///
/// The raw text is retained for display and for re-tokenization under a
/// different vocabulary; all inference operates on the [`BagOfWords`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskRecord {
    /// Original question / task text.
    pub text: String,
    /// Sparse token counts over the store's vocabulary.
    pub bow: BagOfWords,
    /// Logical insertion time (monotone counter maintained by the store).
    pub created_at: u64,
}

impl TaskRecord {
    /// Total token count `L` of the task.
    pub fn num_tokens(&self) -> u64 {
        self.bow.total_tokens()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowd_text::{tokenize, Vocabulary};

    #[test]
    fn num_tokens_delegates_to_bow() {
        let mut v = Vocabulary::new();
        let bow = BagOfWords::from_tokens(&tokenize("b tree b tree"), &mut v);
        let rec = TaskRecord {
            text: "b tree b tree".into(),
            bow,
            created_at: 0,
        };
        assert_eq!(rec.num_tokens(), 4);
    }
}
