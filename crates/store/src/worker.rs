//! Worker roster records.

use serde::{Deserialize, Serialize};

/// A registered crowd worker.
///
/// Latent skills live in the model crates (they are *inferred*, not stored
/// facts); the store keeps the durable roster data.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkerRecord {
    /// Display handle (platform username).
    pub handle: String,
    /// Logical registration time.
    pub joined_at: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serde_roundtrip() {
        let w = WorkerRecord {
            handle: "ada".into(),
            joined_at: 7,
        };
        let json = serde_json::to_string(&w).unwrap();
        let back: WorkerRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(w, back);
    }
}
