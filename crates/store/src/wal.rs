//! Write-ahead logging: a durable, replayable, corruption-tolerant
//! operation log for the crowd database.
//!
//! The in-memory [`CrowdDb`] is the paper's "crowd databases" box; real
//! deployments need it to survive restarts *and* disk mishaps. [`LoggedDb`]
//! writes every mutation as one checksummed record to an append-only log
//! *before* applying it (WAL ordering). Three recovery levels exist:
//!
//! - [`replay`] — strict: rebuilds the database, tolerating only a torn
//!   *final* record (the expected state after a crash mid-append). Any
//!   interior corruption errors out.
//! - [`recover`] — skip-and-report: rebuilds as much as possible, applying
//!   every record that passes its checksum and listing the ones that do
//!   not in a [`RecoveryReport`]. This is what [`LoggedDb::open`] uses, so
//!   a single flipped bit no longer strands the whole database.
//! - [`LoggedDb::compact`] / [`LoggedDb::checkpoint`] — rewrites the log
//!   keeping only live records (all structure ops, the *last* feedback and
//!   answer per `(worker, task)` pair), so replay cost stays bounded by
//!   live state rather than total history. [`WalOptions::compact_every`]
//!   triggers this automatically.
//!
//! ## Record format
//!
//! Each record is one line: an 8-hex-digit CRC-32 (IEEE) of the payload, a
//! space, then the payload. Payloads are a compact hand-rolled encoding
//! (`w`/`t`/`a`/`f`/`n` prefix per [`Op`] variant); feedback scores are
//! stored as `f64::to_bits` hex so replay is bit-exact. Strings are
//! newline-escaped and placed last in the payload. Lines that fail the
//! checksum are also tried as legacy JSON records (the pre-checksum
//! format) before being declared corrupt.

use crate::{CrowdDb, Result, StoreError, TaskId, WorkerId};
use serde::{Deserialize, Serialize};
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};

/// One logged mutation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Op {
    /// Register a worker.
    AddWorker {
        /// Display handle.
        handle: String,
    },
    /// Insert a task from raw text.
    AddTask {
        /// Task text (re-tokenized on replay).
        text: String,
    },
    /// Assign a task to a worker.
    Assign {
        /// The worker.
        worker: WorkerId,
        /// The task.
        task: TaskId,
    },
    /// Record a feedback score.
    Feedback {
        /// The worker.
        worker: WorkerId,
        /// The task.
        task: TaskId,
        /// The score.
        score: f64,
    },
    /// Record an answer text.
    Answer {
        /// The worker.
        worker: WorkerId,
        /// The task.
        task: TaskId,
        /// Answer text.
        text: String,
    },
}

/// Applies one operation to a database.
pub fn apply(db: &mut CrowdDb, op: &Op) -> Result<()> {
    match op {
        Op::AddWorker { handle } => {
            db.add_worker(handle.clone());
            Ok(())
        }
        Op::AddTask { text } => {
            db.add_task(text.clone());
            Ok(())
        }
        Op::Assign { worker, task } => db.assign(*worker, *task),
        Op::Feedback {
            worker,
            task,
            score,
        } => db.record_feedback(*worker, *task, *score),
        Op::Answer { worker, task, text } => db.record_answer(*worker, *task, text),
    }
}

// ---------------------------------------------------------------------------
// Checksummed record codec
// ---------------------------------------------------------------------------

/// CRC-32 (IEEE 802.3, reflected) over `bytes`.
///
/// Shared with the sharded store's manifest log, which frames its records
/// the same way as WAL lines.
pub(crate) fn crc32(bytes: &[u8]) -> u32 {
    // Nibble-driven table: 16 entries, built in const context — fast enough
    // for a line-oriented log and free of external dependencies.
    const TABLE: [u32; 16] = {
        let mut table = [0u32; 16];
        let mut i = 0;
        while i < 16 {
            // crowd-lint: allow(no-silent-truncation) -- const context (try_from is not const); i < 16 by the loop bound
            let mut crc = i as u32;
            let mut b = 0;
            while b < 4 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ 0xEDB8_8320
                } else {
                    crc >> 1
                };
                b += 1;
            }
            table[i] = crc;
            i += 1;
        }
        table
    };
    let mut crc = !0u32;
    for &byte in bytes {
        crc = TABLE[((crc ^ u32::from(byte)) & 0xF) as usize] ^ (crc >> 4);
        crc = TABLE[((crc ^ (u32::from(byte) >> 4)) & 0xF) as usize] ^ (crc >> 4);
    }
    !crc
}

pub(crate) fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            _ => out.push(ch),
        }
    }
    out
}

pub(crate) fn unescape(s: &str) -> std::result::Result<String, String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(ch) = chars.next() {
        if ch != '\\' {
            out.push(ch);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            other => return Err(format!("bad escape \\{other:?}")),
        }
    }
    Ok(out)
}

fn encode_payload(op: &Op) -> String {
    match op {
        Op::AddWorker { handle } => format!("w {}", escape(handle)),
        Op::AddTask { text } => format!("t {}", escape(text)),
        Op::Assign { worker, task } => format!("a {} {}", worker.0, task.0),
        Op::Feedback {
            worker,
            task,
            score,
        } => format!("f {} {} {:016x}", worker.0, task.0, score.to_bits()),
        Op::Answer { worker, task, text } => {
            format!("n {} {} {}", worker.0, task.0, escape(text))
        }
    }
}

fn decode_payload(payload: &str) -> std::result::Result<Op, String> {
    let (tag, rest) = payload
        .split_once(' ')
        .ok_or_else(|| "missing payload tag".to_string())?;
    let parse_id = |s: &str| -> std::result::Result<u32, String> {
        s.parse::<u32>().map_err(|e| format!("bad id {s:?}: {e}"))
    };
    match tag {
        "w" => Ok(Op::AddWorker {
            handle: unescape(rest)?,
        }),
        "t" => Ok(Op::AddTask {
            text: unescape(rest)?,
        }),
        "a" => {
            let (w, t) = rest.split_once(' ').ok_or("assign needs two ids")?;
            Ok(Op::Assign {
                worker: WorkerId(parse_id(w)?),
                task: TaskId(parse_id(t)?),
            })
        }
        "f" => {
            let mut parts = rest.splitn(3, ' ');
            let w = parts.next().ok_or("feedback missing worker")?;
            let t = parts.next().ok_or("feedback missing task")?;
            let bits = parts.next().ok_or("feedback missing score")?;
            let bits = u64::from_str_radix(bits, 16).map_err(|e| format!("bad score bits: {e}"))?;
            Ok(Op::Feedback {
                worker: WorkerId(parse_id(w)?),
                task: TaskId(parse_id(t)?),
                score: f64::from_bits(bits),
            })
        }
        "n" => {
            let mut parts = rest.splitn(3, ' ');
            let w = parts.next().ok_or("answer missing worker")?;
            let t = parts.next().ok_or("answer missing task")?;
            let text = parts.next().ok_or("answer missing text")?;
            Ok(Op::Answer {
                worker: WorkerId(parse_id(w)?),
                task: TaskId(parse_id(t)?),
                text: unescape(text)?,
            })
        }
        other => Err(format!("unknown payload tag {other:?}")),
    }
}

/// Encodes an operation as one checksummed log line (without the trailing
/// newline).
pub fn encode_record(op: &Op) -> String {
    let payload = encode_payload(op);
    format!("{:08x} {payload}", crc32(payload.as_bytes()))
}

/// Decodes one log line: checksummed format first, then the legacy JSON
/// format. Returns a human-readable reason on failure.
pub fn decode_record(line: &str) -> std::result::Result<Op, String> {
    // Checksummed format: 8 hex digits, space, payload.
    if line.len() > 9 && line.as_bytes()[8] == b' ' {
        if let Ok(stored) = u32::from_str_radix(&line[..8], 16) {
            let payload = &line[9..];
            let actual = crc32(payload.as_bytes());
            if stored != actual {
                return Err(format!(
                    "checksum mismatch (stored {stored:08x}, computed {actual:08x})"
                ));
            }
            return decode_payload(payload);
        }
    }
    // Legacy (pre-checksum) JSON record.
    serde_json::from_str::<Op>(line).map_err(|e| format!("unrecognized record: {e}"))
}

// ---------------------------------------------------------------------------
// Recovery
// ---------------------------------------------------------------------------

/// One record that recovery could not apply.
#[derive(Debug, Clone, PartialEq)]
pub struct SkippedRecord {
    /// 1-based line number in the log file.
    pub line: usize,
    /// Why the record was skipped (checksum mismatch, parse failure, or a
    /// store rejection caused by earlier skipped state).
    pub reason: String,
}

/// What [`recover`] managed to salvage from a log.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RecoveryReport {
    /// Records decoded and applied successfully.
    pub applied: usize,
    /// Interior records that failed decoding or application.
    pub skipped: Vec<SkippedRecord>,
    /// `true` when the final record was unparseable — the expected state
    /// after a crash mid-append, not counted as corruption.
    pub torn_tail: bool,
}

impl RecoveryReport {
    /// `true` when every record (bar a torn tail) was applied.
    pub fn is_clean(&self) -> bool {
        self.skipped.is_empty()
    }
}

/// Rebuilds a database from a log, skipping (and reporting) corrupt
/// records instead of giving up.
///
/// Every record that passes its checksum is applied in order; records that
/// fail to decode — or that the store rejects, e.g. an assignment whose
/// `AddWorker` record was itself corrupted — are collected in the
/// [`RecoveryReport`]. An unparseable *final* record is flagged as a torn
/// tail rather than corruption.
pub fn recover(path: impl AsRef<Path>) -> Result<(CrowdDb, RecoveryReport)> {
    // Read raw bytes and split lines by hand: corruption can produce
    // invalid UTF-8, which must surface as one skipped record — not abort
    // the whole salvage the way `BufReader::lines` would.
    let bytes = std::fs::read(path).map_err(|e| StoreError::Snapshot(e.to_string()))?;
    let mut lines = Vec::new();
    for (idx, raw) in bytes.split(|&b| b == b'\n').enumerate() {
        let raw = raw.strip_suffix(b"\r").unwrap_or(raw);
        if !raw.iter().all(|b| b.is_ascii_whitespace()) {
            lines.push((idx + 1, raw));
        }
    }

    let mut db = CrowdDb::new();
    let mut report = RecoveryReport::default();
    let last = lines.len().saturating_sub(1);
    for (i, (lineno, raw)) in lines.iter().enumerate() {
        let decoded = match std::str::from_utf8(raw) {
            Ok(line) => decode_record(line),
            Err(_) => Err("record is not valid UTF-8".to_string()),
        };
        match decoded {
            Ok(op) => match apply(&mut db, &op) {
                Ok(()) => report.applied += 1,
                Err(e) => report.skipped.push(SkippedRecord {
                    line: *lineno,
                    reason: format!("store rejected replayed op: {e}"),
                }),
            },
            Err(reason) if i == last => {
                // Crash mid-append leaves exactly one torn final record.
                let _ = reason;
                report.torn_tail = true;
            }
            Err(reason) => report.skipped.push(SkippedRecord {
                line: *lineno,
                reason,
            }),
        }
    }
    Ok((db, report))
}

/// Rebuilds a database by replaying a log file, strictly.
///
/// A torn *final* record is ignored — that is the expected state after a
/// crash during an append. A malformed record anywhere else is data
/// corruption and errors out; use [`recover`] to salvage what precedes
/// (and follows) it instead.
pub fn replay(path: impl AsRef<Path>) -> Result<CrowdDb> {
    let (db, report) = recover(path)?;
    if let Some(first) = report.skipped.first() {
        return Err(StoreError::Snapshot(format!(
            "corrupt WAL entry at line {}: {}",
            first.line, first.reason
        )));
    }
    Ok(db)
}

// ---------------------------------------------------------------------------
// LoggedDb
// ---------------------------------------------------------------------------

/// Tuning knobs for [`LoggedDb`].
#[derive(Debug, Clone, Default)]
pub struct WalOptions {
    /// Automatically [`LoggedDb::compact`] after this many appended ops.
    /// `None` disables auto-compaction (explicit [`LoggedDb::checkpoint`]
    /// calls still work).
    pub compact_every: Option<usize>,
}

/// Sizes before/after a compaction pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactionStats {
    /// Decodable records in the log before compaction.
    pub before: usize,
    /// Records kept (all structure ops + last feedback/answer per pair).
    pub after: usize,
}

/// A crowd database with write-ahead logging.
///
/// Mutations are appended (and flushed) to the log before touching the
/// in-memory state, so a crash between the two replays cleanly. Opening
/// uses [`recover`] — corrupt interior records are skipped and surfaced
/// via [`LoggedDb::recovery_report`] instead of failing the open.
#[derive(Debug)]
pub struct LoggedDb {
    db: CrowdDb,
    log: BufWriter<File>,
    path: PathBuf,
    options: WalOptions,
    ops_since_compact: usize,
    recovery: RecoveryReport,
    metrics: WalMetrics,
}

/// Pre-resolved metric handles so the append hot path never touches the
/// registry lock (component `wal`).
#[derive(Debug)]
struct WalMetrics {
    records_appended: std::sync::Arc<crowd_obs::Counter>,
    append_seconds: std::sync::Arc<crowd_obs::Histogram>,
    fsync_seconds: std::sync::Arc<crowd_obs::Histogram>,
    compactions: std::sync::Arc<crowd_obs::Counter>,
    compaction_seconds: std::sync::Arc<crowd_obs::Histogram>,
    recovery_skipped: std::sync::Arc<crowd_obs::Counter>,
}

impl WalMetrics {
    fn resolve(obs: &crowd_obs::Obs) -> Self {
        let m = &obs.metrics;
        WalMetrics {
            records_appended: m.counter("wal", "records_appended"),
            append_seconds: m.histogram("wal", "append_seconds"),
            fsync_seconds: m.histogram("wal", "fsync_seconds"),
            compactions: m.counter("wal", "compactions"),
            compaction_seconds: m.histogram("wal", "compaction_seconds"),
            recovery_skipped: m.counter("wal", "recovery_skipped"),
        }
    }
}

impl LoggedDb {
    /// Opens (or creates) a log at `path`, replaying any existing entries.
    pub fn open(path: impl AsRef<Path>) -> Result<Self> {
        LoggedDb::open_with(path, WalOptions::default())
    }

    /// Like [`LoggedDb::open`], with explicit [`WalOptions`].
    pub fn open_with(path: impl AsRef<Path>, options: WalOptions) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        let (db, recovery) = if path.exists() {
            recover(&path)?
        } else {
            (CrowdDb::new(), RecoveryReport::default())
        };
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(|e| StoreError::Snapshot(e.to_string()))?;
        Ok(LoggedDb {
            db,
            log: BufWriter::new(file),
            path,
            options,
            ops_since_compact: 0,
            recovery,
            metrics: WalMetrics::resolve(&crowd_obs::Obs::noop()),
        })
    }

    /// Attaches an observability handle. Append/fsync/compaction timings
    /// and record counts are recorded under the `wal` component from here
    /// on. The recovery skip count from the opening [`recover`] pass is
    /// exported once, at attach time (recovery runs before any handle can
    /// exist) — attach at most one `Obs` per open to avoid double counts.
    pub fn set_obs(&mut self, obs: &crowd_obs::Obs) {
        self.metrics = WalMetrics::resolve(obs);
        self.metrics
            .recovery_skipped
            .add(self.recovery.skipped.len() as u64);
    }

    /// Read access to the database.
    pub fn db(&self) -> &CrowdDb {
        &self.db
    }

    /// Consumes the handle, returning the in-memory database (the log file
    /// stays on disk; reopen it later to continue appending).
    pub fn into_db(self) -> CrowdDb {
        self.db
    }

    /// What the opening recovery pass found (skips, torn tail).
    pub fn recovery_report(&self) -> &RecoveryReport {
        &self.recovery
    }

    /// Registers a worker (logged).
    pub fn add_worker(&mut self, handle: impl Into<String>) -> Result<WorkerId> {
        let handle = handle.into();
        self.append(&Op::AddWorker {
            handle: handle.clone(),
        })?;
        Ok(self.db.add_worker(handle))
    }

    /// Inserts a task (logged).
    pub fn add_task(&mut self, text: impl Into<String>) -> Result<TaskId> {
        let text = text.into();
        self.append(&Op::AddTask { text: text.clone() })?;
        Ok(self.db.add_task(text))
    }

    /// Assigns a task (logged).
    pub fn assign(&mut self, worker: WorkerId, task: TaskId) -> Result<()> {
        // Validate against in-memory state *before* logging: a rejected
        // operation must not pollute the log.
        if !(worker.index() < self.db.num_workers() && task.index() < self.db.num_tasks()) {
            return self.db.assign(worker, task); // yields the right error
        }
        if self.db.is_assigned(worker, task) {
            return Err(StoreError::AlreadyAssigned(worker, task));
        }
        self.append(&Op::Assign { worker, task })?;
        self.db.assign(worker, task)
    }

    /// Records feedback (logged).
    pub fn record_feedback(&mut self, worker: WorkerId, task: TaskId, score: f64) -> Result<()> {
        if !score.is_finite() {
            return Err(StoreError::InvalidScore(score));
        }
        if !self.db.is_assigned(worker, task) {
            return Err(StoreError::NotAssigned(worker, task));
        }
        self.append(&Op::Feedback {
            worker,
            task,
            score,
        })?;
        self.db.record_feedback(worker, task, score)
    }

    /// Records an answer (logged).
    pub fn record_answer(&mut self, worker: WorkerId, task: TaskId, text: &str) -> Result<()> {
        if !self.db.is_assigned(worker, task) {
            return Err(StoreError::NotAssigned(worker, task));
        }
        self.append(&Op::Answer {
            worker,
            task,
            text: text.to_owned(),
        })?;
        self.db.record_answer(worker, task, text)
    }

    /// Flushes buffered log entries to the OS.
    pub fn flush(&mut self) -> Result<()> {
        let started = std::time::Instant::now();
        self.log
            .flush()
            .map_err(|e| StoreError::Snapshot(e.to_string()))?;
        self.metrics
            .fsync_seconds
            .observe_duration(started.elapsed());
        Ok(())
    }

    /// Rewrites the log keeping only live records: every `AddWorker` /
    /// `AddTask` / `Assign`, and only the *last* `Feedback` and `Answer`
    /// per `(worker, task)` pair (earlier ones are dead — the store keeps
    /// latest-wins semantics). Replay cost after compaction is bounded by
    /// live state, not by total history.
    ///
    /// The rewrite goes through a temp file and an atomic rename, so a
    /// crash mid-compaction leaves either the old or the new log intact.
    pub fn compact(&mut self) -> Result<CompactionStats> {
        let started = std::time::Instant::now();
        self.flush()?;
        // Byte-oriented for the same reason as `recover`: a record that is
        // not valid UTF-8 is dead weight to drop, not a fatal read error.
        let bytes = std::fs::read(&self.path).map_err(|e| StoreError::Snapshot(e.to_string()))?;
        let mut ops = Vec::new();
        for raw in bytes.split(|&b| b == b'\n') {
            let raw = raw.strip_suffix(b"\r").unwrap_or(raw);
            if let Ok(line) = std::str::from_utf8(raw) {
                if let Ok(op) = decode_record(line.trim()) {
                    ops.push(op);
                }
            }
        }
        let before = ops.len();
        let kept = compact_ops(ops);
        let after = kept.len();

        let tmp = self.path.with_extension("wal.compact");
        {
            let file = File::create(&tmp).map_err(|e| StoreError::Snapshot(e.to_string()))?;
            let mut w = BufWriter::new(file);
            for op in &kept {
                w.write_all(encode_record(op).as_bytes())
                    .and_then(|()| w.write_all(b"\n"))
                    .map_err(|e| StoreError::Snapshot(e.to_string()))?;
            }
            w.flush().map_err(|e| StoreError::Snapshot(e.to_string()))?;
        }
        std::fs::rename(&tmp, &self.path).map_err(|e| StoreError::Snapshot(e.to_string()))?;
        // The old append handle points at the now-unlinked inode; reopen.
        let file = OpenOptions::new()
            .append(true)
            .open(&self.path)
            .map_err(|e| StoreError::Snapshot(e.to_string()))?;
        self.log = BufWriter::new(file);
        self.ops_since_compact = 0;
        self.metrics.compactions.inc();
        self.metrics
            .compaction_seconds
            .observe_duration(started.elapsed());
        Ok(CompactionStats { before, after })
    }

    /// Durability checkpoint: flush and compact. After a checkpoint the
    /// log *is* the bounded representation of live state, so replay cost
    /// no longer grows with history.
    pub fn checkpoint(&mut self) -> Result<CompactionStats> {
        self.compact()
    }

    fn append(&mut self, op: &Op) -> Result<()> {
        let started = std::time::Instant::now();
        let line = encode_record(op);
        self.log
            .write_all(line.as_bytes())
            .and_then(|()| self.log.write_all(b"\n"))
            .map_err(|e| StoreError::Snapshot(e.to_string()))?;
        self.metrics
            .append_seconds
            .observe_duration(started.elapsed());
        self.flush()?;
        self.metrics.records_appended.inc();
        self.ops_since_compact += 1;
        if let Some(every) = self.options.compact_every {
            if self.ops_since_compact >= every {
                self.compact()?;
            }
        }
        Ok(())
    }
}

/// Keeps all structure ops and the last feedback/answer per pair, in
/// original order.
fn compact_ops(ops: Vec<Op>) -> Vec<Op> {
    use std::collections::HashMap;
    let mut last_feedback: HashMap<(WorkerId, TaskId), usize> = HashMap::new();
    let mut last_answer: HashMap<(WorkerId, TaskId), usize> = HashMap::new();
    for (i, op) in ops.iter().enumerate() {
        match op {
            Op::Feedback { worker, task, .. } => {
                last_feedback.insert((*worker, *task), i);
            }
            Op::Answer { worker, task, .. } => {
                last_answer.insert((*worker, *task), i);
            }
            _ => {}
        }
    }
    ops.into_iter()
        .enumerate()
        .filter(|(i, op)| match op {
            Op::Feedback { worker, task, .. } => last_feedback[&(*worker, *task)] == *i,
            Op::Answer { worker, task, .. } => last_answer[&(*worker, *task)] == *i,
            _ => true,
        })
        .map(|(_, op)| op)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_log(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("crowd_store_wal_tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("{name}_{}.log", std::process::id()));
        std::fs::remove_file(&path).ok();
        path
    }

    fn populate(logged: &mut LoggedDb) {
        let w0 = logged.add_worker("ada").unwrap();
        let w1 = logged.add_worker("carl").unwrap();
        let t0 = logged.add_task("btree page split").unwrap();
        let t1 = logged.add_task("gaussian prior variance").unwrap();
        logged.assign(w0, t0).unwrap();
        logged.assign(w1, t1).unwrap();
        logged.record_feedback(w0, t0, 4.0).unwrap();
        logged.record_feedback(w1, t1, 3.0).unwrap();
        logged.record_answer(w0, t0, "split at the median").unwrap();
    }

    #[test]
    fn checksummed_records_roundtrip() {
        let ops = vec![
            Op::AddWorker { handle: "x".into() },
            Op::AddWorker {
                handle: "weird\nhandle \\ with\rescapes".into(),
            },
            Op::AddTask {
                text: "y z with spaces".into(),
            },
            Op::Assign {
                worker: WorkerId(1),
                task: TaskId(2),
            },
            Op::Feedback {
                worker: WorkerId(1),
                task: TaskId(2),
                score: 2.5,
            },
            Op::Feedback {
                worker: WorkerId(3),
                task: TaskId(4),
                score: -0.125,
            },
            Op::Answer {
                worker: WorkerId(1),
                task: TaskId(2),
                text: "multi word\nanswer".into(),
            },
        ];
        for op in ops {
            let line = encode_record(&op);
            let back = decode_record(&line).unwrap();
            assert_eq!(op, back, "line: {line}");
        }
    }

    #[test]
    fn checksum_detects_a_flipped_byte() {
        let line = encode_record(&Op::AddWorker {
            handle: "ada".into(),
        });
        let mut bytes = line.into_bytes();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        let corrupted = String::from_utf8(bytes).unwrap();
        let err = decode_record(&corrupted).unwrap_err();
        assert!(err.contains("checksum mismatch"), "{err}");
    }

    #[test]
    fn replay_reproduces_the_database() {
        let path = temp_log("replay");
        {
            let mut logged = LoggedDb::open(&path).unwrap();
            populate(&mut logged);
        }
        let replayed = replay(&path).unwrap();
        assert_eq!(replayed.num_workers(), 2);
        assert_eq!(replayed.num_tasks(), 2);
        assert_eq!(replayed.num_resolved(), 2);
        assert_eq!(replayed.feedback(WorkerId(0), TaskId(0)), Some(4.0));
        assert!(replayed.answer(WorkerId(0), TaskId(0)).is_some());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn reopening_continues_the_log() {
        let path = temp_log("reopen");
        {
            let mut logged = LoggedDb::open(&path).unwrap();
            populate(&mut logged);
        }
        {
            let mut logged = LoggedDb::open(&path).unwrap();
            assert_eq!(logged.db().num_workers(), 2, "state recovered");
            assert!(logged.recovery_report().is_clean());
            let w2 = logged.add_worker("newbie").unwrap();
            assert_eq!(w2, WorkerId(2), "ids continue densely");
        }
        let replayed = replay(&path).unwrap();
        assert_eq!(replayed.num_workers(), 3);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_final_line_is_tolerated() {
        let path = temp_log("torn");
        {
            let mut logged = LoggedDb::open(&path).unwrap();
            populate(&mut logged);
        }
        // Simulate a crash mid-append.
        let mut file = OpenOptions::new().append(true).open(&path).unwrap();
        file.write_all(b"deadbeef f 0 0 40").unwrap();
        drop(file);
        let replayed = replay(&path).unwrap();
        assert_eq!(replayed.num_workers(), 2, "intact prefix replays");
        let (_, report) = recover(&path).unwrap();
        assert!(report.torn_tail);
        assert!(report.is_clean(), "a torn tail is not corruption");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corruption_in_the_middle_errors() {
        let path = temp_log("corrupt");
        {
            let mut logged = LoggedDb::open(&path).unwrap();
            populate(&mut logged);
        }
        // Corrupt a middle line.
        let content = std::fs::read_to_string(&path).unwrap();
        let mut lines: Vec<&str> = content.lines().collect();
        lines[1] = "GARBAGE NOT JSON";
        std::fs::write(&path, lines.join("\n")).unwrap();
        let err = replay(&path).unwrap_err();
        assert!(matches!(err, StoreError::Snapshot(_)), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn recover_skips_corrupt_interior_and_reports_it() {
        let path = temp_log("recover_skip");
        {
            let mut logged = LoggedDb::open(&path).unwrap();
            populate(&mut logged);
        }
        // Flip one payload byte of the second record (AddWorker "carl").
        let content = std::fs::read_to_string(&path).unwrap();
        let mut lines: Vec<String> = content.lines().map(String::from).collect();
        let n_lines = lines.len();
        let mut bytes = lines[1].clone().into_bytes();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x04;
        lines[1] = String::from_utf8(bytes).unwrap();
        std::fs::write(&path, lines.join("\n")).unwrap();

        let (db, report) = recover(&path).unwrap();
        // Worker "ada" (line 1) survives; "carl" is lost, and with it the
        // records that depended on the second worker id existing.
        assert_eq!(db.num_workers(), 1);
        assert_eq!(db.feedback(WorkerId(0), TaskId(0)), Some(4.0));
        assert!(!report.is_clean());
        assert_eq!(report.skipped[0].line, 2);
        assert!(
            report.skipped[0].reason.contains("checksum mismatch"),
            "{}",
            report.skipped[0].reason
        );
        assert!(report.applied + report.skipped.len() == n_lines);

        // LoggedDb::open survives the same file and surfaces the report.
        let logged = LoggedDb::open(&path).unwrap();
        assert_eq!(logged.db().num_workers(), 1);
        assert!(!logged.recovery_report().is_clean());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejected_operations_do_not_pollute_the_log() {
        let path = temp_log("reject");
        {
            let mut logged = LoggedDb::open(&path).unwrap();
            let w = logged.add_worker("a").unwrap();
            let t = logged.add_task("x").unwrap();
            logged.assign(w, t).unwrap();
            assert!(logged.assign(w, t).is_err(), "double assign rejected");
            assert!(logged.record_feedback(w, TaskId(99), 1.0).is_err());
            assert!(logged.record_feedback(w, t, f64::NAN).is_err());
            assert!(logged.record_answer(WorkerId(9), t, "hi").is_err());
        }
        // Replay must succeed (no bad entries made it to disk).
        let replayed = replay(&path).unwrap();
        assert_eq!(replayed.num_assignments(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn compaction_drops_dead_records_and_preserves_state() {
        let path = temp_log("compact");
        let mut logged = LoggedDb::open(&path).unwrap();
        let w = logged.add_worker("a").unwrap();
        let t = logged.add_task("some task text").unwrap();
        logged.assign(w, t).unwrap();
        for i in 0..100 {
            logged.record_feedback(w, t, f64::from(i)).unwrap();
            logged.record_answer(w, t, &format!("answer v{i}")).unwrap();
        }
        let stats = logged.compact().unwrap();
        assert_eq!(stats.before, 3 + 200);
        assert_eq!(stats.after, 5, "worker + task + assign + last f/n");

        // The log keeps working after compaction and replays to the same
        // final state.
        logged.record_feedback(w, t, 42.0).unwrap();
        drop(logged);
        let replayed = replay(&path).unwrap();
        assert_eq!(replayed.feedback(w, t), Some(42.0));
        assert!(replayed.answer(w, t).is_some());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn checkpoint_and_auto_compaction_bound_replay_over_10k_ops() {
        let path = temp_log("bounded");
        let mut logged = LoggedDb::open_with(
            &path,
            WalOptions {
                compact_every: Some(512),
            },
        )
        .unwrap();
        let w = logged.add_worker("hot").unwrap();
        let t = logged.add_task("hot task repeatedly rescored").unwrap();
        logged.assign(w, t).unwrap();
        let total_ops = 10_000;
        for i in 0..total_ops {
            logged.record_feedback(w, t, (i % 7) as f64).unwrap();
        }
        logged.checkpoint().unwrap();
        drop(logged);

        // Replay cost is bounded by live state, not by the 10k-op history.
        let content = std::fs::read_to_string(&path).unwrap();
        let lines = content.lines().count();
        assert!(
            lines <= 16,
            "compacted log must stay bounded, found {lines} lines"
        );
        let (db, report) = recover(&path).unwrap();
        assert!(report.is_clean());
        assert!(report.applied <= 16, "replay applied {}", report.applied);
        assert_eq!(db.feedback(w, t), Some(((total_ops - 1) % 7) as f64));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn op_serde_roundtrip() {
        let ops = vec![
            Op::AddWorker { handle: "x".into() },
            Op::AddTask { text: "y z".into() },
            Op::Assign {
                worker: WorkerId(1),
                task: TaskId(2),
            },
            Op::Feedback {
                worker: WorkerId(1),
                task: TaskId(2),
                score: 2.5,
            },
            Op::Answer {
                worker: WorkerId(1),
                task: TaskId(2),
                text: "a".into(),
            },
        ];
        for op in ops {
            let json = serde_json::to_string(&op).unwrap();
            let back: Op = serde_json::from_str(&json).unwrap();
            assert_eq!(op, back);
        }
    }

    #[test]
    fn replay_of_missing_file_errors() {
        assert!(replay("/nonexistent/path/to.log").is_err());
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC-32 check values.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }
}
