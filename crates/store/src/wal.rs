//! Write-ahead logging: a durable, replayable operation log for the
//! crowd database.
//!
//! The in-memory [`CrowdDb`] is the paper's "crowd databases" box; real
//! deployments need it to survive restarts. [`LoggedDb`] writes every
//! mutation as one JSON line to an append-only log *before* applying it
//! (WAL ordering), and [`replay`] rebuilds the database from the log —
//! tolerating a torn final line from a crash mid-append.

use crate::{CrowdDb, Result, StoreError, TaskId, WorkerId};
use serde::{Deserialize, Serialize};
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

/// One logged mutation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Op {
    /// Register a worker.
    AddWorker {
        /// Display handle.
        handle: String,
    },
    /// Insert a task from raw text.
    AddTask {
        /// Task text (re-tokenized on replay).
        text: String,
    },
    /// Assign a task to a worker.
    Assign {
        /// The worker.
        worker: WorkerId,
        /// The task.
        task: TaskId,
    },
    /// Record a feedback score.
    Feedback {
        /// The worker.
        worker: WorkerId,
        /// The task.
        task: TaskId,
        /// The score.
        score: f64,
    },
    /// Record an answer text.
    Answer {
        /// The worker.
        worker: WorkerId,
        /// The task.
        task: TaskId,
        /// Answer text.
        text: String,
    },
}

/// Applies one operation to a database.
pub fn apply(db: &mut CrowdDb, op: &Op) -> Result<()> {
    match op {
        Op::AddWorker { handle } => {
            db.add_worker(handle.clone());
            Ok(())
        }
        Op::AddTask { text } => {
            db.add_task(text.clone());
            Ok(())
        }
        Op::Assign { worker, task } => db.assign(*worker, *task),
        Op::Feedback {
            worker,
            task,
            score,
        } => db.record_feedback(*worker, *task, *score),
        Op::Answer { worker, task, text } => db.record_answer(*worker, *task, text),
    }
}

/// Rebuilds a database by replaying a log file.
///
/// A torn (non-JSON) *final* line is ignored — that is the expected state
/// after a crash during an append. A malformed line anywhere else is data
/// corruption and errors out.
pub fn replay(path: impl AsRef<Path>) -> Result<CrowdDb> {
    let file = File::open(path).map_err(|e| StoreError::Snapshot(e.to_string()))?;
    let reader = BufReader::new(file);
    let mut db = CrowdDb::new();
    let mut pending: Option<(usize, String)> = None;
    for (lineno, line) in reader.lines().enumerate() {
        let line = line.map_err(|e| StoreError::Snapshot(e.to_string()))?;
        if line.trim().is_empty() {
            continue;
        }
        // A previously unparseable line followed by more content means real
        // corruption, not a torn tail.
        if let Some((bad_line, _)) = pending.take() {
            return Err(StoreError::Snapshot(format!(
                "corrupt WAL entry at line {}",
                bad_line + 1
            )));
        }
        match serde_json::from_str::<Op>(&line) {
            Ok(op) => apply(&mut db, &op)?,
            Err(_) => pending = Some((lineno, line)),
        }
    }
    // `pending` here = torn final line → ignored by design.
    Ok(db)
}

/// A crowd database with write-ahead logging.
///
/// Mutations are appended (and flushed) to the log before touching the
/// in-memory state, so a crash between the two replays cleanly.
pub struct LoggedDb {
    db: CrowdDb,
    log: BufWriter<File>,
}

impl LoggedDb {
    /// Opens (or creates) a log at `path`, replaying any existing entries.
    pub fn open(path: impl AsRef<Path>) -> Result<Self> {
        let path = path.as_ref();
        let db = if path.exists() {
            replay(path)?
        } else {
            CrowdDb::new()
        };
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(|e| StoreError::Snapshot(e.to_string()))?;
        Ok(LoggedDb {
            db,
            log: BufWriter::new(file),
        })
    }

    /// Read access to the database.
    pub fn db(&self) -> &CrowdDb {
        &self.db
    }

    /// Registers a worker (logged).
    pub fn add_worker(&mut self, handle: impl Into<String>) -> Result<WorkerId> {
        let handle = handle.into();
        self.append(&Op::AddWorker {
            handle: handle.clone(),
        })?;
        Ok(self.db.add_worker(handle))
    }

    /// Inserts a task (logged).
    pub fn add_task(&mut self, text: impl Into<String>) -> Result<TaskId> {
        let text = text.into();
        self.append(&Op::AddTask { text: text.clone() })?;
        Ok(self.db.add_task(text))
    }

    /// Assigns a task (logged).
    pub fn assign(&mut self, worker: WorkerId, task: TaskId) -> Result<()> {
        // Validate against in-memory state *before* logging: a rejected
        // operation must not pollute the log.
        if !(worker.index() < self.db.num_workers() && task.index() < self.db.num_tasks()) {
            return self.db.assign(worker, task); // yields the right error
        }
        if self.db.is_assigned(worker, task) {
            return Err(StoreError::AlreadyAssigned(worker, task));
        }
        self.append(&Op::Assign { worker, task })?;
        self.db.assign(worker, task)
    }

    /// Records feedback (logged).
    pub fn record_feedback(&mut self, worker: WorkerId, task: TaskId, score: f64) -> Result<()> {
        if !score.is_finite() {
            return Err(StoreError::InvalidScore(score));
        }
        if !self.db.is_assigned(worker, task) {
            return Err(StoreError::NotAssigned(worker, task));
        }
        self.append(&Op::Feedback {
            worker,
            task,
            score,
        })?;
        self.db.record_feedback(worker, task, score)
    }

    /// Records an answer (logged).
    pub fn record_answer(&mut self, worker: WorkerId, task: TaskId, text: &str) -> Result<()> {
        if !self.db.is_assigned(worker, task) {
            return Err(StoreError::NotAssigned(worker, task));
        }
        self.append(&Op::Answer {
            worker,
            task,
            text: text.to_owned(),
        })?;
        self.db.record_answer(worker, task, text)
    }

    /// Flushes buffered log entries to the OS.
    pub fn flush(&mut self) -> Result<()> {
        self.log
            .flush()
            .map_err(|e| StoreError::Snapshot(e.to_string()))
    }

    fn append(&mut self, op: &Op) -> Result<()> {
        let line = serde_json::to_string(op).map_err(|e| StoreError::Snapshot(e.to_string()))?;
        self.log
            .write_all(line.as_bytes())
            .and_then(|()| self.log.write_all(b"\n"))
            .and_then(|()| self.log.flush())
            .map_err(|e| StoreError::Snapshot(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_log(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("crowd_store_wal_tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("{name}_{}.log", std::process::id()));
        std::fs::remove_file(&path).ok();
        path
    }

    fn populate(logged: &mut LoggedDb) {
        let w0 = logged.add_worker("ada").unwrap();
        let w1 = logged.add_worker("carl").unwrap();
        let t0 = logged.add_task("btree page split").unwrap();
        let t1 = logged.add_task("gaussian prior variance").unwrap();
        logged.assign(w0, t0).unwrap();
        logged.assign(w1, t1).unwrap();
        logged.record_feedback(w0, t0, 4.0).unwrap();
        logged.record_feedback(w1, t1, 3.0).unwrap();
        logged.record_answer(w0, t0, "split at the median").unwrap();
    }

    #[test]
    fn replay_reproduces_the_database() {
        let path = temp_log("replay");
        {
            let mut logged = LoggedDb::open(&path).unwrap();
            populate(&mut logged);
        }
        let replayed = replay(&path).unwrap();
        assert_eq!(replayed.num_workers(), 2);
        assert_eq!(replayed.num_tasks(), 2);
        assert_eq!(replayed.num_resolved(), 2);
        assert_eq!(replayed.feedback(WorkerId(0), TaskId(0)), Some(4.0));
        assert!(replayed.answer(WorkerId(0), TaskId(0)).is_some());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn reopening_continues_the_log() {
        let path = temp_log("reopen");
        {
            let mut logged = LoggedDb::open(&path).unwrap();
            populate(&mut logged);
        }
        {
            let mut logged = LoggedDb::open(&path).unwrap();
            assert_eq!(logged.db().num_workers(), 2, "state recovered");
            let w2 = logged.add_worker("newbie").unwrap();
            assert_eq!(w2, WorkerId(2), "ids continue densely");
        }
        let replayed = replay(&path).unwrap();
        assert_eq!(replayed.num_workers(), 3);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_final_line_is_tolerated() {
        let path = temp_log("torn");
        {
            let mut logged = LoggedDb::open(&path).unwrap();
            populate(&mut logged);
        }
        // Simulate a crash mid-append.
        let mut file = OpenOptions::new().append(true).open(&path).unwrap();
        file.write_all(b"{\"Feedback\":{\"worker\":0,\"ta").unwrap();
        drop(file);
        let replayed = replay(&path).unwrap();
        assert_eq!(replayed.num_workers(), 2, "intact prefix replays");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corruption_in_the_middle_errors() {
        let path = temp_log("corrupt");
        {
            let mut logged = LoggedDb::open(&path).unwrap();
            populate(&mut logged);
        }
        // Corrupt a middle line.
        let content = std::fs::read_to_string(&path).unwrap();
        let mut lines: Vec<&str> = content.lines().collect();
        lines[1] = "GARBAGE NOT JSON";
        std::fs::write(&path, lines.join("\n")).unwrap();
        let err = replay(&path).unwrap_err();
        assert!(matches!(err, StoreError::Snapshot(_)), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejected_operations_do_not_pollute_the_log() {
        let path = temp_log("reject");
        {
            let mut logged = LoggedDb::open(&path).unwrap();
            let w = logged.add_worker("a").unwrap();
            let t = logged.add_task("x").unwrap();
            logged.assign(w, t).unwrap();
            assert!(logged.assign(w, t).is_err(), "double assign rejected");
            assert!(logged.record_feedback(w, TaskId(99), 1.0).is_err());
            assert!(logged.record_feedback(w, t, f64::NAN).is_err());
            assert!(logged.record_answer(WorkerId(9), t, "hi").is_err());
        }
        // Replay must succeed (no bad entries made it to disk).
        let replayed = replay(&path).unwrap();
        assert_eq!(replayed.num_assignments(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn op_serde_roundtrip() {
        let ops = vec![
            Op::AddWorker { handle: "x".into() },
            Op::AddTask { text: "y z".into() },
            Op::Assign {
                worker: WorkerId(1),
                task: TaskId(2),
            },
            Op::Feedback {
                worker: WorkerId(1),
                task: TaskId(2),
                score: 2.5,
            },
            Op::Answer {
                worker: WorkerId(1),
                task: TaskId(2),
                text: "a".into(),
            },
        ];
        for op in ops {
            let json = serde_json::to_string(&op).unwrap();
            let back: Op = serde_json::from_str(&json).unwrap();
            assert_eq!(op, back);
        }
    }

    #[test]
    fn replay_of_missing_file_errors() {
        assert!(replay("/nonexistent/path/to.log").is_err());
    }
}
