//! Hash-partitioned store: N shards of the single-writer [`CrowdDb`], each
//! with its own WAL, behind one global id space (DESIGN §11).
//!
//! **Partitioning.** Workers are the sharding axis: a worker's home shard is
//! `splitmix64(global id) % N`, fixed for the lifetime of the deployment
//! ([`ShardMap`]). Every assignment, answer and feedback row for a worker
//! lives in that worker's home shard, so the heavy tables (`A`, `S`) are
//! cut roughly `1/N` per shard and each shard's WAL sees only its own
//! traffic. Tasks are *replicated*: the canonical text and bag of words live
//! in the global registry (against one global [`Vocabulary`]), and a shard
//! receives a lightweight placeholder replica lazily, the first time one of
//! its workers is assigned the task. Placeholders carry empty text, so
//! per-shard vocabularies never diverge from the global one.
//!
//! **Durability.** Each shard reuses the PR 2 WAL machinery verbatim
//! ([`LoggedDb`]: CRC-framed records, skip-and-report recovery, compaction).
//! Global structure that no single shard can reconstruct — the interleaved
//! order of worker/task registration and replica placement — goes to a
//! *manifest log*, CRC-framed with the same codec as WAL lines. Recovery
//! opens every shard independently (corruption in one shard's log is
//! confined to that shard; see [`ShardedDb::open`]), then replays the
//! manifest to rebuild the global↔local id maps, re-appending any trailing
//! structure rows a shard lost to a torn tail.
//!
//! **Determinism.** All scan APIs are shard-count invariant:
//! [`ShardedDb::resolved_tasks`] yields tasks in global [`TaskId`] order
//! with each task's scores sorted by global [`WorkerId`], so a
//! `TrainingSet` built from a sharded store is byte-for-byte the set built
//! from an equivalent unsharded [`CrowdDb`], for every N.

use crate::db::ResolvedTask;
use crate::wal::{crc32, escape, unescape};
use crate::{CrowdDb, LoggedDb, RecoveryReport, Result, StoreError, TaskId, WalOptions, WorkerId};
use crowd_text::{tokenize_filtered, BagOfWords, Vocabulary};
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read as _, Write as _};
use std::path::{Path, PathBuf};

// ---------------------------------------------------------------------------
// Shard map
// ---------------------------------------------------------------------------

/// Fincher/Steele splitmix64 finalizer — a cheap, well-mixed hash so that
/// dense sequential worker ids spread evenly over shards instead of
/// striping.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Deterministic worker → shard placement.
///
/// The map is pure: it owns no state beyond the shard count, so any process
/// that knows `N` computes the same placement — recovery never needs to
/// persist it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardMap {
    num_shards: usize,
}

impl ShardMap {
    /// A map over `num_shards` partitions (clamped to at least 1).
    pub fn new(num_shards: usize) -> Self {
        ShardMap {
            num_shards: num_shards.max(1),
        }
    }

    /// Number of partitions.
    pub fn num_shards(&self) -> usize {
        self.num_shards
    }

    /// Home shard of a worker.
    pub fn shard_of(&self, worker: WorkerId) -> usize {
        (splitmix64(u64::from(worker.0)) % self.num_shards as u64) as usize
    }
}

// ---------------------------------------------------------------------------
// Manifest records
// ---------------------------------------------------------------------------

/// One global-structure event. Shard placement for `Worker` is *derived*
/// (via [`ShardMap`]) rather than stored, so a manifest can never disagree
/// with the map.
#[derive(Debug, Clone, PartialEq, Eq)]
enum ManifestRec {
    /// A worker joined the global roster.
    Worker { handle: String },
    /// A task was registered globally.
    Task { text: String },
    /// Task `task` gained a placeholder replica in `shard`.
    Replica { task: TaskId, shard: usize },
}

fn encode_manifest(rec: &ManifestRec) -> String {
    let payload = match rec {
        ManifestRec::Worker { handle } => format!("W {}", escape(handle)),
        ManifestRec::Task { text } => format!("T {}", escape(text)),
        ManifestRec::Replica { task, shard } => format!("R {} {}", task.0, shard),
    };
    format!("{:08x} {payload}", crc32(payload.as_bytes()))
}

fn decode_manifest(line: &str) -> std::result::Result<ManifestRec, String> {
    let (crc_hex, payload) = line
        .split_once(' ')
        .ok_or_else(|| "missing CRC field".to_string())?;
    if crc_hex.len() != 8 {
        return Err(format!("bad CRC field {crc_hex:?}"));
    }
    let want = u32::from_str_radix(crc_hex, 16).map_err(|e| format!("bad CRC field: {e}"))?;
    let got = crc32(payload.as_bytes());
    if want != got {
        return Err(format!(
            "CRC mismatch: stored {want:08x}, computed {got:08x}"
        ));
    }
    let (tag, rest) = payload.split_once(' ').unwrap_or((payload, ""));
    match tag {
        "W" => Ok(ManifestRec::Worker {
            handle: unescape(rest)?,
        }),
        "T" => Ok(ManifestRec::Task {
            text: unescape(rest)?,
        }),
        "R" => {
            let (t, s) = rest
                .split_once(' ')
                .ok_or_else(|| "replica record needs task and shard".to_string())?;
            let task = t.parse::<u32>().map_err(|e| format!("bad task id: {e}"))?;
            let shard = s.parse::<usize>().map_err(|e| format!("bad shard: {e}"))?;
            Ok(ManifestRec::Replica {
                task: TaskId(task),
                shard,
            })
        }
        other => Err(format!("unknown manifest tag {other:?}")),
    }
}

/// Reads every manifest record. A corrupt *final* record is treated as a
/// torn tail and dropped (the paired shard write may not have landed
/// either); a corrupt interior record is an error — unlike per-shard data,
/// global structure cannot be skipped without corrupting every later id.
fn read_manifest(path: &Path) -> Result<Vec<ManifestRec>> {
    let mut raw = Vec::new();
    match File::open(path) {
        Ok(mut f) => {
            f.read_to_end(&mut raw)
                .map_err(|e| StoreError::Snapshot(format!("manifest read: {e}")))?;
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(StoreError::Snapshot(format!("manifest open: {e}"))),
    }
    let text = String::from_utf8_lossy(&raw);
    let lines: Vec<&str> = text.lines().filter(|l| !l.is_empty()).collect();
    let mut out = Vec::with_capacity(lines.len());
    for (i, line) in lines.iter().enumerate() {
        match decode_manifest(line) {
            Ok(rec) => out.push(rec),
            Err(_) if i + 1 == lines.len() => break, // torn tail
            Err(e) => {
                return Err(StoreError::Snapshot(format!(
                    "manifest record {}: {e}",
                    i + 1
                )))
            }
        }
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// ShardedDb
// ---------------------------------------------------------------------------

/// A shard's storage: plain in-memory for [`ShardedDb::new`], WAL-backed
/// for [`ShardedDb::open`].
#[derive(Debug)]
enum ShardBacking {
    Mem(Box<CrowdDb>),
    Logged(Box<LoggedDb>),
}

impl ShardBacking {
    fn db(&self) -> &CrowdDb {
        match self {
            ShardBacking::Mem(db) => db,
            ShardBacking::Logged(db) => db.db(),
        }
    }

    fn add_worker(&mut self, handle: &str) -> Result<WorkerId> {
        match self {
            ShardBacking::Mem(db) => Ok(db.add_worker(handle)),
            ShardBacking::Logged(db) => db.add_worker(handle),
        }
    }

    fn add_task(&mut self, text: &str) -> Result<TaskId> {
        match self {
            ShardBacking::Mem(db) => Ok(db.add_task(text)),
            ShardBacking::Logged(db) => db.add_task(text),
        }
    }

    fn assign(&mut self, worker: WorkerId, task: TaskId) -> Result<()> {
        match self {
            ShardBacking::Mem(db) => db.assign(worker, task),
            ShardBacking::Logged(db) => db.assign(worker, task),
        }
    }

    fn record_feedback(&mut self, worker: WorkerId, task: TaskId, score: f64) -> Result<()> {
        match self {
            ShardBacking::Mem(db) => db.record_feedback(worker, task, score),
            ShardBacking::Logged(db) => db.record_feedback(worker, task, score),
        }
    }

    fn record_answer(&mut self, worker: WorkerId, task: TaskId, text: &str) -> Result<()> {
        match self {
            ShardBacking::Mem(db) => db.record_answer(worker, task, text),
            ShardBacking::Logged(db) => db.record_answer(worker, task, text),
        }
    }
}

/// A worker's placement: home shard plus its dense id *within* that shard.
#[derive(Debug, Clone, Copy)]
struct WorkerHome {
    shard: usize,
    local: WorkerId,
}

/// A globally-registered task: canonical text/BOW plus the shards holding a
/// placeholder replica, as `(shard, local id)` pairs in creation order.
#[derive(Debug, Clone)]
struct TaskEntry {
    text: String,
    bow: BagOfWords,
    replicas: Vec<(usize, TaskId)>,
}

impl TaskEntry {
    fn replica_in(&self, shard: usize) -> Option<TaskId> {
        self.replicas
            .iter()
            .find(|&&(s, _)| s == shard)
            .map(|&(_, t)| t)
    }
}

/// The one audited usize → u32 narrowing for global dense ids, mirroring
/// [`CrowdDb`]'s: the roster cannot reach 2^32 rows in memory.
fn global_id(n: usize) -> u32 {
    debug_assert!(u32::try_from(n).is_ok(), "global id space exhausted");
    // crowd-lint: allow(no-silent-truncation) -- single audited choke point; debug-asserted, unreachable before memory exhaustion
    n as u32
}

/// N hash-partitioned [`CrowdDb`] shards behind one global id space.
///
/// All public ids are **global**: callers never see shard-local ids. The
/// translation tables live here; scans merge across shards in fixed global
/// order so results are identical for every shard count.
#[derive(Debug)]
pub struct ShardedDb {
    map: ShardMap,
    shards: Vec<ShardBacking>,
    /// Global vocabulary — the only one task text is tokenized against.
    vocab: Vocabulary,
    /// Global worker id → placement.
    workers: Vec<WorkerHome>,
    /// Per shard: local worker index → global id (inverse of `workers`).
    shard_workers: Vec<Vec<WorkerId>>,
    /// Global task id → canonical content + replicas.
    tasks: Vec<TaskEntry>,
    /// Manifest append handle; `None` for in-memory stores.
    manifest: Option<BufWriter<File>>,
    manifest_path: Option<PathBuf>,
}

impl ShardedDb {
    /// An in-memory sharded store (no durability) over `num_shards`
    /// partitions.
    pub fn new(num_shards: usize) -> Self {
        let map = ShardMap::new(num_shards);
        let shards = (0..map.num_shards())
            .map(|_| ShardBacking::Mem(Box::new(CrowdDb::new())))
            .collect();
        ShardedDb {
            shards,
            shard_workers: vec![Vec::new(); map.num_shards()],
            map,
            vocab: Vocabulary::new(),
            workers: Vec::new(),
            tasks: Vec::new(),
            manifest: None,
            manifest_path: None,
        }
    }

    /// Opens (or creates) a WAL-backed sharded store under `dir`, with
    /// default per-shard WAL options.
    ///
    /// Returns the store plus one [`RecoveryReport`] per shard, in shard
    /// order. Shards recover independently: a corrupt record in shard 3's
    /// log costs (at most) records of shard 3, never the other shards.
    pub fn open(dir: impl AsRef<Path>, num_shards: usize) -> Result<(Self, Vec<RecoveryReport>)> {
        ShardedDb::open_with(dir, num_shards, WalOptions::default())
    }

    /// [`ShardedDb::open`] with explicit per-shard [`WalOptions`].
    pub fn open_with(
        dir: impl AsRef<Path>,
        num_shards: usize,
        options: WalOptions,
    ) -> Result<(Self, Vec<RecoveryReport>)> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)
            .map_err(|e| StoreError::Snapshot(format!("create {}: {e}", dir.display())))?;
        let map = ShardMap::new(num_shards);

        // 1. Recover every shard independently (skip-and-report per shard).
        let mut shards = Vec::with_capacity(map.num_shards());
        let mut reports = Vec::with_capacity(map.num_shards());
        for s in 0..map.num_shards() {
            let logged =
                LoggedDb::open_with(dir.join(format!("shard-{s:02}.wal")), options.clone())?;
            reports.push(logged.recovery_report().clone());
            shards.push(ShardBacking::Logged(Box::new(logged)));
        }

        // 2. Replay the manifest to rebuild global structure and the
        //    global↔local id maps. Trailing structure rows a shard lost to
        //    a torn tail are re-appended (self-healing); rows lost to
        //    *interior* corruption shift that shard's later local ids, which
        //    confines the damage to the shard but may misattribute its
        //    post-loss feedback — the conservative trade documented in
        //    DESIGN §11.
        let manifest_path = dir.join("manifest.log");
        let recs = read_manifest(&manifest_path)?;
        let mut shard_task_counts = vec![0usize; map.num_shards()];
        let mut db = ShardedDb {
            shards,
            shard_workers: vec![Vec::new(); map.num_shards()],
            map,
            vocab: Vocabulary::new(),
            workers: Vec::new(),
            tasks: Vec::new(),
            manifest: None,
            manifest_path: Some(manifest_path.clone()),
        };
        for rec in recs {
            match rec {
                ManifestRec::Worker { handle } => {
                    let g = WorkerId(global_id(db.workers.len()));
                    let s = db.map.shard_of(g);
                    let expected = db.shard_workers[s].len();
                    let local = if db.shards[s].db().num_workers() > expected {
                        WorkerId(global_id(expected))
                    } else {
                        db.shards[s].add_worker(&handle)?
                    };
                    db.workers.push(WorkerHome { shard: s, local });
                    db.shard_workers[s].push(g);
                }
                ManifestRec::Task { text } => {
                    db.register_task(text);
                }
                ManifestRec::Replica { task, shard } => {
                    if task.index() >= db.tasks.len() || shard >= db.map.num_shards() {
                        return Err(StoreError::Snapshot(format!(
                            "manifest replica {task:?}@shard {shard} references unknown structure"
                        )));
                    }
                    let expected = shard_task_counts[shard];
                    shard_task_counts[shard] += 1;
                    let local = if db.shards[shard].db().num_tasks() > expected {
                        TaskId(global_id(expected))
                    } else {
                        db.shards[shard].add_task("")?
                    };
                    db.tasks[task.index()].replicas.push((shard, local));
                }
            }
        }

        // 3. Open the manifest for appends.
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&manifest_path)
            .map_err(|e| StoreError::Snapshot(format!("manifest append: {e}")))?;
        db.manifest = Some(BufWriter::new(file));
        Ok((db, reports))
    }

    fn log_manifest(&mut self, rec: &ManifestRec) -> Result<()> {
        if let Some(w) = self.manifest.as_mut() {
            writeln!(w, "{}", encode_manifest(rec))
                .map_err(|e| StoreError::Snapshot(format!("manifest write: {e}")))?;
        }
        Ok(())
    }

    /// Tokenizes against the global vocabulary and registers the task
    /// globally (no shard interaction, no manifest write).
    fn register_task(&mut self, text: String) -> TaskId {
        let id = TaskId(global_id(self.tasks.len()));
        let tokens = tokenize_filtered(&text);
        let bow = BagOfWords::from_tokens(&tokens, &mut self.vocab);
        self.tasks.push(TaskEntry {
            text,
            bow,
            replicas: Vec::new(),
        });
        id
    }

    // ---- mutation ---------------------------------------------------------

    /// Registers a worker; its home shard is fixed by the [`ShardMap`].
    pub fn add_worker(&mut self, handle: impl Into<String>) -> Result<WorkerId> {
        let handle = handle.into();
        let g = WorkerId(global_id(self.workers.len()));
        let s = self.map.shard_of(g);
        self.log_manifest(&ManifestRec::Worker {
            handle: handle.clone(),
        })?;
        let local = self.shards[s].add_worker(&handle)?;
        self.workers.push(WorkerHome { shard: s, local });
        self.shard_workers[s].push(g);
        Ok(g)
    }

    /// Registers a task globally. No shard holds it until a worker is
    /// assigned; then the worker's home shard gets a placeholder replica.
    pub fn add_task(&mut self, text: impl Into<String>) -> Result<TaskId> {
        let text = text.into();
        self.log_manifest(&ManifestRec::Task { text: text.clone() })?;
        Ok(self.register_task(text))
    }

    /// Looks up a worker's placement.
    fn home(&self, worker: WorkerId) -> Result<WorkerHome> {
        self.workers
            .get(worker.index())
            .copied()
            .ok_or(StoreError::UnknownWorker(worker))
    }

    /// Ensures `task` has a replica in `shard`, creating the placeholder
    /// lazily, and returns the local id.
    fn ensure_replica(&mut self, task: TaskId, shard: usize) -> Result<TaskId> {
        let entry = self
            .tasks
            .get(task.index())
            .ok_or(StoreError::UnknownTask(task))?;
        if let Some(local) = entry.replica_in(shard) {
            return Ok(local);
        }
        self.log_manifest(&ManifestRec::Replica { task, shard })?;
        let local = self.shards[shard].add_task("")?;
        self.tasks[task.index()].replicas.push((shard, local));
        Ok(local)
    }

    /// Rewrites shard-local ids in an error back to the caller's global ids.
    fn globalize(err: StoreError, worker: WorkerId, task: TaskId) -> StoreError {
        match err {
            StoreError::AlreadyAssigned(_, _) => StoreError::AlreadyAssigned(worker, task),
            StoreError::NotAssigned(_, _) => StoreError::NotAssigned(worker, task),
            StoreError::UnknownWorker(_) => StoreError::UnknownWorker(worker),
            StoreError::UnknownTask(_) => StoreError::UnknownTask(task),
            other => other,
        }
    }

    /// Assigns `task` to `worker` in the worker's home shard, replicating
    /// the task there first if needed.
    pub fn assign(&mut self, worker: WorkerId, task: TaskId) -> Result<()> {
        let home = self.home(worker)?;
        let local_task = self.ensure_replica(task, home.shard)?;
        self.shards[home.shard]
            .assign(home.local, local_task)
            .map_err(|e| Self::globalize(e, worker, task))
    }

    /// Records feedback for an assigned pair (routed to the home shard).
    pub fn record_feedback(&mut self, worker: WorkerId, task: TaskId, score: f64) -> Result<()> {
        let home = self.home(worker)?;
        let entry = self
            .tasks
            .get(task.index())
            .ok_or(StoreError::UnknownTask(task))?;
        let local_task = entry
            .replica_in(home.shard)
            .ok_or(StoreError::NotAssigned(worker, task))?;
        self.shards[home.shard]
            .record_feedback(home.local, local_task, score)
            .map_err(|e| Self::globalize(e, worker, task))
    }

    /// Records a worker's answer text (routed to the home shard).
    pub fn record_answer(&mut self, worker: WorkerId, task: TaskId, text: &str) -> Result<()> {
        let home = self.home(worker)?;
        let entry = self
            .tasks
            .get(task.index())
            .ok_or(StoreError::UnknownTask(task))?;
        let local_task = entry
            .replica_in(home.shard)
            .ok_or(StoreError::NotAssigned(worker, task))?;
        self.shards[home.shard]
            .record_answer(home.local, local_task, text)
            .map_err(|e| Self::globalize(e, worker, task))
    }

    // ---- retrieval --------------------------------------------------------

    /// Number of partitions.
    pub fn num_shards(&self) -> usize {
        self.map.num_shards()
    }

    /// The shard map (worker → shard placement).
    pub fn shard_map(&self) -> ShardMap {
        self.map
    }

    /// Read access to one shard's database.
    pub fn shard(&self, i: usize) -> &CrowdDb {
        self.shards[i].db()
    }

    /// Number of globally registered workers (`M`).
    pub fn num_workers(&self) -> usize {
        self.workers.len()
    }

    /// Number of globally registered tasks (`N`).
    pub fn num_tasks(&self) -> usize {
        self.tasks.len()
    }

    /// Total assignments across all shards.
    pub fn num_assignments(&self) -> usize {
        self.shards.iter().map(|s| s.db().num_assignments()).sum()
    }

    /// Total resolved assignments across all shards.
    pub fn num_resolved(&self) -> usize {
        self.shards.iter().map(|s| s.db().num_resolved()).sum()
    }

    /// All global worker ids, in registration order.
    pub fn worker_ids(&self) -> impl Iterator<Item = WorkerId> + '_ {
        (0..global_id(self.workers.len())).map(WorkerId)
    }

    /// The global vocabulary every task's bag of words addresses.
    pub fn vocab(&self) -> &Vocabulary {
        &self.vocab
    }

    /// A task's canonical text.
    pub fn task_text(&self, task: TaskId) -> Result<&str> {
        self.tasks
            .get(task.index())
            .map(|t| t.text.as_str())
            .ok_or(StoreError::UnknownTask(task))
    }

    /// A task's canonical bag of words (global term ids).
    pub fn task_bow(&self, task: TaskId) -> Result<&BagOfWords> {
        self.tasks
            .get(task.index())
            .map(|t| &t.bow)
            .ok_or(StoreError::UnknownTask(task))
    }

    /// The feedback score for a pair, if assigned and resolved.
    pub fn feedback(&self, worker: WorkerId, task: TaskId) -> Option<f64> {
        let home = self.home(worker).ok()?;
        let local_task = self.tasks.get(task.index())?.replica_in(home.shard)?;
        self.shards[home.shard]
            .db()
            .feedback(home.local, local_task)
    }

    /// `true` if the pair is assigned.
    pub fn is_assigned(&self, worker: WorkerId, task: TaskId) -> bool {
        let Ok(home) = self.home(worker) else {
            return false;
        };
        let Some(local_task) = self
            .tasks
            .get(task.index())
            .and_then(|t| t.replica_in(home.shard))
        else {
            return false;
        };
        self.shards[home.shard]
            .db()
            .is_assigned(home.local, local_task)
    }

    /// The cross-shard training view: every task with at least one scored
    /// assignment anywhere.
    ///
    /// Deterministic and shard-count invariant by construction — tasks in
    /// global [`TaskId`] order, each task's scores merged over its replica
    /// shards and **sorted by global [`WorkerId`]**. Bags of words come from
    /// the global registry (placeholder replicas are never consulted for
    /// content).
    // crowd-lint: root(det)
    pub fn resolved_tasks(&self) -> Vec<ResolvedTask> {
        let mut out = Vec::new();
        for (t, entry) in self.tasks.iter().enumerate() {
            let mut scores: Vec<(WorkerId, f64)> = Vec::new();
            for &(s, local_task) in &entry.replicas {
                let shard = self.shards[s].db();
                scores.extend(shard.workers_of(local_task).filter_map(|(lw, score)| {
                    score.map(|sc| (self.shard_workers[s][lw.index()], sc))
                }));
            }
            if scores.is_empty() {
                continue;
            }
            scores.sort_by_key(|&(w, _)| w);
            out.push(ResolvedTask {
                task: TaskId(global_id(t)),
                bow: entry.bow.clone(),
                scores,
            });
        }
        out
    }

    // ---- durability -------------------------------------------------------

    /// Flushes the manifest and every shard WAL to the OS.
    pub fn flush(&mut self) -> Result<()> {
        if let Some(w) = self.manifest.as_mut() {
            w.flush()
                .map_err(|e| StoreError::Snapshot(format!("manifest flush: {e}")))?;
        }
        for shard in &mut self.shards {
            if let ShardBacking::Logged(db) = shard {
                db.flush()?;
            }
        }
        Ok(())
    }

    /// Compacts every shard's WAL; returns per-shard stats (empty for
    /// in-memory stores). The manifest is pure structure and stays as-is.
    pub fn compact(&mut self) -> Result<Vec<crate::CompactionStats>> {
        let mut out = Vec::new();
        for shard in &mut self.shards {
            if let ShardBacking::Logged(db) = shard {
                out.push(db.compact()?);
            }
        }
        Ok(out)
    }

    /// The manifest path, if WAL-backed.
    pub fn manifest_path(&self) -> Option<&Path> {
        self.manifest_path.as_deref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join("crowd_store_sharded_tests")
            .join(format!("{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    /// A small but non-trivial workload: w workers, t tasks, each worker
    /// scores a deterministic spread of tasks.
    fn populate(db: &mut ShardedDb, num_workers: usize, num_tasks: usize) {
        let workers: Vec<WorkerId> = (0..num_workers)
            .map(|i| db.add_worker(format!("w{i}")).unwrap())
            .collect();
        let tasks: Vec<TaskId> = (0..num_tasks)
            .map(|j| {
                db.add_task(format!("task number {j} btree split merge"))
                    .unwrap()
            })
            .collect();
        for (i, &w) in workers.iter().enumerate() {
            for k in 0..3usize {
                let t = tasks[(i * 7 + k * 3) % num_tasks];
                if !db.is_assigned(w, t) {
                    db.assign(w, t).unwrap();
                    db.record_feedback(w, t, ((i + k) % 5) as f64).unwrap();
                }
            }
        }
    }

    #[test]
    fn shard_map_is_deterministic_and_covers_all_shards() {
        let map = ShardMap::new(8);
        for w in 0..100u32 {
            assert_eq!(map.shard_of(WorkerId(w)), map.shard_of(WorkerId(w)));
            assert!(map.shard_of(WorkerId(w)) < 8);
        }
        // splitmix64 over 1000 dense ids should touch every one of 8 shards.
        let mut seen = [false; 8];
        for w in 0..1000u32 {
            seen[map.shard_of(WorkerId(w))] = true;
        }
        assert!(seen.iter().all(|&s| s), "some shard never used: {seen:?}");
        // Zero clamps to one shard.
        assert_eq!(ShardMap::new(0).num_shards(), 1);
    }

    #[test]
    fn resolved_view_is_shard_count_invariant() {
        let reference = {
            let mut db = ShardedDb::new(1);
            populate(&mut db, 40, 13);
            db.resolved_tasks()
        };
        for n in [2usize, 3, 8] {
            let mut db = ShardedDb::new(n);
            populate(&mut db, 40, 13);
            let got = db.resolved_tasks();
            assert_eq!(reference.len(), got.len(), "n={n}: task count");
            for (a, b) in reference.iter().zip(&got) {
                assert_eq!(a.task, b.task, "n={n}");
                assert_eq!(a.scores, b.scores, "n={n}: scores of {:?}", a.task);
                let aw: Vec<_> = a.bow.iter().collect();
                let bw: Vec<_> = b.bow.iter().collect();
                assert_eq!(aw, bw, "n={n}: bow of {:?}", a.task);
            }
        }
    }

    #[test]
    fn heavy_tables_are_partitioned_not_replicated() {
        let mut db = ShardedDb::new(4);
        populate(&mut db, 40, 13);
        let total: usize = (0..4).map(|s| db.shard(s).num_assignments()).sum();
        assert_eq!(
            total,
            db.num_assignments(),
            "assignments live in exactly one shard"
        );
        // No shard holds everything (hash placement spreads 40 workers).
        for s in 0..4 {
            assert!(
                db.shard(s).num_assignments() < total,
                "shard {s} holds all assignments"
            );
        }
    }

    #[test]
    fn errors_carry_global_ids() {
        let mut db = ShardedDb::new(4);
        let w = db.add_worker("w0").unwrap();
        let t = db.add_task("a task").unwrap();
        assert_eq!(
            db.record_feedback(w, t, 1.0),
            Err(StoreError::NotAssigned(w, t))
        );
        db.assign(w, t).unwrap();
        assert_eq!(db.assign(w, t), Err(StoreError::AlreadyAssigned(w, t)));
        assert_eq!(
            db.assign(WorkerId(99), t),
            Err(StoreError::UnknownWorker(WorkerId(99)))
        );
        assert_eq!(
            db.assign(w, TaskId(99)),
            Err(StoreError::UnknownTask(TaskId(99)))
        );
        assert_eq!(db.feedback(w, t), None);
        db.record_feedback(w, t, 4.0).unwrap();
        assert_eq!(db.feedback(w, t), Some(4.0));
    }

    #[test]
    fn replicas_are_lazy() {
        let mut db = ShardedDb::new(4);
        let _w = db.add_worker("w0").unwrap();
        let _t = db.add_task("some text").unwrap();
        let held: usize = (0..4).map(|s| db.shard(s).num_tasks()).sum();
        assert_eq!(held, 0, "no replica before first assignment");
        db.assign(WorkerId(0), TaskId(0)).unwrap();
        let held: usize = (0..4).map(|s| db.shard(s).num_tasks()).sum();
        assert_eq!(held, 1, "exactly the home shard replica");
    }

    #[test]
    fn durable_roundtrip_recovers_identically() {
        let dir = temp_dir("roundtrip");
        let before = {
            let (mut db, reports) = ShardedDb::open(&dir, 4).unwrap();
            assert!(reports.iter().all(|r| r.is_clean()));
            populate(&mut db, 40, 13);
            db.flush().unwrap();
            db.resolved_tasks()
        };
        let (db, reports) = ShardedDb::open(&dir, 4).unwrap();
        assert_eq!(reports.len(), 4);
        assert!(reports.iter().all(|r| r.is_clean()), "{reports:?}");
        assert_eq!(db.num_workers(), 40);
        assert_eq!(db.num_tasks(), 13);
        let after = db.resolved_tasks();
        assert_eq!(before.len(), after.len());
        for (a, b) in before.iter().zip(&after) {
            assert_eq!(a.task, b.task);
            assert_eq!(a.scores, b.scores);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corruption_in_one_shard_is_confined_to_that_shard() {
        let dir = temp_dir("confined");
        {
            let (mut db, _) = ShardedDb::open(&dir, 4).unwrap();
            populate(&mut db, 40, 13);
            db.flush().unwrap();
        }
        // Flip bytes inside one feedback record of shard 2's log.
        let victim = dir.join("shard-02.wal");
        let mut raw = std::fs::read(&victim).unwrap();
        let text = String::from_utf8(raw.clone()).unwrap();
        let target = text
            .lines()
            .enumerate()
            .filter(|(_, l)| l.split(' ').nth(1) == Some("f"))
            .map(|(i, _)| i)
            .next()
            .expect("shard 2 has at least one feedback record");
        let offset: usize = text.lines().take(target).map(|l| l.len() + 1).sum();
        raw[offset] ^= 0xFF;
        std::fs::write(&victim, &raw).unwrap();

        let (db, reports) = ShardedDb::open(&dir, 4).unwrap();
        assert_eq!(reports[2].skipped.len(), 1, "{:?}", reports[2]);
        for (s, r) in reports.iter().enumerate() {
            if s != 2 {
                assert!(r.is_clean(), "shard {s} must be untouched: {r:?}");
            }
        }
        // Exactly one score lost, everything else intact.
        let total: usize = db.resolved_tasks().iter().map(|t| t.scores.len()).sum();
        let expected: usize = {
            let mut reference = ShardedDb::new(4);
            populate(&mut reference, 40, 13);
            reference
                .resolved_tasks()
                .iter()
                .map(|t| t.scores.len())
                .sum()
        };
        assert_eq!(total, expected - 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_manifest_tail_is_dropped() {
        let dir = temp_dir("torn-manifest");
        {
            let (mut db, _) = ShardedDb::open(&dir, 2).unwrap();
            db.add_worker("w0").unwrap();
            db.add_worker("w1").unwrap();
            db.flush().unwrap();
        }
        // Truncate the manifest mid-record.
        let path = dir.join("manifest.log");
        let raw = std::fs::read(&path).unwrap();
        std::fs::write(&path, &raw[..raw.len() - 3]).unwrap();
        let (db, _) = ShardedDb::open(&dir, 2).unwrap();
        assert_eq!(db.num_workers(), 1, "torn tail record dropped");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn manifest_self_heals_missing_trailing_shard_rows() {
        let dir = temp_dir("self-heal");
        {
            let (mut db, _) = ShardedDb::open(&dir, 2).unwrap();
            for i in 0..6 {
                db.add_worker(format!("w{i}")).unwrap();
            }
            db.flush().unwrap();
        }
        // Simulate a crash where a shard WAL lost its tail but the manifest
        // survived: truncate one shard's log by one record.
        let victim = dir.join("shard-00.wal");
        let text = std::fs::read_to_string(&victim).unwrap();
        let mut lines: Vec<&str> = text.lines().collect();
        assert!(!lines.is_empty());
        lines.pop();
        std::fs::write(&victim, format!("{}\n", lines.join("\n"))).unwrap();

        let (db, _) = ShardedDb::open(&dir, 2).unwrap();
        assert_eq!(db.num_workers(), 6, "manifest re-appends the lost row");
        for s in 0..2 {
            assert_eq!(
                db.shard(s).num_workers(),
                db.shard_workers_len(s),
                "shard {s} roster matches the map"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    impl ShardedDb {
        fn shard_workers_len(&self, s: usize) -> usize {
            self.shard_workers[s].len()
        }
    }
}
