//! Assignment + feedback entries (the paper's tables `A` and `S`).

use crate::{TaskId, WorkerId};
use serde::{Deserialize, Serialize};

/// One `(worker, task)` assignment with its answer and feedback state.
///
/// The paper treats `A` (assignment) and `S` (score) as separate matrices;
/// operationally a score only exists where an assignment does, so the store
/// keeps one entry per assigned pair and models the not-yet-scored state with
/// `Option`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Feedback {
    /// The worker the task was assigned to.
    pub worker: WorkerId,
    /// The assigned task.
    pub task: TaskId,
    /// Feedback score `s_ij`, if the job has been evaluated.
    ///
    /// Semantics depend on the platform: thumbs-up count (Quora / Stack
    /// Overflow) or best-answer / Jaccard similarity in `[0, 1]` (Yahoo!).
    pub score: Option<f64>,
    /// Logical time of the assignment.
    pub assigned_at: u64,
}

impl Feedback {
    /// `true` once a feedback score has been recorded.
    pub fn is_resolved(&self) -> bool {
        self.score.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolution_state() {
        let mut f = Feedback {
            worker: WorkerId(0),
            task: TaskId(0),
            score: None,
            assigned_at: 0,
        };
        assert!(!f.is_resolved());
        f.score = Some(3.0);
        assert!(f.is_resolved());
    }
}
