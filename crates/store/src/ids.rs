//! Dense identifiers for workers and tasks.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a worker (`w_i` in the paper). Dense: assigned 0, 1, 2, …
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct WorkerId(pub u32);

/// Identifier of a crowdsourced task (`t_j` in the paper). Dense.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TaskId(pub u32);

impl WorkerId {
    /// The id as a usable index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl TaskId {
    /// The id as a usable index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for WorkerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "w{}", self.0)
    }
}

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(WorkerId(3).to_string(), "w3");
        assert_eq!(TaskId(7).to_string(), "t7");
    }

    #[test]
    fn ids_order_by_value() {
        assert!(WorkerId(1) < WorkerId(2));
        assert!(TaskId(0) < TaskId(10));
    }

    #[test]
    fn index_roundtrip() {
        assert_eq!(WorkerId(42).index(), 42);
        assert_eq!(TaskId(42).index(), 42);
    }
}
