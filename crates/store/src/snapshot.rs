//! JSON snapshots of the crowd database.
//!
//! Snapshots make generated datasets reproducible artefacts: an experiment
//! can persist the exact `(T, A, S)` triple it trained on and reload it
//! later. Tuple-keyed maps are flattened to entry lists because JSON objects
//! require string keys.

use crate::{CrowdDb, Feedback, Result, StoreError, TaskId, TaskRecord, WorkerId, WorkerRecord};
use crowd_text::{BagOfWords, Vocabulary};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::path::Path;

/// Flat, serde-friendly image of a [`CrowdDb`].
#[derive(Debug, Serialize, Deserialize)]
pub struct Snapshot {
    vocab: Vocabulary,
    workers: Vec<WorkerRecord>,
    tasks: Vec<TaskRecord>,
    entries: Vec<Feedback>,
    answers: Vec<(WorkerId, TaskId, BagOfWords)>,
    clock: u64,
}

impl Snapshot {
    /// Captures the current state of `db`.
    pub fn capture(db: &CrowdDb) -> Self {
        let mut answers: Vec<(WorkerId, TaskId, BagOfWords)> = db
            .answers_map()
            .iter()
            .map(|(&(w, t), bag)| (w, t, bag.clone()))
            .collect();
        answers.sort_unstable_by_key(|&(w, t, _)| (w, t));
        Snapshot {
            vocab: db.vocab().clone(),
            // `worker_ids`/`task_ids` enumerate the same maps the getters
            // read, so every id resolves; `filter_map` keeps capture total.
            workers: db
                .worker_ids()
                .filter_map(|w| db.worker(w).ok().cloned())
                .collect(),
            tasks: db
                .task_ids()
                .filter_map(|t| db.task(t).ok().cloned())
                .collect(),
            entries: db.entries().to_vec(),
            answers,
            clock: db.clock(),
        }
    }

    /// Rebuilds a database (indexes are reconstructed).
    pub fn restore(mut self) -> CrowdDb {
        self.vocab.rebuild_index();
        let answers: HashMap<(WorkerId, TaskId), BagOfWords> = self
            .answers
            .into_iter()
            .map(|(w, t, bag)| ((w, t), bag))
            .collect();
        CrowdDb::restore(
            self.vocab,
            self.workers,
            self.tasks,
            self.entries,
            answers,
            self.clock,
        )
    }

    /// Serializes to a JSON string.
    pub fn to_json(&self) -> Result<String> {
        serde_json::to_string(self).map_err(|e| StoreError::Snapshot(e.to_string()))
    }

    /// Parses from a JSON string.
    pub fn from_json(json: &str) -> Result<Self> {
        serde_json::from_str(json).map_err(|e| StoreError::Snapshot(e.to_string()))
    }

    /// Writes the snapshot to a file.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<()> {
        let json = self.to_json()?;
        std::fs::write(path, json).map_err(|e| StoreError::Snapshot(e.to_string()))
    }

    /// Reads a snapshot from a file.
    pub fn load(path: impl AsRef<Path>) -> Result<Self> {
        let json =
            std::fs::read_to_string(path).map_err(|e| StoreError::Snapshot(e.to_string()))?;
        Snapshot::from_json(&json)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn populated_db() -> CrowdDb {
        let mut db = CrowdDb::new();
        let w0 = db.add_worker("alice");
        let w1 = db.add_worker("bob");
        let t0 = db.add_task("b+ tree vs b tree");
        let t1 = db.add_task("variational inference basics");
        db.assign(w0, t0).unwrap();
        db.assign(w1, t0).unwrap();
        db.assign(w0, t1).unwrap();
        db.record_feedback(w0, t0, 4.0).unwrap();
        db.record_answer(w1, t0, "prefer b+ trees for range queries")
            .unwrap();
        db
    }

    #[test]
    fn json_roundtrip_preserves_everything() {
        let db = populated_db();
        let snap = Snapshot::capture(&db);
        let json = snap.to_json().unwrap();
        let restored = Snapshot::from_json(&json).unwrap().restore();

        assert_eq!(restored.num_workers(), db.num_workers());
        assert_eq!(restored.num_tasks(), db.num_tasks());
        assert_eq!(restored.num_assignments(), db.num_assignments());
        assert_eq!(restored.num_resolved(), db.num_resolved());
        assert_eq!(restored.clock(), db.clock());
        assert_eq!(
            restored.feedback(WorkerId(0), TaskId(0)),
            db.feedback(WorkerId(0), TaskId(0))
        );
        assert_eq!(
            restored.answer(WorkerId(1), TaskId(0)),
            db.answer(WorkerId(1), TaskId(0))
        );
        // Vocabulary index is rebuilt: interning an existing word resolves.
        assert_eq!(restored.vocab().get("tree"), db.vocab().get("tree"));
    }

    #[test]
    fn restored_db_accepts_new_writes() {
        let db = populated_db();
        let mut restored = Snapshot::capture(&db).restore();
        let w = restored.add_worker("carol");
        let t = restored.add_task("brand new question");
        restored.assign(w, t).unwrap();
        restored.record_feedback(w, t, 2.0).unwrap();
        assert_eq!(restored.feedback(w, t), Some(2.0));
    }

    #[test]
    fn file_roundtrip() {
        let db = populated_db();
        let dir = std::env::temp_dir().join("crowd_store_snapshot_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.json");
        Snapshot::capture(&db).save(&path).unwrap();
        let back = Snapshot::load(&path).unwrap().restore();
        assert_eq!(back.num_tasks(), db.num_tasks());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn malformed_json_is_an_error() {
        assert!(matches!(
            Snapshot::from_json("{not json"),
            Err(StoreError::Snapshot(_))
        ));
    }
}
