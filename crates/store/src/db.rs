//! The crowd database: tasks, workers, assignments, feedback and indexes.

use crate::{Feedback, Result, StoreError, TaskId, TaskRecord, WorkerId, WorkerRecord};
use crowd_text::{tokenize_filtered, BagOfWords, Vocabulary};
use std::collections::HashMap;

/// A resolved task: its bag of words plus every scored `(worker, score)` job.
///
/// This is the training-triple view `(T, A, S)` the paper's inference
/// consumes (Section 4.2: "We build a bayesian model based on resolved
/// crowdsourced task `(T, A, S)`").
#[derive(Debug, Clone)]
pub struct ResolvedTask {
    /// The task id.
    pub task: TaskId,
    /// Bag-of-vocabularies of the task.
    pub bow: BagOfWords,
    /// All scored assignments for this task.
    pub scores: Vec<(WorkerId, f64)>,
}

/// In-memory crowdsourcing database with secondary indexes.
///
/// Single-writer; wrap in [`crate::SharedCrowdDb`] for concurrent access.
/// All mutation paths are incremental — inserting a new worker, task,
/// assignment or score is O(1) amortized, which is what lets the crowd
/// manager operate on a live stream of tasks (paper Section 6).
#[derive(Debug, Default)]
pub struct CrowdDb {
    vocab: Vocabulary,
    workers: Vec<WorkerRecord>,
    tasks: Vec<TaskRecord>,
    entries: Vec<Feedback>,
    /// task index → indexes into `entries`.
    by_task: Vec<Vec<u32>>,
    /// worker index → indexes into `entries`.
    by_worker: Vec<Vec<u32>>,
    /// `(worker, task)` → index into `entries`.
    pair_index: HashMap<(WorkerId, TaskId), u32>,
    /// Answer bags per `(worker, task)` — used to derive Jaccard feedback.
    answers: HashMap<(WorkerId, TaskId), BagOfWords>,
    /// Inverted index: term index → tasks containing the term.
    postings: Vec<Vec<TaskId>>,
    /// Logical clock, bumped on every mutation.
    clock: u64,
}

/// The one audited usize → u32 narrowing for dense ids and entry indexes.
///
/// An in-memory roster/log cannot reach 2^32 rows before exhausting memory,
/// and saturating would mint duplicate ids, so the wrap stays (asserted in
/// debug builds) rather than being silently "handled".
fn dense_id(n: usize) -> u32 {
    debug_assert!(u32::try_from(n).is_ok(), "dense id space exhausted");
    // crowd-lint: allow(no-silent-truncation) -- single audited choke point; debug-asserted, unreachable before memory exhaustion
    n as u32
}

impl CrowdDb {
    /// Creates an empty database.
    pub fn new() -> Self {
        CrowdDb::default()
    }

    // ---- roster -----------------------------------------------------------

    /// Registers a worker and returns its dense id.
    pub fn add_worker(&mut self, handle: impl Into<String>) -> WorkerId {
        let id = WorkerId(dense_id(self.workers.len()));
        self.clock += 1;
        self.workers.push(WorkerRecord {
            handle: handle.into(),
            joined_at: self.clock,
        });
        self.by_worker.push(Vec::new());
        id
    }

    /// Inserts a task from raw text (tokenized + stopword-filtered).
    pub fn add_task(&mut self, text: impl Into<String>) -> TaskId {
        let text = text.into();
        let tokens = tokenize_filtered(&text);
        let bow = BagOfWords::from_tokens(&tokens, &mut self.vocab);
        self.add_task_raw(text, bow)
    }

    /// Inserts a task whose bag of words was built by the caller.
    ///
    /// Generators that intern terms directly through [`CrowdDb::vocab_mut`]
    /// use this to skip re-tokenization. The caller must have built `bow`
    /// against this database's vocabulary.
    pub fn add_task_raw(&mut self, text: String, bow: BagOfWords) -> TaskId {
        let id = TaskId(dense_id(self.tasks.len()));
        self.clock += 1;
        for (term, _) in bow.iter() {
            let idx = term.index();
            if idx >= self.postings.len() {
                self.postings.resize(idx + 1, Vec::new());
            }
            self.postings[idx].push(id);
        }
        self.tasks.push(TaskRecord {
            text,
            bow,
            created_at: self.clock,
        });
        self.by_task.push(Vec::new());
        id
    }

    // ---- assignment & feedback -------------------------------------------

    /// Assigns `task` to `worker` (paper table `A`, entry `a_ij = 1`).
    pub fn assign(&mut self, worker: WorkerId, task: TaskId) -> Result<()> {
        self.check_worker(worker)?;
        self.check_task(task)?;
        if self.pair_index.contains_key(&(worker, task)) {
            return Err(StoreError::AlreadyAssigned(worker, task));
        }
        self.clock += 1;
        let idx = dense_id(self.entries.len());
        self.entries.push(Feedback {
            worker,
            task,
            score: None,
            assigned_at: self.clock,
        });
        self.by_task[task.index()].push(idx);
        self.by_worker[worker.index()].push(idx);
        self.pair_index.insert((worker, task), idx);
        Ok(())
    }

    /// Stores the worker's answer text for a task (enables Jaccard-style
    /// feedback derivation à la Yahoo! Answers).
    pub fn record_answer(
        &mut self,
        worker: WorkerId,
        task: TaskId,
        answer_text: &str,
    ) -> Result<()> {
        self.require_assigned(worker, task)?;
        let tokens = tokenize_filtered(answer_text);
        let bow = BagOfWords::from_tokens(&tokens, &mut self.vocab);
        self.answers.insert((worker, task), bow);
        Ok(())
    }

    /// Stores a pre-tokenized answer bag.
    pub fn record_answer_bow(
        &mut self,
        worker: WorkerId,
        task: TaskId,
        bow: BagOfWords,
    ) -> Result<()> {
        self.require_assigned(worker, task)?;
        self.answers.insert((worker, task), bow);
        Ok(())
    }

    /// Records feedback `s_ij` for an assigned pair (paper table `S`).
    ///
    /// Overwrites any previous score: feedback on real platforms is mutable
    /// (vote counts grow), and the inference engine always reads the latest
    /// snapshot.
    pub fn record_feedback(&mut self, worker: WorkerId, task: TaskId, score: f64) -> Result<()> {
        if !score.is_finite() {
            return Err(StoreError::InvalidScore(score));
        }
        let idx = self.require_assigned(worker, task)?;
        self.clock += 1;
        self.entries[idx as usize].score = Some(score);
        Ok(())
    }

    // ---- retrieval ---------------------------------------------------------

    /// Number of registered workers (`M`).
    pub fn num_workers(&self) -> usize {
        self.workers.len()
    }

    /// Number of stored tasks (`N`).
    pub fn num_tasks(&self) -> usize {
        self.tasks.len()
    }

    /// Number of assignments (nonzeros of `A`).
    pub fn num_assignments(&self) -> usize {
        self.entries.len()
    }

    /// Number of assignments that carry a feedback score.
    pub fn num_resolved(&self) -> usize {
        self.entries.iter().filter(|e| e.is_resolved()).count()
    }

    /// The worker record, if registered.
    pub fn worker(&self, id: WorkerId) -> Result<&WorkerRecord> {
        self.workers
            .get(id.index())
            .ok_or(StoreError::UnknownWorker(id))
    }

    /// The task record, if stored.
    pub fn task(&self, id: TaskId) -> Result<&TaskRecord> {
        self.tasks
            .get(id.index())
            .ok_or(StoreError::UnknownTask(id))
    }

    /// The feedback score for a pair, if assigned and resolved.
    pub fn feedback(&self, worker: WorkerId, task: TaskId) -> Option<f64> {
        self.pair_index
            .get(&(worker, task))
            .and_then(|&i| self.entries[i as usize].score)
    }

    /// `true` if the pair is assigned.
    pub fn is_assigned(&self, worker: WorkerId, task: TaskId) -> bool {
        self.pair_index.contains_key(&(worker, task))
    }

    /// The stored answer bag for a pair, if any.
    pub fn answer(&self, worker: WorkerId, task: TaskId) -> Option<&BagOfWords> {
        self.answers.get(&(worker, task))
    }

    /// Iterates this worker's assignments as `(TaskId, Option<score>)`.
    pub fn tasks_of(&self, worker: WorkerId) -> impl Iterator<Item = (TaskId, Option<f64>)> + '_ {
        self.by_worker
            .get(worker.index())
            .into_iter()
            .flatten()
            .map(|&i| {
                let e = &self.entries[i as usize];
                (e.task, e.score)
            })
    }

    /// Iterates a task's assignments as `(WorkerId, Option<score>)`.
    pub fn workers_of(&self, task: TaskId) -> impl Iterator<Item = (WorkerId, Option<f64>)> + '_ {
        self.by_task
            .get(task.index())
            .into_iter()
            .flatten()
            .map(|&i| {
                let e = &self.entries[i as usize];
                (e.worker, e.score)
            })
    }

    /// Number of *resolved* tasks this worker has participated in.
    pub fn worker_task_count(&self, worker: WorkerId) -> usize {
        self.by_worker
            .get(worker.index())
            .map(|v| {
                v.iter()
                    .filter(|&&i| self.entries[i as usize].is_resolved())
                    .count()
            })
            .unwrap_or(0)
    }

    /// All worker ids, in insertion order.
    pub fn worker_ids(&self) -> impl Iterator<Item = WorkerId> + '_ {
        (0..dense_id(self.workers.len())).map(WorkerId)
    }

    /// All task ids, in insertion order.
    pub fn task_ids(&self) -> impl Iterator<Item = TaskId> + '_ {
        (0..dense_id(self.tasks.len())).map(TaskId)
    }

    /// Materializes the training view: every task with at least one scored
    /// assignment, with its scores.
    // crowd-lint: root(det)
    pub fn resolved_tasks(&self) -> Vec<ResolvedTask> {
        let mut out = Vec::new();
        for (t, entry_ids) in self.by_task.iter().enumerate() {
            let scores: Vec<(WorkerId, f64)> = entry_ids
                .iter()
                .filter_map(|&i| {
                    let e = &self.entries[i as usize];
                    e.score.map(|s| (e.worker, s))
                })
                .collect();
            if !scores.is_empty() {
                out.push(ResolvedTask {
                    task: TaskId(dense_id(t)),
                    bow: self.tasks[t].bow.clone(),
                    scores,
                });
            }
        }
        out
    }

    /// Tasks containing `term`, in insertion order (inverted index lookup).
    pub fn tasks_with_term(&self, term: crowd_text::TermId) -> &[TaskId] {
        self.postings
            .get(term.index())
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// The `limit` stored tasks most similar to `query` by cosine over
    /// bags of words, using the inverted index to restrict scoring to
    /// tasks sharing at least one term.
    ///
    /// Returns `(task, similarity)` pairs, best first; ties break toward
    /// the older task.
    pub fn similar_tasks(&self, query: &BagOfWords, limit: usize) -> Vec<(TaskId, f64)> {
        use std::collections::HashSet;
        let mut candidates: HashSet<TaskId> = HashSet::new();
        for (term, _) in query.iter() {
            candidates.extend(self.tasks_with_term(term).iter().copied());
        }
        let mut scored: Vec<(TaskId, f64)> = candidates
            .into_iter()
            .map(|t| {
                (
                    t,
                    crowd_text::similarity::cosine(query, &self.tasks[t.index()].bow),
                )
            })
            .filter(|&(_, s)| s > 0.0)
            .collect();
        scored.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        scored.truncate(limit);
        scored
    }

    /// The union bag of vocabularies over every task the worker answered
    /// (`t_w^i = ∪ t_j` — the VSM baseline's worker profile).
    pub fn worker_history_bow(&self, worker: WorkerId) -> BagOfWords {
        let mut merged = BagOfWords::new();
        for (task, _) in self.tasks_of(worker) {
            merged.merge(&self.tasks[task.index()].bow);
        }
        merged
    }

    // ---- vocabulary ---------------------------------------------------------

    /// The shared vocabulary.
    pub fn vocab(&self) -> &Vocabulary {
        &self.vocab
    }

    /// Mutable vocabulary access (generators intern terms directly).
    pub fn vocab_mut(&mut self) -> &mut Vocabulary {
        &mut self.vocab
    }

    /// Freezes the vocabulary: tasks added later will not grow it.
    pub fn freeze_vocab(&mut self) {
        self.vocab.freeze();
    }

    /// Current logical clock value.
    pub fn clock(&self) -> u64 {
        self.clock
    }

    // ---- internals ----------------------------------------------------------

    pub(crate) fn entries(&self) -> &[Feedback] {
        &self.entries
    }

    pub(crate) fn answers_map(&self) -> &HashMap<(WorkerId, TaskId), BagOfWords> {
        &self.answers
    }

    pub(crate) fn restore(
        vocab: Vocabulary,
        workers: Vec<WorkerRecord>,
        tasks: Vec<TaskRecord>,
        entries: Vec<Feedback>,
        answers: HashMap<(WorkerId, TaskId), BagOfWords>,
        clock: u64,
    ) -> Self {
        let mut by_task = vec![Vec::new(); tasks.len()];
        let mut by_worker = vec![Vec::new(); workers.len()];
        let mut pair_index = HashMap::with_capacity(entries.len());
        let mut postings: Vec<Vec<TaskId>> = vec![Vec::new(); vocab.len()];
        for (t, rec) in tasks.iter().enumerate() {
            for (term, _) in rec.bow.iter() {
                let idx = term.index();
                if idx >= postings.len() {
                    postings.resize(idx + 1, Vec::new());
                }
                postings[idx].push(TaskId(dense_id(t)));
            }
        }
        for (i, e) in entries.iter().enumerate() {
            by_task[e.task.index()].push(dense_id(i));
            by_worker[e.worker.index()].push(dense_id(i));
            pair_index.insert((e.worker, e.task), dense_id(i));
        }
        CrowdDb {
            vocab,
            workers,
            tasks,
            entries,
            by_task,
            by_worker,
            pair_index,
            answers,
            postings,
            clock,
        }
    }

    fn check_worker(&self, id: WorkerId) -> Result<()> {
        if id.index() >= self.workers.len() {
            return Err(StoreError::UnknownWorker(id));
        }
        Ok(())
    }

    fn check_task(&self, id: TaskId) -> Result<()> {
        if id.index() >= self.tasks.len() {
            return Err(StoreError::UnknownTask(id));
        }
        Ok(())
    }

    fn require_assigned(&self, worker: WorkerId, task: TaskId) -> Result<u32> {
        self.check_worker(worker)?;
        self.check_task(task)?;
        self.pair_index
            .get(&(worker, task))
            .copied()
            .ok_or(StoreError::NotAssigned(worker, task))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_db() -> (CrowdDb, Vec<WorkerId>, Vec<TaskId>) {
        let mut db = CrowdDb::new();
        let workers: Vec<_> = (0..3).map(|i| db.add_worker(format!("w{i}"))).collect();
        let tasks = vec![
            db.add_task("advantages of b+ tree over b tree"),
            db.add_task("bayesian inference with variational methods"),
        ];
        (db, workers, tasks)
    }

    #[test]
    fn ids_are_dense() {
        let (db, workers, tasks) = tiny_db();
        assert_eq!(workers, vec![WorkerId(0), WorkerId(1), WorkerId(2)]);
        assert_eq!(tasks, vec![TaskId(0), TaskId(1)]);
        assert_eq!(db.num_workers(), 3);
        assert_eq!(db.num_tasks(), 2);
    }

    #[test]
    fn assign_and_score_roundtrip() {
        let (mut db, w, t) = tiny_db();
        db.assign(w[0], t[0]).unwrap();
        assert!(db.is_assigned(w[0], t[0]));
        assert_eq!(db.feedback(w[0], t[0]), None);
        db.record_feedback(w[0], t[0], 4.0).unwrap();
        assert_eq!(db.feedback(w[0], t[0]), Some(4.0));
        assert_eq!(db.num_resolved(), 1);
    }

    #[test]
    fn double_assignment_rejected() {
        let (mut db, w, t) = tiny_db();
        db.assign(w[0], t[0]).unwrap();
        assert_eq!(
            db.assign(w[0], t[0]),
            Err(StoreError::AlreadyAssigned(w[0], t[0]))
        );
    }

    #[test]
    fn feedback_requires_assignment() {
        let (mut db, w, t) = tiny_db();
        assert_eq!(
            db.record_feedback(w[1], t[0], 1.0),
            Err(StoreError::NotAssigned(w[1], t[0]))
        );
    }

    #[test]
    fn invalid_scores_rejected() {
        let (mut db, w, t) = tiny_db();
        db.assign(w[0], t[0]).unwrap();
        assert!(matches!(
            db.record_feedback(w[0], t[0], f64::NAN),
            Err(StoreError::InvalidScore(_))
        ));
        assert!(db.record_feedback(w[0], t[0], f64::INFINITY).is_err());
    }

    #[test]
    fn unknown_ids_rejected() {
        let (mut db, _, t) = tiny_db();
        assert_eq!(
            db.assign(WorkerId(99), t[0]),
            Err(StoreError::UnknownWorker(WorkerId(99)))
        );
        assert_eq!(
            db.assign(WorkerId(0), TaskId(99)),
            Err(StoreError::UnknownTask(TaskId(99)))
        );
        assert!(db.worker(WorkerId(99)).is_err());
        assert!(db.task(TaskId(99)).is_err());
    }

    #[test]
    fn score_overwrite_keeps_latest() {
        let (mut db, w, t) = tiny_db();
        db.assign(w[0], t[0]).unwrap();
        db.record_feedback(w[0], t[0], 1.0).unwrap();
        db.record_feedback(w[0], t[0], 5.0).unwrap();
        assert_eq!(db.feedback(w[0], t[0]), Some(5.0));
        assert_eq!(db.num_resolved(), 1);
    }

    #[test]
    fn indexes_stay_consistent() {
        let (mut db, w, t) = tiny_db();
        db.assign(w[0], t[0]).unwrap();
        db.assign(w[1], t[0]).unwrap();
        db.assign(w[0], t[1]).unwrap();
        db.record_feedback(w[0], t[0], 2.0).unwrap();

        let of_w0: Vec<_> = db.tasks_of(w[0]).collect();
        assert_eq!(of_w0, vec![(t[0], Some(2.0)), (t[1], None)]);
        let of_t0: Vec<_> = db.workers_of(t[0]).map(|(w, _)| w).collect();
        assert_eq!(of_t0, vec![w[0], w[1]]);
    }

    #[test]
    fn worker_task_count_counts_resolved_only() {
        let (mut db, w, t) = tiny_db();
        db.assign(w[0], t[0]).unwrap();
        db.assign(w[0], t[1]).unwrap();
        assert_eq!(db.worker_task_count(w[0]), 0);
        db.record_feedback(w[0], t[0], 1.0).unwrap();
        assert_eq!(db.worker_task_count(w[0]), 1);
    }

    #[test]
    fn resolved_tasks_view() {
        let (mut db, w, t) = tiny_db();
        db.assign(w[0], t[0]).unwrap();
        db.assign(w[1], t[0]).unwrap();
        db.assign(w[2], t[1]).unwrap();
        db.record_feedback(w[0], t[0], 4.0).unwrap();
        db.record_feedback(w[1], t[0], 1.0).unwrap();
        // t[1] is assigned but unresolved → excluded.
        let resolved = db.resolved_tasks();
        assert_eq!(resolved.len(), 1);
        assert_eq!(resolved[0].task, t[0]);
        assert_eq!(resolved[0].scores, vec![(w[0], 4.0), (w[1], 1.0)]);
    }

    #[test]
    fn worker_history_merges_task_bags() {
        let (mut db, w, t) = tiny_db();
        db.assign(w[0], t[0]).unwrap();
        db.assign(w[0], t[1]).unwrap();
        let hist = db.worker_history_bow(w[0]);
        let expected =
            db.task(t[0]).unwrap().bow.total_tokens() + db.task(t[1]).unwrap().bow.total_tokens();
        assert_eq!(hist.total_tokens(), expected);
    }

    #[test]
    fn answers_roundtrip() {
        let (mut db, w, t) = tiny_db();
        db.assign(w[0], t[0]).unwrap();
        db.record_answer(w[0], t[0], "use a b+ tree for range scans")
            .unwrap();
        let bag = db.answer(w[0], t[0]).unwrap();
        assert!(bag.total_tokens() > 0);
        assert_eq!(db.answer(w[1], t[0]), None);
    }

    #[test]
    fn answer_requires_assignment() {
        let (mut db, w, t) = tiny_db();
        assert!(db.record_answer(w[0], t[0], "hi").is_err());
    }

    #[test]
    fn inverted_index_tracks_terms() {
        let (mut db, _, t) = tiny_db();
        let tree = db.vocab().get("tree").unwrap();
        assert_eq!(db.tasks_with_term(tree), &[t[0]]);
        let t2 = db.add_task("another tree question");
        assert_eq!(db.tasks_with_term(tree), &[t[0], t2]);
        // Unknown term → empty postings.
        assert!(db.tasks_with_term(crowd_text::TermId(9999)).is_empty());
    }

    #[test]
    fn similar_tasks_ranks_by_cosine() {
        let mut db = CrowdDb::new();
        let a = db.add_task("btree page split buffer");
        let b = db.add_task("btree index range scan");
        let c = db.add_task("gaussian prior posterior");
        let query = {
            let tokens = crowd_text::tokenize_filtered("btree page split storm");
            BagOfWords::from_known_tokens(&tokens, db.vocab())
        };
        let hits = db.similar_tasks(&query, 10);
        assert_eq!(hits[0].0, a, "most overlapping task first: {hits:?}");
        assert!(hits.iter().any(|&(t, _)| t == b), "shares 'btree'");
        assert!(
            !hits.iter().any(|&(t, _)| t == c),
            "no shared terms → not a candidate"
        );
        // Scores descend.
        for w in hits.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
        // Limit respected.
        assert_eq!(db.similar_tasks(&query, 1).len(), 1);
        // Empty query → nothing.
        assert!(db.similar_tasks(&BagOfWords::new(), 5).is_empty());
    }

    #[test]
    fn clock_is_monotone() {
        let (mut db, w, t) = tiny_db();
        let c0 = db.clock();
        db.assign(w[0], t[0]).unwrap();
        assert!(db.clock() > c0);
    }
}
