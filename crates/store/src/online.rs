//! Online-worker registry.
//!
//! The crowd manager "returns the workers online as the candidate crowd"
//! (paper Section 2) — selection only ranks workers who are currently
//! available. This registry tracks that availability.

use crate::WorkerId;
use std::collections::BTreeSet;

/// Tracks which workers are currently online.
///
/// Backed by a `BTreeSet` so `online_workers` iterates in a deterministic
/// order — determinism matters for reproducible experiments.
#[derive(Debug, Clone, Default)]
pub struct OnlineRegistry {
    online: BTreeSet<WorkerId>,
}

impl OnlineRegistry {
    /// Creates an empty registry (everyone offline).
    pub fn new() -> Self {
        OnlineRegistry::default()
    }

    /// Marks a worker online. Returns `true` if they were offline before.
    pub fn set_online(&mut self, worker: WorkerId) -> bool {
        self.online.insert(worker)
    }

    /// Marks a worker offline. Returns `true` if they were online before.
    pub fn set_offline(&mut self, worker: WorkerId) -> bool {
        self.online.remove(&worker)
    }

    /// `true` if the worker is currently online.
    pub fn is_online(&self, worker: WorkerId) -> bool {
        self.online.contains(&worker)
    }

    /// Number of online workers.
    pub fn len(&self) -> usize {
        self.online.len()
    }

    /// `true` when nobody is online.
    pub fn is_empty(&self) -> bool {
        self.online.is_empty()
    }

    /// Iterates online workers in ascending id order.
    pub fn online_workers(&self) -> impl Iterator<Item = WorkerId> + '_ {
        self.online.iter().copied()
    }

    /// Marks every worker in `workers` online.
    pub fn set_all_online(&mut self, workers: impl IntoIterator<Item = WorkerId>) {
        self.online.extend(workers);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_offline_transitions() {
        let mut reg = OnlineRegistry::new();
        assert!(!reg.is_online(WorkerId(1)));
        assert!(reg.set_online(WorkerId(1)));
        assert!(!reg.set_online(WorkerId(1)), "second insert is a no-op");
        assert!(reg.is_online(WorkerId(1)));
        assert!(reg.set_offline(WorkerId(1)));
        assert!(!reg.set_offline(WorkerId(1)));
        assert!(reg.is_empty());
    }

    #[test]
    fn iteration_is_sorted() {
        let mut reg = OnlineRegistry::new();
        reg.set_all_online([WorkerId(5), WorkerId(1), WorkerId(3)]);
        let ids: Vec<u32> = reg.online_workers().map(|w| w.0).collect();
        assert_eq!(ids, vec![1, 3, 5]);
        assert_eq!(reg.len(), 3);
    }
}
