//! End-to-end recovery tests: generate data from the model (Algorithm 1),
//! fit it back with variational EM (Algorithm 2), and check that selection
//! decisions (Algorithm 3 + Eq. 1) agree with the planted ground truth.

use crowd_core::generative::{generate, GeneratedData, GenerativeConfig};
use crowd_core::{ModelParams, TdpmConfig, TdpmTrainer};
use crowd_math::Vector;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Planted model: 3 categories, 30 vocabulary terms (10 per category,
/// sharply peaked), skill prior with unit variance, modest noise.
fn planted_params() -> ModelParams {
    let k = 3;
    let v = 30;
    let mut p = ModelParams::neutral(k, v);
    for kk in 0..k {
        for vv in 0..v {
            p.beta[(kk, vv)] = if vv / 10 == kk { 0.085 } else { 0.0075 };
        }
        let s: f64 = p.beta.row(kk).iter().sum();
        for vv in 0..v {
            p.beta[(kk, vv)] /= s;
        }
    }
    p.tau = 0.25;
    p
}

fn planted_data(seed: u64) -> (ModelParams, GeneratedData) {
    let params = planted_params();
    let cfg = GenerativeConfig {
        num_workers: 12,
        num_tasks: 150,
        tokens_per_task: 24,
        workers_per_task: 5,
    };
    let mut rng = StdRng::seed_from_u64(seed);
    let data = generate(&params, &cfg, &mut rng).unwrap();
    (params, data)
}

#[test]
fn fitted_model_matches_planted_selection() {
    let (params, data) = planted_data(42);
    let fit_cfg = TdpmConfig {
        num_categories: 3,
        max_em_iters: 40,
        seed: 5,
        ..TdpmConfig::default()
    };
    let (model, report) = TdpmTrainer::new(fit_cfg)
        .fit_training_set(&data.training)
        .unwrap();
    assert!(report.iterations >= 2);

    // Fresh evaluation tasks straight from each planted category.
    let mut agree = 0;
    let mut total = 0;
    for cat in 0..3usize {
        // A task made purely of category `cat` words.
        let words: Vec<(usize, u32)> = (0..10).map(|i| (cat * 10 + i, 2u32)).collect();
        let projection = model.project_words(&words);

        // Ground truth: the planted best worker for a task whose latent
        // category is one-hot at `cat` (softmax direction).
        let mut c_true = Vector::filled(3, -2.0);
        c_true[cat] = 2.0;
        let planted_best = (0..data.worker_skills.len())
            .max_by(|&a, &b| {
                let sa = data.worker_skills[a].dot(&c_true).unwrap();
                let sb = data.worker_skills[b].dot(&c_true).unwrap();
                sa.total_cmp(&sb)
            })
            .unwrap();

        let ranked = model.rank_all(&projection, model.worker_ids().to_vec());
        let model_rank_of_planted = ranked
            .iter()
            .position(|r| r.worker.0 as usize == planted_best)
            .unwrap();
        total += 1;
        // The planted best must rank in the model's top 3 of 12.
        if model_rank_of_planted < 3 {
            agree += 1;
        }
    }
    assert!(
        agree >= 2,
        "planted best workers should rank highly: {agree}/{total}"
    );
    let _ = params;
}

#[test]
fn fitted_scores_correlate_with_observed_feedback() {
    let (_, data) = planted_data(7);
    let fit_cfg = TdpmConfig {
        num_categories: 3,
        max_em_iters: 40,
        seed: 3,
        ..TdpmConfig::default()
    };
    let (model, _) = TdpmTrainer::new(fit_cfg)
        .fit_training_set(&data.training)
        .unwrap();

    // In-sample: predicted w·c (via re-projection of the task words) should
    // correlate strongly with the observed scores.
    let mut predicted = Vec::new();
    let mut observed = Vec::new();
    for task in data.training.tasks() {
        let projection = model.project_words(&task.words);
        for &(i, s) in &task.scores {
            let w = data.training.worker_id(i);
            predicted.push(model.score(w, &projection).unwrap());
            observed.push(s);
        }
    }
    let corr = crowd_math::stats::pearson(&predicted, &observed).unwrap();
    assert!(corr > 0.5, "in-sample correlation too weak: {corr}");
}

#[test]
fn parallel_estep_matches_sequential_exactly() {
    let (_, data) = planted_data(55);
    let fit = |threads: usize| {
        let cfg = TdpmConfig {
            num_categories: 3,
            max_em_iters: 8,
            seed: 2,
            num_threads: threads,
            ..TdpmConfig::default()
        };
        TdpmTrainer::new(cfg)
            .fit_training_set(&data.training)
            .unwrap()
    };
    let (seq, seq_report) = fit(1);
    let (par, par_report) = fit(4);
    assert_eq!(
        seq_report.elbo_trace, par_report.elbo_trace,
        "identical ELBO trace"
    );
    for &w in seq.worker_ids() {
        assert_eq!(
            seq.skill(w).unwrap().mean.as_slice(),
            par.skill(w).unwrap().mean.as_slice(),
            "identical skills for {w}"
        );
    }
}

#[test]
fn incremental_updates_track_new_specialty() {
    let (_, data) = planted_data(99);
    let fit_cfg = TdpmConfig {
        num_categories: 3,
        max_em_iters: 30,
        seed: 1,
        ..TdpmConfig::default()
    };
    let (mut model, _) = TdpmTrainer::new(fit_cfg)
        .fit_training_set(&data.training)
        .unwrap();

    // A brand-new worker repeatedly excels at category-0 tasks.
    let newbie = crowd_store::WorkerId(500);
    model.add_worker(newbie);
    let words: Vec<(usize, u32)> = (0..10).map(|i| (i, 2u32)).collect();
    for _ in 0..8 {
        let projection = model.project_words(&words);
        model.record_feedback(newbie, &projection, 5.0).unwrap();
    }
    // The newbie should now be among the top selections for that category.
    let projection = model.project_words(&words);
    let mut candidates = model.worker_ids().to_vec();
    candidates.sort();
    let top = model.select_top_k(&projection, candidates, 3);
    assert!(
        top.iter().any(|r| r.worker == newbie),
        "newbie should reach top-3 after 8 perfect scores: {top:?}"
    );
}
