//! Property oracle for the opt-in f32 serving path: `select_mean_f32`
//! against the bit-exact f64 ranking on arbitrary matrices.
//!
//! The f32 precision contract pinned here (DESIGN.md §10c):
//!
//! 1. **Bounded error.** For every candidate the f32 score differs from
//!    the f64 score by at most `C · ε_f32 · Σ_d |λ_d · μ_d|` with
//!    `C = 2(k + 3)`: one rounding per stored mean, one per rounded query
//!    coefficient, one per product and at most `k` for the summation
//!    tree, with headroom. The bound is relative to the *absolute-sum*
//!    mass of the dot product, not its value — cancellation can make the
//!    error relative to the result arbitrarily large, and the contract
//!    deliberately does not promise otherwise.
//! 2. **Rank agreement modulo ties.** The f32 top-k agrees with the f64
//!    top-k except for candidates whose f64 scores sit within the error
//!    bound of the f64 cut-off score — exactly the ties the precision
//!    loss is allowed to reorder.
//! 3. **NaN hygiene.** Workers with NaN means are skipped by both paths.
//! 4. **Extreme magnitudes.** The bounds hold for coefficients up to
//!    1e18 in magnitude (products up to 1e36 stay finite in f32).
//!
//! The complementary *determinism* pins (f32 across thread counts and
//! batching is bit-identical to itself) live in the skillmatrix unit
//! tests; this file pins f32 *against f64*.

use crowd_core::SkillMatrix;
use crowd_store::WorkerId;
use proptest::prelude::*;

/// Per-candidate score error bound, relative to the absolute-sum mass of
/// the dot product (see module docs). The `1e-40` absolute slack covers
/// gradual underflow: products below the f32 normal range round into
/// denormals with absolute (not relative) error, at most ~7e-46 per term.
fn error_bound(k: usize, lambda: &[f64], mean: &[f64]) -> f64 {
    let mass: f64 = lambda.iter().zip(mean).map(|(&l, &m)| (l * m).abs()).sum();
    2.0 * (k as f64 + 3.0) * f64::from(f32::EPSILON) * mass + 1e-40
}

/// Mostly moderate coefficients, with occasional zeros and extreme
/// magnitudes (±1e±18 — the weighting is emulated with an index draw since
/// the vendored proptest's `prop_oneof!` is unweighted).
fn arb_coeff() -> impl Strategy<Value = f64> {
    (0usize..8, -10.0..10.0f64).prop_map(|(pick, moderate)| match pick {
        0 => 0.0,
        1 => 1e18 * moderate.signum(),
        2 => 1e-18 * moderate,
        _ => moderate,
    })
}

#[derive(Debug, Clone)]
struct Case {
    k: usize,
    lambda: Vec<f64>,
    /// Per-worker mean rows; `None` marks a row poisoned with NaN.
    rows: Vec<Option<Vec<f64>>>,
    top: usize,
}

/// Draws at the maximum width (6 dims) and truncates to `k` — the vendored
/// proptest has no `prop_flat_map` to thread a drawn `k` into inner sizes.
fn arb_case() -> impl Strategy<Value = Case> {
    const MAX_K: usize = 6;
    (
        1usize..=MAX_K,
        prop::collection::vec(arb_coeff(), MAX_K),
        prop::collection::vec(
            (0usize..10, prop::collection::vec(arb_coeff(), MAX_K)),
            1..60,
        ),
        1usize..12,
    )
        .prop_map(|(k, lambda, rows, top)| Case {
            k,
            lambda: lambda[..k].to_vec(),
            rows: rows
                .into_iter()
                .map(|(pick, mean)| (pick != 0).then(|| mean[..k].to_vec()))
                .collect(),
            top,
        })
}

fn build(case: &Case) -> SkillMatrix {
    let mut m = SkillMatrix::new(case.k);
    let vars = vec![0.1; case.k];
    for (w, row) in case.rows.iter().enumerate() {
        let mean = match row {
            Some(mean) => mean.clone(),
            None => {
                let mut poisoned = vec![1.0; case.k];
                poisoned[0] = f64::NAN;
                poisoned
            }
        };
        m.upsert(WorkerId(u32::try_from(w).unwrap()), &mean, &vars);
    }
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn f32_serving_oracle(case in arb_case()) {
        let m = build(&case);
        let resolved = m.resolve_all();
        let f64_ranked = m.select_mean(&case.lambda, &resolved, case.top, 1);
        let f32_ranked = m.select_mean_f32(&case.lambda, &resolved, case.top, 1);

        // NaN hygiene: both paths rank exactly the non-poisoned workers.
        let live = case.rows.iter().filter(|r| r.is_some()).count();
        let expect = live.min(case.top);
        prop_assert_eq!(f64_ranked.len(), expect, "f64 ranks the live workers");
        prop_assert_eq!(f32_ranked.len(), expect, "f32 ranks the live workers");

        // Per-score error bound, matched by worker id against the full f64
        // scoring (every ranked f32 worker has a live f64 score).
        let score_f64 = |w: WorkerId| -> f64 {
            let mean = case.rows[w.0 as usize].as_ref().expect("live row");
            case.lambda.iter().zip(mean).map(|(&l, &mu)| l * mu).sum()
        };
        for r in &f32_ranked {
            let mean = case.rows[r.worker.0 as usize].as_ref().expect("live row");
            let oracle = score_f64(r.worker);
            let bound = error_bound(case.k, &case.lambda, mean);
            prop_assert!(
                (r.score - oracle).abs() <= bound,
                "worker {:?}: f32 score {} vs f64 {} exceeds bound {}",
                r.worker, r.score, oracle, bound
            );
        }

        // Rank agreement modulo ties at the cut-off: every f32 pick must
        // score within the error window of the f64 cut, and every f64 pick
        // clearly above the cut (by more than the window) must be in the
        // f32 set. The window is the largest error bound of any live row —
        // the widest amount precision loss can move a score.
        if f64_ranked.len() == case.top {
            let cut = f64_ranked.last().expect("non-empty").score;
            let window: f64 = case
                .rows
                .iter()
                .flatten()
                .map(|mean| error_bound(case.k, &case.lambda, mean))
                .fold(0.0, f64::max)
                * 2.0;
            let f32_set: Vec<WorkerId> = f32_ranked.iter().map(|r| r.worker).collect();
            for r in &f32_ranked {
                prop_assert!(
                    score_f64(r.worker) >= cut - window,
                    "f32 picked {:?} (f64 score {}) far below the f64 cut {}",
                    r.worker, score_f64(r.worker), cut
                );
            }
            for r in &f64_ranked {
                if r.score > cut + window {
                    prop_assert!(
                        f32_set.contains(&r.worker),
                        "f64 pick {:?} (score {}, cut {}) missing from the f32 set",
                        r.worker, r.score, cut
                    );
                }
            }
        } else {
            // Fewer live workers than `top`: both paths rank all of them.
            let mut a: Vec<WorkerId> = f64_ranked.iter().map(|r| r.worker).collect();
            let mut b: Vec<WorkerId> = f32_ranked.iter().map(|r| r.worker).collect();
            a.sort_unstable();
            b.sort_unstable();
            prop_assert_eq!(a, b, "same membership when everyone ranks");
        }
    }
}
