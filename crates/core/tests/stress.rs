//! Seeded large-scale stress for the chunk-parallel serving paths.
//!
//! The property tests in `properties.rs` cover small adversarial shapes;
//! this harness goes the other way: one big seeded model (thousands of
//! workers, enough to cross the parallel-dispatch threshold) scored at
//! every thread count, asserting the rankings are *bit-identical* — same
//! workers, same order, same `f64` bits — so threading can never change a
//! query answer.

use crowd_core::{ModelParams, RankedWorker, TaskProjection, TdpmConfig, TdpmModel};
use crowd_math::Vector;
use crowd_store::WorkerId;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

const WORKERS: usize = 6_000;
const K: usize = 8;
const TOP_K: usize = 25;

fn big_model(seed: u64) -> TdpmModel {
    let mut rng = StdRng::seed_from_u64(seed);
    let posteriors: Vec<(WorkerId, Vector, Vector)> = (0..WORKERS)
        .map(|i| {
            let mean = Vector::from_fn(K, |_| rng.random_range(-3.0..3.0));
            let var = Vector::from_fn(K, |_| rng.random_range(0.01..1.5));
            (
                WorkerId(u32::try_from(i).expect("worker id fits u32")),
                mean,
                var,
            )
        })
        .collect();
    let cfg = TdpmConfig {
        num_categories: K,
        ..TdpmConfig::default()
    };
    TdpmModel::from_posteriors(ModelParams::neutral(K, 16), cfg, posteriors)
        .expect("synthetic posteriors match K")
}

fn bits(rs: &[RankedWorker]) -> Vec<(WorkerId, u64)> {
    rs.iter().map(|r| (r.worker, r.score.to_bits())).collect()
}

#[test]
fn parallel_top_k_is_bit_identical_across_thread_counts() {
    let model = big_model(2024);
    let mut rng = StdRng::seed_from_u64(7);
    let candidates: Vec<WorkerId> = model.worker_ids().to_vec();

    for trial in 0..4 {
        let projection = TaskProjection {
            lambda: Vector::from_fn(K, |_| rng.random_range(-2.0..2.0)),
            nu2: Vector::zeros(K),
            num_tokens: 1.0,
        };
        let oracle = model.select_top_k_serial(&projection, candidates.iter().copied(), TOP_K);
        assert_eq!(oracle.len(), TOP_K);
        for threads in [1usize, 2, 3, 4, 7, 8, 16] {
            let got = model.select_top_k_with_threads(
                &projection,
                candidates.iter().copied(),
                TOP_K,
                threads,
            );
            assert_eq!(
                bits(&oracle),
                bits(&got),
                "trial {trial}: {threads} threads diverged from the serial oracle"
            );
        }
    }
}

#[test]
fn batch_kernel_matches_serial_oracle_per_query() {
    let model = big_model(99);
    let mut rng = StdRng::seed_from_u64(13);
    let candidates: Vec<WorkerId> = model.worker_ids().to_vec();
    let projections: Vec<TaskProjection> = (0..32)
        .map(|_| TaskProjection {
            lambda: Vector::from_fn(K, |_| rng.random_range(-2.0..2.0)),
            nu2: Vector::zeros(K),
            num_tokens: 1.0,
        })
        .collect();

    let batch = model.select_top_k_batch(&projections, &candidates, TOP_K);
    assert_eq!(batch.len(), projections.len());
    for (i, (p, got)) in projections.iter().zip(&batch).enumerate() {
        let want = model.select_top_k_serial(p, candidates.iter().copied(), TOP_K);
        assert_eq!(bits(&want), bits(got), "batch query {i}");
    }
}

#[test]
fn concurrent_queries_against_one_model_agree() {
    // The model is immutable during serving; hammering one instance from
    // many OS threads must give every thread the oracle answer.
    let model = std::sync::Arc::new(big_model(512));
    let candidates: Vec<WorkerId> = model.worker_ids().to_vec();
    let projection = TaskProjection {
        lambda: Vector::from_fn(K, |i| (i as f64 * 0.37).sin()),
        nu2: Vector::zeros(K),
        num_tokens: 1.0,
    };
    let oracle = bits(&model.select_top_k_serial(&projection, candidates.iter().copied(), TOP_K));

    let handles: Vec<_> = (0..8)
        .map(|t| {
            let model = std::sync::Arc::clone(&model);
            let candidates = candidates.clone();
            let projection = projection.clone();
            let oracle = oracle.clone();
            std::thread::spawn(move || {
                for _ in 0..20 {
                    let got = model.select_top_k_with_threads(
                        &projection,
                        candidates.iter().copied(),
                        TOP_K,
                        1 + t % 4,
                    );
                    assert_eq!(oracle, bits(&got), "thread {t}");
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("query thread panicked");
    }
}
