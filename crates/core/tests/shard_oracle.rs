//! Sharded-fit bit-identity oracle (DESIGN §11).
//!
//! The contract under test: `fit` with any `num_shards` × `num_threads`
//! combination produces **bitwise-identical** results to the serial
//! unsharded f64 path — the ELBO trace, every worker posterior in the
//! `SkillMatrix`, the fitted model parameters, and the trained task
//! projections. This holds because per-entity E-step updates are mutually
//! independent, and every global reduction (M-step moments, τ², β, ELBO)
//! goes through the fixed-block sufficient-statistics scheme whose
//! reduction tree depends only on entity count, never on the partition.
//!
//! Worker/task axes are cut into 256-entity blocks (`SUFF_BLOCK`), so the
//! fixtures here deliberately exceed 256 on one axis at a time — otherwise
//! every shard beyond the first would be empty and the test vacuous.

use crowd_core::dataset::{TaskData, TrainingSet};
use crowd_core::{FitReport, TdpmConfig, TdpmModel, TdpmTrainer};
use crowd_store::TaskId;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A synthetic trainable set: every worker scores at least one task, word
/// lists are non-empty, all driven by one seeded RNG stream.
fn synth_ts(num_workers: usize, num_tasks: usize, vocab: usize, seed: u64) -> TrainingSet {
    let mut rng = StdRng::seed_from_u64(seed);
    let tasks = (0..num_tasks)
        .map(|j| {
            let num_words = rng.random_range(1..4usize);
            let words: Vec<(usize, u32)> = (0..num_words)
                .map(|_| (rng.random_range(0..vocab), rng.random_range(1..4u32)))
                .collect();
            let num_tokens = words.iter().map(|&(_, c)| c as f64).sum();
            let num_scores = rng.random_range(1..5usize).min(num_workers);
            let mut scores: Vec<(usize, f64)> = (0..num_scores)
                .map(|_| {
                    (
                        rng.random_range(0..num_workers),
                        rng.random_range(-2.0..5.0f64),
                    )
                })
                .collect();
            // Spread coverage so high worker indexes participate too.
            scores.push(((j * 7919) % num_workers, rng.random_range(-2.0..5.0f64)));
            scores.sort_by_key(|&(w, _)| w);
            scores.dedup_by_key(|&mut (w, _)| w);
            TaskData {
                task: TaskId(j as u32),
                words,
                num_tokens,
                scores,
            }
        })
        .collect();
    TrainingSet::from_parts(tasks, num_workers, vocab)
}

fn fit(ts: &TrainingSet, shards: usize, threads: usize) -> (TdpmModel, FitReport) {
    let cfg = TdpmConfig {
        num_categories: 2,
        max_em_iters: 3,
        task_inner_iters: 1,
        seed: 7,
        num_shards: shards,
        num_threads: threads,
        ..TdpmConfig::default()
    };
    TdpmTrainer::new(cfg).fit_training_set(ts).unwrap()
}

/// Bitwise comparison of two fits: ELBO trace, posteriors, parameters.
fn assert_identical(oracle: &(TdpmModel, FitReport), got: &(TdpmModel, FitReport), label: &str) {
    let (om, or) = oracle;
    let (gm, gr) = got;
    assert_eq!(or.iterations, gr.iterations, "{label}: iterations");
    assert_eq!(or.converged, gr.converged, "{label}: converged flag");
    assert_eq!(or.elbo_trace, gr.elbo_trace, "{label}: ELBO trace");

    // SkillMatrix: same workers, bit-identical rows.
    let (os, gs) = (om.skill_matrix(), gm.skill_matrix());
    assert_eq!(os.ids(), gs.ids(), "{label}: skill-matrix worker ids");
    for (row, id) in os.ids().iter().enumerate() {
        assert_eq!(os.mean_row(row), gs.mean_row(row), "{label}: λ_w of {id:?}");
        assert_eq!(os.var_row(row), gs.var_row(row), "{label}: ν²_w of {id:?}");
    }

    // Fitted model parameters.
    let (op, gp) = (om.params(), gm.params());
    assert_eq!(op.mu_w.as_slice(), gp.mu_w.as_slice(), "{label}: μ_w");
    assert_eq!(op.mu_c.as_slice(), gp.mu_c.as_slice(), "{label}: μ_c");
    assert_eq!(op.tau, gp.tau, "{label}: τ");
    for r in 0..op.sigma_w.rows() {
        assert_eq!(op.sigma_w.row(r), gp.sigma_w.row(r), "{label}: Σ_w row {r}");
        assert_eq!(op.sigma_c.row(r), gp.sigma_c.row(r), "{label}: Σ_c row {r}");
    }
    for r in 0..op.beta.rows() {
        assert_eq!(op.beta.row(r), gp.beta.row(r), "{label}: β row {r}");
    }

    // Trained (feedback-informed) task posteriors.
    let mut task_ids: Vec<TaskId> = om.trained_task_ids().collect();
    task_ids.sort();
    let mut got_ids: Vec<TaskId> = gm.trained_task_ids().collect();
    got_ids.sort();
    assert_eq!(task_ids, got_ids, "{label}: trained task ids");
    for id in task_ids {
        let (o, g) = (
            om.trained_projection(id).unwrap(),
            gm.trained_projection(id).unwrap(),
        );
        assert_eq!(
            o.lambda.as_slice(),
            g.lambda.as_slice(),
            "{label}: λ_c {id:?}"
        );
        assert_eq!(o.nu2.as_slice(), g.nu2.as_slice(), "{label}: ν²_c {id:?}");
    }
}

/// The full ISSUE matrix — shards 1/2/4/8 × threads 1/2/8 — on a worker
/// axis wide enough (600 > 2·256) that shards 1–2 own real blocks.
#[test]
fn shard_thread_matrix_is_bit_identical_wide_workers() {
    let ts = synth_ts(600, 40, 12, 42);
    let oracle = fit(&ts, 1, 1);
    for shards in [1usize, 2, 4, 8] {
        for threads in [1usize, 2, 8] {
            let got = fit(&ts, shards, threads);
            assert_identical(&oracle, &got, &format!("shards={shards} threads={threads}"));
        }
    }
}

/// Same matrix with the *task* axis spanning multiple blocks, so per-shard
/// τ²/β/task-prior partials are exercised (not just worker moments).
#[test]
fn shard_thread_matrix_is_bit_identical_wide_tasks() {
    let ts = synth_ts(24, 600, 12, 43);
    let oracle = fit(&ts, 1, 1);
    for shards in [1usize, 2, 4, 8] {
        for threads in [1usize, 2, 8] {
            let got = fit(&ts, shards, threads);
            assert_identical(&oracle, &got, &format!("shards={shards} threads={threads}"));
        }
    }
}

/// More shards than blocks: trailing shards are empty and must contribute
/// nothing (the degenerate partition still covers every entity exactly once).
#[test]
fn more_shards_than_blocks_is_bit_identical() {
    let ts = synth_ts(50, 30, 8, 44);
    let oracle = fit(&ts, 1, 1);
    for shards in [3usize, 8, 64] {
        let got = fit(&ts, shards, 2);
        assert_identical(&oracle, &got, &format!("shards={shards} (empty tails)"));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random platform shapes × random shard/thread counts against the
    /// serial oracle. Worker counts straddle the 256-entity block boundary
    /// so both the single-block and multi-block regimes are drawn.
    #[test]
    fn random_shapes_match_serial_oracle(
        num_workers in 1usize..700,
        num_tasks in 1usize..50,
        seed in 0u64..1000,
        shards in 1usize..9,
        threads in 1usize..9,
    ) {
        let ts = synth_ts(num_workers, num_tasks, 10, seed);
        let oracle = fit(&ts, 1, 1);
        let got = fit(&ts, shards, threads);
        assert_identical(&oracle, &got, &format!("w={num_workers} t={num_tasks} seed={seed} shards={shards} threads={threads}"));
    }
}
