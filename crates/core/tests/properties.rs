//! Property-based tests for selection and inference plumbing.

use crowd_core::dataset::{TaskData, TrainingSet};
use crowd_core::selection::{rank_of, top_k};
use crowd_core::{
    ModelParams, RankedWorker, TaskProjection, TdpmConfig, TdpmModel, TdpmTrainer, Validate,
};
use crowd_math::Vector;
use crowd_store::{TaskId, WorkerId};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Arbitrary worker posteriors over 3 categories: distinct ids, bounded
/// means/variances, and an occasional NaN-poisoned mean (a score of NaN must
/// be skipped identically by every selection path).
fn arb_posteriors() -> impl Strategy<Value = Vec<(WorkerId, Vec<f64>, Vec<f64>)>> {
    prop::collection::vec(
        (
            0u32..60,
            prop::collection::vec(-5.0f64..5.0, 3),
            prop::collection::vec(1e-3f64..2.0, 3),
            0u8..100,
        ),
        1..40,
    )
    .prop_map(|v| {
        let mut v: Vec<(WorkerId, Vec<f64>, Vec<f64>)> = v
            .into_iter()
            .map(|(w, mut mean, var, poison)| {
                if poison < 15 {
                    mean[0] = f64::NAN;
                }
                (WorkerId(w), mean, var)
            })
            .collect();
        v.sort_by_key(|p| p.0);
        v.dedup_by(|a, b| a.0 == b.0);
        v
    })
}

fn arb_scored() -> impl Strategy<Value = Vec<(WorkerId, f64)>> {
    prop::collection::vec((0u32..40, -100.0f64..100.0), 0..40).prop_map(|mut v| {
        // Distinct worker ids.
        v.sort_by_key(|&(w, _)| w);
        v.dedup_by_key(|&mut (w, _)| w);
        v.into_iter().map(|(w, s)| (WorkerId(w), s)).collect()
    })
}

/// A small random—but always trainable—training set.
fn arb_training_set() -> impl Strategy<Value = TrainingSet> {
    let task = (
        prop::collection::vec((0usize..12, 1u32..4), 1..6),
        prop::collection::vec((0usize..4, -3.0f64..6.0), 1..4),
    );
    prop::collection::vec(task, 2..8).prop_map(|tasks| {
        let tasks = tasks
            .into_iter()
            .enumerate()
            .map(|(j, (words, mut scores))| {
                scores.sort_by_key(|&(w, _)| w);
                scores.dedup_by_key(|&mut (w, _)| w);
                let num_tokens = words.iter().map(|&(_, c)| c as f64).sum();
                TaskData {
                    task: TaskId(j as u32),
                    words,
                    num_tokens,
                    scores,
                }
            })
            .collect();
        TrainingSet::from_parts(tasks, 4, 12)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn top_k_agrees_with_full_sort(scored in arb_scored(), k in 0usize..10) {
        let fast = top_k(scored.clone(), k);
        let mut naive = scored.clone();
        naive.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        naive.truncate(k);
        prop_assert_eq!(fast.len(), naive.len());
        for (f, n) in fast.iter().zip(&naive) {
            prop_assert_eq!(f.worker, n.0);
        }
    }

    #[test]
    fn top_k_scores_are_sorted_descending(scored in arb_scored(), k in 1usize..10) {
        let out = top_k(scored, k);
        for w in out.windows(2) {
            prop_assert!(w[0].score >= w[1].score);
        }
    }

    #[test]
    fn rank_of_consistent_with_top_k(scored in arb_scored()) {
        prop_assume!(!scored.is_empty());
        let n = scored.len();
        let full = top_k(scored.clone(), n);
        for (pos, r) in full.iter().enumerate() {
            prop_assert_eq!(rank_of(scored.clone(), r.worker), Some(pos + 1));
        }
        prop_assert_eq!(rank_of(scored, WorkerId(999)), None);
    }

    /// Training never panics, never produces NaN skills, and the ELBO trace
    /// is non-decreasing (within numerical slack) on arbitrary small inputs.
    #[test]
    fn training_is_robust_on_random_data(ts in arb_training_set(), k in 1usize..4) {
        let cfg = TdpmConfig {
            num_categories: k,
            max_em_iters: 6,
            seed: 5,
            ..TdpmConfig::default()
        };
        let (model, report) = TdpmTrainer::new(cfg).fit_training_set(&ts).unwrap();
        for &w in model.worker_ids() {
            let skill = model.skill(w).unwrap();
            prop_assert!(skill.mean.is_finite(), "finite skills");
            prop_assert!(skill.variance.as_slice().iter().all(|&v| v > 0.0));
        }
        for w in report.elbo_trace.windows(2) {
            let slack = 1e-4 * w[0].abs().max(1.0);
            prop_assert!(w[1] >= w[0] - slack, "ELBO non-decreasing: {:?}", report.elbo_trace);
        }
        // Projection of arbitrary (even out-of-vocab) words never panics.
        let p = model.project_words(&[(0, 1), (999, 3)]);
        prop_assert!(p.lambda.is_finite());
    }

    /// The three selection strategies — greedy (Eq. 1), optimistic with zero
    /// exploration bonus, and Algorithm 3's sampled variant on a
    /// zero-variance posterior — are the same ranking in disguise: with
    /// `ν_c² = 0` the sampled category collapses to the mean and with
    /// `β = 0` the UCB bonus vanishes, so all three must return the same
    /// top-k workers in the same order.
    #[test]
    fn selection_strategies_agree_on_top_k(
        ts in arb_training_set(),
        lambda in prop::collection::vec(-4.0f64..4.0, 3),
        k_select in 1usize..5,
        rng_seed in 0u64..1000,
    ) {
        let cfg = TdpmConfig {
            num_categories: 3,
            max_em_iters: 4,
            seed: 11,
            ..TdpmConfig::default()
        };
        let (model, _) = TdpmTrainer::new(cfg).fit_training_set(&ts).unwrap();
        let projection = TaskProjection {
            lambda: Vector::from_vec(lambda),
            nu2: Vector::zeros(3),
            num_tokens: 1.0,
        };
        let candidates: Vec<WorkerId> = model.worker_ids().to_vec();

        let greedy = model.select_top_k(&projection, candidates.clone(), k_select);
        let optimistic =
            model.select_top_k_optimistic(&projection, candidates.clone(), k_select, 0.0);
        let mut rng = StdRng::seed_from_u64(rng_seed);
        let sampled =
            model.select_top_k_sampled(&projection, candidates, k_select, &mut rng);

        let workers = |rs: &[crowd_core::RankedWorker]| -> Vec<WorkerId> {
            rs.iter().map(|r| r.worker).collect()
        };
        prop_assert_eq!(workers(&greedy), workers(&optimistic));
        prop_assert_eq!(workers(&greedy), workers(&sampled));
        for (g, o) in greedy.iter().zip(&optimistic) {
            prop_assert!((g.score - o.score).abs() < 1e-15);
        }
    }

    /// The dense serving paths — chunk-parallel [`TdpmModel::select_top_k_with_threads`]
    /// at 1/2/8 threads, the blocked batch kernel behind
    /// [`TdpmModel::select_top_k_batch`], and the optimistic variant — are
    /// all *bit-identical* to the hash-walk serial oracles, including on
    /// NaN-poisoned posteriors (skipped, never ranked) and unknown
    /// candidates (dropped).
    #[test]
    fn dense_parallel_and_batched_selection_are_bit_identical(
        posteriors in arb_posteriors(),
        lambda in prop::collection::vec(-4.0f64..4.0, 3),
        k in 1usize..6,
        beta in 0.0f64..2.0,
    ) {
        let cfg = TdpmConfig {
            num_categories: 3,
            ..TdpmConfig::default()
        };
        let workers: Vec<(WorkerId, Vector, Vector)> = posteriors
            .iter()
            .map(|(w, m, v)| (*w, Vector::from_vec(m.clone()), Vector::from_vec(v.clone())))
            .collect();
        let model =
            TdpmModel::from_posteriors(ModelParams::neutral(3, 12), cfg, workers).unwrap();
        let projection = TaskProjection {
            lambda: Vector::from_vec(lambda.clone()),
            nu2: Vector::zeros(3),
            num_tokens: 1.0,
        };
        // Every known worker plus an id the model has never seen.
        let mut candidates: Vec<WorkerId> = posteriors.iter().map(|p| p.0).collect();
        candidates.push(WorkerId(10_000));

        let bits = |rs: &[RankedWorker]| -> Vec<(WorkerId, u64)> {
            rs.iter().map(|r| (r.worker, r.score.to_bits())).collect()
        };

        let oracle = model.select_top_k_serial(&projection, candidates.iter().copied(), k);
        for threads in [1usize, 2, 8] {
            let dense = model.select_top_k_with_threads(
                &projection,
                candidates.iter().copied(),
                k,
                threads,
            );
            prop_assert_eq!(bits(&oracle), bits(&dense), "mean path, threads={}", threads);
        }

        // Batch kernel: repeated and distinct projections in one call.
        let second = TaskProjection {
            lambda: Vector::from_vec(lambda.iter().map(|x| x * 2.0).collect()),
            nu2: Vector::zeros(3),
            num_tokens: 1.0,
        };
        let projections = vec![projection.clone(), second, projection.clone()];
        let batch = model.select_top_k_batch(&projections, &candidates, k);
        prop_assert_eq!(batch.len(), projections.len());
        for (i, (p, got)) in projections.iter().zip(&batch).enumerate() {
            let want = model.select_top_k_serial(p, candidates.iter().copied(), k);
            prop_assert_eq!(bits(&want), bits(got), "batch query {}", i);
        }

        // Optimistic (UCB) path against its serial oracle, forced through
        // the chunked kernel at every thread count.
        let opt_oracle = model.select_top_k_optimistic_serial(
            &projection,
            candidates.iter().copied(),
            k,
            beta,
        );
        let resolved = model.skill_matrix().resolve(candidates.iter().copied());
        for threads in [1usize, 2, 8] {
            let got = model.skill_matrix().select_optimistic(
                projection.lambda.as_slice(),
                &resolved,
                k,
                beta,
                threads,
            );
            prop_assert_eq!(bits(&opt_oracle), bits(&got), "optimistic, threads={}", threads);
        }
    }

    /// The debug-build invariant validator must never fire on a healthy
    /// seeded fit — neither during training (the E-/M-step hooks panic on
    /// violation, so `fit_training_set` returning `Ok` is itself the
    /// assertion) nor after a chain of incremental feedback updates. The
    /// checks are read-only, so a validated model must also still satisfy
    /// an explicit re-validation.
    #[test]
    fn validator_is_silent_on_healthy_fits_and_updates(
        ts in arb_training_set(),
        k in 1usize..4,
        feedback in prop::collection::vec((0u32..4, -3.0f64..6.0), 0..12),
    ) {
        let obs = crowd_obs::Obs::noop();
        let cfg = TdpmConfig {
            num_categories: k,
            max_em_iters: 5,
            seed: 23,
            ..TdpmConfig::default()
        };
        // Training runs the per-iteration state/params hooks internally.
        let (mut model, _) = TdpmTrainer::new(cfg)
            .with_obs(obs.clone())
            .fit_training_set(&ts)
            .unwrap();
        prop_assert!(model.validate().is_ok());

        // Incremental updates re-check the touched posterior on every call.
        let projection = model.project_words(&[(0, 2), (1, 1)]);
        for (w, score) in feedback {
            let worker = WorkerId(w);
            model.add_worker(worker);
            model.record_feedback(worker, &projection, score).unwrap();
        }
        prop_assert!(model.validate().is_ok());

        // The hooks actually ran (debug builds compile them in) and counted.
        if crowd_core::validate::ENABLED {
            let checks = obs.metrics.snapshot().counter("validate", "checks");
            prop_assert!(checks.unwrap_or(0) > 0, "no validations recorded");
        }
    }
}
