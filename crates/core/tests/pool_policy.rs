//! Spawn-policy regression pin: sub-threshold selections never enqueue
//! pool work.
//!
//! The bug this guards against: `select_top_k_with_threads` (and any other
//! caller passing an explicit thread count) bypasses the model-layer
//! `PARALLEL_MIN_CANDIDATES` policy, and before the
//! [`MIN_POOL_CHUNK_ROWS`] floor a 1k-candidate selection at 8 threads was
//! shredded into 128-row chunks whose pool hand-off cost more than the
//! whole inline scan. The floor collapses such splits back to the inline
//! path; this test pins that via the pool's own accounting.
//!
//! Runs as an *integration* test so it owns the process: the global
//! [`ScoringPool`] counters are process-wide, and unit tests running in
//! parallel would race the deltas observed here. Everything is asserted
//! from one `#[test]` for the same reason.
//!
//! [`MIN_POOL_CHUNK_ROWS`]: crowd_core::MIN_POOL_CHUNK_ROWS

use crowd_core::{SkillMatrix, MIN_POOL_CHUNK_ROWS};
use crowd_math::ScoringPool;
use crowd_store::WorkerId;

fn seeded_matrix(workers: u32) -> SkillMatrix {
    let mut m = SkillMatrix::new(2);
    for w in 0..workers {
        let mean = [(f64::from(w) * 0.713).sin(), (f64::from(w) * 0.291).cos()];
        m.upsert(WorkerId(w), &mean, &[0.1, 0.1]);
    }
    m
}

#[test]
fn pool_enqueues_only_past_the_min_chunk_floor() {
    let pool = ScoringPool::global();
    let lambda = [0.9, -1.7];

    // Small pool: a 1k-candidate selection at 8 threads must stay inline —
    // zero tasks enqueued, regardless of the requested thread count.
    let small = seeded_matrix(1_000);
    let resolved_small = small.resolve_all();
    assert!(resolved_small.len() < MIN_POOL_CHUNK_ROWS);
    let before = pool.stats();
    for threads in [2usize, 8, 64] {
        let ranked = small.select_mean(&lambda, &resolved_small, 7, threads);
        assert_eq!(ranked.len(), 7);
    }
    let after = pool.stats();
    assert_eq!(
        after.tasks_enqueued, before.tasks_enqueued,
        "sub-floor selections must not touch the pool"
    );

    // Exactly at the floor the split is still a single chunk (chunk >= n),
    // so it stays inline too.
    let edge = seeded_matrix(u32::try_from(MIN_POOL_CHUNK_ROWS).unwrap());
    let resolved_edge = edge.resolve_all();
    let before = pool.stats();
    let ranked = edge.select_mean(&lambda, &resolved_edge, 7, 8);
    assert_eq!(ranked.len(), 7);
    let after = pool.stats();
    assert_eq!(
        after.tasks_enqueued, before.tasks_enqueued,
        "a single-chunk split runs inline"
    );

    // Past the floor a multi-chunk split must go through the pool: the
    // enqueue counter moves and every worker stays alive.
    let large = seeded_matrix(u32::try_from(2 * MIN_POOL_CHUNK_ROWS).unwrap());
    let resolved_large = large.resolve_all();
    let before = pool.stats();
    let pooled = large.select_mean(&lambda, &resolved_large, 7, 8);
    let after = pool.stats();
    assert!(
        after.tasks_enqueued > before.tasks_enqueued,
        "past the floor, chunks are pooled"
    );
    assert_eq!(after.live_workers, after.workers, "no worker died");

    // And the pooled result is bit-identical to the inline walk.
    let inline = large.select_mean(&lambda, &resolved_large, 7, 1);
    assert_eq!(pooled.len(), inline.len());
    for (a, b) in pooled.iter().zip(&inline) {
        assert_eq!(a.worker, b.worker);
        assert_eq!(a.score.to_bits(), b.score.to_bits());
    }
}
