//! The iterative optimization loop (paper Algorithm 2).

use crate::config::TdpmConfig;
use crate::dataset::TrainingSet;
use crate::inference::elbo::{elbo, ElboBreakdown};
use crate::inference::estep::{
    run_worker_range, update_task, update_workers, EStepScratch, TaskFeedbackStats, TaskPosterior,
    TaskUpdate,
};
use crate::inference::mstep::{update_params, update_params_first, update_params_second};
use crate::inference::suffstats::{ElboPartials, FirstMoments, SecondMoments, ShardPlan};
use crate::inference::EStepContext;
use crate::model::TdpmModel;
use crate::params::ModelParams;
use crate::variational::{PhiRowAccess, VariationalState};
use crate::{CoreError, Result};
use crowd_math::{Matrix, Validate, Vector};
use crowd_store::{CrowdDb, ShardedDb};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::ops::Range;
use std::sync::Arc;

/// Diagnostics from a training run.
#[derive(Debug, Clone)]
pub struct FitReport {
    /// EM iterations performed.
    pub iterations: usize,
    /// ELBO after each iteration (should be non-decreasing up to numerical
    /// tolerance of the alternating scheme).
    pub elbo_trace: Vec<f64>,
    /// `true` if the relative-improvement criterion fired before the
    /// iteration budget ran out.
    pub converged: bool,
}

/// Runs the task E-step for a contiguous range of tasks.
///
/// Written once against [`PhiRowAccess`] so the inline path (borrowed
/// [`crate::variational::PhiRowsMut`] view) and the pooled path (owned
/// per-chunk row copies) execute the identical deterministic updates —
/// which is the whole bit-identity argument for parallelizing this phase:
/// task posteriors are mutually independent given the (read-only here)
/// worker posteriors.
#[allow(clippy::too_many_arguments)]
fn run_task_range<P: PhiRowAccess>(
    tasks: &[crate::dataset::TaskData],
    lambda_w: &[Vector],
    nu2_w: &[Vector],
    lambda_c: &mut [Vector],
    nu2_c: &mut [Vector],
    phi: &mut P,
    epsilon: &mut [f64],
    ctx: &EStepContext,
    config: &TdpmConfig,
) -> Result<()> {
    let k = config.num_categories;
    for (j, task) in tasks.iter().enumerate() {
        let stats = TaskFeedbackStats::gather(&task.scores, lambda_w, nu2_w, k)?;
        let update = TaskUpdate {
            words: &task.words,
            num_tokens: task.num_tokens,
            feedback: &stats,
        };
        let mut post = TaskPosterior {
            lambda: &mut lambda_c[j],
            nu2: &mut nu2_c[j],
            phi: phi.row_mut(j),
            epsilon: &mut epsilon[j],
        };
        update_task(&update, &mut post, ctx, config)?;
    }
    Ok(())
}

/// Per-shard work ranges, each split into up to `threads` contiguous
/// subchunks — the unit of pooled work for both E-step halves. With one
/// shard this degenerates to the plain `n.div_ceil(threads)` chunking the
/// pooled path has always used.
fn shard_chunks(
    plan: &ShardPlan,
    range_of: impl Fn(usize) -> Range<usize>,
    threads: usize,
) -> Vec<Range<usize>> {
    let mut ranges = Vec::new();
    for s in 0..plan.num_shards() {
        let r = range_of(s);
        if r.is_empty() {
            continue;
        }
        let chunk = r.len().div_ceil(threads.max(1));
        let mut start = r.start;
        while start < r.end {
            ranges.push(start..(start + chunk).min(r.end));
            start += chunk;
        }
    }
    ranges
}

/// Runs the task E-step over every task, inline or chunked across the
/// persistent [`crowd_math::ScoringPool`].
///
/// Pooled jobs are `'static`, so the mutable per-task state round-trips
/// through them as owned copies: each chunk's `λ_c` / `ν_c²` / `φ` rows /
/// `ε` are copied out, updated by the job, and written back in chunk order.
/// The read-only worker side rides along as `Arc` snapshots. The copies are
/// O(state) per iteration — noise against the E-step's per-task solves —
/// and the updates themselves are [`run_task_range`] in both paths, so
/// pooled results are bit-identical to sequential ones for any shard or
/// thread count (task posteriors are mutually independent).
fn update_all_tasks(
    ts: &TrainingSet,
    state: &mut VariationalState,
    ctx: &Arc<EStepContext>,
    config: &TdpmConfig,
    plan: &ShardPlan,
) -> Result<()> {
    let threads = config.num_threads.max(1).min(ts.num_tasks().max(1));

    if plan.num_shards() <= 1 && threads <= 1 {
        let mut phi = state.phi.rows_mut();
        return run_task_range(
            ts.tasks(),
            &state.lambda_w,
            &state.nu2_w,
            &mut state.lambda_c,
            &mut state.nu2_c,
            &mut phi,
            &mut state.epsilon,
            ctx,
            config,
        );
    }

    let tasks = ts.tasks_shared();
    let lambda_w = Arc::new(state.lambda_w.clone());
    let nu2_w = Arc::new(state.nu2_w.clone());
    let config_arc = Arc::new(config.clone());

    type ChunkOut = (
        Vec<Vector>,
        Vec<Vector>,
        Vec<Vec<f64>>,
        Vec<f64>,
        Result<()>,
    );
    let mut starts = Vec::new();
    let jobs: Vec<_> = shard_chunks(plan, |s| plan.task_range(s), threads)
        .into_iter()
        .map(|r| {
            let (start, end) = (r.start, r.end);
            starts.push(start);
            let lc: Vec<Vector> = state.lambda_c[start..end].to_vec();
            let nc: Vec<Vector> = state.nu2_c[start..end].to_vec();
            let phi_rows: Vec<Vec<f64>> = (start..end).map(|j| state.phi.row(j).to_vec()).collect();
            let eps: Vec<f64> = state.epsilon[start..end].to_vec();
            let tasks = Arc::clone(&tasks);
            let lambda_w = Arc::clone(&lambda_w);
            let nu2_w = Arc::clone(&nu2_w);
            let ctx = Arc::clone(ctx);
            let config = Arc::clone(&config_arc);
            move || -> ChunkOut {
                let (mut lc, mut nc, mut phi_rows, mut eps) = (lc, nc, phi_rows, eps);
                let outcome = run_task_range(
                    &tasks[start..end],
                    &lambda_w,
                    &nu2_w,
                    &mut lc,
                    &mut nc,
                    &mut phi_rows,
                    &mut eps,
                    &ctx,
                    &config,
                );
                (lc, nc, phi_rows, eps, outcome)
            }
        })
        .collect();

    let mut first_err: Option<CoreError> = None;
    for (start, (lc, nc, phi_rows, eps, outcome)) in starts
        .into_iter()
        .zip(crowd_math::ScoringPool::global().run(jobs))
    {
        // Write every chunk back even when one errs: the in-place scheme
        // this replaces also left sibling chunks' updates applied.
        for (off, v) in lc.into_iter().enumerate() {
            state.lambda_c[start + off] = v;
        }
        for (off, v) in nc.into_iter().enumerate() {
            state.nu2_c[start + off] = v;
        }
        for (off, row) in phi_rows.into_iter().enumerate() {
            state.phi.row_mut(start + off).copy_from_slice(&row);
        }
        for (off, v) in eps.into_iter().enumerate() {
            state.epsilon[start + off] = v;
        }
        if let (Err(e), None) = (outcome, &first_err) {
            first_err = Some(e);
        }
    }
    match first_err {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

/// Runs the worker E-step chunked across the persistent scoring pool.
///
/// Same owned-copy round-trip scheme as [`update_all_tasks`]: each chunk
/// copies its `λ_w` / `ν_w²` rows out, updates them with
/// [`run_worker_range`] against `Arc` snapshots of the (read-only) task
/// posteriors, and is written back in chunk order with first-error
/// propagation. Worker posteriors are mutually independent given the task
/// posteriors, so results are bit-identical to the serial sweep for any
/// shard or thread count.
fn update_workers_pooled(
    state: &mut VariationalState,
    ctx: &Arc<EStepContext>,
    by_worker: &Arc<Vec<Vec<(usize, f64)>>>,
    config: &TdpmConfig,
    plan: &ShardPlan,
) -> Result<()> {
    let k = config.num_categories;
    let threads = config.num_threads.max(1).min(state.lambda_w.len().max(1));
    let lambda_c = Arc::new(state.lambda_c.clone());
    let nu2_c = Arc::new(state.nu2_c.clone());

    type WorkerOut = (Vec<Vector>, Vec<Vector>, Result<()>);
    let mut starts = Vec::new();
    let jobs: Vec<_> = shard_chunks(plan, |s| plan.worker_range(s), threads)
        .into_iter()
        .map(|r| {
            starts.push(r.start);
            let lw: Vec<Vector> = state.lambda_w[r.clone()].to_vec();
            let nw: Vec<Vector> = state.nu2_w[r.clone()].to_vec();
            let by_worker = Arc::clone(by_worker);
            let lambda_c = Arc::clone(&lambda_c);
            let nu2_c = Arc::clone(&nu2_c);
            let ctx = Arc::clone(ctx);
            move || -> WorkerOut {
                let (mut lw, mut nw) = (lw, nw);
                let mut scratch = EStepScratch::new(k);
                let outcome = run_worker_range(
                    r.start,
                    &mut lw,
                    &mut nw,
                    &by_worker,
                    &lambda_c,
                    &nu2_c,
                    &ctx,
                    &mut scratch,
                );
                (lw, nw, outcome)
            }
        })
        .collect();

    let mut first_err: Option<CoreError> = None;
    for (start, (lw, nw, outcome)) in starts
        .into_iter()
        .zip(crowd_math::ScoringPool::global().run(jobs))
    {
        for (off, v) in lw.into_iter().enumerate() {
            state.lambda_w[start + off] = v;
        }
        for (off, v) in nw.into_iter().enumerate() {
            state.nu2_w[start + off] = v;
        }
        if let (Err(e), None) = (outcome, &first_err) {
            first_err = Some(e);
        }
    }
    match first_err {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

/// Gathers the ELBO's block partials per shard on the pool and folds the
/// merged list — bit-identical to the serial [`elbo`] because both reduce
/// the same fixed-block partials in the same global order.
fn elbo_sharded(
    snapshot: &Arc<VariationalState>,
    tasks: &Arc<Vec<crate::dataset::TaskData>>,
    ctx: &Arc<EStepContext>,
    plan: &ShardPlan,
) -> ElboBreakdown {
    let jobs: Vec<_> = (0..plan.num_shards())
        .map(|s| {
            let (wr, tr) = (plan.worker_range(s), plan.task_range(s));
            let state = Arc::clone(snapshot);
            let tasks = Arc::clone(tasks);
            let ctx = Arc::clone(ctx);
            move || ElboPartials::gather(&state, &tasks, &ctx, wr, tr)
        })
        .collect();
    ElboPartials::merge(crowd_math::ScoringPool::global().run(jobs)).fold()
}

/// The sharded M-step: every shard gathers its fixed-block sufficient
/// statistics on the pool, the merged (shard-index-ordered) partials fold
/// to the same reductions [`update_params`] computes serially. Two rounds —
/// first moments fix the means the second moments are gathered about.
fn update_params_sharded(
    params: &mut ModelParams,
    snapshot: &Arc<VariationalState>,
    tasks: &Arc<Vec<crate::dataset::TaskData>>,
    vocab_size: usize,
    plan: &ShardPlan,
    cfg: &TdpmConfig,
    update_tau: bool,
) -> Result<()> {
    let first_jobs: Vec<_> = (0..plan.num_shards())
        .map(|s| {
            let (wr, tr) = (plan.worker_range(s), plan.task_range(s));
            let state = Arc::clone(snapshot);
            move || FirstMoments::gather(&state, wr, tr)
        })
        .collect();
    let parts: Result<Vec<FirstMoments>> = crowd_math::ScoringPool::global()
        .run(first_jobs)
        .into_iter()
        .collect();
    let first = FirstMoments::merge(parts?);
    update_params_first(params, &first)?;

    let mu_w = Arc::new(params.mu_w.clone());
    let mu_c = Arc::new(params.mu_c.clone());
    let second_jobs: Vec<_> = (0..plan.num_shards())
        .map(|s| {
            let (wr, tr) = (plan.worker_range(s), plan.task_range(s));
            let state = Arc::clone(snapshot);
            let tasks = Arc::clone(tasks);
            let mu_w = Arc::clone(&mu_w);
            let mu_c = Arc::clone(&mu_c);
            move || SecondMoments::gather(&state, &tasks, &mu_w, &mu_c, vocab_size, wr, tr)
        })
        .collect();
    let parts: Result<Vec<SecondMoments>> = crowd_math::ScoringPool::global()
        .run(second_jobs)
        .into_iter()
        .collect();
    let second = SecondMoments::merge(parts?);
    update_params_second(params, &second, cfg, update_tau)
}

/// Fits TDPM models by variational EM.
#[derive(Debug, Clone)]
pub struct TdpmTrainer {
    config: TdpmConfig,
    obs: crowd_obs::Obs,
}

impl TdpmTrainer {
    /// Creates a trainer with the given configuration.
    pub fn new(config: TdpmConfig) -> Self {
        TdpmTrainer {
            config,
            obs: crowd_obs::Obs::noop(),
        }
    }

    /// Attaches shared observability: per-epoch ELBO, E-/M-step wall time
    /// and convergence deltas are recorded under the `trainer` component,
    /// and the fitted model inherits the handle for its online metrics.
    pub fn with_obs(mut self, obs: crowd_obs::Obs) -> Self {
        self.obs = obs;
        self
    }

    /// The configuration in use.
    pub fn config(&self) -> &TdpmConfig {
        &self.config
    }

    /// Fits a model on every resolved task in `db`.
    pub fn fit(&self, db: &CrowdDb) -> Result<TdpmModel> {
        let ts = TrainingSet::from_db(db);
        self.fit_training_set(&ts).map(|(m, _)| m)
    }

    /// Fits a model on a sharded store, returning diagnostics.
    ///
    /// The fit plan mirrors the store's partitioning: unless the
    /// configuration explicitly asks for a different shard count
    /// (`num_shards > 1`), the E-step/M-step run with one plan shard per
    /// store shard. Either way the result is bit-identical to an unsharded
    /// fit of the same data — [`crowd_store::ShardedDb::resolved_tasks`] is
    /// shard-count invariant and the reduction scheme is fixed-block
    /// (DESIGN §11).
    // crowd-lint: root(det)
    pub fn fit_sharded(&self, db: &ShardedDb) -> Result<(TdpmModel, FitReport)> {
        let ts = TrainingSet::from_sharded(db);
        if self.config.num_shards > 1 {
            return self.fit_training_set(&ts);
        }
        let trainer = TdpmTrainer {
            config: TdpmConfig {
                num_shards: db.num_shards(),
                ..self.config.clone()
            },
            obs: self.obs.clone(),
        };
        trainer.fit_training_set(&ts)
    }

    /// Fits a model on a prepared training set, returning diagnostics.
    pub fn fit_training_set(&self, ts: &TrainingSet) -> Result<(TdpmModel, FitReport)> {
        self.config.validate()?;
        if ts.num_tasks() == 0 {
            return Err(CoreError::EmptyTrainingSet);
        }
        let k = self.config.num_categories;

        let mut params = self.initial_params(ts);
        let mut state = VariationalState::init(ts, k, self.config.seed);
        let by_worker = Arc::new(ts.scores_by_worker());

        // The shard plan cuts both entity axes into block-aligned contiguous
        // ranges; every phase below is driven off it, and the fixed-block
        // sufficient-statistics scheme keeps the fit bit-identical to the
        // serial unsharded path for every shard count (DESIGN §11).
        let shards = self.config.num_shards.max(1);
        let plan = ShardPlan::new(ts.num_workers(), ts.num_tasks(), shards);
        let sharded = plan.num_shards() > 1;
        let tasks_shared = ts.tasks_shared();

        let mut trace = Vec::with_capacity(self.config.max_em_iters);
        let mut converged = false;
        let mut iterations = 0;
        // One scratch for the whole EM run: the serial worker E-step resets
        // it per worker instead of cloning fresh precision/RHS buffers.
        let mut scratch = EStepScratch::new(k);

        let m = &self.obs.metrics;
        let epochs = m.counter("trainer", "epochs");
        let elbo_gauge = m.gauge("trainer", "elbo");
        let delta_gauge = m.gauge("trainer", "elbo_rel_delta");
        let estep_task_secs = m.histogram("trainer", "estep_task_seconds");
        let validations = m.counter("validate", "checks");
        let estep_worker_secs = m.histogram("trainer", "estep_worker_seconds");
        let mstep_secs = m.histogram("trainer", "mstep_seconds");
        let rss_gauge = m.gauge("trainer", "peak_rss_bytes");

        for _ in 0..self.config.max_em_iters {
            iterations += 1;
            let ctx = Arc::new(EStepContext::new(&params)?);

            // E-step (a): task posteriors, Eqs. 12–15. Tasks go first: on the
            // first iteration the prior-scale random worker means act as the
            // symmetry breaker that pulls each task's category toward the
            // workers who scored well on it.
            let t0 = std::time::Instant::now();
            update_all_tasks(ts, &mut state, &ctx, &self.config, &plan)?;
            estep_task_secs.observe_duration(t0.elapsed());
            crate::validate::run(&validations, "E-step (task posteriors)", || {
                Validate::validate(&state)
            });

            // E-step (b): worker posteriors, Eqs. 10–11.
            let t1 = std::time::Instant::now();
            if sharded || self.config.num_threads > 1 {
                update_workers_pooled(&mut state, &ctx, &by_worker, &self.config, &plan)?;
            } else {
                update_workers(&mut state, ts, &ctx, &by_worker, &mut scratch)?;
            }
            estep_worker_secs.observe_duration(t1.elapsed());
            crate::validate::run(&validations, "E-step (worker posteriors)", || {
                Validate::validate(&state)
            });

            // One shared read-only snapshot serves the sharded ELBO gather
            // and both M-step rounds this epoch.
            let snapshot = sharded.then(|| Arc::new(state.clone()));

            let bound = match &snapshot {
                Some(snap) => elbo_sharded(snap, &tasks_shared, &ctx, &plan).total(),
                None => elbo(&state, ts, &ctx).total(),
            };
            let improved = trace
                .last()
                .map(|&prev: &f64| {
                    let denom: f64 = prev.abs().max(1.0);
                    (bound - prev) / denom
                })
                .unwrap_or(f64::INFINITY);
            trace.push(bound);

            // M-step: Eqs. 16–21 (τ held during warm-up).
            let update_tau = iterations > self.config.tau_warmup_iters;
            let t2 = std::time::Instant::now();
            match &snapshot {
                Some(snap) => update_params_sharded(
                    &mut params,
                    snap,
                    &tasks_shared,
                    ts.vocab_size(),
                    &plan,
                    &self.config,
                    update_tau,
                )?,
                None => update_params(&mut params, &state, ts, &self.config, update_tau)?,
            }
            mstep_secs.observe_duration(t2.elapsed());
            crate::validate::run(&validations, "M-step (model parameters)", || {
                Validate::validate(&params)
            });

            epochs.inc();
            elbo_gauge.set(bound);
            if let Some(bytes) = crowd_obs::peak_rss_bytes() {
                rss_gauge.set(bytes as f64);
            }
            if improved.is_finite() {
                delta_gauge.set(improved);
            }
            self.obs.tracer.event(
                "trainer",
                "epoch",
                vec![
                    ("epoch".into(), iterations.into()),
                    ("elbo".into(), bound.into()),
                    (
                        "rel_delta".into(),
                        if improved.is_finite() { improved } else { 0.0 }.into(),
                    ),
                ],
            );

            if improved.abs() < self.config.elbo_rel_tol {
                converged = true;
                break;
            }
        }

        // Assemble the model: worker skills + their sufficient statistics so
        // incremental updates can continue from where training left off.
        let mut skills = Vec::with_capacity(ts.num_workers());
        for (i, worker_scores) in by_worker.iter().enumerate() {
            let mut sum_cc = Matrix::zeros(k, k);
            let mut sum_sc = Vector::zeros(k);
            let mut sum_diag = Vector::zeros(k);
            for &(j, s) in worker_scores {
                sum_cc.add_outer(1.0, &state.lambda_c[j])?;
                sum_cc.add_diag(&state.nu2_c[j])?;
                sum_sc.axpy(s, &state.lambda_c[j])?;
                for kk in 0..k {
                    sum_diag[kk] +=
                        state.lambda_c[j][kk] * state.lambda_c[j][kk] + state.nu2_c[j][kk];
                }
            }
            skills.push(TdpmModel::skill_from_training(
                state.lambda_w[i].clone(),
                state.nu2_w[i].clone(),
                sum_cc,
                sum_sc,
                sum_diag,
                worker_scores.len(),
            ));
        }

        let mut model = TdpmModel::assemble(
            params,
            self.config.clone(),
            skills,
            ts.worker_ids().to_vec(),
        )?;
        // Retain the fitted (feedback-informed) task posteriors so resolved
        // tasks can be ranked without a word-only re-projection.
        let trained = ts
            .tasks()
            .iter()
            .enumerate()
            .map(|(j, t)| {
                (
                    t.task,
                    crate::model::TaskProjection {
                        lambda: state.lambda_c[j].clone(),
                        nu2: state.nu2_c[j].clone(),
                        num_tokens: t.num_tokens,
                    },
                )
            })
            .collect();
        model.set_trained_tasks(trained);
        model.set_obs(self.obs.clone());
        crate::validate::run(&validations, "model assembly", || {
            Validate::validate(&model)
        });
        self.obs.metrics.counter("trainer", "fits").inc();
        let report = FitReport {
            iterations,
            elbo_trace: trace,
            converged,
        };
        Ok((model, report))
    }

    /// Initial parameters: neutral priors plus a corpus-seeded, noise-broken
    /// language model (uniform β would make all categories identical and EM
    /// could never separate them).
    ///
    /// The initial `τ` is set from the *observed score scale* (¼ of the
    /// score standard deviation): during the warm-up iterations `τ` is held
    /// fixed, and a value tuned to the platform's score range keeps the
    /// feedback likelihood binding whether scores are thumbs-up counts
    /// (0–20) or best-answer similarities in `[0, 1]`. A fixed `τ = 1`
    /// start lets the prior dominate on compressed scales and the model
    /// collapses to a single trust direction.
    fn initial_params(&self, ts: &TrainingSet) -> ModelParams {
        let k = self.config.num_categories;
        let v = ts.vocab_size();
        let mut params = ModelParams::neutral(k, v);

        let scores: Vec<f64> = ts
            .tasks()
            .iter()
            .flat_map(|t| t.scores.iter().map(|&(_, s)| s))
            .collect();
        let std = crowd_math::stats::scalar_variance(&scores).sqrt();
        params.tau = (0.25 * std).max(self.config.min_tau2.sqrt()).min(1.0);

        if v == 0 {
            return params;
        }
        let mut rng = StdRng::seed_from_u64(self.config.seed.wrapping_mul(0x9E37_79B9));
        let counts = ts.corpus_term_counts();
        let mut beta = Matrix::zeros(k, v);
        for kk in 0..k {
            for vv in 0..v {
                let noise: f64 = rng.random_range(0.5..1.5);
                beta[(kk, vv)] = (counts[vv] + 1.0) * noise;
            }
            crowd_math::special::normalize_in_place(beta.row_mut(kk));
        }
        params.beta = beta;
        params
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::TaskData;
    use crowd_store::{TaskId, WorkerId};

    /// Two clearly separated "topics" (terms 0–1 vs terms 2–3) with two
    /// specialist workers: w0 scores high on topic-A tasks, w1 on topic-B.
    fn separable_ts() -> TrainingSet {
        let mut tasks = Vec::new();
        for j in 0..12u32 {
            let topic_a = j % 2 == 0;
            let words = if topic_a {
                vec![(0usize, 3u32), (1, 2)]
            } else {
                vec![(2, 3), (3, 2)]
            };
            let scores = if topic_a {
                vec![(0usize, 4.0), (1usize, 0.5)]
            } else {
                vec![(0, 0.5), (1, 4.0)]
            };
            tasks.push(TaskData {
                task: TaskId(j),
                words,
                num_tokens: 5.0,
                scores,
            });
        }
        TrainingSet::from_parts(tasks, 2, 4)
    }

    fn quick_config(k: usize) -> TdpmConfig {
        TdpmConfig {
            num_categories: k,
            max_em_iters: 25,
            seed: 11,
            ..TdpmConfig::default()
        }
    }

    #[test]
    fn empty_training_set_errors() {
        let ts = TrainingSet::from_parts(vec![], 0, 0);
        let err = TdpmTrainer::new(quick_config(2)).fit_training_set(&ts);
        assert!(matches!(err, Err(CoreError::EmptyTrainingSet)));
    }

    #[test]
    fn elbo_is_monotone_nondecreasing() {
        let ts = separable_ts();
        let (_, report) = TdpmTrainer::new(quick_config(2))
            .fit_training_set(&ts)
            .unwrap();
        for w in report.elbo_trace.windows(2) {
            let tol = 1e-6 * w[0].abs().max(1.0);
            assert!(
                w[1] >= w[0] - tol,
                "ELBO decreased: {} → {} (trace {:?})",
                w[0],
                w[1],
                report.elbo_trace
            );
        }
    }

    #[test]
    fn specialists_get_separated_skills() {
        let ts = separable_ts();
        let (model, _) = TdpmTrainer::new(quick_config(2))
            .fit_training_set(&ts)
            .unwrap();
        // Project a pure topic-A task and a pure topic-B task.
        let pa = model.project_words(&[(0, 4), (1, 4)]);
        let pb = model.project_words(&[(2, 4), (3, 4)]);
        let a_top = model.select_top_k(&pa, vec![WorkerId(0), WorkerId(1)], 1);
        let b_top = model.select_top_k(&pb, vec![WorkerId(0), WorkerId(1)], 1);
        assert_eq!(a_top[0].worker, WorkerId(0), "w0 is the topic-A expert");
        assert_eq!(b_top[0].worker, WorkerId(1), "w1 is the topic-B expert");
    }

    #[test]
    fn training_is_deterministic_for_fixed_seed() {
        let ts = separable_ts();
        let (m1, r1) = TdpmTrainer::new(quick_config(2))
            .fit_training_set(&ts)
            .unwrap();
        let (m2, r2) = TdpmTrainer::new(quick_config(2))
            .fit_training_set(&ts)
            .unwrap();
        assert_eq!(r1.elbo_trace, r2.elbo_trace);
        let s1 = m1.skill(WorkerId(0)).unwrap().mean.clone();
        let s2 = m2.skill(WorkerId(0)).unwrap().mean.clone();
        assert_eq!(s1.as_slice(), s2.as_slice());
        let _ = (m1, m2);
    }

    #[test]
    fn fit_from_db_end_to_end() {
        let mut db = CrowdDb::new();
        let w0 = db.add_worker("dba");
        let w1 = db.add_worker("statistician");
        let mut tasks = Vec::new();
        for i in 0..6 {
            let (text, good, bad) = if i % 2 == 0 {
                ("btree index page split buffer pool", w0, w1)
            } else {
                ("posterior prior likelihood gaussian variance", w1, w0)
            };
            let t = db.add_task(text);
            db.assign(good, t).unwrap();
            db.assign(bad, t).unwrap();
            db.record_feedback(good, t, 4.0).unwrap();
            db.record_feedback(bad, t, 0.0).unwrap();
            tasks.push(t);
        }
        let model = TdpmTrainer::new(quick_config(2)).fit(&db).unwrap();
        let proj = model.project_bow(&db.task(tasks[0]).unwrap().bow);
        let top = model.select_top_k(&proj, db.worker_ids(), 1);
        assert_eq!(top[0].worker, w0, "database task routes to the DBA");
    }

    #[test]
    fn single_category_model_trains() {
        // K = 1 degenerates gracefully (pure trust model).
        let ts = separable_ts();
        let (model, report) = TdpmTrainer::new(quick_config(1))
            .fit_training_set(&ts)
            .unwrap();
        assert!(report.iterations >= 1);
        assert_eq!(model.num_categories(), 1);
    }

    #[test]
    fn report_converges_within_budget_on_tiny_problem() {
        let ts = separable_ts();
        let cfg = TdpmConfig {
            max_em_iters: 200,
            elbo_rel_tol: 1e-5,
            ..quick_config(2)
        };
        let (_, report) = TdpmTrainer::new(cfg).fit_training_set(&ts).unwrap();
        assert!(
            report.converged,
            "should converge in 200 iters; trace: {:?}",
            report.elbo_trace
        );
    }
}
