//! Dense serving snapshot of the worker-skill posteriors.
//!
//! The online selection query (paper Eq. 1; Algorithm 3 line 7) scores every
//! candidate worker against one projected task. Serving that from the
//! per-worker [`crate::model::WorkerSkill`] records means one `HashMap`
//! lookup plus a heap-allocated [`crowd_math::Vector`] dot per candidate per
//! query. [`SkillMatrix`] is the dense alternative: a contiguous row-major
//! `W × K` structure-of-arrays snapshot of the posterior means, with a
//! parallel `W × K` variance block for the optimistic (UCB) path and a dense
//! row-index ↔ [`WorkerId`] map. The model keeps it in lockstep with the
//! skill records — rebuilt on fit/assembly and row-upserted on
//! `add_worker` / `record_feedback` — so selection never touches the
//! `Vector`-of-`HashMap` storage at all.
//!
//! Every scoring path here is **bit-identical** to the serial reference
//! implementation (`TdpmModel::select_top_k_serial`):
//!
//! - per-row scores use [`crowd_math::kernels`], which accumulate in exactly
//!   `Vector::dot`'s left-to-right order;
//! - the chunked-parallel path splits *candidates* into disjoint contiguous
//!   chunks (never a single dot product), feeds the existing [`top_k`]
//!   min-heap per chunk, and merges the per-chunk winners with one more
//!   [`top_k`]. Because [`top_k`] ranks under a *total* order (score
//!   descending via `total_cmp`, ties to the smaller id, NaN skipped), the
//!   global top-k is contained in the union of per-chunk top-ks and the merge
//!   reproduces it exactly, independent of chunking (DESIGN.md §6d).

use crate::selection::{top_k, RankedWorker};
use crowd_math::guard::{Unchecked, WorkGuard, CHECKPOINT_ROWS};
use crowd_math::kernels;
use crowd_store::WorkerId;
use std::collections::HashMap;

/// Candidates resolved against the matrix: `(worker, row index)` pairs in
/// input order, unknown workers dropped.
pub type ResolvedCandidates = Vec<(WorkerId, usize)>;

/// A ranking that may have been stopped early by a [`WorkGuard`].
///
/// `ranked` is a correct top-k of the `scanned`-candidate prefix that was
/// actually scored — never a corrupt mixture — and `complete` records
/// whether the guard let the scan finish. Guarded selection returning
/// `complete == true` is bit-identical to the unguarded path on the same
/// inputs (same loop, no-op guard).
#[derive(Debug, Clone, PartialEq)]
pub struct PartialRanking {
    /// Top-k of the scanned candidate prefix.
    pub ranked: Vec<RankedWorker>,
    /// `true` when every candidate was scored before the guard fired.
    pub complete: bool,
    /// How many resolved candidates were scored (summed across chunks).
    pub scanned: usize,
}

/// Contiguous row-major `W × K` snapshot of posterior means and variances.
#[derive(Debug, Clone, Default)]
pub struct SkillMatrix {
    k: usize,
    ids: Vec<WorkerId>,
    index: HashMap<WorkerId, usize>,
    /// Row-major `W × K` posterior means (`λ_w`).
    means: Vec<f64>,
    /// Row-major `W × K` posterior diagonal variances (`ν_w²`).
    vars: Vec<f64>,
}

impl SkillMatrix {
    /// An empty matrix over `k` latent categories.
    pub fn new(k: usize) -> Self {
        SkillMatrix {
            k,
            ids: Vec::new(),
            index: HashMap::new(),
            means: Vec::new(),
            vars: Vec::new(),
        }
    }

    /// An empty matrix with room for `workers` rows.
    pub fn with_capacity(k: usize, workers: usize) -> Self {
        SkillMatrix {
            k,
            ids: Vec::with_capacity(workers),
            index: HashMap::with_capacity(workers),
            means: Vec::with_capacity(workers * k),
            vars: Vec::with_capacity(workers * k),
        }
    }

    /// Number of latent categories `K`.
    pub fn num_categories(&self) -> usize {
        self.k
    }

    /// Number of worker rows `W`.
    pub fn num_workers(&self) -> usize {
        self.ids.len()
    }

    /// Worker ids by row index.
    pub fn ids(&self) -> &[WorkerId] {
        &self.ids
    }

    /// Row index of a worker, if present.
    pub fn row_of(&self, worker: WorkerId) -> Option<usize> {
        self.index.get(&worker).copied()
    }

    /// The mean row of a worker.
    pub fn mean_row(&self, row: usize) -> &[f64] {
        &self.means[row * self.k..(row + 1) * self.k]
    }

    /// The variance row of a worker.
    pub fn var_row(&self, row: usize) -> &[f64] {
        &self.vars[row * self.k..(row + 1) * self.k]
    }

    /// Inserts or overwrites the row for `worker`.
    ///
    /// Both slices must have length `K`. This is the single maintenance
    /// entry point: assembly pushes every fitted worker through it, and the
    /// incremental paths (`add_worker`, `record_feedback`) upsert the one
    /// row they touched.
    ///
    /// # Panics
    ///
    /// Panics when `mean` or `var` is not `K` elements long — a shape bug in
    /// the caller, never a data-dependent condition.
    pub fn upsert(&mut self, worker: WorkerId, mean: &[f64], var: &[f64]) {
        assert_eq!(mean.len(), self.k, "SkillMatrix::upsert mean length");
        assert_eq!(var.len(), self.k, "SkillMatrix::upsert var length");
        match self.index.get(&worker) {
            Some(&row) => {
                self.means[row * self.k..(row + 1) * self.k].copy_from_slice(mean);
                self.vars[row * self.k..(row + 1) * self.k].copy_from_slice(var);
            }
            None => {
                self.index.insert(worker, self.ids.len());
                self.ids.push(worker);
                self.means.extend_from_slice(mean);
                self.vars.extend_from_slice(var);
            }
        }
    }

    /// Resolves candidate ids to `(worker, row)` pairs, dropping workers the
    /// matrix does not know — the one hash walk of a selection query, paid
    /// once per batch by the batched paths.
    pub fn resolve(&self, candidates: impl IntoIterator<Item = WorkerId>) -> ResolvedCandidates {
        candidates
            .into_iter()
            .filter_map(|w| self.row_of(w).map(|row| (w, row)))
            .collect()
    }

    /// Every worker row, in row order.
    pub fn resolve_all(&self) -> ResolvedCandidates {
        self.ids
            .iter()
            .copied()
            .enumerate()
            .map(|(r, w)| (w, r))
            .collect()
    }

    /// Top-`k` by posterior-mean score `λ_w · lambda` over resolved
    /// candidates, chunk-parallel over `threads` scoped threads.
    ///
    /// `threads` is honored as given (clamped to the candidate count);
    /// callers own the "is this pool big enough to be worth spawning for"
    /// policy. Results are bit-identical for every thread count.
    pub fn select_mean(
        &self,
        lambda: &[f64],
        resolved: &[(WorkerId, usize)],
        k: usize,
        threads: usize,
    ) -> Vec<RankedWorker> {
        self.select_mean_guarded(lambda, resolved, k, threads, &Unchecked)
            .ranked
    }

    /// [`SkillMatrix::select_mean`] with a [`WorkGuard`] polled every
    /// [`CHECKPOINT_ROWS`] candidates (per scoring thread), charged with the
    /// chunk's row count before the chunk is scored. A firing guard stops
    /// the scan at the chunk boundary and the result reports the scanned
    /// prefix; a never-firing guard is bit-identical to
    /// [`SkillMatrix::select_mean`] (which delegates here).
    pub fn select_mean_guarded<G: WorkGuard>(
        &self,
        lambda: &[f64],
        resolved: &[(WorkerId, usize)],
        k: usize,
        threads: usize,
        guard: &G,
    ) -> PartialRanking {
        debug_assert_eq!(lambda.len(), self.k, "SkillMatrix::select_mean lambda");
        self.select_with(resolved, k, threads, guard, |row| {
            kernels::dot(self.mean_row(row), lambda)
        })
    }

    /// Optimistic (UCB-style) top-`k`:
    /// `λ_w · lambda + beta * sqrt(max(0, Σ_k ν²_w,k · lambda_k²))`.
    pub fn select_optimistic(
        &self,
        lambda: &[f64],
        resolved: &[(WorkerId, usize)],
        k: usize,
        beta: f64,
        threads: usize,
    ) -> Vec<RankedWorker> {
        debug_assert_eq!(
            lambda.len(),
            self.k,
            "SkillMatrix::select_optimistic lambda"
        );
        self.select_with(resolved, k, threads, &Unchecked, |row| {
            kernels::ucb_score(self.mean_row(row), self.var_row(row), lambda, beta)
        })
        .ranked
    }

    /// Batched mean-score top-`k`: one ranking per query in `lambdas`, all
    /// against the same resolved candidate set.
    ///
    /// The candidate resolution (the hash walk) is paid once for the whole
    /// batch, and scoring runs through the cache-blocked batch kernel
    /// ([`kernels::gemv_gathered_batch`]): each block of gathered skill rows
    /// is streamed through the cache once for *all* queries. Queries are
    /// chunk-parallel over `threads`. Per-query results are bit-identical to
    /// [`SkillMatrix::select_mean`] on the same inputs.
    ///
    /// # Panics
    ///
    /// Re-raises the panic of any scoring thread (a panicking scorer is a
    /// bug; there is no error value to surface from a joined chunk).
    pub fn select_mean_batch(
        &self,
        lambdas: &[&[f64]],
        resolved: &[(WorkerId, usize)],
        k: usize,
        threads: usize,
    ) -> Vec<Vec<RankedWorker>> {
        self.select_mean_batch_guarded(lambdas, resolved, k, threads, &Unchecked)
            .into_iter()
            .map(|p| p.ranked)
            .collect()
    }

    /// [`SkillMatrix::select_mean_batch`] with a [`WorkGuard`] polled at
    /// every cache block of the batched kernel, charged `block rows ×
    /// queries` units before the block streams. When the guard fires, every
    /// query in the affected chunk is ranked over the same scanned row
    /// prefix (the kernel stops for all of them at one block boundary), so
    /// no ranking ever mixes scored and unscored rows. Never-firing guards
    /// are bit-identical to [`SkillMatrix::select_mean_batch`] (which
    /// delegates here).
    ///
    /// # Panics
    ///
    /// Re-raises the panic of any scoring thread (a panicking scorer is a
    /// bug; there is no error value to surface from a joined chunk).
    pub fn select_mean_batch_guarded<G: WorkGuard>(
        &self,
        lambdas: &[&[f64]],
        resolved: &[(WorkerId, usize)],
        k: usize,
        threads: usize,
        guard: &G,
    ) -> Vec<PartialRanking> {
        let rows: Vec<usize> = resolved.iter().map(|&(_, row)| row).collect();
        let run = |chunk: &[&[f64]]| -> Vec<PartialRanking> {
            let mut scores: Vec<Vec<f64>> = vec![Vec::new(); chunk.len()];
            let done = kernels::gemv_gathered_batch_guarded(
                self.k,
                &self.means,
                &rows,
                chunk,
                &mut scores,
                guard,
            );
            scores
                .iter()
                .map(|qs| PartialRanking {
                    ranked: top_k(
                        resolved[..done]
                            .iter()
                            .zip(&qs[..done])
                            .map(|(&(w, _), &s)| (w, s)),
                        k,
                    ),
                    complete: done == rows.len(),
                    scanned: done,
                })
                .collect()
        };

        let q = lambdas.len();
        let threads = threads.max(1).min(q.max(1));
        if threads <= 1 || q <= 1 {
            return run(lambdas);
        }
        let chunk = q.div_ceil(threads);
        crossbeam::thread::scope(|scope| {
            let mut handles = Vec::new();
            let mut rest = lambdas;
            while !rest.is_empty() {
                let take = chunk.min(rest.len());
                let (now, later) = rest.split_at(take);
                rest = later;
                let run = &run;
                handles.push(scope.spawn(move |_| run(now)));
            }
            handles
                .into_iter()
                // crowd-lint: allow(no-unwrap-on-serve-path) -- re-raises a child thread's panic; a panicked scoring chunk is a bug, not an error value
                .flat_map(|h| h.join().expect("batch selection thread panicked"))
                .collect()
        })
        // crowd-lint: allow(no-unwrap-on-serve-path) -- crossbeam scope errs only when a child panicked; propagating that panic is the intended behavior
        .expect("crossbeam scope")
    }

    /// Shared chunk-parallel top-k driver: scores rows with `score`, feeds
    /// the bounded min-heap per contiguous candidate chunk, merges the
    /// per-chunk winners with one more [`top_k`]. The guard is polled every
    /// [`CHECKPOINT_ROWS`] candidates inside each chunk; a stopped chunk
    /// contributes its scanned prefix and the merged result is marked
    /// incomplete.
    fn select_with<F, G>(
        &self,
        resolved: &[(WorkerId, usize)],
        k: usize,
        threads: usize,
        guard: &G,
        score: F,
    ) -> PartialRanking
    where
        F: Fn(usize) -> f64 + Sync,
        G: WorkGuard,
    {
        // One guarded pass over a contiguous candidate run. The checkpoint
        // chunking only gates admission — element order and the single
        // `top_k` feed are exactly the unchunked iteration, so a never-
        // firing guard is bit-identical to the historical path.
        let guarded_scan = |run: &[(WorkerId, usize)]| -> (Vec<RankedWorker>, usize) {
            let mut scanned = 0usize;
            let ranked = top_k(
                run.chunks(CHECKPOINT_ROWS)
                    .take_while(|c| {
                        let admit = guard.consume(c.len() as u64);
                        if admit {
                            scanned += c.len();
                        }
                        admit
                    })
                    .flatten()
                    .map(|&(w, row)| (w, score(row))),
                k,
            );
            (ranked, scanned)
        };
        let n = resolved.len();
        let threads = threads.max(1).min(n.max(1));
        if threads <= 1 {
            let (ranked, scanned) = guarded_scan(resolved);
            return PartialRanking {
                ranked,
                complete: scanned == n,
                scanned,
            };
        }
        let chunk = n.div_ceil(threads);
        let partials: Vec<(Vec<RankedWorker>, usize)> = crossbeam::thread::scope(|scope| {
            let mut handles = Vec::new();
            let mut rest = resolved;
            while !rest.is_empty() {
                let take = chunk.min(rest.len());
                let (now, later) = rest.split_at(take);
                rest = later;
                let guarded_scan = &guarded_scan;
                handles.push(scope.spawn(move |_| guarded_scan(now)));
            }
            handles
                .into_iter()
                // crowd-lint: allow(no-unwrap-on-serve-path) -- re-raises a child thread's panic; a panicked scoring chunk is a bug, not an error value
                .map(|h| h.join().expect("selection chunk thread panicked"))
                .collect()
        })
        // crowd-lint: allow(no-unwrap-on-serve-path) -- crossbeam scope errs only when a child panicked; propagating that panic is the intended behavior
        .expect("crossbeam scope");
        let scanned: usize = partials.iter().map(|&(_, s)| s).sum();
        PartialRanking {
            ranked: top_k(
                partials
                    .into_iter()
                    .flat_map(|(rws, _)| rws)
                    .map(|rw| (rw.worker, rw.score)),
                k,
            ),
            complete: scanned == n,
            scanned,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrix() -> SkillMatrix {
        let mut m = SkillMatrix::new(3);
        for w in 0..10u32 {
            let mean: Vec<f64> = (0..3)
                .map(|k| (w as f64 - 4.5) * 0.3 + k as f64 * 0.1)
                .collect();
            let var: Vec<f64> = (0..3).map(|k| 0.5 + (w as f64 + k as f64) * 0.01).collect();
            m.upsert(WorkerId(w), &mean, &var);
        }
        m
    }

    #[test]
    fn upsert_appends_then_overwrites() {
        let mut m = SkillMatrix::new(2);
        m.upsert(WorkerId(3), &[1.0, 2.0], &[0.1, 0.2]);
        m.upsert(WorkerId(5), &[3.0, 4.0], &[0.3, 0.4]);
        assert_eq!(m.num_workers(), 2);
        assert_eq!(m.row_of(WorkerId(5)), Some(1));
        m.upsert(WorkerId(3), &[9.0, 9.0], &[0.9, 0.9]);
        assert_eq!(m.num_workers(), 2);
        assert_eq!(m.mean_row(0), &[9.0, 9.0]);
        assert_eq!(m.var_row(0), &[0.9, 0.9]);
        assert_eq!(m.mean_row(1), &[3.0, 4.0]);
    }

    #[test]
    fn resolve_drops_unknown_and_keeps_order() {
        let m = matrix();
        let resolved = m.resolve(vec![WorkerId(7), WorkerId(99), WorkerId(2)]);
        assert_eq!(resolved, vec![(WorkerId(7), 7), (WorkerId(2), 2)]);
        assert_eq!(m.resolve_all().len(), 10);
    }

    #[test]
    fn chunked_selection_matches_serial_for_every_thread_count() {
        let m = matrix();
        let resolved = m.resolve_all();
        let lambda = [0.7, -0.3, 1.1];
        let serial = m.select_mean(&lambda, &resolved, 4, 1);
        for threads in [2, 3, 8, 64] {
            let par = m.select_mean(&lambda, &resolved, 4, threads);
            assert_eq!(par.len(), serial.len());
            for (a, b) in par.iter().zip(&serial) {
                assert_eq!(a.worker, b.worker);
                assert_eq!(a.score.to_bits(), b.score.to_bits(), "threads={threads}");
            }
        }
    }

    #[test]
    fn optimistic_adds_uncertainty_bonus() {
        let mut m = SkillMatrix::new(1);
        m.upsert(WorkerId(0), &[1.0], &[0.0]); // proven
        m.upsert(WorkerId(1), &[1.0], &[4.0]); // uncertain
        let resolved = m.resolve_all();
        let greedy = m.select_mean(&[1.0], &resolved, 2, 1);
        assert_eq!(
            greedy[0].worker,
            WorkerId(0),
            "mean tie breaks to smaller id"
        );
        let optimistic = m.select_optimistic(&[1.0], &resolved, 2, 1.0, 1);
        assert_eq!(optimistic[0].worker, WorkerId(1));
        assert!((optimistic[0].score - 3.0).abs() < 1e-12);
    }

    #[test]
    fn batch_matches_per_query_selection() {
        let m = matrix();
        let resolved = m.resolve(vec![
            WorkerId(9),
            WorkerId(0),
            WorkerId(4),
            WorkerId(6),
            WorkerId(1),
        ]);
        let q0 = [1.0, 0.0, 0.0];
        let q1 = [-0.4, 0.9, 0.2];
        let q2 = [0.0, 0.0, -1.0];
        let lambdas: Vec<&[f64]> = vec![&q0, &q1, &q2];
        for threads in [1, 2, 8] {
            let batch = m.select_mean_batch(&lambdas, &resolved, 3, threads);
            assert_eq!(batch.len(), 3);
            for (lambda, got) in lambdas.iter().zip(&batch) {
                let want = m.select_mean(lambda, &resolved, 3, 1);
                assert_eq!(got.len(), want.len());
                for (a, b) in got.iter().zip(&want) {
                    assert_eq!(a.worker, b.worker);
                    assert_eq!(a.score.to_bits(), b.score.to_bits());
                }
            }
        }
    }

    #[test]
    fn nan_rows_are_skipped_in_every_path() {
        let mut m = SkillMatrix::new(2);
        m.upsert(WorkerId(0), &[f64::NAN, 1.0], &[1.0, 1.0]);
        m.upsert(WorkerId(1), &[1.0, 1.0], &[1.0, 1.0]);
        let resolved = m.resolve_all();
        let lambda = [1.0, 1.0];
        for threads in [1, 2] {
            let mean = m.select_mean(&lambda, &resolved, 2, threads);
            assert_eq!(mean.len(), 1);
            assert_eq!(mean[0].worker, WorkerId(1));
            let opt = m.select_optimistic(&lambda, &resolved, 2, 0.5, threads);
            assert_eq!(opt.len(), 1);
            let batch = m.select_mean_batch(&[&lambda], &resolved, 2, threads);
            assert_eq!(batch[0].len(), 1);
        }
    }

    /// A guard admitting a fixed number of units, then refusing.
    struct Budget(std::sync::atomic::AtomicU64);
    impl WorkGuard for Budget {
        fn consume(&self, units: u64) -> bool {
            use std::sync::atomic::Ordering;
            self.0
                .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |r| r.checked_sub(units))
                .is_ok()
        }
    }

    #[test]
    fn never_firing_guard_is_bitwise_identical_and_complete() {
        let m = matrix();
        let resolved = m.resolve_all();
        let lambda = [0.7, -0.3, 1.1];
        for threads in [1, 2, 8] {
            let plain = m.select_mean(&lambda, &resolved, 4, threads);
            let guarded = m.select_mean_guarded(&lambda, &resolved, 4, threads, &Unchecked);
            assert!(guarded.complete);
            assert_eq!(guarded.scanned, resolved.len());
            assert_eq!(guarded.ranked.len(), plain.len());
            for (a, b) in guarded.ranked.iter().zip(&plain) {
                assert_eq!(a.worker, b.worker);
                assert_eq!(a.score.to_bits(), b.score.to_bits());
            }
        }
    }

    #[test]
    fn exhausted_guard_reports_a_partial_prefix() {
        let m = matrix();
        let resolved = m.resolve_all();
        let lambda = [1.0, 0.0, 0.0];
        // Zero budget: nothing is scanned, the ranking is empty but sound.
        let none = m.select_mean_guarded(&lambda, &resolved, 4, 1, &Budget(0.into()));
        assert!(!none.complete);
        assert_eq!((none.scanned, none.ranked.len()), (0, 0));
        // The batch path stops at a block boundary for every query at once.
        let q0: &[f64] = &lambda;
        let batch = m.select_mean_batch_guarded(&[q0, q0], &resolved, 4, 1, &Budget(0.into()));
        assert_eq!(batch.len(), 2);
        for p in &batch {
            assert!(!p.complete);
            assert!(p.ranked.is_empty());
        }
    }

    #[test]
    fn guarded_batch_with_room_is_complete_and_identical() {
        let m = matrix();
        let resolved = m.resolve_all();
        let q0 = [1.0, 0.0, 0.0];
        let q1 = [-0.4, 0.9, 0.2];
        let lambdas: Vec<&[f64]> = vec![&q0, &q1];
        let plain = m.select_mean_batch(&lambdas, &resolved, 3, 2);
        let guarded =
            m.select_mean_batch_guarded(&lambdas, &resolved, 3, 2, &Budget(1_000_000.into()));
        for (p, want) in guarded.iter().zip(&plain) {
            assert!(p.complete);
            assert_eq!(p.scanned, resolved.len());
            for (a, b) in p.ranked.iter().zip(want) {
                assert_eq!(a.worker, b.worker);
                assert_eq!(a.score.to_bits(), b.score.to_bits());
            }
        }
    }

    #[test]
    fn empty_candidates_yield_empty_rankings() {
        let m = matrix();
        assert!(m.select_mean(&[0.0; 3], &[], 5, 4).is_empty());
        let batch = m.select_mean_batch(&[&[0.0; 3]], &[], 5, 4);
        assert_eq!(batch, vec![Vec::new()]);
    }
}
