//! Dense serving snapshot of the worker-skill posteriors.
//!
//! The online selection query (paper Eq. 1; Algorithm 3 line 7) scores every
//! candidate worker against one projected task. Serving that from the
//! per-worker [`crate::model::WorkerSkill`] records means one `HashMap`
//! lookup plus a heap-allocated [`crowd_math::Vector`] dot per candidate per
//! query. [`SkillMatrix`] is the dense alternative: a contiguous row-major
//! `W × K` structure-of-arrays snapshot of the posterior means, with a
//! parallel `W × K` variance block for the optimistic (UCB) path, an f32
//! mirror of the means for the opt-in reduced-precision serving path, and a
//! dense row-index ↔ [`WorkerId`] map. The model keeps it in lockstep with
//! the skill records — rebuilt on fit/assembly and row-upserted on
//! `add_worker` / `record_feedback` — so selection never touches the
//! `Vector`-of-`HashMap` storage at all.
//!
//! The dense blocks live behind `Arc` because parallel selection no longer
//! spawns scoped threads per call: chunk jobs are `'static` closures
//! submitted to the persistent [`ScoringPool`], and they share the posterior
//! rows by cloning an `Arc` handle (DESIGN.md §10a). Mutation
//! (`upsert`) goes through `Arc::make_mut`, which is a plain in-place write
//! whenever no selection is holding a handle — i.e. always, since selection
//! completes before returning.
//!
//! Every f64 scoring path here is **bit-identical** to the serial reference
//! implementation (`TdpmModel::select_top_k_serial`):
//!
//! - per-row scores use [`crowd_math::kernels`], whose fixed 4-lane
//!   accumulation order is shared by the serial scorer and every dense
//!   kernel;
//! - the chunked-parallel path splits *candidates* into disjoint contiguous
//!   chunks (never a single dot product), feeds the existing [`top_k`]
//!   min-heap per chunk, and merges the per-chunk winners with one more
//!   [`top_k`]. Because [`top_k`] ranks under a *total* order (score
//!   descending via `total_cmp`, ties to the smaller id, NaN skipped), the
//!   global top-k is contained in the union of per-chunk top-ks and the merge
//!   reproduces it exactly, independent of chunking (DESIGN.md §6d).
//!
//! The f32 path (`select_mean_f32*`) is deterministic but **not**
//! bit-identical to f64: its contract is rank agreement modulo ties inside
//! f32 rounding plus a bounded relative score error, pinned by the
//! `f32_serving_oracle` property suite (DESIGN.md §10c).

use crate::selection::{top_k, RankedWorker, TopK};
use crowd_math::guard::{Unchecked, WorkGuard, CHECKPOINT_ROWS};
use crowd_math::kernels::{self, GEMV_BLOCK_ROWS};
use crowd_math::ScoringPool;
use crowd_store::WorkerId;
use std::collections::HashMap;
use std::sync::Arc;

/// Candidates resolved against the matrix: `(worker, row index)` pairs in
/// input order, unknown workers dropped.
pub type ResolvedCandidates = Vec<(WorkerId, usize)>;

/// Smallest candidate chunk worth handing to the [`ScoringPool`].
///
/// Pool dispatch (enqueue, wake, merge) costs on the order of the time it
/// takes to stream ~2k dot products, so splits finer than this lose to the
/// inline scan even with idle workers — the same break-even that sets
/// `PARALLEL_MIN_CANDIDATES` in the model-layer spawn policy, re-tuned for
/// pool hand-off instead of `crossbeam` scope spawn. Must stay a
/// [`GEMV_BLOCK_ROWS`] multiple so the floor never mis-aligns chunk starts.
pub const MIN_POOL_CHUNK_ROWS: usize = 2048;

/// A ranking that may have been stopped early by a [`WorkGuard`].
///
/// `ranked` is a correct top-k of the `scanned`-candidate prefix that was
/// actually scored — never a corrupt mixture — and `complete` records
/// whether the guard let the scan finish. Guarded selection returning
/// `complete == true` is bit-identical to the unguarded path on the same
/// inputs (same loop, no-op guard).
#[derive(Debug, Clone, PartialEq)]
pub struct PartialRanking {
    /// Top-k of the scanned candidate prefix.
    pub ranked: Vec<RankedWorker>,
    /// `true` when every candidate was scored before the guard fired.
    pub complete: bool,
    /// How many resolved candidates were scored (summed across chunks).
    pub scanned: usize,
}

/// One guarded pass over a contiguous candidate run: the checkpoint chunking
/// only gates admission — element order and the single [`top_k`] feed are
/// exactly the unchunked iteration, so a never-firing guard is bit-identical
/// to the historical path. Shared verbatim by the inline path and the pooled
/// chunk jobs, which is what makes them bit-identical to each other.
fn guarded_scan_rows<G, F>(
    run: &[(WorkerId, usize)],
    k: usize,
    guard: &G,
    score: F,
) -> (Vec<RankedWorker>, usize)
where
    G: WorkGuard,
    F: Fn(usize) -> f64,
{
    let mut scanned = 0usize;
    let ranked = top_k(
        run.chunks(CHECKPOINT_ROWS)
            .take_while(|c| {
                let admit = guard.consume(c.len() as u64);
                if admit {
                    scanned += c.len();
                }
                admit
            })
            .flatten()
            .map(|&(w, row)| (w, score(row))),
        k,
    );
    (ranked, scanned)
}

/// Merges per-chunk `(winners, scanned)` partials into one ranking with a
/// final [`top_k`] over the chunk winners.
fn merge_partials(partials: Vec<(Vec<RankedWorker>, usize)>, n: usize, k: usize) -> PartialRanking {
    let scanned: usize = partials.iter().map(|&(_, s)| s).sum();
    PartialRanking {
        ranked: top_k(
            partials
                .into_iter()
                .flat_map(|(rws, _)| rws)
                .map(|rw| (rw.worker, rw.score)),
            k,
        ),
        complete: scanned == n,
        scanned,
    }
}

/// How a pooled chunk job scores one row. Carries `Arc` handles to the dense
/// blocks plus an owned copy of the query vector, so a job is fully `'static`
/// and the pool never borrows the matrix.
#[derive(Clone)]
enum RowScorer {
    /// Posterior-mean score `λ_w · lambda` (the f64 oracle path).
    Mean {
        means: Arc<Vec<f64>>,
        lambda: Vec<f64>,
    },
    /// Optimistic (UCB) score: mean plus `beta`-scaled posterior std-dev.
    Optimistic {
        means: Arc<Vec<f64>>,
        vars: Arc<Vec<f64>>,
        lambda: Vec<f64>,
        beta: f64,
    },
    /// f32 mean score, widened (exactly) to f64 for ranking.
    MeanF32 {
        means: Arc<Vec<f32>>,
        lambda: Vec<f32>,
    },
}

impl RowScorer {
    #[inline]
    fn score(&self, k: usize, row: usize) -> f64 {
        match self {
            RowScorer::Mean { means, lambda } => {
                kernels::dot(&means[row * k..(row + 1) * k], lambda)
            }
            RowScorer::Optimistic {
                means,
                vars,
                lambda,
                beta,
            } => kernels::ucb_score(
                &means[row * k..(row + 1) * k],
                &vars[row * k..(row + 1) * k],
                lambda,
                *beta,
            ),
            RowScorer::MeanF32 { means, lambda } => {
                f64::from(kernels::dot_f32(&means[row * k..(row + 1) * k], lambda))
            }
        }
    }
}

/// Contiguous row-major `W × K` snapshot of posterior means and variances.
#[derive(Debug, Clone, Default)]
pub struct SkillMatrix {
    k: usize,
    ids: Vec<WorkerId>,
    index: HashMap<WorkerId, usize>,
    /// Row-major `W × K` posterior means (`λ_w`).
    means: Arc<Vec<f64>>,
    /// Row-major `W × K` posterior diagonal variances (`ν_w²`).
    vars: Arc<Vec<f64>>,
    /// f32 mirror of `means`, maintained in lockstep by `upsert`, for the
    /// opt-in reduced-precision serving path.
    means_f32: Arc<Vec<f32>>,
}

impl SkillMatrix {
    /// An empty matrix over `k` latent categories.
    pub fn new(k: usize) -> Self {
        SkillMatrix {
            k,
            ids: Vec::new(),
            index: HashMap::new(),
            means: Arc::new(Vec::new()),
            vars: Arc::new(Vec::new()),
            means_f32: Arc::new(Vec::new()),
        }
    }

    /// An empty matrix with room for `workers` rows.
    pub fn with_capacity(k: usize, workers: usize) -> Self {
        SkillMatrix {
            k,
            ids: Vec::with_capacity(workers),
            index: HashMap::with_capacity(workers),
            means: Arc::new(Vec::with_capacity(workers * k)),
            vars: Arc::new(Vec::with_capacity(workers * k)),
            means_f32: Arc::new(Vec::with_capacity(workers * k)),
        }
    }

    /// Number of latent categories `K`.
    pub fn num_categories(&self) -> usize {
        self.k
    }

    /// Number of worker rows `W`.
    pub fn num_workers(&self) -> usize {
        self.ids.len()
    }

    /// Worker ids by row index.
    pub fn ids(&self) -> &[WorkerId] {
        &self.ids
    }

    /// Row index of a worker, if present.
    pub fn row_of(&self, worker: WorkerId) -> Option<usize> {
        self.index.get(&worker).copied()
    }

    /// The mean row of a worker.
    pub fn mean_row(&self, row: usize) -> &[f64] {
        &self.means[row * self.k..(row + 1) * self.k]
    }

    /// The variance row of a worker.
    pub fn var_row(&self, row: usize) -> &[f64] {
        &self.vars[row * self.k..(row + 1) * self.k]
    }

    /// The f32-mirror mean row of a worker (serving-path precision).
    pub fn mean_row_f32(&self, row: usize) -> &[f32] {
        &self.means_f32[row * self.k..(row + 1) * self.k]
    }

    /// Inserts or overwrites the row for `worker`.
    ///
    /// Both slices must have length `K`. This is the single maintenance
    /// entry point: assembly pushes every fitted worker through it, and the
    /// incremental paths (`add_worker`, `record_feedback`) upsert the one
    /// row they touched. The f32 mirror is refreshed here too (round-to-
    /// nearest per element), so it can never drift from the f64 truth.
    ///
    /// # Panics
    ///
    /// Panics when `mean` or `var` is not `K` elements long — a shape bug in
    /// the caller, never a data-dependent condition.
    pub fn upsert(&mut self, worker: WorkerId, mean: &[f64], var: &[f64]) {
        assert_eq!(mean.len(), self.k, "SkillMatrix::upsert mean length");
        assert_eq!(var.len(), self.k, "SkillMatrix::upsert var length");
        let means = Arc::make_mut(&mut self.means);
        let vars = Arc::make_mut(&mut self.vars);
        let means_f32 = Arc::make_mut(&mut self.means_f32);
        match self.index.get(&worker) {
            Some(&row) => {
                means[row * self.k..(row + 1) * self.k].copy_from_slice(mean);
                vars[row * self.k..(row + 1) * self.k].copy_from_slice(var);
                for (slot, &m) in means_f32[row * self.k..(row + 1) * self.k]
                    .iter_mut()
                    .zip(mean)
                {
                    *slot = m as f32;
                }
            }
            None => {
                self.index.insert(worker, self.ids.len());
                self.ids.push(worker);
                means.extend_from_slice(mean);
                vars.extend_from_slice(var);
                means_f32.extend(mean.iter().map(|&m| m as f32));
            }
        }
    }

    /// Resolves candidate ids to `(worker, row)` pairs, dropping workers the
    /// matrix does not know — the one hash walk of a selection query, paid
    /// once per batch by the batched paths.
    pub fn resolve(&self, candidates: impl IntoIterator<Item = WorkerId>) -> ResolvedCandidates {
        candidates
            .into_iter()
            .filter_map(|w| self.row_of(w).map(|row| (w, row)))
            .collect()
    }

    /// Every worker row, in row order.
    pub fn resolve_all(&self) -> ResolvedCandidates {
        self.ids
            .iter()
            .copied()
            .enumerate()
            .map(|(r, w)| (w, r))
            .collect()
    }

    /// Top-`k` by posterior-mean score `λ_w · lambda` over resolved
    /// candidates, chunked across the persistent [`ScoringPool`] when
    /// `threads > 1`.
    ///
    /// `threads` is the target chunk fan-out (clamped to the candidate
    /// count); callers own the "is this pool big enough to be worth
    /// dispatching for" policy. Results are bit-identical for every thread
    /// count.
    pub fn select_mean(
        &self,
        lambda: &[f64],
        resolved: &[(WorkerId, usize)],
        k: usize,
        threads: usize,
    ) -> Vec<RankedWorker> {
        self.select_mean_guarded(lambda, resolved, k, threads, &Unchecked)
            .ranked
    }

    /// [`SkillMatrix::select_mean`] with a [`WorkGuard`] polled every
    /// [`CHECKPOINT_ROWS`] candidates (per scoring chunk), charged with the
    /// chunk's row count before the chunk is scored. A firing guard stops
    /// the scan at the chunk boundary and the result reports the scanned
    /// prefix; a never-firing guard is bit-identical to
    /// [`SkillMatrix::select_mean`] (which delegates here). Pooled chunk
    /// jobs carry a clone of the guard, all forwarding to the same shared
    /// state, so one firing guard stops every chunk pool-wide.
    pub fn select_mean_guarded<G>(
        &self,
        lambda: &[f64],
        resolved: &[(WorkerId, usize)],
        k: usize,
        threads: usize,
        guard: &G,
    ) -> PartialRanking
    where
        G: WorkGuard + Clone + Send + 'static,
    {
        debug_assert_eq!(lambda.len(), self.k, "SkillMatrix::select_mean lambda");
        self.select_rows(
            RowScorer::Mean {
                means: Arc::clone(&self.means),
                lambda: lambda.to_vec(),
            },
            resolved,
            k,
            threads,
            guard,
        )
    }

    /// Optimistic (UCB-style) top-`k`:
    /// `λ_w · lambda + beta * sqrt(max(0, Σ_k ν²_w,k · lambda_k²))`.
    pub fn select_optimistic(
        &self,
        lambda: &[f64],
        resolved: &[(WorkerId, usize)],
        k: usize,
        beta: f64,
        threads: usize,
    ) -> Vec<RankedWorker> {
        debug_assert_eq!(
            lambda.len(),
            self.k,
            "SkillMatrix::select_optimistic lambda"
        );
        self.select_rows(
            RowScorer::Optimistic {
                means: Arc::clone(&self.means),
                vars: Arc::clone(&self.vars),
                lambda: lambda.to_vec(),
                beta,
            },
            resolved,
            k,
            threads,
            &Unchecked,
        )
        .ranked
    }

    /// Top-`k` by f32 posterior-mean score over the f32 mirror — the opt-in
    /// reduced-precision serving path.
    ///
    /// The query vector is rounded to f32 once up front; scores are f32
    /// dots ([`kernels::dot_f32`], fixed 8-lane order) widened exactly to
    /// f64 for ranking, so ties break under the same total order as the f64
    /// path. Deterministic, but *not* bit-identical to f64: the accuracy
    /// contract (rank agreement modulo f32-rounding ties, bounded relative
    /// error) is pinned by the `f32_serving_oracle` property suite.
    pub fn select_mean_f32(
        &self,
        lambda: &[f64],
        resolved: &[(WorkerId, usize)],
        k: usize,
        threads: usize,
    ) -> Vec<RankedWorker> {
        self.select_mean_f32_guarded(lambda, resolved, k, threads, &Unchecked)
            .ranked
    }

    /// [`SkillMatrix::select_mean_f32`] with a [`WorkGuard`] — identical
    /// checkpoint cadence and partial-prefix semantics to
    /// [`SkillMatrix::select_mean_guarded`].
    pub fn select_mean_f32_guarded<G>(
        &self,
        lambda: &[f64],
        resolved: &[(WorkerId, usize)],
        k: usize,
        threads: usize,
        guard: &G,
    ) -> PartialRanking
    where
        G: WorkGuard + Clone + Send + 'static,
    {
        debug_assert_eq!(lambda.len(), self.k, "SkillMatrix::select_mean_f32 lambda");
        self.select_rows(
            RowScorer::MeanF32 {
                means: Arc::clone(&self.means_f32),
                lambda: lambda.iter().map(|&x| x as f32).collect(),
            },
            resolved,
            k,
            threads,
            guard,
        )
    }

    /// Batched mean-score top-`k`: one ranking per query in `lambdas`, all
    /// against the same resolved candidate set.
    ///
    /// The candidate resolution (the hash walk) is paid once for the whole
    /// batch, and scoring runs through the cache-blocked batch kernel
    /// ([`kernels::gemv_gathered_batch`]): each block of gathered skill rows
    /// is streamed through the cache once for *all* queries. Query chunks
    /// run on the persistent [`ScoringPool`]. Per-query results are
    /// bit-identical to [`SkillMatrix::select_mean`] on the same inputs.
    ///
    /// # Panics
    ///
    /// Re-raises the panic of any pooled scoring chunk (a panicking scorer
    /// is a bug; there is no error value to surface from a completed job).
    pub fn select_mean_batch(
        &self,
        lambdas: &[&[f64]],
        resolved: &[(WorkerId, usize)],
        k: usize,
        threads: usize,
    ) -> Vec<Vec<RankedWorker>> {
        self.select_mean_batch_guarded(lambdas, resolved, k, threads, &Unchecked)
            .into_iter()
            .map(|p| p.ranked)
            .collect()
    }

    /// [`SkillMatrix::select_mean_batch`] with a [`WorkGuard`] polled at
    /// every cache block of the batched kernel, charged `block rows ×
    /// queries` units before the block streams. When the guard fires, every
    /// query in the affected chunk is ranked over the same scanned row
    /// prefix (the kernel stops for all of them at one block boundary), so
    /// no ranking ever mixes scored and unscored rows. Never-firing guards
    /// are bit-identical to [`SkillMatrix::select_mean_batch`] (which
    /// delegates here).
    ///
    /// # Panics
    ///
    /// Re-raises the panic of any pooled scoring chunk (a panicking scorer
    /// is a bug; there is no error value to surface from a completed job).
    pub fn select_mean_batch_guarded<G>(
        &self,
        lambdas: &[&[f64]],
        resolved: &[(WorkerId, usize)],
        k: usize,
        threads: usize,
        guard: &G,
    ) -> Vec<PartialRanking>
    where
        G: WorkGuard + Clone + Send + 'static,
    {
        // Fused block driver: scores one [`GEMV_BLOCK_ROWS`] block into an
        // L1-resident scratch and feeds each query's [`TopK`] heap
        // immediately, instead of materializing `queries × candidates`
        // scores and re-reading them (at 32×100k that round trip is ~75 MB
        // of memory traffic per batch). Identical to the unfused kernel
        // path: per-row scores are the same [`kernels::dot`], [`TopK`] is
        // feed-order independent, and the guard sees the same
        // `block rows × queries` charge at the same block boundaries.
        fn batch_chunk(
            kk: usize,
            means: &[f64],
            rows: &[usize],
            resolved: &[(WorkerId, usize)],
            xs: &[&[f64]],
            k: usize,
            guard: &impl WorkGuard,
        ) -> Vec<PartialRanking> {
            let mut heaps: Vec<TopK> = xs.iter().map(|_| TopK::new(k)).collect();
            let mut scratch = [0.0f64; GEMV_BLOCK_ROWS];
            let mut done = 0usize;
            for (block, block_resolved) in rows
                .chunks(GEMV_BLOCK_ROWS)
                .zip(resolved.chunks(GEMV_BLOCK_ROWS))
            {
                if !guard.consume(block.len() as u64 * xs.len().max(1) as u64) {
                    break;
                }
                for (x, heap) in xs.iter().zip(heaps.iter_mut()) {
                    for (slot, &r) in scratch.iter_mut().zip(block) {
                        *slot = kernels::dot(&means[r * kk..(r + 1) * kk], x);
                    }
                    for (&(w, _), &s) in block_resolved.iter().zip(&scratch) {
                        heap.push(w, s);
                    }
                }
                done += block.len();
            }
            heaps
                .into_iter()
                .map(|h| PartialRanking {
                    ranked: h.finish(),
                    complete: done == rows.len(),
                    scanned: done,
                })
                .collect()
        }

        let rows: Vec<usize> = resolved.iter().map(|&(_, row)| row).collect();
        let q = lambdas.len();
        let threads = threads.max(1).min(q.max(1));
        if threads <= 1 || q <= 1 {
            return batch_chunk(self.k, &self.means, &rows, resolved, lambdas, k, guard);
        }

        // Pooled: each job owns its query-chunk copies and Arc handles to
        // the shared row data; chunk results concatenate in input order.
        let rows = Arc::new(rows);
        let resolved_arc: Arc<Vec<(WorkerId, usize)>> = Arc::new(resolved.to_vec());
        let chunk = q.div_ceil(threads);
        let jobs: Vec<_> = lambdas
            .chunks(chunk)
            .map(|queries| {
                let queries: Vec<Vec<f64>> = queries.iter().map(|x| x.to_vec()).collect();
                let means = Arc::clone(&self.means);
                let rows = Arc::clone(&rows);
                let resolved = Arc::clone(&resolved_arc);
                let guard = G::clone(guard);
                let kk = self.k;
                move || {
                    let xs: Vec<&[f64]> = queries.iter().map(|x| x.as_slice()).collect();
                    batch_chunk(kk, &means, &rows, &resolved, &xs, k, &guard)
                }
            })
            .collect();
        ScoringPool::global()
            .run(jobs)
            .into_iter()
            .flatten()
            .collect()
    }

    /// Batched f32 mean-score top-`k` — the batch form of
    /// [`SkillMatrix::select_mean_f32`], running the f32 mirror through the
    /// cache-blocked f32 batch kernel. Per-query results are bit-identical
    /// to [`SkillMatrix::select_mean_f32`] on the same inputs.
    pub fn select_mean_f32_batch(
        &self,
        lambdas: &[&[f64]],
        resolved: &[(WorkerId, usize)],
        k: usize,
        threads: usize,
    ) -> Vec<Vec<RankedWorker>> {
        self.select_mean_f32_batch_guarded(lambdas, resolved, k, threads, &Unchecked)
            .into_iter()
            .map(|p| p.ranked)
            .collect()
    }

    /// [`SkillMatrix::select_mean_f32_batch`] with a [`WorkGuard`] — same
    /// block-boundary semantics as [`SkillMatrix::select_mean_batch_guarded`].
    pub fn select_mean_f32_batch_guarded<G>(
        &self,
        lambdas: &[&[f64]],
        resolved: &[(WorkerId, usize)],
        k: usize,
        threads: usize,
        guard: &G,
    ) -> Vec<PartialRanking>
    where
        G: WorkGuard + Clone + Send + 'static,
    {
        // f32 mirror of the fused `batch_chunk` driver in
        // [`SkillMatrix::select_mean_batch_guarded`]: same blocking, same
        // guard charges, scores via [`kernels::dot_f32`] widened to f64
        // only at the heap boundary (exactly where the unfused path
        // widened them).
        fn batch_chunk_f32(
            kk: usize,
            means: &[f32],
            rows: &[usize],
            resolved: &[(WorkerId, usize)],
            xs: &[&[f32]],
            k: usize,
            guard: &impl WorkGuard,
        ) -> Vec<PartialRanking> {
            let mut heaps: Vec<TopK> = xs.iter().map(|_| TopK::new(k)).collect();
            let mut scratch = [0.0f32; GEMV_BLOCK_ROWS];
            let mut done = 0usize;
            for (block, block_resolved) in rows
                .chunks(GEMV_BLOCK_ROWS)
                .zip(resolved.chunks(GEMV_BLOCK_ROWS))
            {
                if !guard.consume(block.len() as u64 * xs.len().max(1) as u64) {
                    break;
                }
                for (x, heap) in xs.iter().zip(heaps.iter_mut()) {
                    for (slot, &r) in scratch.iter_mut().zip(block) {
                        *slot = kernels::dot_f32(&means[r * kk..(r + 1) * kk], x);
                    }
                    for (&(w, _), &s) in block_resolved.iter().zip(&scratch) {
                        heap.push(w, f64::from(s));
                    }
                }
                done += block.len();
            }
            heaps
                .into_iter()
                .map(|h| PartialRanking {
                    ranked: h.finish(),
                    complete: done == rows.len(),
                    scanned: done,
                })
                .collect()
        }

        // One rounding of the query batch to f32, shared by every chunk.
        let lambdas_f32: Vec<Vec<f32>> = lambdas
            .iter()
            .map(|x| x.iter().map(|&v| v as f32).collect())
            .collect();
        let rows: Vec<usize> = resolved.iter().map(|&(_, row)| row).collect();
        let q = lambdas.len();
        let threads = threads.max(1).min(q.max(1));
        if threads <= 1 || q <= 1 {
            let xs: Vec<&[f32]> = lambdas_f32.iter().map(|x| x.as_slice()).collect();
            return batch_chunk_f32(self.k, &self.means_f32, &rows, resolved, &xs, k, guard);
        }

        let rows = Arc::new(rows);
        let resolved_arc: Arc<Vec<(WorkerId, usize)>> = Arc::new(resolved.to_vec());
        let chunk = q.div_ceil(threads);
        let jobs: Vec<_> = lambdas_f32
            .chunks(chunk)
            .map(|queries| {
                let queries: Vec<Vec<f32>> = queries.to_vec();
                let means = Arc::clone(&self.means_f32);
                let rows = Arc::clone(&rows);
                let resolved = Arc::clone(&resolved_arc);
                let guard = G::clone(guard);
                let kk = self.k;
                move || {
                    let xs: Vec<&[f32]> = queries.iter().map(|x| x.as_slice()).collect();
                    batch_chunk_f32(kk, &means, &rows, &resolved, &xs, k, &guard)
                }
            })
            .collect();
        ScoringPool::global()
            .run(jobs)
            .into_iter()
            .flatten()
            .collect()
    }

    /// Shared chunk-parallel top-k driver: scores rows with `scorer`, feeds
    /// the bounded min-heap per contiguous candidate chunk, merges the
    /// per-chunk winners with one more [`top_k`]. `threads <= 1` (or a
    /// single-chunk split) runs inline on the caller without touching the
    /// pool; otherwise candidate chunks — aligned up to
    /// [`GEMV_BLOCK_ROWS`]-row multiples so pooled chunks start on the same
    /// cache-block boundaries the batched kernel streams — are submitted to
    /// the persistent [`ScoringPool`], with the submitting thread helping
    /// drain them. The guard is polled every [`CHECKPOINT_ROWS`] candidates
    /// inside each chunk; a stopped chunk contributes its scanned prefix
    /// and the merged result is marked incomplete.
    fn select_rows<G>(
        &self,
        scorer: RowScorer,
        resolved: &[(WorkerId, usize)],
        k: usize,
        threads: usize,
        guard: &G,
    ) -> PartialRanking
    where
        G: WorkGuard + Clone + Send + 'static,
    {
        let kk = self.k;
        let n = resolved.len();
        let threads = threads.max(1).min(n.max(1));
        let chunk = if threads > 1 {
            // Floor at MIN_POOL_CHUNK_ROWS: callers that pass explicit thread
            // counts (bypassing the model-layer spawn policy) must not shred a
            // small candidate set into chunks whose pool hand-off costs more
            // than the scan itself — sub-floor splits collapse to `chunk >= n`
            // and take the inline path below.
            n.div_ceil(threads)
                .max(MIN_POOL_CHUNK_ROWS)
                .next_multiple_of(GEMV_BLOCK_ROWS)
        } else {
            n.max(1)
        };
        if threads <= 1 || chunk >= n {
            let (ranked, scanned) =
                guarded_scan_rows(resolved, k, guard, |row| scorer.score(kk, row));
            return PartialRanking {
                ranked,
                complete: scanned == n,
                scanned,
            };
        }
        let jobs: Vec<_> = resolved
            .chunks(chunk)
            .map(|c| {
                let run: Vec<(WorkerId, usize)> = c.to_vec();
                let scorer = scorer.clone();
                let guard = G::clone(guard);
                move || guarded_scan_rows(&run, k, &guard, |row| scorer.score(kk, row))
            })
            .collect();
        merge_partials(ScoringPool::global().run(jobs), n, k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrix() -> SkillMatrix {
        let mut m = SkillMatrix::new(3);
        for w in 0..10u32 {
            let mean: Vec<f64> = (0..3)
                .map(|k| (w as f64 - 4.5) * 0.3 + k as f64 * 0.1)
                .collect();
            let var: Vec<f64> = (0..3).map(|k| 0.5 + (w as f64 + k as f64) * 0.01).collect();
            m.upsert(WorkerId(w), &mean, &var);
        }
        m
    }

    #[test]
    fn upsert_appends_then_overwrites() {
        let mut m = SkillMatrix::new(2);
        m.upsert(WorkerId(3), &[1.0, 2.0], &[0.1, 0.2]);
        m.upsert(WorkerId(5), &[3.0, 4.0], &[0.3, 0.4]);
        assert_eq!(m.num_workers(), 2);
        assert_eq!(m.row_of(WorkerId(5)), Some(1));
        m.upsert(WorkerId(3), &[9.0, 9.0], &[0.9, 0.9]);
        assert_eq!(m.num_workers(), 2);
        assert_eq!(m.mean_row(0), &[9.0, 9.0]);
        assert_eq!(m.var_row(0), &[0.9, 0.9]);
        assert_eq!(m.mean_row(1), &[3.0, 4.0]);
    }

    #[test]
    fn upsert_keeps_the_f32_mirror_in_lockstep() {
        let mut m = SkillMatrix::new(2);
        m.upsert(WorkerId(1), &[0.1, 1.0e-40], &[0.0, 0.0]);
        assert_eq!(m.mean_row_f32(0), &[0.1f32, 1.0e-40f64 as f32]);
        m.upsert(WorkerId(1), &[2.5, -7.0], &[0.0, 0.0]);
        assert_eq!(m.mean_row_f32(0), &[2.5f32, -7.0f32]);
        // A clone (Arc handle) taken before an upsert keeps the old values.
        let snapshot = m.clone();
        m.upsert(WorkerId(1), &[9.0, 9.0], &[0.0, 0.0]);
        assert_eq!(snapshot.mean_row(0), &[2.5, -7.0]);
        assert_eq!(m.mean_row(0), &[9.0, 9.0]);
    }

    #[test]
    fn resolve_drops_unknown_and_keeps_order() {
        let m = matrix();
        let resolved = m.resolve(vec![WorkerId(7), WorkerId(99), WorkerId(2)]);
        assert_eq!(resolved, vec![(WorkerId(7), 7), (WorkerId(2), 2)]);
        assert_eq!(m.resolve_all().len(), 10);
    }

    #[test]
    fn chunked_selection_matches_serial_for_every_thread_count() {
        let m = matrix();
        let resolved = m.resolve_all();
        let lambda = [0.7, -0.3, 1.1];
        let serial = m.select_mean(&lambda, &resolved, 4, 1);
        for threads in [2, 3, 8, 64] {
            let par = m.select_mean(&lambda, &resolved, 4, threads);
            assert_eq!(par.len(), serial.len());
            for (a, b) in par.iter().zip(&serial) {
                assert_eq!(a.worker, b.worker);
                assert_eq!(a.score.to_bits(), b.score.to_bits(), "threads={threads}");
            }
        }
    }

    #[test]
    fn pooled_chunks_match_serial_past_the_block_alignment() {
        // Enough rows that a threads=8 split produces several 64-aligned
        // chunks past the MIN_POOL_CHUNK_ROWS floor, exercising the pooled
        // path (not the inline fallback): 8192 / 8 = 1024 -> floored to 2048
        // -> 4 pooled chunks; 8192 / 2 = 4096 -> 2 pooled chunks.
        let mut m = SkillMatrix::new(2);
        for w in 0..8192u32 {
            let mean = [(w as f64 * 0.713).sin(), (w as f64 * 0.291).cos()];
            m.upsert(WorkerId(w), &mean, &[0.1, 0.1]);
        }
        let resolved = m.resolve_all();
        let lambda = [0.9, -1.7];
        let serial = m.select_mean(&lambda, &resolved, 7, 1);
        for threads in [2, 8] {
            let par = m.select_mean(&lambda, &resolved, 7, threads);
            assert_eq!(par.len(), serial.len());
            for (a, b) in par.iter().zip(&serial) {
                assert_eq!(a.worker, b.worker);
                assert_eq!(a.score.to_bits(), b.score.to_bits(), "threads={threads}");
            }
        }
    }

    #[test]
    fn optimistic_adds_uncertainty_bonus() {
        let mut m = SkillMatrix::new(1);
        m.upsert(WorkerId(0), &[1.0], &[0.0]); // proven
        m.upsert(WorkerId(1), &[1.0], &[4.0]); // uncertain
        let resolved = m.resolve_all();
        let greedy = m.select_mean(&[1.0], &resolved, 2, 1);
        assert_eq!(
            greedy[0].worker,
            WorkerId(0),
            "mean tie breaks to smaller id"
        );
        let optimistic = m.select_optimistic(&[1.0], &resolved, 2, 1.0, 1);
        assert_eq!(optimistic[0].worker, WorkerId(1));
        assert!((optimistic[0].score - 3.0).abs() < 1e-12);
    }

    #[test]
    fn batch_matches_per_query_selection() {
        let m = matrix();
        let resolved = m.resolve(vec![
            WorkerId(9),
            WorkerId(0),
            WorkerId(4),
            WorkerId(6),
            WorkerId(1),
        ]);
        let q0 = [1.0, 0.0, 0.0];
        let q1 = [-0.4, 0.9, 0.2];
        let q2 = [0.0, 0.0, -1.0];
        let lambdas: Vec<&[f64]> = vec![&q0, &q1, &q2];
        for threads in [1, 2, 8] {
            let batch = m.select_mean_batch(&lambdas, &resolved, 3, threads);
            assert_eq!(batch.len(), 3);
            for (lambda, got) in lambdas.iter().zip(&batch) {
                let want = m.select_mean(lambda, &resolved, 3, 1);
                assert_eq!(got.len(), want.len());
                for (a, b) in got.iter().zip(&want) {
                    assert_eq!(a.worker, b.worker);
                    assert_eq!(a.score.to_bits(), b.score.to_bits());
                }
            }
        }
    }

    #[test]
    fn f32_selection_is_deterministic_across_thread_counts_and_batching() {
        let m = matrix();
        let resolved = m.resolve_all();
        let lambda = [0.7, -0.3, 1.1];
        let serial = m.select_mean_f32(&lambda, &resolved, 4, 1);
        assert!(!serial.is_empty());
        for threads in [2, 8] {
            let par = m.select_mean_f32(&lambda, &resolved, 4, threads);
            assert_eq!(par.len(), serial.len());
            for (a, b) in par.iter().zip(&serial) {
                assert_eq!(a.worker, b.worker);
                assert_eq!(a.score.to_bits(), b.score.to_bits(), "threads={threads}");
            }
            let batch = m.select_mean_f32_batch(&[&lambda], &resolved, 4, threads);
            for (a, b) in batch[0].iter().zip(&serial) {
                assert_eq!(a.worker, b.worker);
                assert_eq!(a.score.to_bits(), b.score.to_bits(), "batch t={threads}");
            }
        }
    }

    #[test]
    fn f32_scores_track_f64_closely_on_benign_inputs() {
        let m = matrix();
        let resolved = m.resolve_all();
        let lambda = [0.7, -0.3, 1.1];
        let f64_ranked = m.select_mean(&lambda, &resolved, 10, 1);
        let f32_ranked = m.select_mean_f32(&lambda, &resolved, 10, 1);
        assert_eq!(f64_ranked.len(), f32_ranked.len());
        for (a, b) in f64_ranked.iter().zip(&f32_ranked) {
            assert_eq!(a.worker, b.worker, "benign inputs: identical order");
            let scale = a.score.abs().max(1e-6);
            assert!(
                (a.score - b.score).abs() / scale < 1e-5,
                "f64={} f32={}",
                a.score,
                b.score
            );
        }
    }

    #[test]
    fn nan_rows_are_skipped_in_every_path() {
        let mut m = SkillMatrix::new(2);
        m.upsert(WorkerId(0), &[f64::NAN, 1.0], &[1.0, 1.0]);
        m.upsert(WorkerId(1), &[1.0, 1.0], &[1.0, 1.0]);
        let resolved = m.resolve_all();
        let lambda = [1.0, 1.0];
        for threads in [1, 2] {
            let mean = m.select_mean(&lambda, &resolved, 2, threads);
            assert_eq!(mean.len(), 1);
            assert_eq!(mean[0].worker, WorkerId(1));
            let opt = m.select_optimistic(&lambda, &resolved, 2, 0.5, threads);
            assert_eq!(opt.len(), 1);
            let batch = m.select_mean_batch(&[&lambda], &resolved, 2, threads);
            assert_eq!(batch[0].len(), 1);
            let f32_mean = m.select_mean_f32(&lambda, &resolved, 2, threads);
            assert_eq!(f32_mean.len(), 1, "f32 NaN row skipped");
            let f32_batch = m.select_mean_f32_batch(&[&lambda], &resolved, 2, threads);
            assert_eq!(f32_batch[0].len(), 1);
        }
    }

    /// A guard admitting a fixed number of units, then refusing. Wrapped in
    /// `Arc` at use sites: pooled chunks clone the handle, so exhaustion is
    /// shared pool-wide exactly like a real query budget.
    struct Budget(std::sync::atomic::AtomicU64);
    impl WorkGuard for Budget {
        fn consume(&self, units: u64) -> bool {
            use std::sync::atomic::Ordering;
            self.0
                .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |r| r.checked_sub(units))
                .is_ok()
        }
    }

    #[test]
    fn never_firing_guard_is_bitwise_identical_and_complete() {
        let m = matrix();
        let resolved = m.resolve_all();
        let lambda = [0.7, -0.3, 1.1];
        for threads in [1, 2, 8] {
            let plain = m.select_mean(&lambda, &resolved, 4, threads);
            let guarded = m.select_mean_guarded(&lambda, &resolved, 4, threads, &Unchecked);
            assert!(guarded.complete);
            assert_eq!(guarded.scanned, resolved.len());
            assert_eq!(guarded.ranked.len(), plain.len());
            for (a, b) in guarded.ranked.iter().zip(&plain) {
                assert_eq!(a.worker, b.worker);
                assert_eq!(a.score.to_bits(), b.score.to_bits());
            }
        }
    }

    #[test]
    fn exhausted_guard_reports_a_partial_prefix() {
        let m = matrix();
        let resolved = m.resolve_all();
        let lambda = [1.0, 0.0, 0.0];
        // Zero budget: nothing is scanned, the ranking is empty but sound.
        let none = m.select_mean_guarded(&lambda, &resolved, 4, 1, &Arc::new(Budget(0.into())));
        assert!(!none.complete);
        assert_eq!((none.scanned, none.ranked.len()), (0, 0));
        // The batch path stops at a block boundary for every query at once.
        let q0: &[f64] = &lambda;
        let batch =
            m.select_mean_batch_guarded(&[q0, q0], &resolved, 4, 1, &Arc::new(Budget(0.into())));
        assert_eq!(batch.len(), 2);
        for p in &batch {
            assert!(!p.complete);
            assert!(p.ranked.is_empty());
        }
        // Same soundness on the f32 path.
        let f32_none =
            m.select_mean_f32_guarded(&lambda, &resolved, 4, 1, &Arc::new(Budget(0.into())));
        assert!(!f32_none.complete);
        assert_eq!((f32_none.scanned, f32_none.ranked.len()), (0, 0));
    }

    #[test]
    fn exhausted_guard_is_observed_by_pooled_chunks() {
        // A large pooled selection with a budget covering only part of the
        // scan: every chunk shares the one budget, so the total scanned
        // count across chunks never exceeds it.
        let mut m = SkillMatrix::new(2);
        for w in 0..4000u32 {
            m.upsert(WorkerId(w), &[w as f64, 1.0], &[0.1, 0.1]);
        }
        let resolved = m.resolve_all();
        let budget = Arc::new(Budget(2048.into()));
        let partial = m.select_mean_guarded(&[1.0, 0.0], &resolved, 5, 8, &budget);
        assert!(!partial.complete);
        assert!(
            partial.scanned <= 2048,
            "scanned {} > budget",
            partial.scanned
        );
    }

    #[test]
    fn guarded_batch_with_room_is_complete_and_identical() {
        let m = matrix();
        let resolved = m.resolve_all();
        let q0 = [1.0, 0.0, 0.0];
        let q1 = [-0.4, 0.9, 0.2];
        let lambdas: Vec<&[f64]> = vec![&q0, &q1];
        let plain = m.select_mean_batch(&lambdas, &resolved, 3, 2);
        let guarded = m.select_mean_batch_guarded(
            &lambdas,
            &resolved,
            3,
            2,
            &Arc::new(Budget(1_000_000.into())),
        );
        for (p, want) in guarded.iter().zip(&plain) {
            assert!(p.complete);
            assert_eq!(p.scanned, resolved.len());
            for (a, b) in p.ranked.iter().zip(want) {
                assert_eq!(a.worker, b.worker);
                assert_eq!(a.score.to_bits(), b.score.to_bits());
            }
        }
    }

    #[test]
    fn empty_candidates_yield_empty_rankings() {
        let m = matrix();
        assert!(m.select_mean(&[0.0; 3], &[], 5, 4).is_empty());
        let batch = m.select_mean_batch(&[&[0.0; 3]], &[], 5, 4);
        assert_eq!(batch, vec![Vec::new()]);
        assert!(m.select_mean_f32(&[0.0; 3], &[], 5, 4).is_empty());
    }
}
