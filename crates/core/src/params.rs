//! Model parameters `ϕ = {μ_w, Σ_w, μ_c, Σ_c, τ, β}` (paper Section 4.3).

use crowd_math::{Cholesky, Matrix, Result as MathResult, Vector};
use serde::{Deserialize, Serialize};

/// The global parameters of the TDPM generative model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ModelParams {
    /// Prior mean of worker skills, `μ_w ∈ R^K`.
    pub mu_w: Vector,
    /// Prior covariance of worker skills, `Σ_w ∈ R^{K×K}` (SPD).
    pub sigma_w: Matrix,
    /// Prior mean of task categories, `μ_c ∈ R^K`.
    pub mu_c: Vector,
    /// Prior covariance of task categories, `Σ_c ∈ R^{K×K}` (SPD).
    pub sigma_c: Matrix,
    /// Feedback noise standard deviation `τ`.
    pub tau: f64,
    /// Topic–word distributions: `beta[(k, v)] = p(v | z = k)`, rows sum to 1.
    pub beta: Matrix,
}

impl ModelParams {
    /// Neutral initial parameters: zero means, identity covariances, unit
    /// noise, uniform language model over `vocab_size` terms.
    pub fn neutral(k: usize, vocab_size: usize) -> Self {
        let uniform = if vocab_size > 0 {
            1.0 / vocab_size as f64
        } else {
            0.0
        };
        ModelParams {
            mu_w: Vector::zeros(k),
            sigma_w: Matrix::identity(k),
            mu_c: Vector::zeros(k),
            sigma_c: Matrix::identity(k),
            tau: 1.0,
            beta: Matrix::from_fn(k, vocab_size, |_, _| uniform),
        }
    }

    /// Number of latent categories `K`.
    pub fn num_categories(&self) -> usize {
        self.mu_w.len()
    }

    /// Vocabulary size `V`.
    pub fn vocab_size(&self) -> usize {
        self.beta.cols()
    }

    /// `τ²`.
    pub fn tau2(&self) -> f64 {
        self.tau * self.tau
    }

    /// Cholesky factor of `Σ_w` (jittered if needed).
    pub fn sigma_w_chol(&self) -> MathResult<Cholesky> {
        Cholesky::factor_with_jitter(&self.sigma_w, 1e-10, 40)
    }

    /// Cholesky factor of `Σ_c` (jittered if needed).
    pub fn sigma_c_chol(&self) -> MathResult<Cholesky> {
        Cholesky::factor_with_jitter(&self.sigma_c, 1e-10, 40)
    }

    /// `log β` with the zero entries floored at a tiny value — the word
    /// updates and the ELBO need logs, and a topic that never emitted a term
    /// must not produce `-inf` (it produces a very small finite penalty).
    pub fn log_beta(&self) -> Matrix {
        Matrix::from_fn(self.beta.rows(), self.beta.cols(), |k, v| {
            self.beta[(k, v)].max(1e-300).ln()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowd_math::validate::Validate;

    #[test]
    fn neutral_params_are_valid() {
        let p = ModelParams::neutral(4, 100);
        assert!(p.validate().is_ok());
        assert_eq!(p.num_categories(), 4);
        assert_eq!(p.vocab_size(), 100);
        assert_eq!(p.tau2(), 1.0);
    }

    #[test]
    fn neutral_with_empty_vocab() {
        let p = ModelParams::neutral(2, 0);
        assert!(p.validate().is_ok());
        assert_eq!(p.vocab_size(), 0);
    }

    #[test]
    fn invalid_tau_detected() {
        let mut p = ModelParams::neutral(2, 3);
        p.tau = 0.0;
        assert!(p.validate().is_err());
    }

    #[test]
    fn non_normalized_beta_detected() {
        let mut p = ModelParams::neutral(2, 3);
        p.beta[(0, 0)] = 0.9;
        assert!(p.validate().is_err());
    }

    #[test]
    fn log_beta_is_finite_even_with_zeros() {
        let mut p = ModelParams::neutral(1, 2);
        p.beta[(0, 0)] = 0.0;
        p.beta[(0, 1)] = 1.0;
        let lb = p.log_beta();
        assert!(lb[(0, 0)].is_finite());
        assert_eq!(lb[(0, 1)], 0.0);
    }

    #[test]
    fn cholesky_of_identity_priors() {
        let p = ModelParams::neutral(3, 1);
        assert!(p.sigma_w_chol().is_ok());
        assert!(p.sigma_c_chol().is_ok());
    }
}
