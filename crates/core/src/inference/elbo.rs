//! The evidence lower bound `L'(q)` (paper Section 5.2).

use super::EStepContext;
use crate::dataset::TrainingSet;
use crate::inference::suffstats::ElboPartials;
use crate::variational::VariationalState;
use crowd_math::Vector;

/// Additive breakdown of the bound; useful for debugging which term moves.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ElboBreakdown {
    /// `−Σ_i KL(q(w_i) ‖ p(w_i))`.
    pub worker_prior: f64,
    /// `−Σ_j KL(q(c_j) ‖ p(c_j))`.
    pub task_prior: f64,
    /// `E[log p(Z|C)] + E[log p(V|Z,β)] − E[log q(Z)]` (with Taylor bound).
    pub words: f64,
    /// `E[log p(S|W Cᵀ, τ)]`.
    pub feedback: f64,
}

impl ElboBreakdown {
    /// The total bound.
    pub fn total(&self) -> f64 {
        self.worker_prior + self.task_prior + self.words + self.feedback
    }
}

/// Computes the full bound for the current state.
///
/// Goes through the fixed-block [`ElboPartials`] gather so the serial bound
/// is bit-identical to the sharded gather-merge-fold of the same partials
/// (see `crate::inference::suffstats`).
pub fn elbo(state: &VariationalState, ts: &TrainingSet, ctx: &EStepContext) -> ElboBreakdown {
    ElboPartials::gather(
        state,
        ts.tasks(),
        ctx,
        0..ts.num_workers(),
        0..ts.num_tasks(),
    )
    .fold()
}

/// `KL(Normal(λ, diag(ν²)) ‖ Normal(μ, Σ))` given `Σ⁻¹` and `log det Σ`:
///
/// `½ [ tr(Σ⁻¹ diag(ν²)) + (λ−μ)ᵀ Σ⁻¹ (λ−μ) − K + log det Σ − Σ_k ln ν²_k ]`
pub fn gaussian_kl(
    lambda: &Vector,
    nu2: &Vector,
    mu: &Vector,
    sigma_inv: &crowd_math::Matrix,
    log_det_sigma: f64,
) -> f64 {
    let k = lambda.len() as f64;
    let mut trace = 0.0;
    let mut log_nu2_sum = 0.0;
    for i in 0..lambda.len() {
        trace += sigma_inv[(i, i)] * nu2[i];
        log_nu2_sum += nu2[i].max(1e-300).ln();
    }
    // All dims are K by construction; the `kernels` path mirrors
    // `matvec`/`dot` accumulation order, so results are bit-identical.
    let diff = Vector::from_fn(lambda.len(), |i| lambda[i] - mu[i]);
    let mx = Vector::from_fn(diff.len(), |r| {
        crowd_math::kernels::dot(sigma_inv.row(r), diff.as_slice())
    });
    let quad = crowd_math::kernels::dot(diff.as_slice(), mx.as_slice());
    0.5 * (trace + quad - k + log_det_sigma - log_nu2_sum)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::TaskData;
    use crate::params::ModelParams;
    use crowd_math::Matrix;
    use crowd_store::TaskId;

    #[test]
    fn kl_of_matching_gaussians_is_zero() {
        let lambda = Vector::from_vec(vec![0.3, -0.7]);
        let nu2 = Vector::from_vec(vec![2.0, 0.5]);
        let sigma = Matrix::from_diag(&nu2);
        let inv = crowd_math::Cholesky::factor(&sigma)
            .unwrap()
            .inverse()
            .unwrap();
        let log_det = crowd_math::Cholesky::factor(&sigma).unwrap().log_det();
        let kl = gaussian_kl(&lambda, &nu2, &lambda, &inv, log_det);
        assert!(kl.abs() < 1e-10, "kl = {kl}");
    }

    #[test]
    fn kl_is_positive_for_distinct_gaussians() {
        let lambda = Vector::from_vec(vec![1.0, 1.0]);
        let nu2 = Vector::from_vec(vec![1.0, 1.0]);
        let mu = Vector::zeros(2);
        let inv = Matrix::identity(2);
        let kl = gaussian_kl(&lambda, &nu2, &mu, &inv, 0.0);
        // KL = ½ (μ distance)² = 1 here.
        assert!((kl - 1.0).abs() < 1e-10);
    }

    #[test]
    fn elbo_is_finite_on_fresh_state() {
        let tasks = vec![TaskData {
            task: TaskId(0),
            words: vec![(0, 1), (1, 1)],
            num_tokens: 2.0,
            scores: vec![(0, 1.0)],
        }];
        let ts = TrainingSet::from_parts(tasks, 1, 2);
        let params = ModelParams::neutral(2, 2);
        let ctx = EStepContext::new(&params).unwrap();
        let state = VariationalState::init(&ts, 2, 0);
        let b = elbo(&state, &ts, &ctx);
        assert!(b.total().is_finite());
        assert!(b.worker_prior <= 1e-9, "KL terms are ≤ 0: {b:?}");
        assert!(b.task_prior <= 1e-9);
    }
}
