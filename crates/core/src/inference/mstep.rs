//! Variational M-step: closed-form model-parameter updates (Eqs. 16–21).

use crate::config::TdpmConfig;
use crate::dataset::TrainingSet;
use crate::inference::suffstats::{FirstMoments, SecondMoments};
use crate::params::ModelParams;
use crate::variational::VariationalState;
use crate::{CoreError, Result};
use crowd_math::{Matrix, Vector};

/// Recomputes every model parameter from the current variational state.
///
/// - `μ_w = 1/M Σ λ_w^i` (Eq. 16), `μ_c = 1/N Σ λ_c^j` (Eq. 18)
/// - `Σ_w = 1/M Σ (diag(ν_w²) + (λ_w − μ_w)(λ_w − μ_w)ᵀ)` (Eq. 17), same
///   shape for `Σ_c` (Eq. 19); a small ridge keeps the estimates SPD and the
///   `diagonal_covariance` flag implements the paper's independent-skill
///   special case (Section 4.3.1)
/// - `τ²` = mean expected squared residual over scored pairs (Eq. 20)
/// - `β_{k,v} ∝ smoothing + Σ_j Σ_p φ_{j,p,k} 1[v_p = v]` (Eq. 21)
///
/// Every reduction goes through the fixed-block [`suffstats`] scheme, so the
/// serial path here is the bit-identity oracle for the sharded fit: sharded
/// gathers of the same statistics, merged in shard-index order, fold to
/// exactly these values (see `crate::inference::suffstats`).
pub fn update_params(
    params: &mut ModelParams,
    state: &VariationalState,
    ts: &TrainingSet,
    cfg: &TdpmConfig,
    update_tau: bool,
) -> Result<()> {
    let workers = 0..state.lambda_w.len();
    let tasks = 0..state.lambda_c.len();
    let first = FirstMoments::gather(state, workers.clone(), tasks.clone())?;
    update_params_first(params, &first)?;
    let second = SecondMoments::gather(
        state,
        ts.tasks(),
        &params.mu_w,
        &params.mu_c,
        ts.vocab_size(),
        workers,
        tasks,
    )?;
    update_params_second(params, &second, cfg, update_tau)
}

/// First M-step half: prior means from reduced first moments (Eqs. 16, 18).
/// Split out so the sharded trainer can merge per-shard gathers in between.
pub(crate) fn update_params_first(params: &mut ModelParams, first: &FirstMoments) -> Result<()> {
    params.mu_w = first
        .worker_mean()?
        .ok_or_else(|| CoreError::Numerical("M-step over an empty worker set".into()))?;
    if let Some(mu_c) = first.task_mean()? {
        params.mu_c = mu_c;
    }
    Ok(())
}

/// Second M-step half: covariances, τ² and β from reduced second moments
/// (Eqs. 17, 19–21), gathered about the means `update_params_first` set.
pub(crate) fn update_params_second(
    params: &mut ModelParams,
    second: &SecondMoments,
    cfg: &TdpmConfig,
    update_tau: bool,
) -> Result<()> {
    if let Some(mut cov) =
        second.worker_covariance(cfg.covariance_ridge, cfg.diagonal_covariance)?
    {
        floor_diag(&mut cov, cfg.min_prior_var);
        params.sigma_w = cov;
    }
    if let Some(mut cov) = second.task_covariance(cfg.covariance_ridge, cfg.diagonal_covariance)? {
        floor_diag(&mut cov, cfg.min_prior_var);
        params.sigma_c = cov;
    }

    // τ² is held fixed during warm-up (see `TdpmConfig::tau_warmup_iters`).
    if update_tau {
        let (sq_sum, count) = second.tau_residuals();
        if count > 0 {
            params.tau = (sq_sum / count as f64).max(cfg.min_tau2).sqrt();
        }
    }

    if let Some(beta) = second.beta(cfg.beta_smoothing)? {
        params.beta = beta;
    }
    Ok(())
}

/// Raises the diagonal to at least `floor` (see [`TdpmConfig::min_prior_var`]).
/// Increasing diagonal entries only adds a PSD matrix, so SPD-ness is kept.
fn floor_diag(cov: &mut Matrix, floor: f64) {
    for i in 0..cov.rows() {
        if cov[(i, i)] < floor {
            cov[(i, i)] = floor;
        }
    }
}

/// `E_q[(s − wᵀc)²]` for one scored pair — the expectation in Eq. 20:
///
/// ```text
/// s² − 2 s λ_wᵀλ_c + (λ_wᵀλ_c)²
///   + Σ_k [ ν²_w,k λ²_c,k + ν²_c,k λ²_w,k + ν²_w,k ν²_c,k ]
/// ```
pub fn expected_sq_residual(
    s: f64,
    lambda_w: &Vector,
    nu2_w: &Vector,
    lambda_c: &Vector,
    nu2_c: &Vector,
) -> f64 {
    // Both vectors are K-dimensional by construction; `kernels::dot` keeps
    // the exact accumulation order of `Vector::dot` without the dims check.
    let dot = crowd_math::kernels::dot(lambda_w.as_slice(), lambda_c.as_slice());
    let mut second = dot * dot;
    for kk in 0..lambda_w.len() {
        second += nu2_w[kk] * lambda_c[kk] * lambda_c[kk]
            + nu2_c[kk] * lambda_w[kk] * lambda_w[kk]
            + nu2_w[kk] * nu2_c[kk];
    }
    s * s - 2.0 * s * dot + second
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::TaskData;
    use crowd_store::TaskId;

    fn toy_state() -> (TrainingSet, VariationalState, TdpmConfig) {
        let tasks = vec![TaskData {
            task: TaskId(0),
            words: vec![(0, 1), (1, 2)],
            num_tokens: 3.0,
            scores: vec![(0, 2.0), (1, 0.0)],
        }];
        let ts = TrainingSet::from_parts(tasks, 2, 2);
        let cfg = TdpmConfig {
            num_categories: 2,
            ..TdpmConfig::default()
        };
        let state = VariationalState::init(&ts, 2, 3);
        (ts, state, cfg)
    }

    #[test]
    fn mu_is_mean_of_lambdas() {
        let (ts, mut state, cfg) = toy_state();
        state.lambda_w[0] = Vector::from_vec(vec![1.0, 0.0]);
        state.lambda_w[1] = Vector::from_vec(vec![3.0, 2.0]);
        let mut params = ModelParams::neutral(2, 2);
        update_params(&mut params, &state, &ts, &cfg, true).unwrap();
        assert!((params.mu_w[0] - 2.0).abs() < 1e-12);
        assert!((params.mu_w[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn covariance_includes_variational_variance() {
        let (ts, mut state, cfg) = toy_state();
        // Identical means → scatter 0; covariance must equal mean ν² (+ridge).
        state.lambda_w[0] = Vector::zeros(2);
        state.lambda_w[1] = Vector::zeros(2);
        state.nu2_w[0] = Vector::from_vec(vec![0.5, 0.5]);
        state.nu2_w[1] = Vector::from_vec(vec![1.5, 1.5]);
        let mut params = ModelParams::neutral(2, 2);
        update_params(&mut params, &state, &ts, &cfg, true).unwrap();
        assert!((params.sigma_w[(0, 0)] - (1.0 + cfg.covariance_ridge)).abs() < 1e-9);
        assert!(params.sigma_w[(0, 1)].abs() < 1e-9);
    }

    #[test]
    fn diagonal_mode_zeroes_off_diagonals() {
        let (ts, mut state, _) = toy_state();
        state.lambda_w[0] = Vector::from_vec(vec![1.0, 1.0]);
        state.lambda_w[1] = Vector::from_vec(vec![-1.0, -1.0]);
        let cfg = TdpmConfig {
            num_categories: 2,
            diagonal_covariance: true,
            ..TdpmConfig::default()
        };
        let mut params = ModelParams::neutral(2, 2);
        update_params(&mut params, &state, &ts, &cfg, true).unwrap();
        assert_eq!(params.sigma_w[(0, 1)], 0.0);
        assert!(params.sigma_w[(0, 0)] > 1.0, "scatter present on diagonal");
    }

    #[test]
    fn beta_rows_are_distributions_weighted_by_phi() {
        let (ts, mut state, cfg) = toy_state();
        // Put all responsibility for both words on topic 0.
        state.phi.row_mut(0).copy_from_slice(&[1.0, 0.0, 1.0, 0.0]);
        let mut params = ModelParams::neutral(2, 2);
        update_params(&mut params, &state, &ts, &cfg, true).unwrap();
        for kk in 0..2 {
            let sum: f64 = params.beta.row(kk).iter().sum();
            assert!((sum - 1.0).abs() < 1e-9);
        }
        // Topic 0 saw term 1 twice and term 0 once → β_{0,1} > β_{0,0}.
        assert!(params.beta[(0, 1)] > params.beta[(0, 0)]);
        // Topic 1 saw nothing → near-uniform (smoothing only).
        assert!((params.beta[(1, 0)] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn tau_matches_hand_computed_residual() {
        let (ts, mut state, cfg) = toy_state();
        // Deterministic posteriors: w0 = (1,0), w1 = (0,1), c = (2,0),
        // variances ~0 → residuals: (2 − 2)² = 0 and (0 − 0)² = 0 … make it
        // nontrivial: s0 = 3 → (3−2)² = 1; s1 = 1 → (1−0)² = 1. Mean = 1.
        state.lambda_w[0] = Vector::from_vec(vec![1.0, 0.0]);
        state.lambda_w[1] = Vector::from_vec(vec![0.0, 1.0]);
        state.nu2_w[0] = Vector::filled(2, 0.0);
        state.nu2_w[1] = Vector::filled(2, 0.0);
        state.lambda_c[0] = Vector::from_vec(vec![2.0, 0.0]);
        state.nu2_c[0] = Vector::filled(2, 0.0);
        let tasks = vec![TaskData {
            task: TaskId(0),
            words: vec![(0, 1)],
            num_tokens: 1.0,
            scores: vec![(0, 3.0), (1, 1.0)],
        }];
        let ts2 = TrainingSet::from_parts(tasks, 2, 2);
        let mut params = ModelParams::neutral(2, 2);
        update_params(&mut params, &state, &ts2, &cfg, true).unwrap();
        assert!(
            (params.tau2() - 1.0).abs() < 1e-9,
            "tau² = {}",
            params.tau2()
        );
        let _ = ts;
    }

    #[test]
    fn expected_residual_reduces_to_plain_square_without_variance() {
        let lw = Vector::from_vec(vec![1.0, 2.0]);
        let lc = Vector::from_vec(vec![0.5, 0.5]);
        let zero = Vector::zeros(2);
        let r = expected_sq_residual(2.0, &lw, &zero, &lc, &zero);
        // wᵀc = 1.5 → (2 − 1.5)² = 0.25.
        assert!((r - 0.25).abs() < 1e-12);
    }

    #[test]
    fn prior_variance_floor_is_respected() {
        let (ts, mut state, cfg) = toy_state();
        // Posteriors collapsed onto a common mean with tiny variances: the
        // raw moment estimate would be ~0; the floor must hold it up.
        state.lambda_w[0] = Vector::from_vec(vec![0.1, 0.1]);
        state.lambda_w[1] = Vector::from_vec(vec![0.1, 0.1]);
        state.nu2_w[0] = Vector::filled(2, 1e-6);
        state.nu2_w[1] = Vector::filled(2, 1e-6);
        let mut params = ModelParams::neutral(2, 2);
        update_params(&mut params, &state, &ts, &cfg, true).unwrap();
        for i in 0..2 {
            assert!(
                params.sigma_w[(i, i)] >= cfg.min_prior_var,
                "sigma_w[{i}][{i}] = {} under floor {}",
                params.sigma_w[(i, i)],
                cfg.min_prior_var
            );
        }
    }

    #[test]
    fn tau_floor_is_respected() {
        let (_, mut state, cfg) = toy_state();
        state.lambda_w[0] = Vector::from_vec(vec![1.0, 0.0]);
        state.nu2_w[0] = Vector::filled(2, 0.0);
        state.lambda_c[0] = Vector::from_vec(vec![2.0, 0.0]);
        state.nu2_c[0] = Vector::filled(2, 0.0);
        // Perfect prediction → residual 0 → floor kicks in.
        let tasks = vec![TaskData {
            task: TaskId(0),
            words: vec![(0, 1)],
            num_tokens: 1.0,
            scores: vec![(0, 2.0)],
        }];
        let ts = TrainingSet::from_parts(tasks, 2, 2);
        let mut params = ModelParams::neutral(2, 2);
        update_params(&mut params, &state, &ts, &cfg, true).unwrap();
        assert!((params.tau2() - cfg.min_tau2).abs() < 1e-12);
    }
}
