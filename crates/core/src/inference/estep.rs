//! Variational E-step updates (paper Eqs. 10–15 and 22–23).

use super::EStepContext;
use crate::config::TdpmConfig;
use crate::dataset::TrainingSet;
use crate::variational::VariationalState;
use crate::{CoreError, Result};
use crowd_math::kernels;
use crowd_math::optimize::{minimize_cg, solve_decreasing};
use crowd_math::{Cholesky, Matrix, Vector};

/// Reusable buffers for the worker E-step.
///
/// Every worker update starts from the same prior precision and right-hand
/// side; cloning them per worker (the old hot path) costs two heap
/// allocations per worker per EM iteration. The scratch holds one set of
/// buffers that are *overwritten* with the prior instead — the arithmetic is
/// unchanged, so results stay bit-identical to the allocating version.
#[derive(Debug, Clone)]
pub struct EStepScratch {
    precision: Matrix,
    rhs: Vector,
    diag_acc: Vector,
}

impl EStepScratch {
    /// Buffers for a `k`-category model.
    pub fn new(k: usize) -> Self {
        EStepScratch {
            precision: Matrix::zeros(k, k),
            rhs: Vector::zeros(k),
            diag_acc: Vector::zeros(k),
        }
    }

    /// Number of latent categories the buffers are sized for.
    pub fn num_categories(&self) -> usize {
        self.rhs.len()
    }
}

/// Updates every worker posterior `q(w^i)` (Eqs. 10–11).
///
/// For worker `i` with scored tasks `J_i`:
///
/// ```text
/// P_i   = Σ_w⁻¹ + τ⁻² Σ_{j∈J_i} (λ_c^j (λ_c^j)ᵀ + diag(ν_c^j²))   (precision)
/// λ_w^i = P_i⁻¹ (Σ_w⁻¹ μ_w + τ⁻² Σ_j s_ij λ_c^j)                   (Eq. 10)
/// ν²_w,ik = ( τ⁻² Σ_j (λ²_c,jk + ν²_c,jk) + (Σ_w⁻¹)_kk )⁻¹          (Eq. 11)
/// ```
///
/// Workers without feedback keep the mean-field projection of the prior
/// (both formulas with empty sums). `scratch` carries the per-worker
/// accumulators across calls so the loop allocates nothing but the solved
/// means.
pub fn update_workers(
    state: &mut VariationalState,
    ts: &TrainingSet,
    ctx: &EStepContext,
    by_worker: &[Vec<(usize, f64)>],
    scratch: &mut EStepScratch,
) -> Result<()> {
    let n = ts.num_workers();
    let VariationalState {
        lambda_w,
        nu2_w,
        lambda_c,
        nu2_c,
        ..
    } = state;
    run_worker_range(
        0,
        &mut lambda_w[..n],
        &mut nu2_w[..n],
        by_worker,
        lambda_c,
        nu2_c,
        ctx,
        scratch,
    )
}

/// Updates the worker posteriors `start..start + lambda_w.len()`, writing
/// through the local slices. Each worker reads only the (read-only) task
/// posteriors and its own row of `by_worker` (indexed globally), so any
/// partition of the worker axis runs this bit-identically to the full serial
/// sweep — this is the primitive behind both `update_workers` and the
/// sharded pooled path in the trainer.
#[allow(clippy::too_many_arguments)]
#[allow(clippy::needless_range_loop)] // indexes address several parallel arrays
pub(crate) fn run_worker_range(
    start: usize,
    lambda_w: &mut [Vector],
    nu2_w: &mut [Vector],
    by_worker: &[Vec<(usize, f64)>],
    lambda_c: &[Vector],
    nu2_c: &[Vector],
    ctx: &EStepContext,
    scratch: &mut EStepScratch,
) -> Result<()> {
    let k = scratch.num_categories();
    let inv_tau2 = 1.0 / ctx.tau2;
    for local in 0..lambda_w.len() {
        let i = start + local;
        let jobs = &by_worker[i];
        let precision = &mut scratch.precision;
        let rhs = &mut scratch.rhs;
        let diag_acc = &mut scratch.diag_acc;
        precision.copy_from(&ctx.sigma_w_inv)?;
        rhs.copy_from(&ctx.prior_rhs_w)?;
        diag_acc.as_mut_slice().fill(0.0);
        for &(j, s) in jobs {
            let lc = &lambda_c[j];
            let nc2 = &nu2_c[j];
            precision.add_outer(inv_tau2, lc)?;
            let scaled_nc2 = nc2.map(|x| x * inv_tau2);
            precision.add_diag(&scaled_nc2)?;
            rhs.axpy(inv_tau2 * s, lc)?;
            for kk in 0..k {
                diag_acc[kk] += (lc[kk] * lc[kk] + nc2[kk]) * inv_tau2;
            }
        }
        let chol = Cholesky::factor_with_jitter(precision, 1e-10, 40)
            .map_err(|e| CoreError::Numerical(format!("worker {i} precision: {e}")))?;
        lambda_w[local] = chol.solve(rhs)?;
        for kk in 0..k {
            nu2_w[local][kk] = 1.0 / (diag_acc[kk] + ctx.sigma_w_inv[(kk, kk)]);
        }
    }
    Ok(())
}

/// Feedback-side sufficient statistics for one task:
/// `A_j = Σ_{i∈I_j} (λ_w^i (λ_w^i)ᵀ + diag(ν_w^i²))` and
/// `b_j = Σ_{i∈I_j} s_ij λ_w^i`.
#[derive(Debug, Clone)]
pub struct TaskFeedbackStats {
    /// Second-moment accumulation `A_j` (K×K, SPSD).
    pub a: Matrix,
    /// Score-weighted mean accumulation `b_j`.
    pub b: Vector,
    /// Number of scored jobs on the task.
    pub count: usize,
}

impl TaskFeedbackStats {
    /// Zero statistics (the projection path for brand-new tasks, Eqs. 22–23,
    /// is exactly the task update with these).
    pub fn empty(k: usize) -> Self {
        TaskFeedbackStats {
            a: Matrix::zeros(k, k),
            b: Vector::zeros(k),
            count: 0,
        }
    }

    /// Accumulates the statistics from the current worker posteriors.
    pub fn gather(
        scores: &[(usize, f64)],
        lambda_w: &[Vector],
        nu2_w: &[Vector],
        k: usize,
    ) -> Result<Self> {
        let mut stats = TaskFeedbackStats::empty(k);
        for &(i, s) in scores {
            stats.a.add_outer(1.0, &lambda_w[i])?;
            stats.a.add_diag(&nu2_w[i])?;
            stats.b.axpy(s, &lambda_w[i])?;
            stats.count += 1;
        }
        Ok(stats)
    }
}

/// Inputs for a single task posterior update, decoupled from the global
/// state so the same routine serves training (Eqs. 12–15) and online
/// projection of unseen tasks (Eqs. 22–23, Algorithm 3).
#[derive(Debug)]
pub struct TaskUpdate<'a> {
    /// `(term index, count)` pairs of the task.
    pub words: &'a [(usize, u32)],
    /// Total token count `L`.
    pub num_tokens: f64,
    /// Feedback statistics (`empty` for projection).
    pub feedback: &'a TaskFeedbackStats,
}

/// In/out variational parameters for one task.
#[derive(Debug)]
pub struct TaskPosterior<'a> {
    /// `λ_c^j`.
    pub lambda: &'a mut Vector,
    /// `ν_c^j²`.
    pub nu2: &'a mut Vector,
    /// Flattened `(distinct terms) × K` responsibilities — one row of the
    /// state's contiguous [`crate::variational::PhiMatrix`].
    pub phi: &'a mut [f64],
    /// Taylor parameter `ε_j`.
    pub epsilon: &'a mut f64,
}

/// Runs `inner_iters` rounds of coordinate ascent on one task posterior.
///
/// Order per round (following the CTM schedule): `ε` (Eq. 13), `φ` (Eq. 12),
/// `λ_c` by conjugate gradient (Eq. 14 / 22), `ν_c²` by monotone root solve
/// (Eq. 15 / 23).
#[allow(clippy::needless_range_loop)] // indexes mirror the equations' subscripts
pub fn update_task(
    update: &TaskUpdate<'_>,
    post: &mut TaskPosterior<'_>,
    ctx: &EStepContext,
    cfg: &TdpmConfig,
) -> Result<()> {
    let k = post.lambda.len();
    let inv_tau2 = 1.0 / ctx.tau2;
    for _ in 0..cfg.task_inner_iters.max(1) {
        // --- ε update (Eq. 13): ε = Σ_k exp(λ_k + ν²_k / 2) -----------------
        *post.epsilon = (0..k)
            .map(|kk| (post.lambda[kk] + post.nu2[kk] / 2.0).exp())
            .sum::<f64>()
            .max(1e-300);

        // --- φ update (Eq. 12): φ_{v,k} ∝ exp(λ_k + log β_{k,v}) ------------
        for (slot, &(v, _)) in update.words.iter().enumerate() {
            let row = &mut post.phi[slot * k..(slot + 1) * k];
            let mut max = f64::NEG_INFINITY;
            for kk in 0..k {
                row[kk] = post.lambda[kk] + ctx.log_beta[(kk, v)];
                max = max.max(row[kk]);
            }
            let mut sum = 0.0;
            for x in row.iter_mut() {
                *x = (*x - max).exp();
                sum += *x;
            }
            for x in row.iter_mut() {
                *x /= sum;
            }
        }

        // Aggregate word pull: Σ_v cnt_v φ_v (drives λ toward used topics).
        let mut phi_sum = Vector::zeros(k);
        for (slot, &(_, cnt)) in update.words.iter().enumerate() {
            let row = &post.phi[slot * k..(slot + 1) * k];
            for kk in 0..k {
                phi_sum[kk] += cnt as f64 * row[kk];
            }
        }

        // --- λ_c update (Eq. 14 / 22) by CG ---------------------------------
        let objective = TaskMeanObjective {
            ctx,
            phi_sum: &phi_sum,
            nu2: post.nu2,
            epsilon: *post.epsilon,
            num_tokens: update.num_tokens,
            feedback: update.feedback,
            inv_tau2,
        };
        let result = minimize_cg(&objective, post.lambda, &cfg.cg_options());
        if result.x.is_finite() {
            *post.lambda = result.x;
        }

        // --- ν_c² update (Eq. 15 / 23) ---------------------------------------
        // Root of 1/(2x) − ½ (Σ_c⁻¹)_kk − τ⁻²/2 A_kk − (L/2ε) e^{λ_k + x/2}.
        for kk in 0..k {
            let q = 0.5 * ctx.sigma_c_inv[(kk, kk)] + 0.5 * inv_tau2 * update.feedback.a[(kk, kk)];
            let lam = post.lambda[kk];
            let word_scale = if update.num_tokens > 0.0 {
                update.num_tokens / (2.0 * *post.epsilon)
            } else {
                0.0
            };
            let g = |x: f64| 1.0 / (2.0 * x) - q - word_scale * (lam + x / 2.0).exp();
            let x0 = post.nu2[kk].clamp(1e-8, 1e8);
            match solve_decreasing(g, x0, 1e-10) {
                Ok(root) => post.nu2[kk] = root.clamp(1e-12, 1e12),
                Err(e) => {
                    return Err(CoreError::Numerical(format!(
                        "nu2 root solve failed at k={kk}: {e}"
                    )))
                }
            }
        }
    }
    Ok(())
}

/// The negative ELBO as a function of one task's mean `λ_c` (Eq. 14 / 22):
///
/// ```text
/// f(λ) = ½ (λ − μ_c)ᵀ Σ_c⁻¹ (λ − μ_c)      Gaussian prior
///      − φ_sumᵀ λ                           word responsibilities pull
///      + (L/ε) Σ_k exp(λ_k + ν²_k / 2)      Taylor bound on the softmax
///      + τ⁻²/2 (λᵀ A λ − 2 bᵀ λ)            feedback quadratic
/// ```
///
/// Exposed as a type (rather than a closure) so the test suite can check
/// the analytic gradient against finite differences.
#[derive(Debug)]
pub struct TaskMeanObjective<'a> {
    /// Shared E-step context.
    pub ctx: &'a EStepContext,
    /// `Σ_v cnt_v φ_v`.
    pub phi_sum: &'a Vector,
    /// Current diagonal variances `ν²` (held fixed during the mean update).
    pub nu2: &'a Vector,
    /// Taylor parameter `ε`.
    pub epsilon: f64,
    /// Token count `L`.
    pub num_tokens: f64,
    /// Feedback statistics `A`, `b`.
    pub feedback: &'a TaskFeedbackStats,
    /// `τ⁻²`.
    pub inv_tau2: f64,
}

impl crowd_math::optimize::Objective for TaskMeanObjective<'_> {
    fn value_and_grad(&self, x: &Vector, grad: &mut Vector) -> f64 {
        let k = x.len();
        // Prior term. Dims all equal `k` by construction, so the fallible
        // `Vector` ops are replaced by the order-identical `kernels` path
        // (same left-to-right accumulation → bit-identical results).
        let diff = Vector::from_fn(k, |i| x[i] - self.ctx.mu_c[i]);
        let sdiff = Vector::from_fn(k, |r| {
            kernels::dot(self.ctx.sigma_c_inv.row(r), diff.as_slice())
        });
        let mut value = 0.5 * kernels::dot(diff.as_slice(), sdiff.as_slice());
        for kk in 0..k {
            grad[kk] = sdiff[kk];
        }
        // Word pull.
        value -= kernels::dot(x.as_slice(), self.phi_sum.as_slice());
        for kk in 0..k {
            grad[kk] -= self.phi_sum[kk];
        }
        // Taylor bound on the log-normalizer.
        if self.num_tokens > 0.0 {
            let scale = self.num_tokens / self.epsilon;
            for kk in 0..k {
                let e = (x[kk] + self.nu2[kk] / 2.0).exp();
                value += scale * e;
                grad[kk] += scale * e;
            }
        }
        // Feedback quadratic.
        if self.feedback.count > 0 {
            let ax = Vector::from_fn(k, |r| kernels::dot(self.feedback.a.row(r), x.as_slice()));
            value += 0.5 * self.inv_tau2 * kernels::dot(x.as_slice(), ax.as_slice());
            value -= self.inv_tau2 * kernels::dot(x.as_slice(), self.feedback.b.as_slice());
            for kk in 0..k {
                grad[kk] += self.inv_tau2 * (ax[kk] - self.feedback.b[kk]);
            }
        }
        value
    }
}

/// Per-task word contribution to the bound:
///
/// ```text
/// Σ_v cnt_v Σ_k φ_{v,k} (λ_k + log β_{k,v} − log φ_{v,k})
///   − L [ ε⁻¹ Σ_k exp(λ_k + ν²_k/2) − 1 + log ε ]
/// ```
///
/// This is `E'[log p(Z|C)] + E[log p(V|Z,β)] − E[log q(Z)]` with the Taylor
/// upper bound on the softmax log-normalizer substituted in (Section 5.2).
#[allow(clippy::too_many_arguments)]
pub fn expected_word_ll(
    words: &[(usize, u32)],
    num_tokens: f64,
    lambda: &Vector,
    nu2: &Vector,
    phi: &[f64],
    epsilon: f64,
    log_beta: &Matrix,
    k: usize,
) -> f64 {
    let mut total = 0.0;
    for (slot, &(v, cnt)) in words.iter().enumerate() {
        let row = &phi[slot * k..(slot + 1) * k];
        let mut term = 0.0;
        for kk in 0..k {
            let p = row[kk];
            if p > 0.0 {
                term += p * (lambda[kk] + log_beta[(kk, v)] - p.ln());
            }
        }
        total += cnt as f64 * term;
    }
    if num_tokens > 0.0 {
        let sum_exp: f64 = (0..k).map(|kk| (lambda[kk] + nu2[kk] / 2.0).exp()).sum();
        total -= num_tokens * (sum_exp / epsilon - 1.0 + epsilon.ln());
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::ModelParams;
    use crate::variational::VariationalState;
    use crate::TdpmConfig;
    use crowd_store::TaskId;

    fn toy() -> (TrainingSet, ModelParams, TdpmConfig) {
        let tasks = vec![
            crate::dataset::TaskData {
                task: TaskId(0),
                words: vec![(0, 2), (1, 1)],
                num_tokens: 3.0,
                scores: vec![(0, 3.0), (1, 0.5)],
            },
            crate::dataset::TaskData {
                task: TaskId(1),
                words: vec![(2, 2)],
                num_tokens: 2.0,
                scores: vec![(1, 2.0)],
            },
        ];
        let ts = TrainingSet::from_parts(tasks, 2, 3);
        let params = ModelParams::neutral(2, 3);
        let cfg = TdpmConfig {
            num_categories: 2,
            ..TdpmConfig::default()
        };
        (ts, params, cfg)
    }

    #[test]
    fn worker_update_without_feedback_returns_prior() {
        let (ts, params, _cfg) = toy();
        let ctx = EStepContext::new(&params).unwrap();
        let mut state = VariationalState::init(&ts, 2, 0);
        // Worker 0 with no jobs at all:
        let by_worker = vec![vec![], vec![]];
        let mut scratch = EStepScratch::new(2);
        update_workers(&mut state, &ts, &ctx, &by_worker, &mut scratch).unwrap();
        for kk in 0..2 {
            assert!((state.lambda_w[0][kk] - params.mu_w[kk]).abs() < 1e-10);
            assert!((state.nu2_w[0][kk] - 1.0).abs() < 1e-10, "identity prior");
        }
    }

    #[test]
    fn worker_update_moves_toward_scores() {
        let (ts, params, _cfg) = toy();
        let ctx = EStepContext::new(&params).unwrap();
        let mut state = VariationalState::init(&ts, 2, 0);
        // Make task 0's category point along axis 0 strongly.
        state.lambda_c[0] = Vector::from_vec(vec![2.0, 0.0]);
        state.nu2_c[0] = Vector::from_vec(vec![0.01, 0.01]);
        let by_worker = ts.scores_by_worker();
        let mut scratch = EStepScratch::new(2);
        update_workers(&mut state, &ts, &ctx, &by_worker, &mut scratch).unwrap();
        // Worker 0 scored 3.0 on task 0 → skill along axis 0 must be positive
        // and larger than worker 1's (scored 0.5 on the same task).
        assert!(state.lambda_w[0][0] > state.lambda_w[1][0]);
        assert!(state.lambda_w[0][0] > 0.5);
        // Variances shrink below the prior where evidence exists.
        assert!(state.nu2_w[0][0] < 1.0);
    }

    #[test]
    fn feedback_stats_accumulate() {
        let lambda_w = vec![
            Vector::from_vec(vec![1.0, 0.0]),
            Vector::from_vec(vec![0.0, 2.0]),
        ];
        let nu2_w = vec![Vector::filled(2, 0.5), Vector::filled(2, 0.25)];
        let scores = vec![(0usize, 3.0), (1usize, 1.0)];
        let stats = TaskFeedbackStats::gather(&scores, &lambda_w, &nu2_w, 2).unwrap();
        assert_eq!(stats.count, 2);
        // A = [1,0;0,0] + diag(.5,.5) + [0,0;0,4] + diag(.25,.25)
        assert!((stats.a[(0, 0)] - 1.75).abs() < 1e-12);
        assert!((stats.a[(1, 1)] - 4.75).abs() < 1e-12);
        assert!((stats.b[0] - 3.0).abs() < 1e-12);
        assert!((stats.b[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn task_update_is_finite_and_sane() {
        let (ts, params, cfg) = toy();
        let ctx = EStepContext::new(&params).unwrap();
        let mut state = VariationalState::init(&ts, 2, 1);
        let stats =
            TaskFeedbackStats::gather(&ts.tasks()[0].scores, &state.lambda_w, &state.nu2_w, 2)
                .unwrap();
        let update = TaskUpdate {
            words: &ts.tasks()[0].words,
            num_tokens: ts.tasks()[0].num_tokens,
            feedback: &stats,
        };
        let (lc, rest) = state.lambda_c.split_first_mut().unwrap();
        let _ = rest;
        let mut post = TaskPosterior {
            lambda: lc,
            nu2: &mut state.nu2_c[0],
            phi: state.phi.row_mut(0),
            epsilon: &mut state.epsilon[0],
        };
        update_task(&update, &mut post, &ctx, &cfg).unwrap();
        assert!(post.lambda.is_finite());
        assert!(post.nu2.as_slice().iter().all(|&x| x > 0.0));
        // φ rows are distributions.
        for slot in 0..2 {
            let s: f64 = post.phi[slot * 2..(slot + 1) * 2].iter().sum();
            assert!((s - 1.0).abs() < 1e-9);
        }
        assert!(*post.epsilon > 0.0);
    }

    #[test]
    fn task_objective_gradient_matches_finite_differences() {
        use crowd_math::optimize::Objective;
        let params = ModelParams::neutral(3, 5);
        let ctx = EStepContext::new(&params).unwrap();
        let phi_sum = Vector::from_vec(vec![2.0, 1.0, 0.5]);
        let nu2 = Vector::from_vec(vec![0.8, 1.2, 0.5]);
        let lambda_w = vec![Vector::from_vec(vec![1.0, -0.5, 0.3])];
        let nu2_w = vec![Vector::filled(3, 0.4)];
        let feedback = TaskFeedbackStats::gather(&[(0, 2.0)], &lambda_w, &nu2_w, 3).unwrap();
        let objective = TaskMeanObjective {
            ctx: &ctx,
            phi_sum: &phi_sum,
            nu2: &nu2,
            epsilon: 3.5,
            num_tokens: 3.5,
            feedback: &feedback,
            inv_tau2: 1.0 / ctx.tau2,
        };

        let x = Vector::from_vec(vec![0.3, -0.7, 0.1]);
        let mut grad = Vector::zeros(3);
        objective.value_and_grad(&x, &mut grad);

        let h = 1e-6;
        for kk in 0..3 {
            let mut xp = x.clone();
            xp[kk] += h;
            let mut xm = x.clone();
            xm[kk] -= h;
            let mut scratch = Vector::zeros(3);
            let fp = objective.value_and_grad(&xp, &mut scratch);
            let fm = objective.value_and_grad(&xm, &mut scratch);
            let numeric = (fp - fm) / (2.0 * h);
            assert!(
                (grad[kk] - numeric).abs() < 1e-5 * (1.0 + numeric.abs()),
                "coord {kk}: analytic {} vs numeric {numeric}",
                grad[kk]
            );
        }
    }

    #[test]
    fn update_task_reaches_a_stationary_mean() {
        use crowd_math::optimize::Objective;
        let (ts, params, cfg) = toy();
        let ctx = EStepContext::new(&params).unwrap();
        let mut state = VariationalState::init(&ts, 2, 5);
        let stats =
            TaskFeedbackStats::gather(&ts.tasks()[0].scores, &state.lambda_w, &state.nu2_w, 2)
                .unwrap();
        let update = TaskUpdate {
            words: &ts.tasks()[0].words,
            num_tokens: ts.tasks()[0].num_tokens,
            feedback: &stats,
        };
        let cfg = TdpmConfig {
            task_inner_iters: 8,
            cg_max_iters: 200,
            ..cfg
        };
        let mut post = TaskPosterior {
            lambda: &mut state.lambda_c[0],
            nu2: &mut state.nu2_c[0],
            phi: state.phi.row_mut(0),
            epsilon: &mut state.epsilon[0],
        };
        update_task(&update, &mut post, &ctx, &cfg).unwrap();

        // Rebuild the final objective and check the gradient at the solution.
        let k = 2;
        let mut phi_sum = Vector::zeros(k);
        for (slot, &(_, cnt)) in update.words.iter().enumerate() {
            for kk in 0..k {
                phi_sum[kk] += cnt as f64 * post.phi[slot * k + kk];
            }
        }
        let objective = TaskMeanObjective {
            ctx: &ctx,
            phi_sum: &phi_sum,
            nu2: post.nu2,
            epsilon: *post.epsilon,
            num_tokens: update.num_tokens,
            feedback: &stats,
            inv_tau2: 1.0 / ctx.tau2,
        };
        let mut grad = Vector::zeros(k);
        objective.value_and_grad(post.lambda, &mut grad);
        let gnorm = grad.norm();
        assert!(gnorm < 1e-3, "stationarity violated: |∇f| = {gnorm}");
    }

    #[test]
    fn projection_update_ignores_feedback() {
        // With empty feedback stats the update must still work (Alg. 3 path).
        let (ts, params, cfg) = toy();
        let ctx = EStepContext::new(&params).unwrap();
        let empty = TaskFeedbackStats::empty(2);
        let words = vec![(0usize, 3u32)];
        let update = TaskUpdate {
            words: &words,
            num_tokens: 3.0,
            feedback: &empty,
        };
        let mut lambda = Vector::zeros(2);
        let mut nu2 = Vector::filled(2, 1.0);
        let mut phi = [0.5; 2];
        let mut eps = 2.0;
        let mut post = TaskPosterior {
            lambda: &mut lambda,
            nu2: &mut nu2,
            phi: &mut phi[..],
            epsilon: &mut eps,
        };
        update_task(&update, &mut post, &ctx, &cfg).unwrap();
        assert!(lambda.is_finite());
        let _ = ts;
    }
}
