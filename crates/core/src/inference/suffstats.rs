//! Fixed-block sufficient statistics — the bit-identity backbone of the
//! sharded fit (ROADMAP item 3, DESIGN §11).
//!
//! Floating-point addition is not associative, so "each shard sums its
//! entities, then the M-step adds the shard partials" would produce results
//! that drift with the shard count. Instead every global reduction in the
//! M-step and the ELBO is defined over *fixed-size blocks* of
//! [`SUFF_BLOCK`] consecutive entities:
//!
//! 1. entities accumulate left-to-right **within** their block, and
//! 2. block partials fold left-to-right in **global block order**.
//!
//! That reduction tree depends only on the entity count — never on the
//! shard count or thread count. A [`ShardPlan`] cuts the entity axes into
//! contiguous ranges aligned to block boundaries, so each shard produces
//! exactly the block partials of its range; concatenating the per-shard
//! partials in fixed shard-index order recreates the global block list, and
//! the fold is bit-identical to the serial path for every shard count.

use crate::dataset::TaskData;
use crate::inference::elbo::{gaussian_kl, ElboBreakdown};
use crate::inference::estep::expected_word_ll;
use crate::inference::mstep::expected_sq_residual;
use crate::inference::EStepContext;
use crate::variational::VariationalState;
use crate::Result;
use crowd_math::{Matrix, Vector};
use std::ops::Range;

/// Entities per reduction block. Fixed: changing it changes the canonical
/// reduction tree (and therefore every fitted parameter in the last ulp).
pub const SUFF_BLOCK: usize = 256;

/// Contiguous, block-aligned partition of the worker and task axes.
///
/// Both axes are cut into `num_shards` ranges whose starts are multiples of
/// [`SUFF_BLOCK`]; trailing shards may be empty when there are fewer blocks
/// than shards. Alignment is what makes per-shard block partials concatenate
/// into the exact global block list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPlan {
    worker_ranges: Vec<Range<usize>>,
    task_ranges: Vec<Range<usize>>,
}

impl ShardPlan {
    /// Plans `num_shards` block-aligned shards over `num_workers` workers
    /// and `num_tasks` tasks. `num_shards == 0` is treated as `1`.
    pub fn new(num_workers: usize, num_tasks: usize, num_shards: usize) -> Self {
        let shards = num_shards.max(1);
        ShardPlan {
            worker_ranges: aligned_partition(num_workers, shards),
            task_ranges: aligned_partition(num_tasks, shards),
        }
    }

    /// Number of shards (some may cover empty ranges).
    pub fn num_shards(&self) -> usize {
        self.worker_ranges.len()
    }

    /// Worker range owned by `shard`.
    pub fn worker_range(&self, shard: usize) -> Range<usize> {
        self.worker_ranges[shard].clone()
    }

    /// Task range owned by `shard`.
    pub fn task_range(&self, shard: usize) -> Range<usize> {
        self.task_ranges[shard].clone()
    }
}

/// Splits `0..n` into `shards` contiguous ranges starting at multiples of
/// [`SUFF_BLOCK`], distributing whole blocks as evenly as possible.
fn aligned_partition(n: usize, shards: usize) -> Vec<Range<usize>> {
    let blocks = n.div_ceil(SUFF_BLOCK);
    let per_shard = blocks.div_ceil(shards.max(1)).max(1);
    (0..shards)
        .map(|s| {
            let start = (s * per_shard * SUFF_BLOCK).min(n);
            let end = ((s + 1) * per_shard * SUFF_BLOCK).min(n);
            start..end
        })
        .collect()
}

/// The block decomposition of a block-aligned range.
pub fn blocks(range: Range<usize>) -> impl Iterator<Item = Range<usize>> {
    debug_assert!(
        range.is_empty() || range.start.is_multiple_of(SUFF_BLOCK),
        "shard ranges must start on a block boundary (got {range:?})"
    );
    let end = range.end;
    range
        .step_by(SUFF_BLOCK)
        .map(move |b| b..(b + SUFF_BLOCK).min(end))
}

// ---------------------------------------------------------------------------
// First moments (Eqs. 16 / 18: the prior means)
// ---------------------------------------------------------------------------

/// One block's first-moment partial: `Σ λ` over the block, plus its count.
#[derive(Debug, Clone)]
pub struct MomentBlock {
    sum: Vector,
    count: usize,
}

fn moment_blocks(means: &[Vector], range: Range<usize>) -> Result<Vec<MomentBlock>> {
    blocks(range)
        .map(|b| {
            let mut sum = Vector::zeros(means[b.start].len());
            let count = b.len();
            for mean in &means[b] {
                sum.add_assign(mean)?;
            }
            Ok(MomentBlock { sum, count })
        })
        .collect()
}

/// Folds block partials in order into a mean; `None` for an empty set.
// crowd-lint: root(det)
fn fold_mean(parts: &[MomentBlock]) -> Result<Option<Vector>> {
    let Some(first) = parts.first() else {
        return Ok(None);
    };
    let mut sum = Vector::zeros(first.sum.len());
    let mut count = 0usize;
    for p in parts {
        sum.add_assign(&p.sum)?;
        count += p.count;
    }
    sum.scale(1.0 / count as f64);
    Ok(Some(sum))
}

/// First-moment partials of one shard (or of the whole set when gathered
/// over the full ranges): the inputs to the prior-mean updates.
#[derive(Debug, Clone, Default)]
pub struct FirstMoments {
    worker: Vec<MomentBlock>,
    task: Vec<MomentBlock>,
}

impl FirstMoments {
    /// Gathers the block partials of the given (block-aligned) ranges.
    pub fn gather(
        state: &VariationalState,
        workers: Range<usize>,
        tasks: Range<usize>,
    ) -> Result<Self> {
        Ok(FirstMoments {
            worker: moment_blocks(&state.lambda_w, workers)?,
            task: moment_blocks(&state.lambda_c, tasks)?,
        })
    }

    /// Concatenates per-shard partials in shard-index order.
    // crowd-lint: root(det)
    pub fn merge(parts: impl IntoIterator<Item = FirstMoments>) -> Self {
        let mut out = FirstMoments::default();
        for p in parts {
            out.worker.extend(p.worker);
            out.task.extend(p.task);
        }
        out
    }

    /// `μ_w` (Eq. 16); `None` when there are no workers.
    pub fn worker_mean(&self) -> Result<Option<Vector>> {
        fold_mean(&self.worker)
    }

    /// `μ_c` (Eq. 18); `None` when there are no tasks.
    pub fn task_mean(&self) -> Result<Option<Vector>> {
        fold_mean(&self.task)
    }
}

// ---------------------------------------------------------------------------
// Second moments (Eqs. 17 / 19 / 20 / 21)
// ---------------------------------------------------------------------------

/// One block's scatter partial about a fixed mean:
/// `Σ (λ − μ)(λ − μ)ᵀ` and `Σ ν²` over the block.
#[derive(Debug, Clone)]
pub struct ScatterBlock {
    scatter: Matrix,
    sum_nu2: Vector,
    count: usize,
}

fn scatter_blocks(
    means: &[Vector],
    vars: &[Vector],
    mu: &Vector,
    range: Range<usize>,
) -> Result<Vec<ScatterBlock>> {
    let k = mu.len();
    blocks(range)
        .map(|b| {
            let mut scatter = Matrix::zeros(k, k);
            let mut sum_nu2 = Vector::zeros(k);
            let count = b.len();
            for i in b {
                let d = means[i].sub(mu)?;
                scatter.add_outer(1.0, &d)?;
                sum_nu2.add_assign(&vars[i])?;
            }
            Ok(ScatterBlock {
                scatter,
                sum_nu2,
                count,
            })
        })
        .collect()
}

/// One block's τ² partial: `Σ E[(s − wᵀc)²]` over the block's scored pairs.
#[derive(Debug, Clone, Copy)]
pub struct TauBlock {
    sq_sum: f64,
    count: usize,
}

/// One block's β partial: the smoothing-free word-responsibility pull
/// `Σ_j Σ_p cnt_p φ_{j,p,k} 1[v_p = v]` over the block's tasks.
#[derive(Debug, Clone)]
pub struct BetaBlock {
    beta: Matrix,
}

/// Second-moment partials of one shard: scatter for both priors, the τ²
/// residual sums, and the β word pulls.
#[derive(Debug, Clone, Default)]
pub struct SecondMoments {
    worker: Vec<ScatterBlock>,
    task: Vec<ScatterBlock>,
    tau: Vec<TauBlock>,
    beta: Vec<BetaBlock>,
}

impl SecondMoments {
    /// Gathers the block partials of the given (block-aligned) ranges,
    /// about the already-reduced means `μ_w` / `μ_c`.
    pub fn gather(
        state: &VariationalState,
        tasks_all: &[TaskData],
        mu_w: &Vector,
        mu_c: &Vector,
        vocab_size: usize,
        workers: Range<usize>,
        tasks: Range<usize>,
    ) -> Result<Self> {
        let k = mu_w.len();
        let worker = scatter_blocks(&state.lambda_w, &state.nu2_w, mu_w, workers)?;
        let task = scatter_blocks(&state.lambda_c, &state.nu2_c, mu_c, tasks.clone())?;
        let mut tau = Vec::new();
        let mut beta = Vec::new();
        for b in blocks(tasks) {
            let mut sq_sum = 0.0;
            let mut count = 0usize;
            let mut pull = (vocab_size > 0).then(|| Matrix::zeros(k, vocab_size));
            for j in b {
                let td = &tasks_all[j];
                for &(i, s) in &td.scores {
                    sq_sum += expected_sq_residual(
                        s,
                        &state.lambda_w[i],
                        &state.nu2_w[i],
                        &state.lambda_c[j],
                        &state.nu2_c[j],
                    );
                    count += 1;
                }
                if let Some(m) = pull.as_mut() {
                    let phi = state.phi.row(j);
                    for (slot, &(v, cnt)) in td.words.iter().enumerate() {
                        for kk in 0..k {
                            m[(kk, v)] += cnt as f64 * phi[slot * k + kk];
                        }
                    }
                }
            }
            tau.push(TauBlock { sq_sum, count });
            if let Some(m) = pull {
                beta.push(BetaBlock { beta: m });
            }
        }
        Ok(SecondMoments {
            worker,
            task,
            tau,
            beta,
        })
    }

    /// Concatenates per-shard partials in shard-index order.
    // crowd-lint: root(det)
    pub fn merge(parts: impl IntoIterator<Item = SecondMoments>) -> Self {
        let mut out = SecondMoments::default();
        for p in parts {
            out.worker.extend(p.worker);
            out.task.extend(p.task);
            out.tau.extend(p.tau);
            out.beta.extend(p.beta);
        }
        out
    }

    /// The fitted worker covariance `Σ_w` (Eq. 17) before flooring;
    /// `None` when there are no workers.
    pub fn worker_covariance(&self, ridge: f64, diagonal: bool) -> Result<Option<Matrix>> {
        fold_covariance(&self.worker, ridge, diagonal)
    }

    /// The fitted task covariance `Σ_c` (Eq. 19) before flooring;
    /// `None` when there are no tasks.
    pub fn task_covariance(&self, ridge: f64, diagonal: bool) -> Result<Option<Matrix>> {
        fold_covariance(&self.task, ridge, diagonal)
    }

    /// `(Σ residuals, pair count)` for the τ² update (Eq. 20), folded in
    /// block order.
    pub fn tau_residuals(&self) -> (f64, usize) {
        let mut sq_sum = 0.0;
        let mut count = 0usize;
        for t in &self.tau {
            sq_sum += t.sq_sum;
            count += t.count;
        }
        (sq_sum, count)
    }

    /// The row-normalized language model β (Eq. 21); `None` when the corpus
    /// is empty (no vocabulary or no tasks).
    pub fn beta(&self, smoothing: f64) -> Result<Option<Matrix>> {
        let Some(first) = self.beta.first() else {
            return Ok(None);
        };
        let (k, v) = (first.beta.rows(), first.beta.cols());
        let mut beta = Matrix::from_fn(k, v, |_, _| smoothing);
        for b in &self.beta {
            beta.add_assign(&b.beta)?;
        }
        for kk in 0..k {
            crowd_math::special::normalize_in_place(beta.row_mut(kk));
        }
        Ok(Some(beta))
    }
}

/// Folds scatter blocks in order into the moment covariance
/// `1/n Σ (diag(ν²) + (λ − μ)(λ − μ)ᵀ) + ridge·I`, optionally diagonalized —
/// the block-reduction form of the former `moment_covariance`.
// crowd-lint: root(det)
fn fold_covariance(parts: &[ScatterBlock], ridge: f64, diagonal: bool) -> Result<Option<Matrix>> {
    let Some(first) = parts.first() else {
        return Ok(None);
    };
    let k = first.sum_nu2.len();
    let mut cov = Matrix::zeros(k, k);
    let mut mean_var = Vector::zeros(k);
    let mut count = 0usize;
    for p in parts {
        cov.add_assign(&p.scatter)?;
        mean_var.add_assign(&p.sum_nu2)?;
        count += p.count;
    }
    let n = count as f64;
    cov.scale(1.0 / n);
    cov.symmetrize();
    mean_var.scale(1.0 / n);
    cov.add_diag(&mean_var)?;
    cov.add_ridge(ridge);
    if diagonal {
        let d = cov.diag();
        cov = Matrix::from_diag(&d);
    }
    Ok(Some(cov))
}

// ---------------------------------------------------------------------------
// ELBO partials (Section 5.2)
// ---------------------------------------------------------------------------

/// One worker block's bound contribution: `−Σ KL(q(w_i) ‖ p(w_i))`.
#[derive(Debug, Clone, Copy)]
pub struct ElboWorkerBlock {
    worker_prior: f64,
}

/// One task block's bound contributions (prior KL, words, feedback).
#[derive(Debug, Clone, Copy)]
pub struct ElboTaskBlock {
    task_prior: f64,
    words: f64,
    feedback: f64,
}

/// Block partials of the evidence lower bound.
#[derive(Debug, Clone, Default)]
pub struct ElboPartials {
    worker: Vec<ElboWorkerBlock>,
    task: Vec<ElboTaskBlock>,
}

impl ElboPartials {
    /// Gathers the bound's block partials over the given ranges.
    pub fn gather(
        state: &VariationalState,
        tasks_all: &[TaskData],
        ctx: &EStepContext,
        workers: Range<usize>,
        tasks: Range<usize>,
    ) -> Self {
        let k = state.num_categories();
        let ln_2pi_tau2 = (2.0 * std::f64::consts::PI * ctx.tau2).ln();

        let worker = blocks(workers)
            .map(|b| {
                let mut worker_prior = 0.0;
                for i in b {
                    worker_prior -= gaussian_kl(
                        &state.lambda_w[i],
                        &state.nu2_w[i],
                        &ctx.mu_w,
                        &ctx.sigma_w_inv,
                        ctx.log_det_sigma_w,
                    );
                }
                ElboWorkerBlock { worker_prior }
            })
            .collect();

        let task = blocks(tasks)
            .map(|b| {
                let mut task_prior = 0.0;
                let mut words = 0.0;
                let mut feedback = 0.0;
                for j in b {
                    let td = &tasks_all[j];
                    task_prior -= gaussian_kl(
                        &state.lambda_c[j],
                        &state.nu2_c[j],
                        &ctx.mu_c,
                        &ctx.sigma_c_inv,
                        ctx.log_det_sigma_c,
                    );
                    words += expected_word_ll(
                        &td.words,
                        td.num_tokens,
                        &state.lambda_c[j],
                        &state.nu2_c[j],
                        state.phi.row(j),
                        state.epsilon[j],
                        &ctx.log_beta,
                        k,
                    );
                    for &(i, s) in &td.scores {
                        let resid = expected_sq_residual(
                            s,
                            &state.lambda_w[i],
                            &state.nu2_w[i],
                            &state.lambda_c[j],
                            &state.nu2_c[j],
                        );
                        feedback += -0.5 * ln_2pi_tau2 - resid / (2.0 * ctx.tau2);
                    }
                }
                ElboTaskBlock {
                    task_prior,
                    words,
                    feedback,
                }
            })
            .collect();

        ElboPartials { worker, task }
    }

    /// Concatenates per-shard partials in shard-index order.
    // crowd-lint: root(det)
    pub fn merge(parts: impl IntoIterator<Item = ElboPartials>) -> Self {
        let mut out = ElboPartials::default();
        for p in parts {
            out.worker.extend(p.worker);
            out.task.extend(p.task);
        }
        out
    }

    /// Folds the block partials in order into the bound.
    // crowd-lint: root(det)
    pub fn fold(&self) -> ElboBreakdown {
        let mut worker_prior = 0.0;
        for b in &self.worker {
            worker_prior += b.worker_prior;
        }
        let mut task_prior = 0.0;
        let mut words = 0.0;
        let mut feedback = 0.0;
        for b in &self.task {
            task_prior += b.task_prior;
            words += b.words;
            feedback += b.feedback;
        }
        ElboBreakdown {
            worker_prior,
            task_prior,
            words,
            feedback,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_is_block_aligned_and_covers() {
        for &(n, s) in &[
            (0usize, 4usize),
            (1, 1),
            (255, 2),
            (256, 2),
            (1000, 4),
            (5000, 8),
        ] {
            let plan = ShardPlan::new(n, n, s);
            assert_eq!(plan.num_shards(), s.max(1));
            let mut covered = 0usize;
            for i in 0..plan.num_shards() {
                let r = plan.worker_range(i);
                assert_eq!(r.start, covered, "ranges must be contiguous");
                assert!(
                    r.is_empty() || r.start.is_multiple_of(SUFF_BLOCK),
                    "range {r:?} not block-aligned (n={n}, s={s})"
                );
                covered = r.end;
            }
            assert_eq!(covered, n, "partition must cover 0..{n}");
        }
    }

    #[test]
    fn blocks_tile_a_range() {
        let tiles: Vec<_> = blocks(512..1000).collect();
        assert_eq!(tiles, vec![512..768, 768..1000]);
        assert_eq!(blocks(0..0).count(), 0);
    }

    #[test]
    fn sharded_moment_blocks_concatenate_to_global() {
        let means: Vec<Vector> = (0..600)
            .map(|i| Vector::from_vec(vec![i as f64 * 0.25, 1.0 / (1.0 + i as f64)]))
            .collect();
        let state = |_: ()| ();
        let _ = state;
        let global = moment_blocks(&means, 0..means.len()).unwrap();
        for shards in [1usize, 2, 3, 4] {
            let plan = ShardPlan::new(means.len(), 0, shards);
            let mut merged: Vec<MomentBlock> = Vec::new();
            for s in 0..plan.num_shards() {
                merged.extend(moment_blocks(&means, plan.worker_range(s)).unwrap());
            }
            assert_eq!(merged.len(), global.len(), "shards={shards}");
            for (a, b) in merged.iter().zip(&global) {
                assert_eq!(a.sum.as_slice(), b.sum.as_slice());
                assert_eq!(a.count, b.count);
            }
        }
    }

    #[test]
    fn fold_mean_matches_two_block_hand_sum() {
        let means: Vec<Vector> = (0..SUFF_BLOCK + 3)
            .map(|i| Vector::from_vec(vec![0.1 * i as f64]))
            .collect();
        let parts = moment_blocks(&means, 0..means.len()).unwrap();
        assert_eq!(parts.len(), 2);
        let mean = fold_mean(&parts).unwrap().unwrap();
        let b0: f64 = (0..SUFF_BLOCK).fold(0.0, |acc, i| acc + 0.1 * i as f64);
        let b1: f64 = (SUFF_BLOCK..SUFF_BLOCK + 3).fold(0.0, |acc, i| acc + 0.1 * i as f64);
        let want = (b0 + b1) / means.len() as f64;
        assert_eq!(mean[0], want, "block-then-fold order must be exact");
    }
}
