//! Variational inference engine (paper Section 5).
//!
//! Each module implements one block of Algorithm 2 with the corresponding
//! equation numbers documented inline:
//!
//! - [`estep`]: the variational-parameter updates (Eqs. 10–15). Worker means
//!   and variances are closed form (Cholesky solves); task means use
//!   conjugate gradient; task variances use a monotone root solve; word
//!   responsibilities and the Taylor parameter are closed form.
//! - [`mstep`]: the model-parameter updates (Eqs. 16–21), all closed form.
//! - [`elbo`]: the evidence lower bound `L'(q)` used as the convergence
//!   criterion (`L'(q^{(n)}) − L'(q^{(n−1)}) ≤ ε` in Algorithm 2).
//! - [`suffstats`]: the fixed-block sufficient-statistics scheme every
//!   global reduction (M-step + ELBO) goes through, which is what keeps the
//!   sharded fit bit-identical to the serial path for any shard count.
//!
//! The paper's appendix derivations contain several typos (dropped
//! transposes, sign flips); the updates here are re-derived from the CTM
//! bound and verified against finite differences in the test suite.

pub mod elbo;
pub mod estep;
pub mod gibbs;
pub mod mstep;
pub mod suffstats;

use crate::params::ModelParams;
use crowd_math::{Cholesky, Matrix, Result as MathResult};

/// Per-E-step precomputed quantities shared by every update.
#[derive(Debug, Clone)]
pub struct EStepContext {
    /// `Σ_w⁻¹`.
    pub sigma_w_inv: Matrix,
    /// `Σ_c⁻¹`.
    pub sigma_c_inv: Matrix,
    /// `log β` (floored; see [`ModelParams::log_beta`]).
    pub log_beta: Matrix,
    /// `τ²`.
    pub tau2: f64,
    /// `Σ_w⁻¹ μ_w` (worker-update right-hand-side prior term).
    pub prior_rhs_w: crowd_math::Vector,
    /// `Σ_c⁻¹ μ_c`.
    pub prior_rhs_c: crowd_math::Vector,
    /// `μ_w` (cached copy).
    pub mu_w: crowd_math::Vector,
    /// `μ_c` (cached copy).
    pub mu_c: crowd_math::Vector,
    /// Log-determinants needed by the ELBO.
    pub log_det_sigma_w: f64,
    /// `log det Σ_c`.
    pub log_det_sigma_c: f64,
}

impl EStepContext {
    /// Builds the context from the current model parameters.
    pub fn new(params: &ModelParams) -> MathResult<Self> {
        let chol_w = Cholesky::factor_with_jitter(&params.sigma_w, 1e-10, 40)?;
        let chol_c = Cholesky::factor_with_jitter(&params.sigma_c, 1e-10, 40)?;
        let sigma_w_inv = chol_w.inverse()?;
        let sigma_c_inv = chol_c.inverse()?;
        let prior_rhs_w = sigma_w_inv.matvec(&params.mu_w)?;
        let prior_rhs_c = sigma_c_inv.matvec(&params.mu_c)?;
        Ok(EStepContext {
            prior_rhs_w,
            prior_rhs_c,
            mu_w: params.mu_w.clone(),
            mu_c: params.mu_c.clone(),
            log_beta: params.log_beta(),
            tau2: params.tau2(),
            log_det_sigma_w: chol_w.log_det(),
            log_det_sigma_c: chol_c.log_det(),
            sigma_w_inv,
            sigma_c_inv,
        })
    }
}
