//! MCMC posterior sampling — a validation path for the variational
//! algorithm.
//!
//! The paper's inference is variational (Section 5). To check that our
//! implementation approximates the *right* posterior, this module samples
//! `p(W, C | V, S, ϕ)` for **fixed** model parameters `ϕ` with a
//! Gibbs-within-Metropolis scheme:
//!
//! - `w^i | C, S` is exactly Gaussian (the model is conjugate in `w`):
//!   precision `Σ_w⁻¹ + τ⁻² Σ_j c_j c_jᵀ`, sampled via a Cholesky solve.
//! - `c^j | W, S, words` is non-conjugate (logistic-normal words), so a
//!   random-walk Metropolis step is used with the *exact* word likelihood
//!   `p(v|c) = Σ_k softmax(c)_k β_{k,v}` — the topic indicator `z` is
//!   marginalized out analytically, which both removes a sampling dimension
//!   and avoids the Taylor bound the variational method needs.
//!
//! Agreement between the Gibbs posterior means and the variational means on
//! small problems is asserted in the test suite.

use crate::dataset::TrainingSet;
use crate::inference::EStepContext;
use crate::params::ModelParams;
use crate::{CoreError, Result};
use crowd_math::{Cholesky, Vector};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Sampler configuration.
#[derive(Debug, Clone)]
pub struct GibbsConfig {
    /// Discarded warm-up sweeps.
    pub burn_in: usize,
    /// Retained samples (after thinning).
    pub samples: usize,
    /// Keep every `thin`-th sweep.
    pub thin: usize,
    /// Initial random-walk proposal standard deviation for the `c` update.
    /// During burn-in the scale adapts towards [`GibbsConfig::target_accept`]
    /// and is then frozen, so the post-burn-in chain keeps detailed balance.
    pub proposal_std: f64,
    /// Metropolis acceptance rate the burn-in adaptation aims for.
    pub target_accept: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GibbsConfig {
    fn default() -> Self {
        GibbsConfig {
            burn_in: 200,
            samples: 300,
            thin: 2,
            proposal_std: 0.15,
            target_accept: 0.3,
            seed: 1234,
        }
    }
}

/// Posterior summary from a sampling run.
#[derive(Debug, Clone)]
pub struct GibbsSummary {
    /// Posterior mean worker skills `E[w^i | data]`.
    pub worker_means: Vec<Vector>,
    /// Posterior mean task categories `E[c^j | data]`.
    pub task_means: Vec<Vector>,
    /// Metropolis acceptance rate of the `c` updates.
    pub acceptance_rate: f64,
}

/// Samples the latent posterior under fixed parameters `params`.
pub fn sample_posterior(
    params: &ModelParams,
    ts: &TrainingSet,
    cfg: &GibbsConfig,
) -> Result<GibbsSummary> {
    if ts.num_tasks() == 0 {
        return Err(CoreError::EmptyTrainingSet);
    }
    let k = params.num_categories();
    let ctx = EStepContext::new(params)?;
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let by_worker = ts.scores_by_worker();
    let inv_tau2 = 1.0 / ctx.tau2;

    // State: start from the prior means.
    let mut w: Vec<Vector> = (0..ts.num_workers()).map(|_| params.mu_w.clone()).collect();
    let mut c: Vec<Vector> = (0..ts.num_tasks()).map(|_| params.mu_c.clone()).collect();

    let mut w_acc: Vec<Vector> = (0..ts.num_workers()).map(|_| Vector::zeros(k)).collect();
    let mut c_acc: Vec<Vector> = (0..ts.num_tasks()).map(|_| Vector::zeros(k)).collect();
    let mut kept = 0usize;
    let mut proposals = 0usize;
    let mut accepted = 0usize;

    // Proposal scale, adapted during burn-in towards `target_accept` and
    // frozen afterwards. A fixed scale that mixes well under neutral
    // parameters can stall once β sharpens (the word likelihood narrows the
    // conditional), which biases the short-chain posterior means.
    let mut step = cfg.proposal_std;
    let mut window_proposals = 0usize;
    let mut window_accepts = 0usize;
    const ADAPT_WINDOW: usize = 20;

    let total_sweeps = cfg.burn_in + cfg.samples * cfg.thin.max(1);
    for sweep in 0..total_sweeps {
        // ---- Gibbs: w^i | c, s (exact Gaussian conditional) ----------------
        for (i, jobs) in by_worker.iter().enumerate() {
            let mut precision = ctx.sigma_w_inv.clone();
            let mut rhs = ctx.prior_rhs_w.clone();
            for &(j, s) in jobs {
                precision.add_outer(inv_tau2, &c[j])?;
                rhs.axpy(inv_tau2 * s, &c[j])?;
            }
            let chol = Cholesky::factor_with_jitter(&precision, 1e-10, 40)?;
            let mean = chol.solve(&rhs)?;
            w[i] = sample_from_precision(&chol, &mean, &mut rng)?;
        }

        // ---- Metropolis: c^j | w, s, words ---------------------------------
        for (j, task) in ts.tasks().iter().enumerate() {
            let current_lp = log_posterior_c(&c[j], task, &w, params, &ctx, inv_tau2)?;
            let proposal = Vector::from_fn(k, |kk| c[j][kk] + step * standard_normal(&mut rng));
            let proposal_lp = log_posterior_c(&proposal, task, &w, params, &ctx, inv_tau2)?;
            proposals += 1;
            window_proposals += 1;
            if (proposal_lp - current_lp) >= rng.random::<f64>().max(1e-300).ln() {
                c[j] = proposal;
                accepted += 1;
                window_accepts += 1;
            }
        }

        if sweep < cfg.burn_in && (sweep + 1).is_multiple_of(ADAPT_WINDOW) {
            let rate = window_accepts as f64 / window_proposals.max(1) as f64;
            // Multiplicative Robbins–Monro style update, clamped so a dead
            // window cannot collapse or explode the scale.
            step = (step * (1.0 + (rate - cfg.target_accept))).clamp(1e-3, 10.0);
            window_proposals = 0;
            window_accepts = 0;
        }

        // ---- Scale move: (W, C) → (W/γ, γC) ---------------------------------
        // Every inner product w·c — and with it the entire feedback
        // likelihood — is invariant under this map, so when τ is small the
        // posterior has a long, thin ridge that coordinate-wise updates
        // cannot traverse: a chain started at small ‖c‖ compensates with
        // huge ‖w‖ and stays there. A log-normal γ proposal slides the whole
        // state along the ridge; only the priors, the word likelihood, and
        // the Jacobian |det| = γ^{K(#tasks − #workers)} decide acceptance.
        let gamma: f64 = (0.2 * standard_normal(&mut rng)).exp();
        let mut log_accept =
            (k as f64) * (ts.num_tasks() as f64 - ts.num_workers() as f64) * gamma.ln();
        for wi in &w {
            let cur = wi.sub(&params.mu_w)?;
            let prop = Vector::from_fn(k, |kk| wi[kk] / gamma - params.mu_w[kk]);
            log_accept +=
                0.5 * (ctx.sigma_w_inv.quad_form(&cur)? - ctx.sigma_w_inv.quad_form(&prop)?);
        }
        for (j, task) in ts.tasks().iter().enumerate() {
            let cur = c[j].sub(&ctx.mu_c)?;
            let prop = Vector::from_fn(k, |kk| gamma * c[j][kk] - ctx.mu_c[kk]);
            log_accept +=
                0.5 * (ctx.sigma_c_inv.quad_form(&cur)? - ctx.sigma_c_inv.quad_form(&prop)?);
            let scaled = Vector::from_fn(k, |kk| gamma * c[j][kk]);
            log_accept += word_loglik(&scaled, task, params) - word_loglik(&c[j], task, params);
        }
        if log_accept >= rng.random::<f64>().max(1e-300).ln() {
            for wi in &mut w {
                wi.scale(1.0 / gamma);
            }
            for cj in &mut c {
                cj.scale(gamma);
            }
        }

        // ---- Collect --------------------------------------------------------
        if sweep >= cfg.burn_in && (sweep - cfg.burn_in).is_multiple_of(cfg.thin.max(1)) {
            for i in 0..w.len() {
                w_acc[i].add_assign(&w[i])?;
            }
            for j in 0..c.len() {
                c_acc[j].add_assign(&c[j])?;
            }
            kept += 1;
        }
    }

    let scale = 1.0 / kept.max(1) as f64;
    for v in &mut w_acc {
        v.scale(scale);
    }
    for v in &mut c_acc {
        v.scale(scale);
    }
    Ok(GibbsSummary {
        worker_means: w_acc,
        task_means: c_acc,
        acceptance_rate: accepted as f64 / proposals.max(1) as f64,
    })
}

/// Unnormalized log posterior of one task category `c` given everything
/// else: Gaussian prior + exact (z-marginalized) word likelihood + Gaussian
/// feedback likelihood.
fn log_posterior_c(
    c: &Vector,
    task: &crate::dataset::TaskData,
    w: &[Vector],
    params: &ModelParams,
    ctx: &EStepContext,
    inv_tau2: f64,
) -> Result<f64> {
    // Prior.
    let diff = c.sub(&ctx.mu_c)?;
    let mut lp = -0.5 * ctx.sigma_c_inv.quad_form(&diff)?;
    lp += word_loglik(c, task, params);
    // Feedback.
    for &(i, s) in &task.scores {
        let pred = w[i].dot(c)?;
        lp -= 0.5 * inv_tau2 * (s - pred) * (s - pred);
    }
    Ok(lp)
}

/// Exact (z-marginalized) word log likelihood `Σ_v cnt ln Σ_k π_k β_{k,v}`.
fn word_loglik(c: &Vector, task: &crate::dataset::TaskData, params: &ModelParams) -> f64 {
    if task.words.is_empty() {
        return 0.0;
    }
    let pi = crowd_math::special::softmax(c.as_slice());
    let mut lp = 0.0;
    for &(v, cnt) in &task.words {
        let mut p = 0.0;
        for kk in 0..pi.len() {
            p += pi[kk] * params.beta[(kk, v)];
        }
        lp += cnt as f64 * p.max(1e-300).ln();
    }
    lp
}

/// Draws `x ~ Normal(mean, P⁻¹)` given the Cholesky factor `L` of the
/// precision `P = L Lᵀ`: solve `Lᵀ x₀ = z` for standard-normal `z`, then
/// `x = mean + x₀` (cov(x₀) = L⁻ᵀ L⁻¹ = P⁻¹).
fn sample_from_precision(chol: &Cholesky, mean: &Vector, rng: &mut StdRng) -> Result<Vector> {
    let n = chol.dim();
    let z = Vector::from_fn(n, |_| standard_normal(rng));
    // Back substitution against Lᵀ.
    let l = chol.l();
    let mut x = Vector::zeros(n);
    for i in (0..n).rev() {
        let mut sum = z[i];
        for kk in (i + 1)..n {
            sum -= l[(kk, i)] * x[kk];
        }
        x[i] = sum / l[(i, i)];
    }
    x.add_assign(mean)?;
    Ok(x)
}

/// Box–Muller standard normal.
fn standard_normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.random::<f64>().max(1e-12);
    let u2: f64 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::TaskData;
    use crowd_store::TaskId;

    /// Planted 2-topic problem with two specialists and sharp β.
    fn planted() -> (ModelParams, TrainingSet) {
        let mut params = ModelParams::neutral(2, 4);
        for v in 0..4 {
            params.beta[(0, v)] = if v < 2 { 0.45 } else { 0.05 };
            params.beta[(1, v)] = if v < 2 { 0.05 } else { 0.45 };
        }
        params.tau = 0.4;
        let tasks = (0..16u32)
            .map(|j| {
                let a = j % 2 == 0;
                TaskData {
                    task: TaskId(j),
                    words: if a {
                        vec![(0, 3), (1, 2)]
                    } else {
                        vec![(2, 3), (3, 2)]
                    },
                    num_tokens: 5.0,
                    scores: if a {
                        vec![(0, 2.5), (1, 0.2)]
                    } else {
                        vec![(0, 0.2), (1, 2.5)]
                    },
                }
            })
            .collect();
        (params, TrainingSet::from_parts(tasks, 2, 4))
    }

    fn quick_cfg() -> GibbsConfig {
        GibbsConfig {
            burn_in: 150,
            samples: 150,
            thin: 2,
            proposal_std: 0.2,
            target_accept: 0.3,
            seed: 7,
        }
    }

    #[test]
    fn recovers_specialist_structure() {
        let (params, ts) = planted();
        let summary = sample_posterior(&params, &ts, &quick_cfg()).unwrap();
        // Task categories of the two topic types separate.
        let pi_a = crowd_math::special::softmax(summary.task_means[0].as_slice());
        let pi_b = crowd_math::special::softmax(summary.task_means[1].as_slice());
        assert!(pi_a[0] > 0.6, "topic-A task leans to category 0: {pi_a:?}");
        assert!(pi_b[1] > 0.6, "topic-B task leans to category 1: {pi_b:?}");
        // Worker skills: w0 is the topic-A specialist.
        let w0 = &summary.worker_means[0];
        let w1 = &summary.worker_means[1];
        assert!(w0[0] > w1[0], "w0 stronger on category 0");
        assert!(w1[1] > w0[1], "w1 stronger on category 1");
    }

    #[test]
    fn acceptance_rate_is_reasonable() {
        let (params, ts) = planted();
        let summary = sample_posterior(&params, &ts, &quick_cfg()).unwrap();
        assert!(
            (0.05..0.95).contains(&summary.acceptance_rate),
            "acceptance {:.3}",
            summary.acceptance_rate
        );
    }

    #[test]
    fn agrees_with_variational_inference() {
        // Both methods approximate the same posterior p(W, C | V, S, ϕ) for
        // *fixed* parameters ϕ, so run the variational E-step (no M-step)
        // and the sampler under the identical planted ϕ and compare
        // posterior means. Fitting ϕ by EM first would drive τ to its floor
        // on this tiny separable problem, and at τ → 0 the latent
        // coordinates sit on scale/sign ridges (w·c is invariant under
        // W → −W, C → −C) where raw coordinates are not comparable.
        let (params, ts) = planted();
        let k = params.num_categories();
        let cfg = crate::TdpmConfig {
            num_categories: k,
            seed: 3,
            ..crate::TdpmConfig::default()
        };
        let ctx = EStepContext::new(&params).unwrap();
        let mut state = crate::variational::VariationalState::init(&ts, k, cfg.seed);
        let by_worker = ts.scores_by_worker();
        let mut scratch = crate::inference::estep::EStepScratch::new(k);
        for _ in 0..60 {
            let stats: Vec<crate::inference::estep::TaskFeedbackStats> = ts
                .tasks()
                .iter()
                .map(|t| {
                    crate::inference::estep::TaskFeedbackStats::gather(
                        &t.scores,
                        &state.lambda_w,
                        &state.nu2_w,
                        k,
                    )
                    .unwrap()
                })
                .collect();
            for (j, task) in ts.tasks().iter().enumerate() {
                let update = crate::inference::estep::TaskUpdate {
                    words: &task.words,
                    num_tokens: task.num_tokens,
                    feedback: &stats[j],
                };
                let mut post = crate::inference::estep::TaskPosterior {
                    lambda: &mut state.lambda_c[j],
                    nu2: &mut state.nu2_c[j],
                    phi: state.phi.row_mut(j),
                    epsilon: &mut state.epsilon[j],
                };
                crate::inference::estep::update_task(&update, &mut post, &ctx, &cfg).unwrap();
            }
            crate::inference::estep::update_workers(
                &mut state,
                &ts,
                &ctx,
                &by_worker,
                &mut scratch,
            )
            .unwrap();
        }

        let summary = sample_posterior(&params, &ts, &quick_cfg()).unwrap();

        let mut variational = Vec::new();
        let mut mcmc = Vec::new();
        for i in 0..ts.num_workers() {
            variational.extend_from_slice(state.lambda_w[i].as_slice());
            mcmc.extend_from_slice(summary.worker_means[i].as_slice());
        }
        for j in 0..ts.num_tasks() {
            variational.extend_from_slice(state.lambda_c[j].as_slice());
            mcmc.extend_from_slice(summary.task_means[j].as_slice());
        }
        let corr = crowd_math::stats::pearson(&variational, &mcmc).unwrap();
        assert!(
            corr > 0.9,
            "variational and MCMC posterior means should agree: r = {corr:.3}\n\
             variational {variational:?}\nmcmc {mcmc:?}"
        );
    }

    #[test]
    fn empty_training_set_errors() {
        let (params, _) = planted();
        let ts = TrainingSet::from_parts(vec![], 0, 4);
        assert!(matches!(
            sample_posterior(&params, &ts, &quick_cfg()),
            Err(CoreError::EmptyTrainingSet)
        ));
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let (params, ts) = planted();
        let a = sample_posterior(&params, &ts, &quick_cfg()).unwrap();
        let b = sample_posterior(&params, &ts, &quick_cfg()).unwrap();
        assert_eq!(a.worker_means[0].as_slice(), b.worker_means[0].as_slice());
        assert_eq!(a.acceptance_rate, b.acceptance_rate);
    }
}
