//! Saving and loading trained models.
//!
//! A crowd database outlives any single process; the trained model must too.
//! [`ModelSnapshot`] captures everything a [`TdpmModel`] needs — parameters,
//! per-worker skills with their incremental-update sufficient statistics,
//! and the fitted training-task posteriors — in a serde-friendly form.
//! Derived quantities (`Σ⁻¹`, `log β`, …) are rebuilt on load.

use crate::config::TdpmConfig;
use crate::model::{TaskProjection, TdpmModel};
use crate::params::ModelParams;
use crate::{CoreError, Result};
use crowd_math::{Matrix, Vector};
use crowd_store::{TaskId, WorkerId};
use serde::{Deserialize, Serialize};
use std::path::Path;

/// Flat, serializable image of a trained model.
#[derive(Debug, Serialize, Deserialize)]
pub struct ModelSnapshot {
    /// Format version for forward compatibility.
    pub version: u32,
    config: TdpmConfig,
    params: ModelParams,
    workers: Vec<WorkerEntry>,
    trained_tasks: Vec<(TaskId, Vector, Vector, f64)>,
}

#[derive(Debug, Serialize, Deserialize)]
struct WorkerEntry {
    id: WorkerId,
    mean: Vector,
    variance: Vector,
    sum_cc: Matrix,
    sum_sc: Vector,
    sum_diag: Vector,
    num_jobs: usize,
}

/// Current snapshot format version.
pub const SNAPSHOT_VERSION: u32 = 1;

impl ModelSnapshot {
    /// Captures a model.
    pub fn capture(model: &TdpmModel) -> Self {
        let workers = model
            .worker_ids()
            .iter()
            // `worker_ids` and `skill` read the same map, so every listed
            // worker resolves; `filter_map` keeps the capture total anyway.
            .filter_map(|&id| {
                let s = model.skill(id)?;
                let (sum_cc, sum_sc, sum_diag) = s.sufficient_stats();
                Some(WorkerEntry {
                    id,
                    mean: s.mean.clone(),
                    variance: s.variance.clone(),
                    sum_cc: sum_cc.clone(),
                    sum_sc: sum_sc.clone(),
                    sum_diag: sum_diag.clone(),
                    num_jobs: s.num_jobs(),
                })
            })
            .collect();
        let mut trained_tasks: Vec<(TaskId, Vector, Vector, f64)> = model
            .trained_task_ids()
            .filter_map(|t| {
                let p = model.trained_projection(t)?;
                Some((t, p.lambda.clone(), p.nu2.clone(), p.num_tokens))
            })
            .collect();
        trained_tasks.sort_by_key(|&(t, _, _, _)| t);
        ModelSnapshot {
            version: SNAPSHOT_VERSION,
            config: model.config().clone(),
            params: model.params().clone(),
            workers,
            trained_tasks,
        }
    }

    /// Rebuilds the model (recomputing cached derived quantities).
    pub fn restore(self) -> Result<TdpmModel> {
        if self.version != SNAPSHOT_VERSION {
            return Err(CoreError::Numerical(format!(
                "unsupported model snapshot version {}",
                self.version
            )));
        }
        let worker_ids: Vec<WorkerId> = self.workers.iter().map(|w| w.id).collect();
        let skills = self
            .workers
            .into_iter()
            .map(|w| {
                TdpmModel::skill_from_training(
                    w.mean, w.variance, w.sum_cc, w.sum_sc, w.sum_diag, w.num_jobs,
                )
            })
            .collect();
        let mut model = TdpmModel::assemble(self.params, self.config, skills, worker_ids)?;
        let trained = self
            .trained_tasks
            .into_iter()
            .map(|(t, lambda, nu2, num_tokens)| {
                (
                    t,
                    TaskProjection {
                        lambda,
                        nu2,
                        num_tokens,
                    },
                )
            })
            .collect();
        model.set_trained_tasks(trained);
        Ok(model)
    }

    /// Serializes to JSON.
    pub fn to_json(&self) -> Result<String> {
        serde_json::to_string(self).map_err(|e| CoreError::Numerical(e.to_string()))
    }

    /// Parses from JSON.
    pub fn from_json(json: &str) -> Result<Self> {
        serde_json::from_str(json).map_err(|e| CoreError::Numerical(e.to_string()))
    }

    /// Writes the snapshot to a file.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<()> {
        std::fs::write(path, self.to_json()?).map_err(|e| CoreError::Numerical(e.to_string()))
    }

    /// Reads a snapshot from a file.
    pub fn load(path: impl AsRef<Path>) -> Result<Self> {
        let json =
            std::fs::read_to_string(path).map_err(|e| CoreError::Numerical(e.to_string()))?;
        ModelSnapshot::from_json(&json)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::TaskData;
    use crate::{TdpmConfig, TdpmTrainer, TrainingSet};

    fn trained_model() -> TdpmModel {
        let tasks = (0..8u32)
            .map(|j| TaskData {
                task: TaskId(j),
                words: if j % 2 == 0 {
                    vec![(0, 2), (1, 1)]
                } else {
                    vec![(2, 2), (3, 1)]
                },
                num_tokens: 3.0,
                scores: if j % 2 == 0 {
                    vec![(0, 4.0), (1, 0.5)]
                } else {
                    vec![(0, 0.5), (1, 4.0)]
                },
            })
            .collect();
        let ts = TrainingSet::from_parts(tasks, 2, 4);
        let cfg = TdpmConfig {
            num_categories: 2,
            max_em_iters: 10,
            seed: 4,
            ..TdpmConfig::default()
        };
        TdpmTrainer::new(cfg).fit_training_set(&ts).unwrap().0
    }

    #[test]
    fn snapshot_roundtrip_preserves_behaviour() {
        let model = trained_model();
        let json = ModelSnapshot::capture(&model).to_json().unwrap();
        let restored = ModelSnapshot::from_json(&json).unwrap().restore().unwrap();

        // Identical skills.
        for &w in model.worker_ids() {
            let a = model.skill(w).unwrap();
            let b = restored.skill(w).unwrap();
            assert_eq!(a.mean.as_slice(), b.mean.as_slice());
            assert_eq!(a.variance.as_slice(), b.variance.as_slice());
            assert_eq!(a.num_jobs(), b.num_jobs());
        }
        // Identical projections and rankings.
        let words = vec![(0usize, 3u32)];
        let pa = model.project_words(&words);
        let pb = restored.project_words(&words);
        assert_eq!(pa.lambda.as_slice(), pb.lambda.as_slice());
        // Trained-task posteriors survive.
        let t = TaskId(0);
        assert_eq!(
            model.trained_projection(t).unwrap().lambda.as_slice(),
            restored.trained_projection(t).unwrap().lambda.as_slice()
        );
    }

    #[test]
    fn restored_model_accepts_incremental_updates() {
        let model = trained_model();
        let mut restored = ModelSnapshot::capture(&model).restore().unwrap();
        let before = restored.skill(WorkerId(1)).unwrap().num_jobs();
        let p = restored.project_words(&[(0, 3)]);
        restored
            .record_feedback(WorkerId(1), &p, 5.0)
            .expect("incremental update works after restore");
        assert_eq!(restored.skill(WorkerId(1)).unwrap().num_jobs(), before + 1);
    }

    #[test]
    fn file_roundtrip() {
        let model = trained_model();
        let dir = std::env::temp_dir().join("crowd_core_model_snapshot");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.json");
        ModelSnapshot::capture(&model).save(&path).unwrap();
        let back = ModelSnapshot::load(&path).unwrap().restore().unwrap();
        assert_eq!(back.worker_ids(), model.worker_ids());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn wrong_version_rejected() {
        let model = trained_model();
        let mut snap = ModelSnapshot::capture(&model);
        snap.version = 999;
        assert!(snap.restore().is_err());
    }

    #[test]
    fn malformed_json_rejected() {
        assert!(ModelSnapshot::from_json("{oops").is_err());
    }
}
