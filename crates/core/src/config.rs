//! Training configuration.

use crowd_math::optimize::CgOptions;
use serde::{Deserialize, Serialize};

/// Hyper-parameters and stopping criteria for [`crate::TdpmTrainer`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TdpmConfig {
    /// Number of latent categories `K`.
    pub num_categories: usize,
    /// Maximum variational EM iterations (`n_max` in Algorithm 2).
    pub max_em_iters: usize,
    /// Stop when the ELBO improves by less than this (relative).
    pub elbo_rel_tol: f64,
    /// Inner coordinate-ascent rounds per task per E-step.
    pub task_inner_iters: usize,
    /// Maximum CG iterations for each task-mean update.
    pub cg_max_iters: usize,
    /// Assume independent skills / categories: keep `Σ_w` and `Σ_c`
    /// diagonal (the paper's "special case" in Section 4.3.1).
    pub diagonal_covariance: bool,
    /// Additive smoothing for the topic-word distributions `β`.
    pub beta_smoothing: f64,
    /// Floor for the feedback noise `τ²` (prevents degenerate certainty).
    pub min_tau2: f64,
    /// Floor for the diagonal of the fitted priors `Σ_w`, `Σ_c` (Eqs. 17/19).
    ///
    /// The empirical-Bayes covariance update is self-reinforcing: once the
    /// worker posteriors cluster near `μ_w`, the fitted `Σ_w` shrinks, which
    /// pins the posteriors to `μ_w` even harder on the next E-step. Left
    /// unchecked the prior collapses (diagonals ~1e-2) and every worker's
    /// skill degenerates to the shared mean — erasing the magnitude
    /// differences that distinguish TDPM from normalized multinomial
    /// profiles (Section 1). The floor is the `Σ` analog of [`min_tau2`].
    ///
    /// [`min_tau2`]: TdpmConfig::min_tau2
    pub min_prior_var: f64,
    /// EM iterations during which `τ` is held at its initial value.
    ///
    /// Updating the noise too early lets `τ²` absorb the full score variance
    /// before skills and categories have grown, freezing the model in a
    /// trust-free local optimum.
    pub tau_warmup_iters: usize,
    /// Ridge added to covariance estimates to keep them SPD.
    pub covariance_ridge: f64,
    /// Exponential forgetting factor applied to a worker's accumulated
    /// feedback sufficient statistics on each incremental
    /// [`crate::TdpmModel::record_feedback`] call (the "feedback-weighted"
    /// variant of Section 4.2's online update).
    ///
    /// `1.0` (the default) keeps every observation at full weight, matching
    /// the batch posterior exactly. Values in `(0, 1)` discount old evidence
    /// geometrically — effective memory ≈ `1 / (1 − ρ)` observations — so
    /// the posterior can track workers whose real skills drift over time.
    /// Only the data terms decay; the prior `Σ_w⁻¹` stays at full strength.
    pub feedback_forgetting: f64,
    /// RNG seed for symmetry-breaking initialization.
    pub seed: u64,
    /// Threads for the task E-step (`1` = sequential). Task posteriors are
    /// independent given the worker posteriors, so the per-task coordinate
    /// ascent parallelizes without changing results — the split is by
    /// contiguous task ranges and every thread runs the same deterministic
    /// updates.
    pub num_threads: usize,
    /// Shards for the fit (`1` = unsharded). Workers and tasks are cut into
    /// `num_shards` block-aligned contiguous ranges (see
    /// [`crate::inference::suffstats::ShardPlan`]): both E-step halves run
    /// per shard on the persistent scoring pool, and the M-step/ELBO reduce
    /// per-shard fixed-block sufficient statistics in shard-index order.
    /// Because every global sum uses the same fixed-block reduction tree as
    /// the serial path, the fitted model is **bit-identical for every shard
    /// count**. Defaults to `1`.
    pub num_shards: usize,
}

impl Default for TdpmConfig {
    fn default() -> Self {
        TdpmConfig {
            num_categories: 10,
            max_em_iters: 30,
            elbo_rel_tol: 1e-5,
            task_inner_iters: 3,
            cg_max_iters: 40,
            diagonal_covariance: false,
            beta_smoothing: 1e-2,
            min_tau2: 1e-4,
            min_prior_var: 0.25,
            tau_warmup_iters: 3,
            covariance_ridge: 1e-6,
            feedback_forgetting: 1.0,
            seed: 42,
            num_threads: 1,
            num_shards: 1,
        }
    }
}

impl TdpmConfig {
    /// Validates the configuration.
    pub fn validate(&self) -> crate::Result<()> {
        if self.num_categories == 0 {
            return Err(crate::CoreError::InvalidConfig(
                "num_categories must be ≥ 1",
            ));
        }
        if self.max_em_iters == 0 {
            return Err(crate::CoreError::InvalidConfig("max_em_iters must be ≥ 1"));
        }
        if self.beta_smoothing <= 0.0 || self.beta_smoothing.is_nan() {
            return Err(crate::CoreError::InvalidConfig(
                "beta_smoothing must be > 0",
            ));
        }
        if self.min_tau2 <= 0.0 || self.min_tau2.is_nan() {
            return Err(crate::CoreError::InvalidConfig("min_tau2 must be > 0"));
        }
        if self.min_prior_var < 0.0 || self.min_prior_var.is_nan() {
            return Err(crate::CoreError::InvalidConfig("min_prior_var must be ≥ 0"));
        }
        if !(self.feedback_forgetting > 0.0 && self.feedback_forgetting <= 1.0) {
            return Err(crate::CoreError::InvalidConfig(
                "feedback_forgetting must be in (0, 1]",
            ));
        }
        Ok(())
    }

    /// CG options for the task-mean updates, derived from this config.
    pub fn cg_options(&self) -> CgOptions {
        CgOptions {
            max_iters: self.cg_max_iters,
            grad_tol: 1e-5,
            f_tol: 1e-9,
            ..CgOptions::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        assert!(TdpmConfig::default().validate().is_ok());
    }

    #[test]
    fn zero_categories_rejected() {
        let cfg = TdpmConfig {
            num_categories: 0,
            ..TdpmConfig::default()
        };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn zero_iters_rejected() {
        let cfg = TdpmConfig {
            max_em_iters: 0,
            ..TdpmConfig::default()
        };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn nonpositive_smoothing_rejected() {
        let cfg = TdpmConfig {
            beta_smoothing: 0.0,
            ..TdpmConfig::default()
        };
        assert!(cfg.validate().is_err());
    }
}
