//! The trained TDPM artifact: worker skills + incremental crowd-selection.

use crate::config::TdpmConfig;
use crate::inference::estep::{update_task, TaskFeedbackStats, TaskPosterior, TaskUpdate};
use crate::inference::EStepContext;
use crate::params::ModelParams;
use crate::selection::{top_k, RankedWorker};
use crate::skillmatrix::SkillMatrix;
use crate::{CoreError, Result};
use crowd_math::{Cholesky, Matrix, Vector};
use crowd_select::BatchQuery;
use crowd_store::{TaskId, WorkerId};
use crowd_text::BagOfWords;
use rand::{Rng, RngExt};
use std::collections::HashMap;

/// Candidate pools below this size are served on the calling thread.
///
/// Dispatching to the persistent scoring pool costs a queue push + condvar
/// wake per chunk (~1 µs) — far below the scoped-thread spawns this cutoff
/// was originally tuned against at 4096 — but an inline walk of a couple
/// thousand contiguous rows still finishes inside that dispatch latency, so
/// the chunked-parallel path only kicks in once the walk itself dominates.
/// Pool reuse halves the old cutoff; going lower buys nothing because a
/// sub-2048 walk is ~2 µs of streaming dot products. The
/// `pool_policy` regression suite pins that selections below this size
/// never enqueue pool work.
const PARALLEL_MIN_CANDIDATES: usize = 2048;

/// Floating-point width of the dense serving path.
///
/// `F64` is the default and the bit-identity oracle; `F32` is the opt-in
/// reduced-precision mirror ([`TdpmModel::select_top_k_f32`] and friends)
/// with the accuracy contract of DESIGN.md §10c. Only the TDPM dense
/// kernels have an f32 mirror — baseline backends always serve in f64.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Precision {
    /// Full-width serving (the oracle path).
    #[default]
    F64,
    /// Reduced-precision serving through the f32 skill mirror.
    F32,
}

impl std::fmt::Display for Precision {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Precision::F64 => "f64",
            Precision::F32 => "f32",
        })
    }
}

/// Posterior skill state for one worker, with the sufficient statistics
/// and cached precision factor needed for O(K²) incremental updates when
/// new feedback arrives.
#[derive(Debug, Clone)]
pub struct WorkerSkill {
    /// Posterior mean `λ_w` — the skill vector used for ranking.
    pub mean: Vector,
    /// Posterior diagonal variance `ν_w²`.
    pub variance: Vector,
    /// `Σ_j (λ_c^j (λ_c^j)ᵀ + diag(ν_c^j²))` over this worker's scored tasks.
    sum_cc: Matrix,
    /// `Σ_j s_ij λ_c^j`.
    sum_sc: Vector,
    /// `Σ_j (λ²_c,jk + ν²_c,jk)` per coordinate (for Eq. 11).
    sum_diag: Vector,
    /// Number of scored tasks folded in.
    num_jobs: usize,
    /// Cached Cholesky factor of the posterior precision
    /// `Σ_w⁻¹ + τ⁻² sum_cc`. Maintained by O(K²) rank-1 updates
    /// ([`crowd_math::Cholesky::rank_one_update`]) instead of O(K³)
    /// refactorization on every feedback event; rebuilt lazily when absent
    /// (e.g. after deserialization).
    precision_chol: Option<Cholesky>,
}

impl WorkerSkill {
    fn at_prior(k: usize) -> Self {
        WorkerSkill {
            mean: Vector::zeros(k),
            variance: Vector::filled(k, 1.0),
            sum_cc: Matrix::zeros(k, k),
            sum_sc: Vector::zeros(k),
            sum_diag: Vector::zeros(k),
            num_jobs: 0,
            precision_chol: None,
        }
    }

    /// Number of feedback observations backing this skill estimate.
    pub fn num_jobs(&self) -> usize {
        self.num_jobs
    }

    /// Read access to the incremental-update sufficient statistics
    /// (`Σ ccᵀ+diag(ν²)`, `Σ s·c`, per-coordinate `Σ (c² + ν²)`).
    pub(crate) fn sufficient_stats(&self) -> (&Matrix, &Vector, &Vector) {
        (&self.sum_cc, &self.sum_sc, &self.sum_diag)
    }
}

/// A new task projected onto the learned latent category space
/// (Algorithm 3, lines 1–5).
#[derive(Debug, Clone)]
pub struct TaskProjection {
    /// Posterior mean `λ_c` of the task's latent category.
    pub lambda: Vector,
    /// Posterior diagonal variance `ν_c²`.
    pub nu2: Vector,
    /// Total token count of the projected task (0 if nothing matched the
    /// model vocabulary).
    pub num_tokens: f64,
}

impl TaskProjection {
    /// Samples a concrete category vector `c ~ Normal(λ_c, diag(ν_c²))`
    /// (Algorithm 3, line 6).
    pub fn sample(&self, rng: &mut impl Rng) -> Vector {
        Vector::from_fn(self.lambda.len(), |k| {
            let std = self.nu2[k].max(0.0).sqrt();
            // Box–Muller on two uniforms.
            let u1: f64 = rng.random::<f64>().max(1e-12);
            let u2: f64 = rng.random();
            let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            self.lambda[k] + std * z
        })
    }
}

/// A trained task-driven crowd-selection model.
///
/// Produced by [`crate::TdpmTrainer`]; supports the two online operations the
/// paper's crowd manager needs (Section 2): projecting incoming tasks into
/// the latent space, and updating worker skills when new feedback arrives.
#[derive(Debug, Clone)]
pub struct TdpmModel {
    params: ModelParams,
    config: TdpmConfig,
    skills: Vec<WorkerSkill>,
    worker_ids: Vec<WorkerId>,
    worker_index: HashMap<WorkerId, usize>,
    ctx: EStepContext,
    /// Fitted posteriors of the training tasks, keyed by store id. Unlike a
    /// fresh [`TdpmModel::project_bow`] projection these are
    /// *feedback-informed* (Eqs. 14–15 include the score terms).
    trained_tasks: HashMap<TaskId, TaskProjection>,
    /// Dense `W × K` serving snapshot of the posterior means/variances, kept
    /// in lockstep with `skills` (rebuilt on assembly, row-upserted by
    /// [`TdpmModel::add_worker`] / [`TdpmModel::record_feedback`]). Every
    /// selection query scores against this, never against `skills`.
    matrix: SkillMatrix,
    /// Online-path metrics (`model` component): projection latency and
    /// incremental-update counts. Handles are resolved once in
    /// [`TdpmModel::set_obs`] so the hot paths never touch the registry
    /// lock. Defaults to a detached no-op registry.
    metrics: ModelMetrics,
}

/// Pre-resolved metric handles for the model's online operations.
#[derive(Debug, Clone)]
struct ModelMetrics {
    projections: std::sync::Arc<crowd_obs::Counter>,
    projection_seconds: std::sync::Arc<crowd_obs::Histogram>,
    incremental_updates: std::sync::Arc<crowd_obs::Counter>,
    incremental_update_seconds: std::sync::Arc<crowd_obs::Histogram>,
    validations: std::sync::Arc<crowd_obs::Counter>,
}

impl ModelMetrics {
    fn resolve(obs: &crowd_obs::Obs) -> Self {
        ModelMetrics {
            projections: obs.metrics.counter("model", "projections"),
            projection_seconds: obs.metrics.histogram("model", "projection_seconds"),
            incremental_updates: obs.metrics.counter("model", "incremental_updates"),
            incremental_update_seconds: obs
                .metrics
                .histogram("model", "incremental_update_seconds"),
            validations: obs.metrics.counter("validate", "checks"),
        }
    }
}

impl TdpmModel {
    /// Assembles a model from trained parameters and per-worker skill states.
    ///
    /// `skills` must be in the same dense order as `worker_ids`.
    pub(crate) fn assemble(
        params: ModelParams,
        config: TdpmConfig,
        skills: Vec<WorkerSkill>,
        worker_ids: Vec<WorkerId>,
    ) -> Result<Self> {
        let ctx = EStepContext::new(&params)?;
        let worker_index = worker_ids
            .iter()
            .enumerate()
            .map(|(i, &w)| (w, i))
            .collect();
        let mut matrix = SkillMatrix::with_capacity(config.num_categories, worker_ids.len());
        for (&w, skill) in worker_ids.iter().zip(&skills) {
            matrix.upsert(w, skill.mean.as_slice(), skill.variance.as_slice());
        }
        Ok(TdpmModel {
            params,
            config,
            skills,
            worker_ids,
            worker_index,
            ctx,
            trained_tasks: HashMap::new(),
            matrix,
            metrics: ModelMetrics::resolve(&crowd_obs::Obs::noop()),
        })
    }

    /// Assembles a servable model directly from per-worker posterior means
    /// and variances, with no training history behind them (sufficient
    /// statistics start empty, as for [`TdpmModel::add_worker`]).
    ///
    /// This is the entry point for benchmarks and property tests that need a
    /// model of arbitrary shape without running variational EM; selection
    /// behaves exactly as it would on a trained model with these posteriors.
    pub fn from_posteriors(
        params: ModelParams,
        config: TdpmConfig,
        workers: Vec<(WorkerId, Vector, Vector)>,
    ) -> Result<Self> {
        let k = config.num_categories;
        let mut ids = Vec::with_capacity(workers.len());
        let mut skills = Vec::with_capacity(workers.len());
        for (w, mean, variance) in workers {
            if mean.len() != k || variance.len() != k {
                return Err(CoreError::Numerical(format!(
                    "posterior for worker {w:?} has length {}/{}, expected {k}",
                    mean.len(),
                    variance.len()
                )));
            }
            let mut skill = WorkerSkill::at_prior(k);
            skill.mean = mean;
            skill.variance = variance;
            ids.push(w);
            skills.push(skill);
        }
        TdpmModel::assemble(params, config, skills, ids)
    }

    /// Attaches shared observability for the online operations (Algorithm
    /// 3 projection latency, incremental feedback updates).
    pub fn set_obs(&mut self, obs: crowd_obs::Obs) {
        self.metrics = ModelMetrics::resolve(&obs);
    }

    /// Installs the fitted training-task posteriors (called by the trainer).
    pub(crate) fn set_trained_tasks(&mut self, tasks: HashMap<TaskId, TaskProjection>) {
        self.trained_tasks = tasks;
    }

    /// The feedback-informed posterior of a training task, if this model was
    /// fitted on it.
    pub fn trained_projection(&self, task: TaskId) -> Option<&TaskProjection> {
        self.trained_tasks.get(&task)
    }

    /// Ids of the training tasks whose fitted posteriors were retained.
    pub fn trained_task_ids(&self) -> impl Iterator<Item = TaskId> + '_ {
        self.trained_tasks.keys().copied()
    }

    /// The training configuration baked into this model.
    pub fn config(&self) -> &TdpmConfig {
        &self.config
    }

    /// Number of latent categories `K`.
    pub fn num_categories(&self) -> usize {
        self.config.num_categories
    }

    /// The learned global parameters.
    pub fn params(&self) -> &ModelParams {
        &self.params
    }

    /// Ids of all workers known to the model.
    pub fn worker_ids(&self) -> &[WorkerId] {
        &self.worker_ids
    }

    /// The skill state for a worker.
    pub fn skill(&self, worker: WorkerId) -> Option<&WorkerSkill> {
        self.worker_index.get(&worker).map(|&i| &self.skills[i])
    }

    /// Registers a worker unseen at training time; starts at the prior.
    pub fn add_worker(&mut self, worker: WorkerId) {
        if self.worker_index.contains_key(&worker) {
            return;
        }
        self.worker_index.insert(worker, self.skills.len());
        self.worker_ids.push(worker);
        let mut skill = WorkerSkill::at_prior(self.num_categories());
        skill.mean = self.params.mu_w.clone();
        for k in 0..self.num_categories() {
            skill.variance[k] = 1.0 / self.ctx.sigma_w_inv[(k, k)];
        }
        self.matrix
            .upsert(worker, skill.mean.as_slice(), skill.variance.as_slice());
        self.skills.push(skill);
        crate::validate::run(&self.metrics.validations, "add_worker", || {
            let skill = &self.skills[self.skills.len() - 1];
            crowd_math::Validate::validate(skill).map_err(|e| format!("skill[{worker:?}]: {e}"))
        });
    }

    /// The dense serving snapshot of every worker's posterior.
    pub fn skill_matrix(&self) -> &SkillMatrix {
        &self.matrix
    }

    /// Threads to use for a selection walk over `n` candidates: the
    /// configured pool for big walks, the calling thread otherwise.
    fn serving_threads(&self, n: usize) -> usize {
        if n >= PARALLEL_MIN_CANDIDATES {
            self.config.num_threads.max(1)
        } else {
            1
        }
    }

    // ---- Algorithm 3: incremental crowd-selection ---------------------------

    /// Projects a bag of words onto the latent space (Alg. 3 lines 1–5;
    /// Eqs. 22–23). The bag must be built against the training vocabulary —
    /// unseen terms were already dropped by the frozen vocabulary.
    pub fn project_bow(&self, bow: &BagOfWords) -> TaskProjection {
        let words: Vec<(usize, u32)> = bow.iter().map(|(t, c)| (t.index(), c)).collect();
        self.project_words(&words)
    }

    /// Projects pre-indexed `(term, count)` pairs onto the latent space.
    ///
    /// Terms outside the model vocabulary are ignored.
    pub fn project_words(&self, words: &[(usize, u32)]) -> TaskProjection {
        let started = std::time::Instant::now();
        let k = self.num_categories();
        let vocab = self.params.vocab_size();
        let filtered: Vec<(usize, u32)> =
            words.iter().copied().filter(|&(v, _)| v < vocab).collect();
        let num_tokens: f64 = filtered.iter().map(|&(_, c)| c as f64).sum();

        let mut lambda = self.ctx.mu_c.clone();
        let mut nu2 = Vector::from_fn(k, |kk| 1.0 / self.ctx.sigma_c_inv[(kk, kk)]);
        let mut phi = vec![1.0 / k as f64; filtered.len() * k];
        let mut epsilon = (0..k)
            .map(|kk| (lambda[kk] + nu2[kk] / 2.0).exp())
            .sum::<f64>()
            .max(1e-300);

        if !filtered.is_empty() {
            let empty = TaskFeedbackStats::empty(k);
            let update = TaskUpdate {
                words: &filtered,
                num_tokens,
                feedback: &empty,
            };
            let mut post = TaskPosterior {
                lambda: &mut lambda,
                nu2: &mut nu2,
                phi: &mut phi[..],
                epsilon: &mut epsilon,
            };
            // Projection failures only happen on degenerate numerics; fall
            // back to the prior mean rather than failing the selection path.
            let _ = update_task(&update, &mut post, &self.ctx, &self.config);
        }

        self.metrics.projections.inc();
        self.metrics
            .projection_seconds
            .observe_duration(started.elapsed());
        TaskProjection {
            lambda,
            nu2,
            num_tokens,
        }
    }

    /// Predicted performance `w^i (c^j)ᵀ` of a worker on a projected task.
    pub fn score(&self, worker: WorkerId, projection: &TaskProjection) -> Option<f64> {
        self.skill(worker)
            .map(|s| crowd_math::kernels::dot(s.mean.as_slice(), projection.lambda.as_slice()))
    }

    /// Top-k crowd-selection over `candidates` (Eq. 1; Alg. 3 line 7).
    ///
    /// Candidates unknown to the model are skipped. Served from the dense
    /// [`SkillMatrix`]; large pools are chunk-parallelized over the
    /// configured thread count. Bit-identical to
    /// [`TdpmModel::select_top_k_serial`].
    pub fn select_top_k(
        &self,
        projection: &TaskProjection,
        candidates: impl IntoIterator<Item = WorkerId>,
        k: usize,
    ) -> Vec<RankedWorker> {
        let resolved = self.matrix.resolve(candidates);
        let threads = self.serving_threads(resolved.len());
        self.matrix
            .select_mean(projection.lambda.as_slice(), &resolved, k, threads)
    }

    /// [`TdpmModel::select_top_k`] with an explicit thread count (clamped to
    /// the candidate count; `1` forces the single-threaded dense walk).
    pub fn select_top_k_with_threads(
        &self,
        projection: &TaskProjection,
        candidates: impl IntoIterator<Item = WorkerId>,
        k: usize,
        threads: usize,
    ) -> Vec<RankedWorker> {
        let resolved = self.matrix.resolve(candidates);
        self.matrix
            .select_mean(projection.lambda.as_slice(), &resolved, k, threads)
    }

    /// [`TdpmModel::select_top_k`] under a [`crowd_math::WorkGuard`]: the
    /// guard is polled at every scoring-chunk boundary (see
    /// [`crate::SkillMatrix::select_mean_guarded`]) so a query-layer
    /// deadline, cancellation or row budget can stop the scan cleanly. A
    /// never-firing guard returns a `complete` ranking bit-identical to
    /// [`TdpmModel::select_top_k`] on the same inputs.
    pub fn select_top_k_guarded<G: crowd_math::WorkGuard + Clone + Send + 'static>(
        &self,
        projection: &TaskProjection,
        candidates: impl IntoIterator<Item = WorkerId>,
        k: usize,
        guard: &G,
    ) -> crate::skillmatrix::PartialRanking {
        let resolved = self.matrix.resolve(candidates);
        let threads = self.serving_threads(resolved.len());
        self.matrix
            .select_mean_guarded(projection.lambda.as_slice(), &resolved, k, threads, guard)
    }

    /// [`TdpmModel::select_top_k_batch`] under a [`crowd_math::WorkGuard`]:
    /// the batched kernel polls the guard per cache block (see
    /// [`crate::SkillMatrix::select_mean_batch_guarded`]). Never-firing
    /// guards return `complete` rankings bit-identical to
    /// [`TdpmModel::select_top_k_batch`].
    pub fn select_top_k_batch_guarded<G: crowd_math::WorkGuard + Clone + Send + 'static>(
        &self,
        projections: &[TaskProjection],
        candidates: &[WorkerId],
        k: usize,
        guard: &G,
    ) -> Vec<crate::skillmatrix::PartialRanking> {
        let resolved = self.matrix.resolve(candidates.iter().copied());
        let lambdas: Vec<&[f64]> = projections.iter().map(|p| p.lambda.as_slice()).collect();
        let threads = self.serving_threads(resolved.len());
        self.matrix
            .select_mean_batch_guarded(&lambdas, &resolved, k, threads, guard)
    }

    /// [`TdpmModel::select_top_k`] through the f32 serving mirror — the
    /// opt-in reduced-precision path (`EXPLAIN` shows `precision=f32`).
    /// Deterministic but not bit-identical to f64; accuracy contract in
    /// DESIGN.md §10c, pinned by the `f32_serving_oracle` suite.
    pub fn select_top_k_f32(
        &self,
        projection: &TaskProjection,
        candidates: impl IntoIterator<Item = WorkerId>,
        k: usize,
    ) -> Vec<RankedWorker> {
        let resolved = self.matrix.resolve(candidates);
        let threads = self.serving_threads(resolved.len());
        self.matrix
            .select_mean_f32(projection.lambda.as_slice(), &resolved, k, threads)
    }

    /// [`TdpmModel::select_top_k_f32`] with an explicit thread count — the
    /// f32 twin of [`TdpmModel::select_top_k_with_threads`], used by the
    /// thread-scaling bench and oracle suites.
    pub fn select_top_k_f32_with_threads(
        &self,
        projection: &TaskProjection,
        candidates: impl IntoIterator<Item = WorkerId>,
        k: usize,
        threads: usize,
    ) -> Vec<RankedWorker> {
        let resolved = self.matrix.resolve(candidates);
        self.matrix
            .select_mean_f32(projection.lambda.as_slice(), &resolved, k, threads)
    }

    /// [`TdpmModel::select_top_k_f32`] under a [`crowd_math::WorkGuard`] —
    /// same checkpoint cadence and partial-prefix semantics as
    /// [`TdpmModel::select_top_k_guarded`].
    pub fn select_top_k_f32_guarded<G: crowd_math::WorkGuard + Clone + Send + 'static>(
        &self,
        projection: &TaskProjection,
        candidates: impl IntoIterator<Item = WorkerId>,
        k: usize,
        guard: &G,
    ) -> crate::skillmatrix::PartialRanking {
        let resolved = self.matrix.resolve(candidates);
        let threads = self.serving_threads(resolved.len());
        self.matrix.select_mean_f32_guarded(
            projection.lambda.as_slice(),
            &resolved,
            k,
            threads,
            guard,
        )
    }

    /// Batched form of [`TdpmModel::select_top_k_f32`].
    pub fn select_top_k_f32_batch(
        &self,
        projections: &[TaskProjection],
        candidates: &[WorkerId],
        k: usize,
    ) -> Vec<Vec<RankedWorker>> {
        let resolved = self.matrix.resolve(candidates.iter().copied());
        let lambdas: Vec<&[f64]> = projections.iter().map(|p| p.lambda.as_slice()).collect();
        let threads = self.serving_threads(resolved.len());
        self.matrix
            .select_mean_f32_batch(&lambdas, &resolved, k, threads)
    }

    /// [`TdpmModel::select_top_k_f32_batch`] under a
    /// [`crowd_math::WorkGuard`], block-boundary semantics as the f64 batch.
    pub fn select_top_k_f32_batch_guarded<G: crowd_math::WorkGuard + Clone + Send + 'static>(
        &self,
        projections: &[TaskProjection],
        candidates: &[WorkerId],
        k: usize,
        guard: &G,
    ) -> Vec<crate::skillmatrix::PartialRanking> {
        let resolved = self.matrix.resolve(candidates.iter().copied());
        let lambdas: Vec<&[f64]> = projections.iter().map(|p| p.lambda.as_slice()).collect();
        let threads = self.serving_threads(resolved.len());
        self.matrix
            .select_mean_f32_batch_guarded(&lambdas, &resolved, k, threads, guard)
    }

    /// Reference top-k selection through the per-worker skill records (one
    /// hash lookup + `Vector::dot` per candidate) — the pre-dense serial
    /// path, kept as the bit-identity oracle for the property tests and the
    /// benchmark baseline.
    pub fn select_top_k_serial(
        &self,
        projection: &TaskProjection,
        candidates: impl IntoIterator<Item = WorkerId>,
        k: usize,
    ) -> Vec<RankedWorker> {
        let scored = candidates
            .into_iter()
            .filter_map(|w| self.score(w, projection).map(|s| (w, s)));
        top_k(scored, k)
    }

    /// Batched top-k selection: one ranking per projection, all over the
    /// same candidate pool. Resolves the pool against the [`SkillMatrix`]
    /// once and scores through the cache-blocked batch kernel, so the per-
    /// query cost is a contiguous matrix walk instead of a hash walk plus
    /// scattered dots. Each returned ranking is bit-identical to
    /// [`TdpmModel::select_top_k`] on the same projection.
    pub fn select_top_k_batch(
        &self,
        projections: &[TaskProjection],
        candidates: &[WorkerId],
        k: usize,
    ) -> Vec<Vec<RankedWorker>> {
        let resolved = self.matrix.resolve(candidates.iter().copied());
        let lambdas: Vec<&[f64]> = projections.iter().map(|p| p.lambda.as_slice()).collect();
        let threads = self.serving_threads(resolved.len());
        self.matrix
            .select_mean_batch(&lambdas, &resolved, k, threads)
    }

    /// Answers a batch of independent selection queries (possibly with
    /// per-query candidate pools), the engine behind the
    /// [`crowd_select::CrowdSelector::select_batch`] override.
    ///
    /// Runs of consecutive queries sharing the *same* candidate slice — the
    /// common shape for pipeline dispatch and query-engine sweeps — resolve
    /// their pool once and go through the blocked batch kernel; singleton
    /// queries take the per-query dense path. Queries for trained tasks use
    /// the feedback-informed posterior, exactly like
    /// [`crowd_select::CrowdSelector::rank_trained`].
    pub fn select_batch_queries(
        &self,
        queries: &[BatchQuery<'_>],
        k: usize,
    ) -> Vec<Vec<RankedWorker>> {
        let mut out: Vec<Vec<RankedWorker>> = Vec::with_capacity(queries.len());
        for group in crowd_select::shared_candidate_runs(queries) {
            let projections: Vec<TaskProjection> = group
                .iter()
                .map(|q| match q.task.and_then(|t| self.trained_projection(t)) {
                    Some(p) => p.clone(),
                    None => self.project_bow(q.bow),
                })
                .collect();
            if group.len() == 1 {
                out.push(self.select_top_k(
                    &projections[0],
                    group[0].candidates.iter().copied(),
                    k,
                ));
            } else {
                out.extend(self.select_top_k_batch(&projections, group[0].candidates, k));
            }
        }
        out
    }

    /// Optimistic (UCB-style) top-k selection: candidates are scored by
    /// `E[w·c] + β·Std_w[w·c]`, so workers the model is *uncertain* about
    /// get a bonus proportional to their posterior spread.
    ///
    /// An extension beyond the paper: Eq. 1 exploits the posterior mean
    /// only, which never gathers evidence about unproven workers. The bonus
    /// uses the *worker-side* uncertainty conditioned on the projected
    /// category (`Var_w[w·c | c = λ_c] = Σ_k ν²_w,k λ²_c,k`) — the task's
    /// own uncertainty is the same gamble for every candidate and would
    /// otherwise drown the worker signal under large skill magnitudes.
    pub fn select_top_k_optimistic(
        &self,
        projection: &TaskProjection,
        candidates: impl IntoIterator<Item = WorkerId>,
        k: usize,
        exploration: f64,
    ) -> Vec<RankedWorker> {
        let resolved = self.matrix.resolve(candidates);
        let threads = self.serving_threads(resolved.len());
        self.matrix.select_optimistic(
            projection.lambda.as_slice(),
            &resolved,
            k,
            exploration,
            threads,
        )
    }

    /// Reference optimistic selection through the per-worker skill records —
    /// the bit-identity oracle for [`TdpmModel::select_top_k_optimistic`].
    pub fn select_top_k_optimistic_serial(
        &self,
        projection: &TaskProjection,
        candidates: impl IntoIterator<Item = WorkerId>,
        k: usize,
        exploration: f64,
    ) -> Vec<RankedWorker> {
        let scored = candidates.into_iter().filter_map(|w| {
            self.skill(w).map(|s| {
                let mean =
                    crowd_math::kernels::dot(s.mean.as_slice(), projection.lambda.as_slice());
                let mut var = 0.0;
                for kk in 0..s.mean.len() {
                    var += s.variance[kk] * projection.lambda[kk] * projection.lambda[kk];
                }
                (w, mean + exploration * var.max(0.0).sqrt())
            })
        });
        top_k(scored, k)
    }

    /// Top-k selection with the category *sampled* from its posterior
    /// (Algorithm 3 verbatim, line 6). Deterministic selection via
    /// [`TdpmModel::select_top_k`] uses the posterior mean instead.
    pub fn select_top_k_sampled(
        &self,
        projection: &TaskProjection,
        candidates: impl IntoIterator<Item = WorkerId>,
        k: usize,
        rng: &mut impl Rng,
    ) -> Vec<RankedWorker> {
        let c = projection.sample(rng);
        let resolved = self.matrix.resolve(candidates);
        let threads = self.serving_threads(resolved.len());
        self.matrix.select_mean(c.as_slice(), &resolved, k, threads)
    }

    /// Scores every candidate (full ranking), descending.
    pub fn rank_all(
        &self,
        projection: &TaskProjection,
        candidates: impl IntoIterator<Item = WorkerId>,
    ) -> Vec<RankedWorker> {
        let resolved = self.matrix.resolve(candidates);
        let n = resolved.len();
        let threads = self.serving_threads(n);
        self.matrix
            .select_mean(projection.lambda.as_slice(), &resolved, n, threads)
    }

    // ---- Incremental skill update -------------------------------------------

    /// Folds a new feedback observation `(worker, task, score)` into the
    /// worker's posterior without refitting the model ("After solving the
    /// task, the skills of workers involved can be updated", Section 4.2).
    ///
    /// Cost: one `K×K` Cholesky solve.
    pub fn record_feedback(
        &mut self,
        worker: WorkerId,
        projection: &TaskProjection,
        score: f64,
    ) -> Result<()> {
        let started = std::time::Instant::now();
        let &idx = self
            .worker_index
            .get(&worker)
            .ok_or(CoreError::UnknownWorker(worker))?;
        if !score.is_finite() {
            return Err(CoreError::Numerical(format!(
                "non-finite feedback score {score}"
            )));
        }
        let k = self.num_categories();
        let skill = &mut self.skills[idx];
        let rho = self.config.feedback_forgetting;
        if rho < 1.0 {
            // Feedback-weighted update: geometrically discount the old
            // evidence so the posterior tracks non-stationary skills. The
            // decay rescales the whole data precision, which no sequence of
            // rank-1 updates can express — drop the cached factor and
            // refactorize below.
            skill.sum_cc.scale(rho);
            skill.sum_sc.scale(rho);
            skill.sum_diag.scale(rho);
            skill.precision_chol = None;
        }
        skill.sum_cc.add_outer(1.0, &projection.lambda)?;
        skill.sum_cc.add_diag(&projection.nu2)?;
        skill.sum_sc.axpy(score, &projection.lambda)?;
        for kk in 0..k {
            skill.sum_diag[kk] +=
                projection.lambda[kk] * projection.lambda[kk] + projection.nu2[kk];
        }
        skill.num_jobs += 1;

        // Re-solve Eq. 10 / Eq. 11 for this worker. The cached precision
        // factor absorbs the new observation with two O(K²) updates:
        // a rank-1 for τ⁻¹λ_c and a diagonal one for τ⁻²ν_c².
        let inv_tau2 = 1.0 / self.ctx.tau2;
        let inv_tau = inv_tau2.sqrt();
        let chol = match skill.precision_chol.take() {
            Some(mut chol) => {
                let mut scaled = projection.lambda.clone();
                scaled.scale(inv_tau);
                chol.rank_one_update(&scaled)?;
                let scaled_diag = projection.nu2.map(|v| v * inv_tau2);
                chol.diag_update(&scaled_diag)?;
                chol
            }
            None => {
                let mut precision = self.ctx.sigma_w_inv.clone();
                precision.axpy(inv_tau2, &skill.sum_cc)?;
                Cholesky::factor_with_jitter(&precision, 1e-10, 40)?
            }
        };
        let mut rhs = self.ctx.prior_rhs_w.clone();
        rhs.axpy(inv_tau2, &skill.sum_sc)?;
        skill.mean = chol.solve(&rhs)?;
        skill.precision_chol = Some(chol);
        for kk in 0..k {
            skill.variance[kk] =
                1.0 / (inv_tau2 * skill.sum_diag[kk] + self.ctx.sigma_w_inv[(kk, kk)]);
        }
        self.matrix
            .upsert(worker, skill.mean.as_slice(), skill.variance.as_slice());
        crate::validate::run(&self.metrics.validations, "record_feedback", || {
            let skill = &self.skills[idx];
            crowd_math::Validate::validate(skill).map_err(|e| format!("skill[{worker:?}]: {e}"))?;
            let row = self
                .matrix
                .row_of(worker)
                .ok_or_else(|| format!("worker {worker:?} missing from the serving snapshot"))?;
            if self.matrix.mean_row(row) != skill.mean.as_slice()
                || self.matrix.var_row(row) != skill.variance.as_slice()
            {
                return Err(format!(
                    "serving snapshot out of lockstep with skill posterior for {worker:?}"
                ));
            }
            Ok(())
        });
        self.metrics.incremental_updates.inc();
        self.metrics
            .incremental_update_seconds
            .observe_duration(started.elapsed());
        Ok(())
    }

    /// Builds the per-worker skill states from final variational quantities
    /// (called by the trainer).
    pub(crate) fn skill_from_training(
        mean: Vector,
        variance: Vector,
        sum_cc: Matrix,
        sum_sc: Vector,
        sum_diag: Vector,
        num_jobs: usize,
    ) -> WorkerSkill {
        WorkerSkill {
            mean,
            variance,
            sum_cc,
            sum_sc,
            sum_diag,
            num_jobs,
            precision_chol: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A hand-assembled 2-category model: worker 0 is the "CS" expert,
    /// worker 1 the "Math" expert; term 0 is a CS word, term 1 a Math word.
    fn hand_model() -> TdpmModel {
        let k = 2;
        let mut params = ModelParams::neutral(k, 2);
        params.beta[(0, 0)] = 0.9;
        params.beta[(0, 1)] = 0.1;
        params.beta[(1, 0)] = 0.1;
        params.beta[(1, 1)] = 0.9;
        params.tau = 0.5;
        let config = TdpmConfig {
            num_categories: k,
            ..TdpmConfig::default()
        };
        let mut cs = WorkerSkill::at_prior(k);
        cs.mean = Vector::from_vec(vec![3.0, 0.2]);
        let mut math = WorkerSkill::at_prior(k);
        math.mean = Vector::from_vec(vec![0.2, 3.0]);
        TdpmModel::assemble(
            params,
            config,
            vec![cs, math],
            vec![WorkerId(0), WorkerId(1)],
        )
        .unwrap()
    }

    #[test]
    fn projection_leans_toward_matching_topic() {
        let model = hand_model();
        let cs_task = model.project_words(&[(0, 5)]);
        let math_task = model.project_words(&[(1, 5)]);
        assert!(
            cs_task.lambda[0] > cs_task.lambda[1],
            "CS words must raise the CS coordinate: {:?}",
            cs_task.lambda.as_slice()
        );
        assert!(math_task.lambda[1] > math_task.lambda[0]);
    }

    #[test]
    fn selection_picks_matching_expert() {
        let model = hand_model();
        let cs_task = model.project_words(&[(0, 5)]);
        let top = model.select_top_k(&cs_task, vec![WorkerId(0), WorkerId(1)], 1);
        assert_eq!(top[0].worker, WorkerId(0), "CS task → CS expert");
        let math_task = model.project_words(&[(1, 5)]);
        let top = model.select_top_k(&math_task, vec![WorkerId(0), WorkerId(1)], 1);
        assert_eq!(top[0].worker, WorkerId(1));
    }

    #[test]
    fn unknown_candidates_are_skipped() {
        let model = hand_model();
        let p = model.project_words(&[(0, 1)]);
        let top = model.select_top_k(&p, vec![WorkerId(7), WorkerId(0)], 5);
        assert_eq!(top.len(), 1);
        assert_eq!(top[0].worker, WorkerId(0));
        assert_eq!(model.score(WorkerId(7), &p), None);
    }

    #[test]
    fn empty_projection_falls_back_to_prior() {
        let model = hand_model();
        let p = model.project_words(&[]);
        assert_eq!(p.num_tokens, 0.0);
        for k in 0..2 {
            assert!((p.lambda[k] - model.params().mu_c[k]).abs() < 1e-9);
        }
    }

    #[test]
    fn out_of_vocab_terms_ignored() {
        let model = hand_model();
        let p = model.project_words(&[(99, 4)]);
        assert_eq!(p.num_tokens, 0.0);
    }

    #[test]
    fn feedback_moves_skill_toward_evidence() {
        let mut model = hand_model();
        model.add_worker(WorkerId(2));
        let before = model.skill(WorkerId(2)).unwrap().mean.clone();
        assert!(before.norm() < 1e-9, "new worker starts at prior mean 0");

        // Strong CS task, high score → CS skill should rise.
        let proj = model.project_words(&[(0, 8)]);
        model.record_feedback(WorkerId(2), &proj, 5.0).unwrap();
        let after = model.skill(WorkerId(2)).unwrap();
        assert!(
            after.mean[0] > 0.5,
            "CS coordinate rose: {:?}",
            after.mean.as_slice()
        );
        assert!(after.mean[0] > after.mean[1]);
        assert_eq!(after.num_jobs(), 1);
        // Posterior variance shrank along the informative direction.
        assert!(after.variance[0] < 1.0);
    }

    #[test]
    fn feedback_for_unknown_worker_errors() {
        let mut model = hand_model();
        let proj = model.project_words(&[(0, 1)]);
        assert!(matches!(
            model.record_feedback(WorkerId(42), &proj, 1.0),
            Err(CoreError::UnknownWorker(_))
        ));
        assert!(model.record_feedback(WorkerId(0), &proj, f64::NAN).is_err());
    }

    #[test]
    fn add_worker_is_idempotent() {
        let mut model = hand_model();
        model.add_worker(WorkerId(5));
        model.add_worker(WorkerId(5));
        assert_eq!(model.worker_ids().len(), 3);
    }

    #[test]
    fn sampled_selection_stays_among_candidates() {
        let model = hand_model();
        let p = model.project_words(&[(0, 3)]);
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        for _ in 0..5 {
            let top = model.select_top_k_sampled(&p, vec![WorkerId(0), WorkerId(1)], 1, &mut rng);
            assert_eq!(top.len(), 1);
            assert!(top[0].worker == WorkerId(0) || top[0].worker == WorkerId(1));
        }
    }

    #[test]
    fn optimistic_selection_rewards_uncertainty() {
        let mut model = hand_model();
        // A brand-new worker: prior mean 0, prior variance 1 — maximally
        // uncertain. Greedy selection never picks them; optimistic selection
        // with a large enough bonus does.
        model.add_worker(WorkerId(9));
        let p = model.project_words(&[(0, 5)]);
        let candidates = vec![WorkerId(0), WorkerId(9)];

        // Give the expert some evidence so their posterior tightens (the
        // hand-assembled model starts everyone at prior variance 1).
        for _ in 0..6 {
            let proj = model.project_words(&[(0, 5)]);
            model.record_feedback(WorkerId(0), &proj, 4.0).unwrap();
        }

        let greedy = model.select_top_k(&p, candidates.clone(), 1);
        assert_eq!(greedy[0].worker, WorkerId(0), "greedy exploits the expert");

        let explore = model.select_top_k_optimistic(&p, candidates.clone(), 1, 50.0);
        assert_eq!(
            explore[0].worker,
            WorkerId(9),
            "big exploration bonus favours the unknown: {explore:?}"
        );

        // Zero exploration reduces exactly to the greedy ranking.
        let zero = model.select_top_k_optimistic(&p, candidates, 2, 0.0);
        assert_eq!(zero[0].worker, greedy[0].worker);
        assert!((zero[0].score - greedy[0].score).abs() < 1e-12);
    }

    #[test]
    fn optimistic_bonus_shrinks_with_evidence() {
        let mut model = hand_model();
        model.add_worker(WorkerId(9));
        let p = model.project_words(&[(0, 5)]);
        let bonus = |m: &TdpmModel| {
            let opt = m.select_top_k_optimistic(&p, vec![WorkerId(9)], 1, 1.0)[0].score;
            let mean = m.score(WorkerId(9), &p).unwrap();
            opt - mean
        };
        let before = bonus(&model);
        for _ in 0..5 {
            let proj = model.project_words(&[(0, 5)]);
            model.record_feedback(WorkerId(9), &proj, 1.0).unwrap();
        }
        let after = bonus(&model);
        assert!(
            after < before,
            "evidence shrinks the exploration bonus: {before:.3} → {after:.3}"
        );
    }

    #[test]
    fn rank_all_orders_descending() {
        let model = hand_model();
        let p = model.project_words(&[(0, 5)]);
        let ranked = model.rank_all(&p, vec![WorkerId(0), WorkerId(1)]);
        assert_eq!(ranked.len(), 2);
        assert!(ranked[0].score >= ranked[1].score);
    }
}
