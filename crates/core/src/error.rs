//! Errors for model fitting and selection.

use std::fmt;

/// Errors raised while building or applying a TDPM model.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// Training data had no resolved tasks.
    EmptyTrainingSet,
    /// Configuration is invalid (e.g. zero latent categories).
    InvalidConfig(&'static str),
    /// A numerical routine failed irrecoverably.
    Numerical(String),
    /// Referenced a worker the model has never seen.
    UnknownWorker(crowd_store::WorkerId),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::EmptyTrainingSet => write!(f, "no resolved tasks to train on"),
            CoreError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            CoreError::Numerical(msg) => write!(f, "numerical failure: {msg}"),
            CoreError::UnknownWorker(w) => write!(f, "worker {w} is unknown to the model"),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<crowd_math::MathError> for CoreError {
    fn from(e: crowd_math::MathError) -> Self {
        CoreError::Numerical(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(CoreError::EmptyTrainingSet.to_string().contains("resolved"));
        assert!(CoreError::InvalidConfig("k = 0")
            .to_string()
            .contains("k = 0"));
    }

    #[test]
    fn math_errors_convert() {
        let m = crowd_math::MathError::NotPositiveDefinite { pivot: 3 };
        let c: CoreError = m.into();
        assert!(matches!(c, CoreError::Numerical(_)));
    }
}
