//! TDPM behind the backend-agnostic selection layer.
//!
//! Three pieces plug the model into `crowd-select`:
//!
//! - [`CrowdSelector`] is implemented directly on [`TdpmModel`], so a trained
//!   model can serve selection queries as a `dyn CrowdSelector` — including
//!   the incremental-maintenance methods (Algorithm 3).
//! - [`TdpmSelector`] is a thin owning adapter kept for callers that want
//!   explicit access to the wrapped model (the evaluation harness).
//! - [`TdpmBackend`] is the [`SelectorBackend`] factory registered under the
//!   name `"tdpm"`. It is *not* lazily fittable: variational EM is the
//!   expensive path the paper's `TRAIN MODEL` statement exists for.

use crate::config::TdpmConfig;
use crate::dataset::TrainingSet;
use crate::model::TdpmModel;
use crate::trainer::TdpmTrainer;
use crowd_select::{
    BatchQuery, CrowdSelector, FitDiagnostics, FitOptions, FitOutcome, RankedWorker, SelectError,
    SelectorBackend,
};
use crowd_store::{CrowdDb, ShardedDb, TaskId, WorkerId};
use crowd_text::BagOfWords;

impl CrowdSelector for TdpmModel {
    fn name(&self) -> &'static str {
        "TDPM"
    }

    fn rank(&self, task: &BagOfWords, candidates: &[WorkerId]) -> Vec<RankedWorker> {
        let projection = self.project_bow(task);
        self.rank_all(&projection, candidates.iter().copied())
    }

    fn rank_trained(
        &self,
        task: TaskId,
        bow: &BagOfWords,
        candidates: &[WorkerId],
    ) -> Vec<RankedWorker> {
        match self.trained_projection(task) {
            Some(projection) => self.rank_all(projection, candidates.iter().copied()),
            None => CrowdSelector::rank(self, bow, candidates),
        }
    }

    fn select_batch(&self, queries: &[BatchQuery<'_>], k: usize) -> Vec<Vec<RankedWorker>> {
        self.select_batch_queries(queries, k)
    }

    fn add_worker(&mut self, worker: WorkerId) {
        TdpmModel::add_worker(self, worker);
    }

    fn observe_feedback(
        &mut self,
        worker: WorkerId,
        task: TaskId,
        bow: &BagOfWords,
        score: f64,
    ) -> Result<(), SelectError> {
        // Prefer the feedback-informed posterior fitted during training;
        // tasks that arrived after fitting get a fresh word-only projection
        // (Algorithm 3 — deterministic, so recomputing is exact).
        let projection = match self.trained_projection(task) {
            Some(p) => p.clone(),
            None => self.project_bow(bow),
        };
        TdpmModel::add_worker(self, worker);
        self.record_feedback(worker, &projection, score)
            .map_err(|e| SelectError::Update {
                backend: "tdpm".into(),
                message: e.to_string(),
            })
    }

    fn worker_profile(&self, worker: WorkerId) -> Option<Vec<f64>> {
        self.skill(worker).map(|s| s.mean.as_slice().to_vec())
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

/// TDPM behind the uniform selector interface.
///
/// Selection uses the deterministic posterior-mean category (the paper's
/// Algorithm 3 samples it; the mean is the expectation of that procedure and
/// keeps the evaluation reproducible).
#[derive(Debug, Clone)]
pub struct TdpmSelector {
    model: TdpmModel,
}

impl TdpmSelector {
    /// Wraps an already trained model.
    pub fn new(model: TdpmModel) -> Self {
        TdpmSelector { model }
    }

    /// Trains a model on `db` with `num_topics` latent categories.
    pub fn fit(db: &CrowdDb, num_topics: usize, seed: u64) -> crate::Result<Self> {
        let cfg = TdpmConfig {
            num_categories: num_topics,
            seed,
            ..TdpmConfig::default()
        };
        let model = TdpmTrainer::new(cfg).fit(db)?;
        Ok(TdpmSelector { model })
    }

    /// The underlying model.
    pub fn model(&self) -> &TdpmModel {
        &self.model
    }

    /// Mutable access (for incremental updates in the platform pipeline).
    pub fn model_mut(&mut self) -> &mut TdpmModel {
        &mut self.model
    }
}

impl CrowdSelector for TdpmSelector {
    fn name(&self) -> &'static str {
        "TDPM"
    }

    fn rank(&self, task: &BagOfWords, candidates: &[WorkerId]) -> Vec<RankedWorker> {
        CrowdSelector::rank(&self.model, task, candidates)
    }

    fn rank_trained(
        &self,
        task: TaskId,
        bow: &BagOfWords,
        candidates: &[WorkerId],
    ) -> Vec<RankedWorker> {
        self.model.rank_trained(task, bow, candidates)
    }

    fn select_batch(&self, queries: &[BatchQuery<'_>], k: usize) -> Vec<Vec<RankedWorker>> {
        self.model.select_batch_queries(queries, k)
    }

    fn add_worker(&mut self, worker: WorkerId) {
        TdpmModel::add_worker(&mut self.model, worker);
    }

    fn observe_feedback(
        &mut self,
        worker: WorkerId,
        task: TaskId,
        bow: &BagOfWords,
        score: f64,
    ) -> Result<(), SelectError> {
        self.model.observe_feedback(worker, task, bow, score)
    }

    fn worker_profile(&self, worker: WorkerId) -> Option<Vec<f64>> {
        self.model.worker_profile(worker)
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

/// The `"tdpm"` entry for a [`crowd_select::SelectorRegistry`].
///
/// Holds a base [`TdpmConfig`]; [`FitOptions`] may override the category
/// count and the seed per fit.
#[derive(Debug, Clone, Default)]
pub struct TdpmBackend {
    base: TdpmConfig,
    obs: crowd_obs::Obs,
}

impl TdpmBackend {
    /// A backend fitting with the default configuration.
    pub fn new() -> Self {
        TdpmBackend::default()
    }

    /// A backend whose fits start from `base` (threads, iteration budget,
    /// priors, …).
    pub fn with_config(base: TdpmConfig) -> Self {
        TdpmBackend {
            base,
            obs: crowd_obs::Obs::noop(),
        }
    }

    /// Routes trainer metrics (epoch timings, ELBO) and the fitted model's
    /// projection/update metrics to `obs` for every fit this backend runs.
    pub fn with_obs(mut self, obs: crowd_obs::Obs) -> Self {
        self.obs = obs;
        self
    }

    /// The base configuration.
    pub fn config(&self) -> &TdpmConfig {
        &self.base
    }

    /// The base config with per-fit overrides applied.
    fn effective_config(&self, opts: &FitOptions) -> TdpmConfig {
        let mut cfg = self.base.clone();
        if let Some(k) = opts.categories {
            cfg.num_categories = k;
        }
        if let Some(seed) = opts.seed {
            cfg.seed = seed;
        }
        cfg
    }

    fn outcome((model, report): (TdpmModel, crate::FitReport)) -> Result<FitOutcome, SelectError> {
        Ok(FitOutcome::new(
            Box::new(model),
            FitDiagnostics {
                iterations: report.iterations,
                objective_trace: report.elbo_trace,
                converged: report.converged,
            },
        ))
    }
}

impl SelectorBackend for TdpmBackend {
    fn name(&self) -> &'static str {
        "tdpm"
    }

    /// Variational EM is too expensive to run implicitly at query time.
    fn lazy_fit(&self) -> bool {
        false
    }

    fn fit(&self, db: &CrowdDb, opts: &FitOptions) -> Result<FitOutcome, SelectError> {
        let ts = TrainingSet::from_db(db);
        TdpmTrainer::new(self.effective_config(opts))
            .with_obs(self.obs.clone())
            .fit_training_set(&ts)
            .map_err(|e| SelectError::Fit {
                backend: "tdpm".into(),
                message: e.to_string(),
            })
            .and_then(Self::outcome)
    }

    /// Shard-parallel TDPM fit: the E-step/M-step plan mirrors the store's
    /// partitioning (see [`TdpmTrainer::fit_sharded`]), and the fitted model
    /// is bit-identical to an unsharded fit of the same data.
    fn fit_sharded(&self, db: &ShardedDb, opts: &FitOptions) -> Result<FitOutcome, SelectError> {
        TdpmTrainer::new(self.effective_config(opts))
            .with_obs(self.obs.clone())
            .fit_sharded(db)
            .map_err(|e| SelectError::Fit {
                backend: "tdpm".into(),
                message: e.to_string(),
            })
            .and_then(Self::outcome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowd_select::SelectorRegistry;
    use crowd_text::tokenize_filtered;

    fn specialist_db() -> (CrowdDb, WorkerId, WorkerId) {
        let mut db = CrowdDb::new();
        let dba = db.add_worker("dba");
        let stat = db.add_worker("stat");
        for i in 0..10 {
            let (text, good, bad) = if i % 2 == 0 {
                ("btree page split index buffer disk", dba, stat)
            } else {
                ("gaussian prior posterior likelihood variance", stat, dba)
            };
            let t = db.add_task(text);
            db.assign(good, t).unwrap();
            db.assign(bad, t).unwrap();
            db.record_feedback(good, t, 4.0).unwrap();
            db.record_feedback(bad, t, 0.5).unwrap();
        }
        (db, dba, stat)
    }

    #[test]
    fn end_to_end_selector_routes_correctly() {
        let (mut db, dba, stat) = specialist_db();
        let tdpm = TdpmSelector::fit(&db, 2, 7).unwrap();
        assert_eq!(CrowdSelector::name(&tdpm), "TDPM");

        let task = BagOfWords::from_tokens(&tokenize_filtered("btree page buffer"), db.vocab_mut());
        let ranked = CrowdSelector::rank(&tdpm, &task, &[dba, stat]);
        assert_eq!(ranked[0].worker, dba);

        let task = BagOfWords::from_tokens(
            &tokenize_filtered("posterior variance prior"),
            db.vocab_mut(),
        );
        let top = tdpm.select(&task, &[dba, stat], 1);
        assert_eq!(top[0].worker, stat);
    }

    #[test]
    fn unknown_candidates_dropped() {
        let mut db = CrowdDb::new();
        let w = db.add_worker("only");
        let t = db.add_task("single task words here");
        db.assign(w, t).unwrap();
        db.record_feedback(w, t, 1.0).unwrap();
        let tdpm = TdpmSelector::fit(&db, 2, 1).unwrap();
        let task = db.task(t).unwrap().bow.clone();
        let ranked = CrowdSelector::rank(&tdpm, &task, &[w, WorkerId(99)]);
        assert_eq!(ranked.len(), 1);
        assert_eq!(ranked[0].worker, w);
    }

    #[test]
    fn model_serves_as_trait_object() {
        let (db, dba, stat) = specialist_db();
        let model = TdpmTrainer::new(TdpmConfig {
            num_categories: 2,
            seed: 7,
            ..TdpmConfig::default()
        })
        .fit(&db)
        .unwrap();
        let boxed: Box<dyn CrowdSelector> = Box::new(model);
        let task = db.task(crowd_store::TaskId(0)).unwrap().bow.clone();
        let ranked = boxed.rank(&task, &[dba, stat]);
        assert_eq!(ranked[0].worker, dba);
        assert!(boxed.worker_profile(dba).is_some());
        assert!(boxed.as_any().is_some());
    }

    #[test]
    fn backend_fits_through_the_registry() {
        let (db, dba, stat) = specialist_db();
        let mut registry = SelectorRegistry::new();
        registry.register(Box::new(TdpmBackend::new()));
        assert!(!registry.get("tdpm").unwrap().lazy_fit());

        let fitted = registry.fit("TDPM", &db, &FitOptions::with(2, 7)).unwrap();
        assert_eq!(fitted.backend(), "tdpm");
        assert!(fitted.diagnostics().iterations >= 1);
        assert!(fitted.diagnostics().objective().is_some());
        let task = db.task(crowd_store::TaskId(0)).unwrap().bow.clone();
        let ranked = fitted.selector().rank(&task, &[dba, stat]);
        assert_eq!(ranked[0].worker, dba);
        // The concrete model is reachable for diagnostics.
        assert!(fitted.downcast_ref::<TdpmModel>().is_some());
    }

    #[test]
    fn sharded_registry_fit_is_bit_identical_to_unsharded() {
        // The same platform, once in a plain CrowdDb and once hash-cut over
        // 4 shards. Insertion order is identical, so global ids and the
        // vocabulary line up; the fits must then agree bitwise.
        let (db, dba, stat) = specialist_db();
        let mut sharded = ShardedDb::new(4);
        sharded.add_worker("dba").unwrap();
        sharded.add_worker("stat").unwrap();
        for i in 0..10 {
            let (text, good, bad) = if i % 2 == 0 {
                ("btree page split index buffer disk", dba, stat)
            } else {
                ("gaussian prior posterior likelihood variance", stat, dba)
            };
            let t = sharded.add_task(text).unwrap();
            sharded.assign(good, t).unwrap();
            sharded.assign(bad, t).unwrap();
            sharded.record_feedback(good, t, 4.0).unwrap();
            sharded.record_feedback(bad, t, 0.5).unwrap();
        }

        let mut registry = SelectorRegistry::new();
        registry.register(Box::new(TdpmBackend::new()));
        let opts = FitOptions::with(2, 7);
        let plain = registry.fit("tdpm", &db, &opts).unwrap();
        let cut = registry.fit_sharded("tdpm", &sharded, &opts).unwrap();
        assert_eq!(
            plain.diagnostics().objective_trace,
            cut.diagnostics().objective_trace,
            "ELBO traces must agree bitwise"
        );
        let (pm, cm) = (
            plain.downcast_ref::<TdpmModel>().unwrap(),
            cut.downcast_ref::<TdpmModel>().unwrap(),
        );
        let (ps, cs) = (pm.skill_matrix(), cm.skill_matrix());
        assert_eq!(ps.ids(), cs.ids());
        for row in 0..ps.ids().len() {
            assert_eq!(ps.mean_row(row), cs.mean_row(row), "row {row}");
        }
    }

    #[test]
    fn default_fit_sharded_declines() {
        struct Inert;
        impl SelectorBackend for Inert {
            fn name(&self) -> &'static str {
                "inert"
            }
            fn fit(&self, _: &CrowdDb, _: &FitOptions) -> Result<FitOutcome, SelectError> {
                unreachable!("not exercised")
            }
        }
        let err = Inert.fit_sharded(&ShardedDb::new(2), &FitOptions::default());
        assert!(
            matches!(err, Err(SelectError::Fit { ref message, .. }) if message.contains("sharded")),
            "{err:?}"
        );
    }

    #[test]
    fn backend_fit_on_empty_db_errors() {
        let db = CrowdDb::new();
        let err = TdpmBackend::new().fit(&db, &FitOptions::default());
        assert!(matches!(err, Err(SelectError::Fit { .. })));
    }

    #[test]
    fn observe_feedback_updates_the_posterior() {
        let (mut db, dba, stat) = specialist_db();
        let mut model = TdpmTrainer::new(TdpmConfig {
            num_categories: 2,
            seed: 7,
            ..TdpmConfig::default()
        })
        .fit(&db)
        .unwrap();
        let bow = BagOfWords::from_tokens(&tokenize_filtered("btree page buffer"), db.vocab_mut());
        let before = model.worker_profile(stat).unwrap();
        // A run of strong feedback on database tasks should move the
        // statistician's skill estimate.
        for _ in 0..4 {
            model
                .observe_feedback(stat, TaskId(999), &bow, 5.0)
                .unwrap();
        }
        let after = model.worker_profile(stat).unwrap();
        assert_ne!(before, after);
        let _ = dba;
    }
}
