//! Debug-build invariant validation at inference boundaries.
//!
//! Variational EM fails quietly: a NaN that slips into one worker posterior
//! propagates through every later E-step and surfaces — many iterations
//! later — as a subtly wrong ranking rather than a crash. The hooks in this
//! module pin the model's structural invariants (finiteness, positive
//! variances, row-stochastic responsibilities, serving-snapshot lockstep)
//! to the exact E-/M-step boundary where they first break.
//!
//! Checks are compiled into debug builds and into any build with the
//! `validate` feature; in a plain release build [`ENABLED`] is `false` and
//! every hook folds to nothing. All checks are read-only — they can never
//! perturb the numerics they inspect, so a validated fit is bit-identical
//! to an unvalidated one.

use crate::model::{TdpmModel, WorkerSkill};
use crate::params::ModelParams;
use crate::skillmatrix::SkillMatrix;
use crate::variational::VariationalState;
use crowd_math::validate::{check_min_entries, check_symmetric, Validate};

/// Tolerance for each `φ` responsibility block summing to 1.
const PHI_ROW_TOL: f64 = 1e-9;
/// Tolerance for prior covariance symmetry (they pass through
/// [`crowd_math::Matrix::symmetrize`], so exact in practice).
const SYMMETRY_TOL: f64 = 1e-9;

/// `true` when invariant validation is compiled into this build.
pub const ENABLED: bool = cfg!(any(debug_assertions, feature = "validate"));

/// Runs `check` when validation is compiled in, bumping `counter` per check.
///
/// # Panics
///
/// Panics with `what` and the violation description when the check fails —
/// an invariant violation is a bug in the inference code, not an error
/// value a caller could handle.
pub(crate) fn run(
    counter: &crowd_obs::Counter,
    what: &str,
    check: impl FnOnce() -> Result<(), String>,
) {
    if !ENABLED {
        return;
    }
    if let Err(msg) = check() {
        panic!("invariant violated at {what}: {msg}");
    }
    counter.inc();
}

impl Validate for VariationalState {
    /// Means finite; variances and Taylor parameters positive; every
    /// per-term responsibility block a probability distribution
    /// (entries ≥ 0, sum 1 ± 1e-9).
    fn validate(&self) -> Result<(), String> {
        let k = self.num_categories();
        for (name, vecs) in [("lambda_w", &self.lambda_w), ("lambda_c", &self.lambda_c)] {
            for (i, v) in vecs.iter().enumerate() {
                v.validate().map_err(|e| format!("{name}[{i}]: {e}"))?;
            }
        }
        for (name, vecs) in [("nu2_w", &self.nu2_w), ("nu2_c", &self.nu2_c)] {
            for (i, v) in vecs.iter().enumerate() {
                check_min_entries(v, f64::MIN_POSITIVE)
                    .map_err(|e| format!("{name}[{i}] must be positive: {e}"))?;
            }
        }
        for (j, &e) in self.epsilon.iter().enumerate() {
            if !(e.is_finite() && e > 0.0) {
                return Err(format!(
                    "epsilon[{j}] = {e} is not a positive finite number"
                ));
            }
        }
        if k == 0 {
            return Ok(());
        }
        for j in 0..self.phi.num_rows() {
            let row = self.phi.row(j);
            for (slot, block) in row.chunks_exact(k).enumerate() {
                if let Some(p) = block.iter().position(|&x| !(x.is_finite() && x >= 0.0)) {
                    return Err(format!(
                        "phi[task {j}, term slot {slot}, k {p}] = {} is not a \
                         non-negative finite number",
                        block[p]
                    ));
                }
                let sum: f64 = block.iter().sum();
                if (sum - 1.0).abs() > PHI_ROW_TOL {
                    return Err(format!(
                        "phi[task {j}, term slot {slot}] sums to {sum} (off by {:e})",
                        (sum - 1.0).abs()
                    ));
                }
            }
        }
        Ok(())
    }
}

impl Validate for ModelParams {
    /// Shapes agree; `τ > 0`; prior covariances finite and symmetric; `β`
    /// rows are probability distributions.
    fn validate(&self) -> Result<(), String> {
        let k = self.num_categories();
        if self.mu_c.len() != k
            || self.beta.rows() != k
            || self.sigma_w.rows() != k
            || self.sigma_w.cols() != k
            || self.sigma_c.rows() != k
            || self.sigma_c.cols() != k
        {
            return Err(format!(
                "shape mismatch against K = {k}: mu_c is {}, beta has {} rows, \
                 sigma_w is {}×{}, sigma_c is {}×{}",
                self.mu_c.len(),
                self.beta.rows(),
                self.sigma_w.rows(),
                self.sigma_w.cols(),
                self.sigma_c.rows(),
                self.sigma_c.cols()
            ));
        }
        if !(self.tau.is_finite() && self.tau > 0.0) {
            return Err(format!(
                "tau = {} is not a positive finite number",
                self.tau
            ));
        }
        self.mu_w.validate().map_err(|e| format!("mu_w: {e}"))?;
        self.mu_c.validate().map_err(|e| format!("mu_c: {e}"))?;
        for (name, m) in [("sigma_w", &self.sigma_w), ("sigma_c", &self.sigma_c)] {
            m.validate().map_err(|e| format!("{name}: {e}"))?;
            check_symmetric(m, SYMMETRY_TOL).map_err(|e| format!("{name}: {e}"))?;
        }
        self.beta.validate().map_err(|e| format!("beta: {e}"))?;
        for row in 0..k {
            let r = self.beta.row(row);
            if r.is_empty() {
                continue;
            }
            if let Some(v) = r.iter().position(|&p| p < 0.0) {
                return Err(format!("beta[({row}, {v})] = {} is negative", r[v]));
            }
            let sum: f64 = r.iter().sum();
            if (sum - 1.0).abs() > 1e-6 {
                return Err(format!("beta row {row} sums to {sum}, expected 1"));
            }
        }
        Ok(())
    }
}

impl Validate for WorkerSkill {
    /// Posterior mean finite, posterior variance strictly positive.
    fn validate(&self) -> Result<(), String> {
        self.mean.validate().map_err(|e| format!("mean: {e}"))?;
        check_min_entries(&self.variance, f64::MIN_POSITIVE)
            .map_err(|e| format!("variance must be positive: {e}"))
    }
}

impl Validate for SkillMatrix {
    /// Dense rows finite, variances non-negative, id index consistent.
    fn validate(&self) -> Result<(), String> {
        let k = self.num_categories();
        for (row, &id) in self.ids().iter().enumerate() {
            if self.row_of(id) != Some(row) {
                return Err(format!(
                    "id index out of lockstep: ids[{row}] = {id:?} resolves to {:?}",
                    self.row_of(id)
                ));
            }
            let mean = self.mean_row(row);
            let var = self.var_row(row);
            if mean.len() != k || var.len() != k {
                return Err(format!(
                    "row {row} has {}/{} entries, expected {k}",
                    mean.len(),
                    var.len()
                ));
            }
            if let Some(c) = mean.iter().position(|x| !x.is_finite()) {
                return Err(format!("mean[({row}, {c})] = {} is not finite", mean[c]));
            }
            if let Some(c) = var.iter().position(|x| !(x.is_finite() && *x >= 0.0)) {
                return Err(format!(
                    "var[({row}, {c})] = {} is not a non-negative finite number",
                    var[c]
                ));
            }
        }
        Ok(())
    }
}

impl Validate for TdpmModel {
    /// Parameters, every worker posterior, the dense serving snapshot, and
    /// their lockstep: the snapshot must hold exactly (bitwise) the
    /// posterior each skill entry reports, or serving would rank against
    /// stale numbers.
    fn validate(&self) -> Result<(), String> {
        self.params()
            .validate()
            .map_err(|e| format!("params: {e}"))?;
        self.skill_matrix()
            .validate()
            .map_err(|e| format!("skill matrix: {e}"))?;
        for &w in self.worker_ids() {
            let skill = self
                .skill(w)
                .ok_or_else(|| format!("worker {w:?} listed but has no skill entry"))?;
            skill.validate().map_err(|e| format!("skill[{w:?}]: {e}"))?;
            let row = self
                .skill_matrix()
                .row_of(w)
                .ok_or_else(|| format!("worker {w:?} missing from the serving snapshot"))?;
            if self.skill_matrix().mean_row(row) != skill.mean.as_slice()
                || self.skill_matrix().var_row(row) != skill.variance.as_slice()
            {
                return Err(format!(
                    "serving snapshot out of lockstep with skill posterior for {w:?}"
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TdpmConfig;
    use crate::dataset::{TaskData, TrainingSet};
    use crowd_math::Vector;
    use crowd_store::{TaskId, WorkerId};

    fn tiny_state() -> VariationalState {
        let tasks = vec![TaskData {
            task: TaskId(0),
            words: vec![(0, 2), (1, 1)],
            num_tokens: 3.0,
            scores: vec![(0, 4.0)],
        }];
        let ts = TrainingSet::from_parts(tasks, 1, 2);
        VariationalState::init(&ts, 3, 7)
    }

    #[test]
    fn fresh_state_validates() {
        assert!(tiny_state().validate().is_ok());
    }

    #[test]
    fn nan_mean_is_caught() {
        let mut s = tiny_state();
        s.lambda_w[0][1] = f64::NAN;
        let msg = s.validate().unwrap_err();
        assert!(msg.contains("lambda_w[0]"), "{msg}");
    }

    #[test]
    fn nonpositive_variance_is_caught() {
        let mut s = tiny_state();
        s.nu2_c[0][0] = 0.0;
        assert!(s.validate().unwrap_err().contains("nu2_c[0]"));
    }

    #[test]
    fn unnormalized_phi_block_is_caught() {
        let mut s = tiny_state();
        s.phi.row_mut(0)[0] += 1e-3;
        let msg = s.validate().unwrap_err();
        assert!(msg.contains("sums to"), "{msg}");
    }

    #[test]
    fn neutral_params_validate_and_bad_tau_fails() {
        let mut p = ModelParams::neutral(2, 4);
        assert!(p.validate().is_ok());
        p.tau = f64::NAN;
        assert!(p.validate().is_err());
    }

    #[test]
    fn asymmetric_prior_covariance_is_caught() {
        let mut p = ModelParams::neutral(2, 0);
        p.sigma_w[(0, 1)] = 0.5; // lower triangle left at 0
        let msg = p.validate().unwrap_err();
        assert!(msg.contains("sigma_w"), "{msg}");
    }

    #[test]
    fn model_from_posteriors_validates() {
        let k = 2;
        let model = TdpmModel::from_posteriors(
            ModelParams::neutral(k, 0),
            TdpmConfig {
                num_categories: k,
                ..TdpmConfig::default()
            },
            vec![
                (
                    WorkerId(0),
                    Vector::from_vec(vec![1.0, -1.0]),
                    Vector::from_vec(vec![0.5, 0.5]),
                ),
                (
                    WorkerId(7),
                    Vector::from_vec(vec![0.0, 2.0]),
                    Vector::from_vec(vec![1.0, 0.25]),
                ),
            ],
        )
        .unwrap();
        assert!(model.validate().is_ok());
    }

    #[test]
    fn run_panics_on_violation_when_enabled() {
        // Debug builds (where tests run) always have ENABLED set; a release
        // run without the `validate` feature has nothing to exercise here.
        if !ENABLED {
            return;
        }
        let obs = crowd_obs::Obs::noop();
        let counter = obs.metrics.counter("validate", "checks");
        run(&counter, "test-ok", || Ok(()));
        assert_eq!(counter.get(), 1);
        let err = std::panic::catch_unwind(|| {
            run(&counter, "test-bad", || Err("broken".into()));
        });
        assert!(err.is_err());
    }
}
