//! Compact training representation of resolved tasks.

use crowd_store::{CrowdDb, ShardedDb, TaskId, WorkerId};
use crowd_text::BagOfWords;
use std::collections::HashMap;

/// One training task: its distinct terms with counts, plus scored jobs
/// referencing *dense* worker indexes.
#[derive(Debug, Clone)]
pub struct TaskData {
    /// Originating task id in the store.
    pub task: TaskId,
    /// `(term index, count)` pairs; term indexes address `β` columns.
    pub words: Vec<(usize, u32)>,
    /// Total token count `L`.
    pub num_tokens: f64,
    /// Scored assignments as `(dense worker index, s_ij)`.
    pub scores: Vec<(usize, f64)>,
}

/// The training view `(T, A, S)` with dense indexes on both sides.
///
/// Workers are compacted: only ids that appear in the store are mapped, so
/// skill vectors can live in flat `Vec`s during inference. The mapping is
/// retained for translating back to [`WorkerId`]s at selection time.
#[derive(Debug, Clone)]
pub struct TrainingSet {
    /// Shared behind `Arc` so the pooled E-step's `'static` chunk jobs can
    /// hold a handle to the task list instead of copying it per iteration.
    tasks: std::sync::Arc<Vec<TaskData>>,
    worker_ids: Vec<WorkerId>,
    worker_index: HashMap<WorkerId, usize>,
    vocab_size: usize,
}

impl TrainingSet {
    /// Builds the training set from every resolved task in `db`.
    ///
    /// All registered workers get a dense index (workers without feedback
    /// simply keep their prior as posterior), so incremental updates after
    /// training never meet an unknown worker.
    ///
    /// Each task's scores are canonicalized to ascending worker index:
    /// the store yields them in assignment order, and per-task reductions
    /// during inference sum them left to right, so without the sort two
    /// stores holding the same `(T, A, S)` content with different
    /// assignment interleavings would fit ulp-different models. The sort
    /// makes the fit a function of the content alone — which is also what
    /// lets the sharded store (whose merged scans are worker-sorted by
    /// construction) train bit-identically to this path.
    pub fn from_db(db: &CrowdDb) -> Self {
        Self::from_resolved(
            db.resolved_tasks(),
            db.worker_ids().collect(),
            db.vocab().len(),
        )
    }

    fn from_resolved(
        resolved: Vec<crowd_store::ResolvedTask>,
        worker_ids: Vec<WorkerId>,
        vocab_size: usize,
    ) -> Self {
        let worker_index: HashMap<WorkerId, usize> = worker_ids
            .iter()
            .enumerate()
            .map(|(i, &w)| (w, i))
            .collect();
        let tasks = resolved
            .into_iter()
            .map(|rt| {
                let words: Vec<(usize, u32)> = rt.bow.iter().map(|(t, c)| (t.index(), c)).collect();
                let num_tokens = rt.bow.total_tokens() as f64;
                let mut scores: Vec<(usize, f64)> = rt
                    .scores
                    .iter()
                    .map(|&(w, s)| (worker_index[&w], s))
                    .collect();
                scores.sort_by_key(|&(w, _)| w);
                TaskData {
                    task: rt.task,
                    words,
                    num_tokens,
                    scores,
                }
            })
            .collect();
        TrainingSet {
            tasks: std::sync::Arc::new(tasks),
            worker_ids,
            worker_index,
            vocab_size,
        }
    }

    /// Builds the training set from every resolved task in a sharded store.
    ///
    /// [`ShardedDb::resolved_tasks`] is shard-count invariant — tasks in
    /// global id order, scores sorted by global worker id — so the set built
    /// here is byte-for-byte the set [`TrainingSet::from_db`] builds from an
    /// unsharded store holding the same `(T, A, S)` content, for every shard
    /// count.
    pub fn from_sharded(db: &ShardedDb) -> Self {
        Self::from_resolved(
            db.resolved_tasks(),
            db.worker_ids().collect(),
            db.vocab().len(),
        )
    }

    /// Builds a training set directly (used by tests and the generative
    /// round-trip). `scores` use dense worker indexes `< num_workers`.
    pub fn from_parts(tasks: Vec<TaskData>, num_workers: usize, vocab_size: usize) -> Self {
        // Synthetic dense ids; saturate rather than wrap if a caller ever
        // asks for more workers than the u32 id space holds.
        let count = u32::try_from(num_workers).unwrap_or(u32::MAX);
        let worker_ids: Vec<WorkerId> = (0..count).map(WorkerId).collect();
        let worker_index = worker_ids
            .iter()
            .enumerate()
            .map(|(i, &w)| (w, i))
            .collect();
        TrainingSet {
            tasks: std::sync::Arc::new(tasks),
            worker_ids,
            worker_index,
            vocab_size,
        }
    }

    /// Training tasks.
    pub fn tasks(&self) -> &[TaskData] {
        &self.tasks
    }

    /// A shared handle to the task list, for `'static` pooled E-step jobs.
    pub fn tasks_shared(&self) -> std::sync::Arc<Vec<TaskData>> {
        std::sync::Arc::clone(&self.tasks)
    }

    /// Number of training tasks `N`.
    pub fn num_tasks(&self) -> usize {
        self.tasks.len()
    }

    /// Number of workers `M` (all registered, not just scored).
    pub fn num_workers(&self) -> usize {
        self.worker_ids.len()
    }

    /// Vocabulary size `V`.
    pub fn vocab_size(&self) -> usize {
        self.vocab_size
    }

    /// Dense index for a worker id.
    pub fn worker_dense(&self, w: WorkerId) -> Option<usize> {
        self.worker_index.get(&w).copied()
    }

    /// Worker id for a dense index.
    pub fn worker_id(&self, dense: usize) -> WorkerId {
        self.worker_ids[dense]
    }

    /// All worker ids in dense order.
    pub fn worker_ids(&self) -> &[WorkerId] {
        &self.worker_ids
    }

    /// For each worker (dense), the `(task index, score)` pairs — the
    /// transpose of the per-task score lists, needed by the worker E-step.
    pub fn scores_by_worker(&self) -> Vec<Vec<(usize, f64)>> {
        let mut by_worker = vec![Vec::new(); self.num_workers()];
        for (j, t) in self.tasks.iter().enumerate() {
            for &(i, s) in &t.scores {
                by_worker[i].push((j, s));
            }
        }
        by_worker
    }

    /// Total number of scored `(worker, task)` pairs `|A|`.
    pub fn num_scored_pairs(&self) -> usize {
        self.tasks.iter().map(|t| t.scores.len()).sum()
    }

    /// Builds a [`BagOfWords`]-free word histogram over the whole corpus
    /// (used for β initialization diagnostics).
    pub fn corpus_term_counts(&self) -> Vec<f64> {
        let mut counts = vec![0.0; self.vocab_size];
        for t in self.tasks.iter() {
            for &(v, c) in &t.words {
                counts[v] += c as f64;
            }
        }
        counts
    }
}

/// Converts a [`BagOfWords`] into the `(term index, count)` pairs used in
/// [`TaskData::words`].
pub fn bow_to_words(bow: &BagOfWords) -> Vec<(usize, u32)> {
    bow.iter().map(|(t, c)| (t.index(), c)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> CrowdDb {
        let mut db = CrowdDb::new();
        let w0 = db.add_worker("a");
        let w1 = db.add_worker("b");
        let _idle = db.add_worker("idle");
        let t0 = db.add_task("b+ tree index structure");
        let t1 = db.add_task("normal distribution priors");
        let t2 = db.add_task("unanswered question");
        db.assign(w0, t0).unwrap();
        db.assign(w1, t0).unwrap();
        db.assign(w0, t1).unwrap();
        db.assign(w1, t2).unwrap(); // never scored
        db.record_feedback(w0, t0, 4.0).unwrap();
        db.record_feedback(w1, t0, 1.0).unwrap();
        db.record_feedback(w0, t1, 2.0).unwrap();
        db
    }

    #[test]
    fn only_resolved_tasks_included() {
        let ts = TrainingSet::from_db(&db());
        assert_eq!(ts.num_tasks(), 2);
        assert_eq!(ts.num_workers(), 3, "idle workers still get indexes");
        assert_eq!(ts.num_scored_pairs(), 3);
    }

    #[test]
    fn dense_mapping_roundtrips() {
        let ts = TrainingSet::from_db(&db());
        for w in ts.worker_ids().to_vec() {
            let dense = ts.worker_dense(w).unwrap();
            assert_eq!(ts.worker_id(dense), w);
        }
        assert_eq!(ts.worker_dense(WorkerId(99)), None);
    }

    #[test]
    fn scores_by_worker_transposes() {
        let ts = TrainingSet::from_db(&db());
        let by_worker = ts.scores_by_worker();
        let w0 = ts.worker_dense(WorkerId(0)).unwrap();
        let w2 = ts.worker_dense(WorkerId(2)).unwrap();
        assert_eq!(by_worker[w0].len(), 2);
        assert!(by_worker[w2].is_empty());
        // Cross-check total.
        let total: usize = by_worker.iter().map(Vec::len).sum();
        assert_eq!(total, ts.num_scored_pairs());
    }

    #[test]
    fn word_counts_match_bow() {
        let source = db();
        let ts = TrainingSet::from_db(&source);
        let t = &ts.tasks()[0];
        let expected = source.task(t.task).unwrap().bow.total_tokens() as f64;
        assert_eq!(t.num_tokens, expected);
        let sum: u32 = t.words.iter().map(|&(_, c)| c).sum();
        assert_eq!(sum as f64, expected);
    }

    #[test]
    fn corpus_term_counts_sum_to_total_tokens() {
        let ts = TrainingSet::from_db(&db());
        let counts = ts.corpus_term_counts();
        let total: f64 = counts.iter().sum();
        let expected: f64 = ts.tasks().iter().map(|t| t.num_tokens).sum();
        assert_eq!(total, expected);
    }
}
