//! Top-k worker selection (paper Eq. 1).
//!
//! The primitives now live in the backend-agnostic `crowd-select` crate so
//! every selection algorithm (TDPM and the baselines) shares them; this
//! module re-exports them under their historical paths.

pub use crowd_select::{rank_of, top_k, RankedWorker, TopK};
