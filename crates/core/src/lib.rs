#![warn(missing_docs)]

//! TDPM — the Task-Driven Probabilistic Model for crowd-selection.
//!
//! This crate implements the paper's primary contribution end to end:
//!
//! - **Generative model** (Section 4.3, Algorithm 1): worker skills
//!   `w^i ~ Normal(μ_w, Σ_w)`, task categories `c^j ~ Normal(μ_c, Σ_c)`,
//!   words via a logistic-normal topic link, and feedback scores
//!   `s_ij ~ Normal(w^i·c^j, τ²)` — see [`generative`].
//! - **Variational inference** (Section 5, Algorithm 2): a mean-field
//!   approximation `q(W) q(C) q(Z)` optimized by alternating closed-form
//!   updates (worker skills, word responsibilities, Taylor parameter) with
//!   conjugate-gradient / root-finding updates for the task posteriors — see
//!   [`inference`] and [`trainer::TdpmTrainer`].
//! - **Incremental crowd-selection** (Section 6, Algorithm 3): projecting a
//!   brand-new task onto the learned latent space without refitting, then
//!   ranking workers by `w^i (c^j)ᵀ` (Eq. 1) — see [`model::TdpmModel`].
//!
//! # Quick start
//!
//! ```
//! use crowd_core::{TdpmConfig, TdpmTrainer};
//! use crowd_store::CrowdDb;
//!
//! let mut db = CrowdDb::new();
//! let alice = db.add_worker("alice");
//! let bob = db.add_worker("bob");
//! let t = db.add_task("advantages of b+ tree over b tree");
//! let u = db.add_task("bayes rule and priors");
//! for (w, task, score) in [(alice, t, 4.0), (bob, t, 1.0), (alice, u, 0.0), (bob, u, 3.0)] {
//!     db.assign(w, task).unwrap();
//!     db.record_feedback(w, task, score).unwrap();
//! }
//!
//! let config = TdpmConfig { num_categories: 2, seed: 7, ..TdpmConfig::default() };
//! let model = TdpmTrainer::new(config).fit(&db).unwrap();
//!
//! let projection = model.project_bow(&db.task(t).unwrap().bow);
//! let ranked = model.select_top_k(&projection, db.worker_ids(), 1);
//! assert_eq!(ranked.len(), 1);
//! ```

pub mod backend;
pub mod config;
pub mod dataset;
pub mod error;
pub mod generative;
pub mod inference;
pub mod model;
pub mod params;
pub mod persist;
pub mod selection;
pub mod skillmatrix;
pub mod trainer;
pub mod validate;
pub mod variational;

pub use backend::{TdpmBackend, TdpmSelector};
pub use config::TdpmConfig;
pub use crowd_math::validate::Validate;
pub use crowd_select::CrowdSelector;
pub use dataset::TrainingSet;
pub use error::CoreError;
pub use model::{Precision, TaskProjection, TdpmModel};
pub use params::ModelParams;
pub use persist::ModelSnapshot;
pub use selection::RankedWorker;
pub use skillmatrix::{PartialRanking, SkillMatrix, MIN_POOL_CHUNK_ROWS};
pub use trainer::{FitReport, TdpmTrainer};

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, CoreError>;
