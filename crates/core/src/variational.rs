//! Variational parameters `ϕ' = {λ_w, ν_w², λ_c, ν_c², φ, ε}` (Section 5.1).

use crate::dataset::TrainingSet;
use crowd_math::Vector;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Mean-field variational state over workers, tasks and word assignments.
///
/// - `q(w^i) = Normal(λ_w^i, diag(ν_w^i²))`
/// - `q(c^j) = Normal(λ_c^j, diag(ν_c^j²))`
/// - `q(z_p^j) = Discrete(φ_p^j)` — stored per *distinct term* of each task
///   (identical occurrences share identical responsibilities), flattened as
///   `phi[j][term_slot * K + k]`
/// - `ε_j` — the Taylor-expansion parameter for the softmax log-normalizer
#[derive(Debug, Clone)]
pub struct VariationalState {
    /// Worker skill means, `M × K`.
    pub lambda_w: Vec<Vector>,
    /// Worker skill variances (diagonal), `M × K`.
    pub nu2_w: Vec<Vector>,
    /// Task category means, `N × K`.
    pub lambda_c: Vec<Vector>,
    /// Task category variances (diagonal), `N × K`.
    pub nu2_c: Vec<Vector>,
    /// Word responsibilities per task, flattened `(distinct terms) × K`.
    pub phi: Vec<Vec<f64>>,
    /// Taylor parameters, one per task.
    pub epsilon: Vec<f64>,
}

impl VariationalState {
    /// Initializes the state for a training set with `k` latent categories.
    ///
    /// Means get small seeded Gaussian noise to break the symmetry between
    /// latent categories (with exactly uniform starts every category would
    /// receive identical updates and the model could never specialize).
    pub fn init(ts: &TrainingSet, k: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut noise_vec = |scale: f64| -> Vector {
            Vector::from_fn(k, |_| {
                // Box–Muller-free: sum of uniforms is plenty for tie-breaking.
                let u: f64 = rng.random_range(-1.0..1.0);
                u * scale
            })
        };

        // Worker means start at prior scale (w ~ Normal(0, I)); near-zero
        // starts sit in a collapsed fixed point where τ² absorbs all score
        // variance and skills never separate.
        let lambda_w = (0..ts.num_workers()).map(|_| noise_vec(1.0)).collect();
        let nu2_w = (0..ts.num_workers()).map(|_| Vector::filled(k, 1.0)).collect();
        let lambda_c = (0..ts.num_tasks()).map(|_| noise_vec(0.1)).collect();
        let nu2_c = (0..ts.num_tasks()).map(|_| Vector::filled(k, 1.0)).collect();

        let phi = ts
            .tasks()
            .iter()
            .map(|t| vec![1.0 / k as f64; t.words.len() * k])
            .collect();
        let epsilon = vec![k as f64; ts.num_tasks()]; // Σ exp(0 + 1/2) ≈ k·e^½; any positive start works

        VariationalState {
            lambda_w,
            nu2_w,
            lambda_c,
            nu2_c,
            phi,
            epsilon,
        }
    }

    /// Number of latent categories.
    pub fn num_categories(&self) -> usize {
        self.lambda_w.first().map_or(0, Vector::len)
    }

    /// `true` when every stored quantity is finite and variances positive.
    pub fn is_sane(&self) -> bool {
        let finite_vecs =
            |vs: &[Vector]| vs.iter().all(Vector::is_finite);
        let positive = |vs: &[Vector]| {
            vs.iter()
                .all(|v| v.as_slice().iter().all(|&x| x > 0.0 && x.is_finite()))
        };
        finite_vecs(&self.lambda_w)
            && finite_vecs(&self.lambda_c)
            && positive(&self.nu2_w)
            && positive(&self.nu2_c)
            && self.epsilon.iter().all(|&e| e > 0.0 && e.is_finite())
            && self
                .phi
                .iter()
                .all(|p| p.iter().all(|&x| x.is_finite() && x >= 0.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::TaskData;
    use crowd_store::TaskId;

    fn tiny_ts() -> TrainingSet {
        let tasks = vec![
            TaskData {
                task: TaskId(0),
                words: vec![(0, 2), (1, 1)],
                num_tokens: 3.0,
                scores: vec![(0, 4.0), (1, 1.0)],
            },
            TaskData {
                task: TaskId(1),
                words: vec![(2, 1)],
                num_tokens: 1.0,
                scores: vec![(0, 2.0)],
            },
        ];
        TrainingSet::from_parts(tasks, 2, 3)
    }

    #[test]
    fn shapes_match_training_set() {
        let ts = tiny_ts();
        let s = VariationalState::init(&ts, 4, 7);
        assert_eq!(s.lambda_w.len(), 2);
        assert_eq!(s.lambda_c.len(), 2);
        assert_eq!(s.num_categories(), 4);
        assert_eq!(s.phi[0].len(), 2 * 4);
        assert_eq!(s.phi[1].len(), 4);
        assert_eq!(s.epsilon.len(), 2);
    }

    #[test]
    fn init_is_sane_and_deterministic() {
        let ts = tiny_ts();
        let a = VariationalState::init(&ts, 3, 9);
        let b = VariationalState::init(&ts, 3, 9);
        assert!(a.is_sane());
        assert_eq!(a.lambda_w[0].as_slice(), b.lambda_w[0].as_slice());
        // Different seeds give different noise.
        let c = VariationalState::init(&ts, 3, 10);
        assert_ne!(a.lambda_w[0].as_slice(), c.lambda_w[0].as_slice());
    }

    #[test]
    fn phi_rows_start_uniform() {
        let ts = tiny_ts();
        let s = VariationalState::init(&ts, 4, 0);
        for x in &s.phi[0] {
            assert!((x - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn sanity_detects_bad_values() {
        let ts = tiny_ts();
        let mut s = VariationalState::init(&ts, 2, 0);
        s.nu2_c[0][1] = -1.0;
        assert!(!s.is_sane());
    }
}
