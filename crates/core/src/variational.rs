//! Variational parameters `ϕ' = {λ_w, ν_w², λ_c, ν_c², φ, ε}` (Section 5.1).

use crate::dataset::TrainingSet;
use crowd_math::Vector;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Word responsibilities `φ` for every task, stored in one contiguous
/// row-major buffer.
///
/// Conceptually this is a jagged `N × (distinct terms × K)` matrix — one row
/// per task, each row the flattened `(term_slot, k)` responsibilities of that
/// task. Storing the rows back-to-back in a single allocation (with an
/// offsets table, CSR-style) keeps the per-iteration E-step sweep walking a
/// single cache-friendly buffer instead of chasing `Vec<Vec<f64>>` pointers,
/// and lets the parallel trainer split the state into contiguous per-thread
/// blocks with no copying.
#[derive(Debug, Clone, PartialEq)]
pub struct PhiMatrix {
    data: Vec<f64>,
    /// `offsets[j]..offsets[j + 1]` is task `j`'s row; `len = rows + 1`.
    offsets: Vec<usize>,
}

impl PhiMatrix {
    /// Builds a matrix with the given row lengths, every entry `value`.
    pub fn filled(row_lens: impl IntoIterator<Item = usize>, value: f64) -> Self {
        let mut offsets = vec![0usize];
        let mut total = 0usize;
        for len in row_lens {
            total += len;
            offsets.push(total);
        }
        PhiMatrix {
            data: vec![value; total],
            offsets,
        }
    }

    /// Number of rows (tasks).
    pub fn num_rows(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Task `j`'s flattened `(distinct terms) × K` responsibilities.
    pub fn row(&self, j: usize) -> &[f64] {
        &self.data[self.offsets[j]..self.offsets[j + 1]]
    }

    /// Mutable access to task `j`'s row.
    pub fn row_mut(&mut self, j: usize) -> &mut [f64] {
        &mut self.data[self.offsets[j]..self.offsets[j + 1]]
    }

    /// Every stored value, across all rows.
    pub fn values(&self) -> &[f64] {
        &self.data
    }

    /// A mutable view over all rows that can be recursively split into
    /// contiguous row blocks (the parallel E-step's partitioning primitive).
    pub fn rows_mut(&mut self) -> PhiRowsMut<'_> {
        PhiRowsMut {
            data: &mut self.data,
            offsets: &self.offsets,
        }
    }
}

/// Uniform mutable row access over a block of responsibilities.
///
/// The task E-step is written once against this trait and runs over either
/// a borrowed [`PhiRowsMut`] view (the inline path) or owned per-chunk row
/// copies (`Vec<Vec<f64>>`, the pooled path — `'static` jobs can't borrow
/// the matrix, so they round-trip owned copies and the trainer writes them
/// back). Same updates, same order, so the two paths stay bit-identical.
pub trait PhiRowAccess {
    /// Mutable access to local row `j` (relative to the block start).
    fn row_mut(&mut self, j: usize) -> &mut [f64];
}

impl PhiRowAccess for PhiRowsMut<'_> {
    fn row_mut(&mut self, j: usize) -> &mut [f64] {
        PhiRowsMut::row_mut(self, j)
    }
}

impl PhiRowAccess for Vec<Vec<f64>> {
    fn row_mut(&mut self, j: usize) -> &mut [f64] {
        &mut self[j]
    }
}

/// A borrowed block of consecutive [`PhiMatrix`] rows.
///
/// Behaves like `&mut [row]`: [`PhiRowsMut::split_at_mut`] cuts the block in
/// two at a row boundary, so scoped threads can each own a disjoint
/// contiguous block of the underlying buffer.
#[derive(Debug)]
pub struct PhiRowsMut<'a> {
    data: &'a mut [f64],
    /// Absolute offsets of the covered rows (`len = rows + 1`); `offsets[0]`
    /// is the base of `data` within the full matrix.
    offsets: &'a [usize],
}

impl<'a> PhiRowsMut<'a> {
    /// Rows in this block.
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// `true` when the block covers no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Mutable access to local row `j` (relative to the block start).
    pub fn row_mut(&mut self, j: usize) -> &mut [f64] {
        let base = self.offsets[0];
        &mut self.data[self.offsets[j] - base..self.offsets[j + 1] - base]
    }

    /// Splits the block into rows `[0, mid)` and `[mid, len)`.
    pub fn split_at_mut(self, mid: usize) -> (PhiRowsMut<'a>, PhiRowsMut<'a>) {
        let base = self.offsets[0];
        let cut = self.offsets[mid] - base;
        let (left, right) = self.data.split_at_mut(cut);
        (
            PhiRowsMut {
                data: left,
                offsets: &self.offsets[..=mid],
            },
            PhiRowsMut {
                data: right,
                offsets: &self.offsets[mid..],
            },
        )
    }
}

/// Mean-field variational state over workers, tasks and word assignments.
///
/// - `q(w^i) = Normal(λ_w^i, diag(ν_w^i²))`
/// - `q(c^j) = Normal(λ_c^j, diag(ν_c^j²))`
/// - `q(z_p^j) = Discrete(φ_p^j)` — stored per *distinct term* of each task
///   (identical occurrences share identical responsibilities), flattened as
///   `phi.row(j)[term_slot * K + k]`
/// - `ε_j` — the Taylor-expansion parameter for the softmax log-normalizer
#[derive(Debug, Clone)]
pub struct VariationalState {
    /// Worker skill means, `M × K`.
    pub lambda_w: Vec<Vector>,
    /// Worker skill variances (diagonal), `M × K`.
    pub nu2_w: Vec<Vector>,
    /// Task category means, `N × K`.
    pub lambda_c: Vec<Vector>,
    /// Task category variances (diagonal), `N × K`.
    pub nu2_c: Vec<Vector>,
    /// Word responsibilities, one contiguous row per task.
    pub phi: PhiMatrix,
    /// Taylor parameters, one per task.
    pub epsilon: Vec<f64>,
}

impl VariationalState {
    /// Initializes the state for a training set with `k` latent categories.
    ///
    /// Means get small seeded Gaussian noise to break the symmetry between
    /// latent categories (with exactly uniform starts every category would
    /// receive identical updates and the model could never specialize).
    pub fn init(ts: &TrainingSet, k: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut noise_vec = |scale: f64| -> Vector {
            Vector::from_fn(k, |_| {
                // Box–Muller-free: sum of uniforms is plenty for tie-breaking.
                let u: f64 = rng.random_range(-1.0..1.0);
                u * scale
            })
        };

        // Worker means start at prior scale (w ~ Normal(0, I)); near-zero
        // starts sit in a collapsed fixed point where τ² absorbs all score
        // variance and skills never separate.
        let lambda_w = (0..ts.num_workers()).map(|_| noise_vec(1.0)).collect();
        let nu2_w = (0..ts.num_workers())
            .map(|_| Vector::filled(k, 1.0))
            .collect();
        let lambda_c = (0..ts.num_tasks()).map(|_| noise_vec(0.1)).collect();
        let nu2_c = (0..ts.num_tasks())
            .map(|_| Vector::filled(k, 1.0))
            .collect();

        let phi = PhiMatrix::filled(ts.tasks().iter().map(|t| t.words.len() * k), 1.0 / k as f64);
        let epsilon = vec![k as f64; ts.num_tasks()]; // Σ exp(0 + 1/2) ≈ k·e^½; any positive start works

        VariationalState {
            lambda_w,
            nu2_w,
            lambda_c,
            nu2_c,
            phi,
            epsilon,
        }
    }

    /// Number of latent categories.
    pub fn num_categories(&self) -> usize {
        self.lambda_w.first().map_or(0, Vector::len)
    }

    /// `true` when every stored quantity is finite and variances positive.
    pub fn is_sane(&self) -> bool {
        let finite_vecs = |vs: &[Vector]| vs.iter().all(Vector::is_finite);
        let positive = |vs: &[Vector]| {
            vs.iter()
                .all(|v| v.as_slice().iter().all(|&x| x > 0.0 && x.is_finite()))
        };
        finite_vecs(&self.lambda_w)
            && finite_vecs(&self.lambda_c)
            && positive(&self.nu2_w)
            && positive(&self.nu2_c)
            && self.epsilon.iter().all(|&e| e > 0.0 && e.is_finite())
            && self.phi.values().iter().all(|&x| x.is_finite() && x >= 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::TaskData;
    use crowd_store::TaskId;

    fn tiny_ts() -> TrainingSet {
        let tasks = vec![
            TaskData {
                task: TaskId(0),
                words: vec![(0, 2), (1, 1)],
                num_tokens: 3.0,
                scores: vec![(0, 4.0), (1, 1.0)],
            },
            TaskData {
                task: TaskId(1),
                words: vec![(2, 1)],
                num_tokens: 1.0,
                scores: vec![(0, 2.0)],
            },
        ];
        TrainingSet::from_parts(tasks, 2, 3)
    }

    #[test]
    fn shapes_match_training_set() {
        let ts = tiny_ts();
        let s = VariationalState::init(&ts, 4, 7);
        assert_eq!(s.lambda_w.len(), 2);
        assert_eq!(s.lambda_c.len(), 2);
        assert_eq!(s.num_categories(), 4);
        assert_eq!(s.phi.num_rows(), 2);
        assert_eq!(s.phi.row(0).len(), 2 * 4);
        assert_eq!(s.phi.row(1).len(), 4);
        assert_eq!(s.epsilon.len(), 2);
    }

    #[test]
    fn init_is_sane_and_deterministic() {
        let ts = tiny_ts();
        let a = VariationalState::init(&ts, 3, 9);
        let b = VariationalState::init(&ts, 3, 9);
        assert!(a.is_sane());
        assert_eq!(a.lambda_w[0].as_slice(), b.lambda_w[0].as_slice());
        // Different seeds give different noise.
        let c = VariationalState::init(&ts, 3, 10);
        assert_ne!(a.lambda_w[0].as_slice(), c.lambda_w[0].as_slice());
    }

    #[test]
    fn phi_rows_start_uniform() {
        let ts = tiny_ts();
        let s = VariationalState::init(&ts, 4, 0);
        for x in s.phi.row(0) {
            assert!((x - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn phi_blocks_partition_the_buffer() {
        let mut phi = PhiMatrix::filled([4usize, 2, 6, 2], 0.0);
        // Stamp each row with its index through the block API…
        let rows = phi.rows_mut();
        let (mut left, rest) = rows.split_at_mut(1);
        let (mut mid, mut right) = rest.split_at_mut(2);
        assert_eq!((left.len(), mid.len(), right.len()), (1, 2, 1));
        left.row_mut(0).fill(0.0);
        mid.row_mut(0).fill(1.0);
        mid.row_mut(1).fill(2.0);
        right.row_mut(0).fill(3.0);
        // …and read it back through the whole-matrix API.
        for (j, want) in [0.0, 1.0, 2.0, 3.0].into_iter().enumerate() {
            assert!(phi.row(j).iter().all(|&x| x == want), "row {j}");
        }
        assert_eq!(phi.values().len(), 14);
    }

    #[test]
    fn empty_phi_split_is_fine() {
        let mut phi = PhiMatrix::filled(std::iter::empty(), 0.5);
        assert_eq!(phi.num_rows(), 0);
        let rows = phi.rows_mut();
        assert!(rows.is_empty());
        let (a, b) = rows.split_at_mut(0);
        assert!(a.is_empty() && b.is_empty());
    }

    #[test]
    fn sanity_detects_bad_values() {
        let ts = tiny_ts();
        let mut s = VariationalState::init(&ts, 2, 0);
        s.nu2_c[0][1] = -1.0;
        assert!(!s.is_sane());
    }
}
