//! The generative process (paper Section 4.3, Algorithm 1).
//!
//! Sampling from the model serves two purposes: it documents the model's
//! semantics executably, and it provides planted ground truth for recovery
//! tests — fit the variational algorithm on generated data and check that
//! the inferred skills reproduce the planted ordering.

use crate::dataset::{TaskData, TrainingSet};
use crate::error::CoreError;
use crate::params::ModelParams;
use crate::Result;
use crowd_math::Vector;
use crowd_store::TaskId;
use rand::{Rng, RngExt};
use rand_distr::{Distribution, Normal};

/// Shape of the data to generate.
#[derive(Debug, Clone)]
pub struct GenerativeConfig {
    /// Number of workers `M`.
    pub num_workers: usize,
    /// Number of tasks `N`.
    pub num_tasks: usize,
    /// Tokens per task `L`.
    pub tokens_per_task: usize,
    /// Workers assigned (and scored) per task.
    pub workers_per_task: usize,
}

/// Output of [`generate`]: planted latents plus the observable training set.
#[derive(Debug, Clone)]
pub struct GeneratedData {
    /// Planted worker skills `W` (Algorithm 1, lines 1–3).
    pub worker_skills: Vec<Vector>,
    /// Planted task categories `C` (line 5).
    pub task_categories: Vec<Vector>,
    /// The observable `(T, A, S)` triple.
    pub training: TrainingSet,
}

/// Runs Algorithm 1: generates worker skills, task categories, vocabularies
/// and feedback scores from `params`.
pub fn generate(
    params: &ModelParams,
    cfg: &GenerativeConfig,
    rng: &mut impl Rng,
) -> Result<GeneratedData> {
    let k = params.num_categories();
    let v = params.vocab_size();
    let chol_w = params.sigma_w_chol()?;
    let chol_c = params.sigma_c_chol()?;
    let std_normal =
        Normal::new(0.0, 1.0).map_err(|e| CoreError::Numerical(format!("std normal: {e}")))?;

    // Lines 1–3: w^i ~ Normal(μ_w, Σ_w)  (Eq. 2)
    let mut worker_skills = Vec::with_capacity(cfg.num_workers);
    for _ in 0..cfg.num_workers {
        let z = Vector::from_fn(k, |_| std_normal.sample(rng));
        let mut w = chol_w.l_matvec(&z)?;
        w.add_assign(&params.mu_w)?;
        worker_skills.push(w);
    }

    let mut task_categories = Vec::with_capacity(cfg.num_tasks);
    let mut tasks = Vec::with_capacity(cfg.num_tasks);
    let noise = Normal::new(0.0, params.tau)
        .map_err(|e| CoreError::Numerical(format!("score noise with tau {}: {e}", params.tau)))?;

    for j in 0..cfg.num_tasks {
        // Line 5: c^j ~ Normal(μ_c, Σ_c)  (Eq. 3)
        let z = Vector::from_fn(k, |_| std_normal.sample(rng));
        let mut c = chol_c.l_matvec(&z)?;
        c.add_assign(&params.mu_c)?;

        // Lines 6–9: for each token, z ~ Discrete(logistic(c)) (Eq. 4),
        // v ~ β_z (Eq. 5).
        let topic_probs = crowd_math::special::softmax(c.as_slice());
        let mut counts = vec![0u32; v];
        for _ in 0..cfg.tokens_per_task {
            let topic = sample_discrete(topic_probs.as_slice(), rng);
            let term = sample_discrete(params.beta.row(topic), rng);
            counts[term] += 1;
        }
        let words: Vec<(usize, u32)> = counts
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(t, &c)| (t, c))
            .collect();

        // Lines 11–15: assign workers and draw s_ij ~ Normal(w·c, τ) (Eq. 6).
        let assigned = sample_workers(cfg.num_workers, cfg.workers_per_task, rng);
        let mut scores = Vec::with_capacity(assigned.len());
        for i in assigned {
            let mean = worker_skills[i].dot(&c)?;
            scores.push((i, mean + noise.sample(rng)));
        }

        let id = u32::try_from(j)
            .map_err(|_| CoreError::InvalidConfig("num_tasks exceeds the u32 task-id space"))?;
        task_categories.push(c);
        tasks.push(TaskData {
            task: TaskId(id),
            words,
            num_tokens: cfg.tokens_per_task as f64,
            scores,
        });
    }

    let training = TrainingSet::from_parts(tasks, cfg.num_workers, v);
    Ok(GeneratedData {
        worker_skills,
        task_categories,
        training,
    })
}

/// Samples an index from an unnormalized non-negative weight slice.
fn sample_discrete(weights: &[f64], rng: &mut impl Rng) -> usize {
    let total: f64 = weights.iter().sum();
    if total <= 0.0 {
        return rng.random_range(0..weights.len().max(1));
    }
    let mut u = rng.random::<f64>() * total;
    for (i, &w) in weights.iter().enumerate() {
        u -= w;
        if u <= 0.0 {
            return i;
        }
    }
    weights.len() - 1
}

/// Samples `count` distinct worker indexes (partial Fisher–Yates).
fn sample_workers(num_workers: usize, count: usize, rng: &mut impl Rng) -> Vec<usize> {
    let count = count.min(num_workers);
    let mut pool: Vec<usize> = (0..num_workers).collect();
    for i in 0..count {
        let j = rng.random_range(i..num_workers);
        pool.swap(i, j);
    }
    pool.truncate(count);
    pool
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn demo_params() -> ModelParams {
        let mut p = ModelParams::neutral(2, 6);
        // Two sharply separated topics over six terms.
        for v in 0..6 {
            p.beta[(0, v)] = if v < 3 { 0.3 } else { 0.0333333333333 };
            p.beta[(1, v)] = if v >= 3 { 0.3 } else { 0.0333333333333 };
        }
        p.tau = 0.3;
        p
    }

    #[test]
    fn shapes_are_respected() {
        let params = demo_params();
        let cfg = GenerativeConfig {
            num_workers: 5,
            num_tasks: 8,
            tokens_per_task: 12,
            workers_per_task: 3,
        };
        let mut rng = StdRng::seed_from_u64(0);
        let data = generate(&params, &cfg, &mut rng).unwrap();
        assert_eq!(data.worker_skills.len(), 5);
        assert_eq!(data.task_categories.len(), 8);
        assert_eq!(data.training.num_tasks(), 8);
        for t in data.training.tasks() {
            assert_eq!(t.num_tokens, 12.0);
            assert_eq!(t.scores.len(), 3);
            let total: u32 = t.words.iter().map(|&(_, c)| c).sum();
            assert_eq!(total, 12);
        }
    }

    #[test]
    fn scores_track_planted_skill_dot_products() {
        let params = demo_params();
        let cfg = GenerativeConfig {
            num_workers: 4,
            num_tasks: 200,
            tokens_per_task: 5,
            workers_per_task: 4,
        };
        let mut rng = StdRng::seed_from_u64(1);
        let data = generate(&params, &cfg, &mut rng).unwrap();
        // Correlation between planted w·c and observed s must be strong.
        let mut predicted = Vec::new();
        let mut observed = Vec::new();
        for (j, t) in data.training.tasks().iter().enumerate() {
            for &(i, s) in &t.scores {
                predicted.push(data.worker_skills[i].dot(&data.task_categories[j]).unwrap());
                observed.push(s);
            }
        }
        let corr = crowd_math::stats::pearson(&predicted, &observed).unwrap();
        assert!(corr > 0.9, "correlation {corr}");
    }

    #[test]
    fn tokens_follow_topic_language_models() {
        // A task whose category is pinned to topic 0 must mostly use terms 0–2.
        let mut params = demo_params();
        params.mu_c = Vector::from_vec(vec![5.0, -5.0]); // softmax → topic 0
        params.sigma_c.scale(1e-6);
        params.sigma_c.add_ridge(1e-9);
        let cfg = GenerativeConfig {
            num_workers: 1,
            num_tasks: 30,
            tokens_per_task: 20,
            workers_per_task: 1,
        };
        let mut rng = StdRng::seed_from_u64(2);
        let data = generate(&params, &cfg, &mut rng).unwrap();
        let mut low = 0u32;
        let mut high = 0u32;
        for t in data.training.tasks() {
            for &(v, c) in &t.words {
                if v < 3 {
                    low += c;
                } else {
                    high += c;
                }
            }
        }
        assert!(
            low as f64 > 5.0 * high as f64,
            "topic-0 terms dominate: {low} vs {high}"
        );
    }

    #[test]
    fn sample_discrete_respects_weights() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut hits = [0u32; 3];
        for _ in 0..3000 {
            hits[sample_discrete(&[0.1, 0.0, 0.9], &mut rng)] += 1;
        }
        assert_eq!(hits[1], 0);
        assert!(hits[2] > hits[0] * 5);
    }

    #[test]
    fn sample_workers_distinct_and_bounded() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..50 {
            let w = sample_workers(10, 4, &mut rng);
            assert_eq!(w.len(), 4);
            let mut sorted = w.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 4, "workers must be distinct");
            assert!(w.iter().all(|&i| i < 10));
        }
        // Requesting more than available clamps.
        assert_eq!(sample_workers(3, 9, &mut rng).len(), 3);
    }
}
