//! Property-based tests for the math kernels.

use crowd_math::optimize::{minimize_cg, CgOptions};
use crowd_math::special::{logsumexp, softmax};
use crowd_math::{Cholesky, Matrix, Vector};
use proptest::prelude::*;

/// Strategy: a small vector of reasonable finite floats.
fn small_vec(len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-50.0f64..50.0, len)
}

/// Builds an SPD matrix as `B Bᵀ + I` from arbitrary entries of `B`.
fn spd_matrix(n: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-3.0f64..3.0, n * n).prop_map(move |entries| {
        let b = Matrix::from_rows(n, n, entries).unwrap();
        let mut a = b.matmul(&b.transpose()).unwrap();
        a.add_ridge(1.0);
        a.symmetrize();
        a
    })
}

proptest! {
    #[test]
    fn dot_is_commutative(a in small_vec(5), b in small_vec(5)) {
        let va = Vector::from_vec(a);
        let vb = Vector::from_vec(b);
        let ab = va.dot(&vb).unwrap();
        let ba = vb.dot(&va).unwrap();
        prop_assert!((ab - ba).abs() <= 1e-9 * (1.0 + ab.abs()));
    }

    #[test]
    fn triangle_inequality(a in small_vec(6), b in small_vec(6)) {
        let va = Vector::from_vec(a);
        let vb = Vector::from_vec(b);
        let sum = va.add(&vb).unwrap();
        prop_assert!(sum.norm() <= va.norm() + vb.norm() + 1e-9);
    }

    #[test]
    fn cholesky_solve_residual_is_small(a in spd_matrix(4), b in small_vec(4)) {
        let rhs = Vector::from_vec(b);
        let chol = Cholesky::factor(&a).unwrap();
        let x = chol.solve(&rhs).unwrap();
        let ax = a.matvec(&x).unwrap();
        let resid = ax.sub(&rhs).unwrap().norm();
        prop_assert!(resid <= 1e-6 * (1.0 + rhs.norm()), "residual {resid}");
    }

    #[test]
    fn cholesky_logdet_is_finite_and_matches_product(a in spd_matrix(3)) {
        let chol = Cholesky::factor(&a).unwrap();
        let ld = chol.log_det();
        prop_assert!(ld.is_finite());
        // log det via the factor diag must equal det of reconstruction sign-wise.
        let recon = chol.l().matmul(&chol.l().transpose()).unwrap();
        prop_assert!((recon.frobenius_norm() - a.frobenius_norm()).abs()
            <= 1e-6 * (1.0 + a.frobenius_norm()));
    }

    #[test]
    fn softmax_is_a_distribution(xs in small_vec(8)) {
        let s = softmax(&xs);
        prop_assert!((s.sum() - 1.0).abs() < 1e-9);
        for v in s.as_slice() {
            prop_assert!(*v >= 0.0 && *v <= 1.0 + 1e-12);
        }
    }

    #[test]
    fn logsumexp_bounds(xs in small_vec(8)) {
        let lse = logsumexp(&xs);
        let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        // max ≤ lse ≤ max + ln n
        prop_assert!(lse + 1e-12 >= max);
        prop_assert!(lse <= max + (xs.len() as f64).ln() + 1e-12);
    }

    #[test]
    fn cg_reaches_quadratic_minimum(center in small_vec(4)) {
        let c = Vector::from_vec(center);
        let f = |x: &Vector, g: &mut Vector| {
            let mut v = 0.0;
            for i in 0..x.len() {
                let d = x[i] - c[i];
                v += 0.5 * d * d * (1.0 + i as f64);
                g[i] = d * (1.0 + i as f64);
            }
            v
        };
        let r = minimize_cg(&f, &Vector::zeros(4), &CgOptions::default());
        for i in 0..4 {
            prop_assert!((r.x[i] - c[i]).abs() < 1e-3, "coord {i}");
        }
    }
}
