//! Persistent scoring pool for the dense serving path.
//!
//! PR 4's chunk-parallel selection spawned scoped threads *per query*
//! (`crossbeam::thread::scope`), and `results/BENCH_4.json` showed the cost:
//! `dense_t8` was slower than `dense_t1` at every candidate count because
//! each query paid ~8 OS-thread spawns before scoring a single row. This
//! module replaces that with a process-wide, lazily-initialized pool of
//! long-lived worker threads ([`ScoringPool::global`]): submitting a chunk
//! of scoring work is one queue push + condvar wake (~1 µs) instead of a
//! thread spawn (~30 µs), and the threads are reused across every query and
//! every E-step for the life of the process.
//!
//! Design constraints this implementation answers:
//!
//! - **No `unsafe`.** The workspace denies `unsafe_code`, so the pool cannot
//!   erase closure lifetimes the way rayon's scoped API does. Jobs are
//!   `'static`: callers share read-only state via `Arc` (the `SkillMatrix`
//!   stores its mean/variance blocks in `Arc<Vec<f64>>` exactly so chunk
//!   jobs can clone a handle instead of copying 6 MB of posteriors) and move
//!   owned buffers in and out (the trainer's E-step round-trips its
//!   per-chunk state through the job results).
//! - **Caller participation.** The submitting thread does not idle: it
//!   drains its own batch's task queue alongside the workers. On a
//!   single-core host this means a `threads = 8` selection degenerates to
//!   the inline path plus a few queue operations instead of eight
//!   serialized spawn/join cycles — the BENCH_4 regression case.
//! - **No worker-side blocking.** Jobs never wait on other jobs, so a full
//!   queue cannot deadlock: every submitted batch is drained by the caller
//!   even if all workers are busy elsewhere. A job that *is* submitted from
//!   a pool worker (nesting) runs inline on that worker immediately.
//! - **Panic containment.** A panicking job is caught on the worker, carried
//!   back as a result, and re-raised on the submitting thread — workers
//!   survive, and the panic surfaces exactly where the scoped-thread `join`
//!   used to re-raise it.
//! - **Cancellation composes.** The pool knows nothing about guards; chunk
//!   jobs poll their [`crate::WorkGuard`] exactly as the inline path does
//!   (every [`crate::guard::CHECKPOINT_ROWS`] rows / kernel block), so one
//!   fired guard stops every chunk of the batch at its next boundary,
//!   pool-wide.
//!
//! Lifecycle accounting ([`ScoringPool::stats`]) is part of the contract:
//! the thread-scaling oracle and chaos suites assert that worker count
//! stays constant under stress (no leaked threads) and that small-candidate
//! queries never enqueue pool work (the spawn-policy regression test).

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Duration;

/// How long an idle worker sleeps per wait round. Purely defensive: wakes
/// re-check the queue, so a missed notify only costs one tick of latency.
const IDLE_WAIT: Duration = Duration::from_millis(100);

/// One unit of batch work: runs on a worker or on the submitting thread.
type Task = Box<dyn FnOnce() + Send + 'static>;

/// A submitted batch: a queue of indexed tasks plus completion tracking.
///
/// The global queue holds one `Arc<Batch>` entry per task so every idle
/// worker can pull into the same batch; workers and the submitting caller
/// all pop from `tasks` until it runs dry.
struct Batch {
    tasks: Mutex<VecDeque<Task>>,
    /// Tasks fully executed (including panicked ones).
    completed: Mutex<usize>,
    done: Condvar,
    total: usize,
}

impl Batch {
    /// Pops and runs one task. Returns `false` when the batch had none left.
    fn run_one(&self) -> bool {
        let task = {
            let mut q = match self.tasks.lock() {
                Ok(q) => q,
                Err(p) => p.into_inner(),
            };
            q.pop_front()
        };
        let Some(task) = task else { return false };
        task();
        let mut done = match self.completed.lock() {
            Ok(d) => d,
            Err(p) => p.into_inner(),
        };
        *done += 1;
        if *done == self.total {
            self.done.notify_all();
        }
        true
    }

    /// Blocks until every task of the batch has completed.
    fn wait_done(&self) {
        let mut done = match self.completed.lock() {
            Ok(d) => d,
            Err(p) => p.into_inner(),
        };
        while *done < self.total {
            done = match self.done.wait_timeout(done, IDLE_WAIT) {
                Ok((d, _)) => d,
                Err(p) => p.into_inner().0,
            };
        }
    }
}

/// Point-in-time pool accounting for tests and diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Long-lived worker threads the pool spawned at initialization.
    pub workers: usize,
    /// Workers spawned and not yet exited (must equal `workers`; anything
    /// less means a worker died or failed to spawn, which the panic
    /// containment makes impossible short of an abort or init-time
    /// resource exhaustion). Counted at spawn time, so it never
    /// under-reads while freshly spawned workers wait to be scheduled.
    pub live_workers: usize,
    /// Tasks ever enqueued through [`ScoringPool::run`]'s pooled path. The
    /// spawn-policy regression test pins that sub-threshold selections
    /// leave this untouched.
    pub tasks_enqueued: u64,
    /// Tasks executed by pool workers (the rest were drained by submitting
    /// callers or ran inline).
    pub tasks_run_by_workers: u64,
}

/// A persistent pool of scoring worker threads.
///
/// Most callers want [`ScoringPool::global`]; dedicated pools exist for
/// tests that need isolated accounting.
pub struct ScoringPool {
    queue: Mutex<VecDeque<Arc<Batch>>>,
    available: Condvar,
    workers: usize,
    live_workers: Arc<AtomicUsize>,
    tasks_enqueued: AtomicU64,
    tasks_run_by_workers: Arc<AtomicU64>,
}

impl std::fmt::Debug for ScoringPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScoringPool")
            .field("workers", &self.workers)
            .finish_non_exhaustive()
    }
}

std::thread_local! {
    /// Set for the lifetime of every pool worker thread: submissions from a
    /// worker run inline instead of re-entering the queue (no deadlock, no
    /// unbounded nesting).
    static IS_POOL_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

impl ScoringPool {
    /// Builds a pool with `workers` long-lived threads (at least one).
    ///
    /// The process-wide instance ([`ScoringPool::global`]) sizes itself from
    /// `std::thread::available_parallelism`; explicit construction is for
    /// tests that need isolated lifecycle accounting.
    pub fn with_workers(workers: usize) -> Arc<Self> {
        let workers = workers.max(1);
        let pool = Arc::new(ScoringPool {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            workers,
            live_workers: Arc::new(AtomicUsize::new(0)),
            tasks_enqueued: AtomicU64::new(0),
            tasks_run_by_workers: Arc::new(AtomicU64::new(0)),
        });
        for i in 0..workers {
            let pool_ref = Arc::downgrade(&pool);
            let live = Arc::clone(&pool.live_workers);
            let by_workers = Arc::clone(&pool.tasks_run_by_workers);
            // Counted from *spawn*, not from worker start-up: observers
            // reading stats right after construction must never see a
            // worker as missing just because the OS hasn't scheduled it
            // yet. The worker decrements on exit.
            live.fetch_add(1, Ordering::SeqCst);
            let spawned = std::thread::Builder::new()
                .name(format!("crowd-score-{i}"))
                .spawn(move || {
                    IS_POOL_WORKER.with(|f| f.set(true));
                    // The worker holds only a weak handle: dropping the last
                    // strong `Arc` (a test pool going away) ends the loop and
                    // the thread instead of leaking it.
                    while let Some(pool) = pool_ref.upgrade() {
                        let Some(batch) = pool.next_batch() else {
                            continue;
                        };
                        if batch.run_one() {
                            by_workers.fetch_add(1, Ordering::SeqCst);
                        }
                    }
                    live.fetch_sub(1, Ordering::SeqCst);
                });
            // Spawn failure (resource exhaustion at init) degrades to fewer
            // workers; caller participation keeps every batch completing.
            if spawned.is_err() {
                pool.live_workers.fetch_sub(1, Ordering::SeqCst);
            }
        }
        pool
    }

    /// The process-wide pool, created on first use with one worker per
    /// available core.
    pub fn global() -> &'static Arc<ScoringPool> {
        static GLOBAL: OnceLock<Arc<ScoringPool>> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            let cores = std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1);
            ScoringPool::with_workers(cores)
        })
    }

    /// Pops the next batch handle, waiting briefly when the queue is empty.
    /// Returns `None` on a timeout tick so the worker can re-check pool
    /// liveness.
    fn next_batch(&self) -> Option<Arc<Batch>> {
        let mut q = match self.queue.lock() {
            Ok(q) => q,
            Err(p) => p.into_inner(),
        };
        if let Some(b) = q.pop_front() {
            return Some(b);
        }
        let (mut q, _) = match self.available.wait_timeout(q, IDLE_WAIT) {
            Ok(r) => r,
            Err(p) => {
                let (g, t) = p.into_inner();
                (g, t)
            }
        };
        q.pop_front()
    }

    /// Number of worker threads the pool was built with.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Current lifecycle/throughput accounting.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            workers: self.workers,
            live_workers: self.live_workers.load(Ordering::SeqCst),
            tasks_enqueued: self.tasks_enqueued.load(Ordering::SeqCst),
            tasks_run_by_workers: self.tasks_run_by_workers.load(Ordering::SeqCst),
        }
    }

    /// Runs every closure, in parallel across the pool workers *and* the
    /// calling thread, and returns their results in input order.
    ///
    /// Single-element and empty inputs run inline without touching the
    /// queue, as do submissions from inside a pool worker (nested batches
    /// execute immediately on that worker). The calling thread participates
    /// in draining its own batch, so progress never depends on a worker
    /// being free.
    ///
    /// # Panics
    ///
    /// Re-raises the first (by input order) panic of any task on the
    /// calling thread, after every task of the batch has finished — the
    /// same observable behavior as the scoped spawn/join this replaces.
    // crowd-lint: root(det)
    pub fn run<R, F>(&self, tasks: Vec<F>) -> Vec<R>
    where
        R: Send + 'static,
        F: FnOnce() -> R + Send + 'static,
    {
        let total = tasks.len();
        if total <= 1 || IS_POOL_WORKER.with(std::cell::Cell::get) {
            return tasks.into_iter().map(|t| t()).collect();
        }
        self.tasks_enqueued
            .fetch_add(total as u64, Ordering::SeqCst);

        let results: Arc<Mutex<Vec<Option<std::thread::Result<R>>>>> =
            Arc::new(Mutex::new((0..total).map(|_| None).collect()));
        let batch = Arc::new(Batch {
            tasks: Mutex::new(
                tasks
                    .into_iter()
                    .enumerate()
                    .map(|(i, task)| -> Task {
                        let results = Arc::clone(&results);
                        Box::new(move || {
                            let outcome = catch_unwind(AssertUnwindSafe(task));
                            let mut slots = match results.lock() {
                                Ok(s) => s,
                                Err(p) => p.into_inner(),
                            };
                            slots[i] = Some(outcome);
                        })
                    })
                    .collect(),
            ),
            completed: Mutex::new(0),
            done: Condvar::new(),
            total,
        });

        {
            let mut q = match self.queue.lock() {
                Ok(q) => q,
                Err(p) => p.into_inner(),
            };
            // One queue entry per task lets every idle worker join in.
            for _ in 0..total {
                q.push_back(Arc::clone(&batch));
            }
        }
        self.available.notify_all();

        // Caller participation: drain our own batch until it runs dry, then
        // wait for whatever the workers still have in flight.
        while batch.run_one() {}
        batch.wait_done();

        let slots = match Arc::try_unwrap(results) {
            Ok(m) => match m.into_inner() {
                Ok(s) => s,
                Err(p) => p.into_inner(),
            },
            // Unreachable: every task completed, so no clone survives; keep
            // a total fallback anyway.
            Err(arc) => {
                let mut guard = match arc.lock() {
                    Ok(s) => s,
                    Err(p) => p.into_inner(),
                };
                std::mem::take(&mut *guard)
            }
        };

        let mut out = Vec::with_capacity(total);
        let mut panic: Option<Box<dyn std::any::Any + Send>> = None;
        for slot in slots {
            match slot {
                Some(Ok(r)) => out.push(r),
                Some(Err(payload)) => {
                    if panic.is_none() {
                        panic = Some(payload);
                    }
                }
                // Unreachable by the completion count; treated as a panic so
                // it cannot silently drop a result.
                None => {
                    if panic.is_none() {
                        panic = Some(Box::new("pool task vanished without a result"));
                    }
                }
            }
        }
        if let Some(payload) = panic {
            resume_unwind(payload);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_input_order() {
        let pool = ScoringPool::with_workers(3);
        let tasks: Vec<_> = (0..17).map(|i| move || i * 10).collect();
        assert_eq!(pool.run(tasks), (0..17).map(|i| i * 10).collect::<Vec<_>>());
    }

    #[test]
    fn single_task_runs_inline_without_enqueueing() {
        let pool = ScoringPool::with_workers(2);
        let before = pool.stats().tasks_enqueued;
        assert_eq!(pool.run(vec![|| 7]), vec![7]);
        assert_eq!(pool.stats().tasks_enqueued, before);
    }

    #[test]
    fn pooled_batches_are_counted() {
        let pool = ScoringPool::with_workers(2);
        let before = pool.stats().tasks_enqueued;
        let tasks: Vec<_> = (0..4).map(|i| move || i).collect();
        pool.run(tasks);
        assert_eq!(pool.stats().tasks_enqueued, before + 4);
    }

    #[test]
    fn workers_survive_a_panicking_task() {
        let pool = ScoringPool::with_workers(2);
        // Spawn-time accounting: both workers count as live immediately.
        assert_eq!(pool.stats().live_workers, 2);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            pool.run(vec![
                Box::new(|| 1) as Box<dyn FnOnce() -> i32 + Send>,
                Box::new(|| panic!("task boom")),
                Box::new(|| 3),
            ]);
        }));
        assert!(outcome.is_err(), "the batch panic must re-raise");
        // The pool still works and no worker died.
        let tasks: Vec<_> = (0..8).map(|i| move || i + 1).collect();
        assert_eq!(pool.run(tasks).len(), 8);
        assert_eq!(pool.stats().live_workers, pool.stats().workers);
    }

    #[test]
    fn nested_submission_runs_inline() {
        let pool = ScoringPool::global();
        let tasks: Vec<_> = (0..4)
            .map(|i| {
                move || {
                    // A worker submitting to the pool must not deadlock.
                    let inner: Vec<_> = (0..3).map(|j| move || i * 10 + j).collect();
                    ScoringPool::global().run(inner).iter().sum::<i32>()
                }
            })
            .collect();
        let sums = pool.run(tasks);
        assert_eq!(sums.len(), 4);
    }

    #[test]
    fn global_pool_is_a_singleton() {
        let a = ScoringPool::global() as *const _;
        let b = ScoringPool::global() as *const _;
        assert_eq!(a, b);
        assert!(ScoringPool::global().workers() >= 1);
    }
}
