//! Error type shared by the math kernels.

use std::fmt;

/// Errors raised by linear-algebra and optimization routines.
#[derive(Debug, Clone, PartialEq)]
pub enum MathError {
    /// Two operands had incompatible dimensions.
    DimensionMismatch {
        /// Human-readable description of the operation that failed.
        op: &'static str,
        /// Dimension seen on the left-hand side.
        left: usize,
        /// Dimension seen on the right-hand side.
        right: usize,
    },
    /// A matrix expected to be symmetric positive-definite was not.
    NotPositiveDefinite {
        /// Pivot index at which the factorization broke down.
        pivot: usize,
    },
    /// An iterative routine exhausted its iteration budget without converging.
    DidNotConverge {
        /// Name of the routine.
        routine: &'static str,
        /// Number of iterations performed.
        iterations: usize,
    },
    /// An argument was outside the routine's domain (e.g. `digamma(0)`).
    DomainError {
        /// Name of the routine.
        routine: &'static str,
        /// Description of the violated precondition.
        message: &'static str,
    },
}

impl fmt::Display for MathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MathError::DimensionMismatch { op, left, right } => {
                write!(f, "dimension mismatch in {op}: {left} vs {right}")
            }
            MathError::NotPositiveDefinite { pivot } => {
                write!(f, "matrix is not positive definite (pivot {pivot})")
            }
            MathError::DidNotConverge {
                routine,
                iterations,
            } => {
                write!(
                    f,
                    "{routine} did not converge after {iterations} iterations"
                )
            }
            MathError::DomainError { routine, message } => {
                write!(f, "domain error in {routine}: {message}")
            }
        }
    }
}

impl std::error::Error for MathError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_informative() {
        let e = MathError::DimensionMismatch {
            op: "dot",
            left: 3,
            right: 4,
        };
        assert_eq!(e.to_string(), "dimension mismatch in dot: 3 vs 4");

        let e = MathError::NotPositiveDefinite { pivot: 2 };
        assert!(e.to_string().contains("pivot 2"));

        let e = MathError::DidNotConverge {
            routine: "cg",
            iterations: 100,
        };
        assert!(e.to_string().contains("cg"));
        assert!(e.to_string().contains("100"));

        let e = MathError::DomainError {
            routine: "digamma",
            message: "x must be positive",
        };
        assert!(e.to_string().contains("digamma"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(
            MathError::NotPositiveDefinite { pivot: 1 },
            MathError::NotPositiveDefinite { pivot: 1 }
        );
        assert_ne!(
            MathError::NotPositiveDefinite { pivot: 1 },
            MathError::NotPositiveDefinite { pivot: 2 }
        );
    }
}
