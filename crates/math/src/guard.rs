//! Cooperative interruption of chunked kernels.
//!
//! The dense serving kernels ([`crate::kernels`]) and the chunk-parallel
//! selection drivers in `crowd-core` stream large candidate sets through
//! block/chunk loops. A [`WorkGuard`] is the hook those loops poll at every
//! block boundary: the guard is *charged* with the block's work units
//! before the block runs, and a `false` answer stops the loop cleanly at
//! the boundary — the caller gets back how much completed, and shared
//! state is never left mid-update.
//!
//! The query layer implements [`WorkGuard`] over its per-query context
//! (deadline, cancellation token, row budget); [`Unchecked`] is the no-op
//! guard the unconstrained paths use. Because the guarded loop *is* the
//! only implementation (the unguarded entry points delegate with
//! [`Unchecked`]), a never-firing guard is bit-identical to the historical
//! unguarded paths by construction.

/// A cooperative checkpoint polled by chunked kernels.
///
/// `consume(units)` is called with the size of the *next* block of work
/// before that block runs. Returning `true` admits the block; `false`
/// stops the loop at the current boundary. Implementations must be cheap —
/// guards are polled every [`CHECKPOINT_ROWS`] rows (or every
/// [`crate::kernels::GEMV_BLOCK_ROWS`]-row block in the batched kernel) —
/// and `Sync`, because the chunk-parallel drivers poll one guard from
/// every scoring thread.
pub trait WorkGuard: Sync {
    /// Charges `units` of upcoming work; `false` means stop before it.
    fn consume(&self, units: u64) -> bool;
}

/// The no-op guard: admits every block. Used by the unconstrained entry
/// points so guarded and unguarded code paths are one implementation.
#[derive(Debug, Clone, Copy, Default)]
pub struct Unchecked;

impl WorkGuard for Unchecked {
    #[inline]
    fn consume(&self, _units: u64) -> bool {
        true
    }
}

impl<G: WorkGuard + ?Sized> WorkGuard for &G {
    #[inline]
    fn consume(&self, units: u64) -> bool {
        (**self).consume(units)
    }
}

/// Pooled scoring chunks are `'static` jobs, so they can't borrow a guard —
/// they carry a cloned `Arc` handle instead, forwarding to the one shared
/// guard state so cancellation is observed pool-wide.
impl<G: WorkGuard + Send + ?Sized> WorkGuard for std::sync::Arc<G> {
    #[inline]
    fn consume(&self, units: u64) -> bool {
        (**self).consume(units)
    }
}

/// Row-chunk size between guard polls in the serial/threaded selection
/// drivers: large enough that the poll (an atomic load or two, possibly a
/// clock read) vanishes against ~1k dot products, small enough that a
/// deadline overshoots by at most one chunk.
pub const CHECKPOINT_ROWS: usize = 1024;

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    struct Budget(AtomicU64);
    impl WorkGuard for Budget {
        fn consume(&self, units: u64) -> bool {
            self.0
                .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |r| r.checked_sub(units))
                .is_ok()
        }
    }

    #[test]
    fn unchecked_always_admits() {
        assert!(Unchecked.consume(0));
        assert!(Unchecked.consume(u64::MAX));
        // The blanket ref impl forwards.
        let by_ref: &dyn WorkGuard = &Unchecked;
        assert!(by_ref.consume(7));
    }

    #[test]
    fn a_budget_guard_stops_at_exhaustion() {
        let g = Budget(AtomicU64::new(100));
        assert!(g.consume(60));
        assert!(g.consume(40));
        assert!(!g.consume(1), "empty budget rejects the next block");
    }
}
