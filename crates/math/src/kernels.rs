//! Contiguous-slice scoring kernels for the dense serving path.
//!
//! The online crowd-selection query (paper Eq. 1) scores every candidate
//! worker against one projected task: `score(w) = w^i · c^j`. Served from the
//! per-worker [`crate::Vector`] storage that means a `HashMap` lookup plus a
//! dimension-checked dot product per candidate per query. These kernels work
//! on a row-major `W × K` slice snapshot instead, so a query is a straight
//! gather-free (or index-gathered) walk over contiguous memory, and a *batch*
//! of queries can be blocked so each block of skill rows is streamed through
//! the cache once for all queries.
//!
//! Every kernel accumulates in exactly the same *fixed* order, and the serial
//! selection scorer in `crowd-core` calls [`dot`] too, so dense/pooled
//! results stay **bit-identical** to the serial f64 oracle — the property the
//! selection layer's chunk-merge correctness argument rests on (see
//! DESIGN.md §6d and §10b). Since PR 8 that fixed order is the 4-lane form
//! below, not `Vector::dot`'s strict left-to-right sum; `Vector::dot` remains
//! the training-path accumulator and is deliberately untouched.

/// Accumulator lane count for [`dot`]. Four independent f64 lanes is the
/// widest portable shape that autovectorizes to one 256-bit FMA stream on
/// x86-64 and two 128-bit streams on aarch64 without `unsafe` intrinsics.
pub const DOT_LANES: usize = 4;

/// Dot product over two equal-length slices, 4-lane fixed-reduction order.
///
/// The slices are walked in `DOT_LANES`-wide chunks; lane `l` accumulates
/// elements `l, l+4, l+8, …` and the lanes are reduced as
/// `(lane0 + lane1) + (lane2 + lane3)`, then the `< 4` tail elements are
/// added left-to-right. Breaking the single serial dependency chain lets
/// the compiler keep four FMAs in flight (SIMD or superscalar); keeping the
/// chunking, lane assignment, and reduction tree *fixed* keeps the result
/// a pure function of the inputs — every caller (serial scorer, pooled
/// chunks, batched gemv) sees bit-identical scores. Callers guarantee
/// `a.len() == b.len()`; in debug builds this is asserted.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "kernels::dot length mismatch");
    let mut lanes = [0.0f64; DOT_LANES];
    let chunks = a.chunks_exact(DOT_LANES);
    let tail_a = chunks.remainder();
    let b_chunks = b.chunks_exact(DOT_LANES);
    let tail_b = b_chunks.remainder();
    for (ca, cb) in chunks.zip(b_chunks) {
        lanes[0] += ca[0] * cb[0];
        lanes[1] += ca[1] * cb[1];
        lanes[2] += ca[2] * cb[2];
        lanes[3] += ca[3] * cb[3];
    }
    let mut acc = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
    for (x, y) in tail_a.iter().zip(tail_b) {
        acc += x * y;
    }
    acc
}

/// Accumulator lane count for [`dot_f32`]: eight f32 lanes fill the same
/// 256-bit vector width as four f64 lanes.
pub const DOT_F32_LANES: usize = 8;

/// f32 dot product with an 8-lane fixed-reduction order, for the opt-in
/// f32 serving path.
///
/// Lane `l` accumulates elements `l, l+8, …`; the lanes are reduced
/// pairwise as `((l0+l1)+(l2+l3)) + ((l4+l5)+(l6+l7))`, then the `< 8`
/// tail is added left-to-right. Like [`dot`], the order is fixed so the
/// f32 path is deterministic; its *accuracy* contract relative to the f64
/// oracle is the bounded-relative-error property pinned by the
/// `f32_serving_oracle` suite (DESIGN.md §10c).
#[inline]
pub fn dot_f32(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len(), "kernels::dot_f32 length mismatch");
    let mut lanes = [0.0f32; DOT_F32_LANES];
    let chunks = a.chunks_exact(DOT_F32_LANES);
    let tail_a = chunks.remainder();
    let b_chunks = b.chunks_exact(DOT_F32_LANES);
    let tail_b = b_chunks.remainder();
    for (ca, cb) in chunks.zip(b_chunks) {
        for l in 0..DOT_F32_LANES {
            lanes[l] += ca[l] * cb[l];
        }
    }
    let mut acc = ((lanes[0] + lanes[1]) + (lanes[2] + lanes[3]))
        + ((lanes[4] + lanes[5]) + (lanes[6] + lanes[7]));
    for (x, y) in tail_a.iter().zip(tail_b) {
        acc += x * y;
    }
    acc
}

/// Dense matrix–vector product `out[r] = A[r, ·] · x` over all rows.
///
/// `a` is row-major with `a.len() == out.len() * k` and `x.len() == k`.
pub fn gemv_rowmajor(k: usize, a: &[f64], x: &[f64], out: &mut [f64]) {
    debug_assert_eq!(x.len(), k, "kernels::gemv_rowmajor x length");
    debug_assert_eq!(a.len(), out.len() * k, "kernels::gemv_rowmajor shape");
    for (row, slot) in a.chunks_exact(k).zip(out.iter_mut()) {
        *slot = dot(row, x);
    }
}

/// Gathered matrix–vector product: `out[i] = A[rows[i], ·] · x`.
///
/// `rows` holds row indices into the `W × K` row-major matrix `a`; candidates
/// resolved from a subset of the worker pool score through this without
/// materializing a packed copy of their rows.
pub fn gemv_gathered(k: usize, a: &[f64], rows: &[usize], x: &[f64], out: &mut [f64]) {
    debug_assert_eq!(x.len(), k, "kernels::gemv_gathered x length");
    debug_assert_eq!(rows.len(), out.len(), "kernels::gemv_gathered shape");
    for (&r, slot) in rows.iter().zip(out.iter_mut()) {
        *slot = dot(&a[r * k..(r + 1) * k], x);
    }
}

/// Row block size for [`gemv_gathered_batch`]: 64 rows × K=32 × 8 bytes is
/// 16 KiB, comfortably inside L1 together with the query vectors.
pub const GEMV_BLOCK_ROWS: usize = 64;

/// Cache-blocked batched gather-gemv: `outs[q][i] = A[rows[i], ·] · xs[q]`.
///
/// Iterates row blocks in the outer loop and queries in the inner loop, so a
/// block of gathered skill rows is loaded into cache once and reused for
/// every query in the batch. Per-element accumulation order is unchanged
/// (each `outs[q][i]` is still one left-to-right [`dot`]), so results are
/// bit-identical to `Q` independent [`gemv_gathered`] calls.
pub fn gemv_gathered_batch(
    k: usize,
    a: &[f64],
    rows: &[usize],
    xs: &[&[f64]],
    outs: &mut [Vec<f64>],
) {
    let done = gemv_gathered_batch_guarded(k, a, rows, xs, outs, &crate::guard::Unchecked);
    debug_assert_eq!(done, rows.len(), "Unchecked guard never stops the loop");
}

/// [`gemv_gathered_batch`] with a [`WorkGuard`] polled at every
/// [`GEMV_BLOCK_ROWS`]-row block boundary, charged `block_rows × queries`
/// units before the block runs. Returns how many rows were fully scored for
/// *every* query; entries past that prefix are zero-filled and must not be
/// read. With a guard that never fires the function scores everything and
/// is the implementation behind [`gemv_gathered_batch`] — bit-identical by
/// construction.
///
/// [`WorkGuard`]: crate::guard::WorkGuard
pub fn gemv_gathered_batch_guarded<G: crate::guard::WorkGuard>(
    k: usize,
    a: &[f64],
    rows: &[usize],
    xs: &[&[f64]],
    outs: &mut [Vec<f64>],
    guard: &G,
) -> usize {
    debug_assert_eq!(xs.len(), outs.len(), "kernels::gemv_gathered_batch shape");
    for out in outs.iter_mut() {
        out.clear();
        out.resize(rows.len(), 0.0);
    }
    let mut base = 0;
    for block in rows.chunks(GEMV_BLOCK_ROWS) {
        if !guard.consume(block.len() as u64 * xs.len().max(1) as u64) {
            return base;
        }
        for (x, out) in xs.iter().zip(outs.iter_mut()) {
            for (i, &r) in block.iter().enumerate() {
                out[base + i] = dot(&a[r * k..(r + 1) * k], x);
            }
        }
        base += block.len();
    }
    base
}

/// f32 variant of [`gemv_gathered_batch`]: same 64-row blocking, scores via
/// [`dot_f32`]. Serves the opt-in f32 `SkillMatrix` path.
pub fn gemv_gathered_batch_f32(
    k: usize,
    a: &[f32],
    rows: &[usize],
    xs: &[&[f32]],
    outs: &mut [Vec<f32>],
) {
    let done = gemv_gathered_batch_f32_guarded(k, a, rows, xs, outs, &crate::guard::Unchecked);
    debug_assert_eq!(done, rows.len(), "Unchecked guard never stops the loop");
}

/// [`gemv_gathered_batch_f32`] with a [`WorkGuard`] polled at every
/// [`GEMV_BLOCK_ROWS`]-row block boundary — identical charging and
/// completed-prefix semantics to [`gemv_gathered_batch_guarded`].
///
/// [`WorkGuard`]: crate::guard::WorkGuard
pub fn gemv_gathered_batch_f32_guarded<G: crate::guard::WorkGuard>(
    k: usize,
    a: &[f32],
    rows: &[usize],
    xs: &[&[f32]],
    outs: &mut [Vec<f32>],
    guard: &G,
) -> usize {
    debug_assert_eq!(
        xs.len(),
        outs.len(),
        "kernels::gemv_gathered_batch_f32 shape"
    );
    for out in outs.iter_mut() {
        out.clear();
        out.resize(rows.len(), 0.0);
    }
    let mut base = 0;
    for block in rows.chunks(GEMV_BLOCK_ROWS) {
        if !guard.consume(block.len() as u64 * xs.len().max(1) as u64) {
            return base;
        }
        for (x, out) in xs.iter().zip(outs.iter_mut()) {
            for (i, &r) in block.iter().enumerate() {
                out[base + i] = dot_f32(&a[r * k..(r + 1) * k], x);
            }
        }
        base += block.len();
    }
    base
}

/// Optimistic (UCB-style) score for one gathered row:
/// `mean · x + beta * sqrt(max(0, Σ_k vars[k] · x[k]²))`.
///
/// The variance accumulation runs left-to-right over `k`, matching the serial
/// loop in `TdpmModel::select_top_k_optimistic`, so the dense optimistic path
/// is bit-identical to the serial one.
#[inline]
pub fn ucb_score(mean_row: &[f64], var_row: &[f64], x: &[f64], beta: f64) -> f64 {
    debug_assert_eq!(mean_row.len(), x.len(), "kernels::ucb_score mean length");
    debug_assert_eq!(var_row.len(), x.len(), "kernels::ucb_score var length");
    let mean = dot(mean_row, x);
    let mut var = 0.0;
    for (v, xk) in var_row.iter().zip(x) {
        var += v * xk * xk;
    }
    mean + beta * var.max(0.0).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Vector;

    fn matrix(rows: usize, k: usize) -> Vec<f64> {
        (0..rows * k).map(|i| (i as f64) * 0.37 - 3.0).collect()
    }

    /// Transparent reference implementation of the documented 4-lane
    /// reduction order. [`dot`] must match it bitwise on every length —
    /// this pin is what lets every consumer (serial scorer, pooled chunks,
    /// batched gemv) claim bit-identity with each other.
    fn dot_lane_reference(a: &[f64], b: &[f64]) -> f64 {
        let mut lanes = [0.0f64; DOT_LANES];
        let n4 = (a.len() / DOT_LANES) * DOT_LANES;
        for i in (0..n4).step_by(DOT_LANES) {
            for l in 0..DOT_LANES {
                lanes[l] += a[i + l] * b[i + l];
            }
        }
        let mut acc = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
        for i in n4..a.len() {
            acc += a[i] * b[i];
        }
        acc
    }

    #[test]
    fn dot_matches_lane_reference_bitwise_on_every_length() {
        for n in 0..=33 {
            let a: Vec<f64> = (0..n).map(|i| (i as f64).sin() * 1e3).collect();
            let b: Vec<f64> = (0..n).map(|i| (i as f64).cos() / 7.0).collect();
            assert_eq!(
                dot(&a, &b).to_bits(),
                dot_lane_reference(&a, &b).to_bits(),
                "length {n}"
            );
        }
    }

    #[test]
    fn dot_stays_close_to_sequential_sum() {
        // The lane reduction reorders additions, so exact equality with the
        // old left-to-right sum is not expected — but on well-conditioned
        // inputs the two must agree to ~1 ulp-per-term.
        let a: Vec<f64> = (0..257).map(|i| (i as f64).sin() * 1e3).collect();
        let b: Vec<f64> = (0..257).map(|i| (i as f64).cos() / 7.0).collect();
        let va = Vector::from_vec(a.clone());
        let vb = Vector::from_vec(b.clone());
        let sequential = va.dot(&vb).unwrap();
        let laned = dot(&a, &b);
        let scale: f64 = a.iter().zip(&b).map(|(x, y)| (x * y).abs()).sum();
        assert!(
            (laned - sequential).abs() <= 1e-13 * scale.max(1.0),
            "laned={laned} sequential={sequential}"
        );
    }

    #[test]
    fn dot_f32_matches_documented_reduction_on_every_length() {
        for n in 0..=41 {
            let a: Vec<f32> = (0..n).map(|i| (i as f32).sin() * 1e2).collect();
            let b: Vec<f32> = (0..n).map(|i| (i as f32).cos() / 7.0).collect();
            // Inline reference of the documented 8-lane order.
            let mut lanes = [0.0f32; DOT_F32_LANES];
            let n8 = (n / DOT_F32_LANES) * DOT_F32_LANES;
            for i in (0..n8).step_by(DOT_F32_LANES) {
                for l in 0..DOT_F32_LANES {
                    lanes[l] += a[i + l] * b[i + l];
                }
            }
            let mut want = ((lanes[0] + lanes[1]) + (lanes[2] + lanes[3]))
                + ((lanes[4] + lanes[5]) + (lanes[6] + lanes[7]));
            for i in n8..n {
                want += a[i] * b[i];
            }
            assert_eq!(dot_f32(&a, &b).to_bits(), want.to_bits(), "length {n}");
        }
    }

    #[test]
    fn f32_batched_bit_identical_to_independent_f32_dots() {
        let k = 9;
        let rows_n = GEMV_BLOCK_ROWS + 21;
        let a: Vec<f32> = (0..rows_n * k).map(|i| (i as f32) * 0.37 - 3.0).collect();
        let rows: Vec<usize> = (0..rows_n).rev().collect();
        let q0: Vec<f32> = (0..k).map(|i| (i as f32) * 0.1).collect();
        let q1: Vec<f32> = (0..k).map(|i| 1.0 - i as f32).collect();
        let xs: Vec<&[f32]> = vec![&q0, &q1];
        let mut outs = vec![Vec::new(), Vec::new()];
        gemv_gathered_batch_f32(k, &a, &rows, &xs, &mut outs);
        for (x, out) in xs.iter().zip(&outs) {
            for (i, &r) in rows.iter().enumerate() {
                assert_eq!(
                    out[i].to_bits(),
                    dot_f32(&a[r * k..(r + 1) * k], x).to_bits()
                );
            }
        }
    }

    #[test]
    fn f32_guarded_batch_stops_at_a_block_boundary() {
        use crate::guard::WorkGuard;
        use std::sync::atomic::{AtomicU64, Ordering};
        struct Budget(AtomicU64);
        impl WorkGuard for Budget {
            fn consume(&self, units: u64) -> bool {
                self.0
                    .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |r| r.checked_sub(units))
                    .is_ok()
            }
        }
        let k = 4;
        let rows_n = GEMV_BLOCK_ROWS * 3;
        let a: Vec<f32> = (0..rows_n * k).map(|i| (i as f32) * 0.11 - 2.0).collect();
        let rows: Vec<usize> = (0..rows_n).collect();
        let q0: Vec<f32> = (0..k).map(|i| 0.3 - i as f32).collect();
        let xs: Vec<&[f32]> = vec![&q0];
        let mut outs = vec![Vec::new()];
        let guard = Budget(AtomicU64::new(GEMV_BLOCK_ROWS as u64));
        let done = gemv_gathered_batch_f32_guarded(k, &a, &rows, &xs, &mut outs, &guard);
        assert_eq!(done, GEMV_BLOCK_ROWS);
        assert!(outs[0][done..].iter().all(|&v| v == 0.0));
    }

    #[test]
    fn gemv_rowmajor_scores_every_row() {
        let k = 5;
        let a = matrix(4, k);
        let x: Vec<f64> = (0..k).map(|i| i as f64 + 0.5).collect();
        let mut out = vec![0.0; 4];
        gemv_rowmajor(k, &a, &x, &mut out);
        for r in 0..4 {
            assert_eq!(out[r].to_bits(), dot(&a[r * k..(r + 1) * k], &x).to_bits());
        }
    }

    #[test]
    fn gathered_matches_rowmajor_on_identity_gather() {
        let k = 3;
        let a = matrix(6, k);
        let x = vec![1.0, -2.0, 0.25];
        let rows: Vec<usize> = (0..6).collect();
        let mut full = vec![0.0; 6];
        let mut gathered = vec![0.0; 6];
        gemv_rowmajor(k, &a, &x, &mut full);
        gemv_gathered(k, &a, &rows, &x, &mut gathered);
        assert_eq!(full, gathered);
    }

    #[test]
    fn gathered_respects_row_permutation() {
        let k = 2;
        let a = matrix(5, k);
        let x = vec![0.5, 2.0];
        let rows = vec![4, 0, 2];
        let mut out = vec![0.0; 3];
        gemv_gathered(k, &a, &rows, &x, &mut out);
        assert_eq!(out[0].to_bits(), dot(&a[8..10], &x).to_bits());
        assert_eq!(out[1].to_bits(), dot(&a[0..2], &x).to_bits());
        assert_eq!(out[2].to_bits(), dot(&a[4..6], &x).to_bits());
    }

    #[test]
    fn batched_bit_identical_to_independent_gemvs() {
        let k = 7;
        // More rows than one block so the blocking loop actually iterates.
        let rows_n = GEMV_BLOCK_ROWS * 2 + 13;
        let a = matrix(rows_n, k);
        let rows: Vec<usize> = (0..rows_n).rev().collect();
        let q0: Vec<f64> = (0..k).map(|i| (i as f64) * 0.1).collect();
        let q1: Vec<f64> = (0..k).map(|i| 1.0 - i as f64).collect();
        let xs: Vec<&[f64]> = vec![&q0, &q1];
        let mut outs = vec![Vec::new(), Vec::new()];
        gemv_gathered_batch(k, &a, &rows, &xs, &mut outs);
        for (x, out) in xs.iter().zip(&outs) {
            let mut reference = vec![0.0; rows_n];
            gemv_gathered(k, &a, &rows, x, &mut reference);
            let got: Vec<u64> = out.iter().map(|v| v.to_bits()).collect();
            let want: Vec<u64> = reference.iter().map(|v| v.to_bits()).collect();
            assert_eq!(got, want);
        }
    }

    #[test]
    fn guarded_batch_stops_at_a_block_boundary() {
        use crate::guard::WorkGuard;
        use std::sync::atomic::{AtomicU64, Ordering};
        struct Budget(AtomicU64);
        impl WorkGuard for Budget {
            fn consume(&self, units: u64) -> bool {
                self.0
                    .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |r| r.checked_sub(units))
                    .is_ok()
            }
        }
        let k = 4;
        let rows_n = GEMV_BLOCK_ROWS * 3;
        let a = matrix(rows_n, k);
        let rows: Vec<usize> = (0..rows_n).collect();
        let q0: Vec<f64> = (0..k).map(|i| 0.3 - i as f64).collect();
        let xs: Vec<&[f64]> = vec![&q0];
        let mut outs = vec![Vec::new()];
        // Budget admits exactly two blocks (block.len() × 1 query each).
        let guard = Budget(AtomicU64::new(2 * GEMV_BLOCK_ROWS as u64));
        let done = gemv_gathered_batch_guarded(k, &a, &rows, &xs, &mut outs, &guard);
        assert_eq!(done, 2 * GEMV_BLOCK_ROWS);
        // The completed prefix is bit-identical to the unguarded kernel.
        let mut reference = vec![Vec::new()];
        gemv_gathered_batch(k, &a, &rows, &xs, &mut reference);
        for i in 0..done {
            assert_eq!(outs[0][i].to_bits(), reference[0][i].to_bits());
        }
        // Rows past the stop point were never scored.
        assert!(outs[0][done..].iter().all(|&v| v == 0.0));
    }

    #[test]
    fn ucb_score_matches_serial_formula() {
        let mean = vec![0.2, -0.4, 1.5];
        let var = vec![0.1, 0.3, 0.0];
        let x = vec![1.0, 2.0, -1.0];
        let beta = 0.7;
        let mut v = 0.0;
        for kk in 0..3 {
            v += var[kk] * x[kk] * x[kk];
        }
        let want = dot(&mean, &x) + beta * v.max(0.0).sqrt();
        assert_eq!(ucb_score(&mean, &var, &x, beta).to_bits(), want.to_bits());
    }

    #[test]
    fn ucb_negative_variance_clamped() {
        let mean = vec![1.0];
        let var = vec![-4.0];
        let x = vec![1.0];
        assert_eq!(ucb_score(&mean, &var, &x, 1.0), 1.0);
    }
}
