//! Structural-invariant checks for numerical containers.
//!
//! [`Validate`] is a *read-only* deep check: it never mutates, rounds or
//! repairs, so running it cannot perturb the numerics it inspects. Checks
//! return a description of the first violated invariant instead of
//! panicking; callers choose the failure mode (the core trainer turns
//! violations into panics in debug builds, property tests into assertions).
//!
//! These checks are meant for debug builds and opt-in release validation —
//! they are O(size of the container) and deliberately trade speed for
//! diagnostic detail.

use crate::{Cholesky, Matrix, Vector};

/// A type whose structural invariants can be checked in place.
pub trait Validate {
    /// Returns `Err` describing the first violated invariant, `Ok` otherwise.
    fn validate(&self) -> Result<(), String>;
}

impl Validate for Vector {
    /// Every entry must be finite.
    fn validate(&self) -> Result<(), String> {
        match self.as_slice().iter().position(|x| !x.is_finite()) {
            None => Ok(()),
            Some(i) => Err(format!("vector[{i}] = {} is not finite", self[i])),
        }
    }
}

impl Validate for Matrix {
    /// Every entry must be finite.
    fn validate(&self) -> Result<(), String> {
        for r in 0..self.rows() {
            if let Some(c) = self.row(r).iter().position(|x| !x.is_finite()) {
                return Err(format!(
                    "matrix[({r}, {c})] = {} is not finite",
                    self[(r, c)]
                ));
            }
        }
        Ok(())
    }
}

impl Validate for Cholesky {
    /// The lower factor must be finite with a strictly positive diagonal
    /// (equivalently: the factored matrix is positive definite).
    fn validate(&self) -> Result<(), String> {
        self.l().validate()?;
        for i in 0..self.dim() {
            let d = self.l()[(i, i)];
            if d <= 0.0 {
                return Err(format!(
                    "cholesky diagonal L[({i}, {i})] = {d} is not positive"
                ));
            }
        }
        Ok(())
    }
}

/// Checks `m` is square and symmetric to within `tol` (absolute, on the
/// worst element pair).
pub fn check_symmetric(m: &Matrix, tol: f64) -> Result<(), String> {
    if !m.is_square() {
        return Err(format!("matrix is {}×{}, not square", m.rows(), m.cols()));
    }
    let asym = m.asymmetry();
    if asym > tol {
        return Err(format!(
            "matrix asymmetry {asym:e} exceeds tolerance {tol:e}"
        ));
    }
    Ok(())
}

/// Checks every diagonal entry of `m` is at least `min` (covariance floors:
/// a prior variance collapsing below `min_prior_var` signals a degenerate
/// M-step).
pub fn check_min_diag(m: &Matrix, min: f64) -> Result<(), String> {
    let n = m.rows().min(m.cols());
    for i in 0..n {
        let d = m[(i, i)];
        if d.is_nan() || d < min {
            return Err(format!(
                "diagonal[({i}, {i})] = {d} is below the floor {min}"
            ));
        }
    }
    Ok(())
}

/// Checks every entry of `v` is finite and at least `min` (variance vectors).
pub fn check_min_entries(v: &Vector, min: f64) -> Result<(), String> {
    for (i, &x) in v.as_slice().iter().enumerate() {
        if !(x.is_finite() && x >= min) {
            return Err(format!(
                "entry[{i}] = {x} is not finite or below the floor {min}"
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finite_vector_passes() {
        assert!(Vector::from_vec(vec![1.0, -2.0, 0.0]).validate().is_ok());
    }

    #[test]
    fn nan_vector_fails_with_index() {
        let v = Vector::from_vec(vec![1.0, f64::NAN, 0.0]);
        let msg = v.validate().unwrap_err();
        assert!(msg.contains("vector[1]"), "{msg}");
    }

    #[test]
    fn infinite_matrix_fails_with_coordinates() {
        let mut m = Matrix::identity(3);
        m[(2, 1)] = f64::INFINITY;
        let msg = m.validate().unwrap_err();
        assert!(msg.contains("(2, 1)"), "{msg}");
    }

    #[test]
    fn cholesky_of_spd_passes() {
        let a = Matrix::from_rows(2, 2, vec![4.0, 1.0, 1.0, 3.0]).unwrap();
        assert!(Cholesky::factor(&a).unwrap().validate().is_ok());
    }

    #[test]
    fn symmetry_check_distinguishes() {
        let mut m = Matrix::identity(2);
        assert!(check_symmetric(&m, 1e-12).is_ok());
        m[(0, 1)] = 1e-3;
        assert!(check_symmetric(&m, 1e-6).is_err());
        assert!(check_symmetric(&Matrix::zeros(2, 3), 1.0).is_err());
    }

    #[test]
    fn min_diag_floor_enforced() {
        let m = Matrix::from_diag(&Vector::from_vec(vec![0.5, 0.1]));
        assert!(check_min_diag(&m, 0.1).is_ok());
        assert!(check_min_diag(&m, 0.2).is_err());
        // NaN diagonals fail (the comparison is written NaN-safe).
        let bad = Matrix::from_diag(&Vector::from_vec(vec![f64::NAN]));
        assert!(check_min_diag(&bad, 0.0).is_err());
    }

    #[test]
    fn min_entries_floor_enforced() {
        let v = Vector::from_vec(vec![0.3, 0.2]);
        assert!(check_min_entries(&v, 0.1).is_ok());
        assert!(check_min_entries(&v, 0.25).is_err());
    }
}
