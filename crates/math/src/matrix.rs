//! Dense row-major `f64` matrix sized for small latent spaces.

use crate::{MathError, Result, Vector};
use serde::{Deserialize, Serialize};

/// A dense row-major matrix.
///
/// The inference engine only manipulates `K × K` covariance/precision matrices
/// (`K` ≤ ~100), so the implementation favours clarity and numerical hygiene
/// over blocking or SIMD.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates an `n × n` diagonal matrix from `diag`.
    pub fn from_diag(diag: &Vector) -> Self {
        let n = diag.len();
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = diag[i];
        }
        m
    }

    /// Creates a matrix from a row-major `Vec`.
    ///
    /// Returns an error if `data.len() != rows * cols`.
    pub fn from_rows(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(MathError::DimensionMismatch {
                op: "Matrix::from_rows",
                left: rows * cols,
                right: data.len(),
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Builds a matrix by evaluating `f` at each `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `true` when the matrix is square.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Overwrites `self` with the contents of `other` without reallocating.
    ///
    /// Lets inference loops reset a scratch precision matrix to a prior
    /// instead of cloning the prior on every update.
    pub fn copy_from(&mut self, other: &Matrix) -> Result<()> {
        if self.rows != other.rows || self.cols != other.cols {
            return Err(MathError::DimensionMismatch {
                op: "Matrix::copy_from",
                left: self.rows * self.cols,
                right: other.rows * other.cols,
            });
        }
        self.data.copy_from_slice(&other.data);
        Ok(())
    }

    /// Immutable row slice.
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable row slice.
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The main diagonal as a vector (requires a square matrix).
    pub fn diag(&self) -> Vector {
        let n = self.rows.min(self.cols);
        Vector::from_fn(n, |i| self[(i, i)])
    }

    /// Matrix–vector product `self * x`.
    pub fn matvec(&self, x: &Vector) -> Result<Vector> {
        if self.cols != x.len() {
            return Err(MathError::DimensionMismatch {
                op: "Matrix::matvec",
                left: self.cols,
                right: x.len(),
            });
        }
        Ok(Vector::from_fn(self.rows, |r| {
            self.row(r)
                .iter()
                .zip(x.as_slice())
                .map(|(a, b)| a * b)
                .sum()
        }))
    }

    /// Matrix–matrix product `self * other`.
    pub fn matmul(&self, other: &Matrix) -> Result<Matrix> {
        if self.cols != other.rows {
            return Err(MathError::DimensionMismatch {
                op: "Matrix::matmul",
                left: self.cols,
                right: other.rows,
            });
        }
        let mut out = Matrix::zeros(self.rows, other.cols);
        for r in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(r, k)];
                if a == 0.0 {
                    continue;
                }
                let orow = other.row(k);
                let out_row = out.row_mut(r);
                for c in 0..other.cols {
                    out_row[c] += a * orow[c];
                }
            }
        }
        Ok(out)
    }

    /// Transpose as a new matrix.
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |r, c| self[(c, r)])
    }

    /// In-place `self += other`.
    pub fn add_assign(&mut self, other: &Matrix) -> Result<()> {
        self.check_same_shape(other, "Matrix::add_assign")?;
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
        Ok(())
    }

    /// In-place `self += alpha * other`.
    pub fn axpy(&mut self, alpha: f64, other: &Matrix) -> Result<()> {
        self.check_same_shape(other, "Matrix::axpy")?;
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
        Ok(())
    }

    /// In-place scaling `self *= s`.
    pub fn scale(&mut self, s: f64) {
        for x in &mut self.data {
            *x *= s;
        }
    }

    /// Adds `alpha * x xᵀ` to `self` (symmetric rank-1 update).
    pub fn add_outer(&mut self, alpha: f64, x: &Vector) -> Result<()> {
        if !self.is_square() || self.rows != x.len() {
            return Err(MathError::DimensionMismatch {
                op: "Matrix::add_outer",
                left: self.rows,
                right: x.len(),
            });
        }
        for r in 0..self.rows {
            let xr = alpha * x[r];
            let row = self.row_mut(r);
            for (c, value) in row.iter_mut().enumerate() {
                *value += xr * x[c];
            }
        }
        Ok(())
    }

    /// Adds `v[i]` to each diagonal entry `self[(i, i)]`.
    pub fn add_diag(&mut self, v: &Vector) -> Result<()> {
        if !self.is_square() || self.rows != v.len() {
            return Err(MathError::DimensionMismatch {
                op: "Matrix::add_diag",
                left: self.rows,
                right: v.len(),
            });
        }
        for i in 0..self.rows {
            self[(i, i)] += v[i];
        }
        Ok(())
    }

    /// Adds `s` to every diagonal entry (Tikhonov ridge / jitter).
    pub fn add_ridge(&mut self, s: f64) {
        let n = self.rows.min(self.cols);
        for i in 0..n {
            self[(i, i)] += s;
        }
    }

    /// Quadratic form `xᵀ self x` (requires square).
    pub fn quad_form(&self, x: &Vector) -> Result<f64> {
        let mx = self.matvec(x)?;
        x.dot(&mx)
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// `true` if every entry is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    /// Maximum absolute asymmetry `max |A[i,j] - A[j,i]|` (requires square).
    pub fn asymmetry(&self) -> f64 {
        let mut worst: f64 = 0.0;
        for r in 0..self.rows {
            for c in (r + 1)..self.cols {
                worst = worst.max((self[(r, c)] - self[(c, r)]).abs());
            }
        }
        worst
    }

    /// Forces exact symmetry by averaging `A` and `Aᵀ` in place.
    pub fn symmetrize(&mut self) {
        for r in 0..self.rows {
            for c in (r + 1)..self.cols {
                let avg = 0.5 * (self[(r, c)] + self[(c, r)]);
                self[(r, c)] = avg;
                self[(c, r)] = avg;
            }
        }
    }

    fn check_same_shape(&self, other: &Matrix, op: &'static str) -> Result<()> {
        if self.rows != other.rows || self.cols != other.cols {
            return Err(MathError::DimensionMismatch {
                op,
                left: self.rows * self.cols,
                right: other.rows * other.cols,
            });
        }
        Ok(())
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        &mut self.data[r * self.cols + c]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example() -> Matrix {
        Matrix::from_rows(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap()
    }

    #[test]
    fn identity_matvec_is_noop() {
        let x = Vector::from_vec(vec![1.0, -2.0, 3.0]);
        let y = Matrix::identity(3).matvec(&x).unwrap();
        assert_eq!(x, y);
    }

    #[test]
    fn matvec_known_values() {
        let m = example();
        let x = Vector::from_vec(vec![1.0, 1.0]);
        assert_eq!(m.matvec(&x).unwrap().as_slice(), &[3.0, 7.0]);
    }

    #[test]
    fn matmul_known_values() {
        let m = example();
        let p = m.matmul(&m).unwrap();
        assert_eq!(p.row(0), &[7.0, 10.0]);
        assert_eq!(p.row(1), &[15.0, 22.0]);
    }

    #[test]
    fn matmul_dimension_mismatch() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(a.matmul(&b).is_err());
    }

    #[test]
    fn transpose_involution() {
        let m = Matrix::from_rows(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose()[(2, 1)], m[(1, 2)]);
    }

    #[test]
    fn add_outer_rank_one() {
        let mut m = Matrix::zeros(2, 2);
        let x = Vector::from_vec(vec![1.0, 2.0]);
        m.add_outer(2.0, &x).unwrap();
        assert_eq!(m.row(0), &[2.0, 4.0]);
        assert_eq!(m.row(1), &[4.0, 8.0]);
    }

    #[test]
    fn quad_form_matches_manual() {
        let m = example();
        let x = Vector::from_vec(vec![1.0, 2.0]);
        // [1 2; 3 4], x = [1,2]: Mx = [5, 11], xᵀMx = 5 + 22 = 27
        assert_eq!(m.quad_form(&x).unwrap(), 27.0);
    }

    #[test]
    fn diag_and_from_diag_roundtrip() {
        let d = Vector::from_vec(vec![1.0, 2.0, 3.0]);
        assert_eq!(Matrix::from_diag(&d).diag(), d);
    }

    #[test]
    fn symmetrize_removes_asymmetry() {
        let mut m = Matrix::from_rows(2, 2, vec![1.0, 2.0, 4.0, 1.0]).unwrap();
        assert_eq!(m.asymmetry(), 2.0);
        m.symmetrize();
        assert_eq!(m.asymmetry(), 0.0);
        assert_eq!(m[(0, 1)], 3.0);
    }

    #[test]
    fn ridge_shifts_diagonal_only() {
        let mut m = Matrix::zeros(2, 2);
        m.add_ridge(0.5);
        assert_eq!(m[(0, 0)], 0.5);
        assert_eq!(m[(1, 1)], 0.5);
        assert_eq!(m[(0, 1)], 0.0);
    }

    #[test]
    fn from_rows_validates_len() {
        assert!(Matrix::from_rows(2, 2, vec![1.0]).is_err());
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Matrix::identity(2);
        let b = Matrix::identity(2);
        a.axpy(2.0, &b).unwrap();
        assert_eq!(a[(0, 0)], 3.0);
        assert_eq!(a[(0, 1)], 0.0);
    }
}
