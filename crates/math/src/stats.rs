//! Sample statistics used by the variational M-step (paper Eqs. 16–19).

use crate::{MathError, Matrix, Result, Vector};

/// Mean of a collection of equally sized vectors.
///
/// Errors if the collection is empty or the vectors disagree in length.
pub fn mean(samples: &[Vector]) -> Result<Vector> {
    let first = samples.first().ok_or(MathError::DomainError {
        routine: "stats::mean",
        message: "empty sample set",
    })?;
    let n = first.len();
    let mut out = Vector::zeros(n);
    for s in samples {
        out.add_assign(s)?;
    }
    out.scale(1.0 / samples.len() as f64);
    Ok(out)
}

/// Population covariance `1/N Σ (x − μ)(x − μ)ᵀ` around a supplied mean.
///
/// The M-step covariance (Eq. 17 / 19) additionally adds the mean of the
/// per-sample diagonal variational variances — callers do that themselves via
/// [`Matrix::add_diag`]; this function only handles the scatter part.
pub fn covariance_about(samples: &[Vector], mu: &Vector) -> Result<Matrix> {
    if samples.is_empty() {
        return Err(MathError::DomainError {
            routine: "stats::covariance_about",
            message: "empty sample set",
        });
    }
    let k = mu.len();
    let mut cov = Matrix::zeros(k, k);
    for s in samples {
        let d = s.sub(mu)?;
        cov.add_outer(1.0, &d)?;
    }
    cov.scale(1.0 / samples.len() as f64);
    cov.symmetrize();
    Ok(cov)
}

/// Scalar sample mean.
pub fn scalar_mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Scalar sample variance (population, divide by N).
pub fn scalar_variance(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let m = scalar_mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Pearson correlation of two equally long slices; 0.0 when either side is
/// constant (degenerate denominator).
pub fn pearson(xs: &[f64], ys: &[f64]) -> Result<f64> {
    if xs.len() != ys.len() {
        return Err(MathError::DimensionMismatch {
            op: "stats::pearson",
            left: xs.len(),
            right: ys.len(),
        });
    }
    if xs.is_empty() {
        return Ok(0.0);
    }
    let mx = scalar_mean(xs);
    let my = scalar_mean(ys);
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        sxy += (x - mx) * (y - my);
        sxx += (x - mx) * (x - mx);
        syy += (y - my) * (y - my);
    }
    if sxx == 0.0 || syy == 0.0 {
        return Ok(0.0);
    }
    Ok(sxy / (sxx.sqrt() * syy.sqrt()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_of_vectors() {
        let samples = vec![
            Vector::from_vec(vec![1.0, 2.0]),
            Vector::from_vec(vec![3.0, 4.0]),
        ];
        let m = mean(&samples).unwrap();
        assert_eq!(m.as_slice(), &[2.0, 3.0]);
    }

    #[test]
    fn mean_of_empty_errors() {
        assert!(mean(&[]).is_err());
    }

    #[test]
    fn covariance_of_known_points() {
        // Points (±1, ∓1) around mean (0,0): variance 1 each, covariance −1.
        let samples = vec![
            Vector::from_vec(vec![1.0, -1.0]),
            Vector::from_vec(vec![-1.0, 1.0]),
        ];
        let mu = Vector::zeros(2);
        let c = covariance_about(&samples, &mu).unwrap();
        assert_eq!(c[(0, 0)], 1.0);
        assert_eq!(c[(1, 1)], 1.0);
        assert_eq!(c[(0, 1)], -1.0);
        assert_eq!(c[(1, 0)], -1.0);
    }

    #[test]
    fn scalar_stats() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(scalar_mean(&xs), 2.5);
        assert!((scalar_variance(&xs) - 1.25).abs() < 1e-12);
        assert_eq!(scalar_mean(&[]), 0.0);
        assert_eq!(scalar_variance(&[]), 0.0);
    }

    #[test]
    fn pearson_perfect_and_degenerate() {
        let xs = [1.0, 2.0, 3.0];
        let pos = pearson(&xs, &[2.0, 4.0, 6.0]).unwrap();
        assert!((pos - 1.0).abs() < 1e-12);
        let neg = pearson(&xs, &[3.0, 2.0, 1.0]).unwrap();
        assert!((neg + 1.0).abs() < 1e-12);
        let flat = pearson(&xs, &[5.0, 5.0, 5.0]).unwrap();
        assert_eq!(flat, 0.0);
        assert!(pearson(&xs, &[1.0]).is_err());
    }
}
