//! Cholesky factorization of symmetric positive-definite matrices.
//!
//! The closed-form worker-skill update (paper Eq. 10) solves
//! `(Σ_w⁻¹ + τ⁻² Σ_j E[c cᵀ]) λ_w = rhs` for every worker each E-step; the
//! precision matrix is SPD by construction, so a Cholesky solve is both the
//! fastest and the most numerically robust option at these sizes.

use crate::{MathError, Matrix, Result, Vector};

/// A lower-triangular Cholesky factor `L` with `L Lᵀ = A`.
#[derive(Debug, Clone)]
pub struct Cholesky {
    l: Matrix,
}

impl Cholesky {
    /// Factorizes a symmetric positive-definite matrix.
    ///
    /// Only the lower triangle of `a` is read; the caller is responsible for
    /// `a` being symmetric (use [`Matrix::symmetrize`] when accumulating
    /// covariances from floating-point sums).
    pub fn factor(a: &Matrix) -> Result<Self> {
        if !a.is_square() {
            return Err(MathError::DimensionMismatch {
                op: "Cholesky::factor",
                left: a.rows(),
                right: a.cols(),
            });
        }
        let n = a.rows();
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = a[(i, j)];
                for k in 0..j {
                    sum -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    if sum <= 0.0 || !sum.is_finite() {
                        return Err(MathError::NotPositiveDefinite { pivot: i });
                    }
                    l[(i, j)] = sum.sqrt();
                } else {
                    l[(i, j)] = sum / l[(j, j)];
                }
            }
        }
        Ok(Cholesky { l })
    }

    /// Factorizes `a`, adding `jitter * I` and retrying (doubling each time,
    /// up to `max_tries`) if the matrix is numerically indefinite.
    ///
    /// Variational covariances are SPD in exact arithmetic but can lose
    /// definiteness to rounding after many accumulation steps; a tiny ridge
    /// restores it without visibly changing the solution.
    pub fn factor_with_jitter(a: &Matrix, jitter: f64, max_tries: usize) -> Result<Self> {
        match Cholesky::factor(a) {
            Ok(c) => Ok(c),
            Err(_) => {
                let mut eps = jitter;
                for _ in 0..max_tries {
                    let mut aj = a.clone();
                    aj.add_ridge(eps);
                    if let Ok(c) = Cholesky::factor(&aj) {
                        return Ok(c);
                    }
                    eps *= 2.0;
                }
                Err(MathError::NotPositiveDefinite { pivot: 0 })
            }
        }
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.l.rows()
    }

    /// The lower-triangular factor `L`.
    pub fn l(&self) -> &Matrix {
        &self.l
    }

    /// Solves `A x = b` via forward + back substitution.
    pub fn solve(&self, b: &Vector) -> Result<Vector> {
        let n = self.dim();
        if b.len() != n {
            return Err(MathError::DimensionMismatch {
                op: "Cholesky::solve",
                left: n,
                right: b.len(),
            });
        }
        // Forward: L y = b
        let mut y = Vector::zeros(n);
        for i in 0..n {
            let mut sum = b[i];
            for k in 0..i {
                sum -= self.l[(i, k)] * y[k];
            }
            y[i] = sum / self.l[(i, i)];
        }
        // Back: Lᵀ x = y
        let mut x = Vector::zeros(n);
        for i in (0..n).rev() {
            let mut sum = y[i];
            for k in (i + 1)..n {
                sum -= self.l[(k, i)] * x[k];
            }
            x[i] = sum / self.l[(i, i)];
        }
        Ok(x)
    }

    /// Computes `A⁻¹` by solving against each basis vector.
    pub fn inverse(&self) -> Result<Matrix> {
        let n = self.dim();
        let mut inv = Matrix::zeros(n, n);
        let mut e = Vector::zeros(n);
        for j in 0..n {
            e[j] = 1.0;
            let col = self.solve(&e)?;
            for i in 0..n {
                inv[(i, j)] = col[i];
            }
            e[j] = 0.0;
        }
        // The inverse of an SPD matrix is symmetric; enforce it exactly.
        inv.symmetrize();
        Ok(inv)
    }

    /// `log det A = 2 Σ log L[i,i]`.
    pub fn log_det(&self) -> f64 {
        let mut s = 0.0;
        for i in 0..self.dim() {
            s += self.l[(i, i)].ln();
        }
        2.0 * s
    }

    /// Applies `L x` — used to sample `μ + L z` from `Normal(μ, A)`.
    pub fn l_matvec(&self, x: &Vector) -> Result<Vector> {
        self.l.matvec(x)
    }

    /// Rank-1 update in place: after the call, `L Lᵀ = A + x xᵀ`.
    ///
    /// Classic `cholupdate` via Givens-style rotations — O(K²) instead of
    /// the O(K³) refactorization. This is what makes the incremental
    /// skill update (one new `(task, score)` observation adds
    /// `λ_c λ_cᵀ + diag(ν_c²)` to a worker's precision) cheap enough to run
    /// on every piece of feedback.
    pub fn rank_one_update(&mut self, x: &Vector) -> Result<()> {
        let n = self.dim();
        if x.len() != n {
            return Err(MathError::DimensionMismatch {
                op: "Cholesky::rank_one_update",
                left: n,
                right: x.len(),
            });
        }
        let mut work = x.clone();
        for kcol in 0..n {
            let lkk = self.l[(kcol, kcol)];
            let wk = work[kcol];
            let r = (lkk * lkk + wk * wk).sqrt();
            if r <= 0.0 || !r.is_finite() {
                return Err(MathError::NotPositiveDefinite { pivot: kcol });
            }
            let c = r / lkk;
            let s = wk / lkk;
            self.l[(kcol, kcol)] = r;
            for row in (kcol + 1)..n {
                let lrk = self.l[(row, kcol)];
                self.l[(row, kcol)] = (lrk + s * work[row]) / c;
                work[row] = c * work[row] - s * self.l[(row, kcol)];
            }
        }
        Ok(())
    }

    /// Diagonal update in place: after the call, `L Lᵀ = A + diag(d)` with
    /// `d ≥ 0`, applied as `n` rank-1 updates with unit basis vectors
    /// scaled by `√d_i` (each costs O((n − i)²)).
    pub fn diag_update(&mut self, d: &Vector) -> Result<()> {
        let n = self.dim();
        if d.len() != n {
            return Err(MathError::DimensionMismatch {
                op: "Cholesky::diag_update",
                left: n,
                right: d.len(),
            });
        }
        let mut e = Vector::zeros(n);
        for i in 0..n {
            if d[i] < 0.0 {
                return Err(MathError::DomainError {
                    routine: "Cholesky::diag_update",
                    message: "diagonal increments must be non-negative",
                });
            }
            if d[i] == 0.0 {
                continue;
            }
            e[i] = d[i].sqrt();
            self.rank_one_update(&e)?;
            e[i] = 0.0;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd3() -> Matrix {
        // A = B Bᵀ + I for B = [[1,0,0],[2,1,0],[1,2,3]] is SPD.
        Matrix::from_rows(3, 3, vec![2.0, 2.0, 1.0, 2.0, 6.0, 4.0, 1.0, 4.0, 15.0]).unwrap()
    }

    #[test]
    fn factor_roundtrip() {
        let a = spd3();
        let c = Cholesky::factor(&a).unwrap();
        let recon = c.l().matmul(&c.l().transpose()).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                assert!((recon[(i, j)] - a[(i, j)]).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn solve_matches_direct() {
        let a = spd3();
        let c = Cholesky::factor(&a).unwrap();
        let b = Vector::from_vec(vec![1.0, 2.0, 3.0]);
        let x = c.solve(&b).unwrap();
        let ax = a.matvec(&x).unwrap();
        for i in 0..3 {
            assert!((ax[i] - b[i]).abs() < 1e-10);
        }
    }

    #[test]
    fn inverse_times_matrix_is_identity() {
        let a = spd3();
        let inv = Cholesky::factor(&a).unwrap().inverse().unwrap();
        let prod = a.matmul(&inv).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((prod[(i, j)] - expect).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn log_det_of_diagonal() {
        let a = Matrix::from_diag(&Vector::from_vec(vec![2.0, 3.0, 4.0]));
        let c = Cholesky::factor(&a).unwrap();
        assert!((c.log_det() - (24.0f64).ln()).abs() < 1e-12);
    }

    #[test]
    fn indefinite_matrix_rejected() {
        let a = Matrix::from_rows(2, 2, vec![1.0, 2.0, 2.0, 1.0]).unwrap();
        assert!(matches!(
            Cholesky::factor(&a),
            Err(MathError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn jitter_recovers_near_singular() {
        // Rank-deficient (outer product) — singular without jitter.
        let mut a = Matrix::zeros(2, 2);
        a.add_outer(1.0, &Vector::from_vec(vec![1.0, 1.0])).unwrap();
        assert!(Cholesky::factor(&a).is_err());
        let c = Cholesky::factor_with_jitter(&a, 1e-8, 40).unwrap();
        assert!(c.log_det().is_finite());
    }

    #[test]
    fn rank_one_update_matches_refactorization() {
        let a = spd3();
        let x = Vector::from_vec(vec![0.7, -1.2, 0.4]);
        let mut updated = Cholesky::factor(&a).unwrap();
        updated.rank_one_update(&x).unwrap();

        let mut a_plus = a.clone();
        a_plus.add_outer(1.0, &x).unwrap();
        let fresh = Cholesky::factor(&a_plus).unwrap();

        // Same solves (factors are unique up to sign; compare behaviour).
        let b = Vector::from_vec(vec![1.0, -2.0, 0.5]);
        let xa = updated.solve(&b).unwrap();
        let xb = fresh.solve(&b).unwrap();
        for i in 0..3 {
            assert!(
                (xa[i] - xb[i]).abs() < 1e-9,
                "coord {i}: {} vs {}",
                xa[i],
                xb[i]
            );
        }
        assert!((updated.log_det() - fresh.log_det()).abs() < 1e-9);
    }

    #[test]
    fn repeated_rank_one_updates_stay_accurate() {
        let a = spd3();
        let mut incremental = Cholesky::factor(&a).unwrap();
        let mut accumulated = a.clone();
        for step in 0..20 {
            let x = Vector::from_fn(3, |i| ((step * 3 + i) as f64 * 0.7).sin());
            incremental.rank_one_update(&x).unwrap();
            accumulated.add_outer(1.0, &x).unwrap();
        }
        let fresh = Cholesky::factor(&accumulated).unwrap();
        let b = Vector::from_vec(vec![0.3, 0.3, 0.3]);
        let xa = incremental.solve(&b).unwrap();
        let xb = fresh.solve(&b).unwrap();
        for i in 0..3 {
            assert!((xa[i] - xb[i]).abs() < 1e-7);
        }
    }

    #[test]
    fn diag_update_matches_refactorization() {
        let a = spd3();
        let d = Vector::from_vec(vec![0.5, 0.0, 2.0]);
        let mut updated = Cholesky::factor(&a).unwrap();
        updated.diag_update(&d).unwrap();

        let mut a_plus = a.clone();
        a_plus.add_diag(&d).unwrap();
        let fresh = Cholesky::factor(&a_plus).unwrap();
        assert!((updated.log_det() - fresh.log_det()).abs() < 1e-9);
        // Negative increments rejected.
        let mut c = Cholesky::factor(&a).unwrap();
        assert!(c
            .diag_update(&Vector::from_vec(vec![-1.0, 0.0, 0.0]))
            .is_err());
    }

    #[test]
    fn rank_one_update_dimension_checked() {
        let mut c = Cholesky::factor(&spd3()).unwrap();
        assert!(c.rank_one_update(&Vector::zeros(2)).is_err());
        assert!(c.diag_update(&Vector::zeros(5)).is_err());
    }

    #[test]
    fn non_square_rejected() {
        let a = Matrix::zeros(2, 3);
        assert!(Cholesky::factor(&a).is_err());
    }
}
