//! Special functions: `lgamma`, `digamma`, `logsumexp`, `softmax`.
//!
//! The LDA baseline (TSPM) needs `digamma`/`lgamma` for its variational
//! Dirichlet updates; the logistic-normal link in TDPM needs numerically
//! stable `softmax`/`logsumexp`.

use crate::Vector;

/// Natural log of the Gamma function via the Lanczos approximation (g = 7,
/// n = 9 coefficients). Accurate to ~1e-13 for positive arguments.
pub fn lgamma(x: f64) -> f64 {
    // Coefficients from the standard g=7 Lanczos expansion.
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_1,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311e-7,
    ];
    if x < 0.5 {
        // Reflection formula: Γ(x)Γ(1−x) = π / sin(πx)
        let pi = std::f64::consts::PI;
        (pi / (pi * x).sin()).ln() - lgamma(1.0 - x)
    } else {
        let x = x - 1.0;
        let mut a = COEF[0];
        let t = x + 7.5;
        for (i, &c) in COEF.iter().enumerate().skip(1) {
            a += c / (x + i as f64);
        }
        0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
    }
}

/// Digamma (ψ) function: derivative of `lgamma`.
///
/// Uses the recurrence `ψ(x) = ψ(x+1) − 1/x` to push the argument above 6,
/// then an asymptotic series. Accurate to ~1e-12 for positive arguments.
pub fn digamma(mut x: f64) -> f64 {
    debug_assert!(x > 0.0, "digamma requires a positive argument");
    let mut result = 0.0;
    while x < 10.0 {
        result -= 1.0 / x;
        x += 1.0;
    }
    let inv = 1.0 / x;
    let inv2 = inv * inv;
    result += x.ln()
        - 0.5 * inv
        - inv2 * (1.0 / 12.0 - inv2 * (1.0 / 120.0 - inv2 * (1.0 / 252.0 - inv2 * (1.0 / 240.0))));
    result
}

/// Numerically stable `log Σ exp(x_i)`.
///
/// Returns `NEG_INFINITY` for an empty slice.
pub fn logsumexp(xs: &[f64]) -> f64 {
    let m = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if !m.is_finite() {
        return m; // all -inf (or empty) → -inf; propagates +inf as-is
    }
    let s: f64 = xs.iter().map(|&x| (x - m).exp()).sum();
    m + s.ln()
}

/// Numerically stable softmax; the output sums to 1.
///
/// This is the paper's `logistic(c)` transform (Eq. 4) mapping a latent
/// category vector to a discrete distribution over categories.
pub fn softmax(xs: &[f64]) -> Vector {
    let lse = logsumexp(xs);
    Vector::from_fn(xs.len(), |i| (xs[i] - lse).exp())
}

/// In-place normalization of a non-negative slice to sum to one.
///
/// Leaves a uniform distribution if the input sums to zero (all-zero row),
/// which is the conventional smoothing choice for empty topic rows.
pub fn normalize_in_place(xs: &mut [f64]) {
    let s: f64 = xs.iter().sum();
    if s > 0.0 && s.is_finite() {
        for x in xs.iter_mut() {
            *x /= s;
        }
    } else if !xs.is_empty() {
        let u = 1.0 / xs.len() as f64;
        for x in xs.iter_mut() {
            *x = u;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lgamma_matches_factorials() {
        // Γ(n) = (n-1)!
        for (n, fact) in [
            (1.0, 1.0f64),
            (2.0, 1.0),
            (3.0, 2.0),
            (5.0, 24.0),
            (7.0, 720.0),
        ] {
            assert!((lgamma(n) - fact.ln()).abs() < 1e-10, "lgamma({n})");
        }
    }

    #[test]
    fn lgamma_half() {
        // Γ(1/2) = √π
        assert!((lgamma(0.5) - 0.5 * std::f64::consts::PI.ln()).abs() < 1e-10);
    }

    #[test]
    fn digamma_known_values() {
        // ψ(1) = −γ (Euler–Mascheroni)
        let gamma = 0.577_215_664_901_532_9;
        assert!((digamma(1.0) + gamma).abs() < 1e-10);
        // ψ(2) = 1 − γ
        assert!((digamma(2.0) - (1.0 - gamma)).abs() < 1e-10);
        // ψ(1/2) = −γ − 2 ln 2
        assert!((digamma(0.5) + gamma + 2.0 * (2.0f64).ln()).abs() < 1e-10);
    }

    #[test]
    fn digamma_is_lgamma_derivative() {
        let h = 1e-6;
        for x in [0.3, 1.0, 2.5, 10.0, 100.0] {
            let numeric = (lgamma(x + h) - lgamma(x - h)) / (2.0 * h);
            assert!(
                (digamma(x) - numeric).abs() < 1e-5,
                "digamma({x}): {} vs {numeric}",
                digamma(x)
            );
        }
    }

    #[test]
    fn logsumexp_is_shift_invariant() {
        let xs = [1.0, 2.0, 3.0];
        let shifted: Vec<f64> = xs.iter().map(|x| x + 100.0).collect();
        assert!((logsumexp(&shifted) - (logsumexp(&xs) + 100.0)).abs() < 1e-10);
    }

    #[test]
    fn logsumexp_handles_extremes() {
        assert_eq!(logsumexp(&[]), f64::NEG_INFINITY);
        assert_eq!(logsumexp(&[f64::NEG_INFINITY]), f64::NEG_INFINITY);
        // Huge values must not overflow.
        let v = logsumexp(&[1e308f64.ln(), 1e308f64.ln()]);
        assert!(v.is_finite());
    }

    #[test]
    fn softmax_sums_to_one_and_orders() {
        let s = softmax(&[1.0, 2.0, 3.0]);
        assert!((s.sum() - 1.0).abs() < 1e-12);
        assert!(s[2] > s[1] && s[1] > s[0]);
    }

    #[test]
    fn softmax_stable_for_large_inputs() {
        let s = softmax(&[1000.0, 1000.0]);
        assert!((s[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn normalize_handles_zero_row() {
        let mut xs = [0.0, 0.0, 0.0, 0.0];
        normalize_in_place(&mut xs);
        for x in xs {
            assert!((x - 0.25).abs() < 1e-12);
        }
        let mut ys = [1.0, 3.0];
        normalize_in_place(&mut ys);
        assert!((ys[0] - 0.25).abs() < 1e-12);
        assert!((ys[1] - 0.75).abs() < 1e-12);
    }
}
