//! Nonlinear conjugate gradient (Polak–Ribière⁺) with Armijo backtracking.

use super::Objective;
use crate::{kernels, Vector};

/// `y += alpha * x` for the equal-length vectors this routine constructs.
/// Matches `Vector::axpy`'s elementwise update exactly, without the
/// dimension `Result` that can never fail here.
fn axpy_fixed(y: &mut Vector, alpha: f64, x: &Vector) {
    debug_assert_eq!(y.len(), x.len());
    for (yi, xi) in y.as_mut_slice().iter_mut().zip(x.as_slice()) {
        *yi += alpha * *xi;
    }
}

/// Tuning knobs for [`minimize_cg`].
#[derive(Debug, Clone)]
pub struct CgOptions {
    /// Maximum outer CG iterations.
    pub max_iters: usize,
    /// Stop when the gradient ∞-norm falls below this.
    pub grad_tol: f64,
    /// Stop when the objective improves by less than this (absolute).
    pub f_tol: f64,
    /// Initial step length tried by the line search.
    pub initial_step: f64,
    /// Armijo sufficient-decrease constant (0 < c1 < 1).
    pub armijo_c1: f64,
    /// Line-search shrink factor (0 < ρ < 1).
    pub shrink: f64,
    /// Maximum backtracking steps per line search.
    pub max_backtracks: usize,
}

impl Default for CgOptions {
    fn default() -> Self {
        CgOptions {
            max_iters: 200,
            grad_tol: 1e-6,
            f_tol: 1e-10,
            initial_step: 1.0,
            armijo_c1: 1e-4,
            shrink: 0.5,
            max_backtracks: 40,
        }
    }
}

/// Why [`minimize_cg`] stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CgOutcome {
    /// Gradient norm fell below `grad_tol`.
    GradientConverged,
    /// Objective decrease fell below `f_tol`.
    ValueConverged,
    /// The line search could not find a descent step (flat or non-smooth
    /// region); the best iterate so far is returned.
    LineSearchStalled,
    /// Iteration budget exhausted; the best iterate so far is returned.
    MaxIterations,
}

/// Result of a CG minimization.
#[derive(Debug, Clone)]
pub struct CgResult {
    /// The minimizing argument found.
    pub x: Vector,
    /// Objective value at `x`.
    pub value: f64,
    /// Iterations performed.
    pub iterations: usize,
    /// Stopping reason.
    pub outcome: CgOutcome,
}

/// Minimizes `f` starting from `x0` using Polak–Ribière⁺ conjugate gradient.
///
/// The PR⁺ variant clamps the conjugacy coefficient `β` at zero, which makes
/// the method globally convergent with an inexact (Armijo) line search — it
/// silently degrades to steepest descent when the quadratic model is poor.
pub fn minimize_cg(f: &impl Objective, x0: &Vector, opts: &CgOptions) -> CgResult {
    let n = x0.len();
    let mut x = x0.clone();
    let mut grad = Vector::zeros(n);
    let mut value = f.value_and_grad(&x, &mut grad);

    // Direction starts as steepest descent.
    let mut dir = grad.map(|g| -g);
    let mut step_hint = opts.initial_step;
    // Consecutive tiny-improvement steps. A single tiny step can be a CG
    // zigzag rather than convergence; after one we restart with steepest
    // descent and only declare value convergence on a second stall.
    let mut stalls = 0usize;

    for iter in 0..opts.max_iters {
        let gnorm = grad.as_slice().iter().fold(0.0f64, |m, g| m.max(g.abs()));
        if gnorm < opts.grad_tol {
            return CgResult {
                x,
                value,
                iterations: iter,
                outcome: CgOutcome::GradientConverged,
            };
        }

        // Ensure `dir` is a descent direction; restart to steepest descent
        // otherwise (can happen after a poorly scaled β).
        let mut slope = kernels::dot(grad.as_slice(), dir.as_slice());
        if slope >= 0.0 {
            dir = grad.map(|g| -g);
            slope = kernels::dot(grad.as_slice(), dir.as_slice());
            if slope >= 0.0 {
                // Gradient is exactly zero (handled above) or NaN.
                return CgResult {
                    x,
                    value,
                    iterations: iter,
                    outcome: CgOutcome::LineSearchStalled,
                };
            }
        }

        // Armijo backtracking line search along `dir`.
        let mut step = step_hint;
        let mut trial = Vector::zeros(n);
        let mut trial_grad = Vector::zeros(n);
        let mut accepted = false;
        let mut trial_value = value;
        for _ in 0..opts.max_backtracks {
            trial = x.clone();
            axpy_fixed(&mut trial, step, &dir);
            trial_value = f.value_and_grad(&trial, &mut trial_grad);
            if trial_value.is_finite() && trial_value <= value + opts.armijo_c1 * step * slope {
                accepted = true;
                break;
            }
            step *= opts.shrink;
        }
        if !accepted {
            return CgResult {
                x,
                value,
                iterations: iter,
                outcome: CgOutcome::LineSearchStalled,
            };
        }

        let improvement = value - trial_value;
        x = trial;
        let grad_prev = std::mem::replace(&mut grad, trial_grad);
        // Reuse a slightly enlarged accepted step as the next initial guess;
        // this adapts the search to the local scale of the objective.
        step_hint = (step * 2.0).min(opts.initial_step.max(1.0));

        if improvement.abs() < opts.f_tol {
            stalls += 1;
            if stalls >= 2 {
                return CgResult {
                    x,
                    value: trial_value,
                    iterations: iter + 1,
                    outcome: CgOutcome::ValueConverged,
                };
            }
            // Try once more from steepest descent before giving up.
            value = trial_value;
            dir = grad.map(|g| -g);
            continue;
        }
        stalls = 0;
        value = trial_value;

        // Polak–Ribière⁺ coefficient.
        let gg_prev = kernels::dot(grad_prev.as_slice(), grad_prev.as_slice());
        let diff = Vector::from_fn(n, |i| grad[i] - grad_prev[i]);
        let beta = if gg_prev > 0.0 {
            (kernels::dot(grad.as_slice(), diff.as_slice()) / gg_prev).max(0.0)
        } else {
            0.0
        };
        // Periodic restart keeps directions conjugate on nonquadratics.
        let beta = if (iter + 1) % (n.max(1) * 4) == 0 {
            0.0
        } else {
            beta
        };
        let mut new_dir = grad.map(|g| -g);
        axpy_fixed(&mut new_dir, beta, &dir);
        dir = new_dir;
    }

    CgResult {
        iterations: opts.max_iters,
        outcome: CgOutcome::MaxIterations,
        value,
        x,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimizes_convex_quadratic() {
        // f(x) = ½ Σ a_i (x_i - b_i)²
        let a = [1.0, 10.0, 100.0];
        let b = [3.0, -2.0, 0.5];
        let f = |x: &Vector, g: &mut Vector| {
            let mut v = 0.0;
            for i in 0..3 {
                let d = x[i] - b[i];
                v += 0.5 * a[i] * d * d;
                g[i] = a[i] * d;
            }
            v
        };
        let r = minimize_cg(&f, &Vector::zeros(3), &CgOptions::default());
        for (i, target) in b.iter().enumerate() {
            assert!((r.x[i] - target).abs() < 1e-4, "coord {i}: {}", r.x[i]);
        }
        assert!(r.value < 1e-8);
    }

    #[test]
    fn minimizes_rosenbrock() {
        // Classic nonconvex test; minimum at (1, 1).
        let f = |x: &Vector, g: &mut Vector| {
            let (a, b) = (x[0], x[1]);
            g[0] = -2.0 * (1.0 - a) - 400.0 * a * (b - a * a);
            g[1] = 200.0 * (b - a * a);
            (1.0 - a).powi(2) + 100.0 * (b - a * a).powi(2)
        };
        let opts = CgOptions {
            max_iters: 20_000,
            grad_tol: 1e-8,
            f_tol: 1e-16,
            ..CgOptions::default()
        };
        let r = minimize_cg(&f, &Vector::from_vec(vec![-1.2, 1.0]), &opts);
        assert!(
            (r.x[0] - 1.0).abs() < 1e-3 && (r.x[1] - 1.0).abs() < 1e-3,
            "got {:?} after {} iters ({:?})",
            r.x.as_slice(),
            r.iterations,
            r.outcome
        );
    }

    #[test]
    fn converged_at_start_returns_immediately() {
        let f = |x: &Vector, g: &mut Vector| {
            g[0] = 2.0 * x[0];
            x[0] * x[0]
        };
        let r = minimize_cg(&f, &Vector::zeros(1), &CgOptions::default());
        assert_eq!(r.iterations, 0);
        assert_eq!(r.outcome, CgOutcome::GradientConverged);
    }

    #[test]
    fn respects_iteration_budget() {
        let f = |x: &Vector, g: &mut Vector| {
            g[0] = 2.0 * (x[0] - 5.0);
            (x[0] - 5.0) * (x[0] - 5.0)
        };
        let opts = CgOptions {
            max_iters: 1,
            grad_tol: 0.0,
            f_tol: 0.0,
            ..CgOptions::default()
        };
        let r = minimize_cg(&f, &Vector::zeros(1), &opts);
        assert!(r.iterations <= 1);
    }
}
