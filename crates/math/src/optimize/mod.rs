//! Numerical optimization used by the variational E-step.
//!
//! The latent-category update (paper Eqs. 14–15 and 22–23) is not available in
//! closed form; the paper optimizes `λ_c` with a conjugate-gradient algorithm.
//! We provide:
//!
//! - [`minimize_cg`]: nonlinear conjugate gradient (Polak–Ribière⁺ with
//!   automatic restarts) plus an Armijo backtracking line search, and
//! - [`solve_decreasing`]: a bracketed root finder for strictly decreasing
//!   scalar functions, which is the shape of the `ν²` stationarity condition.

mod cg;
mod root;

pub use cg::{minimize_cg, CgOptions, CgOutcome, CgResult};
pub use root::solve_decreasing;

use crate::Vector;

/// A differentiable scalar function of a vector argument.
///
/// Implementations should compute the value and gradient together when that
/// is cheaper than computing them separately (it usually is for the ELBO
/// terms in this codebase).
pub trait Objective {
    /// Returns `f(x)` and writes `∇f(x)` into `grad`.
    ///
    /// `grad` is guaranteed to have the same length as `x`.
    fn value_and_grad(&self, x: &Vector, grad: &mut Vector) -> f64;
}

impl<F> Objective for F
where
    F: Fn(&Vector, &mut Vector) -> f64,
{
    fn value_and_grad(&self, x: &Vector, grad: &mut Vector) -> f64 {
        self(x, grad)
    }
}
