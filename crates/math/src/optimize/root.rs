//! Bracketed root finding for strictly decreasing scalar functions.

use crate::{MathError, Result};

/// Finds the root of a strictly decreasing function `f` on `(0, ∞)`.
///
/// The stationarity condition for the variational variances `ν²` (paper
/// Eq. 15 / 23) has exactly this shape: the derivative of the ELBO with
/// respect to `ν²_k` decreases monotonically from `+∞` (as `ν² → 0⁺`, driven
/// by the entropy term `1/(2ν²)`) to negative values, so a unique positive
/// root exists whenever the function changes sign.
///
/// The search brackets the root by geometric expansion from `x0`, then
/// bisects to a relative tolerance of `tol`. Bisection is preferred over
/// Newton here because the exponential term in the ELBO derivative makes
/// Newton steps wildly overshoot from the left of the root.
pub fn solve_decreasing(f: impl Fn(f64) -> f64, x0: f64, tol: f64) -> Result<f64> {
    debug_assert!(x0 > 0.0, "initial guess must be positive");
    let mut lo = x0;
    let mut hi = x0;

    // Expand downward until f(lo) > 0.
    let mut flo = f(lo);
    let mut tries = 0;
    while flo <= 0.0 {
        lo *= 0.5;
        flo = f(lo);
        tries += 1;
        if tries > 200 || lo < 1e-300 {
            return Err(MathError::DidNotConverge {
                routine: "solve_decreasing (lower bracket)",
                iterations: tries,
            });
        }
    }
    // Expand upward until f(hi) < 0.
    let mut fhi = f(hi);
    tries = 0;
    while fhi >= 0.0 {
        hi *= 2.0;
        fhi = f(hi);
        tries += 1;
        if tries > 200 || hi > 1e300 {
            return Err(MathError::DidNotConverge {
                routine: "solve_decreasing (upper bracket)",
                iterations: tries,
            });
        }
    }

    // Bisection: ~60 halvings reach f64 relative precision from any bracket.
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if (hi - lo) <= tol * mid.max(1e-12) {
            return Ok(mid);
        }
        let fm = f(mid);
        if fm > 0.0 {
            lo = mid;
        } else if fm < 0.0 {
            hi = mid;
        } else {
            return Ok(mid);
        }
    }
    Ok(0.5 * (lo + hi))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_root() {
        // f(x) = 5 − x, root at 5.
        let r = solve_decreasing(|x| 5.0 - x, 1.0, 1e-12).unwrap();
        assert!((r - 5.0).abs() < 1e-9);
    }

    #[test]
    fn elbo_like_shape() {
        // 1/(2x) − a − b·e^{x/2}: the actual ν² stationarity shape.
        let (a, b) = (0.7, 0.3);
        let f = |x: f64| 1.0 / (2.0 * x) - a - b * (x / 2.0).exp();
        let r = solve_decreasing(f, 1.0, 1e-12).unwrap();
        assert!(f(r).abs() < 1e-8, "residual {}", f(r));
        assert!(r > 0.0);
    }

    #[test]
    fn bracket_expands_in_both_directions() {
        // Root far above the initial guess.
        let r = solve_decreasing(|x| 1e6 - x, 1.0, 1e-10).unwrap();
        assert!((r - 1e6).abs() / 1e6 < 1e-8);
        // Root far below the initial guess.
        let r = solve_decreasing(|x| 1e-6 - x, 1.0, 1e-12).unwrap();
        assert!((r - 1e-6).abs() < 1e-12);
    }

    #[test]
    fn all_negative_function_errors() {
        // f(x) = −1 never changes sign: no positive root.
        assert!(solve_decreasing(|_| -1.0, 1.0, 1e-10).is_err());
    }

    #[test]
    fn all_positive_function_errors() {
        assert!(solve_decreasing(|_| 1.0, 1.0, 1e-10).is_err());
    }
}
