#![warn(missing_docs)]

//! Small dense linear algebra, optimizers and special functions.
//!
//! The TDPM inference engine works with `K`-dimensional latent vectors and
//! `K × K` covariance matrices where `K` (the number of latent categories) is
//! small — typically 10 to 50. This crate provides exactly the kernels that
//! workload needs, implemented from scratch:
//!
//! - [`Vector`] and [`Matrix`]: dense, row-major, `f64` containers with the
//!   arithmetic the variational updates use (dot, outer product, `axpy`,
//!   matrix–vector products, …).
//! - [`Cholesky`]: factorization of symmetric positive-definite matrices with
//!   solve / inverse / log-determinant, used for the closed-form worker-skill
//!   updates (paper Eq. 10) and for sampling from multivariate normals.
//! - [`optimize`]: a nonlinear conjugate-gradient minimizer (Polak–Ribière
//!   with backtracking line search) and a safeguarded 1-D Newton iteration,
//!   used for the latent-category updates (paper Eqs. 14–15, 22–23).
//! - [`special`]: `lgamma`, `digamma`, `logsumexp`, `softmax` — required by
//!   the LDA baseline and the logistic-normal topic link.
//! - [`stats`]: sample means / covariances for the M-step (paper Eqs. 16–19).
//! - [`kernels`]: contiguous-slice scoring kernels (gathered / blocked gemv,
//!   UCB scores) for the dense online-selection serving path.
//! - [`guard`]: the [`WorkGuard`] checkpoint trait the chunked kernels poll
//!   so a query-layer deadline/cancellation/budget can stop them cleanly at
//!   a block boundary.
//! - [`pool`]: the persistent [`ScoringPool`] of long-lived worker threads
//!   the chunk-parallel selection drivers and the trainer E-step submit to,
//!   replacing per-call scoped thread spawns.

pub mod cholesky;
pub mod error;
pub mod guard;
pub mod kernels;
pub mod matrix;
pub mod optimize;
pub mod pool;
pub mod special;
pub mod stats;
pub mod validate;
pub mod vector;

pub use cholesky::Cholesky;
pub use error::MathError;
pub use guard::{Unchecked, WorkGuard};
pub use matrix::Matrix;
pub use pool::{PoolStats, ScoringPool};
pub use validate::Validate;
pub use vector::Vector;

/// Convenience result alias for fallible math routines.
pub type Result<T> = std::result::Result<T, MathError>;
