//! Dense `f64` vector with the operations the variational updates need.

use crate::{MathError, Result};
use serde::{Deserialize, Serialize};
use std::ops::{Index, IndexMut};

/// A dense, heap-allocated `f64` vector.
///
/// `Vector` deliberately exposes a small, allocation-conscious API: in-place
/// operations (`add_assign`, `scale`, `axpy`) are preferred over operator
/// overloads that would allocate on every call inside inference loops.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Vector {
    data: Vec<f64>,
}

impl Vector {
    /// Creates a vector of `n` zeros.
    pub fn zeros(n: usize) -> Self {
        Vector { data: vec![0.0; n] }
    }

    /// Creates a vector of `n` copies of `value`.
    pub fn filled(n: usize, value: f64) -> Self {
        Vector {
            data: vec![value; n],
        }
    }

    /// Wraps an existing `Vec<f64>`.
    pub fn from_vec(data: Vec<f64>) -> Self {
        Vector { data }
    }

    /// Builds a vector by evaluating `f` at each index.
    pub fn from_fn(n: usize, f: impl FnMut(usize) -> f64) -> Self {
        Vector {
            data: (0..n).map(f).collect(),
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when the vector has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying slice.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable view of the underlying slice.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the vector, returning the underlying `Vec`.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Overwrites `self` with the contents of `other` without reallocating.
    ///
    /// The buffer-reuse primitive of the E-step hot path: resetting a
    /// right-hand side to the prior each iteration must not allocate.
    pub fn copy_from(&mut self, other: &Vector) -> Result<()> {
        if self.len() != other.len() {
            return Err(MathError::DimensionMismatch {
                op: "Vector::copy_from",
                left: self.len(),
                right: other.len(),
            });
        }
        self.data.copy_from_slice(&other.data);
        Ok(())
    }

    /// Dot product `self · other`.
    pub fn dot(&self, other: &Vector) -> Result<f64> {
        if self.len() != other.len() {
            return Err(MathError::DimensionMismatch {
                op: "Vector::dot",
                left: self.len(),
                right: other.len(),
            });
        }
        Ok(self.data.iter().zip(&other.data).map(|(a, b)| a * b).sum())
    }

    /// Euclidean (L2) norm.
    pub fn norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Largest element, or `f64::NEG_INFINITY` for an empty vector.
    pub fn max(&self) -> f64 {
        self.data.iter().copied().fold(f64::NEG_INFINITY, f64::max)
    }

    /// In-place `self += other`.
    pub fn add_assign(&mut self, other: &Vector) -> Result<()> {
        self.zip_apply(other, "Vector::add_assign", |a, b| *a += b)
    }

    /// In-place `self -= other`.
    pub fn sub_assign(&mut self, other: &Vector) -> Result<()> {
        self.zip_apply(other, "Vector::sub_assign", |a, b| *a -= b)
    }

    /// In-place `self *= s` (elementwise scaling).
    pub fn scale(&mut self, s: f64) {
        for x in &mut self.data {
            *x *= s;
        }
    }

    /// In-place `self += alpha * other` (the BLAS `axpy` primitive).
    pub fn axpy(&mut self, alpha: f64, other: &Vector) -> Result<()> {
        self.zip_apply(other, "Vector::axpy", |a, b| *a += alpha * b)
    }

    /// Returns `self - other` as a new vector.
    pub fn sub(&self, other: &Vector) -> Result<Vector> {
        let mut out = self.clone();
        out.sub_assign(other)?;
        Ok(out)
    }

    /// Returns `self + other` as a new vector.
    pub fn add(&self, other: &Vector) -> Result<Vector> {
        let mut out = self.clone();
        out.add_assign(other)?;
        Ok(out)
    }

    /// Elementwise product `self ⊙ other` as a new vector.
    pub fn hadamard(&self, other: &Vector) -> Result<Vector> {
        if self.len() != other.len() {
            return Err(MathError::DimensionMismatch {
                op: "Vector::hadamard",
                left: self.len(),
                right: other.len(),
            });
        }
        Ok(Vector::from_fn(self.len(), |i| {
            self.data[i] * other.data[i]
        }))
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f64) -> f64) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Returns a new vector with `f` applied to every element.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Vector {
        Vector {
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// `true` if every element is finite (no NaN / ±inf).
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    fn zip_apply(
        &mut self,
        other: &Vector,
        op: &'static str,
        f: impl Fn(&mut f64, f64),
    ) -> Result<()> {
        if self.len() != other.len() {
            return Err(MathError::DimensionMismatch {
                op,
                left: self.len(),
                right: other.len(),
            });
        }
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            f(a, b);
        }
        Ok(())
    }
}

impl Index<usize> for Vector {
    type Output = f64;

    fn index(&self, i: usize) -> &f64 {
        &self.data[i]
    }
}

impl IndexMut<usize> for Vector {
    fn index_mut(&mut self, i: usize) -> &mut f64 {
        &mut self.data[i]
    }
}

impl From<Vec<f64>> for Vector {
    fn from(data: Vec<f64>) -> Self {
        Vector { data }
    }
}

impl FromIterator<f64> for Vector {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        Vector {
            data: iter.into_iter().collect(),
        }
    }
}

impl<'a> IntoIterator for &'a Vector {
    type Item = &'a f64;
    type IntoIter = std::slice::Iter<'a, f64>;

    fn into_iter(self) -> Self::IntoIter {
        self.data.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_filled() {
        let z = Vector::zeros(3);
        assert_eq!(z.as_slice(), &[0.0, 0.0, 0.0]);
        let f = Vector::filled(2, 1.5);
        assert_eq!(f.as_slice(), &[1.5, 1.5]);
    }

    #[test]
    fn dot_product() {
        let a = Vector::from_vec(vec![1.0, 2.0, 3.0]);
        let b = Vector::from_vec(vec![4.0, 5.0, 6.0]);
        assert_eq!(a.dot(&b).unwrap(), 32.0);
    }

    #[test]
    fn dot_dimension_mismatch() {
        let a = Vector::zeros(2);
        let b = Vector::zeros(3);
        assert!(matches!(
            a.dot(&b),
            Err(MathError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn norm_is_euclidean() {
        let v = Vector::from_vec(vec![3.0, 4.0]);
        assert!((v.norm() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Vector::from_vec(vec![1.0, 1.0]);
        let b = Vector::from_vec(vec![2.0, 3.0]);
        a.axpy(0.5, &b).unwrap();
        assert_eq!(a.as_slice(), &[2.0, 2.5]);
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = Vector::from_vec(vec![1.0, 2.0]);
        let b = Vector::from_vec(vec![0.5, -0.5]);
        let c = a.add(&b).unwrap().sub(&b).unwrap();
        assert_eq!(c, a);
    }

    #[test]
    fn hadamard_elementwise() {
        let a = Vector::from_vec(vec![2.0, 3.0]);
        let b = Vector::from_vec(vec![4.0, 5.0]);
        assert_eq!(a.hadamard(&b).unwrap().as_slice(), &[8.0, 15.0]);
    }

    #[test]
    fn map_and_map_inplace_agree() {
        let a = Vector::from_vec(vec![1.0, 4.0, 9.0]);
        let mapped = a.map(f64::sqrt);
        let mut inplace = a.clone();
        inplace.map_inplace(f64::sqrt);
        assert_eq!(mapped, inplace);
    }

    #[test]
    fn max_and_sum() {
        let v = Vector::from_vec(vec![1.0, -2.0, 3.0]);
        assert_eq!(v.max(), 3.0);
        assert_eq!(v.sum(), 2.0);
        assert_eq!(Vector::zeros(0).max(), f64::NEG_INFINITY);
    }

    #[test]
    fn is_finite_detects_nan() {
        let mut v = Vector::zeros(2);
        assert!(v.is_finite());
        v[1] = f64::NAN;
        assert!(!v.is_finite());
    }

    #[test]
    fn from_iterator_collects() {
        let v: Vector = (0..3).map(|i| i as f64).collect();
        assert_eq!(v.as_slice(), &[0.0, 1.0, 2.0]);
    }
}
